// Ablation (paper §IV-A, Vortex challenge 3): the cost of hardware
// divergence control. Runs divergence-heavy suite benchmarks with the
// compiler's uniform-branch optimization on and off — OFF lowers every
// branch through SPLIT/JOIN, the "these operations require additional
// computation cycles" cost the paper identifies; ON applies the paper's
// suggested "uniform statement analysis".
#include <cstdio>

#include "common/log.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/suite.hpp"

using namespace fgpu;

int main() {
  Log::level() = LogLevel::kOff;
  printf("Divergence-control ablation: uniform-branch optimization ON vs OFF\n");
  printf("(OFF = every control statement pays the SPLIT/JOIN IPDOM cost)\n\n");
  printf("%-16s %12s %12s %9s %16s\n", "benchmark", "opt ON", "opt OFF", "penalty",
         "divergent/joins");

  double worst = 0.0;
  for (const char* name : {"bfs", "kmeans", "psort", "particlefilter", "cutcp", "hybridsort"}) {
    uint64_t cycles[2] = {0, 0};
    uint64_t divergent = 0, joins = 0;
    bool ok = true;
    for (int pass = 0; pass < 2; ++pass) {
      codegen::Options options;
      options.uniform_branch_opt = (pass == 0);
      vcl::VortexDevice device(vortex::Config::with(4, 8, 8), fpga::stratix10_sx2800(), options);
      auto bench = suite::make_benchmark(name);
      const auto run = suite::run_benchmark(device, bench);
      ok &= run.ok();
      cycles[pass] = run.total_cycles;
      if (pass == 1) {
        divergent = run.last.perf.divergent_branches;
        joins = run.last.perf.joins;
      }
    }
    if (!ok) {
      printf("%-16s failed\n", name);
      continue;
    }
    const double penalty =
        100.0 * (static_cast<double>(cycles[1]) / static_cast<double>(cycles[0]) - 1.0);
    worst = std::max(worst, penalty);
    printf("%-16s %12llu %12llu %+8.1f%% %8llu/%llu\n", name, (unsigned long long)cycles[0],
           (unsigned long long)cycles[1], penalty, (unsigned long long)divergent,
           (unsigned long long)joins);
  }
  printf("\nWorst penalty from lowering every branch through the IPDOM unit: %.1f%%\n", worst);
  printf("This quantifies the compiler opportunity of paper SIV-A (challenge 3).\n");
  return 0;
}
