// Reproduces Fig. 7: cycle counts of vector addition and transpose across
// warp/thread configurations on a 4-core soft GPU (the paper's SimX design-
// space exploration). Cycles are normalized to each benchmark's minimum,
// matching the paper's heat-map presentation.
//
//   fig7_config_sweep [--json=PATH] [--jobs=N]   # JSON dump / worker threads
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "suite/dse.hpp"
#include "suite/suite.hpp"
#include "trace/json.hpp"

using namespace fgpu;

namespace {

struct SweepResult {
  uint64_t cycles[4][4] = {};  // [warp index][thread index]
  uint64_t lsu_stalls[4][4] = {};
  uint32_t best_w = 0, best_t = 0;
};

const uint32_t kSizes[4] = {2, 4, 8, 16};

// The 4x4 grid runs on the DSE exact-grid runner (suite/dse.hpp): one
// work-stealing pass over the 16 configurations, devices pooled per
// identity and re-armed with reset(), workloads/references memoized, and
// compiled kernels shared through the process-wide KernelCache (the -O0
// binary compiles once, not 16 times). Grid values are bit-identical to
// the historical fresh-device-per-cell loop — the reset() contract — and
// to any --jobs (results land in pre-sized slots).
std::vector<SweepResult> sweep_all(const std::vector<std::string>& bench_names,
                                   uint32_t jobs) {
  std::vector<suite::ExactPoint> points;
  points.reserve(16);
  for (uint32_t w : kSizes) {
    for (uint32_t t : kSizes) {
      // Fig. 7 studies *hardware* configuration sensitivity, so the guest
      // code is pinned at -O0 (straight lowering): one fixed instruction
      // stream across the sweep, matching the stream the grid was
      // calibrated against. At -O2 transpose picks up ~1% of LSU-phase
      // jitter (EXPERIMENTS.md) — enough to blur the 4w8t/8w8t ordering
      // the paper's named comparison points sit on.
      points.push_back(suite::ExactPoint{vortex::Config::with(4, w, t),
                                         &fpga::stratix10_sx2800()});
    }
  }
  suite::DevicePool pool;
  suite::ExactGridOptions options;
  options.jobs = jobs;
  options.opt_level = 0;
  options.reuse_workloads = true;
  options.pool = &pool;
  const auto cells = suite::run_exact_grid(points, bench_names, options);

  std::vector<SweepResult> results(bench_names.size());
  for (size_t b = 0; b < bench_names.size(); ++b) {
    SweepResult& result = results[b];
    uint64_t best = ~0ull;
    for (int wi = 0; wi < 4; ++wi) {
      for (int ti = 0; ti < 4; ++ti) {
        const suite::ExactCell& cell = cells[static_cast<size_t>(wi) * 4 + ti][b];
        result.cycles[wi][ti] = cell.ok ? cell.cycles : 0;
        result.lsu_stalls[wi][ti] = cell.lsu_stalls;
        if (cell.ok && cell.cycles < best) {
          best = cell.cycles;
          result.best_w = kSizes[wi];
          result.best_t = kSizes[ti];
        }
      }
    }
  }
  return results;
}

void print_sweep(const std::string& name, const SweepResult& r) {
  uint64_t best = ~0ull;
  for (const auto& row : r.cycles) {
    for (uint64_t v : row) {
      if (v != 0 && v < best) best = v;
    }
  }
  printf("%s (4 cores), cycles normalized to minimum %llu:\n        ", name.c_str(),
         (unsigned long long)best);
  for (uint32_t t : kSizes) printf("T=%-8u", t);
  printf("\n");
  for (int wi = 0; wi < 4; ++wi) {
    printf("  W=%-2u  ", kSizes[wi]);
    for (int ti = 0; ti < 4; ++ti) {
      if (r.cycles[wi][ti] == 0) {
        printf("%-9s ", "-");
      } else {
        printf("%-9.3f ", static_cast<double>(r.cycles[wi][ti]) / static_cast<double>(best));
      }
    }
    printf("\n");
  }
  printf("  optimum: %uw / %ut\n", r.best_w, r.best_t);
  printf("  LSU stall cycles at (4w,4t) vs (8w,8t): %llu vs %llu\n\n",
         (unsigned long long)r.lsu_stalls[1][1], (unsigned long long)r.lsu_stalls[2][2]);
}

double pct(uint64_t a, uint64_t b) {
  return 100.0 * (static_cast<double>(a) - static_cast<double>(b)) / static_cast<double>(b);
}

// Raw (un-normalized) sweep grid as JSON, schema fgpu.fig7.v1 — see
// OBSERVABILITY.md. Rows are warps, columns threads, both in kSizes order.
void write_sweep_json(trace::JsonWriter& w, const std::string& name, const SweepResult& r) {
  w.begin_object();
  w.field("name", name);
  w.field("best_warps", r.best_w);
  w.field("best_threads", r.best_t);
  w.key("cycles").begin_array();
  for (const auto& row : r.cycles) {
    w.begin_array();
    for (uint64_t v : row) w.value(v);
    w.end_array();
  }
  w.end_array();
  w.key("lsu_stalls").begin_array();
  for (const auto& row : r.lsu_stalls) {
    w.begin_array();
    for (uint64_t v : row) w.value(v);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  Log::level() = LogLevel::kOff;
  std::string json_path;
  uint32_t jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<uint32_t>(std::stoul(argv[i] + 7));
    } else {
      std::fprintf(stderr, "usage: %s [--json=PATH] [--jobs=N]\n", argv[0]);
      return 2;
    }
  }
  printf("Fig. 7 — Cycle comparison for warp/thread configurations (Vortex simulator, 4 cores)\n\n");

  const auto grids = sweep_all({"vecadd", "transpose"}, jobs);
  const auto& vec = grids[0];
  const auto& tr = grids[1];
  print_sweep("Vector addition", vec);
  print_sweep("Transpose", tr);

  // The paper's headline comparisons (cycles at named configs).
  printf("Paper comparison points:\n");
  printf("  vecadd 8w8t vs 4w4t:         %+6.1f%%   [paper: +27%% (4w4t optimal)]\n",
         pct(vec.cycles[2][2], vec.cycles[1][1]));
  printf("  vecadd 8w4t vs 4w4t:         %+6.1f%%   [paper: +11%%]\n",
         pct(vec.cycles[2][1], vec.cycles[1][1]));
  printf("  transpose 4w4t vs 8w8t:      %+6.1f%%   [paper: +44%% (8w8t optimal)]\n",
         pct(tr.cycles[1][1], tr.cycles[2][2]));
  printf("  transpose 8w4t vs 8w8t:      %+6.1f%%   [paper: +17%%]\n",
         pct(tr.cycles[2][1], tr.cycles[2][2]));

  // Shape check over the paper's named configurations: within the
  // {4,8}x{4,8} subgrid, vecadd is best at 4w4t and materially worse at
  // 8w8t, while transpose is best at 8w8t and materially worse at 4w4t.
  const uint64_t v44 = vec.cycles[1][1], v88 = vec.cycles[2][2], v84 = vec.cycles[2][1],
                 v48 = vec.cycles[1][2];
  const uint64_t t44 = tr.cycles[1][1], t88 = tr.cycles[2][2], t84 = tr.cycles[2][1];
  const bool vec_shape = v44 < v88 && v44 < v48 && v44 <= v84 && pct(v88, v44) > 10.0;
  const bool tr_shape = t88 < t44 && t88 < t84 && pct(t44, t88) > 8.0;
  printf("\nShape check (vecadd optimal at 4w4t, 8w8t >10%% worse;\n"
         "transpose optimal at 8w8t among the paper's configs): %s\n",
         (vec_shape && tr_shape) ? "HOLDS" : "VIOLATED");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "fig7_config_sweep: cannot write '%s'\n", json_path.c_str());
      return 2;
    }
    trace::JsonWriter w(out, /*pretty=*/true);
    w.begin_object();
    w.field("schema", "fgpu.fig7.v1");
    w.field("cores", static_cast<uint32_t>(4));
    w.key("sizes").begin_array();
    for (uint32_t s : kSizes) w.value(s);
    w.end_array();
    w.key("benchmarks").begin_array();
    write_sweep_json(w, "vecadd", vec);
    write_sweep_json(w, "transpose", tr);
    w.end_array();
    w.field("shape_check", vec_shape && tr_shape);
    w.end_object();
    out << '\n';
    printf("stats -> %s\n", json_path.c_str());
  }
  return (vec_shape && tr_shape) ? 0 : 1;
}
