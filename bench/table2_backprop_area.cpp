// Reproduces Table II (backprop synthesis area under cumulative
// optimizations) and Fig. 6 (the three kernel listings): the O1 "variable
// reuse" CSE pass and the O2 "__pipelined_load" annotation are applied as
// real program transformations to the same backprop kernels, and the HLS
// area model is re-run after each step.
#include <cstdio>

#include "fpga/board.hpp"
#include "hls/compiler.hpp"
#include "kir/passes.hpp"
#include "suite/suite.hpp"

using namespace fgpu;

namespace fgpu::suite {
kir::Kernel backprop_adjust_weights_kernel();
kir::Kernel backprop_layerforward_kernel();
}  // namespace fgpu::suite

namespace {

// Module area via the compiler's structured synthesis report (its total is
// the exact sum of the per-module rows, so Table II no longer re-derives
// areas from the DFG).
fpga::AreaReport module_area(const std::vector<kir::Kernel>& kernels) {
  fpga::AreaReport total;
  for (auto kernel : kernels) {
    kir::expand_builtins(kernel);
    total += hls::synth_report(kernel, fpga::stratix10_mx2100()).total;
  }
  return total;
}

void print_row(const char* label, const fpga::AreaReport& area, const fpga::Board& board,
               uint64_t paper_bram, int paper_util) {
  printf("%-22s %10llu %10llu %8llu (%3.0f%%) %5llu   | paper: %6llu BRAM (%d%%)\n", label,
         (unsigned long long)area.aluts, (unsigned long long)area.ffs,
         (unsigned long long)area.brams,
         100.0 * static_cast<double>(area.brams) / static_cast<double>(board.capacity.brams),
         (unsigned long long)area.dsps, (unsigned long long)paper_bram, paper_util);
}

}  // namespace

int main() {
  const auto& board = fpga::stratix10_mx2100();

  auto adjust = suite::backprop_adjust_weights_kernel();
  auto layerforward = suite::backprop_layerforward_kernel();

  printf("Fig. 6 / Listing 1 — original bpnn_adjust_weights device code:\n\n%s\n",
         adjust.to_string().c_str());

  printf("Table II — backprop synthesis area (Intel-HLS-like model, %s, %llu M20K)\n\n",
         board.name.c_str(), (unsigned long long)board.capacity.brams);
  printf("%-22s %10s %10s %8s %12s\n", "Optimization step", "ALUTs", "FFs", "BRAMs", "DSPs");

  // O0: original code.
  const auto o0 = module_area({layerforward, adjust});
  print_row("Original code", o0, board, 12'898, 188);

  // O1: variable reuse (Listing 2).
  auto adjust_o1 = kir::clone_kernel(adjust);
  auto lf_o1 = kir::clone_kernel(layerforward);
  const int reused = kir::cse_variable_reuse(adjust_o1) + kir::cse_variable_reuse(lf_o1);
  const auto o1 = module_area({lf_o1, adjust_o1});
  print_row("Variable reuse (O1)", o1, board, 9'882, 144);

  // O2: pipelined loads on the hoisted temporaries (Listing 3).
  auto adjust_o2 = kir::clone_kernel(adjust_o1);
  auto lf_o2 = kir::clone_kernel(lf_o1);
  const int marked =
      kir::mark_pipelined_loads_in_lets(adjust_o2) + kir::mark_pipelined_loads_in_lets(lf_o2);
  const auto o2 = module_area({lf_o2, adjust_o2});
  print_row("Pipelined load (O2)", o2, board, 5'694, 83);

  printf("\nFig. 6 / Listing 2+3 — after O1 (%d values hoisted) + O2 (%d loads pipelined):\n\n%s\n",
         reused, marked, adjust_o2.to_string().c_str());

  // Synthesis turnaround (paper §IV-B: 10.4 h success; 1.2 / 1.5 h failures).
  printf("Modelled synthesis turnaround (paper SIV-B):\n");
  printf("  O0 attempt (fails fitting): %.1f h   [paper: 1.2-1.5 h]\n",
         hls::failed_attempt_hours(o0, board));
  printf("  O1 attempt (fails fitting): %.1f h   [paper: 1.2-1.5 h]\n",
         hls::failed_attempt_hours(o1, board));
  printf("  O2 successful synthesis:    %.1f h   [paper: 10.4 h]\n", hls::synthesis_hours(o2));

  const bool shape_holds = o0.brams > o1.brams && o1.brams > o2.brams && !board.fits(o0) &&
                           !board.fits(o1) && board.fits(o2);
  printf("\nShape check (O0 > O1 > O2; only O2 fits): %s\n", shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
