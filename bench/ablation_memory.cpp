// Memory-system ablations behind the paper's observations:
//   (a) the burst-coalesced vs __pipelined_load LSU trade-off (area vs
//       performance, §III-B) across access patterns on the HLS executor,
//   (b) DDR4 vs HBM2 board sensitivity ("these two boards may yield
//       slightly different performance results", §III), and
//   (c) the soft GPU's LSU-queue/MSHR sensitivity that produces the Fig. 7
//       LSU-stall behaviour.
#include <cstdio>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "kir/build.hpp"
#include "kir/passes.hpp"
#include "hls/compiler.hpp"
#include "runtime/hls_device.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/suite.hpp"

using namespace fgpu;

namespace {

kir::Kernel pattern_kernel(int stride) {
  kir::KernelBuilder kb("pat");
  kir::Buf a = kb.buf_f32("a"), out = kb.buf_f32("out");
  kir::Val gid = kb.global_id(0);
  kb.store(out, gid, kb.load(a, gid * stride) * 2.0f);
  return kb.build();
}

uint64_t hls_cycles(kir::Kernel kernel, bool pipelined, const fpga::Board& board, uint32_t n,
                    uint32_t span) {
  if (pipelined) kir::mark_pipelined_loads(kernel);
  kir::Module module;
  module.kernels.push_back(std::move(kernel));
  vcl::HlsDevice device(board);
  if (!device.build(module).is_ok()) return 0;
  std::vector<uint32_t> data(n * span, f2u(1.0f));
  auto in = device.upload(data);
  auto out = device.alloc(n * 4);
  auto stats = device.launch("pat", {in, out}, kir::NDRange::linear(n, 64));
  return stats.is_ok() ? stats->device_cycles : 0;
}

}  // namespace

int main() {
  Log::level() = LogLevel::kOff;
  const uint32_t n = 4096;

  printf("(a) Burst-coalesced vs pipelined LSU across access patterns (HLS, %u items)\n\n",
         n);
  printf("%-14s %14s %14s %10s | BRAM burst vs pipelined\n", "pattern", "burst cyc",
         "pipelined cyc", "slowdown");
  for (int stride : {1, 4, 16}) {
    kir::Kernel kernel = pattern_kernel(stride);
    const auto burst_area = hls::estimate_area(hls::analyze(kernel));
    kir::Kernel piped = kir::clone_kernel(kernel);
    kir::mark_pipelined_loads(piped);
    const auto piped_area = hls::estimate_area(hls::analyze(piped));
    const uint64_t burst = hls_cycles(pattern_kernel(stride), false, fpga::stratix10_mx2100(),
                                      n, static_cast<uint32_t>(stride));
    const uint64_t pipe = hls_cycles(pattern_kernel(stride), true, fpga::stratix10_mx2100(), n,
                                     static_cast<uint32_t>(stride));
    char label[32];
    std::snprintf(label, sizeof(label), stride == 1 ? "consecutive" : "stride-%d", stride);
    printf("%-14s %14llu %14llu %9.2fx | %llu vs %llu\n", label, (unsigned long long)burst,
           (unsigned long long)pipe, static_cast<double>(pipe) / static_cast<double>(burst),
           (unsigned long long)burst_area.brams, (unsigned long long)piped_area.brams);
  }
  printf("-> pipelined LSUs save BRAM but pay on non-consecutive patterns (SIII-B).\n\n");

  printf("(b) DDR4 (SX2800) vs HBM2 (MX2100) sensitivity, HLS executor\n\n");
  for (const char* name : {"vecadd", "transpose", "lavamd"}) {
    uint64_t cycles[2] = {0, 0};
    int i = 0;
    for (const auto* board : {&fpga::stratix10_sx2800(), &fpga::stratix10_mx2100()}) {
      auto bench = suite::make_benchmark(name);
      vcl::HlsDevice device(*board);
      const auto run = suite::run_benchmark(device, bench);
      cycles[i++] = run.ok() ? run.total_cycles : 0;
    }
    printf("  %-12s DDR4 %10llu   HBM2 %10llu   speedup %.2fx\n", name,
           (unsigned long long)cycles[0], (unsigned long long)cycles[1],
           cycles[1] ? static_cast<double>(cycles[0]) / static_cast<double>(cycles[1]) : 0.0);
  }
  printf("-> bandwidth-bound kernels feel the HBM2 channels; compute-bound ones do not.\n\n");

  printf("(c) Soft-GPU LSU/MSHR sensitivity (vecadd, C4/W8/T8)\n\n");
  for (const uint32_t mshrs : {2u, 4u, 6u, 12u}) {
    auto config = vortex::Config::with(4, 8, 8);
    config.l1d.mshrs = mshrs;
    vcl::VortexDevice device(config);
    auto bench = suite::make_benchmark("vecadd");
    const auto run = suite::run_benchmark(device, bench);
    printf("  mshrs=%-3u %10llu cycles, LSU stalls %llu\n", mshrs,
           (unsigned long long)run.total_cycles, (unsigned long long)run.last.perf.stall_lsu);
  }
  printf("-> the LSU-stall mechanism behind Fig. 7's configuration sensitivity.\n");
  return 0;
}
