// Reproduces Table III: Intel-HLS synthesis area reports for vecadd,
// matmul, gauss and BFS, spanning the simple-to-complex benchmark range.
#include <cstdio>

#include "fpga/board.hpp"
#include "hls/compiler.hpp"
#include "kir/passes.hpp"
#include "suite/suite.hpp"

using namespace fgpu;

int main() {
  struct Row {
    const char* bench;
    fpga::AreaReport paper;
  };
  const Row rows[] = {
      {"vecadd", {83'792, 263'632, 1'065, 1}},
      {"matmul", {250'218, 415'893, 2'696, 5}},
      {"gaussian", {537'571, 1'174'446, 6'384, 10}},
      {"bfs", {256'690, 1'172'664, 5'892, 6}},
  };

  printf("Table III — Synthesis area report, Intel-HLS-like model (%s)\n\n",
         fpga::stratix10_mx2100().name.c_str());
  printf("%-10s | %10s %10s %8s %5s | %10s %10s %8s %5s\n", "", "ALUTs", "FFs", "BRAMs", "DSPs",
         "paper", "paper", "paper", "");
  bool ordering_holds = true;
  uint64_t prev_bram = 0;
  for (const auto& row : rows) {
    auto bench = suite::make_benchmark(row.bench);
    // Consume the compiler's structured synthesis report (total == sum of
    // its per-module rows) instead of re-deriving areas from the DFG.
    fpga::AreaReport area;
    for (auto kernel : bench.module.kernels) {
      kir::expand_builtins(kernel);
      area += hls::synth_report(kernel, fpga::stratix10_mx2100()).total;
    }
    printf("%-10s | %10llu %10llu %8llu %5llu | %10llu %10llu %8llu %5llu\n", row.bench,
           (unsigned long long)area.aluts, (unsigned long long)area.ffs,
           (unsigned long long)area.brams, (unsigned long long)area.dsps,
           (unsigned long long)row.paper.aluts, (unsigned long long)row.paper.ffs,
           (unsigned long long)row.paper.brams, (unsigned long long)row.paper.dsps);
    if (std::string(row.bench) == "vecadd") prev_bram = area.brams;
    if (std::string(row.bench) != "vecadd" && area.brams < prev_bram / 2) ordering_holds = false;
  }
  printf("\nShape: vecadd is smallest; gauss/BFS are several times larger; DSP use stays low\n");
  printf("Ordering check: %s\n", ordering_holds ? "HOLDS" : "VIOLATED");
  return ordering_holds ? 0 : 1;
}
