// Reproduces Table I: benchmark coverage of the soft-GPU (Vortex) flow vs
// the Intel-HLS-like flow over the 28-benchmark suite. The paper's result:
// Vortex runs all 28; the HLS flow fails lbm / backprop / b+tree / dwt2d /
// lud ("Not enough BRAM") and hybridsort ("Atomics").
#include <cstdio>
#include <string>

#include "common/log.hpp"
#include "runtime/hls_device.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/suite.hpp"

using namespace fgpu;

namespace {

const char* paper_expected(const std::string& name) {
  if (name == "lbm" || name == "backprop" || name == "b+tree" || name == "dwt2d" ||
      name == "lud") {
    return "Not enough BRAM";
  }
  if (name == "hybridsort") return "Atomics";
  return "";
}

}  // namespace

int main() {
  Log::level() = LogLevel::kOff;
  printf("Table I — Benchmark Coverage (left: Vortex soft GPU, right: Intel-HLS-like)\n");
  printf("Soft GPU: C4/W8/T8 on %s; HLS: %s\n\n", fpga::stratix10_sx2800().name.c_str(),
         fpga::stratix10_mx2100().name.c_str());
  printf("%-16s | %-8s | %-8s | %-18s | %-18s\n", "Benchmark", "Vortex", "IntelSDK",
         "Reason to fail", "Paper");
  printf("-----------------+----------+----------+--------------------+-------------------\n");

  int vortex_pass = 0, hls_pass = 0, matches = 0;
  for (const auto& name : suite::all_benchmark_names()) {
    const auto bench = suite::make_benchmark(name);

    vcl::VortexDevice vortex_dev(vortex::Config::with(4, 8, 8));
    const auto vx = suite::run_benchmark(vortex_dev, bench);
    vcl::HlsDevice hls_dev;
    const auto hls = suite::run_benchmark(hls_dev, bench);

    vortex_pass += vx.ok();
    hls_pass += hls.ok();
    const std::string expected = paper_expected(name);
    const bool match = vx.ok() && (hls.ok() ? expected.empty() : hls.fail_reason == expected);
    matches += match;
    printf("%-16s | %-8s | %-8s | %-18s | %-18s %s\n", name.c_str(), vx.ok() ? "O" : "X",
           hls.ok() ? "O" : "X", hls.ok() ? "" : hls.fail_reason.c_str(),
           expected.empty() ? "O" : expected.c_str(), match ? "" : "  <-- MISMATCH");
  }
  printf("\nVortex: %d/28 pass   Intel-HLS-like: %d/28 pass (paper: 28 and 22)\n", vortex_pass,
         hls_pass);
  printf("Rows matching the paper's Table I: %d/28\n", matches);
  return matches == 28 ? 0 : 1;
}
