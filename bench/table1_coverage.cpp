// Reproduces Table I: benchmark coverage of the soft-GPU (Vortex) flow vs
// the Intel-HLS-like flow over the 28-benchmark suite. The paper's result:
// Vortex runs all 28; the HLS flow fails lbm / backprop / b+tree / dwt2d /
// lud ("Not enough BRAM") and hybridsort ("Atomics").
//
// Runs through suite::run_all, so it shares the parallel runner and the
// fgpu.stats.v1 exporter with fgpu-run:
//   table1_coverage [--jobs=N] [--json=PATH]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/log.hpp"
#include "suite/runner.hpp"

using namespace fgpu;

namespace {

const char* paper_expected(const std::string& name) {
  if (name == "lbm" || name == "backprop" || name == "b+tree" || name == "dwt2d" ||
      name == "lud") {
    return "Not enough BRAM";
  }
  if (name == "hybridsort") return "Atomics";
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  Log::level() = LogLevel::kOff;
  suite::RunnerOptions options;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      options.jobs = static_cast<uint32_t>(std::stoul(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--jobs=N] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  auto result = suite::run_all(options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "table1_coverage: %s\n", result.status().message().c_str());
    return 2;
  }

  printf("Table I — Benchmark Coverage (left: Vortex soft GPU, right: Intel-HLS-like)\n");
  printf("Soft GPU: %s on %s; HLS: %s\n\n", options.vortex_config.to_string().c_str(),
         fpga::stratix10_sx2800().name.c_str(), fpga::stratix10_mx2100().name.c_str());
  printf("%-16s | %-8s | %-8s | %-18s | %-18s\n", "Benchmark", "Vortex", "IntelSDK",
         "Reason to fail", "Paper");
  printf("-----------------+----------+----------+--------------------+-------------------\n");

  int matches = 0;
  for (const auto& outcome : result->outcomes) {
    const auto& vx = outcome.vortex;
    const auto& hls = outcome.hls;
    const std::string expected = paper_expected(outcome.name);
    const bool match = vx.ok() && (hls.ok() ? expected.empty() : hls.fail_reason == expected);
    matches += match;
    printf("%-16s | %-8s | %-8s | %-18s | %-18s %s\n", outcome.name.c_str(), vx.ok() ? "O" : "X",
           hls.ok() ? "O" : "X", hls.ok() ? "" : hls.fail_reason.c_str(),
           expected.empty() ? "O" : expected.c_str(), match ? "" : "  <-- MISMATCH");
  }
  printf("\nVortex: %d/28 pass   Intel-HLS-like: %d/28 pass (paper: 28 and 22)\n",
         result->vortex_passes(), result->hls_passes());
  printf("Rows matching the paper's Table I: %d/28   (%.0f ms wall)\n", matches, result->wall_ms);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "table1_coverage: cannot write '%s'\n", json_path.c_str());
      return 2;
    }
    suite::write_stats_json(out, options, *result);
    printf("stats -> %s\n", json_path.c_str());
  }
  return matches == 28 ? 0 : 1;
}
