// Reproduces Table IV: soft-GPU synthesis area as a function of the
// (cores, warps, threads) configuration, from the fitted Vortex area model.
#include <cmath>
#include <cstdio>

#include "vortex/area.hpp"

using namespace fgpu;

int main() {
  struct Row {
    uint32_t c, w, t;
    fpga::AreaReport paper;
  };
  const Row rows[] = {
      {2, 4, 16, {332'143, 459'349, 1'275, 896}},
      {2, 8, 16, {336'568, 459'353, 1'299, 896}},
      {2, 16, 16, {341'134, 478'735, 1'299, 896}},
      {4, 8, 16, {617'748, 793'976, 2'235, 1'792}},
      {4, 16, 16, {626'688, 827'757, 2'235, 1'792}},
  };

  printf("Table IV — Soft-GPU synthesis area by configuration (fitted model)\n\n");
  printf("%2s %3s %3s | %9s %9s %6s %6s | %9s %9s %6s %6s | max err\n", "C", "W", "T", "ALUTs",
         "FFs", "BRAMs", "DSPs", "paper", "paper", "paper", "paper");
  double worst = 0.0;
  for (const auto& row : rows) {
    const auto area = vortex::estimate_area(vortex::Config::with(row.c, row.w, row.t));
    auto err = [&](uint64_t got, uint64_t want) {
      return std::abs(static_cast<double>(got) - static_cast<double>(want)) /
             static_cast<double>(want);
    };
    const double e = std::max({err(area.aluts, row.paper.aluts), err(area.ffs, row.paper.ffs),
                               err(area.brams, row.paper.brams), err(area.dsps, row.paper.dsps)});
    worst = std::max(worst, e);
    printf("%2u %3u %3u | %9llu %9llu %6llu %6llu | %9llu %9llu %6llu %6llu | %4.1f%%\n", row.c,
           row.w, row.t, (unsigned long long)area.aluts, (unsigned long long)area.ffs,
           (unsigned long long)area.brams, (unsigned long long)area.dsps,
           (unsigned long long)row.paper.aluts, (unsigned long long)row.paper.ffs,
           (unsigned long long)row.paper.brams, (unsigned long long)row.paper.dsps, e * 100.0);
  }
  printf("\nWorst relative error across all cells: %.1f%%\n", worst * 100.0);

  // The paper's comparison point: the soft GPU offers a configuration RANGE
  // (here from 1 to 16+ cores) without source changes, unlike per-kernel HLS.
  printf("\nConfiguration range on %s (DDR4 board used for Vortex):\n",
         fpga::stratix10_sx2800().name.c_str());
  for (uint32_t c : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto cfg = vortex::Config::with(c, 8, 16);
    const auto area = vortex::estimate_area(cfg);
    printf("  C%-2u W8 T16: %8llu ALUT %6llu BRAM %5llu DSP -> %s\n", c,
           (unsigned long long)area.aluts, (unsigned long long)area.brams,
           (unsigned long long)area.dsps,
           vortex::fits(cfg, fpga::stratix10_sx2800()) ? "fits" : "does not fit");
  }
  return worst < 0.05 ? 0 : 1;
}
