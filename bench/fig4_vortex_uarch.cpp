// Reproduces Fig. 4 (the Vortex microarchitecture) as a structural dump of
// the simulated soft GPU plus live per-stage/per-unit activity counters
// from an actual kernel run — the observable counterpart of the paper's
// block diagram.
#include <cstdio>

#include "common/log.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/suite.hpp"
#include "vortex/area.hpp"

using namespace fgpu;

int main() {
  Log::level() = LogLevel::kOff;
  const auto cfg = vortex::Config::with(4, 8, 8);

  printf("Fig. 4 — Vortex-style soft-GPU microarchitecture (%s)\n", cfg.to_string().c_str());
  printf("=====================================================\n\n");
  printf("cluster\n");
  printf("  +- DRAM:  %s, latency %u cycles, %u channel(s)\n", cfg.dram.name.c_str(),
         cfg.dram.latency, cfg.dram.channels);
  printf("  +- L2:    %u KiB, %u-way, %u MSHRs, hit %u cycles (shared)\n",
         cfg.l2.size_bytes / 1024, cfg.l2.ways, cfg.l2.mshrs, cfg.l2.hit_latency);
  printf("  +- %u cores, each:\n", cfg.cores);
  printf("       +- warp scheduler: %u warps, round-robin, IPDOM divergence stacks\n",
         cfg.warps);
  printf("       +- fetch: L1I %u KiB; decode -> %u-deep ibuffer per warp\n",
         cfg.l1i.size_bytes / 1024, cfg.ibuffer_depth);
  printf("       +- issue: scoreboard per warp (RAW/WAW), 1 instruction/cycle\n");
  printf("       +- execute: %u-lane ALU/FPU, non-pipelined DIV/SQRT unit\n", cfg.threads);
  printf("       +- LSU: %u-entry queue, lane coalescing, L1D %u KiB / %u MSHRs\n",
         cfg.lsu_queue_depth, cfg.l1d.size_bytes / 1024, cfg.l1d.mshrs);
  printf("       +- shared memory: %u KiB window, %u-cycle latency, barrier unit\n\n",
         arch::kLocalSize / 1024, cfg.smem_latency);
  printf("synthesized area (fitted model): %s\n\n",
         vortex::estimate_area(cfg).to_string().c_str());

  // Drive a real kernel through the pipeline and report per-unit activity.
  for (const char* name : {"sgemm", "bfs", "dotproduct"}) {
    auto bench = suite::make_benchmark(name);
    vcl::VortexDevice device(cfg);
    auto run = suite::run_benchmark(device, bench);
    if (!run.ok()) {
      printf("%s: failed to run\n", name);
      continue;
    }
    const auto& p = run.last.perf;
    printf("%s: %llu cycles, %llu instrs, IPC %.2f\n", name,
           (unsigned long long)run.total_cycles, (unsigned long long)p.instrs, p.ipc());
    printf("  issue-stall breakdown: scoreboard=%llu lsu=%llu fu=%llu ibuffer=%llu barrier=%llu\n",
           (unsigned long long)p.stall_scoreboard, (unsigned long long)p.stall_lsu,
           (unsigned long long)p.stall_fu, (unsigned long long)p.stall_ibuffer,
           (unsigned long long)p.stall_barrier);
    printf("  SIMT unit: %llu branches (%llu divergent), %llu joins, %llu barriers, %llu warps spawned\n",
           (unsigned long long)p.branches, (unsigned long long)p.divergent_branches,
           (unsigned long long)p.joins, (unsigned long long)p.barriers,
           (unsigned long long)p.warps_spawned);
    printf("  memory: %llu loads, %llu stores; L1D hit rate %.1f%%; DRAM %llu bytes\n\n",
           (unsigned long long)p.loads, (unsigned long long)p.stores,
           100.0 * run.last.l1d.hit_rate(), (unsigned long long)run.last.dram_bytes);
  }
  return 0;
}
