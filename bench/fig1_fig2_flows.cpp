// Reproduces Fig. 1 and Fig. 2 as executable traces: the two compilation
// and execution pipelines for running one GPU application on an FPGA —
// the HLS flow (kernel -> HLS compiler -> bitstream -> execute) and the
// soft-GPU flow (soft-GPU bitstream + kernel binary -> execute) — driven
// over the same vecadd source, with the artifacts of every stage printed.
#include <cstdio>

#include "codegen/codegen.hpp"
#include "common/log.hpp"
#include "hls/compiler.hpp"
#include "kir/passes.hpp"
#include "runtime/hls_device.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/suite.hpp"
#include "vortex/area.hpp"

using namespace fgpu;

int main() {
  Log::level() = LogLevel::kOff;
  auto bench = suite::make_benchmark("vecadd");
  const kir::Kernel& kernel = bench.module.kernels[0];

  printf("Fig. 1 / Fig. 2 — the two flows over identical source code\n");
  printf("===========================================================\n\n");
  printf("Shared OpenCL-style source (host + kernel identical for both flows):\n\n%s\n",
         kernel.to_string().c_str());

  // -------------------------------------------------------------------
  printf("--- Flow A: HLS (Intel FPGA SDK-like, Fig. 1 top / Fig. 2 left) ---\n\n");
  printf("[1] Kernel compiler: OpenCL kernel -> dataflow graph\n");
  auto expanded = kir::clone_kernel(kernel);
  kir::expand_builtins(expanded);
  const auto dfg = hls::analyze(expanded);
  printf("    %llu global access sites (%llu burst-coalesced loads, %llu stores), "
         "%llu FP add, %llu FP mul\n",
         (unsigned long long)dfg.sites.size(), (unsigned long long)dfg.burst_load_sites(),
         (unsigned long long)dfg.global_store_sites(), (unsigned long long)dfg.fp_add,
         (unsigned long long)dfg.fp_mul);
  printf("[2] RTL generation + place & route: FPGA bitstream with a fixed compute unit\n");
  auto design = hls::synthesize(expanded, fpga::stratix10_mx2100());
  printf("    %s\n",
         design.is_ok() ? design->report.render().c_str() : design.status().to_string().c_str());
  printf("[3] Host executable links the FPGA OpenCL runtime; kernel launch drives the pipeline\n");
  vcl::HlsDevice hls_dev;
  auto hls_run = suite::run_benchmark(hls_dev, bench);
  printf("    executed: %s, %llu kernel cycles @ %.0f MHz (II=%llu, depth=%llu)\n\n",
         hls_run.ok() ? "OK" : "FAILED", (unsigned long long)hls_run.total_cycles,
         hls_run.last.clock_mhz, (unsigned long long)hls_run.last.initiation_interval,
         (unsigned long long)hls_run.last.pipeline_depth);

  // -------------------------------------------------------------------
  printf("--- Flow B: soft GPU (Vortex-like, Fig. 1 bottom / Fig. 2 right) ---\n\n");
  printf("[1] HDL compiler: synthesize the soft-GPU bitstream once (any kernel runs on it)\n");
  const auto cfg = vortex::Config::with(4, 8, 8);
  const auto gpu_area = vortex::estimate_area(cfg);
  printf("    soft GPU %s: %s -> %s\n", cfg.to_string().c_str(), gpu_area.to_string().c_str(),
         vortex::fits(cfg, fpga::stratix10_sx2800()) ? "fits SX2800" : "does not fit");
  printf("[2] Soft-GPU kernel compiler: OpenCL kernel -> Vortex ISA binary\n");
  auto compiled = codegen::compile_kernel(kernel);
  printf("    %zu instructions (%s dispatch, %zu SIMT-control, %zu memory)\n",
         compiled->instruction_count,
         compiled->barrier_dispatch ? "work-group" : "grid-stride",
         compiled->simt_instructions, compiled->mem_instructions);
  printf("[3] Host executable loads the kernel binary and launches on the soft GPU\n");
  vcl::VortexDevice vx_dev(cfg);
  auto vx_run = suite::run_benchmark(vx_dev, bench);
  printf("    executed: %s, %llu cycles @ %.0f MHz (IPC %.2f, LSU stalls %llu)\n\n",
         vx_run.ok() ? "OK" : "FAILED", (unsigned long long)vx_run.total_cycles,
         vx_run.last.clock_mhz, vx_run.last.perf.ipc(),
         (unsigned long long)vx_run.last.perf.stall_lsu);

  printf("Key contrast (paper SII): the HLS flow re-synthesizes hardware per kernel\n"
         "(hours); the soft-GPU flow reuses one bitstream and only recompiles the\n"
         "kernel binary (seconds), at the cost of lower per-kernel area efficiency.\n");
  return (hls_run.ok() && vx_run.ok()) ? 0 : 1;
}
