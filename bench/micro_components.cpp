// google-benchmark microbenchmarks of the library's components: simulator
// throughput, kernel-compiler speed, assembler/disassembler, cache, and the
// reference interpreter. These quantify the "seconds, not hours" turnaround
// contrast the paper draws between the soft-GPU flow and HLS re-synthesis.
#include <benchmark/benchmark.h>

#include "codegen/codegen.hpp"
#include "common/log.hpp"
#include "hls/compiler.hpp"
#include "kir/interp.hpp"
#include "kir/passes.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/suite.hpp"
#include "vasm/assembler.hpp"

using namespace fgpu;

namespace {

void BM_SimulatorVecaddCyclesPerSec(benchmark::State& state) {
  Log::level() = LogLevel::kOff;
  auto bench = suite::make_benchmark("vecadd");
  vcl::VortexDevice device(vortex::Config::with(static_cast<uint32_t>(state.range(0)), 8, 8));
  uint64_t cycles = 0;
  for (auto _ : state) {
    auto run = suite::run_benchmark(device, bench);
    cycles += run.total_cycles;
  }
  state.counters["sim_cycles/s"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorVecaddCyclesPerSec)->Arg(1)->Arg(4);

void BM_KernelCompile(benchmark::State& state) {
  auto bench = suite::make_benchmark("blackscholes");
  for (auto _ : state) {
    auto compiled = codegen::compile_kernel(bench.module.kernels[0]);
    benchmark::DoNotOptimize(compiled);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelCompile);

void BM_HlsSynthesize(benchmark::State& state) {
  auto bench = suite::make_benchmark("gaussian");
  kir::Kernel kernel = bench.module.kernels[1];
  kir::expand_builtins(kernel);
  for (auto _ : state) {
    auto design = hls::synthesize(kernel, fpga::stratix10_mx2100());
    benchmark::DoNotOptimize(design);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HlsSynthesize);

void BM_Assembler(benchmark::State& state) {
  std::string source;
  for (int i = 0; i < 256; ++i) {
    source += "addi t0, t0, 1\nadd t1, t0, t0\nbne t1, zero, target\n";
  }
  source += "target:\n  tmc zero\n";
  for (auto _ : state) {
    auto program = vasm::assemble(source);
    benchmark::DoNotOptimize(program);
  }
  state.SetItemsProcessed(state.iterations() * 256 * 3);
}
BENCHMARK(BM_Assembler);

void BM_Decode(benchmark::State& state) {
  auto program = vasm::assemble("add t0, t1, t2\nfmadd.s f1, f2, f3, f4\nsplit t0, x\nx: tmc zero");
  for (auto _ : state) {
    for (uint32_t word : program->words) {
      auto instr = arch::decode(word);
      benchmark::DoNotOptimize(instr);
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(program->words.size()));
}
BENCHMARK(BM_Decode);

void BM_CacheHitStream(benchmark::State& state) {
  mem::DramModel dram(mem::DramConfig::ddr4());
  mem::Cache cache(mem::CacheConfig{.name = "bench", .size_bytes = 16 * 1024}, &dram);
  uint64_t served = 0;
  cache.set_response_handler([&](uint64_t, bool) { ++served; });
  uint64_t cycle = 0, id = 0;
  for (auto _ : state) {
    dram.tick(cycle);
    cache.tick(cycle);
    if (cache.can_accept()) {
      cache.send(mem::MemRequest{.id = id++, .addr = static_cast<uint32_t>((id * 4) % 8192),
                                 .is_write = false});
    }
    ++cycle;
  }
  state.counters["responses/s"] =
      benchmark::Counter(static_cast<double>(served), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheHitStream);

void BM_Interpreter(benchmark::State& state) {
  auto bench = suite::make_benchmark("kmeans");
  for (auto _ : state) {
    auto out = suite::reference_run(bench);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Interpreter);

}  // namespace

BENCHMARK_MAIN();
