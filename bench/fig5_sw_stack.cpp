// Reproduces Fig. 5 (the Vortex software stack for OpenCL) as a traced
// compile: host program -> kernel IR -> PoCL-style work scheduling +
// divergence lowering -> Vortex-ISA binary, showing the artifacts each
// layer produces, including the SPLIT/JOIN/PRED/TMC instructions the ISA
// extension contributes.
#include <cstdio>
#include <cstring>
#include <functional>

#include "codegen/codegen.hpp"
#include "kir/build.hpp"
#include "kir/passes.hpp"
#include "suite/suite.hpp"

using namespace fgpu;

namespace {

void trace_kernel(const kir::Kernel& kernel) {
  printf("=== kernel '%s' through the stack ===\n\n", kernel.name.c_str());
  printf("[pocl front-end] OpenCL C (reconstructed source):\n%s\n",
         kernel.to_string().c_str());

  auto lowered = kir::clone_kernel(kernel);
  const int expanded = kir::expand_builtins(lowered);
  const int folded = kir::const_fold(lowered);
  const bool barrier = lowered.has_barrier();
  kir::analyze_divergence(lowered, barrier);
  int divergent = 0, uniform = 0;
  std::function<void(const std::vector<kir::StmtPtr>&)> count =
      [&](const std::vector<kir::StmtPtr>& block) {
        for (const auto& s : block) {
          if (s->kind == kir::StmtKind::kIf || s->kind == kir::StmtKind::kFor ||
              s->kind == kir::StmtKind::kWhile) {
            (s->divergent ? divergent : uniform)++;
          }
          count(s->body);
          count(s->else_body);
        }
      };
  count(lowered.body);
  printf("[pocl kernel compiler] work scheduling reflecting Vortex hardware:\n");
  printf("    dispatch: %s; libm builtins inlined: %d; constants folded: %d\n",
         barrier ? "work-group-per-core with BAR synchronization"
                 : "grid-stride work-item loop (flat collapsing)",
         expanded, folded);
  printf("    divergence analysis: %d divergent / %d uniform control statements\n", divergent,
         uniform);

  auto compiled = codegen::compile_kernel(kernel);
  if (!compiled.is_ok()) {
    printf("[llvm backend] FAILED: %s\n", compiled.status().to_string().c_str());
    return;
  }
  printf("[llvm backend -> Vortex ISA] %zu instructions, %d spill slots\n",
         compiled->instruction_count, compiled->spill_slots);

  // Count the ISA-extension instructions in the binary (the paper's four
  // divergence-control instructions plus WSPAWN/BAR).
  int split = 0, join = 0, pred = 0, tmc = 0, wspawn = 0, bar = 0;
  std::string excerpt;
  int excerpt_lines = 0;
  for (uint32_t word : compiled->program.words) {
    auto instr = arch::decode(word);
    if (!instr) continue;
    switch (instr->op) {
      case arch::Op::kSplit: ++split; break;
      case arch::Op::kJoin: ++join; break;
      case arch::Op::kPred: ++pred; break;
      case arch::Op::kTmc: ++tmc; break;
      case arch::Op::kWspawn: ++wspawn; break;
      case arch::Op::kBar: ++bar; break;
      default: break;
    }
    if (excerpt_lines < 8 &&
        (instr->op == arch::Op::kSplit || instr->op == arch::Op::kJoin ||
         instr->op == arch::Op::kPred || instr->op == arch::Op::kWspawn ||
         instr->op == arch::Op::kBar)) {
      excerpt += "      " + arch::to_string(*instr) + "\n";
      ++excerpt_lines;
    }
  }
  printf("    ISA extension usage: split=%d join=%d pred=%d tmc=%d wspawn=%d bar=%d\n", split,
         join, pred, tmc, wspawn, bar);
  printf("    extension instructions in the binary (excerpt):\n%s\n", excerpt.c_str());
}

}  // namespace

int main() {
  printf("Fig. 5 — Vortex software stack for OpenCL (traced)\n");
  printf("==================================================\n\n");
  printf("host program -> [GCC/Clang + PoCL runtime] -> host executable\n");
  printf("kernel code  -> [PoCL compiler + LLVM (Vortex ISA)] -> kernel binary\n");
  printf("runtime      -> writes argument block, uploads binary, starts cores\n\n");

  // A divergent kernel (exercises SPLIT/JOIN/PRED) and a barrier kernel
  // (exercises WSPAWN/BAR + work-group dispatch).
  trace_kernel(suite::make_benchmark("bfs").module.kernels[0]);
  trace_kernel(suite::make_benchmark("dotproduct").module.kernels[0]);
  return 0;
}
