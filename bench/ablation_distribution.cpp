// Ablation (paper §IV-A, Vortex challenge 4): work-item distribution.
// The same kernels compiled with two mappings — grid-stride (adjacent lanes
// process adjacent items: coalesced) vs blocked (each hardware thread owns
// a contiguous chunk: uncoalesced) — showing how "mapping influences memory
// access patterns and pipeline unit stalls".
#include <cstdio>

#include "common/log.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/suite.hpp"

using namespace fgpu;

int main() {
  Log::level() = LogLevel::kOff;
  printf("Work-item distribution ablation: grid-stride vs blocked mapping\n");
  printf("(soft GPU C4/W8/T8; identical kernels and results, different mapping)\n\n");
  printf("%-14s %14s %14s %9s %22s\n", "benchmark", "grid-stride", "blocked", "slowdown",
         "DRAM reads (gs/blk)");

  for (const char* name : {"vecadd", "saxpy", "nearn", "streamcluster", "blackscholes"}) {
    uint64_t cycles[2] = {0, 0};
    uint64_t dram_reads[2] = {0, 0};
    bool ok = true;
    for (int pass = 0; pass < 2; ++pass) {
      codegen::Options options;
      options.distribution = pass == 0 ? codegen::WorkDistribution::kGridStride
                                       : codegen::WorkDistribution::kBlocked;
      vcl::VortexDevice device(vortex::Config::with(4, 8, 8), fpga::stratix10_sx2800(), options);
      auto bench = suite::make_benchmark(name);
      const auto run = suite::run_benchmark(device, bench);
      ok &= run.ok();
      cycles[pass] = run.total_cycles;
      dram_reads[pass] = run.last.dram.reads;
    }
    if (!ok) {
      printf("%-14s failed (results must be identical under both mappings)\n", name);
      continue;
    }
    printf("%-14s %14llu %14llu %8.2fx %12llu/%llu\n", name, (unsigned long long)cycles[0],
           (unsigned long long)cycles[1],
           static_cast<double>(cycles[1]) / static_cast<double>(cycles[0]),
           (unsigned long long)dram_reads[0], (unsigned long long)dram_reads[1]);
  }
  printf("\n-> The blocked mapping issues 4x the line requests per warp access,\n"
         "   but each lane then re-hits its own line on later iterations, so\n"
         "   total fills stay equal and the MSHR-bound memory pipeline hides\n"
         "   the difference. Repeating with a 512 B L1D (lane working set no\n"
         "   longer fits) shows the same insensitivity:\n\n");

  printf("%-14s %14s %14s %9s  (L1D = 512 B)\n", "benchmark", "grid-stride", "blocked",
         "slowdown");
  for (const char* name : {"vecadd", "saxpy", "nearn"}) {
    uint64_t cycles[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
      codegen::Options options;
      options.distribution = pass == 0 ? codegen::WorkDistribution::kGridStride
                                       : codegen::WorkDistribution::kBlocked;
      vortex::Config config = vortex::Config::with(4, 8, 8);
      config.l1d.size_bytes = 512;
      config.l1d.ways = 2;
      vcl::VortexDevice device(config, fpga::stratix10_sx2800(), options);
      auto bench = suite::make_benchmark(name);
      const auto run = suite::run_benchmark(device, bench);
      cycles[pass] = run.ok() ? run.total_cycles : 0;
    }
    printf("%-14s %14llu %14llu %8.2fx\n", name, (unsigned long long)cycles[0],
           (unsigned long long)cycles[1],
           cycles[0] ? static_cast<double>(cycles[1]) / static_cast<double>(cycles[0]) : 0.0);
  }
  printf("\n-> On this microarchitecture the MSHR-limited LSU dominates both\n"
         "   mappings (the same mechanism behind Fig. 7), so distribution choice\n"
         "   is nearly free here - evidence that the adaptive-mapping research\n"
         "   the paper proposes (SIV-A challenge 4) must target the LSU/MSHR\n"
         "   design point, not just coalescing.\n");
  return 0;
}
