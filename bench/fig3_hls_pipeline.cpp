// Reproduces Fig. 3 (the Intel HLS-for-OpenCL compilation pipeline) as a
// stage-by-stage trace, and the §IV-B synthesis-turnaround observations
// (development is gated by hours-long re-synthesis for every kernel edit).
#include <cstdio>

#include "fpga/board.hpp"
#include "hls/compiler.hpp"
#include "kir/passes.hpp"
#include "suite/suite.hpp"

using namespace fgpu;

int main() {
  printf("Fig. 3 — Intel-HLS-for-OpenCL compilation pipeline (traced per stage)\n");
  printf("=====================================================================\n\n");
  const auto& board = fpga::stratix10_mx2100();

  for (const char* name : {"vecadd", "gaussian", "backprop"}) {
    auto bench = suite::make_benchmark(name);
    printf("kernel source: %s (%zu kernel(s))\n", name, bench.module.kernels.size());
    double total_hours = 0.0;
    fpga::AreaReport total;
    bool failed = false;
    for (auto kernel : bench.module.kernels) {
      printf("  [AOC 1] front-end: parse + lower to IR          kernel '%s'\n",
             kernel.name.c_str());
      const int expanded = kir::expand_builtins(kernel);
      const int folded = kir::const_fold(kernel);
      printf("  [AOC 2] LLVM-style optimization passes:         %d builtins expanded, %d consts folded\n",
             expanded, folded);
      const auto dfg = hls::analyze(kernel);
      printf("  [AOC 3] RTL generation (datapath + LSUs):       %llu access sites, depth %llu\n",
             (unsigned long long)dfg.sites.size(),
             (unsigned long long)(dfg.critical_path_latency + 18));
      auto design = hls::synthesize(kernel, board);
      if (design.is_ok()) {
        printf("  [AOC 4] hardware mapping + place & route:       %s\n",
               design->area.to_string().c_str());
        printf("  [AOC 5] bitstream:                              OK after %.1f h\n",
               design->synthesis_hours);
        total_hours += design->synthesis_hours;
        total += design->area;
      } else {
        const auto area = hls::estimate_area(dfg);
        printf("  [AOC 4] hardware mapping + place & route:       FAILED (%s)\n",
               design.status().message().c_str());
        total_hours += hls::failed_attempt_hours(area, board);
        total += area;
        failed = true;
      }
    }
    printf("  => module area %s\n", total.to_string().c_str());
    printf("  => turnaround for this edit-compile cycle: %.1f h%s\n\n", total_hours,
           failed ? " (failed attempt; every source fix repeats the wait, paper SIV-B)" : "");
  }

  printf("Contrast: the soft-GPU kernel compiler turns the same edits around in\n"
         "seconds, because the hardware (the soft GPU) is synthesized once.\n");
  return 0;
}
