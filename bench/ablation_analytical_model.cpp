// Extension bench (paper §IV-A, Vortex challenge 1): validates the
// analytical performance model against the cycle-level simulator across
// benchmarks and configurations, and shows its intended use — replacing
// the configuration sweep with microsecond-cheap predictions.
#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/suite.hpp"
#include "vortex/analytical.hpp"

using namespace fgpu;

namespace {

// Profiles the first launch of a suite benchmark.
Result<vortex::KernelProfile> profile_benchmark(const suite::Benchmark& bench) {
  const auto& launch = bench.launches[0];
  const kir::Kernel* kernel = bench.module.find(launch.kernel);
  std::vector<std::vector<uint32_t>> scratch = bench.buffers;
  std::vector<kir::KernelArg> args;
  for (const auto& spec : launch.args) {
    switch (spec.kind) {
      case suite::ArgSpec::Kind::kBuffer:
        args.push_back(kir::KernelArg::buffer(&scratch[static_cast<size_t>(spec.buffer)]));
        break;
      case suite::ArgSpec::Kind::kI32:
        args.push_back(kir::KernelArg::scalar_i32(spec.i32));
        break;
      case suite::ArgSpec::Kind::kF32:
        args.push_back(kir::KernelArg::scalar_f32(spec.f32));
        break;
    }
  }
  return vortex::profile_kernel(*kernel, args, launch.ndrange);
}

// Simulates only the first launch of a benchmark.
uint64_t simulate_first_launch(const std::string& name, const vortex::Config& config) {
  auto bench = suite::make_benchmark(name);
  bench.launches.resize(1);
  bench.custom_verify = [](const std::vector<std::vector<uint32_t>>&,
                           const std::vector<std::string>&) { return Status::ok(); };
  vcl::VortexDevice device(config);
  const auto run = suite::run_benchmark(device, bench);
  return run.run.is_ok() ? run.total_cycles : 0;
}

}  // namespace

int main() {
  Log::level() = LogLevel::kOff;
  printf("Analytical performance model vs cycle-level simulator\n");
  printf("(the paper's proposed remedy for the configuration-exploration cost, SIV-A)\n\n");

  const std::vector<std::string> benches = {"vecadd", "saxpy", "transpose", "kmeans",
                                            "sfilter", "nearn", "spmv", "blackscholes"};
  const std::vector<vortex::Config> configs = {
      vortex::Config::with(4, 4, 4), vortex::Config::with(4, 4, 8),
      vortex::Config::with(4, 8, 8), vortex::Config::with(4, 8, 16),
  };

  printf("%-14s %-9s %12s %12s %8s %10s\n", "benchmark", "config", "simulated", "predicted",
         "ratio", "bottleneck");
  int within_2x = 0, total = 0, rank_hits = 0, rank_total = 0;
  for (const auto& name : benches) {
    auto bench = suite::make_benchmark(name);
    auto profile = profile_benchmark(bench);
    if (!profile.is_ok()) continue;

    uint64_t best_sim = ~0ull;
    double best_pred = 1e300;
    std::string best_sim_cfg, best_pred_cfg;
    for (const auto& config : configs) {
      const uint64_t simulated = simulate_first_launch(name, config);
      const auto prediction = vortex::predict_cycles(*profile, config);
      const double ratio =
          simulated == 0 ? 0.0 : prediction.cycles / static_cast<double>(simulated);
      printf("%-14s %-9s %12llu %12.0f %7.2fx %10s\n", name.c_str(),
             config.to_string().c_str(), (unsigned long long)simulated, prediction.cycles, ratio,
             prediction.bottleneck);
      ++total;
      if (ratio > 0.5 && ratio < 2.0) ++within_2x;
      if (simulated != 0 && simulated < best_sim) {
        best_sim = simulated;
        best_sim_cfg = config.to_string();
      }
      if (prediction.cycles < best_pred) {
        best_pred = prediction.cycles;
        best_pred_cfg = config.to_string();
      }
    }
    ++rank_total;
    if (best_sim_cfg == best_pred_cfg) ++rank_hits;
    printf("  -> best config: simulator says %s, model says %s%s\n\n", best_sim_cfg.c_str(),
           best_pred_cfg.c_str(), best_sim_cfg == best_pred_cfg ? "  (agree)" : "");
  }

  printf("Accuracy: %d/%d predictions within 2x of simulation; model picks the\n"
         "simulator's best configuration for %d/%d benchmarks.\n",
         within_2x, total, rank_hits, rank_total);
  printf("Cost: one interpreter profile + O(1) arithmetic per configuration,\n"
         "vs a cycle-level simulation (or an hours-long synthesis) per point.\n");
  return (within_2x * 2 >= total) ? 0 : 1;  // at least half within 2x
}
