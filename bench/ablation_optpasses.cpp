// Ablation of the guest-code -O pipeline: per-pass cycle attribution.
// For each benchmark, runs the suite kernel at -O2 with one pipeline stage
// forced off at a time (LICM, strength reduction, KIR DCE, the machine-IR
// peephole, the spill-pressure re-lowering ladder) and reports the cycle
// delta each stage is worth on top of the rest of the pipeline. -O0 and
// -O1 anchor the ends of the ladder.
#include <cstdio>

#include "common/log.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/suite.hpp"

using namespace fgpu;

namespace {

uint64_t run_cycles(const char* name, const codegen::Options& options, bool* ok) {
  vcl::VortexDevice device(vortex::Config::with(4, 8, 8), fpga::stratix10_sx2800(), options);
  auto bench = suite::make_benchmark(name);
  const auto run = suite::run_benchmark(device, bench);
  *ok &= run.ok();
  return run.total_cycles;
}

}  // namespace

int main() {
  Log::level() = LogLevel::kOff;
  printf("Optimizer per-pass ablation (cycles; each column = -O2 with that\n");
  printf("stage off; positive %% = the stage was helping on this kernel)\n\n");

  struct Column {
    const char* name;
    codegen::Options options;
  };
  Column columns[] = {
      {"-O0", {}},        {"-O1", {}},          {"-O2", {}},
      {"no-licm", {}},    {"no-strred", {}},    {"no-dce", {}},
      {"no-peep", {}},    {"no-ladder", {}},
  };
  columns[0].options.opt_level = 0;
  columns[1].options.opt_level = 1;
  columns[3].options.ablate.kir_licm = true;
  columns[4].options.ablate.kir_strength_reduce = true;
  columns[5].options.ablate.kir_dce = true;
  columns[6].options.ablate.peephole = true;
  columns[7].options.ablate.pressure_ladder = true;

  printf("%-14s", "benchmark");
  for (const auto& column : columns) printf(" %10s", column.name);
  printf("\n");

  for (const char* name : {"vecadd", "sgemm", "backprop", "dotproduct", "lud", "lbm"}) {
    bool ok = true;
    uint64_t cycles[8] = {};
    for (size_t i = 0; i < 8; ++i) cycles[i] = run_cycles(name, columns[i].options, &ok);
    if (!ok) {
      printf("%-14s failed\n", name);
      continue;
    }
    printf("%-14s", name);
    for (size_t i = 0; i < 8; ++i) printf(" %10llu", (unsigned long long)cycles[i]);
    printf("\n%-14s", "  vs -O2");
    for (size_t i = 0; i < 8; ++i) {
      const double pct =
          100.0 * (static_cast<double>(cycles[i]) / static_cast<double>(cycles[2]) - 1.0);
      printf(" %+9.1f%%", pct);
    }
    printf("\n");
  }

  printf("\nReading: a stage whose \"off\" column sits above -O2 carries that\n");
  printf("benchmark; a column below -O2 means the stage costs cycles there\n");
  printf("(live-range stretch feeding spills) and the pressure ladder is what\n");
  printf("contains the damage — compare the no-ladder column on lud/lbm.\n");
  return 0;
}
