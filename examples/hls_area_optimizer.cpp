// HLS area optimizer: the paper's §III-B case study as an automated tool.
//
// Given a kernel that fails the FPGA fitter ("Not enough BRAM"), apply the
// paper's optimization ladder step by step — O1 variable reuse (CSE), then
// O2 __pipelined_load on the hoisted temporaries, then O2 on every load —
// re-estimating area after each step until the design fits, and reporting
// the performance cost of each area optimization on the device timing model.
#include <cstdio>

#include "common/bits.hpp"
#include "kir/build.hpp"
#include "kir/passes.hpp"
#include "hls/compiler.hpp"
#include "runtime/hls_device.hpp"

using namespace fgpu;

namespace {

// A deliberately BRAM-hungry kernel in the style of backprop's adjust step:
// repeated multi-term-indexed loads from several arrays.
kir::Kernel make_kernel() {
  kir::KernelBuilder kb("weight_update");
  kir::Buf w = kb.buf_f32("w"), g = kb.buf_f32("g"), m = kb.buf_f32("m"), v = kb.buf_f32("v");
  kir::Val rows = kb.param_i32("rows");
  kir::Val lr = kb.param_f32("lr");
  kir::Val gx = kb.global_id(0), gy = kb.global_id(1);
  kir::Val idx = kb.let_("idx", gy * rows * 4 + gx * 4 + gy + 1);
  // Every update term re-loads its operands (no manual reuse), like the
  // paper's Listing 1.
  kb.store(m, idx, 0.9f * kb.load(m, idx) + 0.1f * kb.load(g, idx));
  kb.store(v, idx, 0.99f * kb.load(v, idx) + 0.01f * kb.load(g, idx) * kb.load(g, idx));
  kb.store(w, idx,
           kb.load(w, idx) -
               lr * (0.9f * kb.load(m, idx) + 0.1f * kb.load(g, idx)) /
                   (vsqrt(0.99f * kb.load(v, idx) + 0.01f * kb.load(g, idx) * kb.load(g, idx)) +
                    0.001f));
  return kb.build();
}

void report(const char* step, const kir::Kernel& kernel, const fpga::Board& board) {
  const auto area = hls::estimate_area(hls::analyze(kernel));
  printf("%-34s BRAM %6llu (%3.0f%%)  ALUT %8llu  -> %s\n", step,
         (unsigned long long)area.brams,
         100.0 * static_cast<double>(area.brams) / static_cast<double>(board.capacity.brams),
         (unsigned long long)area.aluts, board.fits(area) ? "FITS" : "does not fit");
}

}  // namespace

int main() {
  const auto& board = fpga::stratix10_mx2100();
  kir::Kernel kernel = make_kernel();
  printf("Optimizing '%s' for %s (%llu M20K blocks)\n\n", kernel.name.c_str(),
         board.name.c_str(), (unsigned long long)board.capacity.brams);
  printf("Original source:\n%s\n", kernel.to_string().c_str());

  report("O0: original", kernel, board);

  const int reused = kir::cse_variable_reuse(kernel);
  report(("O1: variable reuse (" + std::to_string(reused) + " hoisted)").c_str(), kernel, board);

  const int lets = kir::mark_pipelined_loads_in_lets(kernel);
  report(("O2a: pipelined reuse loads (" + std::to_string(lets) + ")").c_str(), kernel, board);

  const int rest = kir::mark_pipelined_loads(kernel);
  report(("O2b: pipelined remaining loads (" + std::to_string(rest) + ")").c_str(), kernel,
         board);

  printf("\nOptimized source:\n%s\n", kernel.to_string().c_str());

  // Show the area/performance trade-off the paper warns about: run both the
  // original and the fully pipelined kernel through the HLS timing model.
  printf("Performance cost of the area optimization (HLS executor):\n");
  const uint32_t rows = 32;
  for (const bool optimized : {false, true}) {
    kir::Module module;
    module.kernels.push_back(optimized ? kernel : make_kernel());
    vcl::HlsDevice device;
    if (!device.build(module).is_ok()) {
      printf("  %s: does not synthesize on this board\n", optimized ? "optimized" : "original");
      continue;
    }
    std::vector<uint32_t> data(rows * rows * 8, f2u(0.5f));
    auto wb = device.upload(data), gb = device.upload(data), mb = device.upload(data),
         vb = device.upload(data);
    auto stats = device.launch("weight_update", {wb, gb, mb, vb, static_cast<int32_t>(rows), 0.01f},
                               kir::NDRange::grid2d(rows, rows, 8, 8));
    if (stats.is_ok()) {
      printf("  %s: %llu cycles (II=%llu)\n", optimized ? "optimized (fits)" : "original",
             (unsigned long long)stats->device_cycles,
             (unsigned long long)stats->initiation_interval);
    }
  }
  return 0;
}
