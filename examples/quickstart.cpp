// Quickstart: write one kernel, run it unchanged on both FPGA flows.
//
// This walks the exact scenario of the paper's Fig. 1: the same OpenCL-style
// host + kernel code executed (a) on a soft GPU synthesized once on the
// FPGA, and (b) as a dedicated HLS pipeline synthesized from the kernel.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart
#include <cstdio>
#include <vector>

#include "common/bits.hpp"
#include "kir/build.hpp"
#include "runtime/hls_device.hpp"
#include "runtime/vortex_device.hpp"

using namespace fgpu;

int main() {
  // --- 1. Write the kernel once (KIR plays the role of OpenCL C) --------
  kir::KernelBuilder kb("saxpy");
  kir::Buf x = kb.buf_f32("x");
  kir::Buf y = kb.buf_f32("y");
  kir::Val alpha = kb.param_f32("alpha");
  kir::Val n = kb.param_i32("n");
  kir::Val gid = kb.global_id(0);
  kb.if_(gid < n, [&] { kb.store(y, gid, alpha * kb.load(x, gid) + kb.load(y, gid)); });

  kir::Module module;
  module.name = "quickstart";
  module.kernels.push_back(kb.build());
  printf("Kernel source:\n%s\n", module.kernels[0].to_string().c_str());

  // --- 2. Prepare host data ---------------------------------------------
  const uint32_t count = 1024;
  std::vector<uint32_t> xs(count), ys(count);
  for (uint32_t i = 0; i < count; ++i) {
    xs[i] = f2u(static_cast<float>(i));
    ys[i] = f2u(1.0f);
  }

  // --- 3. Run on both devices with identical host code -------------------
  auto run_on = [&](vcl::Device& device) {
    printf("--- device: %s ---\n", device.name().c_str());
    if (auto status = device.build(module); !status.is_ok()) {
      printf("build failed: %s\n", status.to_string().c_str());
      return;
    }
    printf("build: %s\n", device.build_info()[0].log.c_str());
    vcl::Buffer xbuf = device.upload(xs);
    vcl::Buffer ybuf = device.upload(ys);
    auto stats = device.launch("saxpy", {xbuf, ybuf, 2.0f, static_cast<int32_t>(count)},
                               kir::NDRange::linear(count, 64));
    if (!stats.is_ok()) {
      printf("launch failed: %s\n", stats.status().to_string().c_str());
      return;
    }
    auto result = device.download<uint32_t>(ybuf);
    printf("y[10] = %.1f (expect 21.0), y[100] = %.1f (expect 201.0)\n", u2f(result[10]),
           u2f(result[100]));
    printf("%llu device cycles @ %.0f MHz = %.3f ms\n\n",
           (unsigned long long)stats->device_cycles, stats->clock_mhz, stats->time_ms());
  };

  vcl::VortexDevice soft_gpu(vortex::Config::with(4, 8, 8));
  vcl::HlsDevice hls;
  run_on(soft_gpu);
  run_on(hls);
  return 0;
}
