// Divergence lab: inspect how the soft-GPU compiler and hardware handle
// control-flow divergence — the SPLIT/JOIN/PRED/TMC ISA extension of §II-D
// and the compiler-optimization opportunity of §IV-A ("uniform statement
// analysis"): uniform branches lower to plain scalar branches, divergent
// ones pay the IPDOM price. Runs the same kernel with the optimization on
// and off and reports the cycle difference.
#include <cstdio>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "kir/build.hpp"
#include "runtime/vortex_device.hpp"

using namespace fgpu;

namespace {

kir::Kernel make_kernel() {
  kir::KernelBuilder kb("mixed_flow");
  kir::Buf data = kb.buf_i32("data"), out = kb.buf_i32("out");
  kir::Val n = kb.param_i32("n");         // uniform
  kir::Val bias = kb.param_i32("bias");   // uniform
  kir::Val gid = kb.global_id(0);
  kir::Val v = kb.let_("v", kb.load(data, gid));
  // Uniform branch: every lane agrees (depends only on kernel params).
  kb.if_(bias > 0, [&] { kb.assign(v, v + bias); });
  // Divergent branch: per-lane data decides.
  kb.if_((v & 1) == 1, [&] { kb.assign(v, v * 3 + 1); }, [&] { kb.assign(v, v / 2); });
  // Divergent loop: per-lane trip count.
  kb.for_("i", kir::Val(0), v & 7, [&](kir::Val i) { kb.assign(v, v + i); });
  // Uniform loop.
  kb.for_("j", kir::Val(0), n & 3, [&](kir::Val j) { kb.assign(v, v ^ j); });
  kb.store(out, gid, v);
  return kb.build();
}

uint64_t run(bool uniform_opt, uint64_t* divergent_branches) {
  codegen::Options options;
  options.uniform_branch_opt = uniform_opt;
  vcl::VortexDevice device(vortex::Config::with(2, 4, 8), fpga::stratix10_sx2800(), options);
  kir::Module module;
  module.kernels.push_back(make_kernel());
  if (!device.build(module).is_ok()) return 0;

  const uint32_t n = 2048;
  Rng rng(3);
  std::vector<uint32_t> data(n);
  for (auto& v : data) v = rng.next_below(1 << 16);
  auto in = device.upload(data);
  auto out = device.alloc(n * 4);
  auto stats = device.launch("mixed_flow", {in, out, static_cast<int32_t>(n), 5},
                             kir::NDRange::linear(n, 64));
  if (!stats.is_ok()) return 0;
  *divergent_branches = stats->perf.divergent_branches;
  return stats->device_cycles;
}

}  // namespace

int main() {
  Log::level() = LogLevel::kOff;
  printf("Divergence lab — SPLIT/JOIN cost vs uniform-branch optimization\n\n");
  printf("%s\n", make_kernel().to_string().c_str());

  uint64_t div_on = 0, div_off = 0;
  const uint64_t with_opt = run(true, &div_on);
  const uint64_t without_opt = run(false, &div_off);
  printf("uniform-branch optimization ON : %8llu cycles (%llu divergent branches)\n",
         (unsigned long long)with_opt, (unsigned long long)div_on);
  printf("uniform-branch optimization OFF: %8llu cycles (%llu divergent branches)\n",
         (unsigned long long)without_opt, (unsigned long long)div_off);
  printf("\nLowering every branch through SPLIT/JOIN costs %+.1f%% cycles here —\n"
         "the compiler opportunity the paper highlights in SIV-A (challenge 3).\n",
         100.0 * (static_cast<double>(without_opt) / static_cast<double>(with_opt) - 1.0));
  return (with_opt != 0 && without_opt != 0) ? 0 : 1;
}
