// Design-space explorer: the paper's §IV-A "Vortex challenge 1" workflow.
//
// Finding the best soft-GPU configuration for a workload requires trying
// many (cores, warps, threads) combinations, which on real hardware means
// re-synthesizing for hours per point. The paper's suggested remedy is the
// cycle-level simulator — this example is that remedy as a tool: it sweeps
// configurations for a user kernel, reports cycles, LSU stalls and the
// synthesized area of each candidate, and picks the best configuration that
// fits the target board.
#include <cstdio>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "kir/build.hpp"
#include "runtime/vortex_device.hpp"
#include "vortex/area.hpp"

using namespace fgpu;

namespace {

// The workload under exploration: a 5-tap smoothing filter.
kir::Kernel make_kernel() {
  kir::KernelBuilder kb("smooth5");
  kir::Buf in = kb.buf_f32("in"), out = kb.buf_f32("out");
  kir::Val n = kb.param_i32("n");
  kir::Val gid = kb.global_id(0);
  kb.if_(gid >= 2 && gid < n - 2, [&] {
    kb.store(out, gid,
             (kb.load(in, gid - 2) + kb.load(in, gid - 1) + kb.load(in, gid) +
              kb.load(in, gid + 1) + kb.load(in, gid + 2)) *
                 0.2f);
  });
  return kb.build();
}

}  // namespace

int main() {
  Log::level() = LogLevel::kOff;
  const auto& board = fpga::stratix10_sx2800();
  const uint32_t n = 4096;

  kir::Module module;
  module.kernels.push_back(make_kernel());
  Rng rng(7);
  std::vector<uint32_t> input(n);
  for (auto& v : input) v = f2u(rng.next_float(0.0f, 100.0f));

  printf("Design-space exploration of '%s' on a simulated soft GPU (%s)\n\n",
         module.kernels[0].name.c_str(), board.name.c_str());
  printf("%-10s %10s %12s %10s %8s %6s  %s\n", "config", "cycles", "LSU stalls", "ALUTs",
         "BRAMs", "util%", "verdict");

  struct Candidate {
    vortex::Config config;
    uint64_t cycles = ~0ull;
  };
  Candidate best;
  for (uint32_t c : {2u, 4u, 8u}) {
    for (uint32_t w : {4u, 8u}) {
      for (uint32_t t : {4u, 8u, 16u}) {
        const auto cfg = vortex::Config::with(c, w, t);
        const auto area = vortex::estimate_area(cfg);
        const bool fits = board.fits(area);

        vcl::VortexDevice device(cfg, board);
        if (!device.build(module).is_ok()) continue;
        auto in_buf = device.upload(input);
        auto out_buf = device.alloc(n * 4);
        auto stats = device.launch("smooth5", {in_buf, out_buf, static_cast<int32_t>(n)},
                                   kir::NDRange::linear(n, 64));
        if (!stats.is_ok()) continue;

        const bool improves = fits && stats->device_cycles < best.cycles;
        printf("%-10s %10llu %12llu %10llu %8llu %5.0f%%  %s%s\n", cfg.to_string().c_str(),
               (unsigned long long)stats->device_cycles,
               (unsigned long long)stats->perf.stall_lsu, (unsigned long long)area.aluts,
               (unsigned long long)area.brams, board.utilization(area) * 100.0,
               fits ? "fits" : "too big", improves ? "  <- best so far" : "");
        if (improves) best = Candidate{cfg, stats->device_cycles};
      }
    }
  }
  printf("\nRecommended configuration: %s (%llu cycles). On hardware this sweep\n"
         "would have cost ~%d synthesis runs of several hours each (paper SIV-A).\n",
         best.config.to_string().c_str(), (unsigned long long)best.cycles, 18);
  return best.cycles == ~0ull ? 1 : 0;
}
