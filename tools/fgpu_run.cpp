// fgpu-run — the suite's command-line front end (see OBSERVABILITY.md and
// README "Observability" for the workflow):
//
//   fgpu-run --filter=vecadd --json=out.json --trace=out.trace.json
//   fgpu-run --jobs=8 --device=vortex --config=C4W8T8 --json=suite.json
//   fgpu-run --filter=vecadd --device=vortex --profile=out.json --hotspots=5
//
//   fgpu-run --jobs=8 --compare=compare.json --hlsprof=hlsprof.json
//
// Runs the selected Table-I benchmarks on the selected device(s), prints a
// coverage/cycles table, and optionally writes the fgpu.stats.v1 JSON, a
// Chrome trace_event file, the fgpu.profile.v1 per-PC cycle profile, the
// fgpu.hlsprof.v1 per-access-site HLS profile, and the fgpu.compare.v1
// side-by-side comparison. Exit status: 0 unless a usage error occurs or a
// soft-GPU benchmark fails (HLS failures are reported but expected for the
// paper's six uncovered benchmarks — fgpu-run measures, bench/table1 judges).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arch/isa.hpp"
#include "codegen/codegen.hpp"
#include "common/log.hpp"
#include "suite/compare.hpp"
#include "suite/device_pool.hpp"
#include "suite/dse.hpp"
#include "suite/flagcheck.hpp"
#include "suite/runner.hpp"
#include "vortex/config.hpp"
#include "vortex/profile.hpp"

using namespace fgpu;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --filter=REGEX   run benchmarks whose name matches REGEX (default: all 28)\n"
      "  --jobs=N         worker threads (default 1; 0 = hardware concurrency)\n"
      "  --device=KIND    vortex | hls | turbo | both | all (default both)\n"
      "                   vortex = cycle-exact soft GPU (the timing oracle)\n"
      "                   turbo  = binary-translation functional tier: same\n"
      "                   binaries and output digests, no cycles/profiles\n"
      "                   both = vortex+hls; all = vortex+hls+turbo\n"
      "  --config=CcWwTt  soft-GPU shape, e.g. C4W8T8 (default C4W8T8)\n"
      "  --json=PATH      write fgpu.stats.v1 JSON stats (see OBSERVABILITY.md)\n"
      "  --trace=PATH     write Chrome trace_event JSON (open in chrome://tracing)\n"
      "  --profile=PATH   write fgpu.profile.v1 per-PC cycle profile JSON\n"
      "  --hlsprof=PATH   write fgpu.hlsprof.v1 per-access-site HLS profile JSON\n"
      "  --memprof=PATH   write fgpu.mem.v1 memory-hierarchy profile JSON (miss\n"
      "                   classes, reuse distances, MSHR/DRAM occupancy)\n"
      "  --mem-hotspots=K print top-K L1D miss sites per kernel (implies --memprof\n"
      "                   collection; soft GPU by PC, HLS by access site)\n"
      "  --compare=PATH   write fgpu.compare.v1 vortex-vs-HLS comparison JSON\n"
      "                   (requires both devices, i.e. not --device=vortex/hls)\n"
      "  --hotspots=K     print top-K stalled PCs per kernel (implies profiling)\n"
      "  --remarks=PATH   write fgpu.codegen.v1 compiler-observability JSON:\n"
      "                   per-pass telemetry + structured optimization remarks\n"
      "                   with KIR provenance (soft-GPU compiler only)\n"
      "  --remark-hotspots=K\n"
      "                   rank each kernel's remarks by the measured cycles of\n"
      "                   their provenance site and print/export the top K\n"
      "                   (implies --remarks collection and profiling)\n"
      "  --ablate=LIST    disable compiler passes, comma-separated from\n"
      "                   licm,sr,dce,peephole,ladder (pass-regression triage)\n"
      "  --predict        print the analytical model's cycle prediction and\n"
      "                   bottleneck breakdown beside each benchmark's measured\n"
      "                   soft-GPU cycles (model fidelity at --config)\n"
      "  --dse=PATH       run the design-space funnel (analytical prune ->\n"
      "                   turbo screen -> cycle-exact slice) over the --filter\n"
      "                   workloads and write fgpu.dse.v1 JSON; skips the\n"
      "                   normal suite run (see EXPERIMENTS.md)\n"
      "  --dse-grid=NAME  quick (216 configs, default) | full (12,000)\n"
      "  --dse-exact=K    cycle-exact slice size (default 32)\n"
      "  --dse-screen=K   cap on turbo-screened shapes (default 0 = all)\n"
      "  --seed=N         suite seed mixed into per-benchmark workload seeds\n"
      "  --repeat=N       run the suite N times; report min/median wall time.\n"
      "                   Repeats 2..N reuse pooled devices and hot caches\n"
      "                   (host-json minima are taken over these warm runs)\n"
      "  --fresh          construct devices per benchmark and regenerate\n"
      "                   workloads per run instead of pooling/caching (the\n"
      "                   A/B reference; simulated results are identical)\n"
      "  --host-json=PATH write fgpu.host.v1 host-throughput JSON (wall/MIPS)\n"
      "  --host-stats     embed host wall/MIPS in the stats JSON (breaks the\n"
      "                   byte-identical determinism contract; default off)\n"
      "  --no-idle-skip   tick every cycle (disable event-driven idle skipping;\n"
      "                   reported cycles are identical either way)\n"
      "  -O0 | -O1 | -O2  guest-code optimization level for the soft-GPU\n"
      "                   compiler (default -O2; -O0 is the straight-lowering\n"
      "                   oracle). --opt=N is the long spelling.\n"
      "  --dump-asm=BENCH print each kernel of BENCH as side-by-side annotated\n"
      "                   listings: -O0 on the left, the active level on the\n"
      "                   right (for debugging pass regressions)\n"
      "  --list           print selected benchmarks (name, origin, device coverage)\n"
      "  --quiet          suppress the per-benchmark table\n",
      argv0);
}

// Table-I device coverage as reported by the paper: the soft GPU runs all
// 28; the HLS flow fails these six. Mirrors bench/table1_coverage.cpp's
// expectations so `--list` describes coverage without running anything.
const char* hls_expected_failure(const std::string& name) {
  if (name == "lbm" || name == "backprop" || name == "b+tree" || name == "dwt2d" ||
      name == "lud") {
    return "Not enough BRAM";
  }
  if (name == "hybridsort") return "Atomics";
  return nullptr;
}

// Parses "C4W8T8" (case-insensitive, any order, all three required).
bool parse_config(const std::string& spec, vortex::Config* config) {
  uint32_t c = 0, w = 0, t = 0;
  size_t i = 0;
  while (i < spec.size()) {
    const char key = static_cast<char>(std::toupper(static_cast<unsigned char>(spec[i++])));
    size_t digits = 0;
    uint32_t value = 0;
    while (i < spec.size() && std::isdigit(static_cast<unsigned char>(spec[i]))) {
      value = value * 10 + static_cast<uint32_t>(spec[i++] - '0');
      ++digits;
    }
    if (digits == 0 || value == 0) return false;
    switch (key) {
      case 'C': c = value; break;
      case 'W': w = value; break;
      case 'T': t = value; break;
      default: return false;
    }
  }
  if (c == 0 || w == 0 || t == 0) return false;
  *config = vortex::Config::with(c, w, t);
  return true;
}

bool flag_value(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

const char* status_cell(bool ran, const suite::DeviceRun& run) {
  if (!ran) return "-";
  return run.ok() ? "O" : "X";
}

// --dump-asm: every kernel of one benchmark, -O0 listing beside the
// active-level listing. Listings use synthetic labels without addresses, so
// each column is the re-assemblable annotated form.
int dump_asm(const std::string& bench_name, int opt_level) {
  const auto& names = suite::all_benchmark_names();
  if (std::find(names.begin(), names.end(), bench_name) == names.end()) {
    std::fprintf(stderr, "fgpu-run: --dump-asm: unknown benchmark '%s'\n", bench_name.c_str());
    return 2;
  }
  const suite::Benchmark bench = suite::make_benchmark(bench_name);
  for (const auto& kernel : bench.module.kernels) {
    codegen::Options pre_opts;
    pre_opts.opt_level = 0;
    codegen::Options post_opts;
    post_opts.opt_level = opt_level;
    auto pre = codegen::compile_kernel(kernel, pre_opts);
    auto post = codegen::compile_kernel(kernel, post_opts);
    if (!pre.is_ok() || !post.is_ok()) {
      std::fprintf(stderr, "fgpu-run: --dump-asm: %s: %s\n", kernel.name.c_str(),
                   (!pre.is_ok() ? pre.status() : post.status()).message().c_str());
      return 1;
    }
    const auto render = [](const codegen::CompiledKernel& ck) {
      vasm::DisasmOptions o;
      o.addresses = false;
      o.synth_labels = true;
      o.source_map = &ck.source_map;
      return ck.program.disassemble(o);
    };
    const auto split = [](const std::string& text) {
      std::vector<std::string> lines;
      size_t start = 0;
      while (start <= text.size()) {
        const size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
          if (start < text.size()) lines.push_back(text.substr(start));
          break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
      }
      return lines;
    };
    const auto left = split(render(*pre));
    const auto right = split(render(*post));
    size_t width = 24;
    for (const auto& line : left) width = std::max(width, line.size());
    width = std::min<size_t>(width, 56);
    std::printf("== %s / %s: %zu words at -O0, %zu words at -O%d ==\n", bench_name.c_str(),
                kernel.name.c_str(), pre->program.words.size(), post->program.words.size(),
                post->opt_level);
    std::printf("%-*s | %s\n", static_cast<int>(width), "-O0", ("-O" + std::to_string(post->opt_level)).c_str());
    const size_t rows = std::max(left.size(), right.size());
    for (size_t i = 0; i < rows; ++i) {
      const std::string& l = i < left.size() ? left[i] : std::string();
      const std::string& r = i < right.size() ? right[i] : std::string();
      std::printf("%-*s | %s\n", static_cast<int>(width), l.c_str(), r.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

// --mem-hotspots: the top-K miss sites of each kernel, ranked by total
// misses with the 3C split beside them. Soft GPU sites are L1D PCs rendered
// with instruction + KIR provenance; HLS sites are the burst-LSU access
// sites of the read-path shadow cache.
void print_mem_hotspots(const suite::BenchmarkOutcome& outcome, uint32_t k) {
  const auto rank = [](const std::map<uint32_t, mem::MissClasses>& by_tag) {
    std::vector<std::pair<uint32_t, mem::MissClasses>> sites(by_tag.begin(), by_tag.end());
    std::stable_sort(sites.begin(), sites.end(),
                     [](const auto& a, const auto& b) { return a.second.total() > b.second.total(); });
    return sites;
  };
  for (const auto& mp : outcome.vortex.mem_profiles) {
    std::printf("\n== %s / %s: top %u L1D miss PCs (compulsory/capacity/conflict) ==\n",
                outcome.name.c_str(), mp.kernel.c_str(), k);
    uint32_t shown = 0;
    for (const auto& [pc, classes] : rank(mp.mem.l1d.by_tag)) {
      if (shown == k) break;
      ++shown;
      const size_t index = (pc - mp.binary.base) / 4;
      std::string text = "<unknown>";
      if (index < mp.binary.words.size()) {
        const auto instr = arch::decode(mp.binary.words[index]);
        text = instr ? arch::to_string(*instr) : "<invalid>";
      }
      std::printf("  %08x  %-28s %8llu misses (%llu/%llu/%llu)  %s\n", pc, text.c_str(),
                  static_cast<unsigned long long>(classes.total()),
                  static_cast<unsigned long long>(classes.compulsory),
                  static_cast<unsigned long long>(classes.capacity),
                  static_cast<unsigned long long>(classes.conflict),
                  mp.source_map.source_for(index).c_str());
    }
  }
  for (const auto& mp : outcome.hls.mem_profiles) {
    std::printf("\n== %s / %s: top %u read-path miss sites (compulsory/capacity/conflict) ==\n",
                outcome.name.c_str(), mp.kernel.c_str(), k);
    uint32_t shown = 0;
    for (const auto& [tag, classes] : rank(mp.hls_mem.by_tag)) {
      if (shown == k) break;
      ++shown;
      const bool mapped = tag < mp.sites.size();
      std::printf("  site %-4d %-28s %8llu misses (%llu/%llu/%llu)  %s\n",
                  mapped ? static_cast<int>(tag) : -1,
                  mapped ? mp.sites[tag].buffer.c_str() : "<unmapped>",
                  static_cast<unsigned long long>(classes.total()),
                  static_cast<unsigned long long>(classes.compulsory),
                  static_cast<unsigned long long>(classes.capacity),
                  static_cast<unsigned long long>(classes.conflict),
                  mapped ? mp.sites[tag].source.c_str() : "");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Log::level() = LogLevel::kOff;
  suite::RunnerOptions options;
  std::string json_path, trace_path, profile_path, hlsprof_path, memprof_path, compare_path,
      remarks_path, host_json_path, value;
  bool list_only = false, quiet = false;
  uint32_t hotspots = 0;
  uint32_t mem_hotspots = 0;
  uint32_t repeat = 1;
  bool idle_skip = true;  // applied after parsing (--config rebuilds the Config)
  std::string dump_asm_bench;
  bool predict = false;
  std::string dse_path;
  suite::DseOptions dse_options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (std::strcmp(arg, "--list") == 0) {
      list_only = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (flag_value(arg, "--filter", &value)) {
      options.filter = value;
    } else if (flag_value(arg, "--jobs", &value)) {
      options.jobs = static_cast<uint32_t>(std::stoul(value));
    } else if (flag_value(arg, "--seed", &value)) {
      options.suite_seed = std::stoull(value);
    } else if (flag_value(arg, "--repeat", &value)) {
      repeat = static_cast<uint32_t>(std::stoul(value));
      if (repeat == 0) {
        std::fprintf(stderr, "fgpu-run: --repeat must be >= 1\n");
        return 2;
      }
    } else if (flag_value(arg, "--host-json", &value)) {
      host_json_path = value;
    } else if (std::strcmp(arg, "--host-stats") == 0) {
      options.host_in_stats = true;
    } else if (std::strcmp(arg, "--fresh") == 0) {
      options.reuse_devices = false;
    } else if (std::strcmp(arg, "--no-idle-skip") == 0) {
      idle_skip = false;
    } else if (std::strcmp(arg, "-O0") == 0) {
      options.opt_level = 0;
    } else if (std::strcmp(arg, "-O1") == 0) {
      options.opt_level = 1;
    } else if (std::strcmp(arg, "-O2") == 0) {
      options.opt_level = 2;
    } else if (flag_value(arg, "--opt", &value)) {
      if (value.size() != 1 || value[0] < '0' || value[0] > '2') {
        std::fprintf(stderr, "fgpu-run: bad --opt '%s' (expected 0, 1, or 2)\n", value.c_str());
        return 2;
      }
      options.opt_level = value[0] - '0';
    } else if (flag_value(arg, "--dump-asm", &value)) {
      dump_asm_bench = value;
    } else if (flag_value(arg, "--json", &value)) {
      json_path = value;
    } else if (flag_value(arg, "--trace", &value)) {
      trace_path = value;
      options.capture_trace = true;
    } else if (flag_value(arg, "--profile", &value)) {
      profile_path = value;
      options.capture_profile = true;
    } else if (flag_value(arg, "--hlsprof", &value)) {
      hlsprof_path = value;
    } else if (flag_value(arg, "--memprof", &value)) {
      memprof_path = value;
      options.capture_memprof = true;
    } else if (flag_value(arg, "--mem-hotspots", &value)) {
      mem_hotspots = static_cast<uint32_t>(std::stoul(value));
      options.capture_memprof = true;
    } else if (flag_value(arg, "--compare", &value)) {
      compare_path = value;
    } else if (flag_value(arg, "--hotspots", &value)) {
      hotspots = static_cast<uint32_t>(std::stoul(value));
      options.capture_profile = true;
    } else if (flag_value(arg, "--remarks", &value)) {
      remarks_path = value;
      options.capture_remarks = true;
    } else if (flag_value(arg, "--remark-hotspots", &value)) {
      options.remark_hotspots = static_cast<int>(std::stoul(value));
      options.capture_remarks = true;
      options.capture_profile = true;  // the ranking joins against cycles
    } else if (std::strcmp(arg, "--predict") == 0) {
      predict = true;
    } else if (flag_value(arg, "--dse", &value)) {
      dse_path = value;
    } else if (flag_value(arg, "--dse-grid", &value)) {
      dse_options.grid = value;
    } else if (flag_value(arg, "--dse-exact", &value)) {
      dse_options.exact_budget = static_cast<size_t>(std::stoul(value));
    } else if (flag_value(arg, "--dse-screen", &value)) {
      dse_options.screen_budget = static_cast<size_t>(std::stoul(value));
    } else if (flag_value(arg, "--ablate", &value)) {
      size_t start = 0;
      while (start <= value.size()) {
        const size_t comma = value.find(',', start);
        const std::string pass =
            value.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        if (pass == "licm") {
          options.ablate.kir_licm = true;
        } else if (pass == "sr") {
          options.ablate.kir_strength_reduce = true;
        } else if (pass == "dce") {
          options.ablate.kir_dce = true;
        } else if (pass == "peephole") {
          options.ablate.peephole = true;
        } else if (pass == "ladder") {
          options.ablate.pressure_ladder = true;
        } else {
          std::fprintf(stderr,
                       "fgpu-run: bad --ablate pass '%s' (expected a comma-separated "
                       "subset of licm,sr,dce,peephole,ladder)\n",
                       pass.c_str());
          return 2;
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (flag_value(arg, "--device", &value)) {
      if (value == "vortex") {
        options.run_hls = false;
        options.run_turbo = false;
      } else if (value == "hls") {
        options.run_vortex = false;
        options.run_turbo = false;
      } else if (value == "turbo") {
        options.run_vortex = false;
        options.run_hls = false;
        options.run_turbo = true;
      } else if (value == "all") {
        options.run_turbo = true;
      } else if (value != "both") {
        std::fprintf(stderr, "fgpu-run: unknown --device '%s'\n", value.c_str());
        return 2;
      }
    } else if (flag_value(arg, "--config", &value)) {
      if (!parse_config(value, &options.vortex_config)) {
        std::fprintf(stderr, "fgpu-run: bad --config '%s' (expected e.g. C4W8T8)\n",
                     value.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "fgpu-run: unknown option '%s'\n", arg);
      usage(argv[0]);
      return 2;
    }
  }

  options.vortex_config.idle_skip = idle_skip;

  if (!dump_asm_bench.empty()) return dump_asm(dump_asm_bench, options.opt_level);

  // Flag/device consistency: each export needs the device(s) that produce
  // its data, so a contradictory --device is a usage error (exit 2), not a
  // silently empty document. The rules live in one declarative table
  // (suite/flagcheck.hpp) shared with tests/test_flagcheck.cpp.
  {
    suite::FlagRequests requests;
    requests.compare = !compare_path.empty();
    // Explicit --profile/--hotspots only: --remark-hotspots also turns on
    // profile collection, but its contradiction should name the flag the
    // user actually typed (the remarks rule has the same requirement).
    requests.profile = !profile_path.empty() || hotspots > 0;
    requests.hlsprof = !hlsprof_path.empty();
    requests.memprof = options.capture_memprof;
    requests.remarks = options.capture_remarks || options.remark_hotspots > 0;
    requests.predict = predict;
    requests.dse = !dse_path.empty();
    suite::DeviceSelection devices;
    devices.vortex = options.run_vortex;
    devices.hls = options.run_hls;
    devices.turbo = options.run_turbo;
    const std::string contradiction = suite::check_flag_contradictions(requests, devices);
    if (!contradiction.empty()) {
      std::fprintf(stderr, "%s\n", contradiction.c_str());
      return 2;
    }
  }

  // Resolve the filter up front so both --list and the run path report a
  // non-matching filter as an error instead of silently doing nothing.
  auto names = suite::filter_names(options.filter);
  if (!names.is_ok()) {
    std::fprintf(stderr, "fgpu-run: %s\n", names.status().message().c_str());
    return 2;
  }
  if (names->empty()) {
    std::fprintf(stderr, "fgpu-run: no benchmarks match --filter '%s'\n",
                 options.filter.c_str());
    return 2;
  }

  if (list_only) {
    std::printf("%-16s | %-14s | %-6s | %-6s | %-18s\n", "benchmark", "origin", "vortex",
                "hls", "hls limitation");
    std::printf("-----------------+----------------+--------+--------+-------------------\n");
    for (const auto& name : *names) {
      const suite::Benchmark bench = suite::make_benchmark(name);
      const char* hls_fail = hls_expected_failure(name);
      std::printf("%-16s | %-14s | %-6s | %-6s | %-18s\n", name.c_str(), bench.origin.c_str(),
                  "O", hls_fail == nullptr ? "O" : "X", hls_fail == nullptr ? "" : hls_fail);
    }
    std::printf("\n%zu of %zu benchmarks selected\n", names->size(),
                suite::all_benchmark_names().size());
    return 0;
  }

  // One pool for the whole process: --repeat iterations 2..N re-arm the
  // previous iteration's devices, which is where the kernel-cache hits and
  // turbo translation retention land.
  suite::DevicePool pool;
  if (options.reuse_devices) options.pool = &pool;

  // --dse: the design-space funnel replaces the suite run. The --filter
  // selection is the funnel's workload set; --jobs/-O/--fresh/--host-stats
  // carry their usual meanings.
  if (!dse_path.empty()) {
    dse_options.benchmarks = *names;
    dse_options.jobs = options.jobs == 0 ? std::thread::hardware_concurrency() : options.jobs;
    dse_options.opt_level = options.opt_level;
    dse_options.reuse_devices = options.reuse_devices;
    dse_options.host_in_stats = options.host_in_stats;
    if (options.reuse_devices) dse_options.pool = &pool;
    const suite::DseResult dse = suite::run_dse(dse_options);
    if (!dse.error.empty()) {
      std::fprintf(stderr, "fgpu-run: --dse: %s\n", dse.error.c_str());
      return 2;
    }
    std::ofstream out(dse_path);
    if (!out) {
      std::fprintf(stderr, "fgpu-run: cannot write '%s'\n", dse_path.c_str());
      return 2;
    }
    suite::write_dse_json(out, dse_options, dse);
    if (!quiet) {
      std::printf("dse: %zu candidates -> analytical %zu (%zu infeasible, %zu unfit) -> "
                  "screen %zu (%zu/%zu shapes ok) -> exact %zu (%zu ok)\n",
                  dse.grid_total, dse.analytical_survivors, dse.infeasible, dse.unfit,
                  dse.screen_survivors, dse.shapes_screened - dse.shapes_failed,
                  dse.shapes_screened, dse.exact_selected, dse.exact_ok);
      std::printf("dse: spearman(predicted, simulated) = %.3f over the exact slice\n",
                  dse.spearman);
      for (const auto& cand : dse.candidates) {
        if (cand.pareto) {
          std::printf("  pareto: %-44s %10llu cycles  util %.2f\n", cand.label.c_str(),
                      static_cast<unsigned long long>(cand.simulated_cycles),
                      cand.utilization);
        }
      }
      std::printf("dse    -> %s\n", dse_path.c_str());
    }
    return dse.exact_selected == dse.exact_ok ? 0 : 1;
  }

  auto result = suite::run_all(options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "fgpu-run: %s\n", result.status().message().c_str());
    return 2;
  }
  // --repeat: re-run the identical workload to smooth host noise. The
  // first run is the primary (its stats/trace/profile are the ones
  // exported — the simulator is deterministic, so repeats produce the
  // same simulated results and differ only in wall time).
  std::vector<suite::SuiteRunResult> reruns;
  reruns.reserve(repeat > 0 ? repeat - 1 : 0);
  for (uint32_t r = 1; r < repeat; ++r) {
    auto again = suite::run_all(options);
    if (!again.is_ok()) {
      std::fprintf(stderr, "fgpu-run: repeat %u: %s\n", r + 1, again.status().message().c_str());
      return 2;
    }
    reruns.push_back(std::move(*again));
  }
  std::vector<const suite::SuiteRunResult*> all_runs;
  all_runs.push_back(&*result);
  for (const auto& run : reruns) all_runs.push_back(&run);

  if (!quiet) {
    if (options.run_turbo) {
      std::printf("%-16s | %-6s | %-12s | %-6s | %-6s | %-18s\n", "benchmark", "vortex",
                  "cycles", "turbo", "hls", "hls fail reason");
      std::printf(
          "-----------------+--------+--------------+--------+--------+-------------------\n");
    } else {
      std::printf("%-16s | %-6s | %-12s | %-6s | %-18s\n", "benchmark", "vortex", "cycles",
                  "hls", "hls fail reason");
      std::printf("-----------------+--------+--------------+--------+-------------------\n");
    }
    for (const auto& outcome : result->outcomes) {
      char cycles[24] = "-";
      if (outcome.ran_vortex && outcome.vortex.ok()) {
        std::snprintf(cycles, sizeof(cycles), "%llu",
                      static_cast<unsigned long long>(outcome.vortex.total_cycles));
      }
      if (options.run_turbo) {
        std::printf("%-16s | %-6s | %-12s | %-6s | %-6s | %-18s\n", outcome.name.c_str(),
                    status_cell(outcome.ran_vortex, outcome.vortex), cycles,
                    status_cell(outcome.ran_turbo, outcome.turbo),
                    status_cell(outcome.ran_hls, outcome.hls),
                    outcome.ran_hls && !outcome.hls.ok() ? outcome.hls.fail_reason.c_str() : "");
      } else {
        std::printf("%-16s | %-6s | %-12s | %-6s | %-18s\n", outcome.name.c_str(),
                    status_cell(outcome.ran_vortex, outcome.vortex), cycles,
                    status_cell(outcome.ran_hls, outcome.hls),
                    outcome.ran_hls && !outcome.hls.ok() ? outcome.hls.fail_reason.c_str() : "");
      }
    }
    if (repeat > 1) {
      std::vector<double> walls;
      walls.reserve(all_runs.size());
      for (const auto* run : all_runs) walls.push_back(run->wall_ms);
      std::sort(walls.begin(), walls.end());
      const double median = walls.size() % 2 == 1
                                ? walls[walls.size() / 2]
                                : (walls[walls.size() / 2 - 1] + walls[walls.size() / 2]) / 2.0;
      std::printf("\n%zu benchmarks x%u: wall min %.0f ms, median %.0f ms", result->outcomes.size(),
                  repeat, walls.front(), median);
    } else {
      std::printf("\n%zu benchmarks in %.0f ms", result->outcomes.size(), result->wall_ms);
    }
    if (options.run_vortex) {
      std::printf("; vortex %d/%zu pass", result->vortex_passes(), result->outcomes.size());
    }
    if (options.run_turbo) {
      std::printf("; turbo %d/%zu pass", result->turbo_passes(), result->outcomes.size());
    }
    if (options.run_hls) {
      std::printf("; hls %d/%zu pass", result->hls_passes(), result->outcomes.size());
    }
    std::printf("\n");
  }

  // --predict: the analytical model (vortex/analytical.hpp) against the
  // cycle-exact measurement, per benchmark, at the active --config. The
  // bottleneck column is what the model believes binds — the signal a
  // design-space sweep prunes on.
  if (predict) {
    std::printf("\n%-16s | %12s | %12s | %6s | %-7s | %s\n", "benchmark", "predicted",
                "measured", "ratio", "bound", "issue/memory/dram/latency");
    std::printf(
        "-----------------+--------------+--------------+--------+---------+--------------\n");
    for (const auto& outcome : result->outcomes) {
      if (!outcome.ran_vortex) continue;
      const auto bench = suite::shared_benchmark(outcome.name);
      const auto profiles = suite::profile_benchmark(*bench);
      if (!profiles.is_ok()) {
        std::printf("%-16s | %s\n", outcome.name.c_str(),
                    profiles.status().message().c_str());
        continue;
      }
      const vortex::Prediction p =
          suite::predict_benchmark(*profiles, options.vortex_config);
      char measured[24] = "-";
      double ratio = 0.0;
      if (outcome.vortex.ok() && outcome.vortex.total_cycles > 0) {
        std::snprintf(measured, sizeof(measured), "%llu",
                      static_cast<unsigned long long>(outcome.vortex.total_cycles));
        ratio = p.cycles / static_cast<double>(outcome.vortex.total_cycles);
      }
      std::printf("%-16s | %12.0f | %12s | %6.2f | %-7s | %.0f/%.0f/%.0f/%.0f\n",
                  outcome.name.c_str(), p.cycles, measured, ratio,
                  p.bottleneck != nullptr ? p.bottleneck : "", p.issue_bound, p.memory_bound,
                  p.dram_bound, p.latency_bound);
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "fgpu-run: cannot write '%s'\n", json_path.c_str());
      return 2;
    }
    suite::write_stats_json(out, options, *result);
    if (!quiet) std::printf("stats  -> %s\n", json_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "fgpu-run: cannot write '%s'\n", trace_path.c_str());
      return 2;
    }
    suite::write_trace_json(out, *result);
    if (!quiet) std::printf("trace  -> %s\n", trace_path.c_str());
  }
  if (!profile_path.empty()) {
    std::ofstream out(profile_path);
    if (!out) {
      std::fprintf(stderr, "fgpu-run: cannot write '%s'\n", profile_path.c_str());
      return 2;
    }
    suite::write_profile_json(out, options, *result);
    if (!quiet) std::printf("profile -> %s\n", profile_path.c_str());
  }
  if (!hlsprof_path.empty()) {
    std::ofstream out(hlsprof_path);
    if (!out) {
      std::fprintf(stderr, "fgpu-run: cannot write '%s'\n", hlsprof_path.c_str());
      return 2;
    }
    suite::write_hlsprof_json(out, options, *result);
    if (!quiet) std::printf("hlsprof -> %s\n", hlsprof_path.c_str());
  }
  if (!memprof_path.empty()) {
    std::ofstream out(memprof_path);
    if (!out) {
      std::fprintf(stderr, "fgpu-run: cannot write '%s'\n", memprof_path.c_str());
      return 2;
    }
    suite::write_mem_json(out, options, *result);
    if (!quiet) std::printf("memprof -> %s\n", memprof_path.c_str());
  }
  if (!remarks_path.empty()) {
    std::ofstream out(remarks_path);
    if (!out) {
      std::fprintf(stderr, "fgpu-run: cannot write '%s'\n", remarks_path.c_str());
      return 2;
    }
    suite::write_codegen_json(out, options, *result);
    if (!quiet) std::printf("remarks -> %s\n", remarks_path.c_str());
  }
  if (!compare_path.empty()) {
    std::ofstream out(compare_path);
    if (!out) {
      std::fprintf(stderr, "fgpu-run: cannot write '%s'\n", compare_path.c_str());
      return 2;
    }
    suite::write_compare_json(out, options, *result);
    if (!quiet) std::printf("compare -> %s\n", compare_path.c_str());
  }
  if (!host_json_path.empty()) {
    std::ofstream out(host_json_path);
    if (!out) {
      std::fprintf(stderr, "fgpu-run: cannot write '%s'\n", host_json_path.c_str());
      return 2;
    }
    suite::write_host_json(out, options, all_runs);
    if (!quiet) std::printf("host   -> %s\n", host_json_path.c_str());
  }
  if (hotspots > 0) {
    for (const auto& outcome : result->outcomes) {
      for (const auto& kp : outcome.vortex.kernel_profiles) {
        std::printf("\n== %s / %s: top %u PCs by stall cycles ==\n", outcome.name.c_str(),
                    kp.kernel.c_str(), hotspots);
        std::fputs(
            vortex::hotspot_report(kp.binary, kp.source_map, kp.profile, hotspots).c_str(),
            stdout);
      }
    }
  }
  if (mem_hotspots > 0) {
    for (const auto& outcome : result->outcomes) print_mem_hotspots(outcome, mem_hotspots);
  }
  if (options.remark_hotspots > 0) {
    for (const auto& outcome : result->outcomes) {
      for (const auto& kc : outcome.vortex.codegen) {
        const auto ranked = suite::rank_remarks(outcome.vortex, kc,
                                                static_cast<size_t>(options.remark_hotspots));
        std::printf("\n== %s / %s: top %d remarks by attributed cycles ==\n",
                    outcome.name.c_str(), kc.kernel.c_str(), options.remark_hotspots);
        for (size_t i = 0; i < ranked.size(); ++i) {
          std::printf("  %8llu cyc (%llu stall)  %-7s %-20s %s\n",
                      static_cast<unsigned long long>(ranked[i].cycles),
                      static_cast<unsigned long long>(ranked[i].stall_cycles),
                      ranked[i].remark->action.c_str(), ranked[i].remark->name.c_str(),
                      ranked[i].remark->site.c_str());
        }
      }
    }
  }

  // Soft-GPU and turbo failures are always unexpected (the paper's Table I:
  // Vortex runs all 28, and turbo executes the same binaries); HLS failures
  // are data, not errors.
  const int vortex_failures =
      options.run_vortex
          ? static_cast<int>(result->outcomes.size()) - result->vortex_passes()
          : 0;
  const int turbo_failures =
      options.run_turbo
          ? static_cast<int>(result->outcomes.size()) - result->turbo_passes()
          : 0;
  return vortex_failures + turbo_failures == 0 ? 0 : 1;
}
