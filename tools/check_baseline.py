#!/usr/bin/env python3
"""Guard the committed fgpu.stats.v1 baseline (BENCH_table1.json).

Compares a freshly generated stats document against the golden baseline
and exits non-zero on:

  * schema drift — the set of key paths in either document differs
    (fields added, removed, or renamed without bumping the schema tag);
  * coverage drift — a benchmark changed its ok/fail status on either
    device (Table I is the paper's central claim);
  * cycle regression — a passing soft-GPU benchmark got more than
    --max-regression slower than the baseline (default 10%);
  * with --max-cycles=N, a passing soft-GPU benchmark growing by more
    than N absolute cycles fails. --max-cycles=0 is the optimizer gate:
    no benchmark may regress by even one cycle;
  * with --exact-cycles, ANY cycle delta on either device fails. This is
    the gate for host-speed-only changes (decode cache, idle skipping):
    simulator fast paths must not move a single reported cycle.

A per-benchmark soft-GPU cycle table (baseline/current/delta/% plus the
geomean) is always printed, pass or fail, so every CI log doubles as a
perf report.

Cycle *improvements* are reported but never fail (outside --exact-cycles):
refresh the baseline (see README of the CI step) when an intentional perf
change lands.

Host wall-clock (fgpu.host.v1 documents from fgpu-run --host-json) is
compared with --host-baseline/--host-current. Host throughput is NON-GATING
by design — CI machines vary — it prints a wall-time trajectory only.
When both documents carry turbo sections, the turbo dispatch throughput and
turbo-over-vortex speedup trajectory are printed too (equally non-gating).

Turbo digest gate (--turbo-digests): BASELINE and CURRENT are read as
fgpu.host.v1 documents from an fgpu-run --device=all run (they may be the
same file — the cross-check is between the two devices of one run, not
between two runs). For every benchmark present in both documents, the
CURRENT "turbo" entry must be ok and its output_digest must equal the
BASELINE "vortex" entry's digest bit-for-bit: the binary-translation tier
must retire exactly the architectural state the cycle-exact oracle does.
The gate fails if fewer than --turbo-min benchmarks (default 8) were
compared — a filter typo must not pass silently as "0 of 0 matched" — and
--turbo-full additionally requires the full 28-benchmark Table I set (the
weekly-equivalent sweep). Schema/coverage/cycle gates are skipped in this
mode; they belong to the fgpu.stats.v1 path.

Host-schema gate (--host-fields): CURRENT is read as an fgpu.host.v1
document (BASELINE may be the same file; it is only schema-checked). The
gate asserts the PR-8 reuse instrumentation is actually present and live:
the "reuse" object with its compile_ms/synth_ms wall splits, per-benchmark
setup_ms/build_ms/reused fields on every device entry, and — when the
document was produced with --repeat > 1 under device reuse — a non-zero
kernel_cache hit count and device_reuse_count (a repeat run that recompiles
everything means the cache key or the pool identity broke silently).

Memory-profile documents (fgpu.mem.v1 from fgpu-run --memprof) are GATED
with --mem-baseline/--mem-current (BENCH_mem.json in CI):

  * schema-tag and key-path drift, as for the stats document;
  * the benchmark set must match the baseline exactly;
  * per-kernel, per-level miss-class drift — every (accesses, misses,
    compulsory, capacity, conflict) vector of every cache level (l1d/
    l1i/l2 on the soft GPU, the read-path shadow on HLS) must match the
    baseline EXACTLY. Miss classification is deterministic, so any delta
    is a real behavior change that demands a baseline refresh.

Comparison documents (fgpu.compare.v1 from fgpu-run --compare) are GATED
with --compare-baseline/--compare-current (BENCH_compare.json in CI):

  * schema-tag and key-path drift, as for the stats document;
  * the benchmark set must match the baseline exactly;
  * coverage drift — any benchmark changing its "both/vortex_only/
    hls_only/neither" class fails (the Table I claim again, joined);
  * speedup drift — a both-ok benchmark's HLS-over-vortex speedup ratio
    moving more than --speedup-tolerance (default 5%) in either direction
    fails: the Fig. 6 ratios are the paper's headline numbers, so both
    regressions AND unexplained improvements demand a baseline refresh.

Codegen documents (fgpu.codegen.v1 from fgpu-run --remarks) are GATED
with --codegen-baseline/--codegen-current (BENCH_codegen.json in CI):

  * schema-tag and key-path drift, as for the stats document;
  * the benchmark and kernel sets must match the baseline exactly;
  * per-kernel static compiler metrics — code size, spill slots, SIMT and
    memory instruction counts, dispatch style — must match EXACTLY;
  * the per-pass pipeline (stage list, per-stage remark counts, and every
    before/after IR-size snapshot) must match EXACTLY;
  * remark counts per (pass, action) must match EXACTLY. Compilation is
    deterministic, so any delta is a real compiler-behavior change that
    demands a baseline refresh (and an EXPERIMENTS.md note if cycles moved).

DSE documents (fgpu.dse.v1 from fgpu-run --dse) are GATED with
--dse-baseline/--dse-current (BENCH_dse.json in CI), a standalone mode
like --schema-list:

  * schema-tag and key-path drift, as for the stats document;
  * funnel-count drift — every stage count (candidates, analytical
    evaluated/infeasible/unfit/survivors, screen shapes/failed/survivors,
    exact selected/ok) must match EXACTLY: the analytical pre-filter and
    the turbo screen are deterministic, so any delta is a model or
    pruning change that demands a baseline refresh;
  * Pareto-frontier drift — the frontier membership (config labels) must
    match exactly, as must each evaluated configuration's simulated
    cycles (the document is byte-deterministic by contract);
  * Spearman floor — the rank correlation of the analytical model over
    the evaluated slice must stay >= --spearman-min (default 0.8, the
    ISSUE acceptance floor; the quick grid at --dse-exact=64 sits at
    ~0.89, the full grid at ~0.92).

Schema lint (--schema-list FILE...): standalone mode, no positional
arguments needed. Every listed document must carry a "schema" field whose
value is one of the known exported versions (the OBSERVABILITY.md schema
index). Catches a new exporter shipping an unregistered or typo'd tag.

Usage: check_baseline.py BASELINE CURRENT [--max-regression=0.10]
                         [--max-cycles=N] [--exact-cycles]
                         [--host-baseline=H.json --host-current=H2.json]
                         [--mem-baseline=M.json --mem-current=M2.json]
                         [--compare-baseline=C.json --compare-current=C2.json
                          --speedup-tolerance=0.05]
                         [--codegen-baseline=G.json --codegen-current=G2.json]
       check_baseline.py --dse-baseline=D.json --dse-current=D2.json
                         [--spearman-min=0.8]
       check_baseline.py --schema-list FILE [FILE...]

Stdlib only — runs on a bare CI python3.
"""

import argparse
import json
import math
import sys


def cycle_table(base_benchmarks, cur_benchmarks):
    """Always-printed soft-GPU cycle report: baseline/current/delta/% + geomean."""
    rows = []
    ratios = []
    for name in sorted(set(base_benchmarks) & set(cur_benchmarks)):
        b = (base_benchmarks[name].get("vortex") or {}).get("total_cycles")
        c = (cur_benchmarks[name].get("vortex") or {}).get("total_cycles")
        if b is None or c is None:
            continue
        pct = (c - b) / b * 100.0 if b > 0 else 0.0
        rows.append((name, b, c, c - b, pct))
        if b > 0 and c > 0:
            ratios.append(c / b)
    if not rows:
        return
    print(f"{'benchmark':<22} {'baseline':>12} {'current':>12} {'delta':>10} {'pct':>9}")
    for name, b, c, d, pct in rows:
        print(f"{name:<22} {b:>12} {c:>12} {d:>+10} {pct:>+8.2f}%")
    geo = math.prod(ratios) ** (1.0 / len(ratios)) if ratios else 1.0
    print(f"{'geomean':<22} {'':>12} {'':>12} {'':>10} {(geo - 1) * 100.0:>+8.2f}%")


def schema_paths(node, prefix=""):
    """The set of key paths in a JSON tree; array elements share a path."""
    paths = set()
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            paths.add(path)
            paths.update(schema_paths(value, path))
    elif isinstance(node, list):
        for value in node:
            paths.update(schema_paths(value, prefix + "[]"))
    return paths


def by_name(doc):
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def device_ok(entry, device):
    run = entry.get(device)
    return None if run is None else bool(run.get("ok"))


def compare_host(host_baseline, host_current):
    """Non-gating host-throughput comparison of two fgpu.host.v1 documents."""
    with open(host_baseline) as f:
        base = json.load(f)
    with open(host_current) as f:
        cur = json.load(f)
    for doc, path in ((base, host_baseline), (cur, host_current)):
        if doc.get("schema") != "fgpu.host.v1":
            print(f"note: host doc {path} has schema {doc.get('schema')!r}, "
                  "expected fgpu.host.v1 — skipping host comparison")
            return
    b_wall = base.get("suite_wall_ms", {}).get("min")
    c_wall = cur.get("suite_wall_ms", {}).get("min")
    if not b_wall or not c_wall:
        print("note: host docs lack suite_wall_ms.min — skipping host comparison")
        return
    speedup = b_wall / c_wall
    print(f"host (non-gating): suite wall {b_wall:.0f} ms -> {c_wall:.0f} ms "
          f"({speedup:.2f}x {'faster' if speedup >= 1 else 'slower'}); "
          f"vortex {cur.get('vortex_mips', 0):.2f} simulated MIPS")
    # Turbo throughput trajectory, present since the turbo tier landed.
    # Equally non-gating: dispatch MIPS and the turbo-over-vortex ratio are
    # machine-dependent; the digest gate (--turbo-digests) is what protects
    # correctness.
    b_dispatch = base.get("turbo_dispatch_mips")
    c_dispatch = cur.get("turbo_dispatch_mips")
    if b_dispatch and c_dispatch:
        print(f"turbo (non-gating): dispatch {b_dispatch:.1f} -> {c_dispatch:.1f} MIPS; "
              f"speedup over cycle path "
              f"{base.get('turbo_speedup_over_vortex', 0):.1f}x -> "
              f"{cur.get('turbo_speedup_over_vortex', 0):.1f}x")


def check_turbo_digests(base, cur, minimum, full):
    """GATING turbo-vs-vortex digest cross-check. Returns failures."""
    failures = []
    for doc, which in ((base, "baseline"), (cur, "current")):
        if doc.get("schema") != "fgpu.host.v1":
            failures.append(f"--turbo-digests: {which} doc has schema "
                            f"{doc.get('schema')!r}, expected fgpu.host.v1")
    if failures:
        return failures

    base_benchmarks = by_name(base)
    cur_benchmarks = by_name(cur)
    compared = 0
    for name in sorted(set(base_benchmarks) & set(cur_benchmarks)):
        vortex = base_benchmarks[name].get("vortex")
        turbo = cur_benchmarks[name].get("turbo")
        if vortex is None or turbo is None:
            continue
        if not vortex.get("ok"):
            # The oracle itself failed — nothing to cross-check against.
            failures.append(f"turbo-digests: {name}: cycle-exact reference run not ok")
            continue
        compared += 1
        if not turbo.get("ok"):
            failures.append(f"turbo-digests: {name}: turbo run failed")
            continue
        want = vortex.get("output_digest")
        got = turbo.get("output_digest")
        if want != got:
            failures.append(f"turbo-digests: {name}: digest mismatch "
                            f"(vortex {want}, turbo {got})")
    if compared < minimum:
        failures.append(f"turbo-digests: only {compared} benchmark(s) cross-checked, "
                        f"need >= {minimum} (--turbo-min)")
    if full and compared < 28:
        failures.append(f"turbo-digests: --turbo-full requires the whole 28-benchmark "
                        f"Table I set, got {compared}")
    if not failures:
        print(f"turbo-digests: {compared} benchmarks, every turbo output_digest "
              f"matches the cycle-exact oracle")
    return failures


def check_host_fields(base, cur):
    """GATING fgpu.host.v1 reuse-instrumentation check. Returns failures."""
    failures = []
    for doc, which in ((base, "baseline"), (cur, "current")):
        if doc.get("schema") != "fgpu.host.v1":
            failures.append(f"--host-fields: {which} doc has schema "
                            f"{doc.get('schema')!r}, expected fgpu.host.v1")
    if failures:
        return failures

    reuse = cur.get("reuse")
    if not isinstance(reuse, dict):
        failures.append("host-fields: 'reuse' object missing")
        return failures
    for field in ("device_reuse_count", "kernel_cache_hits", "kernel_cache_misses",
                  "hls_cache_hits", "hls_cache_misses", "workload_cache_hits",
                  "workload_cache_misses", "reference_cache_hits",
                  "reference_cache_misses", "compile_ms", "synth_ms"):
        if field not in reuse:
            failures.append(f"host-fields: reuse.{field} missing")
    if "reuse_devices" not in cur:
        failures.append("host-fields: 'reuse_devices' missing")
    if not isinstance(cur.get("repeats"), int):
        failures.append("host-fields: 'repeats' missing")

    checked = 0
    for bench in cur.get("benchmarks", []):
        for device in ("vortex", "turbo", "hls"):
            entry = bench.get(device)
            if entry is None:
                continue
            checked += 1
            for field in ("setup_ms", "build_ms", "reused"):
                if field not in entry:
                    failures.append(
                        f"host-fields: {bench.get('name')}/{device}.{field} missing")
    if checked == 0:
        failures.append("host-fields: no per-benchmark device entries to check")

    # Liveness: a multi-repeat pooled run that compiled everything from
    # scratch again means the cache key or pool identity regressed.
    if cur.get("reuse_devices") and cur.get("repeats", 0) > 1 and not failures:
        if reuse.get("kernel_cache_hits", 0) <= 0:
            failures.append("host-fields: repeat run recorded zero kernel_cache_hits "
                            "(cache key broken?)")
        if reuse.get("device_reuse_count", 0) <= 0:
            failures.append("host-fields: repeat run recorded zero device_reuse_count "
                            "(pool identity broken?)")

    if not failures:
        hits = reuse.get("kernel_cache_hits", 0)
        misses = reuse.get("kernel_cache_misses", 0)
        total = hits + misses
        rate = hits / total if total else 0.0
        print(f"host-fields: reuse instrumentation present on {checked} device entries; "
              f"kernel cache {hits}/{total} hits ({rate:.0%}), "
              f"{reuse.get('device_reuse_count', 0)} device reuses, "
              f"compile {reuse.get('compile_ms', 0.0):.1f} ms / "
              f"synth {reuse.get('synth_ms', 0.0):.1f} ms")
    return failures


def compare_compare(compare_baseline, compare_current, tolerance):
    """GATING comparison of two fgpu.compare.v1 documents. Returns failures."""
    failures = []
    with open(compare_baseline) as f:
        base = json.load(f)
    with open(compare_current) as f:
        cur = json.load(f)

    for doc, path in ((base, compare_baseline), (cur, compare_current)):
        if doc.get("schema") != "fgpu.compare.v1":
            failures.append(f"compare doc {path} has schema {doc.get('schema')!r}, "
                            "expected fgpu.compare.v1")
    if failures:
        return failures

    base_paths = schema_paths(base)
    cur_paths = schema_paths(cur)
    for path in sorted(base_paths - cur_paths):
        failures.append(f"compare schema drift: field '{path}' vanished")
    for path in sorted(cur_paths - base_paths):
        failures.append(f"compare schema drift: new field '{path}' not in the baseline "
                        "(regenerate BENCH_compare.json and bump the schema tag if breaking)")

    base_benchmarks = by_name(base)
    cur_benchmarks = by_name(cur)
    for name in sorted(set(base_benchmarks) - set(cur_benchmarks)):
        failures.append(f"compare: {name} present in baseline but missing from the run")
    for name in sorted(set(cur_benchmarks) - set(base_benchmarks)):
        failures.append(f"compare: {name} ran but has no baseline entry")

    for name in sorted(set(base_benchmarks) & set(cur_benchmarks)):
        b, c = base_benchmarks[name], cur_benchmarks[name]
        if b.get("coverage") != c.get("coverage"):
            failures.append(
                f"compare: {name} coverage changed {b.get('coverage')!r} -> "
                f"{c.get('coverage')!r} "
                f"(hls fail_reason: {(c.get('hls') or {}).get('fail_reason', '?')!r})")
            continue
        b_speedup = b.get("speedup_hls_over_vortex", 0.0)
        c_speedup = c.get("speedup_hls_over_vortex", 0.0)
        if b_speedup > 0.0 and c_speedup > 0.0:
            drift = abs(c_speedup - b_speedup) / b_speedup
            if drift > tolerance:
                failures.append(
                    f"compare: {name} speedup drift {b_speedup:.4f}x -> {c_speedup:.4f}x "
                    f"({drift:.1%} > {tolerance:.0%} tolerance)")
        elif (b_speedup > 0.0) != (c_speedup > 0.0):
            failures.append(
                f"compare: {name} speedup appeared/vanished "
                f"({b_speedup:.4f}x -> {c_speedup:.4f}x)")

    b_geo = base.get("summary", {}).get("geomean_speedup_hls_over_vortex", 0.0)
    c_geo = cur.get("summary", {}).get("geomean_speedup_hls_over_vortex", 0.0)
    if not failures and b_geo > 0.0 and c_geo > 0.0:
        print(f"compare: geomean HLS-over-vortex speedup {b_geo:.3f}x -> {c_geo:.3f}x; "
              f"{len(base_benchmarks)} benchmarks within {tolerance:.0%}")
    return failures


# Every schema version an fgpu tool exports (the OBSERVABILITY.md index).
# A new exporter must register here AND in the index table, or the
# --schema-list CI lint fails.
KNOWN_SCHEMAS = (
    "fgpu.stats.v1",
    "fgpu.profile.v1",
    "fgpu.hlsprof.v1",
    "fgpu.mem.v1",
    "fgpu.host.v1",
    "fgpu.compare.v1",
    "fgpu.codegen.v1",
    "fgpu.dse.v1",
    "fgpu.fig7.v1",
)


def compare_dse(dse_baseline, dse_current, spearman_min):
    """GATING comparison of two fgpu.dse.v1 documents. Returns failures."""
    failures = []
    with open(dse_baseline) as f:
        base = json.load(f)
    with open(dse_current) as f:
        cur = json.load(f)

    for doc, path in ((base, dse_baseline), (cur, dse_current)):
        if doc.get("schema") != "fgpu.dse.v1":
            failures.append(f"dse doc {path} has schema {doc.get('schema')!r}, "
                            "expected fgpu.dse.v1")
    if failures:
        return failures

    base_paths = schema_paths(base)
    cur_paths = schema_paths(cur)
    for path in sorted(base_paths - cur_paths):
        failures.append(f"dse schema drift: field '{path}' vanished")
    for path in sorted(cur_paths - base_paths):
        failures.append(f"dse schema drift: new field '{path}' not in the baseline "
                        "(regenerate BENCH_dse.json and bump the schema tag if breaking)")

    for field in ("grid", "benchmarks", "opt_level", "exact_budget"):
        if base.get(field) != cur.get(field):
            failures.append(f"dse: sweep parameter {field!r} changed "
                            f"{base.get(field)!r} -> {cur.get(field)!r} "
                            "(baseline and run must use the same grid settings)")

    # Funnel counts: the analytical pre-filter and turbo screen are
    # deterministic, so every stage count must match exactly.
    def flat_counts(doc):
        counts = {}
        funnel = doc.get("funnel", {})
        for key, value in funnel.items():
            if isinstance(value, dict):
                for sub, n in value.items():
                    counts[f"{key}.{sub}"] = n
            else:
                counts[key] = value
        return counts

    base_counts = flat_counts(base)
    cur_counts = flat_counts(cur)
    for key in sorted(set(base_counts) | set(cur_counts)):
        want, got = base_counts.get(key), cur_counts.get(key)
        if want != got:
            failures.append(f"dse: funnel count drift at {key}: {want} -> {got}")

    # Pareto membership is part of the paper-facing result: any change is a
    # real ranking change that demands a refresh (and an EXPERIMENTS.md note).
    base_pareto = list(base.get("pareto", []))
    cur_pareto = list(cur.get("pareto", []))
    for label in sorted(set(base_pareto) - set(cur_pareto)):
        failures.append(f"dse: config {label!r} left the Pareto frontier")
    for label in sorted(set(cur_pareto) - set(base_pareto)):
        failures.append(f"dse: config {label!r} joined the Pareto frontier "
                        "(not in the baseline)")

    # The evaluated slice is byte-deterministic by contract: exact-match the
    # simulated cycles per configuration.
    base_eval = {e.get("config"): e for e in base.get("evaluated", [])}
    cur_eval = {e.get("config"): e for e in cur.get("evaluated", [])}
    for label in sorted(set(base_eval) - set(cur_eval)):
        failures.append(f"dse: evaluated config {label!r} missing from the run")
    for label in sorted(set(cur_eval) - set(base_eval)):
        failures.append(f"dse: evaluated config {label!r} not in the baseline "
                        "(selection drift)")
    for label in sorted(set(base_eval) & set(cur_eval)):
        b, c = base_eval[label], cur_eval[label]
        if b.get("simulated_cycles") != c.get("simulated_cycles"):
            failures.append(
                f"dse: {label}: simulated cycles drift "
                f"{b.get('simulated_cycles')} -> {c.get('simulated_cycles')}")
        if b.get("ok") != c.get("ok"):
            failures.append(f"dse: {label}: ok changed {b.get('ok')} -> {c.get('ok')}")

    spearman = cur.get("spearman")
    if not isinstance(spearman, (int, float)):
        failures.append("dse: 'spearman' missing from the current document")
    elif spearman < spearman_min:
        failures.append(f"dse: Spearman {spearman:.4f} below the floor "
                        f"{spearman_min} (--spearman-min): the analytical "
                        "pre-filter no longer ranks the evaluated slice")

    if not failures:
        funnel = cur.get("funnel", {})
        print(f"dse: {funnel.get('candidates')} candidates -> "
              f"{funnel.get('analytical', {}).get('survivors')} analytical -> "
              f"{funnel.get('screen', {}).get('survivors')} screened -> "
              f"{funnel.get('exact', {}).get('ok')} cycle-exact; "
              f"Spearman {spearman:.4f} >= {spearman_min}, "
              f"{len(cur_pareto)} Pareto members match the baseline")
    return failures


def check_schema_list(paths):
    """Lint: every document's schema tag is a registered version. Returns failures."""
    failures = []
    checked = 0
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            failures.append(f"schema-list: {path}: unreadable ({e})")
            continue
        tag = doc.get("schema") if isinstance(doc, dict) else None
        if tag is None:
            failures.append(f"schema-list: {path}: no 'schema' field")
        elif tag not in KNOWN_SCHEMAS:
            failures.append(f"schema-list: {path}: unknown schema {tag!r} "
                            f"(known: {', '.join(KNOWN_SCHEMAS)})")
        else:
            checked += 1
    if not failures:
        print(f"schema-list: {checked} document(s), every schema tag is registered")
    return failures


def codegen_kernel_signatures(bench):
    """Per-kernel static-metric / pipeline / remark-count signature."""
    sig = {}
    for kernel in bench.get("kernels", []):
        remark_counts = {}
        for r in kernel.get("remarks", []):
            key = (r.get("pass"), r.get("action"))
            remark_counts[key] = remark_counts.get(key, 0) + 1
        sig[kernel.get("kernel")] = {
            "static": {
                "opt_level": kernel.get("opt_level"),
                "barrier_dispatch": kernel.get("barrier_dispatch"),
                "code_words": kernel.get("code_words"),
                "spill_slots": kernel.get("spill_slots"),
                "simt_instructions": kernel.get("simt_instructions"),
                "mem_instructions": kernel.get("mem_instructions"),
            },
            # The whole pipeline shape: stage order, per-stage remark counts,
            # and every before/after IR-size snapshot.
            "passes": [(p.get("pass"), p.get("remarks"),
                        tuple(sorted(p.get("before", {}).items())),
                        tuple(sorted(p.get("after", {}).items())))
                       for p in kernel.get("passes", [])],
            "remarks": remark_counts,
        }
    return sig


def compare_codegen(codegen_baseline, codegen_current):
    """GATING comparison of two fgpu.codegen.v1 documents. Returns failures."""
    failures = []
    with open(codegen_baseline) as f:
        base = json.load(f)
    with open(codegen_current) as f:
        cur = json.load(f)

    for doc, path in ((base, codegen_baseline), (cur, codegen_current)):
        if doc.get("schema") != "fgpu.codegen.v1":
            failures.append(f"codegen doc {path} has schema {doc.get('schema')!r}, "
                            "expected fgpu.codegen.v1")
    if failures:
        return failures

    base_paths = schema_paths(base)
    cur_paths = schema_paths(cur)
    for path in sorted(base_paths - cur_paths):
        failures.append(f"codegen schema drift: field '{path}' vanished")
    for path in sorted(cur_paths - base_paths):
        failures.append(f"codegen schema drift: new field '{path}' not in the baseline "
                        "(regenerate BENCH_codegen.json and bump the schema tag if breaking)")

    base_benchmarks = by_name(base)
    cur_benchmarks = by_name(cur)
    for name in sorted(set(base_benchmarks) - set(cur_benchmarks)):
        failures.append(f"codegen: {name} present in baseline but missing from the run")
    for name in sorted(set(cur_benchmarks) - set(base_benchmarks)):
        failures.append(f"codegen: {name} ran but has no baseline entry")

    kernels = 0
    for name in sorted(set(base_benchmarks) & set(cur_benchmarks)):
        sig_b = codegen_kernel_signatures(base_benchmarks[name])
        sig_c = codegen_kernel_signatures(cur_benchmarks[name])
        for kernel in sorted(set(sig_b) - set(sig_c)):
            failures.append(f"codegen: {name}/{kernel}: kernel vanished")
        for kernel in sorted(set(sig_c) - set(sig_b)):
            failures.append(f"codegen: {name}/{kernel}: new kernel not in baseline")
        for kernel in sorted(set(sig_b) & set(sig_c)):
            kernels += 1
            b, c = sig_b[kernel], sig_c[kernel]
            for field in b["static"]:
                if b["static"][field] != c["static"][field]:
                    failures.append(
                        f"codegen: {name}/{kernel}: {field} drift "
                        f"{b['static'][field]} -> {c['static'][field]}")
            if b["passes"] != c["passes"]:
                # Name the first diverging stage for a readable failure.
                detail = "pipeline shape changed"
                for sb, sc in zip(b["passes"], c["passes"]):
                    if sb != sc:
                        detail = (f"stage {sb[0]!r}: (remarks, before, after) "
                                  f"{sb[1:]} -> {sc[1:]}")
                        break
                else:
                    detail = (f"stage list changed "
                              f"{[p[0] for p in b['passes']]} -> "
                              f"{[p[0] for p in c['passes']]}")
                failures.append(f"codegen: {name}/{kernel}: {detail}")
            for key in sorted(set(b["remarks"]) | set(c["remarks"])):
                want = b["remarks"].get(key, 0)
                got = c["remarks"].get(key, 0)
                if want != got:
                    failures.append(
                        f"codegen: {name}/{kernel}: remark count drift for "
                        f"{key[0]}/{key[1]}: {want} -> {got}")
    if not failures:
        print(f"codegen: {len(base_benchmarks)} benchmarks / {kernels} kernels, every "
              f"static metric, pipeline stage, and remark count matches the baseline")
    return failures


def mem_kernel_signature(bench):
    """Per-(device, kernel) map of per-level miss-class vectors."""
    sig = {}
    for device in ("vortex", "hls"):
        dev = bench.get(device)
        if dev is None:
            continue
        for kernel in dev.get("kernels", []):
            levels = {}
            for level in ("l1d", "l1i", "l2", "readpath"):
                p = kernel.get(level)
                if p is None:
                    continue
                mc = p.get("miss_classes", {})
                levels[level] = (p.get("accesses"), p.get("misses"),
                                 mc.get("compulsory"), mc.get("capacity"),
                                 mc.get("conflict"))
            sig[(device, kernel.get("kernel"))] = levels
    return sig


def compare_mem(mem_baseline, mem_current):
    """GATING comparison of two fgpu.mem.v1 documents. Returns failures."""
    failures = []
    with open(mem_baseline) as f:
        base = json.load(f)
    with open(mem_current) as f:
        cur = json.load(f)

    for doc, path in ((base, mem_baseline), (cur, mem_current)):
        if doc.get("schema") != "fgpu.mem.v1":
            failures.append(f"mem doc {path} has schema {doc.get('schema')!r}, "
                            "expected fgpu.mem.v1")
    if failures:
        return failures

    base_paths = schema_paths(base)
    cur_paths = schema_paths(cur)
    for path in sorted(base_paths - cur_paths):
        failures.append(f"mem schema drift: field '{path}' vanished")
    for path in sorted(cur_paths - base_paths):
        failures.append(f"mem schema drift: new field '{path}' not in the baseline "
                        "(regenerate BENCH_mem.json and bump the schema tag if breaking)")

    base_benchmarks = by_name(base)
    cur_benchmarks = by_name(cur)
    for name in sorted(set(base_benchmarks) - set(cur_benchmarks)):
        failures.append(f"mem: {name} present in baseline but missing from the run")
    for name in sorted(set(cur_benchmarks) - set(base_benchmarks)):
        failures.append(f"mem: {name} ran but has no baseline entry")

    kernels = 0
    for name in sorted(set(base_benchmarks) & set(cur_benchmarks)):
        sig_b = mem_kernel_signature(base_benchmarks[name])
        sig_c = mem_kernel_signature(cur_benchmarks[name])
        for key in sorted(set(sig_b) - set(sig_c)):
            failures.append(f"mem: {name}/{key[0]}/{key[1]}: kernel vanished")
        for key in sorted(set(sig_c) - set(sig_b)):
            failures.append(f"mem: {name}/{key[0]}/{key[1]}: new kernel not in baseline")
        for key in sorted(set(sig_b) & set(sig_c)):
            kernels += 1
            for level in sorted(set(sig_b[key]) | set(sig_c[key])):
                want = sig_b[key].get(level)
                got = sig_c[key].get(level)
                if want != got:
                    failures.append(
                        f"mem: {name}/{key[0]}/{key[1]}/{level}: miss-class drift "
                        f"(accesses, misses, compulsory, capacity, conflict) "
                        f"{want} -> {got}")
    if not failures:
        print(f"mem: {len(base_benchmarks)} benchmarks / {kernels} kernels, every "
              f"per-level miss-class vector matches the baseline")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?",
                        help="golden stats document (unused with --schema-list)")
    parser.add_argument("current", nargs="?",
                        help="freshly generated stats document")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="allowed fractional cycle growth (default 0.10)")
    parser.add_argument("--max-cycles", type=int, default=None,
                        help="allowed absolute per-benchmark cycle growth; "
                             "0 fails on any regression (optimizer gate)")
    parser.add_argument("--exact-cycles", action="store_true",
                        help="fail on ANY cycle delta (gate for host-speed-only changes)")
    parser.add_argument("--host-baseline", help="fgpu.host.v1 baseline (non-gating)")
    parser.add_argument("--host-current", help="fgpu.host.v1 current run (non-gating)")
    parser.add_argument("--mem-baseline",
                        help="fgpu.mem.v1 baseline (GATING, e.g. BENCH_mem.json)")
    parser.add_argument("--mem-current", help="fgpu.mem.v1 current run (GATING)")
    parser.add_argument("--compare-baseline",
                        help="fgpu.compare.v1 baseline (GATING, e.g. BENCH_compare.json)")
    parser.add_argument("--compare-current", help="fgpu.compare.v1 current run (GATING)")
    parser.add_argument("--codegen-baseline",
                        help="fgpu.codegen.v1 baseline (GATING, e.g. BENCH_codegen.json)")
    parser.add_argument("--codegen-current", help="fgpu.codegen.v1 current run (GATING)")
    parser.add_argument("--dse-baseline",
                        help="fgpu.dse.v1 baseline (GATING, standalone; "
                             "e.g. BENCH_dse.json)")
    parser.add_argument("--dse-current", help="fgpu.dse.v1 current run (GATING)")
    parser.add_argument("--spearman-min", type=float, default=0.8,
                        help="minimum Spearman rank correlation the DSE gate "
                             "accepts over the evaluated slice (default 0.8)")
    parser.add_argument("--schema-list", nargs="+", metavar="FILE",
                        help="standalone lint: every listed document's 'schema' "
                             "field must be a registered version")
    parser.add_argument("--speedup-tolerance", type=float, default=0.05,
                        help="allowed fractional speedup-ratio drift, either "
                             "direction (default 0.05)")
    parser.add_argument("--turbo-digests", action="store_true",
                        help="GATE turbo output_digest equality against the "
                             "cycle-exact entries (BASELINE/CURRENT are "
                             "fgpu.host.v1 docs; may be the same file)")
    parser.add_argument("--turbo-min", type=int, default=8,
                        help="minimum benchmarks the --turbo-digests gate must "
                             "cross-check (default 8, the sampled-CI floor)")
    parser.add_argument("--turbo-full", action="store_true",
                        help="--turbo-digests must cover all 28 Table I "
                             "benchmarks (the full-sweep gate)")
    parser.add_argument("--host-fields", action="store_true",
                        help="GATE the fgpu.host.v1 reuse instrumentation "
                             "(BASELINE/CURRENT are host docs; may be the "
                             "same file). Repeat runs must show cache hits "
                             "and device reuse")
    args = parser.parse_args()

    if args.schema_list:
        failures = check_schema_list(args.schema_list)
        if failures:
            print(f"check_baseline: {len(failures)} failure(s) in --schema-list:",
                  file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        return 0

    if args.dse_baseline or args.dse_current:
        if not (args.dse_baseline and args.dse_current):
            parser.error("--dse-baseline and --dse-current must be given together")
        failures = compare_dse(args.dse_baseline, args.dse_current, args.spearman_min)
        if failures:
            print(f"check_baseline: {len(failures)} failure(s) in the DSE gate:",
                  file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        return 0

    if not args.baseline or not args.current:
        parser.error("BASELINE and CURRENT are required (except with --schema-list)")

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    if args.turbo_digests:
        failures = check_turbo_digests(base, cur, args.turbo_min, args.turbo_full)
        if failures:
            print(f"check_baseline: {len(failures)} failure(s) in --turbo-digests:",
                  file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        return 0

    if args.host_fields:
        failures = check_host_fields(base, cur)
        if failures:
            print(f"check_baseline: {len(failures)} failure(s) in --host-fields:",
                  file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        return 0

    failures = []

    if base.get("schema") != cur.get("schema"):
        failures.append(
            f"schema tag drift: baseline {base.get('schema')!r} vs current {cur.get('schema')!r}")

    base_paths = schema_paths(base)
    cur_paths = schema_paths(cur)
    for path in sorted(base_paths - cur_paths):
        failures.append(f"schema drift: field '{path}' vanished from the current stats")
    for path in sorted(cur_paths - base_paths):
        failures.append(f"schema drift: new field '{path}' not in the baseline "
                        "(regenerate BENCH_table1.json and bump the schema tag if breaking)")

    base_benchmarks = by_name(base)
    cur_benchmarks = by_name(cur)
    cycle_table(base_benchmarks, cur_benchmarks)
    for name in sorted(set(base_benchmarks) - set(cur_benchmarks)):
        failures.append(f"{name}: present in baseline but missing from the run")
    for name in sorted(set(cur_benchmarks) - set(base_benchmarks)):
        failures.append(f"{name}: ran but has no baseline entry")

    for name in sorted(set(base_benchmarks) & set(cur_benchmarks)):
        b, c = base_benchmarks[name], cur_benchmarks[name]
        for device in ("vortex", "hls"):
            was, now = device_ok(b, device), device_ok(c, device)
            if was != now:
                failures.append(f"{name}/{device}: ok changed {was} -> {now} "
                                f"(fail_reason: {(c.get(device) or {}).get('fail_reason', '?')!r})")
        if args.exact_cycles:
            for device in ("vortex", "hls"):
                base_cycles = (b.get(device) or {}).get("total_cycles")
                cur_cycles = (c.get(device) or {}).get("total_cycles")
                if base_cycles != cur_cycles:
                    failures.append(
                        f"{name}/{device}: cycle drift under --exact-cycles "
                        f"{base_cycles} -> {cur_cycles}")
        if device_ok(b, "vortex") and device_ok(c, "vortex"):
            base_cycles = b["vortex"]["total_cycles"]
            cur_cycles = c["vortex"]["total_cycles"]
            if args.max_cycles is not None and cur_cycles > base_cycles + args.max_cycles:
                failures.append(
                    f"{name}/vortex: cycles grew {base_cycles} -> {cur_cycles} "
                    f"(+{cur_cycles - base_cycles} > --max-cycles={args.max_cycles})")
            if base_cycles > 0:
                delta = (cur_cycles - base_cycles) / base_cycles
                if delta > args.max_regression:
                    failures.append(
                        f"{name}/vortex: cycle regression {base_cycles} -> {cur_cycles} "
                        f"(+{delta:.1%} > {args.max_regression:.0%})")
                elif delta != 0 and not args.exact_cycles:
                    print(f"note: {name}/vortex cycles {base_cycles} -> {cur_cycles} "
                          f"({delta:+.1%}, within budget)")

    if args.host_baseline and args.host_current:
        compare_host(args.host_baseline, args.host_current)

    if args.mem_baseline and args.mem_current:
        failures.extend(compare_mem(args.mem_baseline, args.mem_current))

    if args.compare_baseline and args.compare_current:
        failures.extend(compare_compare(args.compare_baseline, args.compare_current,
                                        args.speedup_tolerance))

    if args.codegen_baseline and args.codegen_current:
        failures.extend(compare_codegen(args.codegen_baseline, args.codegen_current))

    if failures:
        print(f"check_baseline: {len(failures)} failure(s) vs {args.baseline}:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"check_baseline: {len(base_benchmarks)} benchmarks match the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
