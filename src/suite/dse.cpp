#include "suite/dse.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <ostream>
#include <thread>
#include <tuple>
#include <utility>

#include "codegen/codegen.hpp"
#include "runtime/turbo_device.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/report.hpp"
#include "trace/json.hpp"
#include "vortex/area.hpp"

namespace fgpu::suite {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

DseStageHost stage_host(Clock::time_point t0, size_t count) {
  DseStageHost h;
  h.wall_ms = elapsed_ms(t0);
  h.configs_per_sec = h.wall_ms > 0.0 ? static_cast<double>(count) * 1000.0 / h.wall_ms : 0.0;
  return h;
}

// Work-stealing fan-out: runs fn(i) for i in [0, count) on up to `jobs`
// threads. fn writes into pre-sized slots, so the result is independent of
// the interleaving.
void for_each_index(size_t count, uint32_t jobs, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  const uint32_t workers =
      std::max<uint32_t>(1, std::min<uint32_t>(jobs, static_cast<uint32_t>(count)));
  if (workers == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (uint32_t t = 0; t < workers; ++t) {
    threads.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) fn(i);
    });
  }
  for (auto& th : threads) th.join();
}

struct Workload {
  std::shared_ptr<const Benchmark> bench;
  std::shared_ptr<const std::vector<std::vector<uint32_t>>> reference;
};

// Resolves benchmarks + interpreter references, memoized through the
// shared_* caches when requested.
Result<std::vector<Workload>> resolve_workloads(const std::vector<std::string>& names,
                                                bool reuse) {
  std::vector<Workload> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    Workload w;
    if (reuse) {
      w.bench = shared_benchmark(name);
      w.reference = shared_reference(name);
    } else {
      w.bench = std::make_shared<const Benchmark>(make_benchmark(name));
      auto computed = reference_run(*w.bench);
      if (computed.is_ok()) {
        w.reference = std::make_shared<const std::vector<std::vector<uint32_t>>>(
            std::move(*computed));
      }
    }
    if (w.bench == nullptr || w.bench->launches.empty()) {
      return Result<std::vector<Workload>>(ErrorKind::kNotFound,
                                           "unknown benchmark '" + name + "'");
    }
    out.push_back(std::move(w));
  }
  return out;
}

std::string exact_identity(const ExactPoint& point, int opt_level) {
  return dse_config_label(point.config, *point.board) + ":O" + std::to_string(opt_level);
}

}  // namespace

std::string dse_config_label(const vortex::Config& config, const fpga::Board& board) {
  return config.to_string() + ":l1d" + std::to_string(config.l1d.size_bytes / 1024) + "k:l2" +
         std::to_string(config.l2.size_bytes / 1024) + "k:" + config.dram.name + "@" +
         board.name;
}

std::vector<DseCandidate> enumerate_grid(const std::string& grid) {
  struct Axes {
    std::vector<uint32_t> cores, warps, threads, l1d_kb, l2_kb;
    std::vector<mem::DramConfig> dram;
    std::vector<const fpga::Board*> boards;
  };
  Axes a;
  // A dual-channel DDR4 point sits between the boards' native memories so
  // the channel axis has a middle rung (the HBM-vs-DDR question of §III).
  mem::DramConfig ddr4x2 = mem::DramConfig::ddr4();
  ddr4x2.name = "ddr4x2";
  ddr4x2.channels = 2;
  if (grid == "full") {
    // 5*5*5 * 4*4 * 3 * 2 = 12,000 candidates.
    a.cores = {1, 2, 4, 8, 16};
    a.warps = {2, 4, 8, 16, 32};
    a.threads = {2, 4, 8, 16, 32};
    a.l1d_kb = {8, 16, 32, 64};
    a.l2_kb = {64, 128, 256, 512};
    a.dram = {mem::DramConfig::ddr4(), ddr4x2, mem::DramConfig::hbm2()};
    a.boards = {&fpga::stratix10_sx2800(), &fpga::stratix10_mx2100()};
  } else if (grid == "quick") {
    // 3*3*3 * 2*2 * 2 * 1 = 216 candidates (CI-sized).
    a.cores = {1, 2, 4};
    a.warps = {2, 4, 8};
    a.threads = {2, 4, 8};
    a.l1d_kb = {8, 16};
    a.l2_kb = {64, 128};
    a.dram = {mem::DramConfig::ddr4(), mem::DramConfig::hbm2()};
    a.boards = {&fpga::stratix10_sx2800()};
  } else {
    return {};
  }

  std::vector<DseCandidate> out;
  out.reserve(a.cores.size() * a.warps.size() * a.threads.size() * a.l1d_kb.size() *
              a.l2_kb.size() * a.dram.size() * a.boards.size());
  // Canonical order: board, dram, cores, warps, threads, l1d, l2 (outermost
  // to innermost). The exported document and all funnel decisions follow
  // this order, which is what makes the sweep byte-reproducible.
  for (const fpga::Board* board : a.boards) {
    for (const auto& dram : a.dram) {
      for (uint32_t c : a.cores) {
        for (uint32_t w : a.warps) {
          for (uint32_t t : a.threads) {
            for (uint32_t l1 : a.l1d_kb) {
              for (uint32_t l2 : a.l2_kb) {
                DseCandidate cand;
                cand.config = vortex::Config::with(c, w, t);
                cand.config.l1d.size_bytes = l1 * 1024;
                cand.config.l2.size_bytes = l2 * 1024;
                cand.config.dram = dram;
                cand.board = board;
                cand.label = dse_config_label(cand.config, *board);
                out.push_back(std::move(cand));
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Result<std::vector<vortex::KernelProfile>> profile_benchmark(const Benchmark& bench) {
  using R = Result<std::vector<vortex::KernelProfile>>;
  // Buffer state threads through the launch sequence (profile_kernel's
  // interpreter mutates the scratch copies), so later launches are profiled
  // against the data earlier launches produced — same shape as
  // reference_run.
  std::vector<std::vector<uint32_t>> buffers = bench.buffers;
  std::vector<vortex::KernelProfile> profiles;
  profiles.reserve(bench.launches.size());
  for (const auto& launch : bench.launches) {
    const kir::Kernel* kernel = bench.module.find(launch.kernel);
    if (kernel == nullptr) {
      return R(ErrorKind::kNotFound, bench.name + ": kernel '" + launch.kernel + "' missing");
    }
    std::vector<kir::KernelArg> args;
    args.reserve(launch.args.size());
    for (const auto& spec : launch.args) {
      switch (spec.kind) {
        case ArgSpec::Kind::kBuffer:
          args.push_back(kir::KernelArg::buffer(&buffers[static_cast<size_t>(spec.buffer)]));
          break;
        case ArgSpec::Kind::kI32:
          args.push_back(kir::KernelArg::scalar_i32(spec.i32));
          break;
        case ArgSpec::Kind::kF32:
          args.push_back(kir::KernelArg::scalar_f32(spec.f32));
          break;
      }
    }
    auto profile = vortex::profile_kernel(*kernel, args, launch.ndrange);
    if (!profile.is_ok()) {
      return R(profile.status().kind(), bench.name + ": " + profile.status().message());
    }
    profiles.push_back(*profile);
  }
  return profiles;
}

vortex::Prediction predict_benchmark(const std::vector<vortex::KernelProfile>& profiles,
                                     const vortex::Config& config) {
  vortex::Prediction total;
  double dominant = -1.0;
  for (const auto& profile : profiles) {
    const vortex::Prediction p = vortex::predict_cycles(profile, config);
    total.cycles += p.cycles;
    total.issue_bound += p.issue_bound;
    total.memory_bound += p.memory_bound;
    total.latency_bound += p.latency_bound;
    total.dram_bound += p.dram_bound;
    total.overhead += p.overhead;
    if (p.cycles > dominant) {
      dominant = p.cycles;
      total.bottleneck = p.bottleneck;
    }
  }
  return total;
}

double spearman_rank(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size();
  if (n < 2 || b.size() != n) return 0.0;
  auto ranks = [n](const std::vector<double>& v) {
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> r(n);
    for (size_t i = 0; i < n;) {
      size_t j = i;
      while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
      const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
      for (size_t k = i; k <= j; ++k) r[order[k]] = avg;
      i = j + 1;
    }
    return r;
  };
  const std::vector<double> ra = ranks(a), rb = ranks(b);
  const double mean = (static_cast<double>(n) + 1.0) / 2.0;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = ra[i] - mean, db = rb[i] - mean;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::vector<std::vector<ExactCell>> run_exact_grid(const std::vector<ExactPoint>& points,
                                                   const std::vector<std::string>& benchmarks,
                                                   const ExactGridOptions& options) {
  std::vector<std::vector<ExactCell>> results(points.size(),
                                              std::vector<ExactCell>(benchmarks.size()));
  if (points.empty() || benchmarks.empty()) return results;

  auto workloads = resolve_workloads(benchmarks, options.reuse_workloads);
  if (!workloads.is_ok()) {
    for (auto& row : results) {
      for (auto& cell : row) cell.fail = workloads.status().message();
    }
    return results;
  }

  codegen::Options codegen_options;
  codegen_options.opt_level = options.opt_level;

  for_each_index(points.size(), options.jobs, [&](size_t i) {
    const ExactPoint& point = points[i];
    const std::string identity = exact_identity(point, options.opt_level);
    DeviceSet set = options.pool != nullptr ? options.pool->acquire(identity) : DeviceSet{};
    for (size_t b = 0; b < workloads->size(); ++b) {
      const Workload& w = (*workloads)[b];
      if (set.vortex == nullptr) {
        // The device takes DRAM timing from the board (DRAM is a board
        // property), so realize this candidate's DRAM axis as a board
        // variant — otherwise every point would simulate the stock
        // channel/latency numbers and the dram axis would be dead.
        fpga::Board board = *point.board;
        board.dram = point.config.dram;
        set.vortex = std::make_unique<vcl::VortexDevice>(point.config, board, codegen_options);
      } else {
        set.vortex->reset();
      }
      const DeviceRun run =
          run_benchmark(*set.vortex, *w.bench, w.reference ? w.reference.get() : nullptr);
      ExactCell& cell = results[i][b];
      cell.ok = run.ok();
      cell.cycles = run.total_cycles;
      cell.lsu_stalls = run.last.perf.stall_lsu;
      cell.fail = run.fail_reason;
    }
    if (options.pool != nullptr) options.pool->release(identity, std::move(set));
  });
  return results;
}

DseResult run_dse(const DseOptions& options) {
  DseResult r;
  r.candidates = enumerate_grid(options.grid);
  r.grid_total = r.candidates.size();
  if (r.candidates.empty()) {
    r.error = "unknown grid '" + options.grid + "' (expected quick|full)";
    return r;
  }

  auto workloads = resolve_workloads(options.benchmarks, options.reuse_devices);
  if (!workloads.is_ok()) {
    r.error = workloads.status().message();
    return r;
  }

  // --- stage 1: analytical + area pre-filter over the full grid ----------
  const auto t1 = Clock::now();
  std::vector<std::vector<vortex::KernelProfile>> profiles;
  profiles.reserve(workloads->size());
  std::vector<vortex::KernelProfile> combined;  // all launches, all benchmarks
  uint32_t barrier_lanes = 0;  // largest work-group among barrier launches
  for (const auto& w : *workloads) {
    auto p = profile_benchmark(*w.bench);
    if (!p.is_ok()) {
      r.error = p.status().message();
      return r;
    }
    for (size_t l = 0; l < p->size(); ++l) {
      if ((*p)[l].uses_barriers) {
        barrier_lanes = std::max(barrier_lanes, w.bench->launches[l].ndrange.local_items());
      }
      combined.push_back((*p)[l]);
    }
    profiles.push_back(std::move(*p));
  }

  for (auto& cand : r.candidates) {
    cand.area = vortex::estimate_area(cand.config);
    cand.utilization = cand.board->utilization(cand.area);
    cand.fits = cand.utilization <= 1.0;
    cand.feasible =
        barrier_lanes == 0 || cand.config.warps * cand.config.threads >= barrier_lanes;
    const vortex::Prediction p = predict_benchmark(combined, cand.config);
    cand.predicted_cycles = p.cycles;
    cand.bottleneck = p.bottleneck != nullptr ? p.bottleneck : "";
    if (!cand.feasible) {
      ++r.infeasible;
    } else if (!cand.fits) {
      ++r.unfit;
    } else {
      ++r.analytical_survivors;
    }
  }
  r.host_analytical = stage_host(t1, r.grid_total);

  // --- stage 2: functional screen, deduplicated by (C, W, T) shape -------
  const auto t2 = Clock::now();
  std::map<std::tuple<uint32_t, uint32_t, uint32_t>, std::vector<size_t>> shapes;
  for (size_t i = 0; i < r.candidates.size(); ++i) {
    const DseCandidate& c = r.candidates[i];
    if (!c.feasible || !c.fits) continue;
    shapes[{c.config.cores, c.config.warps, c.config.threads}].push_back(i);
  }
  r.shapes_total = shapes.size();

  struct ShapeJob {
    vortex::Config config;
    const std::vector<size_t>* members = nullptr;
    double best_predicted = 0.0;
    bool ok = false;
  };
  std::vector<ShapeJob> jobs_list;
  jobs_list.reserve(shapes.size());
  for (const auto& [key, members] : shapes) {
    ShapeJob job;
    job.config = vortex::Config::with(std::get<0>(key), std::get<1>(key), std::get<2>(key));
    job.members = &members;
    job.best_predicted = r.candidates[members.front()].predicted_cycles;
    for (size_t idx : members) {
      job.best_predicted = std::min(job.best_predicted, r.candidates[idx].predicted_cycles);
    }
    jobs_list.push_back(job);
  }
  // Budgeted screens take the most promising shapes first (best predicted
  // cycles); unscreened shapes drop out of the funnel, counted as screened
  // shortfall in the shapes_total - shapes_screened gap.
  if (options.screen_budget > 0 && jobs_list.size() > options.screen_budget) {
    std::stable_sort(jobs_list.begin(), jobs_list.end(), [](const auto& a, const auto& b) {
      return a.best_predicted < b.best_predicted;
    });
    jobs_list.resize(options.screen_budget);
  }
  r.shapes_screened = jobs_list.size();

  codegen::Options screen_codegen;
  screen_codegen.opt_level = options.opt_level;
  for_each_index(jobs_list.size(), options.jobs, [&](size_t i) {
    ShapeJob& job = jobs_list[i];
    vcl::TurboDevice device(job.config, fpga::stratix10_sx2800(), screen_codegen);
    bool ok = true;
    for (const auto& w : *workloads) {
      device.reset();
      const DeviceRun run =
          run_benchmark(device, *w.bench, w.reference ? w.reference.get() : nullptr);
      ok = ok && run.ok();
    }
    job.ok = ok;
  });
  for (const ShapeJob& job : jobs_list) {
    if (!job.ok) ++r.shapes_failed;
    for (size_t idx : *job.members) {
      r.candidates[idx].screened = true;
      r.candidates[idx].screen_ok = job.ok;
      if (job.ok) ++r.screen_survivors;
    }
  }
  r.host_screen = stage_host(t2, r.shapes_screened);

  // --- stage 3: cycle-exact slice ----------------------------------------
  const auto t3 = Clock::now();
  std::vector<size_t> survivors;
  for (size_t i = 0; i < r.candidates.size(); ++i) {
    if (r.candidates[i].screened && r.candidates[i].screen_ok) survivors.push_back(i);
  }
  std::stable_sort(survivors.begin(), survivors.end(), [&](size_t x, size_t y) {
    if (r.candidates[x].predicted_cycles != r.candidates[y].predicted_cycles) {
      return r.candidates[x].predicted_cycles < r.candidates[y].predicted_cycles;
    }
    return r.candidates[x].label < r.candidates[y].label;
  });

  // Half the budget goes to the predicted best (the configurations a user
  // would actually pick), half to a stratified sample across the remaining
  // predicted range — without the spread, rank correlation over a top-K-only
  // slice is range-restricted into meaninglessness.
  std::vector<size_t> selected;
  const size_t budget = std::min(options.exact_budget, survivors.size());
  if (budget > 0) {
    const size_t top = std::min(survivors.size(), (budget + 1) / 2);
    for (size_t i = 0; i < top; ++i) selected.push_back(survivors[i]);
    const size_t rest = budget - top;
    const size_t pool_size = survivors.size() - top;
    for (size_t i = 0; i < rest; ++i) {
      selected.push_back(survivors[top + (i * pool_size) / rest]);
    }
  }
  std::sort(selected.begin(), selected.end());  // canonical grid order
  selected.erase(std::unique(selected.begin(), selected.end()), selected.end());
  r.exact_selected = selected.size();

  std::unique_ptr<DevicePool> local_pool;
  DevicePool* pool = options.pool;
  if (pool == nullptr && options.reuse_devices) {
    // Run-local pool, capped: the exact slice visits each identity once, so
    // retention only pays off across repeated sweeps sharing an external
    // pool — cap host memory at a couple of sets per worker otherwise.
    local_pool = std::make_unique<DevicePool>(2 * static_cast<size_t>(options.jobs) + 2);
    pool = local_pool.get();
  }

  std::vector<ExactPoint> points;
  points.reserve(selected.size());
  for (size_t idx : selected) {
    points.push_back(ExactPoint{r.candidates[idx].config, r.candidates[idx].board});
  }
  ExactGridOptions exact;
  exact.jobs = options.jobs;
  exact.opt_level = options.opt_level;
  exact.reuse_workloads = options.reuse_devices;
  exact.pool = pool;
  const auto cells = run_exact_grid(points, options.benchmarks, exact);

  for (size_t i = 0; i < selected.size(); ++i) {
    DseCandidate& cand = r.candidates[selected[i]];
    cand.selected = true;
    cand.simulated = true;
    cand.sim_ok = true;
    cand.simulated_cycles = 0;
    for (const ExactCell& cell : cells[i]) {
      cand.sim_ok = cand.sim_ok && cell.ok;
      cand.simulated_cycles += cell.cycles;
    }
    if (cand.sim_ok) ++r.exact_ok;
  }
  r.host_exact = stage_host(t3, r.exact_selected);

  // Ranking fidelity of the analytical stage over the evaluated slice.
  std::vector<double> predicted, simulated;
  for (const DseCandidate& cand : r.candidates) {
    if (cand.simulated && cand.sim_ok) {
      predicted.push_back(cand.predicted_cycles);
      simulated.push_back(static_cast<double>(cand.simulated_cycles));
    }
  }
  r.spearman = spearman_rank(predicted, simulated);

  // Pareto frontier over (simulated cycles, board utilization) among the
  // successful cycle-exact slice: dominated = some other configuration is
  // no worse on both axes and better on one.
  for (DseCandidate& cand : r.candidates) {
    if (!cand.simulated || !cand.sim_ok) continue;
    bool dominated = false;
    for (const DseCandidate& other : r.candidates) {
      if (&other == &cand || !other.simulated || !other.sim_ok) continue;
      const bool no_worse = other.simulated_cycles <= cand.simulated_cycles &&
                            other.utilization <= cand.utilization;
      const bool better = other.simulated_cycles < cand.simulated_cycles ||
                          other.utilization < cand.utilization;
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    cand.pareto = !dominated;
  }
  return r;
}

void write_dse_json(std::ostream& os, const DseOptions& options, const DseResult& result) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kDseSchema);
  w.field("grid", options.grid);
  w.key("benchmarks").begin_array();
  for (const auto& name : options.benchmarks) w.value(name);
  w.end_array();
  w.field("opt_level", static_cast<int64_t>(options.opt_level));
  w.field("exact_budget", static_cast<uint64_t>(options.exact_budget));

  w.key("funnel").begin_object();
  w.field("candidates", static_cast<uint64_t>(result.grid_total));
  w.key("analytical").begin_object();
  w.field("evaluated", static_cast<uint64_t>(result.grid_total));
  w.field("infeasible", static_cast<uint64_t>(result.infeasible));
  w.field("unfit", static_cast<uint64_t>(result.unfit));
  w.field("survivors", static_cast<uint64_t>(result.analytical_survivors));
  w.end_object();
  w.key("screen").begin_object();
  w.field("shapes", static_cast<uint64_t>(result.shapes_total));
  w.field("screened", static_cast<uint64_t>(result.shapes_screened));
  w.field("failed", static_cast<uint64_t>(result.shapes_failed));
  w.field("survivors", static_cast<uint64_t>(result.screen_survivors));
  w.end_object();
  w.key("exact").begin_object();
  w.field("selected", static_cast<uint64_t>(result.exact_selected));
  w.field("ok", static_cast<uint64_t>(result.exact_ok));
  w.end_object();
  w.end_object();

  w.field("spearman", result.spearman);

  w.key("pareto").begin_array();
  for (const DseCandidate& cand : result.candidates) {
    if (cand.pareto) w.value(cand.label);
  }
  w.end_array();

  // The cycle-exact slice, in canonical grid order.
  w.key("evaluated").begin_array();
  for (const DseCandidate& cand : result.candidates) {
    if (!cand.selected) continue;
    w.begin_object();
    w.field("config", cand.label);
    w.field("board", cand.board->name);
    w.field("predicted_cycles", cand.predicted_cycles);
    w.field("bottleneck", cand.bottleneck);
    w.field("utilization", cand.utilization);
    w.field("area_aluts", cand.area.aluts);
    w.field("area_brams", cand.area.brams);
    w.field("simulated_cycles", cand.simulated_cycles);
    w.field("ok", cand.sim_ok);
    w.field("pareto", cand.pareto);
    w.end_object();
  }
  w.end_array();

  if (options.host_in_stats) {
    // Host wall-clock: nondeterministic, opt-in only (fgpu.host.v1 rule) so
    // the default document stays byte-comparable.
    w.key("host").begin_object();
    auto stage = [&w](const char* name, const DseStageHost& h) {
      w.key(name).begin_object();
      w.field("wall_ms", h.wall_ms);
      w.field("configs_per_sec", h.configs_per_sec);
      w.end_object();
    };
    stage("analytical", result.host_analytical);
    stage("screen", result.host_screen);
    stage("exact", result.host_exact);
    w.end_object();
  }
  w.end_object();
  os << "\n";
}

}  // namespace fgpu::suite
