#include "suite/report.hpp"

#include <cstdio>
#include <string_view>

#include "arch/isa.hpp"

namespace fgpu::suite {

void write_json(trace::JsonWriter& w, const vortex::PerfCounters& perf) {
  w.begin_object();
  w.field("cycles", perf.cycles);
  w.field("instrs", perf.instrs);
  w.field("ipc", perf.ipc());
  w.key("stalls").begin_object();
  w.field("scoreboard", perf.stall_scoreboard);
  w.field("lsu", perf.stall_lsu);
  w.field("fu", perf.stall_fu);
  w.field("ibuffer", perf.stall_ibuffer);
  w.field("barrier", perf.stall_barrier);
  w.field("idle", perf.idle_cycles);
  w.end_object();
  w.key("events").begin_object();
  w.field("loads", perf.loads);
  w.field("stores", perf.stores);
  w.field("atomics", perf.atomics);
  w.field("branches", perf.branches);
  w.field("divergent_branches", perf.divergent_branches);
  w.field("joins", perf.joins);
  w.field("barriers", perf.barriers);
  w.field("warps_spawned", perf.warps_spawned);
  w.end_object();
  w.end_object();
}

void write_json(trace::JsonWriter& w, const mem::MemStats& stats) {
  w.begin_object();
  w.field("reads", stats.reads);
  w.field("writes", stats.writes);
  w.field("hits", stats.hits);
  w.field("misses", stats.misses);
  w.field("evictions", stats.evictions);
  w.field("writebacks", stats.writebacks);
  w.field("mshr_merges", stats.mshr_merges);
  w.field("stall_rejects", stats.stall_rejects);
  w.field("hit_rate", stats.hit_rate());
  w.end_object();
}

void write_json(trace::JsonWriter& w, const fpga::AreaReport& area) {
  w.begin_object();
  w.field("aluts", area.aluts);
  w.field("ffs", area.ffs);
  w.field("brams", area.brams);
  w.field("dsps", area.dsps);
  w.end_object();
}

void write_json(trace::JsonWriter& w, const vortex::ClusterStats& stats) {
  w.begin_object();
  w.key("perf");
  write_json(w, stats.perf);
  w.key("l1d");
  write_json(w, stats.l1d);
  w.key("l1i");
  write_json(w, stats.l1i);
  w.key("l2");
  write_json(w, stats.l2);
  w.key("dram");
  write_json(w, stats.dram);
  w.field("dram_bytes", stats.dram_bytes);
  w.end_object();
}

void write_json(trace::JsonWriter& w, const vcl::LaunchStats& stats, DeviceKind kind) {
  w.begin_object();
  w.field("device_cycles", stats.device_cycles);
  w.field("clock_mhz", stats.clock_mhz);
  w.field("time_ms", stats.time_ms());
  w.field("dram_bytes", stats.dram_bytes);
  if (kind == DeviceKind::kVortex) {
    w.key("perf");
    write_json(w, stats.perf);
    w.key("mem").begin_object();
    w.key("l1d");
    write_json(w, stats.l1d);
    w.key("l2");
    write_json(w, stats.l2);
    w.key("dram");
    write_json(w, stats.dram);
    w.end_object();
  } else if (kind == DeviceKind::kTurbo) {
    // Functional tier: instruction count only. Deliberately no "perf"
    // stall buckets and no cache stats — turbo makes no timing claims
    // (DESIGN.md "Execution tiers").
    w.key("turbo").begin_object();
    w.field("instrs", stats.perf.instrs);
    w.end_object();
  } else {
    w.key("hls").begin_object();
    w.field("pipeline_depth", stats.pipeline_depth);
    w.field("initiation_interval", stats.initiation_interval);
    w.field("memory_stall_cycles", stats.memory_stall_cycles);
    w.end_object();
  }
  w.end_object();
}

void write_json(trace::JsonWriter& w, const KernelProfile& profile) {
  w.begin_object();
  w.field("kernel", profile.kernel);
  w.field("launches", profile.launches);
  w.key("perf");
  write_json(w, profile.perf);
  // Per-PC attribution table, ascending PC (by_pc is ordered). For each
  // bucket, the "stalls" sub-objects sum to perf.stalls exactly.
  w.key("pcs").begin_array();
  for (const auto& [pc, stat] : profile.profile.by_pc) {
    w.begin_object();
    w.field("pc", pc);
    const size_t index = (pc - profile.binary.base) / 4;
    std::string text = "<unknown>";
    if (index < profile.binary.words.size()) {
      const auto instr = arch::decode(profile.binary.words[index]);
      text = instr ? arch::to_string(*instr) : "<invalid>";
    }
    w.field("instr", text);
    w.field("source", profile.source_map.source_for(index));
    w.field("issued", stat.issued);
    w.field("issue_rate", stat.issue_rate());
    w.key("stalls").begin_object();
    w.field("scoreboard", stat.stall_scoreboard);
    w.field("lsu", stat.stall_lsu);
    w.field("fu", stat.stall_fu);
    w.field("ibuffer", stat.stall_ibuffer);
    w.field("barrier", stat.stall_barrier);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  // Warp-occupancy timeline: per-sample warp-slot counts summed over cores
  // (and over this kernel's launches).
  w.field("occupancy_interval", profile.profile.occupancy_interval);
  w.key("occupancy").begin_array();
  for (const auto& sample : profile.profile.occupancy) {
    w.begin_object();
    w.field("cycle", sample.cycle);
    w.field("ready", sample.ready);
    w.field("blocked", sample.blocked);
    w.field("idle", sample.idle);
    w.end_object();
  }
  w.end_array();
  // Sparse per-set eviction histograms (sets with zero conflicts omitted).
  const auto conflicts = [&w](const char* name, const std::vector<uint64_t>& sets) {
    w.key(name).begin_array();
    for (size_t set = 0; set < sets.size(); ++set) {
      if (sets[set] == 0) continue;
      w.begin_object();
      w.field("set", static_cast<uint64_t>(set));
      w.field("evictions", sets[set]);
      w.end_object();
    }
    w.end_array();
  };
  w.key("cache_conflicts").begin_object();
  conflicts("l1d", profile.profile.l1d_set_conflicts);
  conflicts("l2", profile.profile.l2_set_conflicts);
  w.end_object();
  w.end_object();
}

void write_json(trace::JsonWriter& w, const hls::SynthReport& synth) {
  w.begin_object();
  w.field("kernel", synth.kernel);
  w.field("board", synth.board);
  w.field("fits", synth.fits);
  w.field("verdict", synth.verdict);
  w.field("utilization", synth.utilization);
  w.field("bottleneck", synth.bottleneck);
  w.field("pipeline_depth", synth.pipeline_depth);
  w.field("synthesis_hours", synth.synthesis_hours);
  w.key("sites").begin_object();
  w.field("burst_load", synth.burst_load_sites);
  w.field("pipelined_load", synth.pipelined_load_sites);
  w.field("store", synth.store_sites);
  w.end_object();
  w.key("total");
  write_json(w, synth.total);
  // Per-module breakdown in synthesis order; module areas sum to "total"
  // exactly (the Table II-IV rows).
  w.key("modules").begin_array();
  for (const auto& row : synth.rows) {
    w.begin_object();
    w.field("module", row.module);
    w.field("detail", row.detail);
    w.key("area");
    write_json(w, row.area);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_json(trace::JsonWriter& w, const HlsKernelProfile& profile) {
  w.begin_object();
  w.field("kernel", profile.kernel);
  w.field("launches", profile.launches);
  w.field("device_cycles", profile.device_cycles);
  w.field("memory_stall_cycles", profile.memory_stall_cycles);
  w.key("synth");
  write_json(w, profile.synth);
  // Per-site attribution table in access-site order. "stall_cycles" over
  // the sites sums to memory_stall_cycles exactly; "occupancy_share" is the
  // site's fraction of the II-driving memory-interface occupancy.
  double occupancy_total = 0.0;
  for (const auto& site : profile.sites) occupancy_total += site.occupancy_cycles;
  w.key("sites").begin_array();
  for (const auto& site : profile.sites) {
    w.begin_object();
    w.field("site", site.site);
    w.field("buffer", site.buffer);
    w.field("source", site.source);
    w.field("lsu", site.lsu);
    w.field("pattern", site.pattern);
    w.field("in_loop", site.in_loop);
    w.field("requests", site.requests);
    w.field("bytes", site.bytes);
    w.field("occupancy_cycles", site.occupancy_cycles);
    w.field("occupancy_share",
            occupancy_total > 0.0 ? site.occupancy_cycles / occupancy_total : 0.0);
    w.field("stall_cycles", site.stall_cycles);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_json(trace::JsonWriter& w, const mem::CacheMemProfile& profile) {
  w.begin_object();
  // Geometry of the shadow fully-associative LRU stack that classifies
  // misses: conflict = would hit in a same-capacity FA cache, capacity =
  // would miss there too, compulsory = first touch of the line.
  w.field("shadow_lines", profile.shadow_lines);
  w.field("accesses", profile.accesses);
  w.field("misses", profile.misses);
  // Exact-sum contract: compulsory + capacity + conflict == misses
  // (asserted by tests/test_memprof.cpp).
  w.key("miss_classes").begin_object();
  w.field("compulsory", profile.classes.compulsory);
  w.field("capacity", profile.classes.capacity);
  w.field("conflict", profile.classes.conflict);
  w.end_object();
  // Reuse-distance histogram over line-granular stack distances, log2
  // buckets: bucket 0 holds distance 0, bucket b holds [2^(b-1), 2^b).
  // "cold" counts first-touch accesses (no finite distance); cold + the
  // bucket counts == accesses exactly. Sparse: zero buckets omitted.
  w.field("cold", profile.cold);
  w.key("reuse").begin_array();
  for (uint32_t b = 0; b < mem::kReuseBuckets; ++b) {
    if (profile.reuse[b] == 0) continue;
    w.begin_object();
    w.field("bucket", b);
    w.field("count", profile.reuse[b]);
    w.end_object();
  }
  w.end_array();
  // Time-weighted MSHR occupancy: cycles spent with exactly N MSHRs in
  // flight. Sparse; empty for shadow-only (HLS read-path) profiles, which
  // have no timed MSHR file.
  w.key("mshr_occupancy").begin_array();
  for (size_t n = 0; n < profile.mshr_cycles.size(); ++n) {
    if (profile.mshr_cycles[n] == 0) continue;
    w.begin_object();
    w.field("mshrs", static_cast<uint64_t>(n));
    w.field("cycles", profile.mshr_cycles[n]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_json(trace::JsonWriter& w, const mem::DramMemProfile& profile) {
  w.begin_object();
  w.field("channels", static_cast<uint64_t>(profile.channels.size()));
  w.field("total_requests", profile.total_requests());
  // Peak-over-mean channel load; 1.0 = perfectly balanced interleave.
  w.field("imbalance", profile.imbalance());
  w.key("per_channel").begin_array();
  for (size_t c = 0; c < profile.channels.size(); ++c) {
    const auto& ch = profile.channels[c];
    w.begin_object();
    w.field("channel", static_cast<uint64_t>(c));
    w.field("reads", ch.reads);
    w.field("writes", ch.writes);
    w.field("busy_cycles", ch.busy_cycles());
    const uint64_t busy = ch.busy_cycles();
    w.field("mean_busy_depth",
            busy ? static_cast<double>(ch.weighted_depth()) / static_cast<double>(busy) : 0.0);
    // Time-weighted queue-depth histogram: cycles at each depth. Sparse;
    // depth 0 (idle) omitted along with other zero entries.
    w.key("depth_cycles").begin_array();
    for (size_t d = 0; d < ch.depth_cycles.size(); ++d) {
      if (ch.depth_cycles[d] == 0) continue;
      w.begin_object();
      w.field("depth", static_cast<uint64_t>(d));
      w.field("cycles", ch.depth_cycles[d]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

namespace {

// Per-PC miss-class attribution with the same instruction + KIR provenance
// join as the fgpu.profile.v1 PC table (by_tag keys are PCs here).
void write_by_pc(trace::JsonWriter& w, const char* name, const KernelMemProfile& profile,
                 const mem::CacheMemProfile& level) {
  w.key(name).begin_array();
  for (const auto& [pc, classes] : level.by_tag) {
    w.begin_object();
    w.field("pc", pc);
    const size_t index = (pc - profile.binary.base) / 4;
    std::string text = "<unknown>";
    if (index < profile.binary.words.size()) {
      const auto instr = arch::decode(profile.binary.words[index]);
      text = instr ? arch::to_string(*instr) : "<invalid>";
    }
    w.field("instr", text);
    w.field("source", profile.source_map.source_for(index));
    w.field("misses", classes.total());
    w.field("compulsory", classes.compulsory);
    w.field("capacity", classes.capacity);
    w.field("conflict", classes.conflict);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

void write_json(trace::JsonWriter& w, const KernelMemProfile& profile) {
  w.begin_object();
  w.field("kernel", profile.kernel);
  w.field("launches", profile.launches);
  if (!profile.is_hls) {
    // Soft-GPU hierarchy: per-level profiles (cores summed), L1D and L2
    // with per-PC attribution, plus the DRAM occupancy/imbalance view.
    w.key("l1d");
    write_json(w, profile.mem.l1d);
    write_by_pc(w, "l1d_by_pc", profile, profile.mem.l1d);
    w.key("l1i");
    write_json(w, profile.mem.l1i);
    w.key("l2");
    write_json(w, profile.mem.l2);
    write_by_pc(w, "l2_by_pc", profile, profile.mem.l2);
    w.key("dram");
    write_json(w, profile.mem.dram);
  } else {
    // HLS burst-LSU read path: shadow cache with the soft-GPU L1D geometry
    // (reference locality model — the analytical HLS pipeline has no timed
    // cache), attributed per AccessSite.
    w.key("readpath");
    write_json(w, profile.hls_mem);
    w.key("by_site").begin_array();
    for (const auto& [tag, classes] : profile.hls_mem.by_tag) {
      w.begin_object();
      if (tag < profile.sites.size()) {
        const auto& site = profile.sites[tag];
        w.field("site", tag);
        w.field("buffer", site.buffer);
        w.field("source", site.source);
        w.field("lsu", site.lsu);
        w.field("pattern", site.pattern);
      } else {
        w.field("site", static_cast<int64_t>(-1));
        w.field("buffer", "<unmapped>");
        w.field("source", "<unmapped>");
        w.field("lsu", "");
        w.field("pattern", "");
      }
      w.field("misses", classes.total());
      w.field("compulsory", classes.compulsory);
      w.field("capacity", classes.capacity);
      w.field("conflict", classes.conflict);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

void write_json(trace::JsonWriter& w, const DeviceRun& run, DeviceKind kind,
                const std::string& device_name) {
  w.begin_object();
  w.field("device", device_name);
  w.field("build_ok", run.build.is_ok());
  w.field("run_ok", run.run.is_ok());
  w.field("verify_ok", run.verify.is_ok());
  w.field("ok", run.ok());
  w.field("fail_reason", run.fail_reason);
  w.field("total_cycles", run.total_cycles);
  w.field("total_instrs", run.total_instrs);
  w.field("total_time_ms", run.total_time_ms);
  // Hex so the 64-bit value survives JSON readers that parse numbers as
  // doubles. Identical across opt levels when the optimizer is sound.
  {
    char digest[19];
    std::snprintf(digest, sizeof(digest), "0x%016llx",
                  static_cast<unsigned long long>(run.output_digest));
    w.field("output_digest", std::string_view(digest));
  }
  if (kind == DeviceKind::kHls) {
    w.field("synthesis_hours", run.synthesis_hours);
    w.key("area");
    write_json(w, run.area);
  }
  if (run.ok()) {
    w.key("last_launch");
    write_json(w, run.last, kind);
  }
  w.end_object();
}

}  // namespace fgpu::suite
