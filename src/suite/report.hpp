// Structured stats export: serializes the simulator's counter types
// (vortex::PerfCounters, vortex::ClusterStats, mem::MemStats,
// fpga::AreaReport, vcl::LaunchStats, suite::DeviceRun) to the versioned
// JSON schema documented field-by-field in OBSERVABILITY.md.
//
// The writers are deliberately free functions over a JsonWriter so bench
// binaries and the suite runner compose them into larger documents (one
// file per suite run) instead of each maintaining an ad-hoc printf table.
//
// Determinism contract: output depends only on the counter values — no
// wall-clock time, hostnames, pointers, or iteration over unordered
// containers — so two runs of the same workloads produce byte-identical
// JSON regardless of --jobs (asserted by tests/test_runner.cpp).
#pragma once

#include "fpga/board.hpp"
#include "mem/timing.hpp"
#include "suite/suite.hpp"
#include "trace/json.hpp"
#include "vortex/cluster.hpp"
#include "vortex/perf.hpp"

namespace fgpu::suite {

// Version tag stamped into every stats document. Bump on any breaking
// change to field names, units, or aggregation rules (OBSERVABILITY.md).
inline constexpr const char* kStatsSchema = "fgpu.stats.v1";

// Version tag of the per-PC profiler export (fgpu-run --profile; see
// OBSERVABILITY.md "Profiles" for the field-by-field schema).
inline constexpr const char* kProfileSchema = "fgpu.profile.v1";

// Version tag of the host-throughput export (fgpu-run --host-json; see
// OBSERVABILITY.md "Host throughput"). Host wall-clock lives in its own
// document — never in fgpu.stats.v1, whose determinism contract (byte-
// identical across --jobs and hosts) forbids any host-time field.
inline constexpr const char* kHostSchema = "fgpu.host.v1";

// Version tag of the HLS per-site profile export (fgpu-run --hlsprof; see
// OBSERVABILITY.md "HLS profiles"): per-access-site stall/occupancy
// attribution with KIR provenance plus the structured synthesis report.
inline constexpr const char* kHlsProfSchema = "fgpu.hlsprof.v1";

// Version tag of the memory-hierarchy profile export (fgpu-run --memprof;
// see OBSERVABILITY.md "Memory profiles"): per-level 3C miss
// classification, reuse-distance histograms, MSHR/DRAM occupancy
// histograms, and per-PC / per-AccessSite miss attribution.
inline constexpr const char* kMemSchema = "fgpu.mem.v1";

// Version tag of the compiler-observability export (fgpu-run --remarks; see
// OBSERVABILITY.md "Codegen reports"): per-pass telemetry (IR-size and
// pressure deltas, remark counts) plus the structured optimization-remark
// stream with KIR provenance, optionally cycle-joined into a hotspot
// ranking. Contains no wall-clock fields — per-pass times stay in memory.
inline constexpr const char* kCodegenSchema = "fgpu.codegen.v1";

// Version tag of the design-space-exploration export (fgpu-run --dse; see
// OBSERVABILITY.md "Design-space exploration"): three-stage funnel counts
// (analytical prune -> turbo screen -> cycle-exact slice), the evaluated
// slice with predicted vs simulated cycles, the (cycles, utilization)
// Pareto frontier, and the Spearman rank correlation of the analytical
// model. Byte-identical across --jobs and fresh-vs-pooled devices; host
// throughput appears only under the host_in_stats opt-in.
inline constexpr const char* kDseSchema = "fgpu.dse.v1";

// Which sections of a LaunchStats/DeviceRun are meaningful.
enum class DeviceKind { kVortex, kHls, kTurbo };

// Each writes one JSON object at the writer's current position.
void write_json(trace::JsonWriter& w, const vortex::PerfCounters& perf);
void write_json(trace::JsonWriter& w, const mem::MemStats& stats);
void write_json(trace::JsonWriter& w, const fpga::AreaReport& area);
void write_json(trace::JsonWriter& w, const vortex::ClusterStats& stats);
void write_json(trace::JsonWriter& w, const vcl::LaunchStats& stats, DeviceKind kind);
void write_json(trace::JsonWriter& w, const DeviceRun& run, DeviceKind kind,
                const std::string& device_name);
// One kernel's accumulated per-PC profile (per-PC table with decoded
// instructions and KIR provenance, occupancy timeline, cache-conflict
// histograms) — the "kernels" array elements of fgpu.profile.v1.
void write_json(trace::JsonWriter& w, const KernelProfile& profile);
// Structured HLS synthesis report: per-module area rows + fitter verdict.
void write_json(trace::JsonWriter& w, const hls::SynthReport& synth);
// One kernel's accumulated per-site HLS attribution — the "kernels" array
// elements of fgpu.hlsprof.v1.
void write_json(trace::JsonWriter& w, const HlsKernelProfile& profile);
// One cache level's memory profile (miss classes, reuse-distance and MSHR
// occupancy histograms); by_tag attribution is written by the callers that
// know how to render the tags.
void write_json(trace::JsonWriter& w, const mem::CacheMemProfile& profile);
// DRAM side of the memory profile: per-channel request counts, queue-depth
// histograms, bandwidth busy cycles, and the imbalance summary.
void write_json(trace::JsonWriter& w, const mem::DramMemProfile& profile);
// One kernel's accumulated memory-hierarchy profile — the "kernels" array
// elements of fgpu.mem.v1 (vortex levels with per-PC provenance joins, or
// the HLS read-path shadow profile with per-site joins).
void write_json(trace::JsonWriter& w, const KernelMemProfile& profile);

}  // namespace fgpu::suite
