#include "suite/suite.hpp"

#include <chrono>
#include <mutex>
#include <unordered_map>

#include "codegen/codegen.hpp"
#include "kir/interp.hpp"
#include "kir/passes.hpp"

namespace fgpu::suite {

// Factories defined across the suite/bench_*.cpp files.
Benchmark make_vecadd();
Benchmark make_sgemm();
Benchmark make_psort();
Benchmark make_saxpy();
Benchmark make_sfilter();
Benchmark make_dotproduct();
Benchmark make_spmv();
Benchmark make_cutcp();
Benchmark make_stencil();
Benchmark make_lbm();
Benchmark make_oclprintf();
Benchmark make_blackscholes();
Benchmark make_matmul();
Benchmark make_transpose();
Benchmark make_kmeans();
Benchmark make_nearn();
Benchmark make_gaussian();
Benchmark make_bfs();
Benchmark make_backprop();
Benchmark make_streamcluster();
Benchmark make_pathfinder();
Benchmark make_nw();
Benchmark make_btree();
Benchmark make_lavamd();
Benchmark make_hybridsort();
Benchmark make_particlefilter();
Benchmark make_dwt2d();
Benchmark make_lud();

const std::vector<std::string>& all_benchmark_names() {
  static const std::vector<std::string> names = {
      "vecadd",       "sgemm",      "psort",      "saxpy",        "sfilter",
      "dotproduct",   "spmv",       "cutcp",      "stencil",      "lbm",
      "oclprintf",    "blackscholes", "matmul",   "transpose",    "kmeans",
      "nearn",        "gaussian",   "bfs",        "backprop",     "streamcluster",
      "pathfinder",   "nw",         "b+tree",     "lavamd",       "hybridsort",
      "particlefilter", "dwt2d",    "lud",
  };
  return names;
}

Benchmark make_benchmark(const std::string& name) {
  using Factory = Benchmark (*)();
  static const std::unordered_map<std::string, Factory> factories = {
      {"vecadd", make_vecadd},
      {"sgemm", make_sgemm},
      {"psort", make_psort},
      {"saxpy", make_saxpy},
      {"sfilter", make_sfilter},
      {"dotproduct", make_dotproduct},
      {"spmv", make_spmv},
      {"cutcp", make_cutcp},
      {"stencil", make_stencil},
      {"lbm", make_lbm},
      {"oclprintf", make_oclprintf},
      {"blackscholes", make_blackscholes},
      {"matmul", make_matmul},
      {"transpose", make_transpose},
      {"kmeans", make_kmeans},
      {"nearn", make_nearn},
      {"gaussian", make_gaussian},
      {"bfs", make_bfs},
      {"backprop", make_backprop},
      {"streamcluster", make_streamcluster},
      {"pathfinder", make_pathfinder},
      {"nw", make_nw},
      {"b+tree", make_btree},
      {"lavamd", make_lavamd},
      {"hybridsort", make_hybridsort},
      {"particlefilter", make_particlefilter},
      {"dwt2d", make_dwt2d},
      {"lud", make_lud},
  };
  auto it = factories.find(name);
  if (it == factories.end()) {
    Benchmark none;
    none.name = "<unknown:" + name + ">";
    return none;
  }
  Benchmark bench = it->second();
  bench.name = name;
  return bench;
}

namespace {

struct WorkloadCache {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<const Benchmark>> entries;
  // Memoized reference_run results, same keying and lifetime as entries.
  std::unordered_map<std::string, std::shared_ptr<const std::vector<std::vector<uint32_t>>>>
      references;
  WorkloadCacheStats stats;
};

WorkloadCache& workload_cache() {
  static WorkloadCache cache;
  return cache;
}

}  // namespace

std::shared_ptr<const Benchmark> shared_benchmark(const std::string& name) {
  WorkloadCache& cache = workload_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.entries.find(name);
    if (it != cache.entries.end()) {
      ++cache.stats.hits;
      return it->second;
    }
  }
  // Generate unlocked (matrix fills and graph construction are the cost
  // being cached); insert first-wins — factories are deterministic, so
  // racing instances are identical.
  auto bench = std::make_shared<const Benchmark>(make_benchmark(name));
  std::lock_guard<std::mutex> lock(cache.mu);
  ++cache.stats.misses;
  auto [it, inserted] = cache.entries.emplace(name, std::move(bench));
  (void)inserted;
  return it->second;
}

WorkloadCacheStats workload_cache_stats() {
  WorkloadCache& cache = workload_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.stats;
}

void clear_workload_cache() {
  WorkloadCache& cache = workload_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
  cache.references.clear();
  cache.stats = WorkloadCacheStats{};
}

std::shared_ptr<const std::vector<std::vector<uint32_t>>> shared_reference(
    const std::string& name) {
  WorkloadCache& cache = workload_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.references.find(name);
    if (it != cache.references.end()) {
      ++cache.stats.reference_hits;
      return it->second;
    }
  }
  // Interpret unlocked (this is the expensive part being memoized); the
  // oracle is deterministic, so racing results are identical — first
  // insert wins. Failures are not cached: the per-run fallback reports
  // them with full context, and they never happen on the shipping suite.
  auto bench = shared_benchmark(name);
  auto computed = reference_run(*bench);
  if (!computed.is_ok()) return nullptr;
  auto ref =
      std::make_shared<const std::vector<std::vector<uint32_t>>>(std::move(*computed));
  std::lock_guard<std::mutex> lock(cache.mu);
  ++cache.stats.reference_misses;
  auto [it, inserted] = cache.references.emplace(name, std::move(ref));
  (void)inserted;
  return it->second;
}

Result<std::vector<std::vector<uint32_t>>> reference_run(const Benchmark& bench) {
  // Oracle runs the builtin-expanded module (the form both devices execute).
  kir::Module module = bench.module;
  for (auto& kernel : module.kernels) {
    kernel = kir::clone_kernel(kernel);
    kir::expand_builtins(kernel);
  }
  std::vector<std::vector<uint32_t>> buffers = bench.buffers;
  kir::Interpreter interp;
  for (const auto& launch : bench.launches) {
    const kir::Kernel* kernel = module.find(launch.kernel);
    if (kernel == nullptr) {
      return Result<std::vector<std::vector<uint32_t>>>(
          ErrorKind::kNotFound, bench.name + ": kernel '" + launch.kernel + "' missing");
    }
    std::vector<kir::KernelArg> args;
    for (const auto& spec : launch.args) {
      switch (spec.kind) {
        case ArgSpec::Kind::kBuffer:
          args.push_back(kir::KernelArg::buffer(&buffers[static_cast<size_t>(spec.buffer)]));
          break;
        case ArgSpec::Kind::kI32:
          args.push_back(kir::KernelArg::scalar_i32(spec.i32));
          break;
        case ArgSpec::Kind::kF32:
          args.push_back(kir::KernelArg::scalar_f32(spec.f32));
          break;
      }
    }
    if (auto st = interp.run(*kernel, args, launch.ndrange); !st.is_ok()) {
      return Result<std::vector<std::vector<uint32_t>>>(st.kind(), st.message());
    }
  }
  return buffers;
}

DeviceRun run_benchmark(vcl::Device& device, const Benchmark& bench,
                        const std::vector<std::vector<uint32_t>>* expected) {
  DeviceRun result;
  device.clear_console();

  const auto build_t0 = std::chrono::steady_clock::now();
  result.build = device.build(bench.module);
  result.build_host_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - build_t0)
          .count();
  for (const auto& info : device.build_info()) {
    result.area += info.area;
    result.synthesis_hours += info.synthesis_hours;
    // HLS builds carry a structured synthesis report per kernel (synth.kernel
    // is empty on the soft GPU). Seed the per-kernel HLS profile from it now
    // so failed fits — the interesting Table II rows — are reported too.
    if (!info.synth.kernel.empty()) {
      HlsKernelProfile& hp = result.hls_profiles.emplace_back();
      hp.kernel = info.kernel;
      hp.synth = info.synth;
    }
    // Soft-GPU builds expose the full compile; keep it when remarks were
    // collected so the runner can export fgpu.codegen.v1 (build order).
    if (info.compiled && info.compiled->report.collected) {
      result.codegen.push_back(KernelCodegen{info.kernel, info.compiled});
    }
  }
  if (!result.build.is_ok()) {
    // Table-I-style short reason.
    switch (result.build.kind()) {
      case ErrorKind::kResourceExceeded: {
        const std::string& msg = result.build.message();
        result.fail_reason = msg.find("BRAM") != std::string::npos ? "Not enough BRAM"
                                                                   : "Not enough resources";
        break;
      }
      case ErrorKind::kUnsupported:
        result.fail_reason = "Atomics";
        break;
      default:
        result.fail_reason = "Compile error";
        break;
    }
    return result;
  }

  // Upload buffers.
  std::vector<vcl::Buffer> dev_buffers;
  dev_buffers.reserve(bench.buffers.size());
  for (const auto& host : bench.buffers) {
    vcl::Buffer b = device.alloc(host.size() * 4);
    device.write(b, host.data(), host.size() * 4, 0);
    dev_buffers.push_back(b);
  }

  // Execute the launch sequence.
  for (const auto& launch : bench.launches) {
    std::vector<vcl::Arg> args;
    for (const auto& spec : launch.args) {
      switch (spec.kind) {
        case ArgSpec::Kind::kBuffer:
          args.push_back(dev_buffers[static_cast<size_t>(spec.buffer)]);
          break;
        case ArgSpec::Kind::kI32:
          args.push_back(spec.i32);
          break;
        case ArgSpec::Kind::kF32:
          args.push_back(spec.f32);
          break;
      }
    }
    const auto launch_t0 = std::chrono::steady_clock::now();
    auto stats = device.launch(launch.kernel, args, launch.ndrange);
    result.launch_host_ms +=
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - launch_t0)
            .count();
    if (!stats.is_ok()) {
      result.run = stats.status();
      result.fail_reason = "Runtime error";
      return result;
    }
    result.total_cycles += stats->device_cycles;
    result.total_instrs += stats->perf.instrs;
    result.total_time_ms += stats->time_ms();
    if (!stats->hls_sites.empty() || stats->pipeline_depth > 0) {
      for (auto& hp : result.hls_profiles) {
        if (hp.kernel != launch.kernel) continue;
        ++hp.launches;
        hp.device_cycles += stats->device_cycles;
        hp.memory_stall_cycles += stats->memory_stall_cycles;
        if (hp.sites.empty()) {
          hp.sites = stats->hls_sites;
        } else {
          // Same design every launch: accumulate the dynamic columns.
          for (size_t s = 0; s < hp.sites.size() && s < stats->hls_sites.size(); ++s) {
            hp.sites[s].requests += stats->hls_sites[s].requests;
            hp.sites[s].bytes += stats->hls_sites[s].bytes;
            hp.sites[s].occupancy_cycles += stats->hls_sites[s].occupancy_cycles;
            hp.sites[s].stall_cycles += stats->hls_sites[s].stall_cycles;
          }
        }
        break;
      }
    }
    if (stats->profile.enabled) {
      KernelProfile* kp = nullptr;
      for (auto& existing : result.kernel_profiles) {
        if (existing.kernel == launch.kernel) kp = &existing;
      }
      if (kp == nullptr) {
        kp = &result.kernel_profiles.emplace_back();
        kp->kernel = launch.kernel;
        if (const auto* info = device.find_build_info(launch.kernel)) {
          kp->binary = info->binary;
          kp->source_map = info->source_map;
        }
      }
      ++kp->launches;
      kp->profile.merge(stats->profile);
      // Across launches cycles add up (accumulate()'s max rule is for
      // cores within one launch).
      const uint64_t cycles = kp->perf.cycles + stats->perf.cycles;
      kp->perf.accumulate(stats->perf);
      kp->perf.cycles = cycles;
    }
    if (stats->memprof.enabled || stats->hls_mem_enabled) {
      KernelMemProfile* mp = nullptr;
      for (auto& existing : result.mem_profiles) {
        if (existing.kernel == launch.kernel) mp = &existing;
      }
      if (mp == nullptr) {
        mp = &result.mem_profiles.emplace_back();
        mp->kernel = launch.kernel;
        if (stats->memprof.enabled) {
          if (const auto* info = device.find_build_info(launch.kernel)) {
            mp->binary = info->binary;
            mp->source_map = info->source_map;
          }
        }
      }
      ++mp->launches;
      if (stats->memprof.enabled) mp->mem.merge(stats->memprof);
      if (stats->hls_mem_enabled) {
        mp->is_hls = true;
        mp->hls_mem.merge(stats->hls_mem);
        if (mp->sites.empty()) mp->sites = stats->hls_sites;
      }
    }
    result.last = *stats;
  }

  // Download final state.
  std::vector<std::vector<uint32_t>> final_buffers;
  final_buffers.reserve(dev_buffers.size());
  for (size_t i = 0; i < dev_buffers.size(); ++i) {
    std::vector<uint32_t> host(bench.buffers[i].size());
    device.read(dev_buffers[i], host.data(), host.size() * 4, 0);
    final_buffers.push_back(std::move(host));
  }

  // Digest the checked buffers (all of them when the benchmark does not
  // narrow the set). FNV-1a over (index, length, words) so buffer identity
  // and shape are part of the hash, not just the payload.
  {
    std::vector<int> digest_indices = bench.checked_buffers;
    if (digest_indices.empty()) {
      for (size_t i = 0; i < final_buffers.size(); ++i) {
        digest_indices.push_back(static_cast<int>(i));
      }
    }
    uint64_t h = 14695981039346656037ull;
    auto mix = [&h](uint64_t v) {
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (byte * 8)) & 0xFF;
        h *= 1099511628211ull;
      }
    };
    for (int index : digest_indices) {
      const auto& buf = final_buffers[static_cast<size_t>(index)];
      mix(static_cast<uint64_t>(index));
      mix(buf.size());
      for (uint32_t w : buf) mix(w);
    }
    result.output_digest = h;
  }

  // Verify.
  if (bench.custom_verify) {
    result.verify = bench.custom_verify(final_buffers, device.console());
  } else {
    // Use the caller's memoized oracle buffers when supplied, else run the
    // reference interpreter inline (identical by determinism).
    Result<std::vector<std::vector<uint32_t>>> computed(std::vector<std::vector<uint32_t>>{});
    if (expected == nullptr) computed = reference_run(bench);
    if (!computed.is_ok()) {
      result.verify = computed.status();
    } else {
      const auto& oracle = expected != nullptr ? *expected : *computed;
      std::vector<int> indices = bench.checked_buffers;
      if (indices.empty()) {
        for (size_t i = 0; i < final_buffers.size(); ++i) indices.push_back(static_cast<int>(i));
      }
      for (int index : indices) {
        const auto& got = final_buffers[static_cast<size_t>(index)];
        const auto& want = oracle[static_cast<size_t>(index)];
        for (size_t j = 0; j < got.size(); ++j) {
          if (got[j] != want[j]) {
            result.verify = Status(
                ErrorKind::kRuntimeError,
                bench.name + ": buffer " + std::to_string(index) + " element " +
                    std::to_string(j) + " mismatch (got 0x" + std::to_string(got[j]) +
                    ", want 0x" + std::to_string(want[j]) + ")");
            result.fail_reason = "Wrong result";
            return result;
          }
        }
      }
    }
  }
  if (!result.verify.is_ok() && result.fail_reason.empty()) result.fail_reason = "Wrong result";
  return result;
}

}  // namespace fgpu::suite
