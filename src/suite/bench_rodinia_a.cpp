// Rodinia benchmarks, part A: kmeans, nearn, gaussian, bfs, pathfinder, nw,
// streamcluster, particlefilter.
#include <cmath>
#include <queue>

#include "suite/common.hpp"

namespace fgpu::suite {

using kir::Buf;
using kir::KernelBuilder;
using kir::NDRange;
using kir::Val;

Benchmark make_kmeans() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "cluster-assignment kernel: nearest of k centroids per point";
  const uint32_t points = 1024, k = 8, dims = 4;

  KernelBuilder kb("kmeans_assign");
  Buf features = kb.buf_f32("features");    // [points][dims]
  Buf clusters = kb.buf_f32("clusters");    // [k][dims]
  Buf membership = kb.buf_i32("membership");
  Val npoints = kb.param_i32("npoints");
  Val nclusters = kb.param_i32("nclusters");
  Val nfeatures = kb.param_i32("nfeatures");
  Val gid = kb.global_id(0);
  kb.if_(gid < npoints, [&] {
    Val best = kb.let_("best", Val(0));
    Val best_dist = kb.let_("best_dist", Val(3.4e38f));
    kb.for_("c", Val(0), nclusters, [&](Val c) {
      Val dist = kb.let_("dist", Val(0.0f));
      kb.for_("d", Val(0), nfeatures, [&](Val d) {
        Val diff = kb.let_("diff",
                           kb.load(features, gid * nfeatures + d) - kb.load(clusters, c * nfeatures + d));
        kb.assign(dist, dist + diff * diff);
      });
      kb.if_(dist < best_dist, [&] {
        kb.assign(best_dist, dist);
        kb.assign(best, c);
      });
    });
    kb.store(membership, gid, best);
  });
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(points * dims, 0x91, -10.0f, 10.0f),
                   ffill(k * dims, 0x92, -10.0f, 10.0f), zeros(points)};
  bench.launches = {{"kmeans_assign", NDRange::linear(points, 64),
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2),
                      ArgSpec::i(static_cast<int32_t>(points)),
                      ArgSpec::i(static_cast<int32_t>(k)),
                      ArgSpec::i(static_cast<int32_t>(dims))}}};
  bench.checked_buffers = {2};
  return bench;
}

Benchmark make_nearn() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "nearest-neighbor: euclidean distance of every record to a query";
  const uint32_t records = 2048;

  KernelBuilder kb("nearn");
  Buf lat = kb.buf_f32("lat"), lng = kb.buf_f32("lng"), dist = kb.buf_f32("dist");
  Val count = kb.param_i32("n");
  Val qlat = kb.param_f32("qlat"), qlng = kb.param_f32("qlng");
  Val gid = kb.global_id(0);
  kb.if_(gid < count, [&] {
    Val dx = kb.let_("dx", kb.load(lat, gid) - qlat);
    Val dy = kb.let_("dy", kb.load(lng, gid) - qlng);
    kb.store(dist, gid, vsqrt(dx * dx + dy * dy));
  });
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(records, 0xA3, -90.0f, 90.0f), ffill(records, 0xA4, -180.0f, 180.0f),
                   zeros(records)};
  bench.launches = {{"nearn", NDRange::linear(records, 64),
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2),
                      ArgSpec::i(static_cast<int32_t>(records)), ArgSpec::f(30.5f),
                      ArgSpec::f(-120.25f)}}};
  bench.checked_buffers = {2};
  return bench;
}

Benchmark make_gaussian() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "gaussian elimination: Fan1 (multipliers) + Fan2 (row updates) per column";
  const uint32_t n = 32;

  {
    KernelBuilder kb("fan1");
    Buf a = kb.buf_f32("a"), m = kb.buf_f32("m");
    Val size = kb.param_i32("size");
    Val t = kb.param_i32("t");
    Val gid = kb.global_id(0);
    kb.if_(gid < size - 1 - t, [&] {
      kb.store(m, size * (gid + t + 1) + t,
               kb.load(a, size * (gid + t + 1) + t) / kb.load(a, size * t + t));
    });
    bench.module.kernels.push_back(kb.build());
  }
  {
    KernelBuilder kb("fan2");
    Buf a = kb.buf_f32("a"), b = kb.buf_f32("b"), m = kb.buf_f32("m");
    Val size = kb.param_i32("size");
    Val t = kb.param_i32("t");
    Val gx = kb.global_id(0), gy = kb.global_id(1);  // gx: column, gy: row below t
    kb.if_(gx < size - t && gy < size - 1 - t, [&] {
      Val row = kb.let_("row", gy + t + 1);
      Val col = kb.let_("col", gx + t);
      kb.store(a, size * row + col,
               kb.load(a, size * row + col) -
                   kb.load(m, size * row + t) * kb.load(a, size * t + col));
      kb.if_(gx == 0, [&] {
        kb.store(b, row, kb.load(b, row) - kb.load(m, size * row + t) * kb.load(b, t));
      });
    });
    bench.module.kernels.push_back(kb.build());
  }

  // Diagonally dominant matrix keeps elimination well-conditioned.
  auto a = ffill(n * n, 0xB3, -1.0f, 1.0f);
  for (uint32_t i = 0; i < n; ++i) a[i * n + i] = f2u(u2f(a[i * n + i]) + 8.0f);
  bench.buffers = {a, ffill(n, 0xB4, -5.0f, 5.0f), zeros(n * n)};
  for (uint32_t t = 0; t + 1 < n; ++t) {
    bench.launches.push_back({"fan1", NDRange::linear(n, 32),
                              {ArgSpec::buf(0), ArgSpec::buf(2),
                               ArgSpec::i(static_cast<int32_t>(n)),
                               ArgSpec::i(static_cast<int32_t>(t))}});
    bench.launches.push_back({"fan2", NDRange::grid2d(n, n, 8, 8),
                              {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2),
                               ArgSpec::i(static_cast<int32_t>(n)),
                               ArgSpec::i(static_cast<int32_t>(t))}});
  }
  bench.checked_buffers = {0, 1};
  return bench;
}

Benchmark make_bfs() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "frontier-based BFS: two kernels per level, irregular edge gathers";
  const uint32_t nodes = 512;
  const uint32_t degree = 4;

  // Build a random graph (deterministic) and compute its BFS depth natively
  // so the host launch list covers every level.
  Rng rng(0xBF5);
  std::vector<uint32_t> starts(nodes), degrees(nodes, degree), edges(nodes * degree);
  for (uint32_t v = 0; v < nodes; ++v) {
    starts[v] = v * degree;
    for (uint32_t e = 0; e < degree; ++e) edges[v * degree + e] = rng.next_below(nodes);
  }
  // Native BFS for level count.
  uint32_t depth = 0;
  {
    std::vector<int> level(nodes, -1);
    std::queue<uint32_t> queue;
    level[0] = 0;
    queue.push(0);
    while (!queue.empty()) {
      const uint32_t v = queue.front();
      queue.pop();
      depth = std::max(depth, static_cast<uint32_t>(level[v]));
      for (uint32_t e = 0; e < degree; ++e) {
        const uint32_t next = edges[v * degree + e];
        if (level[next] < 0) {
          level[next] = level[v] + 1;
          queue.push(next);
        }
      }
    }
  }

  {
    KernelBuilder kb("bfs_expand");
    Buf starts_b = kb.buf_i32("starts"), degrees_b = kb.buf_i32("degrees"),
        edges_b = kb.buf_i32("edges");
    Buf mask = kb.buf_i32("mask"), updating = kb.buf_i32("updating"),
        visited = kb.buf_i32("visited"), cost = kb.buf_i32("cost");
    Val count = kb.param_i32("n");
    Val gid = kb.global_id(0);
    kb.if_(gid < count && kb.load(mask, gid) == 1, [&] {
      kb.store(mask, gid, Val(0));
      Val start = kb.let_("start", kb.load(starts_b, gid));
      Val deg = kb.let_("deg", kb.load(degrees_b, gid));
      kb.for_("e", start, start + deg, [&](Val e) {
        Val next = kb.let_("next", kb.load(edges_b, e));
        kb.if_(kb.load(visited, next) == 0, [&] {
          kb.store(cost, next, kb.load(cost, gid) + 1);
          kb.store(updating, next, Val(1));
        });
      });
    });
    bench.module.kernels.push_back(kb.build());
  }
  {
    KernelBuilder kb("bfs_update");
    Buf mask = kb.buf_i32("mask"), updating = kb.buf_i32("updating"),
        visited = kb.buf_i32("visited");
    Val count = kb.param_i32("n");
    Val gid = kb.global_id(0);
    kb.if_(gid < count && kb.load(updating, gid) == 1, [&] {
      kb.store(mask, gid, Val(1));
      kb.store(visited, gid, Val(1));
      kb.store(updating, gid, Val(0));
    });
    bench.module.kernels.push_back(kb.build());
  }

  std::vector<uint32_t> mask = zeros(nodes), visited = zeros(nodes), cost(nodes, 0u);
  mask[0] = 1;
  visited[0] = 1;
  bench.buffers = {starts, degrees, edges, mask, zeros(nodes), visited, cost};
  for (uint32_t level = 0; level <= depth; ++level) {
    bench.launches.push_back({"bfs_expand", NDRange::linear(nodes, 64),
                              {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2), ArgSpec::buf(3),
                               ArgSpec::buf(4), ArgSpec::buf(5), ArgSpec::buf(6),
                               ArgSpec::i(static_cast<int32_t>(nodes))}});
    bench.launches.push_back({"bfs_update", NDRange::linear(nodes, 64),
                              {ArgSpec::buf(3), ArgSpec::buf(4), ArgSpec::buf(5),
                               ArgSpec::i(static_cast<int32_t>(nodes))}});
  }
  bench.checked_buffers = {5, 6};
  return bench;
}

Benchmark make_pathfinder() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "dynamic programming: per-row min of three predecessors";
  const uint32_t cols = 512, rows = 16;

  KernelBuilder kb("pathfinder_row");
  Buf wall = kb.buf_i32("wall"), src = kb.buf_i32("src"), dst = kb.buf_i32("dst");
  Val ncols = kb.param_i32("cols");
  Val row = kb.param_i32("row");
  Val gid = kb.global_id(0);
  kb.if_(gid < ncols, [&] {
    Val left = kb.let_("left", kb.load(src, vmax(gid - 1, Val(0))));
    Val center = kb.let_("center", kb.load(src, gid));
    Val right = kb.let_("right", kb.load(src, vmin(gid + 1, ncols - 1)));
    kb.store(dst, gid, kb.load(wall, row * ncols + gid) + vmin(vmin(left, center), right));
  });
  bench.module.kernels.push_back(kb.build());

  auto wall_data = ifill(cols * rows, 0xC3, 0, 9);
  std::vector<uint32_t> first_row(cols);
  for (uint32_t c = 0; c < cols; ++c) first_row[c] = wall_data[c];
  bench.buffers = {wall_data, first_row, zeros(cols)};
  for (uint32_t r = 1; r < rows; ++r) {
    const int src_buf = (r % 2 == 1) ? 1 : 2;
    const int dst_buf = (r % 2 == 1) ? 2 : 1;
    bench.launches.push_back({"pathfinder_row", NDRange::linear(cols, 64),
                              {ArgSpec::buf(0), ArgSpec::buf(src_buf), ArgSpec::buf(dst_buf),
                               ArgSpec::i(static_cast<int32_t>(cols)),
                               ArgSpec::i(static_cast<int32_t>(r))}});
  }
  bench.checked_buffers = {1, 2};
  return bench;
}

Benchmark make_nw() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "Needleman-Wunsch alignment: anti-diagonal wavefront updates";
  const uint32_t n = 48;        // alignment length
  const int32_t penalty = 10;

  {
  KernelBuilder kb("nw_diag");
  Buf items = kb.buf_i32("items");      // (n+1)^2 score matrix
  Buf reference = kb.buf_i32("reference");  // (n+1)^2 substitution scores
  Val size = kb.param_i32("size");      // n+1
  Val diag = kb.param_i32("diag");      // 2..2n
  Val pen = kb.param_i32("penalty");
  Val gid = kb.global_id(0);
  Val i = kb.let_("i", gid + 1);
  Val j = kb.let_("j", diag - i);
  kb.if_(i < size && j >= 1 && j < size, [&] {
    Val up_left = kb.let_("up_left",
                          kb.load(items, (i - 1) * size + (j - 1)) +
                              kb.load(reference, i * size + j));
    Val up = kb.let_("up", kb.load(items, (i - 1) * size + j) - pen);
    Val left = kb.let_("left", kb.load(items, i * size + (j - 1)) - pen);
    kb.store(items, i * size + j, vmax(vmax(up_left, up), left));
  });
  bench.module.kernels.push_back(kb.build());
  }

  const uint32_t size = n + 1;
  std::vector<uint32_t> items(size * size, 0u);
  for (uint32_t k = 0; k < size; ++k) {
    items[k] = static_cast<uint32_t>(-static_cast<int32_t>(k) * penalty);
    items[k * size] = static_cast<uint32_t>(-static_cast<int32_t>(k) * penalty);
  }
  bench.buffers = {items, ifill(size * size, 0xD4, -4, 4)};
  for (uint32_t diag = 2; diag <= 2 * n; ++diag) {
    bench.launches.push_back({"nw_diag", NDRange::linear(n, 48),
                              {ArgSpec::buf(0), ArgSpec::buf(1),
                               ArgSpec::i(static_cast<int32_t>(size)),
                               ArgSpec::i(static_cast<int32_t>(diag)), ArgSpec::i(penalty)}});
  }
  bench.checked_buffers = {0};
  return bench;
}

Benchmark make_streamcluster() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "pgain kernel: per-point cost delta of opening a candidate center";
  const uint32_t points = 512, dims = 4, candidates = 4;

  KernelBuilder kb("pgain");
  Buf coords = kb.buf_f32("coords");      // [points][dims]
  Buf weights = kb.buf_f32("weights");
  Buf current_cost = kb.buf_f32("current_cost");  // distance to current center
  Buf gain = kb.buf_f32("gain");
  Buf assign_flag = kb.buf_i32("assign_flag");
  Val npoints = kb.param_i32("n");
  Val nfeatures = kb.param_i32("dims");
  Val center = kb.param_i32("center");
  Val gid = kb.global_id(0);
  kb.if_(gid < npoints, [&] {
    Val dist = kb.let_("dist", Val(0.0f));
    kb.for_("d", Val(0), nfeatures, [&](Val d) {
      Val diff = kb.let_("diff",
                         kb.load(coords, gid * nfeatures + d) -
                             kb.load(coords, center * nfeatures + d));
      kb.assign(dist, dist + diff * diff);
    });
    Val weighted = kb.let_("weighted", dist * kb.load(weights, gid));
    Val delta = kb.let_("delta", weighted - kb.load(current_cost, gid));
    kb.store(gain, gid, delta);
    kb.store(assign_flag, gid, vselect(delta < 0.0f, Val(1), Val(0)));
  });
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(points * dims, 0xE3, -20.0f, 20.0f), ffill(points, 0xE4, 0.5f, 2.0f),
                   ffill(points, 0xE5, 0.0f, 500.0f), zeros(points), zeros(points)};
  for (uint32_t c = 0; c < candidates; ++c) {
    bench.launches.push_back({"pgain", NDRange::linear(points, 64),
                              {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2), ArgSpec::buf(3),
                               ArgSpec::buf(4), ArgSpec::i(static_cast<int32_t>(points)),
                               ArgSpec::i(static_cast<int32_t>(dims)),
                               ArgSpec::i(static_cast<int32_t>(c * 37 + 5))}});
  }
  bench.checked_buffers = {3, 4};
  return bench;
}

Benchmark make_particlefilter() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "likelihood + normalization + CDF + divergent index search";
  const uint32_t particles = 512;

  {
    KernelBuilder kb("pf_likelihood");
    Buf weights = kb.buf_f32("weights"), observations = kb.buf_f32("observations");
    Val count = kb.param_i32("n");
    Val gid = kb.global_id(0);
    kb.if_(gid < count, [&] {
      Val obs = kb.let_("obs", kb.load(observations, gid));
      kb.store(weights, gid, kb.load(weights, gid) * vexp(-0.5f * obs * obs));
    });
    bench.module.kernels.push_back(kb.build());
  }
  {
    // Rodinia computes the CDF with a single work item; so do we.
    KernelBuilder kb("pf_cdf");
    Buf weights = kb.buf_f32("weights"), cdf = kb.buf_f32("cdf"), total = kb.buf_f32("total");
    Val count = kb.param_i32("n");
    Val acc = kb.let_("acc", Val(0.0f));
    kb.for_("i", Val(0), count, [&](Val i) {
      kb.assign(acc, acc + kb.load(weights, i));
      kb.store(cdf, i, acc);
    });
    kb.store(total, Val(0), acc);
    bench.module.kernels.push_back(kb.build());
  }
  {
    KernelBuilder kb("pf_find_index");
    Buf cdf = kb.buf_f32("cdf"), total = kb.buf_f32("total"), indices = kb.buf_i32("indices");
    Val count = kb.param_i32("n");
    Val gid = kb.global_id(0);
    kb.if_(gid < count, [&] {
      Val u = kb.let_("u", (to_f32(gid) + 0.5f) / to_f32(count) * kb.load(total, Val(0)));
      Val idx = kb.let_("idx", Val(0));
      kb.while_(idx < count - 1 && kb.load(cdf, idx) < u, [&] { kb.assign(idx, idx + 1); });
      kb.store(indices, gid, idx);
    });
    bench.module.kernels.push_back(kb.build());
  }

  bench.buffers = {consts(particles, f2u(1.0f / particles)),
                   ffill(particles, 0xF3, -2.0f, 2.0f), zeros(particles), zeros(1),
                   zeros(particles)};
  bench.launches = {
      {"pf_likelihood", NDRange::linear(particles, 64),
       {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::i(static_cast<int32_t>(particles))}},
      {"pf_cdf", NDRange::linear(1, 1),
       {ArgSpec::buf(0), ArgSpec::buf(2), ArgSpec::buf(3),
        ArgSpec::i(static_cast<int32_t>(particles))}},
      {"pf_find_index", NDRange::linear(particles, 64),
       {ArgSpec::buf(2), ArgSpec::buf(3), ArgSpec::buf(4),
        ArgSpec::i(static_cast<int32_t>(particles))}},
  };
  bench.checked_buffers = {0, 2, 3, 4};
  return bench;
}

}  // namespace fgpu::suite
