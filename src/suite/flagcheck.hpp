// Declarative flag/device consistency table for fgpu-run: every export or
// collection flag that needs a specific device tier is one row, checked in
// one place, so a contradictory --device is always a usage error (exit 2)
// instead of a silently empty document. The table itself is exposed so the
// unit test (tests/test_flagcheck.cpp) can enumerate every rule against
// every device selection and prove each contradiction is rejected.
#pragma once

#include <string>
#include <vector>

namespace fgpu::suite {

// Which device tiers a run will drive (parsed from --device).
struct DeviceSelection {
  bool vortex = true;
  bool hls = true;
  bool turbo = false;
};

// The device-dependent requests parsed from the command line. One bool per
// rule row; flags sharing a prerequisite (e.g. --profile and --hotspots)
// share a field.
struct FlagRequests {
  bool compare = false;  // --compare=PATH
  bool profile = false;  // --profile=PATH / --hotspots=K
  bool hlsprof = false;  // --hlsprof=PATH
  bool memprof = false;  // --memprof=PATH / --mem-hotspots=K
  bool remarks = false;  // --remarks=PATH / --remark-hotspots=K
  bool predict = false;  // --predict
  bool dse = false;      // --dse=PATH
};

struct FlagRule {
  bool FlagRequests::* member;  // which request this rule guards
  const char* flags;            // user-facing spelling(s), for the message
  const char* what;             // what the flag produces, for the message
  bool needs_vortex = false;
  bool needs_hls = false;
  // true: every needed device must run (--compare joins vortex AND hls);
  // false: any one of the needed devices satisfies the rule (--memprof
  // observes either memory hierarchy).
  bool needs_all = false;
};

// The full rule table, in fixed order (first violated rule wins).
const std::vector<FlagRule>& flag_rules();

// Empty string when every requested flag is satisfiable on `devices`;
// otherwise a complete "fgpu-run: ..." usage-error line for the first
// violated rule (the caller prints it and exits 2).
std::string check_flag_contradictions(const FlagRequests& requests,
                                      const DeviceSelection& devices);

}  // namespace fgpu::suite
