#include "suite/flagcheck.hpp"

namespace fgpu::suite {
namespace {

// --device spelling that selects the given tiers (for the error message).
const char* device_spelling(const DeviceSelection& d) {
  if (d.vortex && d.hls) return d.turbo ? "all" : "both";
  if (d.vortex) return "vortex";
  if (d.hls) return "hls";
  return "turbo";
}

const char* required_spelling(const FlagRule& rule) {
  if (rule.needs_vortex && rule.needs_hls) {
    return rule.needs_all ? "both or --device=all" : "vortex, hls, both, or all";
  }
  return rule.needs_vortex ? "vortex, both, or all" : "hls, both, or all";
}

bool satisfied(const FlagRule& rule, const DeviceSelection& d) {
  if (rule.needs_all) {
    return (!rule.needs_vortex || d.vortex) && (!rule.needs_hls || d.hls);
  }
  return (rule.needs_vortex && d.vortex) || (rule.needs_hls && d.hls);
}

}  // namespace

const std::vector<FlagRule>& flag_rules() {
  // Each export needs the device(s) that produce its data. Turbo is
  // functional-only: it never produces cycles, profiles, a memory
  // hierarchy, or a codegen report of its own (DESIGN.md "Execution
  // tiers"), so nothing here is satisfiable by turbo alone.
  static const std::vector<FlagRule> rules = {
      {&FlagRequests::compare, "--compare", "joins the vortex and hls flows",
       /*needs_vortex=*/true, /*needs_hls=*/true, /*needs_all=*/true},
      {&FlagRequests::profile, "--profile/--hotspots",
       "collect the cycle-exact per-PC profile", /*needs_vortex=*/true,
       /*needs_hls=*/false, /*needs_all=*/false},
      {&FlagRequests::hlsprof, "--hlsprof", "collects the HLS per-site profile",
       /*needs_vortex=*/false, /*needs_hls=*/true, /*needs_all=*/false},
      {&FlagRequests::memprof, "--memprof/--mem-hotspots",
       "observe the memory hierarchy", /*needs_vortex=*/true, /*needs_hls=*/true,
       /*needs_all=*/false},
      {&FlagRequests::remarks, "--remarks/--remark-hotspots",
       "export the soft-GPU compiler's optimization remarks",
       /*needs_vortex=*/true, /*needs_hls=*/false, /*needs_all=*/false},
      {&FlagRequests::predict, "--predict",
       "compares the analytical model against measured soft-GPU cycles",
       /*needs_vortex=*/true, /*needs_hls=*/false, /*needs_all=*/false},
      {&FlagRequests::dse, "--dse",
       "anchors the design-space funnel on cycle-exact soft-GPU runs",
       /*needs_vortex=*/true, /*needs_hls=*/false, /*needs_all=*/false},
  };
  return rules;
}

std::string check_flag_contradictions(const FlagRequests& requests,
                                      const DeviceSelection& devices) {
  for (const auto& rule : flag_rules()) {
    if (!(requests.*rule.member)) continue;
    if (satisfied(rule, devices)) continue;
    return std::string("fgpu-run: ") + rule.flags + " " + rule.what +
           "; conflicts with --device=" + device_spelling(devices) +
           " (requires --device=" + required_spelling(rule) + ")";
  }
  return std::string();
}

}  // namespace fgpu::suite
