// Reusable device pool: instead of constructing a VortexDevice (cluster,
// caches, DRAM model), TurboDevice (translator cores) and HlsDevice per
// benchmark, workers check a set out of the pool, re-arm it with
// Device::reset(), and check it back in. Correctness rests on the reset()
// contract (DESIGN.md "Device lifecycle"): a reset device produces
// bit-identical outputs AND cycle counts to a freshly constructed one, so
// pooling is observable only in fgpu.host.v1 (setup_ms, device_reuse_count)
// — never in the byte-gated suite documents.
//
// The pool is keyed by an identity string digesting everything that flows
// into device construction (config, boards, opt level, profiling flags):
// sets are only handed back out under the identity they were released with,
// because reset() restores construction-time state — it cannot change
// construction parameters. Keying (rather than a single current identity)
// lets multi-configuration sweeps — the fig7 grid and the DSE cycle-exact
// slice (suite/dse.hpp) — keep one warm set per grid point instead of
// dropping the pool on every configuration switch.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/hls_device.hpp"
#include "runtime/turbo_device.hpp"
#include "runtime/vortex_device.hpp"

namespace fgpu::suite {

// One worker's devices. Members are null until a tier first runs (the pool
// never constructs devices — run_one does, with the right options — it only
// stores and recycles them).
struct DeviceSet {
  std::unique_ptr<vcl::VortexDevice> vortex;
  std::unique_ptr<vcl::TurboDevice> turbo;
  std::unique_ptr<vcl::HlsDevice> hls;
};

class DevicePool {
 public:
  DevicePool() = default;
  // Bounds the number of distinct identities the pool retains: releasing a
  // set under a new identity beyond the cap discards it instead of pooling
  // it. A host-memory guard for wide multi-configuration sweeps (hundreds
  // of simulator instances); pool contents never affect simulated results
  // (the reset() contract), only setup wall time. 0 = unbounded.
  explicit DevicePool(size_t max_identities) : max_identities_(max_identities) {}

  // Checks a set out of `identity`'s bucket. Returns an empty set when no
  // set was pooled under that identity. Each non-null device handed out
  // counts toward reuse_count().
  DeviceSet acquire(const std::string& identity);

  // Returns a set for later reuse under the identity it was acquired (or
  // constructed) with. Devices come back dirty; acquire()'s caller re-arms
  // them with Device::reset() before use.
  void release(const std::string& identity, DeviceSet set);

  // Total devices handed out warm (fgpu.host.v1 "reuse" metric).
  uint64_t reuse_count() const;

  // Distinct identities currently holding pooled sets.
  size_t identity_count() const;

 private:
  mutable std::mutex mu_;
  size_t max_identities_ = 0;
  std::map<std::string, std::vector<DeviceSet>> free_;
  uint64_t reuse_count_ = 0;
};

}  // namespace fgpu::suite
