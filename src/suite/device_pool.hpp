// Reusable device pool: instead of constructing a VortexDevice (cluster,
// caches, DRAM model), TurboDevice (translator cores) and HlsDevice per
// benchmark, workers check a set out of the pool, re-arm it with
// Device::reset(), and check it back in. Correctness rests on the reset()
// contract (DESIGN.md "Device lifecycle"): a reset device produces
// bit-identical outputs AND cycle counts to a freshly constructed one, so
// pooling is observable only in fgpu.host.v1 (setup_ms, device_reuse_count)
// — never in the byte-gated suite documents.
//
// A pool is keyed by an identity string digesting everything that flows
// into device construction (config, boards, opt level, profiling flags).
// Acquiring under a different identity drops the pooled devices: reset()
// restores construction-time state, it cannot change construction
// parameters.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/hls_device.hpp"
#include "runtime/turbo_device.hpp"
#include "runtime/vortex_device.hpp"

namespace fgpu::suite {

// One worker's devices. Members are null until a tier first runs (the pool
// never constructs devices — run_one does, with the right options — it only
// stores and recycles them).
struct DeviceSet {
  std::unique_ptr<vcl::VortexDevice> vortex;
  std::unique_ptr<vcl::TurboDevice> turbo;
  std::unique_ptr<vcl::HlsDevice> hls;
};

class DevicePool {
 public:
  // Checks a set out. Returns an empty set when the pool is empty or
  // `identity` differs from the identity the pooled devices were
  // constructed under (the old sets are discarded). Each non-null device
  // handed out counts toward reuse_count().
  DeviceSet acquire(const std::string& identity);

  // Returns a set for later reuse. Devices come back dirty; acquire()'s
  // caller re-arms them with Device::reset() before use.
  void release(DeviceSet set);

  // Total devices handed out warm (fgpu.host.v1 "reuse" metric).
  uint64_t reuse_count() const;

 private:
  mutable std::mutex mu_;
  std::string identity_;
  std::vector<DeviceSet> free_;
  uint64_t reuse_count_ = 0;
};

}  // namespace fgpu::suite
