// Benchmarks from the NVIDIA OpenCL SDK samples and Vortex's own test set:
// vecadd, saxpy, matmul, sgemm, transpose, dotproduct, psort, stencil,
// sfilter, oclprintf. These are the "relatively simple" end of the paper's
// Table I spectrum.
#include "suite/common.hpp"

namespace fgpu::suite {

using kir::Buf;
using kir::KernelBuilder;
using kir::NDRange;
using kir::Val;

Benchmark make_vecadd() {
  Benchmark bench;
  bench.origin = "Vortex tests";
  bench.notes = "c[i] = a[i] + b[i]; 2 streaming loads + 1 store per item";
  const uint32_t n = 4096;

  KernelBuilder kb("vecadd");
  Buf a = kb.buf_f32("a"), b = kb.buf_f32("b"), c = kb.buf_f32("c");
  Val count = kb.param_i32("n");
  Val gid = kb.global_id(0);
  kb.if_(gid < count, [&] { kb.store(c, gid, kb.load(a, gid) + kb.load(b, gid)); });
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(n, 0xA1, -100.0f, 100.0f), ffill(n, 0xA2, -100.0f, 100.0f), zeros(n)};
  bench.launches = {{"vecadd", NDRange::linear(n, 64),
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2),
                      ArgSpec::i(static_cast<int32_t>(n))}}};
  bench.checked_buffers = {2};
  return bench;
}

Benchmark make_saxpy() {
  Benchmark bench;
  bench.origin = "Vortex tests";
  bench.notes = "y[i] = alpha * x[i] + y[i]";
  const uint32_t n = 8192;

  KernelBuilder kb("saxpy");
  Buf x = kb.buf_f32("x"), y = kb.buf_f32("y");
  Val alpha = kb.param_f32("alpha");
  Val count = kb.param_i32("n");
  Val gid = kb.global_id(0);
  kb.if_(gid < count, [&] { kb.store(y, gid, alpha * kb.load(x, gid) + kb.load(y, gid)); });
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(n, 0xB1, -10.0f, 10.0f), ffill(n, 0xB2, -10.0f, 10.0f)};
  bench.launches = {{"saxpy", NDRange::linear(n, 64),
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::f(2.75f),
                      ArgSpec::i(static_cast<int32_t>(n))}}};
  bench.checked_buffers = {1};
  return bench;
}

Benchmark make_matmul() {
  Benchmark bench;
  bench.origin = "Vortex tests";
  bench.notes = "naive dense C = A x B, one output element per item";
  const uint32_t n = 40;

  KernelBuilder kb("matmul");
  Buf a = kb.buf_f32("a"), b = kb.buf_f32("b"), c = kb.buf_f32("c");
  Val size = kb.param_i32("n");
  Val col = kb.global_id(0), row = kb.global_id(1);
  Val acc = kb.let_("acc", Val(0.0f));
  kb.for_("k", Val(0), size, [&](Val k) {
    kb.assign(acc, acc + kb.load(a, row * size + k) * kb.load(b, k * size + col));
  });
  kb.store(c, row * size + col, acc);
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(n * n, 0xC1, -2.0f, 2.0f), ffill(n * n, 0xC2, -2.0f, 2.0f),
                   zeros(n * n)};
  bench.launches = {{"matmul", NDRange::grid2d(n, n, 8, 8),
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2),
                      ArgSpec::i(static_cast<int32_t>(n))}}};
  bench.checked_buffers = {2};
  return bench;
}

Benchmark make_sgemm() {
  Benchmark bench;
  bench.origin = "Vortex tests";
  bench.notes = "C = alpha*A*B + beta*C (BLAS-style)";
  const uint32_t n = 32;

  KernelBuilder kb("sgemm");
  Buf a = kb.buf_f32("a"), b = kb.buf_f32("b"), c = kb.buf_f32("c");
  Val size = kb.param_i32("n");
  Val alpha = kb.param_f32("alpha"), beta = kb.param_f32("beta");
  Val col = kb.global_id(0), row = kb.global_id(1);
  Val acc = kb.let_("acc", Val(0.0f));
  kb.for_("k", Val(0), size, [&](Val k) {
    kb.assign(acc, acc + kb.load(a, row * size + k) * kb.load(b, k * size + col));
  });
  Val idx = kb.let_("idx", row * size + col);
  kb.store(c, idx, alpha * acc + beta * kb.load(c, idx));
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(n * n, 0xD1, -1.5f, 1.5f), ffill(n * n, 0xD2, -1.5f, 1.5f),
                   ffill(n * n, 0xD3, -1.0f, 1.0f)};
  bench.launches = {{"sgemm", NDRange::grid2d(n, n, 8, 8),
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2),
                      ArgSpec::i(static_cast<int32_t>(n)), ArgSpec::f(1.5f), ArgSpec::f(0.5f)}}};
  bench.checked_buffers = {2};
  return bench;
}

Benchmark make_transpose() {
  Benchmark bench;
  bench.origin = "NVIDIA SDK";
  bench.notes = "out[x][y] = in[y][x]; strided store pattern (Fig. 7 subject)";
  const uint32_t n = 64;

  KernelBuilder kb("transpose");
  Buf in = kb.buf_f32("in"), out = kb.buf_f32("out");
  Val width = kb.param_i32("width");
  Val gx = kb.global_id(0), gy = kb.global_id(1);
  kb.store(out, gx * width + gy, kb.load(in, gy * width + gx));
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(n * n, 0xE1, -50.0f, 50.0f), zeros(n * n)};
  bench.launches = {{"transpose", NDRange::grid2d(n, n, 8, 8),
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::i(static_cast<int32_t>(n))}}};
  bench.checked_buffers = {1};
  return bench;
}

Benchmark make_dotproduct() {
  Benchmark bench;
  bench.origin = "NVIDIA SDK";
  bench.notes = "two-stage work-group tree reduction through __local memory";
  const uint32_t n = 4096;       // elements
  const uint32_t groups = n / 64;  // stage-1 partials

  {
    KernelBuilder kb("dot_partial");
    Buf a = kb.buf_f32("a"), b = kb.buf_f32("b"), partial = kb.buf_f32("partial");
    Buf tile = kb.local_f32("tile", 64);
    Val lid = kb.local_id(0), grp = kb.group_id(0), gid = kb.global_id(0);
    kb.store(tile, lid, kb.load(a, gid) * kb.load(b, gid));
    kb.barrier();
    Val stride = kb.let_("stride", Val(32));
    kb.while_(stride > 0, [&] {
      kb.if_(lid < stride,
             [&] { kb.store(tile, lid, kb.load(tile, lid) + kb.load(tile, lid + stride)); });
      kb.barrier();
      kb.assign(stride, stride >> 1);
    });
    kb.if_(lid == 0, [&] { kb.store(partial, grp, kb.load(tile, 0)); });
    bench.module.kernels.push_back(kb.build());
  }
  {
    // Stage 2: one work-group folds the 64 partials (groups == 64 here).
    KernelBuilder kb("dot_final");
    Buf partial = kb.buf_f32("partial"), result = kb.buf_f32("result");
    Buf tile = kb.local_f32("tile", 64);
    Val lid = kb.local_id(0);
    kb.store(tile, lid, kb.load(partial, lid));
    kb.barrier();
    Val stride = kb.let_("stride", Val(32));
    kb.while_(stride > 0, [&] {
      kb.if_(lid < stride,
             [&] { kb.store(tile, lid, kb.load(tile, lid) + kb.load(tile, lid + stride)); });
      kb.barrier();
      kb.assign(stride, stride >> 1);
    });
    kb.if_(lid == 0, [&] { kb.store(result, Val(0), kb.load(tile, 0)); });
    bench.module.kernels.push_back(kb.build());
  }

  bench.buffers = {ffill(n, 0xF1, -1.0f, 1.0f), ffill(n, 0xF2, -1.0f, 1.0f), zeros(groups),
                   zeros(1)};
  bench.launches = {
      {"dot_partial", NDRange::linear(n, 64),
       {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2)}},
      {"dot_final", NDRange::linear(64, 64), {ArgSpec::buf(2), ArgSpec::buf(3)}},
  };
  bench.checked_buffers = {2, 3};
  return bench;
}

Benchmark make_psort() {
  Benchmark bench;
  bench.origin = "Vortex tests";
  bench.notes = "odd-even transposition sort; one compare-exchange phase per launch";
  const uint32_t n = 128;

  KernelBuilder kb("psort_phase");
  Buf data = kb.buf_i32("data");
  Val count = kb.param_i32("n");
  Val parity = kb.param_i32("parity");
  Val gid = kb.global_id(0);
  Val idx = kb.let_("idx", gid * 2 + parity);
  kb.if_(idx + 1 < count, [&] {
    Val lhs = kb.let_("lhs", kb.load(data, idx));
    Val rhs = kb.let_("rhs", kb.load(data, idx + 1));
    kb.if_(lhs > rhs, [&] {
      kb.store(data, idx, rhs);
      kb.store(data, idx + 1, lhs);
    });
  });
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ifill(n, 0x51, -1000, 1000)};
  for (uint32_t phase = 0; phase < n; ++phase) {
    bench.launches.push_back({"psort_phase", NDRange::linear(n / 2, 64),
                              {ArgSpec::buf(0), ArgSpec::i(static_cast<int32_t>(n)),
                               ArgSpec::i(static_cast<int32_t>(phase % 2))}});
  }
  bench.checked_buffers = {0};
  return bench;
}

Benchmark make_stencil() {
  Benchmark bench;
  bench.origin = "Vortex tests / Parboil";
  bench.notes = "3-D 7-point stencil with boundary guard";
  const uint32_t nx = 16, ny = 16, nz = 8;

  KernelBuilder kb("stencil7");
  Buf in = kb.buf_f32("in"), out = kb.buf_f32("out");
  Val vx = kb.param_i32("nx"), vy = kb.param_i32("ny"), vz = kb.param_i32("nz");
  Val x = kb.global_id(0), y = kb.global_id(1), z = kb.global_id(2);
  Val inside = kb.let_("inside",
                       (x > 0) && (x < vx - 1) && (y > 0) && (y < vy - 1) && (z > 0) &&
                           (z < vz - 1));
  Val idx = kb.let_("idx", (z * vy + y) * vx + x);
  // Interior points only (Parboil-style); the halo stays untouched.
  kb.if_(inside, [&] {
    Val c = kb.let_("c", kb.load(in, idx));
    Val sum = kb.let_("sum", kb.load(in, idx - 1) + kb.load(in, idx + 1) +
                                 kb.load(in, idx - vx) + kb.load(in, idx + vx) +
                                 kb.load(in, idx - vx * vy) + kb.load(in, idx + vx * vy));
    kb.store(out, idx, c * 0.5f + sum * 0.0833333f);
  });
  bench.module.kernels.push_back(kb.build());

  const uint32_t total = nx * ny * nz;
  bench.buffers = {ffill(total, 0x61, -5.0f, 5.0f), zeros(total)};
  kir::NDRange ndr;
  ndr.dims = 3;
  ndr.global[0] = nx;
  ndr.global[1] = ny;
  ndr.global[2] = nz;
  ndr.local[0] = 8;
  ndr.local[1] = 4;
  ndr.local[2] = 2;
  bench.launches = {{"stencil7", ndr,
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::i(static_cast<int32_t>(nx)),
                      ArgSpec::i(static_cast<int32_t>(ny)), ArgSpec::i(static_cast<int32_t>(nz))}}};
  bench.checked_buffers = {1};
  return bench;
}

Benchmark make_sfilter() {
  Benchmark bench;
  bench.origin = "Vortex tests";
  bench.notes = "3x3 Sobel edge filter: |Gx| + |Gy| magnitude";
  const uint32_t n = 64;

  KernelBuilder kb("sfilter");
  Buf in = kb.buf_f32("in"), out = kb.buf_f32("out");
  Val width = kb.param_i32("width");
  Val x = kb.global_id(0), y = kb.global_id(1);
  Val inside =
      kb.let_("inside", (x > 0) && (x < width - 1) && (y > 0) && (y < width - 1));
  kb.if_(
      inside,
      [&] {
        Val p = kb.let_("p", y * width + x);
        Val tl = kb.let_("tl", kb.load(in, p - width - 1));
        Val tc = kb.let_("tc", kb.load(in, p - width));
        Val tr = kb.let_("tr", kb.load(in, p - width + 1));
        Val ml = kb.let_("ml", kb.load(in, p - 1));
        Val mr = kb.let_("mr", kb.load(in, p + 1));
        Val bl = kb.let_("bl", kb.load(in, p + width - 1));
        Val bc = kb.let_("bc", kb.load(in, p + width));
        Val br = kb.let_("br", kb.load(in, p + width + 1));
        Val gx = kb.let_("gx", (tr + mr * 2.0f + br) - (tl + ml * 2.0f + bl));
        Val gy = kb.let_("gy", (bl + bc * 2.0f + br) - (tl + tc * 2.0f + tr));
        kb.store(out, p, vsqrt(gx * gx + gy * gy));
      },
      [&] { kb.store(out, y * width + x, Val(0.0f)); });
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(n * n, 0x71, 0.0f, 255.0f), zeros(n * n)};
  bench.launches = {{"sfilter", NDRange::grid2d(n, n, 8, 8),
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::i(static_cast<int32_t>(n))}}};
  bench.checked_buffers = {1};
  return bench;
}

Benchmark make_oclprintf() {
  Benchmark bench;
  bench.origin = "Vortex tests";
  bench.notes = "kernel printf routed through the host runtime (ECALL upcall)";
  const uint32_t n = 8;

  KernelBuilder kb("printer");
  Buf data = kb.buf_f32("data");
  Val gid = kb.global_id(0);
  kb.print("item %d value %f\n", {gid, kb.load(data, gid)});
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(n, 0x81, 0.0f, 9.0f)};
  bench.launches = {{"printer", NDRange::linear(n, 8), {ArgSpec::buf(0)}}};
  bench.custom_verify = [n](const std::vector<std::vector<uint32_t>>&,
                            const std::vector<std::string>& console) -> Status {
    if (console.size() != n) {
      return Status(ErrorKind::kRuntimeError,
                    "oclprintf: expected " + std::to_string(n) + " lines, got " +
                        std::to_string(console.size()));
    }
    for (const auto& line : console) {
      if (line.find("item ") != 0 || line.find("value ") == std::string::npos) {
        return Status(ErrorKind::kRuntimeError, "oclprintf: malformed line '" + line + "'");
      }
    }
    return Status::ok();
  };
  return bench;
}

}  // namespace fgpu::suite
