#include "suite/device_pool.hpp"

#include <utility>

namespace fgpu::suite {

DeviceSet DevicePool::acquire(const std::string& identity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (identity != identity_) {
    free_.clear();
    identity_ = identity;
  }
  if (free_.empty()) return {};
  DeviceSet set = std::move(free_.back());
  free_.pop_back();
  reuse_count_ += (set.vortex != nullptr) + (set.turbo != nullptr) + (set.hls != nullptr);
  return set;
}

void DevicePool::release(DeviceSet set) {
  if (set.vortex == nullptr && set.turbo == nullptr && set.hls == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(set));
}

uint64_t DevicePool::reuse_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reuse_count_;
}

}  // namespace fgpu::suite
