#include "suite/device_pool.hpp"

#include <utility>

namespace fgpu::suite {

DeviceSet DevicePool::acquire(const std::string& identity) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = free_.find(identity);
  if (it == free_.end() || it->second.empty()) return {};
  DeviceSet set = std::move(it->second.back());
  it->second.pop_back();
  if (it->second.empty()) free_.erase(it);
  reuse_count_ += (set.vortex != nullptr) + (set.turbo != nullptr) + (set.hls != nullptr);
  return set;
}

void DevicePool::release(const std::string& identity, DeviceSet set) {
  if (set.vortex == nullptr && set.turbo == nullptr && set.hls == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = free_.find(identity);
  if (it == free_.end()) {
    // New identity: respect the retention cap (the set is simply dropped —
    // observable only as a cold setup next time, never in simulated bytes).
    if (max_identities_ != 0 && free_.size() >= max_identities_) return;
    it = free_.emplace(identity, std::vector<DeviceSet>()).first;
  }
  it->second.push_back(std::move(set));
}

uint64_t DevicePool::reuse_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reuse_count_;
}

size_t DevicePool::identity_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

}  // namespace fgpu::suite
