#include "suite/compare.hpp"

#include <cmath>

#include "suite/report.hpp"
#include "vortex/area.hpp"

namespace fgpu::suite {

namespace {

// Coverage class of one benchmark: which flows produced a correct result.
const char* coverage_of(const BenchmarkOutcome& o) {
  const bool vx = o.ran_vortex && o.vortex.ok();
  const bool hl = o.ran_hls && o.hls.ok();
  if (vx && hl) return "both";
  if (vx) return "vortex_only";
  if (hl) return "hls_only";
  return "neither";
}

// Categorical verdict — deliberately not a formatted ratio string so the
// document carries no duplicated floating-point rendering (the numeric
// speedup field is the quantitative answer).
const char* verdict_of(const BenchmarkOutcome& o, double speedup) {
  const bool vx = o.ran_vortex && o.vortex.ok();
  const bool hl = o.ran_hls && o.hls.ok();
  if (vx && hl) {
    if (speedup > 1.0) return "hls_faster";
    if (speedup < 1.0) return "vortex_faster";
    return "tie";
  }
  if (vx) return "hls_failed";
  if (hl) return "vortex_failed";
  return "both_failed";
}

// HLS-over-vortex speedup in modeled execution time (the Fig. 6 metric).
// Time, not cycles: the flows run at different modeled clocks. 0.0 when
// either side failed or has no time.
double speedup_of(const BenchmarkOutcome& o) {
  const bool vx = o.ran_vortex && o.vortex.ok();
  const bool hl = o.ran_hls && o.hls.ok();
  if (!vx || !hl) return 0.0;
  if (o.hls.total_time_ms <= 0.0 || o.vortex.total_time_ms <= 0.0) return 0.0;
  return o.vortex.total_time_ms / o.hls.total_time_ms;
}

void write_side(trace::JsonWriter& w, const DeviceRun& run, const std::string& device,
                DeviceKind kind) {
  w.begin_object();
  w.field("device", device);
  w.field("ok", run.ok());
  w.field("fail_reason", run.fail_reason);
  w.field("cycles", run.total_cycles);
  w.field("time_ms", run.total_time_ms);
  // Final-launch DRAM traffic, same semantics as fgpu.stats.v1's
  // last_launch section.
  w.field("dram_bytes", run.last.dram_bytes);
  if (kind == DeviceKind::kHls) {
    w.field("synthesis_hours", run.synthesis_hours);
    w.key("area");
    write_json(w, run.area);
    w.field("pipeline_depth", run.last.pipeline_depth);
    w.field("initiation_interval", run.last.initiation_interval);
    w.field("memory_stall_cycles", run.last.memory_stall_cycles);
  }
  w.end_object();
}

}  // namespace

void write_compare_json(std::ostream& os, const RunnerOptions& options,
                        const SuiteRunResult& result) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kCompareSchema);
  write_suite_header(w, options, result);

  // Flow-level context: the soft GPU synthesizes once per configuration
  // (its area is a property of the config, not of any benchmark), while
  // the HLS flow pays per-kernel synthesis — the paper's portability-vs-
  // specialization tradeoff, aggregated below.
  const fpga::Board& vx_board =
      options.vortex_board != nullptr ? *options.vortex_board : fpga::stratix10_sx2800();
  w.key("vortex_flow").begin_object();
  w.field("config", options.vortex_config.to_string());
  w.key("area");
  write_json(w, vortex::estimate_area(options.vortex_config));
  w.field("fits", vortex::fits(options.vortex_config, vx_board));
  w.end_object();

  double hls_total_hours = 0.0;
  int both_ok = 0, vortex_only = 0, hls_only = 0, neither = 0;
  double log_sum = 0.0;
  int speedup_count = 0;
  for (const auto& o : result.outcomes) {
    hls_total_hours += o.hls.synthesis_hours;
    const std::string cov = coverage_of(o);
    if (cov == "both") ++both_ok;
    else if (cov == "vortex_only") ++vortex_only;
    else if (cov == "hls_only") ++hls_only;
    else ++neither;
    const double speedup = speedup_of(o);
    if (speedup > 0.0) {
      log_sum += std::log(speedup);
      ++speedup_count;
    }
  }
  w.key("hls_flow").begin_object();
  // Summed over every attempted kernel build, including failed fits (the
  // paper charges failed syntheses their full runtime too).
  w.field("total_synthesis_hours", hls_total_hours);
  w.end_object();

  w.key("summary").begin_object();
  w.field("both_ok", static_cast<int64_t>(both_ok));
  w.field("vortex_only", static_cast<int64_t>(vortex_only));
  w.field("hls_only", static_cast<int64_t>(hls_only));
  w.field("neither", static_cast<int64_t>(neither));
  w.field("speedup_count", static_cast<int64_t>(speedup_count));
  // Geometric mean of the per-benchmark HLS-over-vortex speedups (both-ok
  // benchmarks only) — the one-number Fig. 6 takeaway.
  w.field("geomean_speedup_hls_over_vortex",
          speedup_count > 0 ? std::exp(log_sum / speedup_count) : 0.0);
  w.end_object();

  // Table-I failure diff: benchmarks where exactly the flows' outcomes (or
  // their short failure reasons) disagree — the portability story.
  w.key("failure_diffs").begin_array();
  for (const auto& o : result.outcomes) {
    const bool vx = o.ran_vortex && o.vortex.ok();
    const bool hl = o.ran_hls && o.hls.ok();
    if (vx == hl && o.vortex.fail_reason == o.hls.fail_reason) continue;
    w.begin_object();
    w.field("name", o.name);
    w.field("vortex_ok", vx);
    w.field("vortex_fail_reason", o.vortex.fail_reason);
    w.field("hls_ok", hl);
    w.field("hls_fail_reason", o.hls.fail_reason);
    w.end_object();
  }
  w.end_array();

  w.key("benchmarks").begin_array();
  for (const auto& o : result.outcomes) {
    const double speedup = speedup_of(o);
    w.begin_object();
    w.field("name", o.name);
    w.field("origin", o.origin);
    w.field("workload_seed", o.workload_seed);
    w.field("coverage", coverage_of(o));
    w.field("verdict", verdict_of(o, speedup));
    w.field("speedup_hls_over_vortex", speedup);
    if (o.ran_vortex) {
      w.key("vortex");
      write_side(w, o.vortex, o.vortex_device, DeviceKind::kVortex);
    }
    if (o.ran_hls) {
      w.key("hls");
      write_side(w, o.hls, o.hls_device, DeviceKind::kHls);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace fgpu::suite
