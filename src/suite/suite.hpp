// Benchmark suite: the 28 workloads of the paper's Table I, re-implemented
// as KIR kernels + host drivers (Rodinia and NVIDIA OpenCL SDK kernels at
// reduced problem sizes — reduced because the device is a cycle-level
// simulator, not silicon; the kernel *structure* — loads per item, access
// patterns, divergence, atomics, barriers — follows the originals, which is
// what coverage and the Fig. 7 shapes depend on).
//
// Each benchmark carries: a KIR module, initial host buffers, a static
// launch sequence (host-side loops like Gaussian's per-column sweep become
// pre-unrolled launch lists), and a verifier. By default results are
// checked bit-exactly against the KIR reference interpreter running the
// same (builtin-expanded) module; benchmarks whose outputs depend on atomic
// ordering provide a custom verifier instead.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "kir/kir.hpp"
#include "runtime/runtime.hpp"

namespace fgpu::suite {

struct ArgSpec {
  enum class Kind : uint8_t { kBuffer, kI32, kF32 };
  Kind kind = Kind::kBuffer;
  int buffer = -1;
  int32_t i32 = 0;
  float f32 = 0.0f;

  static ArgSpec buf(int index) { return ArgSpec{Kind::kBuffer, index, 0, 0.0f}; }
  static ArgSpec i(int32_t v) { return ArgSpec{Kind::kI32, -1, v, 0.0f}; }
  static ArgSpec f(float v) { return ArgSpec{Kind::kF32, -1, 0, v}; }
};

struct LaunchPlan {
  std::string kernel;
  kir::NDRange ndrange;
  std::vector<ArgSpec> args;
};

struct Benchmark {
  std::string name;
  std::string origin;  // "NVIDIA SDK", "Rodinia", "Vortex tests"
  std::string notes;   // structure summary (for DESIGN/EXPERIMENTS docs)
  kir::Module module;
  std::vector<std::vector<uint32_t>> buffers;  // initial host data
  std::vector<LaunchPlan> launches;

  // Indices of buffers to compare against the interpreter oracle
  // (empty = all).
  std::vector<int> checked_buffers;
  // Custom verifier for benchmarks with ordering-dependent outputs
  // (atomics). Receives final buffers + device console lines.
  std::function<Status(const std::vector<std::vector<uint32_t>>&,
                       const std::vector<std::string>&)>
      custom_verify;

  // Work-group sizes in this suite are capped so the soft GPU's work-group
  // dispatch fits: local_items <= min_lanes (default config W*T = 64).
  static constexpr uint32_t kMaxWorkGroup = 64;
};

// Registry -----------------------------------------------------------------

// All 28 names, in the paper's Table I order.
const std::vector<std::string>& all_benchmark_names();

// Builds a benchmark instance (deterministic: same name -> same workload).
Benchmark make_benchmark(const std::string& name);

// Process-wide cache of generated benchmarks. Factories are deterministic
// (fixed internal seeds: same name -> same module, buffers and launch
// plan), benchmarks are never mutated after construction, and run_benchmark
// only reads them — so one shared instance serves every repeat and worker.
// Saves the workload-generation cost (matrix fills, graph construction)
// that --repeat would otherwise pay per iteration.
std::shared_ptr<const Benchmark> shared_benchmark(const std::string& name);

struct WorkloadCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;  // one per actual make_benchmark call
  uint64_t reference_hits = 0;
  uint64_t reference_misses = 0;  // one per actual reference_run call
};
WorkloadCacheStats workload_cache_stats();
// Tests only: drop every cached benchmark and zero the counters.
void clear_workload_cache();

// Memoized interpreter oracle over the shared workload cache: the final
// buffer state of reference_run(*shared_benchmark(name)), computed once per
// process instead of once per device run (three per benchmark per repeat
// under --device=all). Pure: same benchmark -> same buffers, and verifiers
// only read them. Null when the reference run fails (callers fall back to
// the inline computation, which reports the error per run).
std::shared_ptr<const std::vector<std::vector<uint32_t>>> shared_reference(
    const std::string& name);

// Runner ---------------------------------------------------------------------

// Accumulated per-PC profile of one kernel across a benchmark's launches.
// Kept per kernel *name*: all binaries load at arch::kCodeBase, so PCs from
// different kernels of one benchmark must never merge into one table.
struct KernelProfile {
  std::string kernel;
  uint64_t launches = 0;
  // Aggregate counters over this kernel's launches (cycles summed, unlike
  // PerfCounters::accumulate's max-over-cores rule).
  vortex::PerfCounters perf;
  vortex::PcProfile profile;
  vasm::Program binary;        // for annotated disassembly
  vasm::SourceMap source_map;  // PC -> KIR provenance
};

// Accumulated per-access-site HLS attribution of one kernel across a
// benchmark's launches, plus its structured synthesis report — the HLS-side
// mirror of KernelProfile (exported as fgpu.hlsprof.v1). Site stats add up
// across launches of the same design; memory_stall_cycles equals the sum of
// sites[].stall_cycles exactly (per-launch contract, preserved by summing).
struct HlsKernelProfile {
  std::string kernel;
  uint64_t launches = 0;
  uint64_t device_cycles = 0;        // summed over launches
  uint64_t memory_stall_cycles = 0;  // == sum of sites[].stall_cycles
  hls::SynthReport synth;            // filled at build time (even on failed fits)
  std::vector<vcl::HlsSiteStats> sites;
};

// Accumulated memory-hierarchy profile of one kernel across a benchmark's
// launches (exported as fgpu.mem.v1). A vortex entry carries the full
// hierarchy plus the kernel image/source map so by_tag PCs render with
// instruction + KIR provenance; an HLS entry carries the burst-LSU
// read-path shadow profile with by_tag keyed by AccessSite index, joined
// against `sites` at export.
struct KernelMemProfile {
  std::string kernel;
  uint64_t launches = 0;
  bool is_hls = false;
  mem::MemHierarchyProfile mem;          // vortex hierarchy
  vasm::Program binary;                  // vortex: PC provenance
  vasm::SourceMap source_map;
  mem::CacheMemProfile hls_mem;          // hls read path
  std::vector<vcl::HlsSiteStats> sites;  // hls: site table for the tag join
};

// Compile-time observability of one built kernel: the shared CompiledKernel
// whose `report` member holds the optimization remarks + per-pass telemetry
// (exported as fgpu.codegen.v1). Captured in build order; only present when
// the build ran with codegen::Options::collect_remarks.
struct KernelCodegen {
  std::string kernel;
  std::shared_ptr<const codegen::CompiledKernel> compiled;
};

struct DeviceRun {
  Status build;          // program build (HLS synthesis can fail here)
  Status run;            // launch execution
  Status verify;         // result check
  std::string fail_reason;  // short Table-I-style reason ("Not enough BRAM")
  uint64_t total_cycles = 0;
  uint64_t total_instrs = 0;  // simulated instructions summed over launches
  // FNV-1a over the final checked device buffers (index, length, words).
  // Opt-level-independent by construction: the differential CI step compares
  // this field between -O0 and -O2 stats exports to prove the optimizer
  // preserved every output bit. 0 until buffers have been downloaded.
  uint64_t output_digest = 0;
  double total_time_ms = 0.0;
  // Host wall-clock spent inside Device::launch() calls only — excludes
  // build/synthesis, workload generation, buffer transfer and verification.
  // This is the denominator of the execution-tier throughput comparison
  // (fgpu.host.v1 "dispatch" rates): the shared fixed costs around a launch
  // are identical across devices and would otherwise dilute the ratio.
  double launch_host_ms = 0.0;
  // Host wall-clock spent inside Device::build() — guest-code compilation
  // (or a KernelCache hit) on the soft-GPU tiers, synthesis (or an HlsCache
  // hit) on HLS. Reported as "build_ms" in fgpu.host.v1 and EXCLUDED from
  // the per-benchmark wall_ms there, so run-time comparisons are not
  // diluted by one-time build cost.
  double build_host_ms = 0.0;
  vcl::LaunchStats last;  // stats of the final launch
  fpga::AreaReport area;  // HLS: summed module area
  double synthesis_hours = 0.0;
  // Per-kernel profiles in first-launch order; filled only when the device
  // collects profiles (soft GPU with Config::profile set).
  std::vector<KernelProfile> kernel_profiles;
  // HLS: per-kernel site attribution + structured synthesis reports, in
  // build order (present even when the build failed — the synth reports of
  // failed fits are the Table II data points).
  std::vector<HlsKernelProfile> hls_profiles;
  // Per-kernel memory-hierarchy profiles in first-launch order; filled only
  // when memory profiling is enabled (RunnerOptions::capture_memprof).
  std::vector<KernelMemProfile> mem_profiles;
  // Per-kernel compile reports in build order; filled only when the device
  // was constructed with collect_remarks (RunnerOptions::capture_remarks).
  std::vector<KernelCodegen> codegen;

  bool ok() const { return build.is_ok() && run.is_ok() && verify.is_ok(); }
};

// Builds + runs + verifies `bench` on `device`. When `expected` is non-null
// it is used as the oracle's final buffer state (the memoized
// shared_reference of the pooled suite path) instead of re-running the
// reference interpreter; ignored for custom-verify benchmarks.
DeviceRun run_benchmark(vcl::Device& device, const Benchmark& bench,
                        const std::vector<std::vector<uint32_t>>* expected = nullptr);

// Runs the interpreter oracle over the benchmark's launch sequence and
// returns the final buffer state (also used by run_benchmark for
// verification).
Result<std::vector<std::vector<uint32_t>>> reference_run(const Benchmark& bench);

}  // namespace fgpu::suite
