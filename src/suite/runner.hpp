// Parallel suite runner: shards the 28 Table-I benchmarks across worker
// threads. Safe because each benchmark run is fully independent — every
// worker runs an immutable shared Benchmark (factories seed their Rng with
// fixed per-benchmark constants) on its own device instance, acquired from
// the device pool and re-armed with Device::reset() (or constructed fresh
// under --fresh), so a run's cycle counts are identical whether it executed
// on 1 thread or 16, pooled or not. Results are aggregated in canonical
// suite order regardless of completion order; the determinism test
// (tests/test_runner.cpp) asserts jobs=1 and jobs=4 produce byte-identical
// stats JSON, and tests/test_lifecycle.cpp asserts pooled == fresh.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "codegen/codegen.hpp"
#include "common/status.hpp"
#include "suite/suite.hpp"
#include "trace/json.hpp"
#include "trace/trace.hpp"
#include "vortex/config.hpp"
#include "vortex/jit/turbo.hpp"

namespace fgpu::suite {

class DevicePool;

struct RunnerOptions {
  // ECMAScript regex matched (std::regex_search) against benchmark names;
  // empty selects all 28.
  std::string filter;
  // Worker threads; 0 = std::thread::hardware_concurrency().
  uint32_t jobs = 1;
  bool run_vortex = true;
  bool run_hls = true;
  // Functional tier (binary translation): same binaries and board as the
  // soft GPU, digest-comparable outputs, no timing. Off by default — the
  // cycle-exact tier stays the default correctness + timing path.
  bool run_turbo = false;
  vortex::Config vortex_config = vortex::Config::with(4, 8, 8);
  // Boards default to the paper's pairing: SX2800 (DDR4) for the soft GPU,
  // MX2100 (HBM2) for the HLS flow.
  const fpga::Board* vortex_board = nullptr;
  const fpga::Board* hls_board = nullptr;
  // Mixed into each benchmark's workload_seed (recorded in the stats
  // schema; consumed by workloads that randomize beyond their built-in
  // fixed seeds).
  uint64_t suite_seed = 0xF69A;
  // Guest-code optimization level for the soft-GPU compiler (clamped 0..2
  // by codegen); recorded in every suite header so baselines are
  // self-describing. 0 is the straight-lowering oracle used by the
  // differential CI step.
  int opt_level = 2;
  // Record a trace::Sink per benchmark (exported via write_trace_json).
  bool capture_trace = false;
  // Collect the per-PC cycle profile on the soft GPU (exported via
  // write_profile_json; see vortex/profile.hpp and OBSERVABILITY.md).
  bool capture_profile = false;
  // Collect the memory-hierarchy profile (miss classes, reuse distances,
  // occupancy histograms) on the soft GPU and the HLS burst-LSU read path
  // (exported via write_mem_json; see mem/memprof.hpp). Observational
  // only: cycle counts are identical with it on or off.
  bool capture_memprof = false;
  // Collect structured optimization remarks + per-pass telemetry from the
  // soft-GPU compiler (exported via write_codegen_json as fgpu.codegen.v1;
  // see codegen/remarks.hpp). Observational only: the emitted binaries and
  // every cycle count are identical with it on or off (the sink changes the
  // KernelCache key but never the compiled program).
  bool capture_remarks = false;
  // When > 0, write_codegen_json ranks each kernel's remarks by the
  // measured cycles of their provenance site (PC -> KIR source join against
  // the per-PC profile) and emits the top K as a "hotspots" array. Needs
  // capture_profile for cycles to exist; 0 disables the join.
  int remark_hotspots = 0;
  // Per-pass ablation switches forwarded to the soft-GPU compiler (also
  // part of the kernel-cache key). Used by the optimizer-regression
  // experiments (fgpu-run --ablate=...).
  codegen::Options::PassAblation ablate;
  // Opt-in: embed host wall-clock / simulated-MIPS fields into the stats
  // JSON. Default off because fgpu.stats.v1's determinism contract forbids
  // host-dependent bytes (byte-identical across --jobs, machines, and the
  // BENCH_table1.json baseline). Prefer write_host_json (fgpu.host.v1),
  // which quarantines host metrics in their own document.
  bool host_in_stats = false;
  // Device + workload reuse (the fast path). Workers re-arm pooled devices
  // with Device::reset() instead of constructing fresh ones, and benchmarks
  // come from the process-wide workload cache. reset()'s contract makes
  // this observable only in fgpu.host.v1; every byte-gated document is
  // identical either way (CI's fresh-vs-pooled cmp gate). --fresh turns it
  // off — the A/B reference path.
  bool reuse_devices = true;
  // Externally owned pool kept warm across run_all calls (fgpu-run
  // --repeat: repeat N reuses repeat N-1's devices, which is where the
  // kernel-cache and turbo-translation wins land). Null with reuse_devices
  // set = a pool scoped to this run_all call.
  DevicePool* pool = nullptr;
};

struct BenchmarkOutcome {
  std::string name;
  std::string origin;
  uint64_t workload_seed = 0;
  bool ran_vortex = false;
  bool ran_hls = false;
  bool ran_turbo = false;
  DeviceRun vortex;
  DeviceRun hls;
  DeviceRun turbo;
  std::string vortex_device;  // device name strings for the report
  std::string hls_device;
  std::string turbo_device;
  // Cumulative translation/dispatch counters of the turbo run
  // (deterministic: warp scheduling is single-threaded round-robin).
  vortex::jit::TurboStats turbo_jit;
  std::unique_ptr<trace::Sink> trace;  // set when capture_trace
  // Host wall-clock of each device run, EXCLUDING build time (split into
  // DeviceRun::build_host_ms) and device setup below. NOT serialized into
  // the stats JSON (determinism contract) — exported via write_host_json.
  double vortex_wall_ms = 0.0;
  double hls_wall_ms = 0.0;
  double turbo_wall_ms = 0.0;
  // Host wall-clock of device setup: construction (cold) or Device::reset()
  // (pooled), per tier. fgpu.host.v1 "setup_ms".
  double vortex_setup_ms = 0.0;
  double hls_setup_ms = 0.0;
  double turbo_setup_ms = 0.0;
  // Whether the tier ran on a pool-recycled device (fgpu.host.v1 "reused").
  bool vortex_reused = false;
  bool hls_reused = false;
  bool turbo_reused = false;
};

// Reuse-machinery counters of one run_all call (deltas of the process-wide
// caches over the run, plus the pool's hand-outs). fgpu.host.v1 "reuse".
struct ReuseStats {
  uint64_t device_reuse_count = 0;      // devices handed out warm
  uint64_t kernel_cache_hits = 0;       // compiled-kernel cache (vortex+turbo)
  uint64_t kernel_cache_misses = 0;
  uint64_t hls_cache_hits = 0;          // HLS synthesis cache
  uint64_t hls_cache_misses = 0;
  uint64_t workload_cache_hits = 0;     // generated-benchmark cache
  uint64_t workload_cache_misses = 0;
  uint64_t reference_cache_hits = 0;    // memoized interpreter oracle
  uint64_t reference_cache_misses = 0;
  double compile_ms = 0.0;  // wall inside codegen::compile_kernel this run
  double synth_ms = 0.0;    // wall inside hls::synthesize this run
};

struct SuiteRunResult {
  std::vector<BenchmarkOutcome> outcomes;  // canonical Table-I order
  // Host wall-clock of the whole run. Intentionally NOT serialized: the
  // stats JSON must be identical across --jobs values.
  double wall_ms = 0.0;
  // Cache/pool activity during this run (host document only).
  ReuseStats reuse;

  int vortex_passes() const;
  int hls_passes() const;
  int turbo_passes() const;
};

// FNV-1a derivation: stable across platforms, distinct per benchmark.
uint64_t benchmark_seed(uint64_t suite_seed, const std::string& name);

// Benchmark names matching `regex`, in canonical order. Error on a bad
// regex; empty regex selects everything.
Result<std::vector<std::string>> filter_names(const std::string& regex);

// Runs every selected benchmark on the selected device(s).
Result<SuiteRunResult> run_all(const RunnerOptions& options);

// Serializes the run to the fgpu.stats.v1 schema (OBSERVABILITY.md).
void write_stats_json(std::ostream& os, const RunnerOptions& options,
                      const SuiteRunResult& result);

// Serializes the per-PC profiles to the fgpu.profile.v1 schema. Same
// determinism contract as the stats: byte-identical across --jobs.
void write_profile_json(std::ostream& os, const RunnerOptions& options,
                        const SuiteRunResult& result);

// Serializes the HLS per-site attribution + structured synthesis reports to
// the fgpu.hlsprof.v1 schema (OBSERVABILITY.md "HLS profiles"). Same
// determinism contract: byte-identical across --jobs.
void write_hlsprof_json(std::ostream& os, const RunnerOptions& options,
                        const SuiteRunResult& result);

// Serializes the memory-hierarchy profiles (per-level miss classes, reuse
// distances, MSHR/DRAM occupancy histograms, per-PC / per-site miss
// attribution) to the fgpu.mem.v1 schema. Same determinism contract:
// byte-identical across --jobs.
void write_mem_json(std::ostream& os, const RunnerOptions& options,
                    const SuiteRunResult& result);

// One cycle-joined remark: `remark` points into kc.compiled->report (the
// caller keeps the shared CompiledKernel alive); cycles/stall_cycles are
// the measured issue-stage cycles of the remark's provenance site (every
// PC whose source-map string equals remark->site, summed).
struct RemarkHotspot {
  const codegen::Remark* remark = nullptr;
  uint64_t cycles = 0;
  uint64_t stall_cycles = 0;
};

// Ranks the remarks of one kernel's codegen report by attributed cycle
// impact (descending cycles, ties in emission order) against the kernel's
// per-PC profile in `run`. Remarks whose site accrued no cycles are
// dropped; at most `top_k` entries return. Deterministic: the profile and
// the remark stream are both deterministic, and ties are ordered.
std::vector<RemarkHotspot> rank_remarks(const DeviceRun& run, const KernelCodegen& kc,
                                        size_t top_k);

// Serializes the compiler-observability reports (per-pass telemetry +
// optimization remarks, optionally cycle-joined hotspot rankings) to the
// fgpu.codegen.v1 schema (OBSERVABILITY.md "Codegen reports"). Same
// determinism contract: byte-identical across --jobs and fresh-vs-pooled
// (remarks replay byte-identically out of the KernelCache); per-pass wall
// times are deliberately never serialized.
void write_codegen_json(std::ostream& os, const RunnerOptions& options,
                        const SuiteRunResult& result);

// Shared "suite" header object of every suite-level document (stats,
// profile, hlsprof, compare): run configuration + benchmark count.
void write_suite_header(trace::JsonWriter& w, const RunnerOptions& options,
                        const SuiteRunResult& result);

// Merges per-benchmark trace sinks into one Chrome trace_event file
// (pid = benchmark position, process name = benchmark name).
void write_trace_json(std::ostream& os, const SuiteRunResult& result);

// Serializes host-throughput measurements to the fgpu.host.v1 schema:
// per-benchmark wall times with simulated MIPS / Mcycle-per-second rates,
// per-benchmark setup_ms/build_ms splits, suite totals (min/median over
// repeats) and the run's reuse counters (kernel/HLS/workload cache
// hit-miss, device_reuse_count, compile_ms/synth_ms).
// `repeats` holds one SuiteRunResult per --repeat iteration; the first is
// the primary run whose stats/profile were exported. With more than one
// repeat, per-benchmark minima are taken over the WARM repeats only
// (repeats[1:], reused devices + hot caches); repeat 0 — which pays cold
// compilation and turbo translation — is reported separately as the
// *_launch_ms_warmup suite fields, keeping turbo_speedup_over_vortex an
// apples-to-apples warm-vs-warm ratio. Host wall-clock is deliberately
// quarantined in this document — see OBSERVABILITY.md.
void write_host_json(std::ostream& os, const RunnerOptions& options,
                     const std::vector<const SuiteRunResult*>& repeats);

}  // namespace fgpu::suite
