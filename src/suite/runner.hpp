// Parallel suite runner: shards the 28 Table-I benchmarks across worker
// threads. Safe because each benchmark run is fully independent — every
// worker constructs its own Benchmark (factories seed their Rng with fixed
// per-benchmark constants) and its own device instances, so a run's cycle
// counts are identical whether it executed on 1 thread or 16. Results are
// aggregated in canonical suite order regardless of completion order; the
// determinism test (tests/test_runner.cpp) asserts jobs=1 and jobs=4
// produce byte-identical stats JSON.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "suite/suite.hpp"
#include "trace/json.hpp"
#include "trace/trace.hpp"
#include "vortex/config.hpp"
#include "vortex/jit/turbo.hpp"

namespace fgpu::suite {

struct RunnerOptions {
  // ECMAScript regex matched (std::regex_search) against benchmark names;
  // empty selects all 28.
  std::string filter;
  // Worker threads; 0 = std::thread::hardware_concurrency().
  uint32_t jobs = 1;
  bool run_vortex = true;
  bool run_hls = true;
  // Functional tier (binary translation): same binaries and board as the
  // soft GPU, digest-comparable outputs, no timing. Off by default — the
  // cycle-exact tier stays the default correctness + timing path.
  bool run_turbo = false;
  vortex::Config vortex_config = vortex::Config::with(4, 8, 8);
  // Boards default to the paper's pairing: SX2800 (DDR4) for the soft GPU,
  // MX2100 (HBM2) for the HLS flow.
  const fpga::Board* vortex_board = nullptr;
  const fpga::Board* hls_board = nullptr;
  // Mixed into each benchmark's workload_seed (recorded in the stats
  // schema; consumed by workloads that randomize beyond their built-in
  // fixed seeds).
  uint64_t suite_seed = 0xF69A;
  // Guest-code optimization level for the soft-GPU compiler (clamped 0..2
  // by codegen); recorded in every suite header so baselines are
  // self-describing. 0 is the straight-lowering oracle used by the
  // differential CI step.
  int opt_level = 2;
  // Record a trace::Sink per benchmark (exported via write_trace_json).
  bool capture_trace = false;
  // Collect the per-PC cycle profile on the soft GPU (exported via
  // write_profile_json; see vortex/profile.hpp and OBSERVABILITY.md).
  bool capture_profile = false;
  // Collect the memory-hierarchy profile (miss classes, reuse distances,
  // occupancy histograms) on the soft GPU and the HLS burst-LSU read path
  // (exported via write_mem_json; see mem/memprof.hpp). Observational
  // only: cycle counts are identical with it on or off.
  bool capture_memprof = false;
  // Opt-in: embed host wall-clock / simulated-MIPS fields into the stats
  // JSON. Default off because fgpu.stats.v1's determinism contract forbids
  // host-dependent bytes (byte-identical across --jobs, machines, and the
  // BENCH_table1.json baseline). Prefer write_host_json (fgpu.host.v1),
  // which quarantines host metrics in their own document.
  bool host_in_stats = false;
};

struct BenchmarkOutcome {
  std::string name;
  std::string origin;
  uint64_t workload_seed = 0;
  bool ran_vortex = false;
  bool ran_hls = false;
  bool ran_turbo = false;
  DeviceRun vortex;
  DeviceRun hls;
  DeviceRun turbo;
  std::string vortex_device;  // device name strings for the report
  std::string hls_device;
  std::string turbo_device;
  // Cumulative translation/dispatch counters of the turbo run
  // (deterministic: warp scheduling is single-threaded round-robin).
  vortex::jit::TurboStats turbo_jit;
  std::unique_ptr<trace::Sink> trace;  // set when capture_trace
  // Host wall-clock of each device run. NOT serialized into the stats
  // JSON (determinism contract) — exported via write_host_json.
  double vortex_wall_ms = 0.0;
  double hls_wall_ms = 0.0;
  double turbo_wall_ms = 0.0;
};

struct SuiteRunResult {
  std::vector<BenchmarkOutcome> outcomes;  // canonical Table-I order
  // Host wall-clock of the whole run. Intentionally NOT serialized: the
  // stats JSON must be identical across --jobs values.
  double wall_ms = 0.0;

  int vortex_passes() const;
  int hls_passes() const;
  int turbo_passes() const;
};

// FNV-1a derivation: stable across platforms, distinct per benchmark.
uint64_t benchmark_seed(uint64_t suite_seed, const std::string& name);

// Benchmark names matching `regex`, in canonical order. Error on a bad
// regex; empty regex selects everything.
Result<std::vector<std::string>> filter_names(const std::string& regex);

// Runs every selected benchmark on the selected device(s).
Result<SuiteRunResult> run_all(const RunnerOptions& options);

// Serializes the run to the fgpu.stats.v1 schema (OBSERVABILITY.md).
void write_stats_json(std::ostream& os, const RunnerOptions& options,
                      const SuiteRunResult& result);

// Serializes the per-PC profiles to the fgpu.profile.v1 schema. Same
// determinism contract as the stats: byte-identical across --jobs.
void write_profile_json(std::ostream& os, const RunnerOptions& options,
                        const SuiteRunResult& result);

// Serializes the HLS per-site attribution + structured synthesis reports to
// the fgpu.hlsprof.v1 schema (OBSERVABILITY.md "HLS profiles"). Same
// determinism contract: byte-identical across --jobs.
void write_hlsprof_json(std::ostream& os, const RunnerOptions& options,
                        const SuiteRunResult& result);

// Serializes the memory-hierarchy profiles (per-level miss classes, reuse
// distances, MSHR/DRAM occupancy histograms, per-PC / per-site miss
// attribution) to the fgpu.mem.v1 schema. Same determinism contract:
// byte-identical across --jobs.
void write_mem_json(std::ostream& os, const RunnerOptions& options,
                    const SuiteRunResult& result);

// Shared "suite" header object of every suite-level document (stats,
// profile, hlsprof, compare): run configuration + benchmark count.
void write_suite_header(trace::JsonWriter& w, const RunnerOptions& options,
                        const SuiteRunResult& result);

// Merges per-benchmark trace sinks into one Chrome trace_event file
// (pid = benchmark position, process name = benchmark name).
void write_trace_json(std::ostream& os, const SuiteRunResult& result);

// Serializes host-throughput measurements to the fgpu.host.v1 schema:
// per-benchmark wall times (min over repeats) with simulated MIPS /
// Mcycle-per-second rates, plus suite totals (min/median over repeats).
// `repeats` holds one SuiteRunResult per --repeat iteration; the first is
// the primary run whose stats/profile were exported. Host wall-clock is
// deliberately quarantined in this document — see OBSERVABILITY.md.
void write_host_json(std::ostream& os, const RunnerOptions& options,
                     const std::vector<const SuiteRunResult*>& repeats);

}  // namespace fgpu::suite
