// Side-by-side comparison of the two execution flows — the paper's core
// deliverable (Fig. 6 speedups, Table I coverage, Tables II-IV area, the
// synthesis-time-vs-portability tradeoff) as one versioned document instead
// of numbers scattered across two DeviceRuns.
//
// write_compare_json joins each benchmark's vortex and HLS runs into a
// fgpu.compare.v1 record: per-device outcome + cycles + modeled time + DRAM
// traffic, HLS-only synthesis cost (hours, area, pipeline), a coverage
// class ("both" / "vortex_only" / "hls_only" / "neither"), the
// HLS-over-vortex speedup when both passed, and a categorical verdict.
// Suite-level sections aggregate pass counts, the geomean speedup, total
// modeled synthesis hours per flow, and the Table-I failure-reason diff.
//
// Determinism contract: identical to fgpu.stats.v1 — output depends only on
// simulated counters (no wall-clock, no host state), so the document is
// byte-identical across --jobs (asserted by tests/test_runner.cpp) and
// baseline-diffable (tools/check_baseline.py --compare-baseline).
#pragma once

#include <ostream>

#include "suite/runner.hpp"

namespace fgpu::suite {

// Version tag of the comparison export (fgpu-run --compare; see
// OBSERVABILITY.md "Comparisons"). Bump on any breaking change to field
// names, units, or the speedup/verdict definitions.
inline constexpr const char* kCompareSchema = "fgpu.compare.v1";

// Serializes the joined vortex/HLS comparison to fgpu.compare.v1. Expects a
// run with both devices enabled (fgpu-run rejects --compare with a single
// --device); benchmarks missing a side are still emitted with coverage
// reflecting the absent run.
void write_compare_json(std::ostream& os, const RunnerOptions& options,
                        const SuiteRunResult& result);

}  // namespace fgpu::suite
