// Design-space exploration engine (fgpu.dse.v1) — the production answer to
// the paper's §IV-A observation that Vortex's configuration space is too
// large to sweep with cycle-level simulation alone ("a valuable opportunity
// exists for research aimed at minimizing or circumventing the exploration
// space").
//
// The sweep covers (cores x warps x threads x L1D geometry x L2 geometry x
// DRAM/HBM channel timing x board) as a three-stage funnel:
//
//   1. analytical — vortex::predict_cycles evaluates the full grid at
//      microseconds per configuration (cache-geometry and channel-bandwidth
//      aware, so every axis is prunable), and vortex::estimate_area +
//      Board::fits drop configurations that cannot synthesize. Barrier
//      workloads additionally require warps*threads >= the largest
//      work-group (the dispatch constraint a real run would hit).
//   2. screen — survivors are deduplicated by (C, W, T) shape (cache and
//      DRAM geometry cannot change function) and each shape is functionally
//      validated once on the turbo tier against the interpreter oracle.
//   3. exact — a top-K + stratified slice of the screened survivors runs
//      cycle-exact on a work-stealing runner with per-identity pooled
//      devices, memoized workloads/references (suite.hpp shared_* caches)
//      and the process-wide kernel cache.
//
// The exported fgpu.dse.v1 document is byte-identical across --jobs and
// fresh-vs-pooled devices: candidate order is the canonical grid order,
// results are written into pre-sized slots, and host wall-clock throughput
// is quarantined behind the host_in_stats opt-in (the fgpu.host.v1 rule).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fpga/board.hpp"
#include "suite/device_pool.hpp"
#include "suite/suite.hpp"
#include "vortex/analytical.hpp"
#include "vortex/config.hpp"

namespace fgpu::suite {

struct DseOptions {
  std::vector<std::string> benchmarks = {"vecadd"};
  // "quick" (CI-sized, 216 configurations) or "full" (12,000 — the
  // documented production sweep; EXPERIMENTS.md "Design-space exploration").
  std::string grid = "quick";
  uint32_t jobs = 1;            // exact-stage worker threads
  size_t exact_budget = 32;     // cycle-exact slice size (stage 3)
  size_t screen_budget = 0;     // max shapes screened in stage 2; 0 = all
  int opt_level = 2;
  // Memoize workloads/references (shared_* caches) and pool stage-3
  // devices. Off = fresh everything; the exported document is identical
  // either way (the reset() contract, asserted in tests/test_dse.cpp).
  bool reuse_devices = true;
  // Embed per-stage wall-clock + configs/sec in the document. Default off:
  // host timing is nondeterministic and would break the byte-gate.
  bool host_in_stats = false;
  // External device pool for cross-run reuse (nullptr = a run-local pool,
  // capped at 2*jobs+2 identities, when reuse_devices is set).
  DevicePool* pool = nullptr;
};

// One grid point, annotated as it moves down the funnel. `label` is the
// canonical identity ("C4W8T8:l1d16k:l2128k:ddr4@Stratix10-SX2800") used
// for pool keying and in the exported document.
struct DseCandidate {
  vortex::Config config;
  const fpga::Board* board = nullptr;
  std::string label;

  // Stage 1 (analytical).
  fpga::AreaReport area;
  double utilization = 0.0;  // worst board resource, 1.0 == full
  bool fits = false;
  bool feasible = true;  // barrier work-group fits warps*threads
  double predicted_cycles = 0.0;
  std::string bottleneck;

  // Stage 2 (turbo screen, via this candidate's (C,W,T) shape).
  bool screened = false;
  bool screen_ok = false;

  // Stage 3 (cycle-exact).
  bool selected = false;
  bool simulated = false;
  bool sim_ok = false;
  uint64_t simulated_cycles = 0;  // summed over benchmarks
  bool pareto = false;            // on the (cycles, utilization) frontier
};

// Host-side throughput of one funnel stage (fgpu.host.v1-class data; only
// exported under DseOptions::host_in_stats).
struct DseStageHost {
  double wall_ms = 0.0;
  double configs_per_sec = 0.0;
};

struct DseResult {
  std::vector<DseCandidate> candidates;  // canonical grid order

  // Funnel counts.
  size_t grid_total = 0;
  size_t infeasible = 0;            // barrier work-group cannot dispatch
  size_t unfit = 0;                 // feasible but exceeds board resources
  size_t analytical_survivors = 0;  // reached stage 2
  size_t shapes_total = 0;          // distinct (C,W,T) among survivors
  size_t shapes_screened = 0;
  size_t shapes_failed = 0;
  size_t screen_survivors = 0;  // candidates whose shape passed
  size_t exact_selected = 0;
  size_t exact_ok = 0;

  // Spearman rank correlation of predicted vs simulated cycles over the
  // cycle-exact slice (the model's ranking fidelity — what makes stage-1
  // pruning trustworthy).
  double spearman = 0.0;

  DseStageHost host_analytical, host_screen, host_exact;
  std::string error;  // non-empty when setup failed (bad benchmark, ...)
};

// Enumerates the named grid ("quick" | "full") in canonical order; empty on
// an unknown grid name.
std::vector<DseCandidate> enumerate_grid(const std::string& grid);

// Profiles every launch of `bench` with the interpreter counting hooks
// (vortex::profile_kernel), threading buffer state through the launch
// sequence exactly like reference_run. Configuration-independent: computed
// once per workload, reused across the whole grid.
Result<std::vector<vortex::KernelProfile>> profile_benchmark(const Benchmark& bench);

// Sums per-launch predictions on `config`; the reported bottleneck is the
// dominant (largest-cycles) launch's.
vortex::Prediction predict_benchmark(const std::vector<vortex::KernelProfile>& profiles,
                                     const vortex::Config& config);

// Spearman rank correlation with average-rank tie handling. Returns 0 when
// the inputs are degenerate (size < 2, mismatched, or constant).
double spearman_rank(const std::vector<double>& a, const std::vector<double>& b);

// Canonical config identity string (also the device-pool key prefix).
std::string dse_config_label(const vortex::Config& config, const fpga::Board& board);

// --- shared cycle-exact grid runner (stage 3 here; bench/fig7 grid) ------

struct ExactPoint {
  vortex::Config config;
  const fpga::Board* board = nullptr;
};

// One (grid point, benchmark) cycle-exact result.
struct ExactCell {
  bool ok = false;
  uint64_t cycles = 0;
  uint64_t lsu_stalls = 0;  // final-launch LSU stall cycles (Fig. 7 metric)
  std::string fail;
};

struct ExactGridOptions {
  uint32_t jobs = 1;
  int opt_level = 2;
  // Memoize workloads/references via the shared_* caches.
  bool reuse_workloads = true;
  // Pool devices per grid-point identity (nullptr = fresh device per point).
  DevicePool* pool = nullptr;
};

// Runs every benchmark on every grid point cycle-exact, work-stealing over
// points with `jobs` threads. Results land in pre-sized [point][benchmark]
// slots, so the output is identical for any job count; devices are checked
// out of `pool` by per-point identity and re-armed with reset(), so pooled
// and fresh runs are cycle-identical too (DESIGN.md "Device lifecycle").
std::vector<std::vector<ExactCell>> run_exact_grid(const std::vector<ExactPoint>& points,
                                                   const std::vector<std::string>& benchmarks,
                                                   const ExactGridOptions& options);

// Runs the full three-stage funnel.
DseResult run_dse(const DseOptions& options);

// fgpu.dse.v1 exporter (schema-versioned, OBSERVABILITY.md). Deterministic
// modulo the host_in_stats opt-in.
void write_dse_json(std::ostream& os, const DseOptions& options, const DseResult& result);

}  // namespace fgpu::suite
