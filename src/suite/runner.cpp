#include "suite/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <regex>
#include <string_view>
#include <thread>

#include "runtime/hls_device.hpp"
#include "runtime/turbo_device.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/report.hpp"

namespace fgpu::suite {

int SuiteRunResult::vortex_passes() const {
  int n = 0;
  for (const auto& outcome : outcomes) n += outcome.ran_vortex && outcome.vortex.ok();
  return n;
}

int SuiteRunResult::hls_passes() const {
  int n = 0;
  for (const auto& outcome : outcomes) n += outcome.ran_hls && outcome.hls.ok();
  return n;
}

int SuiteRunResult::turbo_passes() const {
  int n = 0;
  for (const auto& outcome : outcomes) n += outcome.ran_turbo && outcome.turbo.ok();
  return n;
}

uint64_t benchmark_seed(uint64_t suite_seed, const std::string& name) {
  uint64_t hash = 0xcbf29ce484222325ull ^ suite_seed;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

Result<std::vector<std::string>> filter_names(const std::string& regex) {
  std::vector<std::string> selected;
  if (regex.empty()) {
    selected = all_benchmark_names();
    return selected;
  }
  try {
    const std::regex re(regex, std::regex::ECMAScript);
    for (const auto& name : all_benchmark_names()) {
      if (std::regex_search(name, re)) selected.push_back(name);
    }
  } catch (const std::regex_error& e) {
    return Result<std::vector<std::string>>(ErrorKind::kInvalidArgument,
                                            "bad --filter regex '" + regex + "': " + e.what());
  }
  return selected;
}

namespace {

void run_one(const RunnerOptions& options, const std::string& name, BenchmarkOutcome& outcome) {
  outcome.name = name;
  outcome.workload_seed = benchmark_seed(options.suite_seed, name);
  if (options.capture_trace) outcome.trace = std::make_unique<trace::Sink>();
  // Install this benchmark's sink on the worker thread for the duration of
  // both device runs; instrumentation in vortex::/mem::/vcl:: picks it up
  // through trace::current().
  trace::ScopedSink scoped(outcome.trace.get());

  const Benchmark bench = make_benchmark(name);
  outcome.origin = bench.origin;

  if (options.run_vortex) {
    const fpga::Board& board =
        options.vortex_board != nullptr ? *options.vortex_board : fpga::stratix10_sx2800();
    vortex::Config config = options.vortex_config;
    config.profile = config.profile || options.capture_profile;
    config.memprof = config.memprof || options.capture_memprof;
    codegen::Options codegen_options;
    codegen_options.opt_level = options.opt_level;
    vcl::VortexDevice device(config, board, codegen_options);
    outcome.vortex_device = device.name();
    const auto t0 = std::chrono::steady_clock::now();
    outcome.vortex = run_benchmark(device, bench);
    outcome.vortex_wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    outcome.ran_vortex = true;
  }
  if (options.run_turbo) {
    // Same binaries and board pairing as the soft GPU, so output digests
    // are comparable 1:1 against the cycle-exact run above.
    const fpga::Board& board =
        options.vortex_board != nullptr ? *options.vortex_board : fpga::stratix10_sx2800();
    codegen::Options codegen_options;
    codegen_options.opt_level = options.opt_level;
    vcl::TurboDevice device(options.vortex_config, board, codegen_options);
    outcome.turbo_device = device.name();
    const auto t0 = std::chrono::steady_clock::now();
    outcome.turbo = run_benchmark(device, bench);
    outcome.turbo_wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    outcome.turbo_jit = device.jit_stats();
    outcome.ran_turbo = true;
  }
  if (options.run_hls) {
    const fpga::Board& board =
        options.hls_board != nullptr ? *options.hls_board : fpga::stratix10_mx2100();
    vcl::HlsDevice device(board);
    if (options.capture_memprof) {
      // Shadow the read path with the soft-GPU L1D geometry so the locality
      // view is directly comparable across the two flows.
      device.set_memprof(true, options.vortex_config.l1d.num_lines(), options.vortex_config.l1d.ways);
    }
    outcome.hls_device = device.name();
    const auto t0 = std::chrono::steady_clock::now();
    outcome.hls = run_benchmark(device, bench);
    outcome.hls_wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    outcome.ran_hls = true;
  }
}

}  // namespace

Result<SuiteRunResult> run_all(const RunnerOptions& options) {
  auto names = filter_names(options.filter);
  if (!names.is_ok()) return Result<SuiteRunResult>(names.status());

  SuiteRunResult result;
  result.outcomes.resize(names->size());
  const auto start = std::chrono::steady_clock::now();

  uint32_t jobs = options.jobs != 0 ? options.jobs : std::thread::hardware_concurrency();
  jobs = std::min<uint32_t>(std::max(1u, jobs), static_cast<uint32_t>(names->size()));

  if (jobs <= 1) {
    for (size_t i = 0; i < names->size(); ++i) run_one(options, (*names)[i], result.outcomes[i]);
  } else {
    // Work-stealing by atomic index; each worker writes only its claimed
    // slots, so the outcome vector needs no lock and stays in canonical
    // order for aggregation.
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (uint32_t t = 0; t < jobs; ++t) {
      workers.emplace_back([&]() {
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= names->size()) return;
          run_one(options, (*names)[i], result.outcomes[i]);
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }

  const auto end = std::chrono::steady_clock::now();
  result.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  return result;
}

// Common "suite" header object of the suite-level documents (stats,
// profile, hlsprof, compare).
void write_suite_header(trace::JsonWriter& w, const RunnerOptions& options,
                        const SuiteRunResult& result) {
  w.key("suite").begin_object();
  w.field("filter", options.filter);
  w.field("suite_seed", options.suite_seed);
  w.field("vortex_config", options.vortex_config.to_string());
  const fpga::Board& vx_board =
      options.vortex_board != nullptr ? *options.vortex_board : fpga::stratix10_sx2800();
  const fpga::Board& hls_board =
      options.hls_board != nullptr ? *options.hls_board : fpga::stratix10_mx2100();
  w.field("vortex_board", vx_board.name);
  w.field("hls_board", hls_board.name);
  w.field("opt_level", static_cast<int64_t>(options.opt_level));
  w.field("benchmark_count", static_cast<uint64_t>(result.outcomes.size()));
  w.end_object();
}

void write_stats_json(std::ostream& os, const RunnerOptions& options,
                      const SuiteRunResult& result) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kStatsSchema);
  write_suite_header(w, options, result);
  if (options.host_in_stats) {
    // Opt-in only (see RunnerOptions::host_in_stats): these bytes vary per
    // machine and run, so default documents stay byte-comparable.
    w.key("host").begin_object();
    w.field("wall_ms", result.wall_ms);
    w.end_object();
  }
  w.key("benchmarks").begin_array();
  for (const auto& outcome : result.outcomes) {
    w.begin_object();
    w.field("name", outcome.name);
    w.field("origin", outcome.origin);
    w.field("workload_seed", outcome.workload_seed);
    if (outcome.ran_vortex) {
      w.key("vortex");
      write_json(w, outcome.vortex, DeviceKind::kVortex, outcome.vortex_device);
    }
    if (outcome.ran_turbo) {
      // Only present when --device turbo/all ran, so default documents stay
      // byte-identical to the pre-turbo baselines (schema-drift contract).
      w.key("turbo");
      write_json(w, outcome.turbo, DeviceKind::kTurbo, outcome.turbo_device);
      w.key("turbo_jit").begin_object();
      w.field("blocks_translated", outcome.turbo_jit.blocks_translated);
      w.field("block_lookups", outcome.turbo_jit.block_lookups);
      w.field("block_hits", outcome.turbo_jit.block_hits);
      w.field("block_cache_hit_rate", outcome.turbo_jit.hit_rate());
      w.field("chained_dispatches", outcome.turbo_jit.chained_dispatches);
      w.field("invalidations", outcome.turbo_jit.invalidations);
      w.end_object();
    }
    if (outcome.ran_hls) {
      w.key("hls");
      write_json(w, outcome.hls, DeviceKind::kHls, outcome.hls_device);
    }
    if (options.host_in_stats && outcome.ran_vortex) {
      w.key("host").begin_object();
      w.field("vortex_wall_ms", outcome.vortex_wall_ms);
      const double secs = outcome.vortex_wall_ms / 1e3;
      w.field("vortex_mips",
              secs > 0.0 ? static_cast<double>(outcome.vortex.total_instrs) / 1e6 / secs : 0.0);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_profile_json(std::ostream& os, const RunnerOptions& options,
                        const SuiteRunResult& result) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kProfileSchema);
  write_suite_header(w, options, result);
  w.key("benchmarks").begin_array();
  for (const auto& outcome : result.outcomes) {
    if (!outcome.ran_vortex) continue;
    w.begin_object();
    w.field("name", outcome.name);
    w.field("device", outcome.vortex_device);
    w.field("ok", outcome.vortex.ok());
    w.key("kernels").begin_array();
    for (const auto& profile : outcome.vortex.kernel_profiles) write_json(w, profile);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_hlsprof_json(std::ostream& os, const RunnerOptions& options,
                        const SuiteRunResult& result) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kHlsProfSchema);
  write_suite_header(w, options, result);
  w.key("benchmarks").begin_array();
  for (const auto& outcome : result.outcomes) {
    if (!outcome.ran_hls) continue;
    w.begin_object();
    w.field("name", outcome.name);
    w.field("device", outcome.hls_device);
    w.field("ok", outcome.hls.ok());
    w.field("fail_reason", outcome.hls.fail_reason);
    // Kernels that failed to fit still appear (launches == 0, sites empty)
    // with their structured synthesis report — the Table-I failure rows.
    w.key("kernels").begin_array();
    for (const auto& profile : outcome.hls.hls_profiles) write_json(w, profile);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_mem_json(std::ostream& os, const RunnerOptions& options,
                    const SuiteRunResult& result) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kMemSchema);
  write_suite_header(w, options, result);
  // Geometry of the HLS read-path shadow cache (mirrors the soft-GPU L1D;
  // see run_one). Recorded so mem documents are self-describing.
  w.key("shadow").begin_object();
  w.field("lines", options.vortex_config.l1d.num_lines());
  w.field("ways", options.vortex_config.l1d.ways);
  w.end_object();
  w.key("benchmarks").begin_array();
  for (const auto& outcome : result.outcomes) {
    if (!outcome.ran_vortex && !outcome.ran_hls) continue;
    w.begin_object();
    w.field("name", outcome.name);
    if (outcome.ran_vortex) {
      w.key("vortex").begin_object();
      w.field("device", outcome.vortex_device);
      w.field("ok", outcome.vortex.ok());
      w.key("kernels").begin_array();
      for (const auto& profile : outcome.vortex.mem_profiles) write_json(w, profile);
      w.end_array();
      w.end_object();
    }
    if (outcome.ran_hls) {
      w.key("hls").begin_object();
      w.field("device", outcome.hls_device);
      w.field("ok", outcome.hls.ok());
      w.key("kernels").begin_array();
      for (const auto& profile : outcome.hls.mem_profiles) write_json(w, profile);
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

namespace {

double median_of(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

// Simulated throughput over a host wall time: millions of X per second.
double rate_per_sec(uint64_t count, double wall_ms) {
  if (wall_ms <= 0.0) return 0.0;
  return static_cast<double>(count) / 1e6 / (wall_ms / 1e3);
}

}  // namespace

void write_host_json(std::ostream& os, const RunnerOptions& options,
                     const std::vector<const SuiteRunResult*>& repeats) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kHostSchema);
  const SuiteRunResult& primary = *repeats.front();
  write_suite_header(w, options, primary);
  w.field("jobs", static_cast<uint64_t>(options.jobs));
  w.field("repeats", static_cast<uint64_t>(repeats.size()));

  // Suite totals: wall time per repeat, plus min/median (--repeat smooths
  // host noise so numbers are comparable across PRs; see tools/
  // check_baseline.py's non-gating host comparison).
  std::vector<double> walls;
  walls.reserve(repeats.size());
  for (const SuiteRunResult* run : repeats) walls.push_back(run->wall_ms);
  uint64_t total_cycles = 0, total_instrs = 0;
  for (const auto& outcome : primary.outcomes) {
    if (outcome.ran_vortex && outcome.vortex.ok()) {
      total_cycles += outcome.vortex.total_cycles;
      total_instrs += outcome.vortex.total_instrs;
    }
  }
  const double wall_min = *std::min_element(walls.begin(), walls.end());
  w.key("suite_wall_ms").begin_object();
  w.field("min", wall_min);
  w.field("median", median_of(walls));
  w.key("all").begin_array();
  for (const double ms : walls) w.value(ms);
  w.end_array();
  w.end_object();
  w.field("vortex_total_cycles", total_cycles);
  w.field("vortex_total_instrs", total_instrs);
  // Suite-level rates use the min wall (the least-noise estimate of the
  // machine's actual throughput).
  w.field("vortex_mcps", rate_per_sec(total_cycles, wall_min));
  w.field("vortex_mips", rate_per_sec(total_instrs, wall_min));

  // Turbo (functional tier) totals, present only when the tier ran. The
  // headline speedup compares *execution* time only — host wall spent inside
  // Device::launch() (DeviceRun::launch_host_ms, min over repeats per
  // benchmark) — because the costs around a launch (guest-code compilation,
  // workload generation, buffer transfer, verification) are identical for
  // both tiers and would dilute the ratio into a measurement of the harness
  // rather than the tiers. Summed over the benchmarks where BOTH tiers ran
  // and passed, so a missing or failing row cannot skew the ratio.
  bool any_turbo = false;
  for (const auto& outcome : primary.outcomes) any_turbo |= outcome.ran_turbo;
  if (any_turbo) {
    uint64_t turbo_instrs = 0;
    double turbo_wall = 0.0, turbo_launch = 0.0;
    double vortex_launch_paired = 0.0, turbo_launch_paired = 0.0;
    for (size_t i = 0; i < primary.outcomes.size(); ++i) {
      const auto& outcome = primary.outcomes[i];
      if (!outcome.ran_turbo || !outcome.turbo.ok()) continue;
      double best = outcome.turbo_wall_ms;
      double best_launch = outcome.turbo.launch_host_ms;
      for (const SuiteRunResult* run : repeats) {
        best = std::min(best, run->outcomes[i].turbo_wall_ms);
        best_launch = std::min(best_launch, run->outcomes[i].turbo.launch_host_ms);
      }
      turbo_instrs += outcome.turbo.total_instrs;
      turbo_wall += best;
      turbo_launch += best_launch;
      if (outcome.ran_vortex && outcome.vortex.ok()) {
        double vx_launch = outcome.vortex.launch_host_ms;
        for (const SuiteRunResult* run : repeats) {
          vx_launch = std::min(vx_launch, run->outcomes[i].vortex.launch_host_ms);
        }
        vortex_launch_paired += vx_launch;
        turbo_launch_paired += best_launch;
      }
    }
    w.field("turbo_total_instrs", turbo_instrs);
    w.field("turbo_wall_ms", turbo_wall);
    w.field("turbo_mips", rate_per_sec(turbo_instrs, turbo_wall));
    w.field("turbo_launch_ms", turbo_launch);
    w.field("turbo_dispatch_mips", rate_per_sec(turbo_instrs, turbo_launch));
    w.field("vortex_launch_ms_paired", vortex_launch_paired);
    w.field("turbo_launch_ms_paired", turbo_launch_paired);
    w.field("turbo_speedup_over_vortex",
            turbo_launch_paired > 0.0 ? vortex_launch_paired / turbo_launch_paired : 0.0);
  }

  // Per-benchmark wall times: min over repeats, per device. The repeats all
  // ran the same canonical benchmark list, so index i is the same
  // benchmark in every run.
  w.key("benchmarks").begin_array();
  for (size_t i = 0; i < primary.outcomes.size(); ++i) {
    const auto& outcome = primary.outcomes[i];
    w.begin_object();
    w.field("name", outcome.name);
    if (outcome.ran_vortex) {
      double best = outcome.vortex_wall_ms;
      for (const SuiteRunResult* run : repeats) {
        best = std::min(best, run->outcomes[i].vortex_wall_ms);
      }
      double best_launch = outcome.vortex.launch_host_ms;
      for (const SuiteRunResult* run : repeats) {
        best_launch = std::min(best_launch, run->outcomes[i].vortex.launch_host_ms);
      }
      w.key("vortex").begin_object();
      w.field("ok", outcome.vortex.ok());
      w.field("wall_ms", best);
      w.field("launch_ms", best_launch);
      w.field("cycles", outcome.vortex.total_cycles);
      w.field("instrs", outcome.vortex.total_instrs);
      w.field("mcps", rate_per_sec(outcome.vortex.total_cycles, best));
      w.field("mips", rate_per_sec(outcome.vortex.total_instrs, best));
      {
        // Reference side of the turbo-vs-vortex digest cross-check
        // (check_baseline.py --turbo-digests).
        char digest[19];
        std::snprintf(digest, sizeof(digest), "0x%016llx",
                      static_cast<unsigned long long>(outcome.vortex.output_digest));
        w.field("output_digest", std::string_view(digest));
      }
      w.end_object();
    }
    if (outcome.ran_turbo) {
      double best = outcome.turbo_wall_ms;
      for (const SuiteRunResult* run : repeats) {
        best = std::min(best, run->outcomes[i].turbo_wall_ms);
      }
      double best_launch = outcome.turbo.launch_host_ms;
      for (const SuiteRunResult* run : repeats) {
        best_launch = std::min(best_launch, run->outcomes[i].turbo.launch_host_ms);
      }
      w.key("turbo").begin_object();
      w.field("ok", outcome.turbo.ok());
      w.field("wall_ms", best);
      w.field("launch_ms", best_launch);
      w.field("instrs", outcome.turbo.total_instrs);
      w.field("mips", rate_per_sec(outcome.turbo.total_instrs, best));
      w.field("dispatch_mips", rate_per_sec(outcome.turbo.total_instrs, best_launch));
      w.field("blocks_translated", outcome.turbo_jit.blocks_translated);
      w.field("block_cache_hit_rate", outcome.turbo_jit.hit_rate());
      {
        // Digest here too: the turbo-vs-vortex cross-check gate
        // (check_baseline.py --turbo-digests) reads host documents.
        char digest[19];
        std::snprintf(digest, sizeof(digest), "0x%016llx",
                      static_cast<unsigned long long>(outcome.turbo.output_digest));
        w.field("output_digest", std::string_view(digest));
      }
      w.end_object();
    }
    if (outcome.ran_hls) {
      double best = outcome.hls_wall_ms;
      for (const SuiteRunResult* run : repeats) {
        best = std::min(best, run->outcomes[i].hls_wall_ms);
      }
      w.key("hls").begin_object();
      w.field("ok", outcome.hls.ok());
      w.field("wall_ms", best);
      w.field("cycles", outcome.hls.total_cycles);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_trace_json(std::ostream& os, const SuiteRunResult& result) {
  std::vector<trace::Process> processes;
  for (size_t i = 0; i < result.outcomes.size(); ++i) {
    const auto& outcome = result.outcomes[i];
    if (outcome.trace == nullptr) continue;
    processes.push_back(
        trace::Process{static_cast<uint32_t>(i + 1), outcome.name, outcome.trace.get()});
  }
  trace::write_chrome_trace(os, processes);
}

}  // namespace fgpu::suite
