#include "suite/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <regex>
#include <string_view>
#include <thread>

#include "runtime/hls_cache.hpp"
#include "runtime/hls_device.hpp"
#include "runtime/kernel_cache.hpp"
#include "runtime/turbo_device.hpp"
#include "runtime/vortex_device.hpp"
#include "suite/device_pool.hpp"
#include "suite/report.hpp"

namespace fgpu::suite {

int SuiteRunResult::vortex_passes() const {
  int n = 0;
  for (const auto& outcome : outcomes) n += outcome.ran_vortex && outcome.vortex.ok();
  return n;
}

int SuiteRunResult::hls_passes() const {
  int n = 0;
  for (const auto& outcome : outcomes) n += outcome.ran_hls && outcome.hls.ok();
  return n;
}

int SuiteRunResult::turbo_passes() const {
  int n = 0;
  for (const auto& outcome : outcomes) n += outcome.ran_turbo && outcome.turbo.ok();
  return n;
}

uint64_t benchmark_seed(uint64_t suite_seed, const std::string& name) {
  uint64_t hash = 0xcbf29ce484222325ull ^ suite_seed;
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

Result<std::vector<std::string>> filter_names(const std::string& regex) {
  std::vector<std::string> selected;
  if (regex.empty()) {
    selected = all_benchmark_names();
    return selected;
  }
  try {
    const std::regex re(regex, std::regex::ECMAScript);
    for (const auto& name : all_benchmark_names()) {
      if (std::regex_search(name, re)) selected.push_back(name);
    }
  } catch (const std::regex_error& e) {
    return Result<std::vector<std::string>>(ErrorKind::kInvalidArgument,
                                            "bad --filter regex '" + regex + "': " + e.what());
  }
  return selected;
}

namespace {

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

// Per-benchmark delta of the engine-cumulative turbo counters. With device
// pooling the engine's totals span every benchmark the device has run, so
// the byte-gated stats document gets the before/after difference — which,
// for a fresh device (before == all-zero), is exactly the cumulative value
// the document carried before pooling existed.
vortex::jit::TurboStats jit_delta(const vortex::jit::TurboStats& after,
                                  const vortex::jit::TurboStats& before) {
  vortex::jit::TurboStats d;
  d.instrs = after.instrs - before.instrs;
  d.blocks_translated = after.blocks_translated - before.blocks_translated;
  d.block_lookups = after.block_lookups - before.block_lookups;
  d.block_hits = after.block_hits - before.block_hits;
  d.chained_dispatches = after.chained_dispatches - before.chained_dispatches;
  d.invalidations = after.invalidations - before.invalidations;
  d.barriers = after.barriers - before.barriers;
  d.ecalls = after.ecalls - before.ecalls;
  return d;
}

// Everything that flows into device construction. Pooled devices are only
// recycled under the same identity — reset() restores construction-time
// state, it cannot change construction parameters.
std::string pool_identity(const RunnerOptions& options) {
  const fpga::Board& vx_board =
      options.vortex_board != nullptr ? *options.vortex_board : fpga::stratix10_sx2800();
  const fpga::Board& hls_board =
      options.hls_board != nullptr ? *options.hls_board : fpga::stratix10_mx2100();
  const unsigned ablate_bits = (options.ablate.kir_licm ? 1u : 0u) |
                               (options.ablate.kir_strength_reduce ? 2u : 0u) |
                               (options.ablate.kir_dce ? 4u : 0u) |
                               (options.ablate.peephole ? 8u : 0u) |
                               (options.ablate.pressure_ladder ? 16u : 0u);
  return options.vortex_config.to_string() + ":O" + std::to_string(options.opt_level) + ":p" +
         std::to_string(options.vortex_config.profile || options.capture_profile) + ":m" +
         std::to_string(options.vortex_config.memprof || options.capture_memprof) + ":r" +
         std::to_string(options.capture_remarks || options.remark_hotspots > 0) + ":a" +
         std::to_string(ablate_bits) + ":" + vx_board.name + ":" + hls_board.name;
}

void run_one(const RunnerOptions& options, DevicePool* pool, const std::string& identity,
             const std::string& name, BenchmarkOutcome& outcome) {
  outcome.name = name;
  outcome.workload_seed = benchmark_seed(options.suite_seed, name);
  if (options.capture_trace) outcome.trace = std::make_unique<trace::Sink>();
  // Install this benchmark's sink on the worker thread for the duration of
  // both device runs; instrumentation in vortex::/mem::/vcl:: picks it up
  // through trace::current().
  trace::ScopedSink scoped(outcome.trace.get());

  // Benchmarks are immutable once generated: the pooled path shares one
  // instance across repeats and workers, --fresh regenerates per run (the
  // A/B reference).
  std::shared_ptr<const Benchmark> shared;
  Benchmark local;
  if (options.reuse_devices) {
    shared = shared_benchmark(name);
  } else {
    local = make_benchmark(name);
  }
  const Benchmark& bench = shared ? *shared : local;
  outcome.origin = bench.origin;

  // Memoized interpreter oracle: one reference run per benchmark per
  // process instead of one per device run (three per repeat under
  // --device=all). Only on the pooled path — --fresh recomputes inline,
  // which is the A/B reference proving the memo changes no byte. Null
  // (custom-verify benchmarks, or a failing oracle) falls back inline.
  std::shared_ptr<const std::vector<std::vector<uint32_t>>> expected;
  if (options.reuse_devices && !bench.custom_verify) expected = shared_reference(name);

  DeviceSet set;
  if (pool != nullptr) set = pool->acquire(identity);

  if (options.run_vortex) {
    const fpga::Board& board =
        options.vortex_board != nullptr ? *options.vortex_board : fpga::stratix10_sx2800();
    vortex::Config config = options.vortex_config;
    config.profile = config.profile || options.capture_profile;
    config.memprof = config.memprof || options.capture_memprof;
    codegen::Options codegen_options;
    codegen_options.opt_level = options.opt_level;
    codegen_options.collect_remarks = options.capture_remarks || options.remark_hotspots > 0;
    codegen_options.ablate = options.ablate;
    const auto s0 = std::chrono::steady_clock::now();
    if (set.vortex == nullptr) {
      set.vortex = std::make_unique<vcl::VortexDevice>(config, board, codegen_options);
    } else {
      set.vortex->reset();
      outcome.vortex_reused = true;
    }
    outcome.vortex_setup_ms = ms_since(s0);
    outcome.vortex_device = set.vortex->name();
    const auto t0 = std::chrono::steady_clock::now();
    outcome.vortex = run_benchmark(*set.vortex, bench, expected.get());
    outcome.vortex_wall_ms = ms_since(t0) - outcome.vortex.build_host_ms;
    outcome.ran_vortex = true;
  }
  if (options.run_turbo) {
    // Same binaries and board pairing as the soft GPU, so output digests
    // are comparable 1:1 against the cycle-exact run above.
    const fpga::Board& board =
        options.vortex_board != nullptr ? *options.vortex_board : fpga::stratix10_sx2800();
    // Same codegen options as the vortex tier — they share KernelCache
    // entries, and a diverging key would silently double-compile.
    codegen::Options codegen_options;
    codegen_options.opt_level = options.opt_level;
    codegen_options.collect_remarks = options.capture_remarks || options.remark_hotspots > 0;
    codegen_options.ablate = options.ablate;
    const auto s0 = std::chrono::steady_clock::now();
    if (set.turbo == nullptr) {
      set.turbo = std::make_unique<vcl::TurboDevice>(options.vortex_config, board, codegen_options);
    } else {
      set.turbo->reset();
      outcome.turbo_reused = true;
    }
    outcome.turbo_setup_ms = ms_since(s0);
    outcome.turbo_device = set.turbo->name();
    const vortex::jit::TurboStats jit_before = set.turbo->jit_stats();
    const auto t0 = std::chrono::steady_clock::now();
    outcome.turbo = run_benchmark(*set.turbo, bench, expected.get());
    outcome.turbo_wall_ms = ms_since(t0) - outcome.turbo.build_host_ms;
    outcome.turbo_jit = jit_delta(set.turbo->jit_stats(), jit_before);
    outcome.ran_turbo = true;
  }
  if (options.run_hls) {
    const fpga::Board& board =
        options.hls_board != nullptr ? *options.hls_board : fpga::stratix10_mx2100();
    const auto s0 = std::chrono::steady_clock::now();
    if (set.hls == nullptr) {
      set.hls = std::make_unique<vcl::HlsDevice>(board);
    } else {
      set.hls->reset();
      outcome.hls_reused = true;
    }
    outcome.hls_setup_ms = ms_since(s0);
    if (options.capture_memprof) {
      // Shadow the read path with the soft-GPU L1D geometry so the locality
      // view is directly comparable across the two flows.
      set.hls->set_memprof(true, options.vortex_config.l1d.num_lines(),
                           options.vortex_config.l1d.ways);
    }
    outcome.hls_device = set.hls->name();
    const auto t0 = std::chrono::steady_clock::now();
    outcome.hls = run_benchmark(*set.hls, bench, expected.get());
    outcome.hls_wall_ms = ms_since(t0) - outcome.hls.build_host_ms;
    outcome.ran_hls = true;
  }

  if (pool != nullptr) pool->release(identity, std::move(set));
}

}  // namespace

Result<SuiteRunResult> run_all(const RunnerOptions& options) {
  auto names = filter_names(options.filter);
  if (!names.is_ok()) return Result<SuiteRunResult>(names.status());

  SuiteRunResult result;
  result.outcomes.resize(names->size());
  const auto start = std::chrono::steady_clock::now();

  // The pool: caller-owned when RunnerOptions::pool is set (fgpu-run
  // --repeat keeps devices warm across repeats), otherwise scoped to this
  // call. --fresh (reuse_devices off) runs the construct-per-benchmark path.
  std::unique_ptr<DevicePool> local_pool;
  DevicePool* pool = nullptr;
  if (options.reuse_devices) {
    pool = options.pool;
    if (pool == nullptr) {
      local_pool = std::make_unique<DevicePool>();
      pool = local_pool.get();
    }
  }
  const std::string identity = pool_identity(options);

  // Reuse counters are process-wide; report this run's activity as deltas.
  const vcl::KernelCacheStats kc0 = vcl::KernelCache::instance().stats();
  const vcl::HlsCacheStats hc0 = vcl::HlsCache::instance().stats();
  const WorkloadCacheStats wc0 = workload_cache_stats();
  const uint64_t reuse0 = pool != nullptr ? pool->reuse_count() : 0;

  uint32_t jobs = options.jobs != 0 ? options.jobs : std::thread::hardware_concurrency();
  jobs = std::min<uint32_t>(std::max(1u, jobs), static_cast<uint32_t>(names->size()));

  if (jobs <= 1) {
    for (size_t i = 0; i < names->size(); ++i) {
      run_one(options, pool, identity, (*names)[i], result.outcomes[i]);
    }
  } else {
    // Work-stealing by atomic index; each worker writes only its claimed
    // slots, so the outcome vector needs no lock and stays in canonical
    // order for aggregation.
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (uint32_t t = 0; t < jobs; ++t) {
      workers.emplace_back([&]() {
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= names->size()) return;
          run_one(options, pool, identity, (*names)[i], result.outcomes[i]);
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }

  const vcl::KernelCacheStats kc1 = vcl::KernelCache::instance().stats();
  const vcl::HlsCacheStats hc1 = vcl::HlsCache::instance().stats();
  const WorkloadCacheStats wc1 = workload_cache_stats();
  result.reuse.kernel_cache_hits = kc1.hits - kc0.hits;
  result.reuse.kernel_cache_misses = kc1.misses - kc0.misses;
  result.reuse.compile_ms = kc1.compile_ms - kc0.compile_ms;
  result.reuse.hls_cache_hits = hc1.hits - hc0.hits;
  result.reuse.hls_cache_misses = hc1.misses - hc0.misses;
  result.reuse.synth_ms = hc1.synth_ms - hc0.synth_ms;
  result.reuse.workload_cache_hits = wc1.hits - wc0.hits;
  result.reuse.workload_cache_misses = wc1.misses - wc0.misses;
  result.reuse.reference_cache_hits = wc1.reference_hits - wc0.reference_hits;
  result.reuse.reference_cache_misses = wc1.reference_misses - wc0.reference_misses;
  if (pool != nullptr) result.reuse.device_reuse_count = pool->reuse_count() - reuse0;

  const auto end = std::chrono::steady_clock::now();
  result.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  return result;
}

// Common "suite" header object of the suite-level documents (stats,
// profile, hlsprof, compare).
void write_suite_header(trace::JsonWriter& w, const RunnerOptions& options,
                        const SuiteRunResult& result) {
  w.key("suite").begin_object();
  w.field("filter", options.filter);
  w.field("suite_seed", options.suite_seed);
  w.field("vortex_config", options.vortex_config.to_string());
  const fpga::Board& vx_board =
      options.vortex_board != nullptr ? *options.vortex_board : fpga::stratix10_sx2800();
  const fpga::Board& hls_board =
      options.hls_board != nullptr ? *options.hls_board : fpga::stratix10_mx2100();
  w.field("vortex_board", vx_board.name);
  w.field("hls_board", hls_board.name);
  w.field("opt_level", static_cast<int64_t>(options.opt_level));
  w.field("benchmark_count", static_cast<uint64_t>(result.outcomes.size()));
  w.end_object();
}

void write_stats_json(std::ostream& os, const RunnerOptions& options,
                      const SuiteRunResult& result) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kStatsSchema);
  write_suite_header(w, options, result);
  if (options.host_in_stats) {
    // Opt-in only (see RunnerOptions::host_in_stats): these bytes vary per
    // machine and run, so default documents stay byte-comparable.
    w.key("host").begin_object();
    w.field("wall_ms", result.wall_ms);
    w.end_object();
  }
  w.key("benchmarks").begin_array();
  for (const auto& outcome : result.outcomes) {
    w.begin_object();
    w.field("name", outcome.name);
    w.field("origin", outcome.origin);
    w.field("workload_seed", outcome.workload_seed);
    if (outcome.ran_vortex) {
      w.key("vortex");
      write_json(w, outcome.vortex, DeviceKind::kVortex, outcome.vortex_device);
    }
    if (outcome.ran_turbo) {
      // Only present when --device turbo/all ran, so default documents stay
      // byte-identical to the pre-turbo baselines (schema-drift contract).
      w.key("turbo");
      write_json(w, outcome.turbo, DeviceKind::kTurbo, outcome.turbo_device);
      w.key("turbo_jit").begin_object();
      w.field("blocks_translated", outcome.turbo_jit.blocks_translated);
      w.field("block_lookups", outcome.turbo_jit.block_lookups);
      w.field("block_hits", outcome.turbo_jit.block_hits);
      w.field("block_cache_hit_rate", outcome.turbo_jit.hit_rate());
      w.field("chained_dispatches", outcome.turbo_jit.chained_dispatches);
      w.field("invalidations", outcome.turbo_jit.invalidations);
      w.end_object();
    }
    if (outcome.ran_hls) {
      w.key("hls");
      write_json(w, outcome.hls, DeviceKind::kHls, outcome.hls_device);
    }
    if (options.host_in_stats && outcome.ran_vortex) {
      w.key("host").begin_object();
      w.field("vortex_wall_ms", outcome.vortex_wall_ms);
      const double secs = outcome.vortex_wall_ms / 1e3;
      w.field("vortex_mips",
              secs > 0.0 ? static_cast<double>(outcome.vortex.total_instrs) / 1e6 / secs : 0.0);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_profile_json(std::ostream& os, const RunnerOptions& options,
                        const SuiteRunResult& result) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kProfileSchema);
  write_suite_header(w, options, result);
  w.key("benchmarks").begin_array();
  for (const auto& outcome : result.outcomes) {
    if (!outcome.ran_vortex) continue;
    w.begin_object();
    w.field("name", outcome.name);
    w.field("device", outcome.vortex_device);
    w.field("ok", outcome.vortex.ok());
    w.key("kernels").begin_array();
    for (const auto& profile : outcome.vortex.kernel_profiles) write_json(w, profile);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_hlsprof_json(std::ostream& os, const RunnerOptions& options,
                        const SuiteRunResult& result) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kHlsProfSchema);
  write_suite_header(w, options, result);
  w.key("benchmarks").begin_array();
  for (const auto& outcome : result.outcomes) {
    if (!outcome.ran_hls) continue;
    w.begin_object();
    w.field("name", outcome.name);
    w.field("device", outcome.hls_device);
    w.field("ok", outcome.hls.ok());
    w.field("fail_reason", outcome.hls.fail_reason);
    // Kernels that failed to fit still appear (launches == 0, sites empty)
    // with their structured synthesis report — the Table-I failure rows.
    w.key("kernels").begin_array();
    for (const auto& profile : outcome.hls.hls_profiles) write_json(w, profile);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_mem_json(std::ostream& os, const RunnerOptions& options,
                    const SuiteRunResult& result) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kMemSchema);
  write_suite_header(w, options, result);
  // Geometry of the HLS read-path shadow cache (mirrors the soft-GPU L1D;
  // see run_one). Recorded so mem documents are self-describing.
  w.key("shadow").begin_object();
  w.field("lines", options.vortex_config.l1d.num_lines());
  w.field("ways", options.vortex_config.l1d.ways);
  w.end_object();
  w.key("benchmarks").begin_array();
  for (const auto& outcome : result.outcomes) {
    if (!outcome.ran_vortex && !outcome.ran_hls) continue;
    w.begin_object();
    w.field("name", outcome.name);
    if (outcome.ran_vortex) {
      w.key("vortex").begin_object();
      w.field("device", outcome.vortex_device);
      w.field("ok", outcome.vortex.ok());
      w.key("kernels").begin_array();
      for (const auto& profile : outcome.vortex.mem_profiles) write_json(w, profile);
      w.end_array();
      w.end_object();
    }
    if (outcome.ran_hls) {
      w.key("hls").begin_object();
      w.field("device", outcome.hls_device);
      w.field("ok", outcome.hls.ok());
      w.key("kernels").begin_array();
      for (const auto& profile : outcome.hls.mem_profiles) write_json(w, profile);
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

namespace {

// IrSnapshot fields are domain-dependent (-1 = not meaningful for that
// pass); only meaningful fields are serialized, so a KIR pass shows
// kir_nodes and a machine pass shows minstrs/vregs without null noise.
void write_snapshot(trace::JsonWriter& w, const char* key,
                    const codegen::IrSnapshot& snap) {
  w.key(key).begin_object();
  if (snap.kir_nodes >= 0) w.field("kir_nodes", static_cast<int64_t>(snap.kir_nodes));
  if (snap.minstrs >= 0) w.field("minstrs", static_cast<int64_t>(snap.minstrs));
  if (snap.vregs >= 0) w.field("vregs", static_cast<int64_t>(snap.vregs));
  if (snap.max_pressure >= 0) w.field("max_pressure", static_cast<int64_t>(snap.max_pressure));
  if (snap.stack_refs >= 0) w.field("stack_refs", static_cast<int64_t>(snap.stack_refs));
  w.end_object();
}

void write_remark(trace::JsonWriter& w, const codegen::Remark& r) {
  w.begin_object();
  w.field("pass", r.pass);
  w.field("action", r.action);
  w.field("name", r.name);
  w.field("site", r.site);
  w.field("detail", r.detail);
  w.field("value", static_cast<int64_t>(r.value));
  w.end_object();
}

}  // namespace

std::vector<RemarkHotspot> rank_remarks(const DeviceRun& run, const KernelCodegen& kc,
                                        size_t top_k) {
  // Attribute each measured issue-stage cycle to its KIR source (PC -> word
  // index -> source-map string), then charge every remark the cycles of its
  // provenance site.
  std::map<std::string, std::pair<uint64_t, uint64_t>> site_cycles;
  for (const auto& kp : run.kernel_profiles) {
    if (kp.kernel != kc.kernel) continue;
    for (const auto& [pc, stat] : kp.profile.by_pc) {
      if (pc < kp.binary.base) continue;
      const size_t word = (pc - kp.binary.base) / 4;
      const std::string& site = kp.source_map.source_for(word);
      if (site.empty()) continue;
      auto& entry = site_cycles[site];
      entry.first += stat.issued + stat.total_stalls();
      entry.second += stat.total_stalls();
    }
  }
  const auto& remarks = kc.compiled->report.remarks;
  std::vector<RemarkHotspot> ranked;
  for (const auto& r : remarks) {
    auto it = site_cycles.find(r.site);
    if (it == site_cycles.end() || it->second.first == 0) continue;
    ranked.push_back(RemarkHotspot{&r, it->second.first, it->second.second});
  }
  std::stable_sort(ranked.begin(), ranked.end(), [](const RemarkHotspot& a,
                                                    const RemarkHotspot& b) {
    return a.cycles > b.cycles;  // stable: equal cycles keep emission order
  });
  if (ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

void write_codegen_json(std::ostream& os, const RunnerOptions& options,
                        const SuiteRunResult& result) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kCodegenSchema);
  write_suite_header(w, options, result);
  w.key("benchmarks").begin_array();
  for (const auto& outcome : result.outcomes) {
    if (!outcome.ran_vortex) continue;
    w.begin_object();
    w.field("name", outcome.name);
    w.field("device", outcome.vortex_device);
    w.field("ok", outcome.vortex.ok());
    w.key("kernels").begin_array();
    for (const auto& kc : outcome.vortex.codegen) {
      const codegen::CompiledKernel& compiled = *kc.compiled;
      w.begin_object();
      w.field("kernel", kc.kernel);
      w.field("opt_level", static_cast<int64_t>(compiled.opt_level));
      w.field("barrier_dispatch", compiled.barrier_dispatch);
      w.field("code_words", static_cast<uint64_t>(compiled.instruction_count));
      w.field("spill_slots", static_cast<int64_t>(compiled.spill_slots));
      w.field("simt_instructions", static_cast<uint64_t>(compiled.simt_instructions));
      w.field("mem_instructions", static_cast<uint64_t>(compiled.mem_instructions));
      // Per-pass telemetry, pipeline order. wall_ms is intentionally NOT
      // serialized: a KernelCache replay would carry the original compile's
      // times and break the byte-identity contract.
      w.key("passes").begin_array();
      for (const auto& t : compiled.report.passes) {
        w.begin_object();
        w.field("pass", t.pass);
        w.field("remarks", static_cast<int64_t>(t.remarks));
        write_snapshot(w, "before", t.before);
        write_snapshot(w, "after", t.after);
        w.end_object();
      }
      w.end_array();
      w.key("remarks").begin_array();
      for (const auto& r : compiled.report.remarks) write_remark(w, r);
      w.end_array();
      // Cycle-joined ranking: only remarks whose provenance site actually
      // accrued measured cycles appear (see rank_remarks).
      if (options.remark_hotspots > 0) {
        const auto ranked =
            rank_remarks(outcome.vortex, kc, static_cast<size_t>(options.remark_hotspots));
        w.key("hotspots").begin_array();
        for (size_t i = 0; i < ranked.size(); ++i) {
          w.begin_object();
          w.field("rank", static_cast<int64_t>(i + 1));
          w.field("cycles", ranked[i].cycles);
          w.field("stall_cycles", ranked[i].stall_cycles);
          w.field("pass", ranked[i].remark->pass);
          w.field("action", ranked[i].remark->action);
          w.field("name", ranked[i].remark->name);
          w.field("site", ranked[i].remark->site);
          w.field("detail", ranked[i].remark->detail);
          w.end_object();
        }
        w.end_array();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

namespace {

double median_of(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2] : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

// Simulated throughput over a host wall time: millions of X per second.
double rate_per_sec(uint64_t count, double wall_ms) {
  if (wall_ms <= 0.0) return 0.0;
  return static_cast<double>(count) / 1e6 / (wall_ms / 1e3);
}

}  // namespace

void write_host_json(std::ostream& os, const RunnerOptions& options,
                     const std::vector<const SuiteRunResult*>& repeats) {
  trace::JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.field("schema", kHostSchema);
  const SuiteRunResult& primary = *repeats.front();
  write_suite_header(w, options, primary);
  w.field("jobs", static_cast<uint64_t>(options.jobs));
  w.field("repeats", static_cast<uint64_t>(repeats.size()));
  w.field("reuse_devices", options.reuse_devices);

  // Warm-repeat pairing (see runner.hpp): with several repeats, minima are
  // taken over repeats[1:] only — repeat 0 pays cold compiles and turbo
  // translation and is reported via the *_warmup fields instead.
  const size_t warm_start = repeats.size() > 1 ? 1 : 0;

  // Reuse machinery activity, summed over the repeats. On a pooled
  // --repeat run kernel_cache_hits and device_reuse_count must be > 0
  // (tools/check_baseline.py --host-fields gates on this).
  {
    ReuseStats total;
    for (const SuiteRunResult* run : repeats) {
      total.device_reuse_count += run->reuse.device_reuse_count;
      total.kernel_cache_hits += run->reuse.kernel_cache_hits;
      total.kernel_cache_misses += run->reuse.kernel_cache_misses;
      total.hls_cache_hits += run->reuse.hls_cache_hits;
      total.hls_cache_misses += run->reuse.hls_cache_misses;
      total.workload_cache_hits += run->reuse.workload_cache_hits;
      total.workload_cache_misses += run->reuse.workload_cache_misses;
      total.reference_cache_hits += run->reuse.reference_cache_hits;
      total.reference_cache_misses += run->reuse.reference_cache_misses;
      total.compile_ms += run->reuse.compile_ms;
      total.synth_ms += run->reuse.synth_ms;
    }
    w.key("reuse").begin_object();
    w.field("device_reuse_count", total.device_reuse_count);
    w.field("kernel_cache_hits", total.kernel_cache_hits);
    w.field("kernel_cache_misses", total.kernel_cache_misses);
    w.field("hls_cache_hits", total.hls_cache_hits);
    w.field("hls_cache_misses", total.hls_cache_misses);
    w.field("workload_cache_hits", total.workload_cache_hits);
    w.field("workload_cache_misses", total.workload_cache_misses);
    w.field("reference_cache_hits", total.reference_cache_hits);
    w.field("reference_cache_misses", total.reference_cache_misses);
    w.field("compile_ms", total.compile_ms);
    w.field("synth_ms", total.synth_ms);
    w.end_object();
  }

  // Suite totals: wall time per repeat, plus min/median (--repeat smooths
  // host noise so numbers are comparable across PRs; see tools/
  // check_baseline.py's non-gating host comparison).
  std::vector<double> walls;
  walls.reserve(repeats.size());
  for (const SuiteRunResult* run : repeats) walls.push_back(run->wall_ms);
  uint64_t total_cycles = 0, total_instrs = 0;
  for (const auto& outcome : primary.outcomes) {
    if (outcome.ran_vortex && outcome.vortex.ok()) {
      total_cycles += outcome.vortex.total_cycles;
      total_instrs += outcome.vortex.total_instrs;
    }
  }
  const double wall_min = *std::min_element(walls.begin(), walls.end());
  w.key("suite_wall_ms").begin_object();
  w.field("min", wall_min);
  w.field("median", median_of(walls));
  w.key("all").begin_array();
  for (const double ms : walls) w.value(ms);
  w.end_array();
  w.end_object();
  w.field("vortex_total_cycles", total_cycles);
  w.field("vortex_total_instrs", total_instrs);
  // Suite-level rates use the min wall (the least-noise estimate of the
  // machine's actual throughput).
  w.field("vortex_mcps", rate_per_sec(total_cycles, wall_min));
  w.field("vortex_mips", rate_per_sec(total_instrs, wall_min));

  // Turbo (functional tier) totals, present only when the tier ran. The
  // headline speedup compares *execution* time only — host wall spent inside
  // Device::launch() (DeviceRun::launch_host_ms, min over repeats per
  // benchmark) — because the costs around a launch (guest-code compilation,
  // workload generation, buffer transfer, verification) are identical for
  // both tiers and would dilute the ratio into a measurement of the harness
  // rather than the tiers. Summed over the benchmarks where BOTH tiers ran
  // and passed, so a missing or failing row cannot skew the ratio.
  bool any_turbo = false;
  for (const auto& outcome : primary.outcomes) any_turbo |= outcome.ran_turbo;
  if (any_turbo) {
    uint64_t turbo_instrs = 0;
    double turbo_wall = 0.0, turbo_launch = 0.0;
    double vortex_launch_paired = 0.0, turbo_launch_paired = 0.0;
    double vortex_launch_warmup = 0.0, turbo_launch_warmup = 0.0;
    for (size_t i = 0; i < primary.outcomes.size(); ++i) {
      const auto& outcome = primary.outcomes[i];
      if (!outcome.ran_turbo || !outcome.turbo.ok()) continue;
      // Mins over the warm repeats only (reused devices, hot kernel cache,
      // retained turbo translations) — the steady-state dispatch cost.
      double best = repeats[warm_start]->outcomes[i].turbo_wall_ms;
      double best_launch = repeats[warm_start]->outcomes[i].turbo.launch_host_ms;
      for (size_t r = warm_start; r < repeats.size(); ++r) {
        best = std::min(best, repeats[r]->outcomes[i].turbo_wall_ms);
        best_launch = std::min(best_launch, repeats[r]->outcomes[i].turbo.launch_host_ms);
      }
      turbo_instrs += outcome.turbo.total_instrs;
      turbo_wall += best;
      turbo_launch += best_launch;
      if (outcome.ran_vortex && outcome.vortex.ok()) {
        double vx_launch = repeats[warm_start]->outcomes[i].vortex.launch_host_ms;
        for (size_t r = warm_start; r < repeats.size(); ++r) {
          vx_launch = std::min(vx_launch, repeats[r]->outcomes[i].vortex.launch_host_ms);
        }
        vortex_launch_paired += vx_launch;
        turbo_launch_paired += best_launch;
        // Repeat 0's launches on the same benchmark set: the cold cost the
        // warm minima exclude (includes turbo's block translation).
        vortex_launch_warmup += outcome.vortex.launch_host_ms;
        turbo_launch_warmup += outcome.turbo.launch_host_ms;
      }
    }
    w.field("turbo_total_instrs", turbo_instrs);
    w.field("turbo_wall_ms", turbo_wall);
    w.field("turbo_mips", rate_per_sec(turbo_instrs, turbo_wall));
    w.field("turbo_launch_ms", turbo_launch);
    w.field("turbo_dispatch_mips", rate_per_sec(turbo_instrs, turbo_launch));
    w.field("vortex_launch_ms_paired", vortex_launch_paired);
    w.field("turbo_launch_ms_paired", turbo_launch_paired);
    w.field("turbo_speedup_over_vortex",
            turbo_launch_paired > 0.0 ? vortex_launch_paired / turbo_launch_paired : 0.0);
    // First-pass (warm-up) launches, reported separately so the paired
    // ratio above stays warm-vs-warm. Equal to the paired sums when only
    // one repeat ran.
    w.field("vortex_launch_ms_warmup", vortex_launch_warmup);
    w.field("turbo_launch_ms_warmup", turbo_launch_warmup);
  }

  // Per-benchmark wall times: min over repeats, per device. The repeats all
  // ran the same canonical benchmark list, so index i is the same
  // benchmark in every run.
  w.key("benchmarks").begin_array();
  for (size_t i = 0; i < primary.outcomes.size(); ++i) {
    const auto& outcome = primary.outcomes[i];
    w.begin_object();
    w.field("name", outcome.name);
    if (outcome.ran_vortex) {
      double best = repeats[warm_start]->outcomes[i].vortex_wall_ms;
      double best_launch = repeats[warm_start]->outcomes[i].vortex.launch_host_ms;
      for (size_t r = warm_start; r < repeats.size(); ++r) {
        best = std::min(best, repeats[r]->outcomes[i].vortex_wall_ms);
        best_launch = std::min(best_launch, repeats[r]->outcomes[i].vortex.launch_host_ms);
      }
      w.key("vortex").begin_object();
      w.field("ok", outcome.vortex.ok());
      w.field("wall_ms", best);
      w.field("launch_ms", best_launch);
      // Cold-path split of repeat 0: device construction-or-reset and
      // Device::build (compile or kernel-cache hit), excluded from wall_ms.
      w.field("setup_ms", outcome.vortex_setup_ms);
      w.field("build_ms", outcome.vortex.build_host_ms);
      w.field("reused", outcome.vortex_reused);
      w.field("cycles", outcome.vortex.total_cycles);
      w.field("instrs", outcome.vortex.total_instrs);
      w.field("mcps", rate_per_sec(outcome.vortex.total_cycles, best));
      w.field("mips", rate_per_sec(outcome.vortex.total_instrs, best));
      {
        // Reference side of the turbo-vs-vortex digest cross-check
        // (check_baseline.py --turbo-digests).
        char digest[19];
        std::snprintf(digest, sizeof(digest), "0x%016llx",
                      static_cast<unsigned long long>(outcome.vortex.output_digest));
        w.field("output_digest", std::string_view(digest));
      }
      w.end_object();
    }
    if (outcome.ran_turbo) {
      double best = repeats[warm_start]->outcomes[i].turbo_wall_ms;
      double best_launch = repeats[warm_start]->outcomes[i].turbo.launch_host_ms;
      for (size_t r = warm_start; r < repeats.size(); ++r) {
        best = std::min(best, repeats[r]->outcomes[i].turbo_wall_ms);
        best_launch = std::min(best_launch, repeats[r]->outcomes[i].turbo.launch_host_ms);
      }
      w.key("turbo").begin_object();
      w.field("ok", outcome.turbo.ok());
      w.field("wall_ms", best);
      w.field("launch_ms", best_launch);
      w.field("setup_ms", outcome.turbo_setup_ms);
      w.field("build_ms", outcome.turbo.build_host_ms);
      w.field("reused", outcome.turbo_reused);
      w.field("instrs", outcome.turbo.total_instrs);
      w.field("mips", rate_per_sec(outcome.turbo.total_instrs, best));
      w.field("dispatch_mips", rate_per_sec(outcome.turbo.total_instrs, best_launch));
      w.field("blocks_translated", outcome.turbo_jit.blocks_translated);
      w.field("block_cache_hit_rate", outcome.turbo_jit.hit_rate());
      {
        // Digest here too: the turbo-vs-vortex cross-check gate
        // (check_baseline.py --turbo-digests) reads host documents.
        char digest[19];
        std::snprintf(digest, sizeof(digest), "0x%016llx",
                      static_cast<unsigned long long>(outcome.turbo.output_digest));
        w.field("output_digest", std::string_view(digest));
      }
      w.end_object();
    }
    if (outcome.ran_hls) {
      double best = repeats[warm_start]->outcomes[i].hls_wall_ms;
      for (size_t r = warm_start; r < repeats.size(); ++r) {
        best = std::min(best, repeats[r]->outcomes[i].hls_wall_ms);
      }
      w.key("hls").begin_object();
      w.field("ok", outcome.hls.ok());
      w.field("wall_ms", best);
      w.field("setup_ms", outcome.hls_setup_ms);
      w.field("build_ms", outcome.hls.build_host_ms);
      w.field("reused", outcome.hls_reused);
      w.field("cycles", outcome.hls.total_cycles);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_trace_json(std::ostream& os, const SuiteRunResult& result) {
  std::vector<trace::Process> processes;
  for (size_t i = 0; i < result.outcomes.size(); ++i) {
    const auto& outcome = result.outcomes[i];
    if (outcome.trace == nullptr) continue;
    processes.push_back(
        trace::Process{static_cast<uint32_t>(i + 1), outcome.name, outcome.trace.get()});
  }
  trace::write_chrome_trace(os, processes);
}

}  // namespace fgpu::suite
