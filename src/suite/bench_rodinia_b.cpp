// Rodinia benchmarks, part B: backprop (the paper's Fig. 6 / Table II case
// study), lud, b+tree, hybridsort (atomics), lbm, dwt2d, lavamd, cutcp,
// spmv, blackscholes.
#include <algorithm>
#include <cmath>

#include "suite/common.hpp"

namespace fgpu::suite {

using kir::Buf;
using kir::KernelBuilder;
using kir::NDRange;
using kir::Val;

namespace {

// Back-propagation geometry (scaled from Rodinia's 16 to fit the soft GPU's
// 64-lane work-group dispatch; structure preserved).
constexpr uint32_t kBpBlock = 8;   // Rodinia BLOCK_SIZE / HEIGHT
constexpr uint32_t kBpIn = 512;    // input-layer nodes
constexpr uint32_t kBpHid = kBpBlock;  // hidden-layer nodes (= one block wide)

}  // namespace

// Exposed for the Table II / Fig. 6 bench: the adjust_weights kernel written
// to mirror the paper's Listing 1 (original device code) exactly.
kir::Kernel backprop_adjust_weights_kernel() {
  KernelBuilder kb("bpnn_adjust_weights");
  Buf delta = kb.buf_f32("delta");  // [hid+1]
  Buf ly = kb.buf_f32("ly");        // [in+1]
  Buf w = kb.buf_f32("w");          // [(in+1) x (hid+1)]
  Buf oldw = kb.buf_f32("oldw");
  Val hid = kb.param_i32("hid");
  const float kEta = 0.3f, kMomentum = 0.3f;
  Val gy = kb.group_id(1);
  Val ly_id = kb.local_id(1), lx_id = kb.local_id(0);
  // Listing 1, line for line:
  //   int index = (hid+1)*HEIGHT*gid.y + (hid+1)*lid.y + lid.x + 1 + (hid+1);
  Val index = kb.let_("index", (hid + 1) * static_cast<int32_t>(kBpBlock) * gy +
                                   (hid + 1) * ly_id + lx_id + 1 + (hid + 1));
  Val index_y = kb.let_("index_y", static_cast<int32_t>(kBpBlock) * gy + ly_id + 1);
  Val index_x = kb.let_("index_x", lx_id + 1);
  //   w[index] += ((ETA * delta[index_x] * ly[index_y]) + (MOMENTUM * oldw[index]));
  kb.store(w, index,
           kb.load(w, index) +
               ((kEta * kb.load(delta, index_x) * kb.load(ly, index_y)) +
                (kMomentum * kb.load(oldw, index))));
  //   oldw[index] = ((ETA * delta[index_x] * ly[index_y]) + (MOMENTUM * oldw[index]));
  kb.store(oldw, index,
           ((kEta * kb.load(delta, index_x) * kb.load(ly, index_y)) +
            (kMomentum * kb.load(oldw, index))));
  return kb.build();
}

// layerforward: work-group loads inputs + weights into __local memory and
// tree-reduces partial sums per hidden node (Rodinia bpnn_layerforward_ocl).
kir::Kernel backprop_layerforward_kernel() {
  KernelBuilder kb("bpnn_layerforward");
  Buf input = kb.buf_f32("input");            // [in+1]
  Buf weights = kb.buf_f32("weights");        // [(in+1) x (hid+1)]
  Buf partial = kb.buf_f32("partial_sum");    // [groups x hid]
  Val hid = kb.param_i32("hid");
  Buf input_node = kb.local_f32("input_node", kBpBlock);
  Buf weight_matrix = kb.local_f32("weight_matrix", kBpBlock * kBpBlock);
  Val tx = kb.local_id(0), ty = kb.local_id(1), by = kb.group_id(1);
  Val index = kb.let_("index", (hid + 1) * static_cast<int32_t>(kBpBlock) * by +
                                   (hid + 1) * ty + tx + 1 + (hid + 1));
  Val index_in = kb.let_("index_in", static_cast<int32_t>(kBpBlock) * by + ty + 1);
  kb.if_(tx == 0, [&] { kb.store(input_node, ty, kb.load(input, index_in)); });
  kb.barrier();
  kb.store(weight_matrix, ty * static_cast<int32_t>(kBpBlock) + tx,
           kb.load(weights, index) * kb.load(input_node, ty));
  kb.barrier();
  // Tree reduction over ty (power-of-two block).
  Val step = kb.let_("step", Val(1));
  kb.while_(step < static_cast<int32_t>(kBpBlock), [&] {
    Val two_step = kb.let_("two_step", step * 2);
    kb.if_(ty % two_step == 0, [&] {
      kb.store(weight_matrix, ty * static_cast<int32_t>(kBpBlock) + tx,
               kb.load(weight_matrix, ty * static_cast<int32_t>(kBpBlock) + tx) +
                   kb.load(weight_matrix, (ty + step) * static_cast<int32_t>(kBpBlock) + tx));
    });
    kb.barrier();
    kb.assign(step, two_step);
  });
  kb.if_(ty == 0, [&] {
    kb.store(partial, by * hid + tx, kb.load(weight_matrix, tx));
  });
  return kb.build();
}

Benchmark make_backprop() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "layerforward (__local + barriers) + adjust_weights (paper Listing 1)";
  const uint32_t groups = kBpIn / kBpBlock;

  bench.module.kernels.push_back(backprop_layerforward_kernel());
  bench.module.kernels.push_back(backprop_adjust_weights_kernel());

  const uint32_t wsize = (kBpIn + 1) * (kBpHid + 1);
  bench.buffers = {ffill(kBpIn + 1, 0x101, 0.0f, 1.0f),   // input / ly
                   ffill(wsize, 0x102, -0.5f, 0.5f),      // weights / w
                   zeros(groups * kBpHid),                // partial sums
                   ffill(kBpHid + 1, 0x103, -0.2f, 0.2f), // delta
                   ffill(wsize, 0x104, -0.1f, 0.1f)};     // oldw
  bench.launches = {
      {"bpnn_layerforward", NDRange::grid2d(kBpBlock, kBpIn, kBpBlock, kBpBlock),
       {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2),
        ArgSpec::i(static_cast<int32_t>(kBpHid))}},
      {"bpnn_adjust_weights", NDRange::grid2d(kBpBlock, kBpIn, kBpBlock, kBpBlock),
       {ArgSpec::buf(3), ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(4),
        ArgSpec::i(static_cast<int32_t>(kBpHid))}},
  };
  bench.checked_buffers = {1, 2, 4};
  return bench;
}

Benchmark make_lud() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "blocked LU decomposition: diagonal/perimeter/internal kernels, heavy __local use";
  const uint32_t n = 32, block = 8;
  const int32_t bi = static_cast<int32_t>(block);

  {
    // Diagonal block factorization: one work-group, in-place LU on a tile.
    KernelBuilder kb("lud_diagonal");
    Buf a = kb.buf_f32("a");
    Val size = kb.param_i32("size");
    Val offset = kb.param_i32("offset");
    Buf tile = kb.local_f32("tile", block * block);
    Val tx = kb.local_id(0), ty = kb.local_id(1);
    Val base = kb.let_("base", offset * size + offset);
    kb.store(tile, ty * bi + tx, kb.load(a, base + ty * size + tx));
    kb.barrier();
    kb.for_("k", Val(0), Val(bi - 1), [&](Val k) {
      kb.if_(ty > k && tx == k, [&] {
        kb.store(tile, ty * bi + tx, kb.load(tile, ty * bi + tx) / kb.load(tile, k * bi + k));
      });
      kb.barrier();
      kb.if_(ty > k && tx > k, [&] {
        kb.store(tile, ty * bi + tx,
                 kb.load(tile, ty * bi + tx) -
                     kb.load(tile, ty * bi + k) * kb.load(tile, k * bi + tx));
      });
      kb.barrier();
    });
    kb.store(a, base + ty * size + tx, kb.load(tile, ty * bi + tx));
    bench.module.kernels.push_back(kb.build());
  }
  {
    // Perimeter row blocks: B := L^-1 B for each block right of the diagonal.
    KernelBuilder kb("lud_perimeter_row");
    Buf a = kb.buf_f32("a");
    Val size = kb.param_i32("size");
    Val offset = kb.param_i32("offset");
    Buf diag = kb.local_f32("diag", block * block);
    Buf row_tile = kb.local_f32("row_tile", block * block);
    Val tx = kb.local_id(0), ty = kb.local_id(1), bx = kb.group_id(1);
    Val dbase = kb.let_("dbase", offset * size + offset);
    Val rbase = kb.let_("rbase", offset * size + offset + (bx + 1) * bi);
    kb.store(diag, ty * bi + tx, kb.load(a, dbase + ty * size + tx));
    kb.store(row_tile, ty * bi + tx, kb.load(a, rbase + ty * size + tx));
    kb.barrier();
    kb.for_("k", Val(0), Val(bi), [&](Val k) {
      kb.if_(ty > k, [&] {
        kb.store(row_tile, ty * bi + tx,
                 kb.load(row_tile, ty * bi + tx) -
                     kb.load(diag, ty * bi + k) * kb.load(row_tile, k * bi + tx));
      });
      kb.barrier();
    });
    kb.store(a, rbase + ty * size + tx, kb.load(row_tile, ty * bi + tx));
    bench.module.kernels.push_back(kb.build());
  }
  {
    // Perimeter column blocks: A := A U^-1 below the diagonal.
    KernelBuilder kb("lud_perimeter_col");
    Buf a = kb.buf_f32("a");
    Val size = kb.param_i32("size");
    Val offset = kb.param_i32("offset");
    Buf diag = kb.local_f32("diag", block * block);
    Buf col_tile = kb.local_f32("col_tile", block * block);
    Val tx = kb.local_id(0), ty = kb.local_id(1), by = kb.group_id(1);
    Val dbase = kb.let_("dbase", offset * size + offset);
    Val cbase = kb.let_("cbase", (offset + (by + 1) * bi) * size + offset);
    kb.store(diag, ty * bi + tx, kb.load(a, dbase + ty * size + tx));
    kb.store(col_tile, ty * bi + tx, kb.load(a, cbase + ty * size + tx));
    kb.barrier();
    kb.for_("k", Val(0), Val(bi), [&](Val k) {
      kb.if_(tx == k, [&] {
        kb.store(col_tile, ty * bi + tx,
                 kb.load(col_tile, ty * bi + tx) / kb.load(diag, k * bi + k));
      });
      kb.barrier();
      kb.if_(tx > k, [&] {
        kb.store(col_tile, ty * bi + tx,
                 kb.load(col_tile, ty * bi + tx) -
                     kb.load(col_tile, ty * bi + k) * kb.load(diag, k * bi + tx));
      });
      kb.barrier();
    });
    kb.store(a, cbase + ty * size + tx, kb.load(col_tile, ty * bi + tx));
    bench.module.kernels.push_back(kb.build());
  }
  {
    // Internal blocks: C -= L_col x U_row.
    KernelBuilder kb("lud_internal");
    Buf a = kb.buf_f32("a");
    Val size = kb.param_i32("size");
    Val offset = kb.param_i32("offset");
    Val nblocks = kb.param_i32("nblocks");  // remaining blocks per side
    Buf row_tile = kb.local_f32("row_tile", block * block);
    Buf col_tile = kb.local_f32("col_tile", block * block);
    Val tx = kb.local_id(0), ty = kb.local_id(1);
    Val g = kb.group_id(1);  // linearized (bx, by)
    Val bx = kb.let_("bx", g % nblocks);
    Val by = kb.let_("by", g / nblocks);
    Val rbase = kb.let_("rbase", offset * size + offset + (bx + 1) * bi);
    Val cbase = kb.let_("cbase", (offset + (by + 1) * bi) * size + offset);
    Val tbase = kb.let_("tbase", (offset + (by + 1) * bi) * size + offset + (bx + 1) * bi);
    kb.store(row_tile, ty * bi + tx, kb.load(a, rbase + ty * size + tx));
    kb.store(col_tile, ty * bi + tx, kb.load(a, cbase + ty * size + tx));
    kb.barrier();
    Val acc = kb.let_("acc", Val(0.0f));
    kb.for_("k", Val(0), Val(bi), [&](Val k) {
      kb.assign(acc, acc + kb.load(col_tile, ty * bi + k) * kb.load(row_tile, k * bi + tx));
    });
    kb.store(a, tbase + ty * size + tx, kb.load(a, tbase + ty * size + tx) - acc);
    bench.module.kernels.push_back(kb.build());
  }

  // Diagonally dominant input keeps the factorization stable.
  auto a = ffill(n * n, 0x111, -1.0f, 1.0f);
  for (uint32_t i = 0; i < n; ++i) a[i * n + i] = f2u(u2f(a[i * n + i]) + 16.0f);
  bench.buffers = {a};

  const uint32_t nblocks = n / block;
  for (uint32_t step = 0; step < nblocks; ++step) {
    const int32_t offset = static_cast<int32_t>(step * block);
    const uint32_t rest = nblocks - step - 1;
    bench.launches.push_back({"lud_diagonal", NDRange::grid2d(block, block, block, block),
                              {ArgSpec::buf(0), ArgSpec::i(static_cast<int32_t>(n)),
                               ArgSpec::i(offset)}});
    if (rest == 0) break;
    bench.launches.push_back(
        {"lud_perimeter_row", NDRange::grid2d(block, block * rest, block, block),
         {ArgSpec::buf(0), ArgSpec::i(static_cast<int32_t>(n)), ArgSpec::i(offset)}});
    bench.launches.push_back(
        {"lud_perimeter_col", NDRange::grid2d(block, block * rest, block, block),
         {ArgSpec::buf(0), ArgSpec::i(static_cast<int32_t>(n)), ArgSpec::i(offset)}});
    bench.launches.push_back(
        {"lud_internal", NDRange::grid2d(block, block * rest * rest, block, block),
         {ArgSpec::buf(0), ArgSpec::i(static_cast<int32_t>(n)), ArgSpec::i(offset),
          ArgSpec::i(static_cast<int32_t>(rest))}});
  }
  bench.checked_buffers = {0};
  return bench;
}

Benchmark make_btree() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "B+tree findK and findRangeK: pointer-chasing gathers per query";
  // fanout^3 = 512 keys in 64 leaves of 8 keys each; two internal levels
  // (root + 8 nodes) sit above the leaves, so a descent dereferences
  // `levels` = 2 child pointers before scanning a leaf.
  const uint32_t fanout = 8, levels = 2;
  const uint32_t queries = 256;

  // Build a static B+tree over sorted keys. Internal nodes store separator
  // keys; leaves store (key, value) pairs. Node layout: node i has keys at
  // keys[i*fanout .. ] and children at children[i*fanout .. ].
  const uint32_t total_keys = fanout * fanout * fanout;  // 512 keys in leaves
  std::vector<uint32_t> keys_sorted(total_keys);
  for (uint32_t i = 0; i < total_keys; ++i) keys_sorted[i] = i * 3 + 1;  // strictly increasing

  const uint32_t n_internal = 1 + fanout;  // root + second level
  std::vector<uint32_t> node_keys(n_internal * fanout, 0xFFFFFFFFu);
  std::vector<uint32_t> node_children(n_internal * fanout, 0u);
  // Child c of a node at `level` covers fanout^(levels-level) keys.
  auto subtree_span = [&](uint32_t level) {
    uint32_t span = fanout;  // keys per leaf
    for (uint32_t l = level + 1; l < levels; ++l) span *= fanout;
    return span;
  };
  uint32_t next_node = 1;
  std::vector<std::pair<uint32_t, uint32_t>> frontier = {{0u, 0u}};  // (node, first key idx)
  for (uint32_t level = 0; level < levels; ++level) {
    std::vector<std::pair<uint32_t, uint32_t>> next_frontier;
    const uint32_t span = subtree_span(level);
    for (auto [node, first] : frontier) {
      for (uint32_t c = 0; c < fanout; ++c) {
        const uint32_t key_start = first + c * span;
        node_keys[node * fanout + c] = keys_sorted[key_start];  // smallest key in child
        if (level + 1 < levels) {
          node_children[node * fanout + c] = next_node;
          next_frontier.push_back({next_node, key_start});
          ++next_node;
        } else {
          node_children[node * fanout + c] = key_start;  // leaf: index into key array
        }
      }
    }
    frontier = std::move(next_frontier);
  }

  {
    KernelBuilder kb("findK");
    Buf nkeys = kb.buf_i32("node_keys"), nchildren = kb.buf_i32("node_children");
    Buf leaf_keys = kb.buf_i32("leaf_keys"), query = kb.buf_i32("query"),
        answer = kb.buf_i32("answer");
    Val nq = kb.param_i32("nq");
    Val gid = kb.global_id(0);
    kb.if_(gid < nq, [&] {
      Val q = kb.let_("q", kb.load(query, gid));
      Val node = kb.let_("node", Val(0));
      kb.for_("level", Val(0), Val(static_cast<int32_t>(levels)), [&](Val) {
        Val child = kb.let_("child", Val(0));
        kb.for_("i", Val(1), Val(static_cast<int32_t>(fanout)), [&](Val i) {
          kb.if_(kb.load(nkeys, node * static_cast<int32_t>(fanout) + i) <= q,
                 [&] { kb.assign(child, i); });
        });
        kb.assign(node, kb.load(nchildren, node * static_cast<int32_t>(fanout) + child));
      });
      // `node` is now a leaf key index; scan the leaf for an exact match.
      Val found = kb.let_("found", Val(-1));
      kb.for_("i", Val(0), Val(static_cast<int32_t>(fanout)), [&](Val i) {
        kb.if_(kb.load(leaf_keys, node + i) == q, [&] { kb.assign(found, node + i); });
      });
      kb.store(answer, gid, found);
    });
    bench.module.kernels.push_back(kb.build());
  }
  {
    // findRangeK: counts keys in [lo, lo+range) via two descents.
    KernelBuilder kb("findRangeK");
    Buf nkeys = kb.buf_i32("node_keys"), nchildren = kb.buf_i32("node_children");
    Buf leaf_keys = kb.buf_i32("leaf_keys"), query = kb.buf_i32("query"),
        count_out = kb.buf_i32("count_out");
    Val nq = kb.param_i32("nq");
    Val range = kb.param_i32("range");
    Val gid = kb.global_id(0);
    kb.if_(gid < nq, [&] {
      Val lo = kb.let_("lo", kb.load(query, gid));
      Val hi = kb.let_("hi", lo + range);
      // Rodinia's findRangeK descends the tree twice, once per endpoint.
      Val node_lo = kb.let_("node_lo", Val(0));
      Val node_hi = kb.let_("node_hi", Val(0));
      kb.for_("level", Val(0), Val(static_cast<int32_t>(levels)), [&](Val) {
        Val child_lo = kb.let_("child_lo", Val(0));
        Val child_hi = kb.let_("child_hi", Val(0));
        kb.for_("i", Val(1), Val(static_cast<int32_t>(fanout)), [&](Val i) {
          kb.if_(kb.load(nkeys, node_lo * static_cast<int32_t>(fanout) + i) <= lo,
                 [&] { kb.assign(child_lo, i); });
          kb.if_(kb.load(nkeys, node_hi * static_cast<int32_t>(fanout) + i) <= hi,
                 [&] { kb.assign(child_hi, i); });
        });
        kb.assign(node_lo, kb.load(nchildren, node_lo * static_cast<int32_t>(fanout) + child_lo));
        kb.assign(node_hi, kb.load(nchildren, node_hi * static_cast<int32_t>(fanout) + child_hi));
      });
      // Walk from the lo leaf to the hi leaf counting range members.
      Val count = kb.let_("count", Val(0));
      Val pos = kb.let_("pos", node_lo);
      Val limit = kb.let_("limit",
                          vmin(node_hi + static_cast<int32_t>(fanout), Val(static_cast<int32_t>(total_keys))));
      kb.while_(pos < limit && kb.load(leaf_keys, pos) < hi, [&] {
        kb.if_(kb.load(leaf_keys, pos) >= lo, [&] { kb.assign(count, count + 1); });
        kb.assign(pos, pos + 1);
      });
      kb.store(count_out, gid, count);
    });
    bench.module.kernels.push_back(kb.build());
  }

  bench.buffers = {node_keys, node_children, keys_sorted,
                   ifill(queries, 0x121, 0, static_cast<int32_t>(total_keys * 3)),
                   zeros(queries), zeros(queries)};
  bench.launches = {
      {"findK", NDRange::linear(queries, 64),
       {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2), ArgSpec::buf(3), ArgSpec::buf(4),
        ArgSpec::i(static_cast<int32_t>(queries))}},
      {"findRangeK", NDRange::linear(queries, 64),
       {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2), ArgSpec::buf(3), ArgSpec::buf(5),
        ArgSpec::i(static_cast<int32_t>(queries)), ArgSpec::i(24)}},
  };
  bench.checked_buffers = {4, 5};
  return bench;
}

Benchmark make_hybridsort() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "bucket histogram (atomic_add, the paper's HLS-unsupported case) + scatter + per-bucket sort";
  const uint32_t n = 512, buckets = 16;

  {
    KernelBuilder kb("bucket_histogram");
    Buf data = kb.buf_i32("data"), hist = kb.buf_i32("hist");
    Val count = kb.param_i32("n");
    Val nbuckets = kb.param_i32("buckets");
    Val lo = kb.param_i32("lo"), width = kb.param_i32("width");
    Val gid = kb.global_id(0);
    kb.if_(gid < count, [&] {
      Val b = kb.let_("b", vmin((kb.load(data, gid) - lo) / width, nbuckets - 1));
      kb.atomic_add(hist, b, Val(1));
    });
    bench.module.kernels.push_back(kb.build());
  }
  {
    // Exclusive prefix over the histogram (single work item, like Rodinia's
    // CPU-side step folded onto the device).
    KernelBuilder kb("bucket_prefix");
    Buf hist = kb.buf_i32("hist"), offsets = kb.buf_i32("offsets");
    Val nbuckets = kb.param_i32("buckets");
    Val acc = kb.let_("acc", Val(0));
    kb.for_("i", Val(0), nbuckets, [&](Val i) {
      kb.store(offsets, i, acc);
      kb.assign(acc, acc + kb.load(hist, i));
    });
    bench.module.kernels.push_back(kb.build());
  }
  {
    KernelBuilder kb("bucket_scatter");
    Buf data = kb.buf_i32("data"), cursor = kb.buf_i32("cursor"), out = kb.buf_i32("out");
    Val count = kb.param_i32("n");
    Val nbuckets = kb.param_i32("buckets");
    Val lo = kb.param_i32("lo"), width = kb.param_i32("width");
    Val gid = kb.global_id(0);
    kb.if_(gid < count, [&] {
      Val v = kb.let_("v", kb.load(data, gid));
      Val b = kb.let_("b", vmin((v - lo) / width, nbuckets - 1));
      Val pos = kb.atomic_ret(kir::AtomicOp::kAdd, cursor, b, Val(1));
      kb.store(out, pos, v);
    });
    bench.module.kernels.push_back(kb.build());
  }
  {
    // Insertion sort within each bucket: one work item per bucket.
    KernelBuilder kb("bucket_sort");
    Buf out = kb.buf_i32("out"), offsets = kb.buf_i32("offsets"), hist = kb.buf_i32("hist");
    Val nbuckets = kb.param_i32("buckets");
    Val gid = kb.global_id(0);
    kb.if_(gid < nbuckets, [&] {
      Val begin = kb.let_("begin", kb.load(offsets, gid));
      Val end = kb.let_("end", begin + kb.load(hist, gid));
      kb.for_("i", begin + 1, end, [&](Val i) {
        Val key = kb.let_("key", kb.load(out, i));
        Val j = kb.let_("j", i - 1);
        kb.while_(j >= begin && kb.load(out, j) > key, [&] {
          kb.store(out, j + 1, kb.load(out, j));
          kb.assign(j, j - 1);
        });
        kb.store(out, j + 1, key);
      });
    });
    bench.module.kernels.push_back(kb.build());
  }

  auto input = ifill(n, 0x131, 0, 1023);
  bench.buffers = {input, zeros(buckets), zeros(buckets), zeros(buckets), zeros(n)};
  const int32_t width = 1024 / static_cast<int32_t>(buckets);
  bench.launches = {
      {"bucket_histogram", NDRange::linear(n, 64),
       {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::i(static_cast<int32_t>(n)),
        ArgSpec::i(static_cast<int32_t>(buckets)), ArgSpec::i(0), ArgSpec::i(width)}},
      {"bucket_prefix", NDRange::linear(1, 1),
       {ArgSpec::buf(1), ArgSpec::buf(2), ArgSpec::i(static_cast<int32_t>(buckets))}},
      {"bucket_prefix", NDRange::linear(1, 1),
       {ArgSpec::buf(1), ArgSpec::buf(3), ArgSpec::i(static_cast<int32_t>(buckets))}},
      {"bucket_scatter", NDRange::linear(n, 64),
       {ArgSpec::buf(0), ArgSpec::buf(3), ArgSpec::buf(4), ArgSpec::i(static_cast<int32_t>(n)),
        ArgSpec::i(static_cast<int32_t>(buckets)), ArgSpec::i(0), ArgSpec::i(width)}},
      {"bucket_sort", NDRange::linear(buckets, 16),
       {ArgSpec::buf(4), ArgSpec::buf(2), ArgSpec::buf(1),
        ArgSpec::i(static_cast<int32_t>(buckets))}},
  };
  // Scatter order depends on atomic ordering; the fully sorted result does
  // not: compare against std::sort.
  std::vector<int32_t> expected(n);
  for (uint32_t i = 0; i < n; ++i) expected[i] = static_cast<int32_t>(input[i]);
  std::sort(expected.begin(), expected.end());
  bench.custom_verify = [expected](const std::vector<std::vector<uint32_t>>& buffers,
                                   const std::vector<std::string>&) -> Status {
    const auto& out = buffers[4];
    for (size_t i = 0; i < expected.size(); ++i) {
      if (static_cast<int32_t>(out[i]) != expected[i]) {
        return Status(ErrorKind::kRuntimeError,
                      "hybridsort: element " + std::to_string(i) + " = " +
                          std::to_string(static_cast<int32_t>(out[i])) + ", want " +
                          std::to_string(expected[i]));
      }
    }
    return Status::ok();
  };
  return bench;
}

Benchmark make_lbm() {
  Benchmark bench;
  bench.origin = "Rodinia / SPEC 470.lbm";
  bench.notes = "D3Q19 lattice-Boltzmann stream+collide; 19 distribution loads + 19 stores per cell";
  const uint32_t w = 16, h = 16, d = 4;
  const int32_t wi = static_cast<int32_t>(w), hi = static_cast<int32_t>(h),
                di = static_cast<int32_t>(d);

  // D3Q19 velocity set.
  const int ex[19] = {0, 1, -1, 0, 0, 0, 0, 1, -1, 1, -1, 1, -1, 1, -1, 0, 0, 0, 0};
  const int ey[19] = {0, 0, 0, 1, -1, 0, 0, 1, 1, -1, -1, 0, 0, 0, 0, 1, -1, 1, -1};
  const int ez[19] = {0, 0, 0, 0, 0, 1, -1, 0, 0, 0, 0, 1, 1, -1, -1, 1, 1, -1, -1};
  const int opposite[19] = {0, 2, 1, 4, 3, 6, 5, 10, 9, 8, 7, 14, 13, 12, 11, 18, 17, 16, 15};
  const float w0 = 1.0f / 3, w1 = 1.0f / 18, w2 = 1.0f / 36;
  const float wgt[19] = {w0, w1, w1, w1, w1, w1, w1, w2, w2, w2, w2,
                         w2, w2, w2, w2, w2, w2, w2, w2};

  KernelBuilder kb("lbm_step");
  Buf fin = kb.buf_f32("fin"), fout = kb.buf_f32("fout");
  Buf obstacle = kb.buf_i32("obstacle");
  Val x = kb.global_id(0), y = kb.global_id(1), z = kb.global_id(2);
  const int32_t cells_i = wi * hi * di;
  Val cell = kb.let_("cell", (z * hi + y) * wi + x);
  // Streaming pull with periodic wrap.
  std::vector<Val> f;
  for (int i = 0; i < 19; ++i) {
    Val sx = kb.let_("sx" + std::to_string(i), (x - ex[i] + wi) % wi);
    Val sy = kb.let_("sy" + std::to_string(i), (y - ey[i] + hi) % hi);
    Val sz = kb.let_("sz" + std::to_string(i), (z - ez[i] + di) % di);
    f.push_back(kb.let_("f" + std::to_string(i),
                        kb.load(fin, i * cells_i + (sz * hi + sy) * wi + sx)));
  }
  Val rho = kb.let_("rho", [&] {
    Val sum = f[0];
    for (int i = 1; i < 19; ++i) sum = sum + f[static_cast<size_t>(i)];
    return sum;
  }());
  auto momentum = [&](const int* e, const char* tag) {
    Val sum = Val(0.0f);
    for (int i = 1; i < 19; ++i) {
      if (e[i] == 1) sum = sum + f[static_cast<size_t>(i)];
      if (e[i] == -1) sum = sum - f[static_cast<size_t>(i)];
    }
    return kb.let_(tag, sum / rho);
  };
  Val ux = momentum(ex, "ux");
  Val uy = momentum(ey, "uy");
  Val uz = momentum(ez, "uz");
  Val usqr = kb.let_("usqr", ux * ux + uy * uy + uz * uz);
  Val is_obstacle = kb.let_("is_obstacle", kb.load(obstacle, cell));
  const float omega = 1.2f;
  for (int i = 0; i < 19; ++i) {
    Val eu = kb.let_("eu" + std::to_string(i), to_f32(Val(ex[i])) * ux +
                                                   to_f32(Val(ey[i])) * uy +
                                                   to_f32(Val(ez[i])) * uz);
    Val feq = kb.let_("feq" + std::to_string(i),
                      rho * wgt[i] * (1.0f + 3.0f * eu + 4.5f * eu * eu - 1.5f * usqr));
    Val relaxed = kb.let_("relaxed" + std::to_string(i),
                          f[static_cast<size_t>(i)] +
                              omega * (feq - f[static_cast<size_t>(i)]));
    kb.store(fout, i * cells_i + cell,
             vselect(is_obstacle == 1, f[static_cast<size_t>(opposite[i])], relaxed));
  }
  bench.module.kernels.push_back(kb.build());

  const uint32_t cells = w * h * d;
  auto fin_data = ffill(19 * cells, 0x141, 0.05f, 0.15f);
  auto obstacle_data = zeros(cells);
  Rng rng(0x142);
  for (uint32_t i = 0; i < cells / 16; ++i) obstacle_data[rng.next_below(cells)] = 1;
  bench.buffers = {fin_data, zeros(19 * cells), obstacle_data};
  kir::NDRange ndr;
  ndr.dims = 3;
  ndr.global[0] = w;
  ndr.global[1] = h;
  ndr.global[2] = d;
  ndr.local[0] = 8;
  ndr.local[1] = 8;
  ndr.local[2] = 1;
  // Two timesteps, ping-ponging the distribution buffers.
  bench.launches = {
      {"lbm_step", ndr, {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2)}},
      {"lbm_step", ndr, {ArgSpec::buf(1), ArgSpec::buf(0), ArgSpec::buf(2)}},
  };
  bench.checked_buffers = {0, 1};
  return bench;
}

Benchmark make_dwt2d() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "CDF 5/3 lifting wavelet: row pass + column pass, multi-tap loads";
  const uint32_t n = 64;
  const int32_t ni = static_cast<int32_t>(n);

  auto build_pass = [&](const std::string& name, bool rows) {
    KernelBuilder kb(name);
    Buf in = kb.buf_f32("in"), out = kb.buf_f32("out");
    Val x = kb.global_id(0), y = kb.global_id(1);  // x: pair index, y: line
    const int32_t half = ni / 2;
    auto at = [&](Val line, Val pos) {
      return rows ? line * ni + pos : pos * ni + line;
    };
    auto clamp = [&](Val pos) { return vmin(vmax(pos, Val(0)), Val(ni - 1)); };
    // CDF 9/7-style double lifting: two predict + two update steps, each
    // output tap reading a neighborhood of samples (the multi-tap loads the
    // real dwt2d kernel performs).
    const float a1 = -1.586134342f, a2 = -0.05298011854f;
    const float a3 = 0.8829110762f, a4 = 0.4435068522f;
    Val p0 = kb.let_("p0", x * 2);
    Val s_m2 = kb.let_("s_m2", kb.load(in, at(y, clamp(p0 - 2))));
    Val s_m1 = kb.let_("s_m1", kb.load(in, at(y, clamp(p0 - 1))));
    Val s_0 = kb.let_("s_0", kb.load(in, at(y, p0)));
    Val s_1 = kb.let_("s_1", kb.load(in, at(y, p0 + 1)));
    Val s_2 = kb.let_("s_2", kb.load(in, at(y, clamp(p0 + 2))));
    Val s_3 = kb.let_("s_3", kb.load(in, at(y, clamp(p0 + 3))));
    Val s_m3 = kb.let_("s_m3", kb.load(in, at(y, clamp(p0 - 3))));
    Val s_m4 = kb.let_("s_m4", kb.load(in, at(y, clamp(p0 - 4))));
    Val s_4 = kb.let_("s_4", kb.load(in, at(y, clamp(p0 + 4))));
    // Predict 1 at this pair, left pair and right pair.
    Val d_0 = kb.let_("d_0", s_1 + a1 * (s_0 + s_2));
    Val d_m1 = kb.let_("d_m1", s_m1 + a1 * (s_m2 + s_0));
    Val d_1 = kb.let_("d_1", s_3 + a1 * (s_2 + s_4));
    Val d_m2 = kb.let_("d_m2", s_m3 + a1 * (s_m4 + s_m2));
    // Update 1.
    Val c_0 = kb.let_("c_0", s_0 + a2 * (d_m1 + d_0));
    Val c_1 = kb.let_("c_1", s_2 + a2 * (d_0 + d_1));
    Val c_m1 = kb.let_("c_m1", s_m2 + a2 * (d_m2 + d_m1));
    // Predict 2 + update 2.
    Val high = kb.let_("high", d_0 + a3 * (c_0 + c_1));
    Val prev_high = kb.let_("prev_high", d_m1 + a3 * (c_m1 + c_0));
    Val low = kb.let_("low", c_0 + a4 * (prev_high + high));
    kb.store(out, at(y, x), low);
    kb.store(out, at(y, x + half), high);
    return kb.build();
  };
  bench.module.kernels.push_back(build_pass("dwt_rows", true));
  bench.module.kernels.push_back(build_pass("dwt_cols", false));

  bench.buffers = {ffill(n * n, 0x151, 0.0f, 255.0f), zeros(n * n), zeros(n * n)};
  bench.launches = {
      {"dwt_rows", NDRange::grid2d(n / 2, n, 8, 8),
       {ArgSpec::buf(0), ArgSpec::buf(1)}},
      {"dwt_cols", NDRange::grid2d(n / 2, n, 8, 8),
       {ArgSpec::buf(1), ArgSpec::buf(2)}},
  };
  bench.checked_buffers = {1, 2};
  return bench;
}

Benchmark make_lavamd() {
  Benchmark bench;
  bench.origin = "Rodinia";
  bench.notes = "particle interactions across neighbor boxes with exp() potential";
  const uint32_t boxes_1d = 4, per_box = 16;
  const uint32_t boxes = boxes_1d * boxes_1d;
  const uint32_t particles = boxes * per_box;

  KernelBuilder kb("lavamd_force");
  Buf px = kb.buf_f32("px"), py = kb.buf_f32("py"), charge = kb.buf_f32("charge");
  Buf fx = kb.buf_f32("fx"), fy = kb.buf_f32("fy");
  Val nboxes_1d = kb.param_i32("boxes_1d");
  Val nper_box = kb.param_i32("per_box");
  Val alpha = kb.param_f32("alpha");
  Val gid = kb.global_id(0);
  Val box = kb.let_("box", gid / nper_box);
  Val bx = kb.let_("bx", box % nboxes_1d);
  Val by = kb.let_("by", box / nboxes_1d);
  Val xi = kb.let_("xi", kb.load(px, gid));
  Val yi = kb.let_("yi", kb.load(py, gid));
  Val accx = kb.let_("accx", Val(0.0f));
  Val accy = kb.let_("accy", Val(0.0f));
  kb.for_("noy", Val(-1), Val(2), [&](Val noy) {
    kb.for_("nox", Val(-1), Val(2), [&](Val nox) {
      Val nbx = kb.let_("nbx", (bx + nox + nboxes_1d) % nboxes_1d);
      Val nby = kb.let_("nby", (by + noy + nboxes_1d) % nboxes_1d);
      Val nbox = kb.let_("nbox", nby * nboxes_1d + nbx);
      kb.for_("j", nbox * nper_box, nbox * nper_box + nper_box, [&](Val j) {
        Val dx = kb.let_("dx", xi - kb.load(px, j));
        Val dy = kb.let_("dy", yi - kb.load(py, j));
        Val r2 = kb.let_("r2", dx * dx + dy * dy);
        Val u = kb.let_("u", vexp(-alpha * r2) * kb.load(charge, j));
        kb.assign(accx, accx + u * dx);
        kb.assign(accy, accy + u * dy);
      });
    });
  });
  kb.store(fx, gid, accx);
  kb.store(fy, gid, accy);
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(particles, 0x161, 0.0f, 4.0f), ffill(particles, 0x162, 0.0f, 4.0f),
                   ffill(particles, 0x163, 0.5f, 1.5f), zeros(particles), zeros(particles)};
  bench.launches = {{"lavamd_force", NDRange::linear(particles, 64),
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2), ArgSpec::buf(3),
                      ArgSpec::buf(4), ArgSpec::i(static_cast<int32_t>(boxes_1d)),
                      ArgSpec::i(static_cast<int32_t>(per_box)), ArgSpec::f(0.5f)}}};
  bench.checked_buffers = {3, 4};
  return bench;
}

Benchmark make_cutcp() {
  Benchmark bench;
  bench.origin = "Parboil (paper's selection)";
  bench.notes = "cutoff Coulomb potential: lattice points accumulate nearby atom charges";
  const uint32_t grid = 32, atoms = 64;

  KernelBuilder kb("cutcp");
  Buf ax = kb.buf_f32("ax"), ay = kb.buf_f32("ay"), aq = kb.buf_f32("aq");
  Buf lattice = kb.buf_f32("lattice");
  Val natoms = kb.param_i32("natoms");
  Val gsize = kb.param_i32("gsize");
  Val cutoff2 = kb.param_f32("cutoff2");
  Val gx = kb.global_id(0), gy = kb.global_id(1);
  Val x = kb.let_("x", to_f32(gx) * 0.25f);
  Val y = kb.let_("y", to_f32(gy) * 0.25f);
  Val energy = kb.let_("energy", Val(0.0f));
  kb.for_("a", Val(0), natoms, [&](Val a) {
    Val dx = kb.let_("dx", x - kb.load(ax, a));
    Val dy = kb.let_("dy", y - kb.load(ay, a));
    Val r2 = kb.let_("r2", dx * dx + dy * dy);
    kb.if_(r2 < cutoff2, [&] {
      Val s = kb.let_("s", 1.0f - r2 / cutoff2);
      kb.assign(energy, energy + kb.load(aq, a) * s * s / vsqrt(r2 + 0.01f));
    });
  });
  kb.store(lattice, gy * gsize + gx, energy);
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(atoms, 0x171, 0.0f, 8.0f), ffill(atoms, 0x172, 0.0f, 8.0f),
                   ffill(atoms, 0x173, -1.0f, 1.0f), zeros(grid * grid)};
  bench.launches = {{"cutcp", NDRange::grid2d(grid, grid, 8, 8),
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2), ArgSpec::buf(3),
                      ArgSpec::i(static_cast<int32_t>(atoms)),
                      ArgSpec::i(static_cast<int32_t>(grid)), ArgSpec::f(4.0f)}}};
  bench.checked_buffers = {3};
  return bench;
}

Benchmark make_spmv() {
  Benchmark bench;
  bench.origin = "Vortex tests / Parboil";
  bench.notes = "CSR sparse matrix-vector product: irregular x[] gathers";
  const uint32_t rows = 512, nnz_per_row = 4;

  KernelBuilder kb("spmv_csr");
  Buf row_ptr = kb.buf_i32("row_ptr"), cols = kb.buf_i32("cols"), vals = kb.buf_f32("vals");
  Buf x = kb.buf_f32("x"), y = kb.buf_f32("y");
  Val nrows = kb.param_i32("nrows");
  Val gid = kb.global_id(0);
  kb.if_(gid < nrows, [&] {
    Val acc = kb.let_("acc", Val(0.0f));
    kb.for_("k", kb.load(row_ptr, gid), kb.load(row_ptr, gid + 1), [&](Val k) {
      kb.assign(acc, acc + kb.load(vals, k) * kb.load(x, kb.load(cols, k)));
    });
    kb.store(y, gid, acc);
  });
  bench.module.kernels.push_back(kb.build());

  Rng rng(0x181);
  std::vector<uint32_t> row_ptr_data(rows + 1), cols_data(rows * nnz_per_row),
      vals_data(rows * nnz_per_row);
  for (uint32_t r = 0; r <= rows; ++r) row_ptr_data[r] = r * nnz_per_row;
  for (auto& c : cols_data) c = rng.next_below(rows);
  for (auto& v : vals_data) v = f2u(rng.next_float(-2.0f, 2.0f));
  bench.buffers = {row_ptr_data, cols_data, vals_data, ffill(rows, 0x182, -1.0f, 1.0f),
                   zeros(rows)};
  bench.launches = {{"spmv_csr", NDRange::linear(rows, 64),
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2), ArgSpec::buf(3),
                      ArgSpec::buf(4), ArgSpec::i(static_cast<int32_t>(rows))}}};
  bench.checked_buffers = {4};
  return bench;
}

Benchmark make_blackscholes() {
  Benchmark bench;
  bench.origin = "NVIDIA SDK";
  bench.notes = "European option pricing: exp/log/sqrt and the CND polynomial";
  const uint32_t options = 2048;

  KernelBuilder kb("blackscholes");
  Buf price = kb.buf_f32("price"), strike = kb.buf_f32("strike"), years = kb.buf_f32("years");
  Buf call = kb.buf_f32("call"), put = kb.buf_f32("put");
  Val count = kb.param_i32("n");
  Val riskfree = kb.param_f32("riskfree"), volatility = kb.param_f32("volatility");
  Val gid = kb.global_id(0);

  auto cnd = [&](const std::string& tag, Val d) {
    Val k = kb.let_(tag + "_k", 1.0f / (1.0f + 0.2316419f * vabs(d)));
    Val poly = kb.let_(
        tag + "_poly",
        k * (0.319381530f +
             k * (-0.356563782f + k * (1.781477937f + k * (-1.821255978f + k * 1.330274429f)))));
    Val w = kb.let_(tag + "_w", 1.0f - 0.39894228040f * vexp(-0.5f * d * d) * poly);
    return kb.let_(tag, vselect(d < 0.0f, 1.0f - w, w));
  };

  kb.if_(gid < count, [&] {
    Val s = kb.let_("s", kb.load(price, gid));
    Val x = kb.let_("x", kb.load(strike, gid));
    Val t = kb.let_("t", kb.load(years, gid));
    Val sqrt_t = kb.let_("sqrt_t", vsqrt(t));
    Val d1 = kb.let_("d1", (vlog(s / x) + (riskfree + 0.5f * volatility * volatility) * t) /
                               (volatility * sqrt_t));
    Val d2 = kb.let_("d2", d1 - volatility * sqrt_t);
    Val cnd1 = cnd("cnd1", d1);
    Val cnd2 = cnd("cnd2", d2);
    Val exp_rt = kb.let_("exp_rt", vexp(-riskfree * t));
    kb.store(call, gid, s * cnd1 - x * exp_rt * cnd2);
    kb.store(put, gid, x * exp_rt * (1.0f - cnd2) - s * (1.0f - cnd1));
  });
  bench.module.kernels.push_back(kb.build());

  bench.buffers = {ffill(options, 0x191, 5.0f, 30.0f), ffill(options, 0x192, 1.0f, 100.0f),
                   ffill(options, 0x193, 0.25f, 10.0f), zeros(options), zeros(options)};
  bench.launches = {{"blackscholes", NDRange::linear(options, 64),
                     {ArgSpec::buf(0), ArgSpec::buf(1), ArgSpec::buf(2), ArgSpec::buf(3),
                      ArgSpec::buf(4), ArgSpec::i(static_cast<int32_t>(options)),
                      ArgSpec::f(0.02f), ArgSpec::f(0.30f)}}};
  bench.checked_buffers = {3, 4};
  return bench;
}

}  // namespace fgpu::suite
