// Shared workload-generation helpers for the benchmark suite.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "kir/build.hpp"
#include "suite/suite.hpp"

namespace fgpu::suite {

inline std::vector<uint32_t> ffill(size_t n, uint64_t seed, float lo, float hi) {
  Rng rng(seed);
  std::vector<uint32_t> out(n);
  for (auto& v : out) v = f2u(rng.next_float(lo, hi));
  return out;
}

inline std::vector<uint32_t> ifill(size_t n, uint64_t seed, int32_t lo, int32_t hi) {
  Rng rng(seed);
  std::vector<uint32_t> out(n);
  for (auto& v : out) v = static_cast<uint32_t>(rng.next_range(lo, hi));
  return out;
}

inline std::vector<uint32_t> zeros(size_t n) { return std::vector<uint32_t>(n, 0u); }

inline std::vector<uint32_t> consts(size_t n, uint32_t value) {
  return std::vector<uint32_t>(n, value);
}

}  // namespace fgpu::suite
