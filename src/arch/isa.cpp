#include "arch/isa.hpp"

#include <array>
#include <cassert>
#include <cstdio>
#include <unordered_map>

namespace fgpu::arch {
namespace {

// RISC-V major opcodes used here.
constexpr uint8_t kOpLui = 0x37, kOpAuipc = 0x17, kOpJal = 0x6F, kOpJalr = 0x67;
constexpr uint8_t kOpBranch = 0x63, kOpLoad = 0x03, kOpStore = 0x23;
constexpr uint8_t kOpImm = 0x13, kOpReg = 0x33, kOpMisc = 0x0F, kOpSys = 0x73;
constexpr uint8_t kOpAmo = 0x2F;
constexpr uint8_t kOpLoadFp = 0x07, kOpStoreFp = 0x27, kOpFp = 0x53;
constexpr uint8_t kOpFmadd = 0x43, kOpFmsub = 0x47, kOpFnmsub = 0x4B, kOpFnmadd = 0x4F;
// Vortex extension opcodes (RISC-V custom-0/1/2 spaces).
constexpr uint8_t kOpVx0 = 0x0B;  // TMC/WSPAWN/BAR (R-type)
constexpr uint8_t kOpVx1 = 0x2B;  // SPLIT (J-type range, rs1 in rd slot)
constexpr uint8_t kOpVx3 = 0x7B;  // PRED (J-type range, rs1 in rd slot)
constexpr uint8_t kOpVx2 = 0x5B;  // JOIN (J-type)

constexpr uint8_t amo(uint8_t funct5) { return static_cast<uint8_t>(funct5 << 2); }

const std::array<OpInfo, kNumOps>& table() {
  static const std::array<OpInfo, kNumOps> t = [] {
    std::array<OpInfo, kNumOps> a{};
    auto set = [&](Op op, const char* name, Format fmt, uint8_t opc, uint8_t f3, uint8_t f7,
                   bool mf3, bool mf7, FuClass fu, uint8_t lat, uint8_t rs2sel = 0,
                   bool mrs2 = false) {
      a[static_cast<size_t>(op)] =
          OpInfo{op, name, fmt, opc, f3, f7, mf3, mf7, rs2sel, mrs2, fu, lat};
    };
    using enum Format;
    using Fu = FuClass;
    // RV32I -------------------------------------------------------------
    set(Op::kLui, "lui", kU, kOpLui, 0, 0, false, false, Fu::kAlu, 1);
    set(Op::kAuipc, "auipc", kU, kOpAuipc, 0, 0, false, false, Fu::kAlu, 1);
    set(Op::kJal, "jal", kJ, kOpJal, 0, 0, false, false, Fu::kBranch, 1);
    set(Op::kJalr, "jalr", kI, kOpJalr, 0, 0, true, false, Fu::kBranch, 1);
    set(Op::kBeq, "beq", kB, kOpBranch, 0, 0, true, false, Fu::kBranch, 1);
    set(Op::kBne, "bne", kB, kOpBranch, 1, 0, true, false, Fu::kBranch, 1);
    set(Op::kBlt, "blt", kB, kOpBranch, 4, 0, true, false, Fu::kBranch, 1);
    set(Op::kBge, "bge", kB, kOpBranch, 5, 0, true, false, Fu::kBranch, 1);
    set(Op::kBltu, "bltu", kB, kOpBranch, 6, 0, true, false, Fu::kBranch, 1);
    set(Op::kBgeu, "bgeu", kB, kOpBranch, 7, 0, true, false, Fu::kBranch, 1);
    set(Op::kLb, "lb", kI, kOpLoad, 0, 0, true, false, Fu::kLsu, 2);
    set(Op::kLh, "lh", kI, kOpLoad, 1, 0, true, false, Fu::kLsu, 2);
    set(Op::kLw, "lw", kI, kOpLoad, 2, 0, true, false, Fu::kLsu, 2);
    set(Op::kLbu, "lbu", kI, kOpLoad, 4, 0, true, false, Fu::kLsu, 2);
    set(Op::kLhu, "lhu", kI, kOpLoad, 5, 0, true, false, Fu::kLsu, 2);
    set(Op::kSb, "sb", kS, kOpStore, 0, 0, true, false, Fu::kLsu, 1);
    set(Op::kSh, "sh", kS, kOpStore, 1, 0, true, false, Fu::kLsu, 1);
    set(Op::kSw, "sw", kS, kOpStore, 2, 0, true, false, Fu::kLsu, 1);
    set(Op::kAddi, "addi", kI, kOpImm, 0, 0, true, false, Fu::kAlu, 1);
    set(Op::kSlti, "slti", kI, kOpImm, 2, 0, true, false, Fu::kAlu, 1);
    set(Op::kSltiu, "sltiu", kI, kOpImm, 3, 0, true, false, Fu::kAlu, 1);
    set(Op::kXori, "xori", kI, kOpImm, 4, 0, true, false, Fu::kAlu, 1);
    set(Op::kOri, "ori", kI, kOpImm, 6, 0, true, false, Fu::kAlu, 1);
    set(Op::kAndi, "andi", kI, kOpImm, 7, 0, true, false, Fu::kAlu, 1);
    set(Op::kSlli, "slli", kIShift, kOpImm, 1, 0x00, true, true, Fu::kAlu, 1);
    set(Op::kSrli, "srli", kIShift, kOpImm, 5, 0x00, true, true, Fu::kAlu, 1);
    set(Op::kSrai, "srai", kIShift, kOpImm, 5, 0x20, true, true, Fu::kAlu, 1);
    set(Op::kAdd, "add", kR, kOpReg, 0, 0x00, true, true, Fu::kAlu, 1);
    set(Op::kSub, "sub", kR, kOpReg, 0, 0x20, true, true, Fu::kAlu, 1);
    set(Op::kSll, "sll", kR, kOpReg, 1, 0x00, true, true, Fu::kAlu, 1);
    set(Op::kSlt, "slt", kR, kOpReg, 2, 0x00, true, true, Fu::kAlu, 1);
    set(Op::kSltu, "sltu", kR, kOpReg, 3, 0x00, true, true, Fu::kAlu, 1);
    set(Op::kXor, "xor", kR, kOpReg, 4, 0x00, true, true, Fu::kAlu, 1);
    set(Op::kSrl, "srl", kR, kOpReg, 5, 0x00, true, true, Fu::kAlu, 1);
    set(Op::kSra, "sra", kR, kOpReg, 5, 0x20, true, true, Fu::kAlu, 1);
    set(Op::kOr, "or", kR, kOpReg, 6, 0x00, true, true, Fu::kAlu, 1);
    set(Op::kAnd, "and", kR, kOpReg, 7, 0x00, true, true, Fu::kAlu, 1);
    set(Op::kFence, "fence", kSys, kOpMisc, 0, 0, true, false, Fu::kLsu, 1);
    set(Op::kEcall, "ecall", kSys, kOpSys, 0, 0, true, false, Fu::kSfu, 1);
    set(Op::kCsrrw, "csrrw", kCsr, kOpSys, 1, 0, true, false, Fu::kCsr, 1);
    set(Op::kCsrrs, "csrrs", kCsr, kOpSys, 2, 0, true, false, Fu::kCsr, 1);
    set(Op::kCsrrc, "csrrc", kCsr, kOpSys, 3, 0, true, false, Fu::kCsr, 1);
    // RV32M -------------------------------------------------------------
    set(Op::kMul, "mul", kR, kOpReg, 0, 0x01, true, true, Fu::kMulDiv, 3);
    set(Op::kMulh, "mulh", kR, kOpReg, 1, 0x01, true, true, Fu::kMulDiv, 3);
    set(Op::kMulhsu, "mulhsu", kR, kOpReg, 2, 0x01, true, true, Fu::kMulDiv, 3);
    set(Op::kMulhu, "mulhu", kR, kOpReg, 3, 0x01, true, true, Fu::kMulDiv, 3);
    set(Op::kDiv, "div", kR, kOpReg, 4, 0x01, true, true, Fu::kMulDiv, 16);
    set(Op::kDivu, "divu", kR, kOpReg, 5, 0x01, true, true, Fu::kMulDiv, 16);
    set(Op::kRem, "rem", kR, kOpReg, 6, 0x01, true, true, Fu::kMulDiv, 16);
    set(Op::kRemu, "remu", kR, kOpReg, 7, 0x01, true, true, Fu::kMulDiv, 16);
    // RV32A -------------------------------------------------------------
    set(Op::kLrW, "lr.w", kAmo, kOpAmo, 2, amo(0x02), true, true, Fu::kLsu, 2);
    set(Op::kScW, "sc.w", kAmo, kOpAmo, 2, amo(0x03), true, true, Fu::kLsu, 2);
    set(Op::kAmoswapW, "amoswap.w", kAmo, kOpAmo, 2, amo(0x01), true, true, Fu::kLsu, 2);
    set(Op::kAmoaddW, "amoadd.w", kAmo, kOpAmo, 2, amo(0x00), true, true, Fu::kLsu, 2);
    set(Op::kAmoandW, "amoand.w", kAmo, kOpAmo, 2, amo(0x0C), true, true, Fu::kLsu, 2);
    set(Op::kAmoorW, "amoor.w", kAmo, kOpAmo, 2, amo(0x08), true, true, Fu::kLsu, 2);
    set(Op::kAmoxorW, "amoxor.w", kAmo, kOpAmo, 2, amo(0x04), true, true, Fu::kLsu, 2);
    set(Op::kAmominW, "amomin.w", kAmo, kOpAmo, 2, amo(0x10), true, true, Fu::kLsu, 2);
    set(Op::kAmomaxW, "amomax.w", kAmo, kOpAmo, 2, amo(0x14), true, true, Fu::kLsu, 2);
    // RV32F -------------------------------------------------------------
    set(Op::kFlw, "flw", kI, kOpLoadFp, 2, 0, true, false, Fu::kLsu, 2);
    set(Op::kFsw, "fsw", kS, kOpStoreFp, 2, 0, true, false, Fu::kLsu, 1);
    set(Op::kFaddS, "fadd.s", kR, kOpFp, 0, 0x00, false, true, Fu::kFpu, 4);
    set(Op::kFsubS, "fsub.s", kR, kOpFp, 0, 0x04, false, true, Fu::kFpu, 4);
    set(Op::kFmulS, "fmul.s", kR, kOpFp, 0, 0x08, false, true, Fu::kFpu, 4);
    set(Op::kFdivS, "fdiv.s", kR, kOpFp, 0, 0x0C, false, true, Fu::kSfu, 16);
    set(Op::kFsqrtS, "fsqrt.s", kR, kOpFp, 0, 0x2C, false, true, Fu::kSfu, 16, 0, true);
    set(Op::kFsgnjS, "fsgnj.s", kR, kOpFp, 0, 0x10, true, true, Fu::kFpu, 1);
    set(Op::kFsgnjnS, "fsgnjn.s", kR, kOpFp, 1, 0x10, true, true, Fu::kFpu, 1);
    set(Op::kFsgnjxS, "fsgnjx.s", kR, kOpFp, 2, 0x10, true, true, Fu::kFpu, 1);
    set(Op::kFminS, "fmin.s", kR, kOpFp, 0, 0x14, true, true, Fu::kFpu, 2);
    set(Op::kFmaxS, "fmax.s", kR, kOpFp, 1, 0x14, true, true, Fu::kFpu, 2);
    set(Op::kFcvtWS, "fcvt.w.s", kR, kOpFp, 0, 0x60, false, true, Fu::kFpu, 3, 0, true);
    set(Op::kFcvtWuS, "fcvt.wu.s", kR, kOpFp, 0, 0x60, false, true, Fu::kFpu, 3, 1, true);
    set(Op::kFcvtSW, "fcvt.s.w", kR, kOpFp, 0, 0x68, false, true, Fu::kFpu, 3, 0, true);
    set(Op::kFcvtSWu, "fcvt.s.wu", kR, kOpFp, 0, 0x68, false, true, Fu::kFpu, 3, 1, true);
    set(Op::kFmvXW, "fmv.x.w", kR, kOpFp, 0, 0x70, true, true, Fu::kFpu, 1, 0, true);
    set(Op::kFclassS, "fclass.s", kR, kOpFp, 1, 0x70, true, true, Fu::kFpu, 1, 0, true);
    set(Op::kFmvWX, "fmv.w.x", kR, kOpFp, 0, 0x78, true, true, Fu::kFpu, 1, 0, true);
    set(Op::kFeqS, "feq.s", kR, kOpFp, 2, 0x50, true, true, Fu::kFpu, 2);
    set(Op::kFltS, "flt.s", kR, kOpFp, 1, 0x50, true, true, Fu::kFpu, 2);
    set(Op::kFleS, "fle.s", kR, kOpFp, 0, 0x50, true, true, Fu::kFpu, 2);
    set(Op::kFmaddS, "fmadd.s", kR4, kOpFmadd, 0, 0x00, false, false, Fu::kFpu, 4);
    set(Op::kFmsubS, "fmsub.s", kR4, kOpFmsub, 0, 0x00, false, false, Fu::kFpu, 4);
    set(Op::kFnmsubS, "fnmsub.s", kR4, kOpFnmsub, 0, 0x00, false, false, Fu::kFpu, 4);
    set(Op::kFnmaddS, "fnmadd.s", kR4, kOpFnmadd, 0, 0x00, false, false, Fu::kFpu, 4);
    // Vortex SIMT extension ----------------------------------------------
    set(Op::kTmc, "tmc", kR, kOpVx0, 0, 0x00, true, true, Fu::kSimt, 1);
    set(Op::kWspawn, "wspawn", kR, kOpVx0, 0, 0x01, true, true, Fu::kSimt, 1);
    set(Op::kBar, "bar", kR, kOpVx0, 0, 0x04, true, true, Fu::kSimt, 1);
    set(Op::kSplit, "split", kJr, kOpVx1, 0, 0, false, false, Fu::kSimt, 1);
    set(Op::kPred, "pred", kJr, kOpVx3, 0, 0, false, false, Fu::kSimt, 1);
    set(Op::kJoin, "join", kJ, kOpVx2, 0, 0, false, false, Fu::kSimt, 1);
    return a;
  }();
  return t;
}

uint32_t encode_b_imm(int32_t imm) {
  // imm[12|10:5] in [31:25], imm[4:1|11] in [11:7]
  const auto u = static_cast<uint32_t>(imm);
  return place(bits(u, 12, 1), 31, 1) | place(bits(u, 5, 6), 25, 6) |
         place(bits(u, 1, 4), 8, 4) | place(bits(u, 11, 1), 7, 1);
}

int32_t decode_b_imm(uint32_t w) {
  const uint32_t u = place(bits(w, 31, 1), 12, 1) | place(bits(w, 7, 1), 11, 1) |
                     place(bits(w, 25, 6), 5, 6) | place(bits(w, 8, 4), 1, 4);
  return sign_extend(u, 13);
}

uint32_t encode_j_imm(int32_t imm) {
  // imm[20|10:1|11|19:12] in [31:12]
  const auto u = static_cast<uint32_t>(imm);
  return place(bits(u, 20, 1), 31, 1) | place(bits(u, 1, 10), 21, 10) |
         place(bits(u, 11, 1), 20, 1) | place(bits(u, 12, 8), 12, 8);
}

int32_t decode_j_imm(uint32_t w) {
  const uint32_t u = place(bits(w, 31, 1), 20, 1) | place(bits(w, 12, 8), 12, 8) |
                     place(bits(w, 20, 1), 11, 1) | place(bits(w, 21, 10), 1, 10);
  return sign_extend(u, 21);
}

}  // namespace

const OpInfo& op_info(Op op) {
  assert(op != Op::kInvalid && op != Op::kCount);
  return table()[static_cast<size_t>(op)];
}

std::optional<Op> op_by_name(const std::string& name) {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, Op>();
    for (int i = 1; i < kNumOps; ++i) {
      const auto& info = table()[static_cast<size_t>(i)];
      if (info.op != Op::kInvalid) (*m)[info.name] = info.op;
    }
    return m;
  }();
  auto it = map->find(name);
  if (it == map->end()) return std::nullopt;
  return it->second;
}

uint32_t encode(const Instr& in) {
  const OpInfo& info = op_info(in.op);
  uint32_t w = info.opcode;
  switch (info.fmt) {
    case Format::kR:
      w |= place(in.rd, 7, 5) | place(info.funct3, 12, 3) | place(in.rs1, 15, 5) |
           place(info.match_rs2 ? info.rs2sel : in.rs2, 20, 5) | place(info.funct7, 25, 7);
      break;
    case Format::kR4:
      w |= place(in.rd, 7, 5) | place(0, 12, 3) | place(in.rs1, 15, 5) | place(in.rs2, 20, 5) |
           place(0, 25, 2) | place(in.rs3, 27, 5);
      break;
    case Format::kI:
      assert(in.imm >= -2048 && in.imm <= 2047);
      w |= place(in.rd, 7, 5) | place(info.funct3, 12, 3) | place(in.rs1, 15, 5) |
           place(static_cast<uint32_t>(in.imm), 20, 12);
      break;
    case Format::kIShift:
      assert(in.imm >= 0 && in.imm < 32);
      w |= place(in.rd, 7, 5) | place(info.funct3, 12, 3) | place(in.rs1, 15, 5) |
           place(static_cast<uint32_t>(in.imm), 20, 5) | place(info.funct7, 25, 7);
      break;
    case Format::kS:
      assert(in.imm >= -2048 && in.imm <= 2047);
      w |= place(bits(static_cast<uint32_t>(in.imm), 0, 5), 7, 5) | place(info.funct3, 12, 3) |
           place(in.rs1, 15, 5) | place(in.rs2, 20, 5) |
           place(bits(static_cast<uint32_t>(in.imm), 5, 7), 25, 7);
      break;
    case Format::kB:
      assert(in.imm >= -4096 && in.imm <= 4095 && (in.imm & 1) == 0);
      w |= place(info.funct3, 12, 3) | place(in.rs1, 15, 5) | place(in.rs2, 20, 5) |
           encode_b_imm(in.imm);
      break;
    case Format::kU:
      w |= place(in.rd, 7, 5) | place(static_cast<uint32_t>(in.imm), 12, 20);
      break;
    case Format::kJ:
      assert(in.imm >= -(1 << 20) && in.imm < (1 << 20) && (in.imm & 1) == 0);
      w |= place(in.rd, 7, 5) | encode_j_imm(in.imm);
      break;
    case Format::kJr:
      assert(in.imm >= -(1 << 20) && in.imm < (1 << 20) && (in.imm & 1) == 0);
      w |= place(in.rs1, 7, 5) | encode_j_imm(in.imm);
      break;
    case Format::kCsr:
      w |= place(in.rd, 7, 5) | place(info.funct3, 12, 3) | place(in.rs1, 15, 5) |
           place(static_cast<uint32_t>(in.imm), 20, 12);
      break;
    case Format::kAmo:
      w |= place(in.rd, 7, 5) | place(info.funct3, 12, 3) | place(in.rs1, 15, 5) |
           place(in.rs2, 20, 5) | place(info.funct7, 25, 7);
      break;
    case Format::kSys:
      w |= place(info.funct3, 12, 3);
      break;
  }
  return w;
}

std::optional<Instr> decode(uint32_t w) {
  const uint8_t opcode = w & 0x7F;
  const uint8_t f3 = bits(w, 12, 3);
  const uint8_t f7 = bits(w, 25, 7);
  const uint8_t rs2f = bits(w, 20, 5);
  for (int i = 1; i < kNumOps; ++i) {
    const OpInfo& info = table()[static_cast<size_t>(i)];
    if (info.op == Op::kInvalid || info.opcode != opcode) continue;
    if (info.match_f3 && info.funct3 != f3) continue;
    if ((info.match_f7 || info.fmt == Format::kIShift || info.fmt == Format::kAmo) &&
        info.funct7 != (info.fmt == Format::kAmo ? (f7 & 0x7C) : f7))
      continue;
    if (info.fmt == Format::kR && info.match_f7 && info.funct7 != f7) continue;
    if (info.match_rs2 && info.rs2sel != rs2f) continue;
    Instr out;
    out.op = info.op;
    switch (info.fmt) {
      case Format::kR:
        out.rd = bits(w, 7, 5);
        out.rs1 = bits(w, 15, 5);
        out.rs2 = info.match_rs2 ? 0 : rs2f;
        break;
      case Format::kR4:
        out.rd = bits(w, 7, 5);
        out.rs1 = bits(w, 15, 5);
        out.rs2 = rs2f;
        out.rs3 = bits(w, 27, 5);
        break;
      case Format::kI:
        out.rd = bits(w, 7, 5);
        out.rs1 = bits(w, 15, 5);
        out.imm = sign_extend(bits(w, 20, 12), 12);
        break;
      case Format::kIShift:
        out.rd = bits(w, 7, 5);
        out.rs1 = bits(w, 15, 5);
        out.imm = static_cast<int32_t>(bits(w, 20, 5));
        break;
      case Format::kS:
        out.rs1 = bits(w, 15, 5);
        out.rs2 = rs2f;
        out.imm = sign_extend(bits(w, 25, 7) << 5 | bits(w, 7, 5), 12);
        break;
      case Format::kB:
        out.rs1 = bits(w, 15, 5);
        out.rs2 = rs2f;
        out.imm = decode_b_imm(w);
        break;
      case Format::kU:
        out.rd = bits(w, 7, 5);
        out.imm = static_cast<int32_t>(bits(w, 12, 20));
        break;
      case Format::kJ:
        out.rd = bits(w, 7, 5);
        out.imm = decode_j_imm(w);
        break;
      case Format::kJr:
        out.rs1 = bits(w, 7, 5);
        out.imm = decode_j_imm(w);
        break;
      case Format::kCsr:
        out.rd = bits(w, 7, 5);
        out.rs1 = bits(w, 15, 5);
        out.imm = static_cast<int32_t>(bits(w, 20, 12));
        break;
      case Format::kAmo:
        out.rd = bits(w, 7, 5);
        out.rs1 = bits(w, 15, 5);
        out.rs2 = rs2f;
        break;
      case Format::kSys:
        break;
    }
    return out;
  }
  return std::nullopt;
}

namespace {
const char* kXregNames[32] = {"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
                              "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
                              "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
}  // namespace

const char* xreg_name(unsigned index) {
  assert(index < 32);
  return kXregNames[index];
}

const char* freg_name(unsigned index) {
  static const char* names[32] = {"f0",  "f1",  "f2",  "f3",  "f4",  "f5",  "f6",  "f7",
                                  "f8",  "f9",  "f10", "f11", "f12", "f13", "f14", "f15",
                                  "f16", "f17", "f18", "f19", "f20", "f21", "f22", "f23",
                                  "f24", "f25", "f26", "f27", "f28", "f29", "f30", "f31"};
  assert(index < 32);
  return names[index];
}

std::optional<unsigned> xreg_by_name(const std::string& name) {
  for (unsigned i = 0; i < 32; ++i) {
    if (name == kXregNames[i]) return i;
  }
  if (name.size() >= 2 && name[0] == 'x') {
    unsigned v = 0;
    for (size_t i = 1; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') return std::nullopt;
      v = v * 10 + static_cast<unsigned>(name[i] - '0');
    }
    if (v < 32) return v;
  }
  if (name == "fp") return 8;
  return std::nullopt;
}

std::optional<unsigned> freg_by_name(const std::string& name) {
  if (name.size() >= 2 && name[0] == 'f') {
    unsigned v = 0;
    for (size_t i = 1; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') return std::nullopt;
      v = v * 10 + static_cast<unsigned>(name[i] - '0');
    }
    if (v < 32) return v;
  }
  return std::nullopt;
}

bool writes_freg(Op op) {
  switch (op) {
    case Op::kFlw:
    case Op::kFaddS:
    case Op::kFsubS:
    case Op::kFmulS:
    case Op::kFdivS:
    case Op::kFsqrtS:
    case Op::kFsgnjS:
    case Op::kFsgnjnS:
    case Op::kFsgnjxS:
    case Op::kFminS:
    case Op::kFmaxS:
    case Op::kFcvtSW:
    case Op::kFcvtSWu:
    case Op::kFmvWX:
    case Op::kFmaddS:
    case Op::kFmsubS:
    case Op::kFnmsubS:
    case Op::kFnmaddS:
      return true;
    default:
      return false;
  }
}

bool reads_freg_rs1(Op op) {
  switch (op) {
    case Op::kFaddS:
    case Op::kFsubS:
    case Op::kFmulS:
    case Op::kFdivS:
    case Op::kFsqrtS:
    case Op::kFsgnjS:
    case Op::kFsgnjnS:
    case Op::kFsgnjxS:
    case Op::kFminS:
    case Op::kFmaxS:
    case Op::kFcvtWS:
    case Op::kFcvtWuS:
    case Op::kFmvXW:
    case Op::kFclassS:
    case Op::kFeqS:
    case Op::kFltS:
    case Op::kFleS:
    case Op::kFmaddS:
    case Op::kFmsubS:
    case Op::kFnmsubS:
    case Op::kFnmaddS:
      return true;
    default:
      return false;
  }
}

bool reads_freg_rs2(Op op) {
  switch (op) {
    case Op::kFsw:
    case Op::kFaddS:
    case Op::kFsubS:
    case Op::kFmulS:
    case Op::kFdivS:
    case Op::kFsgnjS:
    case Op::kFsgnjnS:
    case Op::kFsgnjxS:
    case Op::kFminS:
    case Op::kFmaxS:
    case Op::kFeqS:
    case Op::kFltS:
    case Op::kFleS:
    case Op::kFmaddS:
    case Op::kFmsubS:
    case Op::kFnmsubS:
    case Op::kFnmaddS:
      return true;
    default:
      return false;
  }
}

bool reads_freg_rs3(Op op) {
  switch (op) {
    case Op::kFmaddS:
    case Op::kFmsubS:
    case Op::kFnmsubS:
    case Op::kFnmaddS:
      return true;
    default:
      return false;
  }
}

std::string to_string(const Instr& in) {
  const OpInfo& info = op_info(in.op);
  char buf[96];
  auto xr = [](unsigned r) { return xreg_name(r); };
  auto fr = [](unsigned r) { return freg_name(r); };
  const bool fd = writes_freg(in.op);
  const bool f1 = reads_freg_rs1(in.op);
  const bool f2 = reads_freg_rs2(in.op);
  switch (info.fmt) {
    case Format::kR:
      if (in.op == Op::kTmc || in.op == Op::kFsqrtS || in.op == Op::kFmvXW ||
          in.op == Op::kFmvWX || in.op == Op::kFclassS || in.op == Op::kFcvtWS ||
          in.op == Op::kFcvtWuS || in.op == Op::kFcvtSW || in.op == Op::kFcvtSWu) {
        if (in.op == Op::kTmc) {
          std::snprintf(buf, sizeof(buf), "%s %s", info.name, xr(in.rs1));
        } else {
          std::snprintf(buf, sizeof(buf), "%s %s, %s", info.name, fd ? fr(in.rd) : xr(in.rd),
                        f1 ? fr(in.rs1) : xr(in.rs1));
        }
      } else if (in.op == Op::kWspawn || in.op == Op::kBar) {
        std::snprintf(buf, sizeof(buf), "%s %s, %s", info.name, xr(in.rs1), xr(in.rs2));
      } else {
        std::snprintf(buf, sizeof(buf), "%s %s, %s, %s", info.name, fd ? fr(in.rd) : xr(in.rd),
                      f1 ? fr(in.rs1) : xr(in.rs1), f2 ? fr(in.rs2) : xr(in.rs2));
      }
      break;
    case Format::kR4:
      std::snprintf(buf, sizeof(buf), "%s %s, %s, %s, %s", info.name, fr(in.rd), fr(in.rs1),
                    fr(in.rs2), fr(in.rs3));
      break;
    case Format::kI:
      if (in.op == Op::kLb || in.op == Op::kLh || in.op == Op::kLw || in.op == Op::kLbu ||
          in.op == Op::kLhu || in.op == Op::kFlw || in.op == Op::kJalr) {
        std::snprintf(buf, sizeof(buf), "%s %s, %d(%s)", info.name, fd ? fr(in.rd) : xr(in.rd),
                      in.imm, xr(in.rs1));
      } else {
        std::snprintf(buf, sizeof(buf), "%s %s, %s, %d", info.name, xr(in.rd), xr(in.rs1), in.imm);
      }
      break;
    case Format::kIShift:
      std::snprintf(buf, sizeof(buf), "%s %s, %s, %d", info.name, xr(in.rd), xr(in.rs1), in.imm);
      break;
    case Format::kS:
      std::snprintf(buf, sizeof(buf), "%s %s, %d(%s)", info.name, f2 ? fr(in.rs2) : xr(in.rs2),
                    in.imm, xr(in.rs1));
      break;
    case Format::kB:
      std::snprintf(buf, sizeof(buf), "%s %s, %s, %d", info.name, xr(in.rs1), xr(in.rs2),
                    in.imm);
      break;
    case Format::kJr:
      std::snprintf(buf, sizeof(buf), "%s %s, %d", info.name, xr(in.rs1), in.imm);
      break;
    case Format::kU:
      std::snprintf(buf, sizeof(buf), "%s %s, %d", info.name, xr(in.rd), in.imm);
      break;
    case Format::kJ:
      if (in.op == Op::kJoin) {
        std::snprintf(buf, sizeof(buf), "%s %d", info.name, in.imm);
      } else {
        std::snprintf(buf, sizeof(buf), "%s %s, %d", info.name, xr(in.rd), in.imm);
      }
      break;
    case Format::kCsr:
      std::snprintf(buf, sizeof(buf), "%s %s, 0x%x, %s", info.name, xr(in.rd),
                    static_cast<unsigned>(in.imm), xr(in.rs1));
      break;
    case Format::kAmo:
      std::snprintf(buf, sizeof(buf), "%s %s, %s, (%s)", info.name, xr(in.rd), xr(in.rs2),
                    xr(in.rs1));
      break;
    case Format::kSys:
      std::snprintf(buf, sizeof(buf), "%s", info.name);
      break;
  }
  return buf;
}

}  // namespace fgpu::arch
