// Vortex-style soft-GPU ISA: RV32IM + F + A subset, extended with the four
// SIMT-control instructions the paper describes (Section II-D):
//
//   SPLIT  — marks a divergent branch; pushes reconvergence state on the
//            warp's IPDOM stack and deactivates the not-taken threads.
//   JOIN   — marks the reconvergence point; pops the IPDOM stack.
//   PRED   — loop-exit predication; deactivates finished threads and exits
//            the loop once no thread remains active.
//   TMC    — thread-mask control; sets the warp's active-thread mask.
//
// plus WSPAWN (warp spawn) and BAR (barrier), which the Vortex software
// stack uses for work-group scheduling and OpenCL barriers.
//
// Divergence-control semantics (a documented simplification of Vortex's
// scheme that preserves its cost model — extra instructions and IPDOM
// stack traffic on divergence — while keeping a single PC per warp):
//
//   SPLIT rs1, else_off   (custom-1, J-type immediate range)
//     taken    = tmask & (lane value of rs1 != 0)
//     nottaken = tmask & ~taken
//     if nottaken empty:        push UNIFORM;                 fall through
//     elif taken empty:         push UNIFORM;                 jump else
//     else: push RESTORE{tmask}; push ELSE{nottaken, pc_else};
//           tmask = taken;                                    fall through
//
//   JOIN merge_off        (J-type custom-2)
//     pop:
//       UNIFORM        -> jump merge
//       ELSE{m, pc}    -> tmask = m; jump pc  (start the else side)
//       RESTORE{m}     -> tmask = m; jump merge
//
//   PRED rs1, exit_off    (custom-2 funct-distinguished, J-type range)
//     alive = tmask & (rs1 != 0)
//     if alive empty: jump exit (tmask unchanged; compiler restores with TMC)
//     else tmask = alive; fall through
//
//   TMC rs1               tmask = first-active-lane value of rs1
//   WSPAWN rs1, rs2       spawn rs1 warps at pc rs2, each with tmask=1
//   BAR rs1, rs2          block warp on barrier id rs1 until rs2 warps arrive
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bits.hpp"

namespace fgpu::arch {

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

enum class Op : uint16_t {
  kInvalid = 0,
  // RV32I
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu, kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall,
  kCsrrw, kCsrrs, kCsrrc,
  // RV32M
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // RV32A (subset used by OpenCL atomics)
  kLrW, kScW, kAmoswapW, kAmoaddW, kAmoandW, kAmoorW, kAmoxorW, kAmominW, kAmomaxW,
  // RV32F (subset)
  kFlw, kFsw,
  kFaddS, kFsubS, kFmulS, kFdivS, kFsqrtS,
  kFsgnjS, kFsgnjnS, kFsgnjxS, kFminS, kFmaxS,
  kFcvtWS, kFcvtWuS, kFcvtSW, kFcvtSWu,
  kFmvXW, kFmvWX, kFclassS,
  kFeqS, kFltS, kFleS,
  kFmaddS, kFmsubS, kFnmsubS, kFnmaddS,
  // Vortex SIMT extension
  kTmc, kWspawn, kSplit, kJoin, kPred, kBar,
  kCount,
};

constexpr int kNumOps = static_cast<int>(Op::kCount);

// Instruction encoding formats.
enum class Format : uint8_t {
  kR,       // rd, rs1, rs2          (funct7 | funct3)
  kR4,      // rd, rs1, rs2, rs3     (fused multiply-add)
  kI,       // rd, rs1, imm12
  kIShift,  // rd, rs1, shamt5       (funct7 | funct3)
  kS,       // rs1, rs2, imm12       (stores)
  kB,       // rs1, rs2, imm13       (branches; also SPLIT/PRED with rs2=0)
  kU,       // rd, imm20             (lui/auipc)
  kJ,       // rd, imm21             (jal; also JOIN with rd=0)
  kJr,      // rs1, imm21            (SPLIT/PRED: J-type range, rs1 in rd slot)
  kCsr,     // rd, rs1, csr12
  kAmo,     // rd, rs1, rs2          (funct5 | aq/rl in [26:25])
  kSys,     // no operands (ecall/fence)
};

// Functional-unit class; drives issue/latency modelling in the simulator
// and the per-op area cost in the HLS area model.
enum class FuClass : uint8_t { kAlu, kMulDiv, kFpu, kLsu, kSfu, kBranch, kCsr, kSimt };

struct OpInfo {
  Op op = Op::kInvalid;
  const char* name = "";
  Format fmt = Format::kSys;
  uint8_t opcode = 0;  // low 7 bits
  uint8_t funct3 = 0;
  uint8_t funct7 = 0;   // or funct5<<2 for AMO, funct2 for R4
  bool match_f3 = true;   // decode must match funct3
  bool match_f7 = false;  // decode must match funct7
  uint8_t rs2sel = 0;     // fixed rs2 field (FCVT/FSQRT selectors)
  bool match_rs2 = false;
  FuClass fu = FuClass::kAlu;
  uint8_t latency = 1;  // execute latency in cycles (simulator)
};

// Returns the static descriptor for `op`.
const OpInfo& op_info(Op op);

// Looks up an op by mnemonic (lower-case, e.g. "addi", "fadd.s", "split").
std::optional<Op> op_by_name(const std::string& name);

// ---------------------------------------------------------------------------
// Decoded instruction
// ---------------------------------------------------------------------------

struct Instr {
  Op op = Op::kInvalid;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  uint8_t rs3 = 0;
  int32_t imm = 0;  // sign-extended branch/jump/load offset, or CSR number

  bool operator==(const Instr&) const = default;
};

// Encodes a decoded instruction into a 32-bit word. Asserts that immediates
// fit their fields (the assembler validates ranges before calling this).
uint32_t encode(const Instr& instr);

// Decodes a 32-bit word; returns nullopt for unknown encodings.
std::optional<Instr> decode(uint32_t word);

// Renders an instruction in assembler syntax, e.g. "addi x5, x0, 42".
std::string to_string(const Instr& instr);

// Register names: x-register ABI name ("zero", "ra", "sp", "t0", ...) and
// plain f-register names ("f0".."f31").
const char* xreg_name(unsigned index);
const char* freg_name(unsigned index);
std::optional<unsigned> xreg_by_name(const std::string& name);
std::optional<unsigned> freg_by_name(const std::string& name);

// True if `op` reads/writes the FP register file in rd/rs slots.
bool writes_freg(Op op);
bool reads_freg_rs1(Op op);
bool reads_freg_rs2(Op op);
bool reads_freg_rs3(Op op);

// ---------------------------------------------------------------------------
// CSRs (Vortex-style machine-information registers)
// ---------------------------------------------------------------------------

constexpr uint32_t kCsrThreadId = 0xCC0;    // lane index within the warp
constexpr uint32_t kCsrWarpId = 0xCC1;      // warp index within the core
constexpr uint32_t kCsrCoreId = 0xCC2;      // core index within the cluster
constexpr uint32_t kCsrTmask = 0xCC3;       // current active-thread mask
constexpr uint32_t kCsrNumThreads = 0xFC0;  // threads per warp (T)
constexpr uint32_t kCsrNumWarps = 0xFC1;    // warps per core (W)
constexpr uint32_t kCsrNumCores = 0xFC2;    // cores (C)
constexpr uint32_t kCsrCycle = 0xC00;
constexpr uint32_t kCsrInstret = 0xC02;

// ---------------------------------------------------------------------------
// Memory map shared by the kernel ABI, runtime and simulator
// ---------------------------------------------------------------------------

// Code is loaded at kCodeBase; the runtime writes the kernel-argument block
// at kArgBase (mirroring Vortex's KERNEL_ARG_DEV_MEM_ADDR); device buffers
// are allocated from kHeapBase; per-hardware-thread stacks grow down from
// kStackTop; kLocalBase maps the per-core shared (OpenCL __local) memory.
constexpr uint32_t kCodeBase = 0x0001'0000;
constexpr uint32_t kArgBase = 0x1000'0000;
constexpr uint32_t kHeapBase = 0x2000'0000;
constexpr uint32_t kStackTop = 0x6000'0000;
constexpr uint32_t kStackSizePerThread = 0x1'0000;  // 64 KiB
constexpr uint32_t kLocalBase = 0x7000'0000;
constexpr uint32_t kLocalSize = 0x0004'0000;  // 256 KiB per core

// ECALL convention (a7 = function, a0.. = args); the simulator forwards
// these to a host handler, mirroring how the Vortex runtime implements
// OpenCL printf via a host communication function (Section IV-A).
constexpr uint32_t kEcallPutChar = 2;   // a0 = character
constexpr uint32_t kEcallPrintInt = 3;  // a0 = value
constexpr uint32_t kEcallPrintFlt = 4;  // a0 = float bits
constexpr uint32_t kEcallPrintStr = 5;  // a0 = device address of NUL string

}  // namespace fgpu::arch
