// Minimal streaming JSON writer shared by the observability layer (Chrome
// trace export and the versioned stats schema, see OBSERVABILITY.md).
//
// Deterministic by construction: fields are emitted in call order, doubles
// are formatted with a fixed printf recipe, and no host state (time, locale,
// pointers) leaks into the output — the property the suite's determinism
// test (jobs=1 vs jobs=N byte-identical stats) relies on.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fgpu::trace {

// Escapes `raw` for inclusion inside a JSON string literal (quotes not
// included): ", \, and control characters below 0x20 become escape
// sequences; everything else (including UTF-8 bytes) passes through.
std::string json_escape(std::string_view raw);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = false) : os_(os), pretty_(pretty) {}

  // Containers ------------------------------------------------------------
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // `key(...)` names the next value inside an object.
  JsonWriter& key(std::string_view name);

  // Values ----------------------------------------------------------------
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(uint64_t v);
  JsonWriter& value(int64_t v);
  JsonWriter& value(uint32_t v) { return value(static_cast<uint64_t>(v)); }
  JsonWriter& value(int32_t v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(double v);

  // key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  void separate();  // comma/newline bookkeeping before a new element
  void indent();

  std::ostream& os_;
  bool pretty_ = false;
  // One entry per open container: true until the first element is written.
  std::vector<bool> first_{true};
  bool pending_key_ = false;
};

}  // namespace fgpu::trace
