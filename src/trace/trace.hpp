// trace:: — low-overhead structured event recording for the simulators.
//
// Design (see OBSERVABILITY.md and DESIGN.md "Trace & metrics architecture"):
//
//   * Events are fixed-size PODs appended to a per-sink vector; names,
//     categories and argument keys are `const char*` — string literals or
//     strings interned on the sink — so recording an event is a bounds
//     check, a few stores, and no allocation in the steady state.
//   * Instrumentation sites use the FGPU_TRACE_* macros. They test a
//     thread-local "current sink" pointer, so the hot simulation loop pays
//     one predictable branch when tracing is off — and nothing at all when
//     the library is compiled with FGPU_TRACE_ENABLED=0 (CMake option
//     -DFGPU_TRACE=OFF), which compiles the macros out entirely.
//   * Each sink is single-threaded by design: the parallel suite runner
//     installs one sink per worker thread (thread_local current()), and the
//     exporter merges sinks as separate Chrome processes.
//   * Timestamps are simulated cycles. The exporter writes them as
//     microseconds (1 cycle == 1 us) so Chrome's timeline axis reads as
//     cycles directly. A per-sink time base turns per-launch cycle counts
//     (each kernel restarts at cycle 0) into one monotonic timeline.
//
// Export target: Chrome's trace_event JSON ("catapult") format — load the
// file at chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fgpu::trace {

#ifndef FGPU_TRACE_ENABLED
#define FGPU_TRACE_ENABLED 1
#endif

inline constexpr bool kEnabled = FGPU_TRACE_ENABLED != 0;

// Chrome trace_event phase characters (the subset we emit).
enum class Phase : char {
  kComplete = 'X',  // name + ts + dur
  kInstant = 'i',   // point event
  kCounter = 'C',   // named series sampled over time
  kBegin = 'B',
  kEnd = 'E',
};

struct Event {
  static constexpr uint32_t kMaxArgs = 6;

  const char* name = nullptr;  // literal or sink-interned
  const char* cat = nullptr;
  Phase phase = Phase::kInstant;
  uint32_t tid = 0;    // simulated thread (core id, warp id, ...)
  uint64_t ts = 0;     // cycles, already including the sink's time base
  uint64_t dur = 0;    // kComplete only
  uint32_t nargs = 0;
  const char* arg_keys[kMaxArgs] = {};
  uint64_t arg_vals[kMaxArgs] = {};
};

// Span of (key, value) pairs accepted by the record helpers.
struct Args {
  const char* keys[Event::kMaxArgs];
  uint64_t vals[Event::kMaxArgs];
  uint32_t count = 0;

  Args() = default;
  Args(std::initializer_list<std::pair<const char*, uint64_t>> list) {
    for (const auto& [k, v] : list) {
      if (count == Event::kMaxArgs) break;
      keys[count] = k;
      vals[count] = v;
      ++count;
    }
  }
};

class Sink {
 public:
  Sink() { events_.reserve(1024); }

  // Recording --------------------------------------------------------------
  // `cycle` is launch-local; the sink adds its time base.
  void complete(const char* name, const char* cat, uint32_t tid, uint64_t cycle, uint64_t dur,
                const Args& args = {}) {
    push(name, cat, Phase::kComplete, tid, cycle, dur, args);
  }
  void instant(const char* name, const char* cat, uint32_t tid, uint64_t cycle,
               const Args& args = {}) {
    push(name, cat, Phase::kInstant, tid, cycle, 0, args);
  }
  // One counter event carries up to kMaxArgs series values; Chrome stacks
  // them under `name`.
  void counter(const char* name, uint32_t tid, uint64_t cycle, const Args& args) {
    push(name, "counter", Phase::kCounter, tid, cycle, 0, args);
  }

  // Interns a runtime string (kernel or benchmark names); returned pointer
  // is stable for the sink's lifetime.
  const char* intern(std::string_view s);

  // Names a simulated thread in the viewer ("core0", "hls", ...).
  void set_thread_name(uint32_t tid, std::string name) { thread_names_[tid] = std::move(name); }

  // Timeline base: launch-local cycles are offset by this. The device
  // advances it past each kernel so successive launches do not overlap.
  uint64_t time_base() const { return time_base_; }
  void set_time_base(uint64_t base) { time_base_ = base; }

  // Introspection / export -------------------------------------------------
  const std::vector<Event>& events() const { return events_; }
  // std::map: deterministic metadata order in the exported file.
  const std::map<uint32_t, std::string>& thread_names() const { return thread_names_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() {
    events_.clear();
    time_base_ = 0;
  }

 private:
  void push(const char* name, const char* cat, Phase phase, uint32_t tid, uint64_t cycle,
            uint64_t dur, const Args& args) {
    Event e;
    e.name = name;
    e.cat = cat;
    e.phase = phase;
    e.tid = tid;
    e.ts = time_base_ + cycle;
    e.dur = dur;
    e.nargs = args.count;
    for (uint32_t i = 0; i < args.count; ++i) {
      e.arg_keys[i] = args.keys[i];
      e.arg_vals[i] = args.vals[i];
    }
    events_.push_back(e);
  }

  std::vector<Event> events_;
  std::deque<std::string> interned_;  // deque: stable addresses
  std::map<std::string, const char*, std::less<>> intern_index_;
  std::map<uint32_t, std::string> thread_names_;
  uint64_t time_base_ = 0;
};

// Thread-local current sink -------------------------------------------------

// The installed sink for this thread, or nullptr when tracing is off.
Sink* current();
// Returns the previously installed sink (for save/restore).
Sink* set_current(Sink* sink);

// RAII installer used around a traced region (one benchmark run).
class ScopedSink {
 public:
  explicit ScopedSink(Sink* sink) : previous_(set_current(sink)) {}
  ~ScopedSink() { set_current(previous_); }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Sink* previous_;
};

// Chrome trace_event export -------------------------------------------------

// One viewer "process" per sink (the merged view the parallel runner writes:
// pid = benchmark index, process_name = benchmark name).
struct Process {
  uint32_t pid = 1;
  std::string name;
  const Sink* sink = nullptr;
};

void write_chrome_trace(std::ostream& os, const std::vector<Process>& processes);

// Single-sink convenience.
void write_chrome_trace(std::ostream& os, const Sink& sink, const std::string& process_name);

// Instrumentation macros ----------------------------------------------------
//
// Args evaluate only when a sink is installed; with FGPU_TRACE_ENABLED=0
// they compile to nothing (arguments unevaluated).

#if FGPU_TRACE_ENABLED
#define FGPU_TRACE_ACTIVE() (::fgpu::trace::current() != nullptr)
#define FGPU_TRACE_INSTANT(name, cat, tid, cycle, ...)                               \
  do {                                                                               \
    if (::fgpu::trace::Sink* fgpu_trace_s = ::fgpu::trace::current()) {              \
      fgpu_trace_s->instant((name), (cat), (tid), (cycle), ::fgpu::trace::Args{__VA_ARGS__}); \
    }                                                                                \
  } while (0)
#define FGPU_TRACE_COUNTER(name, tid, cycle, ...)                                    \
  do {                                                                               \
    if (::fgpu::trace::Sink* fgpu_trace_s = ::fgpu::trace::current()) {              \
      fgpu_trace_s->counter((name), (tid), (cycle), ::fgpu::trace::Args{__VA_ARGS__}); \
    }                                                                                \
  } while (0)
#else
#define FGPU_TRACE_ACTIVE() (false)
#define FGPU_TRACE_INSTANT(name, cat, tid, cycle, ...) ((void)0)
#define FGPU_TRACE_COUNTER(name, tid, cycle, ...) ((void)0)
#endif

// Cycle granularity of periodic counter samples (stall attribution, cache
// hit/miss/eviction tracks). Power of two so the modulo folds to a mask.
inline constexpr uint64_t kCounterBucketCycles = 1024;

}  // namespace fgpu::trace
