#include "trace/trace.hpp"

#include "trace/json.hpp"

namespace fgpu::trace {

namespace {
thread_local Sink* g_current_sink = nullptr;
}  // namespace

Sink* current() { return g_current_sink; }

Sink* set_current(Sink* sink) {
  Sink* previous = g_current_sink;
  g_current_sink = sink;
  return previous;
}

const char* Sink::intern(std::string_view s) {
  auto it = intern_index_.find(s);
  if (it != intern_index_.end()) return it->second;
  interned_.emplace_back(s);
  const char* stable = interned_.back().c_str();
  intern_index_.emplace(interned_.back(), stable);
  return stable;
}

namespace {

void write_event(JsonWriter& w, const Event& e, uint32_t pid) {
  w.begin_object();
  w.field("name", e.name == nullptr ? "" : e.name);
  w.field("cat", e.cat == nullptr ? "" : e.cat);
  const char phase[2] = {static_cast<char>(e.phase), '\0'};
  w.field("ph", phase);
  w.field("ts", e.ts);
  if (e.phase == Phase::kComplete) w.field("dur", e.dur);
  if (e.phase == Phase::kInstant) w.field("s", "t");  // thread-scoped instant
  w.field("pid", pid);
  w.field("tid", e.tid);
  if (e.nargs > 0) {
    w.key("args").begin_object();
    for (uint32_t i = 0; i < e.nargs; ++i) {
      w.field(e.arg_keys[i] == nullptr ? "" : e.arg_keys[i], e.arg_vals[i]);
    }
    w.end_object();
  }
  w.end_object();
}

void write_metadata(JsonWriter& w, const char* name, uint32_t pid, uint32_t tid,
                    const std::string& value) {
  w.begin_object();
  w.field("name", name);
  w.field("ph", "M");
  w.field("pid", pid);
  w.field("tid", tid);
  w.key("args").begin_object().field("name", value).end_object();
  w.end_object();
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<Process>& processes) {
  JsonWriter w(os);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const auto& proc : processes) {
    if (proc.sink == nullptr) continue;
    if (!proc.name.empty()) write_metadata(w, "process_name", proc.pid, 0, proc.name);
    for (const auto& [tid, name] : proc.sink->thread_names()) {
      write_metadata(w, "thread_name", proc.pid, tid, name);
    }
    for (const Event& e : proc.sink->events()) write_event(w, e, proc.pid);
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_chrome_trace(std::ostream& os, const Sink& sink, const std::string& process_name) {
  write_chrome_trace(os, {Process{1, process_name, &sink}});
}

}  // namespace fgpu::trace
