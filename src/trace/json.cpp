#include "trace/json.hpp"

#include <cassert>
#include <cstdio>

namespace fgpu::trace {

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indent() {
  if (!pretty_) return;
  os_ << '\n';
  for (size_t i = 1; i < first_.size(); ++i) os_ << "  ";
}

void JsonWriter::separate() {
  if (pending_key_) {
    // The comma (if any) was written by key(); the value follows directly.
    pending_key_ = false;
    return;
  }
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  if (first_.size() > 1) indent();
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  os_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(first_.size() > 1 && "end_object without begin_object");
  const bool was_empty = first_.back();
  first_.pop_back();
  if (!was_empty) indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  os_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(first_.size() > 1 && "end_array without begin_array");
  const bool was_empty = first_.back();
  first_.pop_back();
  if (!was_empty) indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  assert(!pending_key_ && "two key() calls without a value");
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  indent();
  os_ << '"' << json_escape(name) << "\":";
  if (pretty_) os_ << ' ';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  os_ << '"' << json_escape(s) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separate();
  os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(uint64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(int64_t v) {
  separate();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  // Fixed recipe, locale-independent digits: shortest-ish round-trippable
  // form. %.9g keeps float-derived values exact and is stable across
  // invocations of the same binary (the determinism contract).
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os_ << buf;
  return *this;
}

}  // namespace fgpu::trace
