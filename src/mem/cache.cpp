#include "mem/cache.hpp"

#include <cassert>

#include "trace/trace.hpp"

namespace fgpu::mem {

Cache::Cache(CacheConfig config, MemPort* lower)
    : config_(std::move(config)), lower_(lower), trace_name_(config_.name) {
  assert(is_pow2(config_.size_bytes) && "cache size must be a power of two");
  assert(config_.num_lines() % config_.ways == 0);
  lines_.resize(config_.num_lines());
  set_conflicts_.resize(config_.num_sets(), 0);
  lower_->set_response_handler(
      [this](uint64_t id, bool was_write) { on_lower_response(id, was_write); });
}

void Cache::flush() {
  for (auto& line : lines_) line = LineState{};
}

void Cache::reset() {
  flush();
  reset_stats();
  hit_queue_.clear();
  writeback_queue_.clear();
  mshrs_.clear();
  fill_ids_.clear();
  now_ = 0;
  lru_counter_ = 0;
  accepted_this_cycle_ = 0;
  mshr_used_ = 0;
  mshr_unsent_ = 0;
  next_lower_id_ = 1;
}

Cache::LineState* Cache::lookup(uint32_t line_addr) {
  const uint32_t set = set_of(line_addr);
  const uint32_t tag = tag_of(line_addr);
  for (uint32_t w = 0; w < config_.ways; ++w) {
    LineState& line = lines_[set * config_.ways + w];
    if (line.valid && line.tag == tag) return &line;
  }
  return nullptr;
}

void Cache::install(uint32_t line_addr) {
  const uint32_t set = set_of(line_addr);
  LineState* victim = nullptr;
  for (uint32_t w = 0; w < config_.ways; ++w) {
    LineState& line = lines_[set * config_.ways + w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (victim == nullptr || line.lru < victim->lru) victim = &line;
  }
  if (victim->valid) {
    ++stats_.evictions;
    ++set_conflicts_[set];
    if (victim->dirty) {
      ++stats_.writebacks;
      const uint32_t victim_line = victim->tag * config_.num_sets() + set;
      writeback_queue_.push_back(
          MemRequest{.id = 0, .addr = victim_line << kLineShift, .is_write = true});
    }
  }
  victim->tag = tag_of(line_addr);
  victim->valid = true;
  victim->dirty = false;
  victim->lru = ++lru_counter_;
}

bool Cache::can_accept() const {
  if (accepted_this_cycle_ >= config_.ports) return false;
  // Must be able to allocate an MSHR in the worst case (miss). This is
  // conservative when the incoming request would merge into an existing
  // MSHR, but that is exactly the back-pressure behaviour that produces
  // LSU stalls in the soft GPU under high warp/thread counts (paper §III-C).
  return mshr_used_ < config_.mshrs;
}

void Cache::send(const MemRequest& req) {
  ++accepted_this_cycle_;
  const uint32_t line_addr = line_of(req.addr);
  if (req.is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }

  // Already being fetched? Merge into the MSHR (no extra lower traffic).
  for (auto& mshr : mshrs_) {
    if ((!mshr.waiters.empty() || mshr.fill_sent) && mshr.line_addr == line_addr) {
      ++stats_.mshr_merges;
      ++stats_.misses;
      if (profiler_) {
        profiler_->on_merge(line_addr, req.pc, static_cast<MissClass>(mshr.miss_class));
      }
      mshr.waiters.push_back(req);
      return;
    }
  }

  if (LineState* line = lookup(line_addr)) {
    ++stats_.hits;
    if (profiler_) profiler_->on_access(line_addr, req.pc, /*is_miss=*/false);
    line->lru = ++lru_counter_;
    if (req.is_write) line->dirty = true;
    hit_queue_.push_back(PendingResponse{req, now_ + config_.hit_latency});
    return;
  }

  ++stats_.misses;
  MissClass miss_class{};
  if (profiler_) miss_class = profiler_->on_access(line_addr, req.pc, /*is_miss=*/true);
  // Allocate an MSHR; caller guaranteed availability via can_accept().
  Mshr* slot = nullptr;
  for (auto& mshr : mshrs_) {
    if (mshr.waiters.empty() && !mshr.fill_sent) {
      slot = &mshr;
      break;
    }
  }
  if (slot == nullptr) {
    assert(mshrs_.size() < config_.mshrs && "send() called without can_accept()");
    mshrs_.push_back(Mshr{});
    slot = &mshrs_.back();
  }
  slot->line_addr = line_addr;
  slot->fill_sent = false;
  slot->miss_class = static_cast<uint8_t>(miss_class);
  slot->waiters.clear();
  slot->waiters.push_back(req);
  ++mshr_used_;
  ++mshr_unsent_;
  if (profiler_) profiler_->on_mshr_change(mshr_used_, now_);
}

void Cache::on_lower_response(uint64_t id, bool /*was_write*/) {
  auto it = fill_ids_.find(id);
  if (it == fill_ids_.end()) return;  // writeback ack; nothing to do
  const uint32_t line_addr = it->second;
  fill_ids_.erase(it);
  install(line_addr);
  for (auto& mshr : mshrs_) {
    if (mshr.fill_sent && mshr.line_addr == line_addr) {
      LineState* line = lookup(line_addr);
      for (const auto& waiter : mshr.waiters) {
        if (waiter.is_write && line != nullptr) line->dirty = true;
        if (handler_) handler_(waiter.id, waiter.is_write);
      }
      mshr.waiters.clear();
      mshr.fill_sent = false;
      --mshr_used_;
      // Defer the occupancy transition to this cache's tick of the same
      // cycle: responses arrive while now_ still holds the last ticked
      // cycle, and how stale that is depends on idle skipping — charging
      // here would make the histogram differ between skip modes.
      mshr_profile_dirty_ = true;
      break;
    }
  }
}

// Bucketed counter samples of the cumulative hit/miss/eviction totals —
// bounded trace volume regardless of traffic, and only when totals moved.
void Cache::trace_counters(uint64_t cycle) {
  trace::Sink* sink = trace::current();
  if (sink == nullptr) return;
  const uint64_t total = stats_.hits + stats_.misses + stats_.evictions + stats_.writebacks;
  if (total == trace_last_total_) return;
  trace_last_total_ = total;
  // Interned: the sink may outlive this cache.
  sink->counter(sink->intern(trace_name_), trace_tid_, cycle,
                {{"hits", stats_.hits},
                 {"misses", stats_.misses},
                 {"evictions", stats_.evictions},
                 {"writebacks", stats_.writebacks},
                 {"mshr_merges", stats_.mshr_merges},
                 {"mshr_used", mshr_used_}});
}

void Cache::tick(uint64_t cycle) {
  if constexpr (trace::kEnabled) {
    if ((cycle & (trace::kCounterBucketCycles - 1)) == 0) trace_counters(cycle);
  }
  now_ = cycle;
  accepted_this_cycle_ = 0;
  if (profiler_ && mshr_profile_dirty_) {
    profiler_->on_mshr_change(mshr_used_, now_);
    mshr_profile_dirty_ = false;
  }
  // Fast path: nothing queued anywhere — the common case for an idle cache.
  if (hit_queue_.empty() && writeback_queue_.empty() && mshr_unsent_ == 0) return;

  // Drain hit responses whose latency elapsed.
  while (!hit_queue_.empty() && hit_queue_.front().ready_cycle <= now_) {
    const PendingResponse resp = hit_queue_.front();
    hit_queue_.pop_front();
    if (handler_) handler_(resp.req.id, resp.req.is_write);
  }

  // Writebacks take priority on the lower port (they free victim lines).
  while (!writeback_queue_.empty() && lower_->can_accept()) {
    lower_->send(writeback_queue_.front());
    writeback_queue_.pop_front();
  }

  // Issue line fills for MSHRs that have not sent one yet.
  if (mshr_unsent_ > 0) {
    for (auto& mshr : mshrs_) {
      if (!mshr.waiters.empty() && !mshr.fill_sent) {
        if (!lower_->can_accept()) break;
        const uint64_t id = next_lower_id_++;
        fill_ids_[id] = mshr.line_addr;
        // The fill carries the primary waiter's PC so lower-level misses
        // stay attributable to the instruction that started the chain.
        lower_->send(MemRequest{.id = id,
                                .addr = mshr.line_addr << kLineShift,
                                .is_write = false,
                                .pc = mshr.waiters.front().pc});
        mshr.fill_sent = true;
        --mshr_unsent_;
      }
    }
  }
}

uint64_t Cache::next_event_cycle() const {
  // Unsent lower-level traffic retries every cycle (its send time depends
  // on lower-level back-pressure we cannot predict): next tick is an event.
  if (!writeback_queue_.empty() || mshr_unsent_ > 0) return now_ + 1;
  // Hit responses are drained front-gated in FIFO order, and ready cycles
  // are pushed in nondecreasing order (now_ + hit_latency), so the front
  // holds the earliest maturity.
  if (!hit_queue_.empty()) return std::max(hit_queue_.front().ready_cycle, now_ + 1);
  return kNoEvent;
}

}  // namespace fgpu::mem
