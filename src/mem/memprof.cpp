#include "mem/memprof.hpp"

#include <algorithm>

namespace fgpu::mem {

uint32_t reuse_bucket(uint64_t distance) {
  if (distance == 0) return 0;
  uint32_t bucket = 1;
  while (bucket + 1 < kReuseBuckets && distance >= (1ull << bucket)) ++bucket;
  return bucket;
}

// ---------------------------------------------------------------------------
// StackDistance

void StackDistance::bit_add(uint32_t pos, int delta) {
  for (; pos < tree_.size(); pos += pos & (0u - pos)) {
    tree_[pos] = static_cast<uint32_t>(static_cast<int64_t>(tree_[pos]) + delta);
  }
}

uint64_t StackDistance::bit_sum(uint32_t pos) const {
  uint64_t sum = 0;
  for (; pos > 0; pos -= pos & (0u - pos)) sum += tree_[pos];
  return sum;
}

void StackDistance::compact() {
  // Reassign timestamps 1..n preserving recency order; memory stays
  // proportional to the number of distinct live lines.
  std::vector<std::pair<uint32_t, uint32_t>> live;  // (old timestamp, line)
  live.reserve(last_pos_.size());
  for (const auto& [line, pos] : last_pos_) live.emplace_back(pos, line);
  std::sort(live.begin(), live.end());
  const size_t capacity = std::max<size_t>(64, live.size() * 2);
  tree_.assign(capacity + 1, 0);
  time_ = 0;
  for (const auto& [old_pos, line] : live) {
    last_pos_[line] = ++time_;
    bit_add(time_, +1);
  }
}

uint64_t StackDistance::access(uint32_t line_addr) {
  // Compact before touching the tree: compacting after the lookup below
  // would resurrect the line's just-removed timestamp from last_pos_,
  // leaving a phantom live bit that shrinks later distances.
  if (time_ + 1 >= tree_.size()) compact();
  uint64_t distance = kCold;
  const auto it = last_pos_.find(line_addr);
  if (it != last_pos_.end()) {
    // Live timestamps strictly newer than this line's previous access =
    // distinct other lines touched since (its own timestamp is counted by
    // bit_sum(pos), so it cancels out of the subtraction).
    distance = static_cast<uint64_t>(last_pos_.size()) - bit_sum(it->second);
    bit_add(it->second, -1);
  }
  ++time_;
  bit_add(time_, +1);
  last_pos_[line_addr] = time_;
  return distance;
}

void StackDistance::clear() {
  last_pos_.clear();
  tree_.clear();
  time_ = 0;
}

// ---------------------------------------------------------------------------
// Profile aggregates

uint64_t CacheMemProfile::reuse_total() const {
  uint64_t total = cold;
  for (const uint64_t count : reuse) total += count;
  return total;
}

void CacheMemProfile::merge(const CacheMemProfile& other) {
  shadow_lines = std::max(shadow_lines, other.shadow_lines);
  accesses += other.accesses;
  misses += other.misses;
  cold += other.cold;
  classes += other.classes;
  for (uint32_t i = 0; i < kReuseBuckets; ++i) reuse[i] += other.reuse[i];
  for (const auto& [tag, cls] : other.by_tag) by_tag[tag] += cls;
  if (mshr_cycles.size() < other.mshr_cycles.size()) {
    mshr_cycles.resize(other.mshr_cycles.size(), 0);
  }
  for (size_t i = 0; i < other.mshr_cycles.size(); ++i) {
    mshr_cycles[i] += other.mshr_cycles[i];
  }
}

uint64_t DramChannelProfile::busy_cycles() const {
  uint64_t busy = 0;
  for (size_t depth = 1; depth < depth_cycles.size(); ++depth) busy += depth_cycles[depth];
  return busy;
}

uint64_t DramChannelProfile::weighted_depth() const {
  uint64_t weighted = 0;
  for (size_t depth = 1; depth < depth_cycles.size(); ++depth) {
    weighted += depth * depth_cycles[depth];
  }
  return weighted;
}

void DramChannelProfile::merge(const DramChannelProfile& other) {
  reads += other.reads;
  writes += other.writes;
  if (depth_cycles.size() < other.depth_cycles.size()) {
    depth_cycles.resize(other.depth_cycles.size(), 0);
  }
  for (size_t i = 0; i < other.depth_cycles.size(); ++i) {
    depth_cycles[i] += other.depth_cycles[i];
  }
}

uint64_t DramMemProfile::total_requests() const {
  uint64_t total = 0;
  for (const auto& channel : channels) total += channel.requests();
  return total;
}

double DramMemProfile::imbalance() const {
  const uint64_t total = total_requests();
  if (total == 0 || channels.empty()) return 0.0;
  uint64_t peak = 0;
  for (const auto& channel : channels) peak = std::max(peak, channel.requests());
  const double mean = static_cast<double>(total) / static_cast<double>(channels.size());
  return static_cast<double>(peak) / mean;
}

void DramMemProfile::merge(const DramMemProfile& other) {
  if (channels.size() < other.channels.size()) channels.resize(other.channels.size());
  for (size_t i = 0; i < other.channels.size(); ++i) channels[i].merge(other.channels[i]);
}

void MemHierarchyProfile::merge(const MemHierarchyProfile& other) {
  enabled = enabled || other.enabled;
  l1d.merge(other.l1d);
  l1i.merge(other.l1i);
  l2.merge(other.l2);
  dram.merge(other.dram);
}

// ---------------------------------------------------------------------------
// CacheProfiler

CacheProfiler::CacheProfiler(uint32_t shadow_lines) { profile_.shadow_lines = shadow_lines; }

MissClass CacheProfiler::classify(uint64_t distance) const {
  if (distance == StackDistance::kCold) return MissClass::kCompulsory;
  return distance < profile_.shadow_lines ? MissClass::kConflict : MissClass::kCapacity;
}

void CacheProfiler::record_reuse(uint64_t distance) {
  ++profile_.accesses;
  if (distance == StackDistance::kCold) {
    ++profile_.cold;
  } else {
    ++profile_.reuse[reuse_bucket(distance)];
  }
}

MissClass CacheProfiler::on_access(uint32_t line_addr, uint32_t tag, bool is_miss) {
  const uint64_t distance = stack_.access(line_addr);
  record_reuse(distance);
  const MissClass cls = classify(distance);
  if (is_miss) {
    ++profile_.misses;
    profile_.classes.add(cls);
    profile_.by_tag[tag].add(cls);
  }
  return cls;
}

void CacheProfiler::on_merge(uint32_t line_addr, uint32_t tag, MissClass cls) {
  record_reuse(stack_.access(line_addr));
  ++profile_.misses;
  profile_.classes.add(cls);
  profile_.by_tag[tag].add(cls);
}

void CacheProfiler::on_mshr_change(uint32_t used, uint64_t cycle) {
  // Responses can arrive through a lower level ticked ahead of this cache,
  // so clamp to keep transition times monotonic.
  const uint64_t at = std::max(cycle, mshr_since_);
  if (at > mshr_since_) {
    if (profile_.mshr_cycles.size() <= mshr_cur_) profile_.mshr_cycles.resize(mshr_cur_ + 1, 0);
    profile_.mshr_cycles[mshr_cur_] += at - mshr_since_;
  }
  mshr_since_ = at;
  mshr_cur_ = used;
}

void CacheProfiler::reset() {
  const uint32_t shadow_lines = profile_.shadow_lines;
  profile_ = CacheMemProfile{};
  profile_.shadow_lines = shadow_lines;
  stack_.clear();
  mshr_cur_ = 0;
  mshr_since_ = 0;
}

CacheMemProfile CacheProfiler::snapshot(uint64_t final_cycle) const {
  CacheMemProfile out = profile_;
  // Close the open occupancy interval; only meaningful for timed caches.
  if (final_cycle > mshr_since_) {
    if (out.mshr_cycles.size() <= mshr_cur_) out.mshr_cycles.resize(mshr_cur_ + 1, 0);
    out.mshr_cycles[mshr_cur_] += final_cycle - mshr_since_;
  }
  return out;
}

// ---------------------------------------------------------------------------
// ShadowCacheSim

ShadowCacheSim::ShadowCacheSim(uint32_t lines, uint32_t ways)
    : sets_(std::max(1u, lines / std::max(1u, ways))),
      ways_(std::max(1u, ways)),
      store_(static_cast<size_t>(sets_) * ways_),
      profiler_(lines) {}

void ShadowCacheSim::access(uint32_t line_addr, uint32_t tag) {
  Way* base = &store_[static_cast<size_t>(line_addr % sets_) * ways_];
  bool hit = false;
  for (uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].line_addr == line_addr) {
      base[w].lru = ++lru_counter_;
      hit = true;
      break;
    }
  }
  if (!hit) {
    Way* victim = base;
    for (uint32_t w = 0; w < ways_; ++w) {
      if (!base[w].valid) {
        victim = &base[w];
        break;
      }
      if (base[w].lru < victim->lru) victim = &base[w];
    }
    victim->valid = true;
    victim->line_addr = line_addr;
    victim->lru = ++lru_counter_;
  }
  profiler_.on_access(line_addr, tag, !hit);
}

// ---------------------------------------------------------------------------
// DramProfiler

DramProfiler::DramProfiler(uint32_t channels)
    : depth_cur_(channels, 0), depth_since_(channels, 0) {
  profile_.channels.resize(channels);
}

void DramProfiler::on_request(uint32_t channel, bool is_write) {
  DramChannelProfile& ch = profile_.channels[channel];
  if (is_write) {
    ++ch.writes;
  } else {
    ++ch.reads;
  }
}

void DramProfiler::on_depth_change(uint32_t channel, uint32_t depth, uint64_t cycle) {
  const uint64_t at = std::max(cycle, depth_since_[channel]);
  if (at > depth_since_[channel]) {
    auto& hist = profile_.channels[channel].depth_cycles;
    if (hist.size() <= depth_cur_[channel]) hist.resize(depth_cur_[channel] + 1, 0);
    hist[depth_cur_[channel]] += at - depth_since_[channel];
  }
  depth_since_[channel] = at;
  depth_cur_[channel] = depth;
}

void DramProfiler::reset() {
  const size_t channels = profile_.channels.size();
  profile_ = DramMemProfile{};
  profile_.channels.resize(channels);
  std::fill(depth_cur_.begin(), depth_cur_.end(), 0u);
  std::fill(depth_since_.begin(), depth_since_.end(), 0ull);
}

DramMemProfile DramProfiler::snapshot(uint64_t final_cycle) const {
  DramMemProfile out = profile_;
  for (size_t c = 0; c < out.channels.size(); ++c) {
    if (final_cycle > depth_since_[c]) {
      auto& hist = out.channels[c].depth_cycles;
      if (hist.size() <= depth_cur_[c]) hist.resize(depth_cur_[c] + 1, 0);
      hist[depth_cur_[c]] += final_cycle - depth_since_[c];
    }
  }
  return out;
}

}  // namespace fgpu::mem
