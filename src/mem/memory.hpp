// Functional (data-carrying) device memory. Timing is modelled separately
// by the cache/DRAM hierarchy in mem/cache.hpp and mem/dram.hpp; this class
// only stores bytes. Sparse 64 KiB pages keep the 32-bit address space cheap.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

namespace fgpu::mem {

class MainMemory {
 public:
  static constexpr uint32_t kPageBits = 16;
  static constexpr uint32_t kPageSize = 1u << kPageBits;

  void read(uint32_t addr, void* out, uint32_t size) const {
    auto* dst = static_cast<uint8_t*>(out);
    while (size > 0) {
      const uint32_t off = addr & (kPageSize - 1);
      const uint32_t chunk = std::min(size, kPageSize - off);
      if (const Page* page = find_page(addr)) {
        std::memcpy(dst, page->data() + off, chunk);
      } else {
        std::memset(dst, 0, chunk);
      }
      addr += chunk;
      dst += chunk;
      size -= chunk;
    }
  }

  void write(uint32_t addr, const void* src, uint32_t size) {
    auto* s = static_cast<const uint8_t*>(src);
    while (size > 0) {
      const uint32_t off = addr & (kPageSize - 1);
      const uint32_t chunk = std::min(size, kPageSize - off);
      std::memcpy(touch_page(addr).data() + off, s, chunk);
      addr += chunk;
      s += chunk;
      size -= chunk;
    }
  }

  void fill(uint32_t addr, uint8_t value, uint32_t size) {
    while (size > 0) {
      const uint32_t off = addr & (kPageSize - 1);
      const uint32_t chunk = std::min(size, kPageSize - off);
      std::memset(touch_page(addr).data() + off, value, chunk);
      addr += chunk;
      size -= chunk;
    }
  }

  uint8_t load8(uint32_t addr) const {
    uint8_t v;
    read(addr, &v, 1);
    return v;
  }
  uint16_t load16(uint32_t addr) const {
    uint16_t v;
    read(addr, &v, 2);
    return v;
  }
  uint32_t load32(uint32_t addr) const {
    uint32_t v;
    read(addr, &v, 4);
    return v;
  }
  void store8(uint32_t addr, uint8_t v) { write(addr, &v, 1); }
  void store16(uint32_t addr, uint16_t v) { write(addr, &v, 2); }
  void store32(uint32_t addr, uint32_t v) { write(addr, &v, 4); }

  void clear() { pages_.clear(); }

  // Direct page access for fast interpreters (vortex/jit): returns the
  // backing storage of the 64 KiB page containing `addr`, allocating a
  // zeroed page if absent (so reads through it match read()'s zero-fill
  // semantics). The pointer stays valid until clear() — pages are
  // unique_ptr-owned, so map growth never moves them.
  uint8_t* page_data(uint32_t addr) { return touch_page(addr).data(); }

 private:
  using Page = std::array<uint8_t, kPageSize>;

  const Page* find_page(uint32_t addr) const {
    auto it = pages_.find(addr >> kPageBits);
    return it == pages_.end() ? nullptr : it->second.get();
  }
  Page& touch_page(uint32_t addr) {
    auto& slot = pages_[addr >> kPageBits];
    if (!slot) {
      slot = std::make_unique<Page>();
      slot->fill(0);
    }
    return *slot;
  }

  std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;
};

}  // namespace fgpu::mem
