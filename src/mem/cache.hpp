// Set-associative, write-back, write-allocate cache with MSHRs.
// Used for the per-core L1 instruction/data caches and the shared L2 of
// the soft-GPU cluster. (The HLS executor's burst-coalesced LSU is an
// analytical timing model with no timed cache; its read path is profiled
// through mem::ShadowCacheSim instead — see memprof.hpp.)
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bits.hpp"
#include "mem/memprof.hpp"
#include "mem/timing.hpp"

namespace fgpu::mem {

struct CacheConfig {
  std::string name = "l1d";
  uint32_t size_bytes = 16 * 1024;
  uint32_t ways = 4;
  uint32_t hit_latency = 2;   // cycles from accept to hit response
  uint32_t mshrs = 8;         // outstanding distinct miss lines
  uint32_t ports = 1;         // requests accepted per cycle
  uint32_t mshr_slots = 8;    // merged requests per MSHR

  uint32_t num_lines() const { return size_bytes / kLineBytes; }
  uint32_t num_sets() const { return num_lines() / ways; }
};

class Cache final : public MemPort {
 public:
  // `lower` is the next level (L2 or DRAM); not owned.
  Cache(CacheConfig config, MemPort* lower);

  bool can_accept() const override;
  void send(const MemRequest& req) override;
  void set_response_handler(ResponseHandler handler) override { handler_ = std::move(handler); }
  void tick(uint64_t cycle) override;

  // Earliest future cycle (> the last ticked cycle) at which this cache has
  // work to do on its own: a queued hit response maturing, or unsent
  // lower-level traffic (writebacks / MSHR fills) to retry. kNoEvent when
  // it is quiescent apart from responses owed by the lower level.
  uint64_t next_event_cycle() const;

  const CacheConfig& config() const { return config_; }
  const MemStats& stats() const { return stats_; }
  // Evictions per set (the profiler's cache-conflict histogram: a hot set
  // with many evictions marks addresses fighting over the same ways).
  const std::vector<uint64_t>& set_conflicts() const { return set_conflicts_; }
  void reset_stats() {
    stats_ = MemStats{};
    std::fill(set_conflicts_.begin(), set_conflicts_.end(), 0ull);
    trace_last_total_ = 0;
    if (profiler_) profiler_->reset();
    mshr_profile_dirty_ = false;
  }

  // Turns on the memory-hierarchy profiler (miss classification, reuse
  // distances, MSHR occupancy — see memprof.hpp). Runtime opt-in: when off
  // (the default) the access path pays one null-pointer test and never
  // allocates.
  void enable_memprof() {
    if (!profiler_) profiler_ = std::make_unique<CacheProfiler>(config_.num_lines());
  }
  bool memprof_enabled() const { return profiler_ != nullptr; }
  // Profile snapshot with the open MSHR-occupancy interval closed at
  // `final_cycle`. Empty profile when profiling is off.
  CacheMemProfile memprof_snapshot(uint64_t final_cycle) const {
    return profiler_ ? profiler_->snapshot(final_cycle) : CacheMemProfile{};
  }

  // Names this cache's counter track in exported traces ("l1d.c2"). The
  // owning core/cluster sets this once; caches sharing a config name (one
  // L1D per core) stay distinguishable in the viewer.
  void set_trace_id(uint32_t tid) {
    trace_tid_ = tid;
    trace_name_ = config_.name + ".c" + std::to_string(tid);
  }

  // Invalidates all lines (kernel-launch boundary).
  void flush();

  // Full return to construction-time state: flush() + reset_stats() plus
  // everything the per-launch path leaves behind — pending hit responses,
  // queued writebacks, MSHR allocations, request-id state and internal
  // clocks. After reset() the cache is indistinguishable from a freshly
  // constructed one (the device-reuse contract, DESIGN.md "Device
  // lifecycle"); memprof enablement is configuration, not state, and
  // survives. No allocation is released — capacity stays warm for reuse.
  void reset();

 private:
  struct LineState {
    uint32_t tag = 0;
    bool valid = false;
    bool dirty = false;
    uint64_t lru = 0;
  };
  struct Mshr {
    uint32_t line_addr = 0;  // line index (addr >> kLineShift)
    bool fill_sent = false;
    // Miss class of the primary (allocating) miss; merged requests inherit
    // it so the exact-sum contract holds without re-classifying.
    uint8_t miss_class = 0;
    std::vector<MemRequest> waiters;
  };
  struct PendingResponse {
    MemRequest req;
    uint64_t ready_cycle;
  };

  uint32_t set_of(uint32_t line_addr) const { return line_addr % config_.num_sets(); }
  uint32_t tag_of(uint32_t line_addr) const { return line_addr / config_.num_sets(); }
  LineState* lookup(uint32_t line_addr);
  void install(uint32_t line_addr);
  void on_lower_response(uint64_t id, bool was_write);
  void trace_counters(uint64_t cycle);

  CacheConfig config_;
  MemPort* lower_;
  ResponseHandler handler_;
  std::vector<LineState> lines_;  // [set * ways + way]
  std::vector<Mshr> mshrs_;
  std::deque<PendingResponse> hit_queue_;    // hit responses in flight
  std::deque<MemRequest> writeback_queue_;   // dirty evictions waiting to go down
  uint64_t now_ = 0;
  uint64_t lru_counter_ = 0;
  uint32_t accepted_this_cycle_ = 0;
  uint32_t mshr_used_ = 0;    // MSHRs with waiters or a fill in flight
  uint32_t mshr_unsent_ = 0;  // MSHRs still needing to send their fill
  uint64_t next_lower_id_ = 1;
  std::unordered_map<uint64_t, uint32_t> fill_ids_;  // lower-level id -> line addr
  MemStats stats_;
  std::vector<uint64_t> set_conflicts_;  // evictions per set
  std::unique_ptr<CacheProfiler> profiler_;  // null unless enable_memprof()
  // A lower-level response changed mshr_used_ before this cache's tick of
  // that cycle; the occupancy transition is charged at the tick so its
  // timestamp does not depend on idle skipping (see on_lower_response).
  bool mshr_profile_dirty_ = false;

  // Trace hook state (see trace/trace.hpp).
  uint32_t trace_tid_ = 0;
  std::string trace_name_;
  uint64_t trace_last_total_ = 0;
};

}  // namespace fgpu::mem
