#include "mem/dram.hpp"

#include <algorithm>
#include <cassert>

#include "trace/trace.hpp"

namespace fgpu::mem {

DramModel::DramModel(DramConfig config)
    : config_(std::move(config)),
      queues_(config_.channels),
      accepted_this_cycle_(config_.channels, 0),
      trace_name_(config_.name) {}

bool DramModel::can_accept() const {
  // Conservative: accept only if every channel has room, since the caller
  // does not know which channel its address maps to. Per-cycle acceptance
  // limits are enforced in send() bookkeeping instead of rejecting here,
  // because multiple sends in one cycle may target distinct channels.
  for (uint32_t c = 0; c < config_.channels; ++c) {
    if (queues_[c].size() >= config_.queue_depth) return false;
    if (accepted_this_cycle_[c] >= config_.requests_per_channel * config_.channels) return false;
  }
  return true;
}

void DramModel::send(const MemRequest& req) {
  const uint32_t c = channel_of(req.addr);
  assert(queues_[c].size() < config_.queue_depth);
  ++accepted_this_cycle_[c];
  // Serialization delay: each queued request behind us adds one service
  // slot (1/requests_per_channel cycles each).
  const uint64_t service = (queues_[c].size() + accepted_this_cycle_[c]) /
                           std::max(1u, config_.requests_per_channel);
  queues_[c].push_back(Inflight{req, now_ + config_.latency + service});
  if (req.is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  if (profiler_) {
    profiler_->on_request(c, req.is_write);
    profiler_->on_depth_change(c, static_cast<uint32_t>(queues_[c].size()), now_);
  }
}

void DramModel::tick(uint64_t cycle) {
  if constexpr (trace::kEnabled) {
    if ((cycle & (trace::kCounterBucketCycles - 1)) == 0) trace_counters(cycle);
  }
  now_ = cycle;
  for (auto& count : accepted_this_cycle_) count = 0;
  for (uint32_t c = 0; c < config_.channels; ++c) {
    uint32_t served = 0;
    while (!queues_[c].empty() && served < config_.requests_per_channel &&
           queues_[c].front().ready_cycle <= now_) {
      const Inflight entry = queues_[c].front();
      queues_[c].pop_front();
      ++served;
      if (handler_) handler_(entry.req.id, entry.req.is_write);
    }
    if (served > 0 && profiler_) {
      profiler_->on_depth_change(c, static_cast<uint32_t>(queues_[c].size()), now_);
    }
  }
}

uint64_t DramModel::next_event_cycle() const {
  uint64_t next = kNoEvent;
  for (const auto& queue : queues_) {
    if (queue.empty()) continue;
    next = std::min(next, std::max(queue.front().ready_cycle, now_ + 1));
  }
  return next;
}

void DramModel::trace_counters(uint64_t cycle) {
  trace::Sink* sink = trace::current();
  if (sink == nullptr) return;
  const uint64_t total = stats_.reads + stats_.writes;
  if (total == trace_last_total_) return;
  trace_last_total_ = total;
  uint64_t queued = 0;
  for (const auto& queue : queues_) queued += queue.size();
  // Interned: the sink may outlive this DRAM model.
  sink->counter(sink->intern(trace_name_), trace_tid_, cycle,
                {{"reads", stats_.reads}, {"writes", stats_.writes}, {"queued", queued}});
}

}  // namespace fgpu::mem
