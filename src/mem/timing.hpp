// Timing interfaces of the memory hierarchy. Components (caches, DRAM)
// exchange line-granular requests; the data itself lives in MainMemory.
// All components are ticked once per simulated cycle, bottom-up (DRAM,
// then L2, then L1s) so that responses ripple upward within a cycle chain
// of at least one cycle per level.
#pragma once

#include <cstdint>
#include <functional>

namespace fgpu::mem {

// Vortex v1's data cache uses 16-byte lines (4 words); the whole on-chip
// hierarchy of the soft GPU model follows suit. Note this makes a fully
// coalesced 16-lane access span 4 lines — the MSHR pressure behind the
// paper's Fig. 7 "LSU stall" behaviour at high thread counts.
constexpr uint32_t kLineBytes = 16;
constexpr uint32_t kLineShift = 4;

inline uint32_t line_of(uint32_t addr) { return addr >> kLineShift; }

// "No pending event" sentinel for next-event-cycle queries (idle skipping:
// the cluster fast-forwards to the minimum next event across components).
constexpr uint64_t kNoEvent = ~0ull;

struct MemRequest {
  uint64_t id = 0;       // requester-chosen token, returned with the response
  uint32_t addr = 0;     // byte address (component aligns to its granularity)
  bool is_write = false;
  // Attribution tag for the memory profiler: the PC of the instruction
  // behind the access (0 when none, e.g. writebacks). Caches propagate the
  // primary waiter's PC on MSHR fills so L2 misses stay attributable.
  uint32_t pc = 0;
};

// A component that accepts memory requests and later answers them through
// a response callback. `can_accept` models port/queue back-pressure.
class MemPort {
 public:
  using ResponseHandler = std::function<void(uint64_t id, bool was_write)>;

  virtual ~MemPort() = default;
  virtual bool can_accept() const = 0;
  virtual void send(const MemRequest& req) = 0;
  virtual void set_response_handler(ResponseHandler handler) = 0;
  virtual void tick(uint64_t cycle) = 0;
};

struct MemStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t mshr_merges = 0;
  uint64_t stall_rejects = 0;  // sends refused due to back-pressure

  bool operator==(const MemStats&) const = default;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

}  // namespace fgpu::mem
