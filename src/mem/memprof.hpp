// Memory-hierarchy profiler (fgpu.mem.v1): miss classification, reuse
// distances, and occupancy histograms beneath the existing MemStats layer.
//
// Every cache level gets a shadow fully-associative LRU tag store of the
// same line count. Each access yields an exact line-granular stack
// distance (the number of distinct lines touched since the previous
// access to this line), which drives both the 3C miss classification
//
//   compulsory  line never seen before (cold)
//   conflict    distance < total lines — a same-size fully-associative
//               LRU cache would have hit, so the miss is down to set
//               mapping / associativity
//   capacity    distance >= total lines — even full associativity misses
//
// and the log2-bucketed reuse-distance histogram. The exact-sum contract
// `compulsory + capacity + conflict == misses` is enforced in tests.
//
// Everything here is runtime opt-in (Config::memprof / fgpu-run
// --memprof): a disabled cache pays one null-pointer test per access and
// allocates nothing. Data structures are deterministic — profiles are
// byte-identical across --jobs once exported.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fgpu::mem {

enum class MissClass : uint8_t { kCompulsory = 0, kCapacity = 1, kConflict = 2 };

struct MissClasses {
  uint64_t compulsory = 0;
  uint64_t capacity = 0;
  uint64_t conflict = 0;

  uint64_t total() const { return compulsory + capacity + conflict; }
  void add(MissClass cls) {
    switch (cls) {
      case MissClass::kCompulsory: ++compulsory; break;
      case MissClass::kCapacity: ++capacity; break;
      case MissClass::kConflict: ++conflict; break;
    }
  }
  MissClasses& operator+=(const MissClasses& other) {
    compulsory += other.compulsory;
    capacity += other.capacity;
    conflict += other.conflict;
    return *this;
  }
  bool operator==(const MissClasses&) const = default;
};

// Reuse-distance buckets: bucket 0 holds distance 0 (back-to-back reuse),
// bucket k >= 1 holds distances [2^(k-1), 2^k), and the last bucket
// absorbs everything beyond. 21 buckets cover up to 2^20 distinct lines
// (16 MiB of 16-byte lines) before saturating — beyond any modeled cache.
constexpr uint32_t kReuseBuckets = 21;

uint32_t reuse_bucket(uint64_t distance);

// Exact stack distances in O(log n) per access (Bennett–Kruskal): a hash
// map remembers each line's last access timestamp and a Fenwick tree
// counts *live* timestamps, so the distance is the number of live
// timestamps newer than the line's previous one. The timestamp space is
// compacted in place when exhausted, bounding memory by the number of
// distinct lines rather than the access count.
class StackDistance {
 public:
  static constexpr uint64_t kCold = ~0ull;

  // Records an access; returns the stack distance, kCold on first touch.
  uint64_t access(uint32_t line_addr);
  void clear();
  size_t distinct_lines() const { return last_pos_.size(); }

 private:
  void bit_add(uint32_t pos, int delta);
  uint64_t bit_sum(uint32_t pos) const;  // prefix sum over [1, pos]
  void compact();

  std::unordered_map<uint32_t, uint32_t> last_pos_;  // line -> timestamp
  std::vector<uint32_t> tree_;                       // Fenwick, 1-based
  uint32_t time_ = 0;                                // last issued timestamp
};

// Plain-data per-cache-level profile: mergeable across cores and
// launches, exported into fgpu.mem.v1. `by_tag` keys are whatever the
// request stream tags accesses with — instruction PCs on the soft-GPU
// path, AccessSite indices on the HLS read path — ordered for
// deterministic export.
struct CacheMemProfile {
  uint32_t shadow_lines = 0;  // FA-LRU capacity used for classification
  uint64_t accesses = 0;      // hits + misses (incl. MSHR merges)
  uint64_t misses = 0;        // classes.total() == misses, always
  uint64_t cold = 0;          // first-touch accesses (no finite distance)
  MissClasses classes;
  std::array<uint64_t, kReuseBuckets> reuse{};  // finite distances, log2
  std::map<uint32_t, MissClasses> by_tag;       // pc/site -> miss classes
  // Time-weighted MSHR occupancy: mshr_cycles[n] = cycles spent with
  // exactly n MSHRs in use. Empty for shadow-only profiles (HLS).
  std::vector<uint64_t> mshr_cycles;

  uint64_t reuse_total() const;  // cold + sum(reuse) == accesses
  void merge(const CacheMemProfile& other);
};

// Per-channel DRAM profile: request counts and a time-weighted queue-depth
// histogram (depth_cycles[d] = cycles the channel queue held d requests).
struct DramChannelProfile {
  uint64_t reads = 0;
  uint64_t writes = 0;
  std::vector<uint64_t> depth_cycles;

  uint64_t requests() const { return reads + writes; }
  uint64_t busy_cycles() const;      // cycles with depth > 0
  uint64_t weighted_depth() const;   // sum of depth * cycles
  void merge(const DramChannelProfile& other);
};

struct DramMemProfile {
  std::vector<DramChannelProfile> channels;

  uint64_t total_requests() const;
  // Max-over-mean per-channel request imbalance; 1.0 = perfectly even,
  // `channels` = everything on one channel. 0 when idle.
  double imbalance() const;
  void merge(const DramMemProfile& other);
};

struct MemHierarchyProfile {
  bool enabled = false;
  CacheMemProfile l1d;
  CacheMemProfile l1i;
  CacheMemProfile l2;
  DramMemProfile dram;

  void merge(const MemHierarchyProfile& other);
};

// Attached to a mem::Cache (or driven standalone via ShadowCacheSim) when
// profiling is on. Owns the shadow stack and the occupancy accumulators;
// `snapshot(final_cycle)` closes the open MSHR interval and returns the
// plain-data profile.
class CacheProfiler {
 public:
  explicit CacheProfiler(uint32_t shadow_lines);

  // Records an access tagged `tag` and, when `is_miss`, classifies it.
  // The return value is meaningful only for misses.
  MissClass on_access(uint32_t line_addr, uint32_t tag, bool is_miss);
  // A request that merged into an in-flight MSHR: the line's fetch was
  // already classified, so the merged miss inherits the primary's class
  // (re-classifying would mislabel every secondary miss as distance-0
  // conflict). Still updates the shadow stack and reuse histogram.
  void on_merge(uint32_t line_addr, uint32_t tag, MissClass cls);
  // MSHR occupancy transitioned to `used` at `cycle` (time-weighted
  // accounting: the elapsed interval is charged to the previous value, so
  // idle-skipped windows — during which occupancy is frozen — are charged
  // exactly once without per-cycle sampling).
  void on_mshr_change(uint32_t used, uint64_t cycle);

  void reset();
  CacheMemProfile snapshot(uint64_t final_cycle) const;

 private:
  MissClass classify(uint64_t distance) const;
  void record_reuse(uint64_t distance);

  CacheMemProfile profile_;
  StackDistance stack_;
  uint32_t mshr_cur_ = 0;
  uint64_t mshr_since_ = 0;
};

// Standalone shadow simulator for request streams that have no timing
// cache behind them (the HLS burst-LSU read path): a set-associative LRU
// tag store of the reference geometry decides hit/miss and the attached
// CacheProfiler classifies. Purely functional — no cycles, no MSHRs.
class ShadowCacheSim {
 public:
  ShadowCacheSim(uint32_t lines, uint32_t ways);

  void access(uint32_t line_addr, uint32_t tag);
  CacheMemProfile profile() const { return profiler_.snapshot(0); }

 private:
  struct Way {
    uint32_t line_addr = 0;
    uint64_t lru = 0;
    bool valid = false;
  };

  uint32_t sets_;
  uint32_t ways_;
  std::vector<Way> store_;  // [set * ways + way]
  uint64_t lru_counter_ = 0;
  CacheProfiler profiler_;
};

// Per-channel DRAM profiler driven by DramModel when profiling is on.
class DramProfiler {
 public:
  explicit DramProfiler(uint32_t channels);

  void on_request(uint32_t channel, bool is_write);
  void on_depth_change(uint32_t channel, uint32_t depth, uint64_t cycle);
  void reset();
  DramMemProfile snapshot(uint64_t final_cycle) const;

 private:
  DramMemProfile profile_;
  std::vector<uint32_t> depth_cur_;
  std::vector<uint64_t> depth_since_;
};

}  // namespace fgpu::mem
