// Off-chip memory timing models for the two boards the paper evaluates:
// Stratix 10 SX2800 (DDR4) and MX2100 (HBM2). HBM2 offers many more
// pseudo-channels (higher request throughput) at a slightly lower latency,
// which is the property the paper calls out when comparing the boards.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "mem/memprof.hpp"
#include "mem/timing.hpp"

namespace fgpu::mem {

struct DramConfig {
  std::string name = "ddr4";
  uint32_t latency = 100;          // cycles from accept to response
  uint32_t channels = 1;           // independent request pipes
  uint32_t requests_per_channel = 1;  // line requests accepted per channel per cycle
  uint32_t queue_depth = 32;       // per-channel in-flight limit

  static DramConfig ddr4() { return DramConfig{"ddr4", 100, 1, 1, 32}; }
  static DramConfig hbm2() { return DramConfig{"hbm2", 80, 8, 1, 32}; }
};

// Fixed-latency, bandwidth-limited DRAM. Requests are line-granular;
// channel selection is by address interleaving on line index.
class DramModel final : public MemPort {
 public:
  explicit DramModel(DramConfig config);

  bool can_accept() const override;
  void send(const MemRequest& req) override;
  void set_response_handler(ResponseHandler handler) override { handler_ = std::move(handler); }
  void tick(uint64_t cycle) override;

  // Earliest future cycle (> the last ticked cycle) at which a queued
  // request matures; kNoEvent when all channels are empty. Queues are
  // served front-gated in FIFO order with nondecreasing ready cycles, so
  // each channel's front holds its earliest event.
  uint64_t next_event_cycle() const;

  const DramConfig& config() const { return config_; }
  const MemStats& stats() const { return stats_; }
  uint64_t bytes_read() const { return stats_.reads * kLineBytes; }
  uint64_t bytes_written() const { return stats_.writes * kLineBytes; }
  // Peak line requests per cycle across channels (bandwidth ceiling).
  double peak_lines_per_cycle() const {
    return static_cast<double>(config_.channels * config_.requests_per_channel);
  }
  void reset_stats() {
    stats_ = MemStats{};
    trace_last_total_ = 0;
    if (profiler_) profiler_->reset();
  }

  // Full return to construction-time state: reset_stats() plus the
  // per-channel request queues, acceptance counters and the internal clock
  // (the device-reuse contract, DESIGN.md "Device lifecycle").
  void reset() {
    reset_stats();
    for (auto& queue : queues_) queue.clear();
    for (auto& count : accepted_this_cycle_) count = 0;
    now_ = 0;
  }

  // Names this model's counter track in exported traces ("ddr4.d0"),
  // mirroring Cache::set_trace_id so multi-cluster/multi-device traces
  // keep DRAM tracks distinguishable.
  void set_trace_id(uint32_t tid) {
    trace_tid_ = tid;
    trace_name_ = config_.name + ".d" + std::to_string(tid);
  }

  // Turns on the per-channel DRAM profiler (queue-depth histograms,
  // channel imbalance — see memprof.hpp). Runtime opt-in like the cache's.
  void enable_memprof() {
    if (!profiler_) profiler_ = std::make_unique<DramProfiler>(config_.channels);
  }
  bool memprof_enabled() const { return profiler_ != nullptr; }
  DramMemProfile memprof_snapshot(uint64_t final_cycle) const {
    return profiler_ ? profiler_->snapshot(final_cycle) : DramMemProfile{};
  }

 private:
  struct Inflight {
    MemRequest req;
    uint64_t ready_cycle;
  };

  uint32_t channel_of(uint32_t addr) const { return line_of(addr) % config_.channels; }
  void trace_counters(uint64_t cycle);

  DramConfig config_;
  std::vector<std::deque<Inflight>> queues_;  // per channel
  std::vector<uint32_t> accepted_this_cycle_;
  uint64_t now_ = 0;
  ResponseHandler handler_;
  MemStats stats_;
  std::unique_ptr<DramProfiler> profiler_;  // null unless enable_memprof()

  // Trace hook state (see trace/trace.hpp).
  uint32_t trace_tid_ = 0;
  std::string trace_name_;
  uint64_t trace_last_total_ = 0;
};

}  // namespace fgpu::mem
