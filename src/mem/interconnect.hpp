// N-to-1 interconnect between multiple upstream clients (per-core L1I/L1D
// caches) and one downstream component (shared L2). Tags request ids so
// responses route back to the issuing client — the "Mem-Interconnect" box
// of the Vortex microarchitecture (paper Fig. 4).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/timing.hpp"

namespace fgpu::mem {

class Interconnect {
 public:
  explicit Interconnect(MemPort* lower) : lower_(lower) {
    lower_->set_response_handler([this](uint64_t id, bool was_write) {
      auto it = routes_.find(id);
      if (it == routes_.end()) return;
      const Route route = it->second;
      routes_.erase(it);
      Endpoint* ep = endpoints_[route.port].get();
      if (ep->handler) ep->handler(route.original_id, was_write);
    });
  }

  // Creates a new upstream endpoint. Pointers remain valid for the life of
  // the interconnect (endpoints are heap-allocated and never removed).
  MemPort* new_port() {
    endpoints_.push_back(std::make_unique<Endpoint>(this, static_cast<uint32_t>(endpoints_.size())));
    return endpoints_.back().get();
  }

  // Return to construction-time state (device-reuse contract): drops any
  // stale response routes and restarts the tag sequence. Only valid when no
  // traffic is in flight anywhere in the hierarchy — i.e. alongside
  // Cache::reset()/DramModel::reset() from Cluster::hard_reset().
  void reset() {
    routes_.clear();
    next_id_ = 1;
  }

 private:
  struct Route {
    uint32_t port;
    uint64_t original_id;
  };

  struct Endpoint final : MemPort {
    Endpoint(Interconnect* owner, uint32_t index) : owner(owner), index(index) {}
    bool can_accept() const override { return owner->lower_->can_accept(); }
    void send(const MemRequest& req) override {
      const uint64_t tagged = owner->next_id_++;
      owner->routes_[tagged] = Route{index, req.id};
      owner->lower_->send(
          MemRequest{.id = tagged, .addr = req.addr, .is_write = req.is_write, .pc = req.pc});
    }
    void set_response_handler(ResponseHandler h) override { handler = std::move(h); }
    void tick(uint64_t /*cycle*/) override {}  // pass-through; lower is ticked by owner

    Interconnect* owner;
    uint32_t index;
    ResponseHandler handler;
  };

  MemPort* lower_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::unordered_map<uint64_t, Route> routes_;
  uint64_t next_id_ = 1;
};

}  // namespace fgpu::mem
