// Kernel binary image: the output of the soft-GPU kernel compiler and the
// input to the Vortex simulator (the "kernel executable compatible with the
// soft GPU ISA" of the paper's Fig. 2).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/isa.hpp"

namespace fgpu::vasm {

// Line table mapping program words back to the source construct that
// generated them (for the soft-GPU compiler: a KIR statement or a codegen
// phase like the dispatch loop). `word_source[i]` indexes `sources` for
// words[i] of the owning Program; -1 means "no provenance recorded".
struct SourceMap {
  std::vector<std::string> sources;
  std::vector<int32_t> word_source;

  bool empty() const { return word_source.empty(); }
  // Provenance string for word `index`, or "" when unknown.
  const std::string& source_for(size_t index) const {
    static const std::string kNone;
    if (index >= word_source.size() || word_source[index] < 0) return kNone;
    return sources[static_cast<size_t>(word_source[index])];
  }
};

// Knobs for Program::disassemble(). The default-constructed options match
// the classic listing (addresses + raw words + symbol labels).
struct DisasmOptions {
  // Prefix each line with "address:  word".
  bool addresses = true;
  // Emit synthetic labels ("L00010060:") at every control-flow target and
  // render branch/jump operands as label names instead of numeric offsets.
  // The resulting text (with addresses off) re-assembles through
  // vasm::assemble() to the identical word sequence.
  bool synth_labels = false;
  // Interleave provenance comment lines ("; <source>") whenever the
  // source-map entry changes between consecutive words.
  const SourceMap* source_map = nullptr;
  // Per-word annotation column, prepended to the instruction line (profiler
  // cycle/stall/IPC columns). Receives the word's address and index.
  std::function<std::string(uint32_t addr, size_t word_index)> annotate;
};

struct Program {
  uint32_t base = arch::kCodeBase;       // load address of words[0]
  std::vector<uint32_t> words;           // encoded instructions
  std::unordered_map<std::string, uint32_t> symbols;  // label -> address

  uint32_t entry() const { return base; }
  uint32_t size_bytes() const { return static_cast<uint32_t>(words.size() * 4); }

  // Full-image disassembly with addresses and symbolized label lines.
  std::string disassemble() const;
  // Annotated/customizable listing (see DisasmOptions).
  std::string disassemble(const DisasmOptions& options) const;
};

}  // namespace fgpu::vasm
