// Kernel binary image: the output of the soft-GPU kernel compiler and the
// input to the Vortex simulator (the "kernel executable compatible with the
// soft GPU ISA" of the paper's Fig. 2).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/isa.hpp"

namespace fgpu::vasm {

struct Program {
  uint32_t base = arch::kCodeBase;       // load address of words[0]
  std::vector<uint32_t> words;           // encoded instructions
  std::unordered_map<std::string, uint32_t> symbols;  // label -> address

  uint32_t entry() const { return base; }
  uint32_t size_bytes() const { return static_cast<uint32_t>(words.size() * 4); }

  // Full-image disassembly with addresses and symbolized label lines.
  std::string disassemble() const;
};

}  // namespace fgpu::vasm
