// Text assembler for the Vortex-style ISA. Used by the simulator test
// suite to express micro-kernels at the ISA level (divergence, barriers,
// warp spawning) without going through the kernel compiler, and as a
// debugging aid symmetrical to Program::disassemble().
//
// Syntax:
//   label:                         # define a label
//   addi t0, zero, 42              # register/immediate instructions
//   lw   a0, 8(sp)                 # loads/stores use offset(base)
//   beq  t0, t1, loop              # branch targets are labels
//   split t0, else_path            # SIMT ops take labels too
//   join merge
//   csrr t0, 0xCC0                 # pseudo: csrrs rd, csr, zero
//   li   t1, 0x12345678            # pseudo: lui+addi
//   mv / nop / j label
//   .word 0xDEADBEEF               # raw data word
// Comments start with '#' or "//" and run to end of line.
#pragma once

#include <string>

#include "common/status.hpp"
#include "vasm/program.hpp"

namespace fgpu::vasm {

Result<Program> assemble(const std::string& source, uint32_t base = arch::kCodeBase);

}  // namespace fgpu::vasm
