// Programmatic assembler with deferred label resolution. This is the
// machine-code layer of the soft-GPU kernel compiler: the code generator
// (kir -> Vortex ISA) emits through this builder, mirroring how the
// Vortex LLVM backend emits MC instructions.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/isa.hpp"
#include "common/status.hpp"
#include "vasm/program.hpp"

namespace fgpu::vasm {

class AsmBuilder {
 public:
  using Label = int;

  // Creates a fresh, unbound label.
  Label make_label() {
    labels_.push_back(kUnbound);
    return static_cast<Label>(labels_.size() - 1);
  }

  // Binds `label` to the current position.
  void bind(Label label) {
    assert(labels_[static_cast<size_t>(label)] == kUnbound && "label bound twice");
    labels_[static_cast<size_t>(label)] = static_cast<int>(instrs_.size());
  }

  // Emits a fully resolved instruction.
  void emit(const arch::Instr& instr) { instrs_.push_back(Slot{instr, kNoLabel}); }

  void emit_r(arch::Op op, unsigned rd, unsigned rs1, unsigned rs2) {
    emit({.op = op,
          .rd = static_cast<uint8_t>(rd),
          .rs1 = static_cast<uint8_t>(rs1),
          .rs2 = static_cast<uint8_t>(rs2)});
  }
  void emit_r4(arch::Op op, unsigned rd, unsigned rs1, unsigned rs2, unsigned rs3) {
    emit({.op = op,
          .rd = static_cast<uint8_t>(rd),
          .rs1 = static_cast<uint8_t>(rs1),
          .rs2 = static_cast<uint8_t>(rs2),
          .rs3 = static_cast<uint8_t>(rs3)});
  }
  void emit_i(arch::Op op, unsigned rd, unsigned rs1, int32_t imm) {
    emit({.op = op,
          .rd = static_cast<uint8_t>(rd),
          .rs1 = static_cast<uint8_t>(rs1),
          .imm = imm});
  }
  void emit_s(arch::Op op, unsigned rs1, unsigned rs2, int32_t imm) {
    emit({.op = op,
          .rs1 = static_cast<uint8_t>(rs1),
          .rs2 = static_cast<uint8_t>(rs2),
          .imm = imm});
  }
  void emit_u(arch::Op op, unsigned rd, int32_t imm20) {
    emit({.op = op, .rd = static_cast<uint8_t>(rd), .imm = imm20});
  }

  // Control flow targeting labels (patched at finalize).
  void emit_branch(arch::Op op, unsigned rs1, unsigned rs2, Label target) {
    instrs_.push_back(Slot{{.op = op,
                            .rs1 = static_cast<uint8_t>(rs1),
                            .rs2 = static_cast<uint8_t>(rs2)},
                           target});
  }
  void emit_jal(unsigned rd, Label target) {
    instrs_.push_back(Slot{{.op = arch::Op::kJal, .rd = static_cast<uint8_t>(rd)}, target});
  }
  // SIMT divergence-control ops (see arch/isa.hpp for semantics).
  void emit_split(unsigned rs1, Label else_target) {
    instrs_.push_back(Slot{{.op = arch::Op::kSplit, .rs1 = static_cast<uint8_t>(rs1)}, else_target});
  }
  void emit_pred(unsigned rs1, Label exit_target) {
    instrs_.push_back(Slot{{.op = arch::Op::kPred, .rs1 = static_cast<uint8_t>(rs1)}, exit_target});
  }
  void emit_join(Label merge_target) {
    instrs_.push_back(Slot{{.op = arch::Op::kJoin}, merge_target});
  }

  // Pseudo-instructions ------------------------------------------------
  void li(unsigned rd, int32_t value);           // lui+addi / addi
  // Loads the absolute address of `label` (auipc+addi pair); used to pass
  // code addresses to WSPAWN/JALR.
  void la(unsigned rd, Label label) {
    instrs_.push_back(Slot{{.op = arch::Op::kAuipc, .rd = static_cast<uint8_t>(rd)}, label,
                           FixKind::kLaHi});
    instrs_.push_back(Slot{{.op = arch::Op::kAddi,
                            .rd = static_cast<uint8_t>(rd),
                            .rs1 = static_cast<uint8_t>(rd)},
                           label, FixKind::kLaLo});
  }
  void mv(unsigned rd, unsigned rs) { emit_i(arch::Op::kAddi, rd, rs, 0); }
  void nop() { emit_i(arch::Op::kAddi, 0, 0, 0); }
  void j(Label target) { emit_jal(0, target); }
  void csr_read(unsigned rd, uint32_t csr) { emit_i(arch::Op::kCsrrs, rd, 0, static_cast<int32_t>(csr)); }
  void tmc(unsigned rs1) { emit_r(arch::Op::kTmc, 0, rs1, 0); }
  void bar(unsigned rs1_id, unsigned rs2_count) { emit_r(arch::Op::kBar, 0, rs1_id, rs2_count); }
  void wspawn(unsigned rs1_count, unsigned rs2_pc) {
    emit_r(arch::Op::kWspawn, 0, rs1_count, rs2_pc);
  }

  // Attaches a symbol name to the current position (kept in Program::symbols).
  void mark_symbol(const std::string& name) { pending_symbols_.push_back({name, instrs_.size()}); }

  size_t instruction_count() const { return instrs_.size(); }

  // Resolves all labels and produces the binary image.
  Result<Program> finalize(uint32_t base = arch::kCodeBase) const;

 private:
  static constexpr int kUnbound = -1;
  static constexpr Label kNoLabel = -1;

  enum class FixKind : uint8_t { kTarget, kLaHi, kLaLo };

  struct Slot {
    arch::Instr instr;
    Label target = kNoLabel;  // label to patch into imm
    FixKind fix = FixKind::kTarget;
  };

  std::vector<Slot> instrs_;
  std::vector<int> labels_;  // label -> instruction index
  std::vector<std::pair<std::string, size_t>> pending_symbols_;
};

}  // namespace fgpu::vasm
