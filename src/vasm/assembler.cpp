#include "vasm/assembler.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "vasm/builder.hpp"

namespace fgpu::vasm {
namespace {

struct Line {
  std::string op;
  std::vector<std::string> operands;
  int number = 0;
};

std::string strip(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Splits an operand list on commas, keeping "imm(reg)" forms intact.
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!strip(cur).empty()) out.push_back(strip(cur));
  return out;
}

bool parse_int(const std::string& s, int64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoll(s.c_str(), &end, 0);
  return end != nullptr && *end == '\0';
}

class Assembler {
 public:
  explicit Assembler(uint32_t base) : base_(base) {}

  Result<Program> run(const std::string& source) {
    std::vector<Line> lines;
    if (auto st = scan(source, lines); !st.is_ok()) return st;
    for (const auto& line : lines) {
      if (auto st = emit_line(line); !st.is_ok()) return st;
    }
    auto prog = builder_.finalize(base_);
    if (!prog.is_ok()) return prog.status();
    return prog;
  }

 private:
  Status error(int line, const std::string& msg) {
    return Status(ErrorKind::kCompileError, "line " + std::to_string(line) + ": " + msg);
  }

  // Pass 1: strip comments, register labels, collect instruction lines.
  Status scan(const std::string& source, std::vector<Line>& out) {
    std::string cur;
    int number = 0;
    size_t pos = 0;
    while (pos <= source.size()) {
      if (pos == source.size() || source[pos] == '\n') {
        ++number;
        std::string text = cur;
        cur.clear();
        ++pos;
        if (auto c = text.find('#'); c != std::string::npos) text = text.substr(0, c);
        if (auto c = text.find("//"); c != std::string::npos) text = text.substr(0, c);
        text = strip(text);
        while (!text.empty()) {
          auto colon = text.find(':');
          // Label definitions must be identifiers followed by ':'.
          if (colon != std::string::npos && text.find_first_of(" \t(") > colon) {
            std::string name = strip(text.substr(0, colon));
            if (name.empty()) return error(number, "empty label");
            labels_by_name_.emplace(name, get_label(name));
            pending_binds_.push_back({name, out.size()});
            text = strip(text.substr(colon + 1));
            continue;
          }
          break;
        }
        if (text.empty()) continue;
        Line line;
        line.number = number;
        auto space = text.find_first_of(" \t");
        line.op = text.substr(0, space);
        if (space != std::string::npos) line.operands = split_operands(text.substr(space + 1));
        // Bind pending labels to this instruction index via sentinel lines.
        out.push_back(line);
        continue;
      }
      cur += source[pos++];
    }
    return Status::ok();
  }

  AsmBuilder::Label get_label(const std::string& name) {
    auto it = label_ids_.find(name);
    if (it != label_ids_.end()) return it->second;
    auto l = builder_.make_label();
    label_ids_.emplace(name, l);
    return l;
  }

  Status emit_line(const Line& line) {
    // Bind any labels registered for this instruction index.
    while (bind_cursor_ < pending_binds_.size() &&
           pending_binds_[bind_cursor_].second == emitted_lines_) {
      builder_.mark_symbol(pending_binds_[bind_cursor_].first);
      builder_.bind(get_label(pending_binds_[bind_cursor_].first));
      ++bind_cursor_;
    }
    ++emitted_lines_;
    return emit_instruction(line);
  }

  Result<unsigned> xreg(const Line& line, const std::string& name) {
    if (auto r = arch::xreg_by_name(name)) return *r;
    return Result<unsigned>(ErrorKind::kCompileError,
                            "line " + std::to_string(line.number) + ": bad register '" + name + "'");
  }
  Result<unsigned> freg(const Line& line, const std::string& name) {
    if (auto r = arch::freg_by_name(name)) return *r;
    return Result<unsigned>(ErrorKind::kCompileError,
                            "line " + std::to_string(line.number) + ": bad fp register '" + name + "'");
  }
  Result<unsigned> reg(const Line& line, const std::string& name, bool fp) {
    return fp ? freg(line, name) : xreg(line, name);
  }

  // Parses "imm(reg)" into offset + base register.
  Status parse_mem(const Line& line, const std::string& s, int32_t& imm, unsigned& rs1) {
    auto open = s.find('(');
    auto close = s.find(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      return error(line.number, "expected imm(reg): '" + s + "'");
    }
    int64_t v = 0;
    std::string imm_text = strip(s.substr(0, open));
    if (imm_text.empty()) imm_text = "0";
    if (!parse_int(imm_text, v)) return error(line.number, "bad offset '" + imm_text + "'");
    imm = static_cast<int32_t>(v);
    auto r = xreg(line, strip(s.substr(open + 1, close - open - 1)));
    if (!r.is_ok()) return r.status();
    rs1 = *r;
    return Status::ok();
  }

  Status need_operands(const Line& line, size_t n) {
    if (line.operands.size() != n) {
      return error(line.number, "expected " + std::to_string(n) + " operands for '" + line.op +
                                    "', got " + std::to_string(line.operands.size()));
    }
    return Status::ok();
  }

  Status emit_instruction(const Line& line) {
    using arch::Op;
    const std::string& op = line.op;

    // Directives and pseudo-instructions ------------------------------
    if (op == ".word") {
      // Data words are not supported in the instruction stream; kernels get
      // constants via li / the argument block instead.
      return error(line.number, ".word unsupported in instruction stream");
    }
    if (op == "nop") {
      builder_.nop();
      return Status::ok();
    }
    if (op == "li") {
      if (auto st = need_operands(line, 2); !st.is_ok()) return st;
      auto rd = xreg(line, line.operands[0]);
      if (!rd.is_ok()) return rd.status();
      int64_t v = 0;
      if (!parse_int(line.operands[1], v)) return error(line.number, "bad immediate");
      builder_.li(*rd, static_cast<int32_t>(v));
      return Status::ok();
    }
    if (op == "mv") {
      if (auto st = need_operands(line, 2); !st.is_ok()) return st;
      auto rd = xreg(line, line.operands[0]);
      auto rs = xreg(line, line.operands[1]);
      if (!rd.is_ok()) return rd.status();
      if (!rs.is_ok()) return rs.status();
      builder_.mv(*rd, *rs);
      return Status::ok();
    }
    if (op == "j") {
      if (auto st = need_operands(line, 1); !st.is_ok()) return st;
      builder_.j(get_label(line.operands[0]));
      return Status::ok();
    }
    if (op == "la") {
      if (auto st = need_operands(line, 2); !st.is_ok()) return st;
      auto rd = xreg(line, line.operands[0]);
      if (!rd.is_ok()) return rd.status();
      builder_.la(*rd, get_label(line.operands[1]));
      return Status::ok();
    }
    if (op == "csrr") {
      if (auto st = need_operands(line, 2); !st.is_ok()) return st;
      auto rd = xreg(line, line.operands[0]);
      if (!rd.is_ok()) return rd.status();
      int64_t csr = 0;
      if (!parse_int(line.operands[1], csr)) return error(line.number, "bad CSR number");
      builder_.csr_read(*rd, static_cast<uint32_t>(csr));
      return Status::ok();
    }

    auto maybe = arch::op_by_name(op);
    if (!maybe) return error(line.number, "unknown mnemonic '" + op + "'");
    const auto& info = arch::op_info(*maybe);
    const bool fd = arch::writes_freg(*maybe);
    const bool f1 = arch::reads_freg_rs1(*maybe);
    const bool f2 = arch::reads_freg_rs2(*maybe);

    switch (info.fmt) {
      case arch::Format::kR: {
        if (*maybe == Op::kTmc) {
          if (auto st = need_operands(line, 1); !st.is_ok()) return st;
          auto rs1 = xreg(line, line.operands[0]);
          if (!rs1.is_ok()) return rs1.status();
          builder_.tmc(*rs1);
          return Status::ok();
        }
        if (*maybe == Op::kWspawn || *maybe == Op::kBar) {
          if (auto st = need_operands(line, 2); !st.is_ok()) return st;
          auto rs1 = xreg(line, line.operands[0]);
          auto rs2 = xreg(line, line.operands[1]);
          if (!rs1.is_ok()) return rs1.status();
          if (!rs2.is_ok()) return rs2.status();
          builder_.emit_r(*maybe, 0, *rs1, *rs2);
          return Status::ok();
        }
        if (info.match_rs2) {  // unary FP ops: fsqrt.s, fcvt.*, fmv.*
          if (auto st = need_operands(line, 2); !st.is_ok()) return st;
          auto rd = reg(line, line.operands[0], fd);
          auto rs1 = reg(line, line.operands[1], f1);
          if (!rd.is_ok()) return rd.status();
          if (!rs1.is_ok()) return rs1.status();
          builder_.emit_r(*maybe, *rd, *rs1, 0);
          return Status::ok();
        }
        if (auto st = need_operands(line, 3); !st.is_ok()) return st;
        auto rd = reg(line, line.operands[0], fd);
        auto rs1 = reg(line, line.operands[1], f1);
        auto rs2 = reg(line, line.operands[2], f2);
        if (!rd.is_ok()) return rd.status();
        if (!rs1.is_ok()) return rs1.status();
        if (!rs2.is_ok()) return rs2.status();
        builder_.emit_r(*maybe, *rd, *rs1, *rs2);
        return Status::ok();
      }
      case arch::Format::kR4: {
        if (auto st = need_operands(line, 4); !st.is_ok()) return st;
        auto rd = freg(line, line.operands[0]);
        auto rs1 = freg(line, line.operands[1]);
        auto rs2 = freg(line, line.operands[2]);
        auto rs3 = freg(line, line.operands[3]);
        if (!rd.is_ok()) return rd.status();
        if (!rs1.is_ok()) return rs1.status();
        if (!rs2.is_ok()) return rs2.status();
        if (!rs3.is_ok()) return rs3.status();
        builder_.emit_r4(*maybe, *rd, *rs1, *rs2, *rs3);
        return Status::ok();
      }
      case arch::Format::kI: {
        const bool is_mem = *maybe == Op::kLb || *maybe == Op::kLh || *maybe == Op::kLw ||
                            *maybe == Op::kLbu || *maybe == Op::kLhu || *maybe == Op::kFlw ||
                            *maybe == Op::kJalr;
        if (is_mem && line.operands.size() == 2 &&
            line.operands[1].find('(') != std::string::npos) {
          auto rd = reg(line, line.operands[0], fd);
          if (!rd.is_ok()) return rd.status();
          int32_t imm = 0;
          unsigned rs1 = 0;
          if (auto st = parse_mem(line, line.operands[1], imm, rs1); !st.is_ok()) return st;
          builder_.emit_i(*maybe, *rd, rs1, imm);
          return Status::ok();
        }
        if (auto st = need_operands(line, 3); !st.is_ok()) return st;
        auto rd = reg(line, line.operands[0], fd);
        auto rs1 = xreg(line, line.operands[1]);
        if (!rd.is_ok()) return rd.status();
        if (!rs1.is_ok()) return rs1.status();
        int64_t v = 0;
        if (!parse_int(line.operands[2], v)) return error(line.number, "bad immediate");
        builder_.emit_i(*maybe, *rd, *rs1, static_cast<int32_t>(v));
        return Status::ok();
      }
      case arch::Format::kIShift: {
        if (auto st = need_operands(line, 3); !st.is_ok()) return st;
        auto rd = xreg(line, line.operands[0]);
        auto rs1 = xreg(line, line.operands[1]);
        if (!rd.is_ok()) return rd.status();
        if (!rs1.is_ok()) return rs1.status();
        int64_t v = 0;
        if (!parse_int(line.operands[2], v) || v < 0 || v > 31) {
          return error(line.number, "bad shift amount");
        }
        builder_.emit_i(*maybe, *rd, *rs1, static_cast<int32_t>(v));
        return Status::ok();
      }
      case arch::Format::kS: {
        if (auto st = need_operands(line, 2); !st.is_ok()) return st;
        auto rs2 = reg(line, line.operands[0], f2);
        if (!rs2.is_ok()) return rs2.status();
        int32_t imm = 0;
        unsigned rs1 = 0;
        if (auto st = parse_mem(line, line.operands[1], imm, rs1); !st.is_ok()) return st;
        builder_.emit_s(*maybe, rs1, *rs2, imm);
        return Status::ok();
      }
      case arch::Format::kJr: {
        if (auto st = need_operands(line, 2); !st.is_ok()) return st;
        auto rs1 = xreg(line, line.operands[0]);
        if (!rs1.is_ok()) return rs1.status();
        auto label = get_label(line.operands[1]);
        if (*maybe == Op::kSplit) {
          builder_.emit_split(*rs1, label);
        } else {
          builder_.emit_pred(*rs1, label);
        }
        return Status::ok();
      }
      case arch::Format::kB: {
        if (auto st = need_operands(line, 3); !st.is_ok()) return st;
        auto rs1 = xreg(line, line.operands[0]);
        auto rs2 = xreg(line, line.operands[1]);
        if (!rs1.is_ok()) return rs1.status();
        if (!rs2.is_ok()) return rs2.status();
        builder_.emit_branch(*maybe, *rs1, *rs2, get_label(line.operands[2]));
        return Status::ok();
      }
      case arch::Format::kU: {
        if (auto st = need_operands(line, 2); !st.is_ok()) return st;
        auto rd = xreg(line, line.operands[0]);
        if (!rd.is_ok()) return rd.status();
        int64_t v = 0;
        if (!parse_int(line.operands[1], v)) return error(line.number, "bad immediate");
        builder_.emit_u(*maybe, *rd, static_cast<int32_t>(v));
        return Status::ok();
      }
      case arch::Format::kJ: {
        if (*maybe == Op::kJoin) {
          if (auto st = need_operands(line, 1); !st.is_ok()) return st;
          builder_.emit_join(get_label(line.operands[0]));
          return Status::ok();
        }
        if (auto st = need_operands(line, 2); !st.is_ok()) return st;
        auto rd = xreg(line, line.operands[0]);
        if (!rd.is_ok()) return rd.status();
        builder_.emit_jal(*rd, get_label(line.operands[1]));
        return Status::ok();
      }
      case arch::Format::kCsr: {
        if (auto st = need_operands(line, 3); !st.is_ok()) return st;
        auto rd = xreg(line, line.operands[0]);
        if (!rd.is_ok()) return rd.status();
        int64_t csr = 0;
        if (!parse_int(line.operands[1], csr)) return error(line.number, "bad CSR number");
        auto rs1 = xreg(line, line.operands[2]);
        if (!rs1.is_ok()) return rs1.status();
        builder_.emit_i(*maybe, *rd, *rs1, static_cast<int32_t>(csr));
        return Status::ok();
      }
      case arch::Format::kAmo: {
        // amoadd.w rd, rs2, (rs1)
        if (auto st = need_operands(line, 3); !st.is_ok()) return st;
        auto rd = xreg(line, line.operands[0]);
        auto rs2 = xreg(line, line.operands[1]);
        if (!rd.is_ok()) return rd.status();
        if (!rs2.is_ok()) return rs2.status();
        int32_t imm = 0;
        unsigned rs1 = 0;
        if (auto st = parse_mem(line, line.operands[2], imm, rs1); !st.is_ok()) return st;
        if (imm != 0) return error(line.number, "AMO offset must be 0");
        builder_.emit_r(*maybe, *rd, rs1, *rs2);
        return Status::ok();
      }
      case arch::Format::kSys: {
        builder_.emit(arch::Instr{.op = *maybe});
        return Status::ok();
      }
    }
    return error(line.number, "unhandled format");
  }

  uint32_t base_;
  AsmBuilder builder_;
  std::unordered_map<std::string, AsmBuilder::Label> label_ids_;
  std::unordered_map<std::string, AsmBuilder::Label> labels_by_name_;
  std::vector<std::pair<std::string, size_t>> pending_binds_;  // label -> instr index
  size_t bind_cursor_ = 0;
  size_t emitted_lines_ = 0;
};

}  // namespace

Result<Program> assemble(const std::string& source, uint32_t base) {
  Assembler assembler(base);
  auto result = assembler.run(source);
  return result;
}

}  // namespace fgpu::vasm
