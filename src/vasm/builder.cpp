#include "vasm/builder.hpp"

#include <sstream>

namespace fgpu::vasm {

void AsmBuilder::li(unsigned rd, int32_t value) {
  if (value >= -2048 && value <= 2047) {
    emit_i(arch::Op::kAddi, rd, 0, value);
    return;
  }
  // lui loads imm<<12; addi adds the (sign-extended) low 12 bits, so the
  // upper part must be rounded to compensate when bit 11 is set.
  int32_t lo = value << 20 >> 20;  // sign-extended low 12 bits
  int32_t hi = (value - lo) >> 12;
  emit_u(arch::Op::kLui, rd, hi & 0xFFFFF);
  if (lo != 0) emit_i(arch::Op::kAddi, rd, rd, lo);
}

Result<Program> AsmBuilder::finalize(uint32_t base) const {
  Program prog;
  prog.base = base;
  prog.words.reserve(instrs_.size());
  for (size_t i = 0; i < instrs_.size(); ++i) {
    arch::Instr instr = instrs_[i].instr;
    if (instrs_[i].target != kNoLabel) {
      const int target_index = labels_[static_cast<size_t>(instrs_[i].target)];
      if (target_index == kUnbound) {
        return Result<Program>(ErrorKind::kInternal,
                               "unbound label referenced at instruction " + std::to_string(i));
      }
      if (instrs_[i].fix == FixKind::kLaHi || instrs_[i].fix == FixKind::kLaLo) {
        // auipc/addi pair: both immediates are relative to the auipc's pc.
        const size_t auipc_index = instrs_[i].fix == FixKind::kLaHi ? i : i - 1;
        const int64_t delta =
            (static_cast<int64_t>(target_index) - static_cast<int64_t>(auipc_index)) * 4;
        const int32_t lo = static_cast<int32_t>(delta) << 20 >> 20;
        const int32_t hi = (static_cast<int32_t>(delta) - lo) >> 12;
        instr.imm = instrs_[i].fix == FixKind::kLaHi ? (hi & 0xFFFFF) : lo;
      } else {
        const int64_t offset = (static_cast<int64_t>(target_index) - static_cast<int64_t>(i)) * 4;
        const auto& info = arch::op_info(instr.op);
        const bool is_b = info.fmt == arch::Format::kB;
        const int64_t limit = is_b ? 4096 : (1 << 20);
        if (offset < -limit || offset >= limit) {
          return Result<Program>(ErrorKind::kCompileError,
                                 "branch offset out of range at instruction " + std::to_string(i));
        }
        instr.imm = static_cast<int32_t>(offset);
      }
    }
    prog.words.push_back(arch::encode(instr));
  }
  for (const auto& [name, index] : pending_symbols_) {
    prog.symbols[name] = base + static_cast<uint32_t>(index * 4);
  }
  return prog;
}

std::string Program::disassemble() const {
  // Invert the symbol table for label printing.
  std::unordered_map<uint32_t, std::string> by_addr;
  for (const auto& [name, addr] : symbols) by_addr[addr] = name;

  std::ostringstream os;
  for (size_t i = 0; i < words.size(); ++i) {
    const uint32_t addr = base + static_cast<uint32_t>(i * 4);
    if (auto it = by_addr.find(addr); it != by_addr.end()) {
      os << it->second << ":\n";
    }
    char head[32];
    std::snprintf(head, sizeof(head), "  %08x:  %08x  ", addr, words[i]);
    os << head;
    if (auto instr = arch::decode(words[i])) {
      os << arch::to_string(*instr);
    } else {
      os << "<invalid>";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fgpu::vasm
