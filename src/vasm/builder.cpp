#include "vasm/builder.hpp"

#include <sstream>

namespace fgpu::vasm {

void AsmBuilder::li(unsigned rd, int32_t value) {
  if (value >= -2048 && value <= 2047) {
    emit_i(arch::Op::kAddi, rd, 0, value);
    return;
  }
  // lui loads imm<<12; addi adds the (sign-extended) low 12 bits, so the
  // upper part must be rounded to compensate when bit 11 is set.
  int32_t lo = value << 20 >> 20;  // sign-extended low 12 bits
  int32_t hi = (value - lo) >> 12;
  emit_u(arch::Op::kLui, rd, hi & 0xFFFFF);
  if (lo != 0) emit_i(arch::Op::kAddi, rd, rd, lo);
}

Result<Program> AsmBuilder::finalize(uint32_t base) const {
  Program prog;
  prog.base = base;
  prog.words.reserve(instrs_.size());
  for (size_t i = 0; i < instrs_.size(); ++i) {
    arch::Instr instr = instrs_[i].instr;
    if (instrs_[i].target != kNoLabel) {
      const int target_index = labels_[static_cast<size_t>(instrs_[i].target)];
      if (target_index == kUnbound) {
        return Result<Program>(ErrorKind::kInternal,
                               "unbound label referenced at instruction " + std::to_string(i));
      }
      if (instrs_[i].fix == FixKind::kLaHi || instrs_[i].fix == FixKind::kLaLo) {
        // auipc/addi pair: both immediates are relative to the auipc's pc.
        const size_t auipc_index = instrs_[i].fix == FixKind::kLaHi ? i : i - 1;
        const int64_t delta =
            (static_cast<int64_t>(target_index) - static_cast<int64_t>(auipc_index)) * 4;
        const int32_t lo = static_cast<int32_t>(delta) << 20 >> 20;
        const int32_t hi = (static_cast<int32_t>(delta) - lo) >> 12;
        instr.imm = instrs_[i].fix == FixKind::kLaHi ? (hi & 0xFFFFF) : lo;
      } else {
        const int64_t offset = (static_cast<int64_t>(target_index) - static_cast<int64_t>(i)) * 4;
        const auto& info = arch::op_info(instr.op);
        const bool is_b = info.fmt == arch::Format::kB;
        const int64_t limit = is_b ? 4096 : (1 << 20);
        if (offset < -limit || offset >= limit) {
          return Result<Program>(ErrorKind::kCompileError,
                                 "branch offset out of range at instruction " + std::to_string(i));
        }
        instr.imm = static_cast<int32_t>(offset);
      }
    }
    prog.words.push_back(arch::encode(instr));
  }
  for (const auto& [name, index] : pending_symbols_) {
    prog.symbols[name] = base + static_cast<uint32_t>(index * 4);
  }
  return prog;
}

std::string Program::disassemble() const { return disassemble(DisasmOptions{}); }

namespace {

// True for ops whose immediate is a pc-relative control-flow offset
// (branches, JAL, and the SIMT split/pred/join family).
bool is_pc_relative(arch::Format fmt) {
  return fmt == arch::Format::kB || fmt == arch::Format::kJ || fmt == arch::Format::kJr;
}

// Renders `instr` with its control-flow offset replaced by `label`
// (arch::to_string prints numeric offsets, which the assembler does not
// accept back — targets must be labels).
std::string to_string_with_label(const arch::Instr& instr, const std::string& label) {
  const auto& info = arch::op_info(instr.op);
  char buf[96];
  switch (info.fmt) {
    case arch::Format::kB:
      std::snprintf(buf, sizeof(buf), "%s %s, %s, %s", info.name, arch::xreg_name(instr.rs1),
                    arch::xreg_name(instr.rs2), label.c_str());
      break;
    case arch::Format::kJ:
      if (instr.op == arch::Op::kJoin) {
        std::snprintf(buf, sizeof(buf), "%s %s", info.name, label.c_str());
      } else {
        std::snprintf(buf, sizeof(buf), "%s %s, %s", info.name, arch::xreg_name(instr.rd),
                      label.c_str());
      }
      break;
    case arch::Format::kJr:
      std::snprintf(buf, sizeof(buf), "%s %s, %s", info.name, arch::xreg_name(instr.rs1),
                    label.c_str());
      break;
    default:
      return arch::to_string(instr);
  }
  return buf;
}

}  // namespace

std::string Program::disassemble(const DisasmOptions& options) const {
  // Invert the symbol table for label printing. Synthetic-label mode builds
  // its own names instead: symbol names like ".end" are not valid assembler
  // identifiers, and every branch target needs a label for re-assembly.
  std::unordered_map<uint32_t, std::string> by_addr;
  if (options.synth_labels) {
    for (size_t i = 0; i < words.size(); ++i) {
      const auto instr = arch::decode(words[i]);
      if (!instr || !is_pc_relative(arch::op_info(instr->op).fmt)) continue;
      const uint32_t target = base + static_cast<uint32_t>(i * 4) +
                              static_cast<uint32_t>(instr->imm);
      char name[16];
      std::snprintf(name, sizeof(name), "L%08x", target);
      by_addr[target] = name;
    }
  } else {
    for (const auto& [name, addr] : symbols) by_addr[addr] = name;
  }

  std::ostringstream os;
  int32_t last_source = -1;
  for (size_t i = 0; i < words.size(); ++i) {
    const uint32_t addr = base + static_cast<uint32_t>(i * 4);
    if (options.source_map != nullptr && i < options.source_map->word_source.size()) {
      const int32_t src = options.source_map->word_source[i];
      if (src >= 0 && src != last_source) {
        // Comments must stay on one line or the listing stops re-assembling:
        // source strings can embed control characters (printf format text).
        os << "# ";
        for (const char c : options.source_map->sources[static_cast<size_t>(src)]) {
          switch (c) {
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default: os << c; break;
          }
        }
        os << "\n";
        last_source = src;
      }
    }
    if (auto it = by_addr.find(addr); it != by_addr.end()) {
      os << it->second << ":\n";
    }
    if (options.annotate) os << options.annotate(addr, i);
    if (options.addresses) {
      char head[32];
      std::snprintf(head, sizeof(head), "  %08x:  %08x  ", addr, words[i]);
      os << head;
    } else {
      os << "  ";
    }
    const auto instr = arch::decode(words[i]);
    if (!instr) {
      os << "<invalid>";
    } else if (options.synth_labels && is_pc_relative(arch::op_info(instr->op).fmt)) {
      const uint32_t target = addr + static_cast<uint32_t>(instr->imm);
      os << to_string_with_label(*instr, by_addr.at(target));
    } else {
      os << arch::to_string(*instr);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace fgpu::vasm
