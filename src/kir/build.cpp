#include "kir/build.hpp"

namespace fgpu::kir {
namespace {

bool is_comparison(BinOp op) {
  switch (op) {
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLAnd:
    case BinOp::kLOr:
      return true;
    default:
      return false;
  }
}

[[maybe_unused]] bool is_int_only(BinOp op) {
  switch (op) {
    case BinOp::kAnd:
    case BinOp::kOr:
    case BinOp::kXor:
    case BinOp::kShl:
    case BinOp::kShr:
    case BinOp::kRem:
    case BinOp::kLAnd:
    case BinOp::kLOr:
      return true;
    default:
      return false;
  }
}

// OpenCL-style implicit promotion: when mixing i32 and f32, the integer side
// converts to float (constants are rewritten in place; other expressions get
// an explicit cast node).
ExprPtr promote_to_f32(const ExprPtr& e) {
  if (e->type == Scalar::kF32) return e;
  if (e->kind == ExprKind::kConstInt) return make_cf32(static_cast<float>(e->ival));
  return make_cast(Scalar::kF32, e);
}

}  // namespace

ExprPtr make_bin(BinOp op, ExprPtr a, ExprPtr b) {
  assert(a != nullptr && b != nullptr);
  if (a->type != b->type) {
    assert(!is_int_only(op) && "mixed types in an integer-only operation");
    a = promote_to_f32(a);
    b = promote_to_f32(b);
  }
  assert(!(is_int_only(op) && a->type == Scalar::kF32) && "integer-only op on float operands");
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin = op;
  e->type = is_comparison(op) ? Scalar::kI32 : a->type;
  e->args = {std::move(a), std::move(b)};
  return e;
}

ExprPtr make_un(UnOp op, ExprPtr a) {
  assert(a != nullptr);
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->un = op;
  switch (op) {
    case UnOp::kNeg:
    case UnOp::kAbs:
      e->type = a->type;
      break;
    case UnOp::kNot:
      assert(a->type == Scalar::kI32);
      e->type = Scalar::kI32;
      break;
    case UnOp::kBitcastI2F:
      assert(a->type == Scalar::kI32);
      e->type = Scalar::kF32;
      break;
    case UnOp::kBitcastF2I:
      assert(a->type == Scalar::kF32);
      e->type = Scalar::kI32;
      break;
  }
  e->args = {std::move(a)};
  return e;
}

ExprPtr make_select(ExprPtr cond, ExprPtr a, ExprPtr b) {
  assert(cond != nullptr && a != nullptr && b != nullptr);
  assert(cond->type == Scalar::kI32);
  if (a->type != b->type) {
    a = promote_to_f32(a);
    b = promote_to_f32(b);
  }
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kSelect;
  e->type = a->type;
  e->args = {std::move(cond), std::move(a), std::move(b)};
  return e;
}

ExprPtr make_cast(Scalar to, ExprPtr a) {
  assert(a != nullptr);
  if (a->type == to) return a;
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCast;
  e->type = to;
  e->args = {std::move(a)};
  return e;
}

ExprPtr make_call(Builtin fn, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCall;
  e->call = fn;
  e->type = Scalar::kF32;
  if (fn == Builtin::kPowi) {
    assert(args.size() == 2);
    args[0] = promote_to_f32(args[0]);
    assert(args[1]->type == Scalar::kI32);
  } else {
    assert(args.size() == 1);
    args[0] = promote_to_f32(args[0]);
  }
  e->args = std::move(args);
  return e;
}

ExprPtr make_special(SpecialReg reg, int dim) {
  assert(dim >= 0 && dim < 3);
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kSpecial;
  e->special = reg;
  e->type = Scalar::kI32;
  e->index = dim;
  return e;
}

ExprPtr make_load(int buffer, Scalar elem, bool is_local, ExprPtr index, bool pipelined) {
  assert(buffer >= 0 && index != nullptr);
  assert(index->type == Scalar::kI32 && "buffer index must be an integer");
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLoad;
  e->type = elem;
  e->index = buffer;
  e->is_local = is_local;
  e->pipelined = pipelined;
  e->args = {std::move(index)};
  return e;
}

}  // namespace fgpu::kir
