// Compiler passes over KIR.
//
// Two of these reproduce the paper's §III-B HLS area-optimization steps as
// real program transformations (applied to the same kernel both backends
// consume):
//   * cse_variable_reuse  — "O1: Variable Reuse" (Fig. 6, Listing 2):
//     repeated pure subexpressions (including repeated global loads) are
//     hoisted into local variables.
//   * mark_pipelined_loads — "O2: Load Unit Pipelining" (Fig. 6, Listing 3):
//     annotates global loads as __pipelined_load, switching the HLS LSU
//     from 32 burst-coalesced load units to a single pipelined unit.
//
// The remaining passes serve the soft-GPU flow: verify (front-end checks),
// const_fold, expand_builtins (exp/log/floor lowered to polynomial KIR so
// the device needs no libm), and analyze_divergence (drives SPLIT/JOIN vs
// plain-branch selection in codegen — the paper's "uniform statement
// analysis" opportunity, §IV-A).
#pragma once

#include "common/status.hpp"
#include "kir/kir.hpp"

namespace fgpu::codegen {
class RemarkSink;  // codegen/remarks.hpp; passes only pass the pointer on
}

namespace fgpu::kir {

// Deep-clones a kernel's statement tree (statements are shared_ptrs, so a
// plain Kernel copy aliases them; passes mutate statements in place).
Kernel clone_kernel(const Kernel& kernel);

// Static checks: variables defined before use, assignment targets exist,
// buffer/param indices in range, loop variables not mutated in their body.
Status verify(const Kernel& kernel);
Status verify(const Module& module);

// Folds constant subexpressions. Returns number of folded nodes.
int const_fold(Kernel& kernel);

// O1 "variable reuse": hoists repeated subexpressions into lets. A repeated
// expression containing loads is hoisted only if every occurrence executes
// before any store/atomic that may overwrite the loaded location (buffers
// are assumed non-aliasing, like HLS compilers treating restrict pointers).
// Returns the number of introduced variables.
int cse_variable_reuse(Kernel& kernel);

// O2 "load unit pipelining": marks global loads with the pipelined-LSU
// annotation. Returns the number of loads marked.
int mark_pipelined_loads(Kernel& kernel);

// Selective variant: marks only loads that initialize let-bound variables —
// exactly how the paper's Listing 3 applies __pipelined_load to the three
// hoisted "variable reuse" temporaries.
int mark_pipelined_loads_in_lets(Kernel& kernel);

// Replaces exp/log/floor/rsqrt/powi calls with inline KIR (polynomial
// approximations using bit-level float manipulation). sqrt stays native —
// both targets have hardware sqrt. Returns number of expanded calls.
int expand_builtins(Kernel& kernel);
int expand_builtins(Module& module);

// Divergence analysis: sets Stmt::divergent on control statements.
// `group_id_uniform` reflects the dispatch mapping: true when work-groups
// map to cores (barrier kernels), false for grid-stride dispatch where even
// get_group_id varies across lanes.
void analyze_divergence(Kernel& kernel, bool group_id_uniform);

// ---------------------------------------------------------------------------
// Soft-GPU -O pipeline passes (opt.cpp). These run at -O2 inside
// codegen::compile_kernel (on the kernel clone); they are semantics-
// preserving against the reference interpreter bit for bit.
// ---------------------------------------------------------------------------

// Removes statements with no observable effect: lets/assignments to
// variables that are never read (pure right-hand sides only), empty ifs
// with pure conditions, and empty for-loops with pure bounds and a
// provably-terminating (positive constant) step. Iterates to fixpoint.
// Returns the number of statements removed.
//
// All three -O2 passes take an optional codegen::RemarkSink and report
// applied/missed/blocked rewrites with statement provenance. Null sink
// (the default) is the exact pre-observability pipeline — no strings are
// built, no branches change.
int dead_code_elim(Kernel& kernel, codegen::RemarkSink* sink = nullptr);

// Loop-invariant code motion over KIR for/while loops: hoists maximal pure
// invariant subexpressions (e.g. the `row * size` address products inside
// sgemm's k-loop) into fresh `licm%d` lets directly before the loop and
// rewrites the loop to reference them. Pure expressions cannot trap (the
// ISA's div/rem never trap), so evaluating them on the zero-trip path is
// safe. Returns the number of hoisted expressions.
int licm(Kernel& kernel, codegen::RemarkSink* sink = nullptr);

// Strength reduction of integer arithmetic: x*2^k -> x<<k (exact mod 2^32);
// x/2^k -> x>>k and x%2^k -> x & (2^k-1) only where x is provably
// non-negative (signed division truncates toward zero, so the shift/mask
// forms are only equivalent for non-negative dividends). Returns the number
// of rewritten operations.
int strength_reduce(Kernel& kernel, codegen::RemarkSink* sink = nullptr);

// ---------------------------------------------------------------------------
// Provenance + size helpers shared by codegen's source map and the remark
// layer (codegen/remarks.hpp).
// ---------------------------------------------------------------------------

// Short one-line rendering of a statement (nested bodies elided), truncated
// to 80 chars. This is THE provenance string: codegen stamps it into the
// PC source map and every remark carries it, which is what lets
// fgpu.codegen.v1 join remarks against measured per-PC cycles.
std::string stmt_summary(const Kernel& kernel, const Stmt& stmt);

// KIR size metric for pass telemetry: statements + expression nodes over
// the whole kernel body.
int kernel_size(const Kernel& kernel);

}  // namespace fgpu::kir
