#include "kir/digest.hpp"

#include "common/bits.hpp"

namespace fgpu::kir {
namespace {

// FNV-1a over explicit byte feeds. Every field is mixed with a leading kind
// byte so differently-shaped trees cannot collide by field reordering
// (e.g. a kStore's index/value vs a kLet's value/step).
struct Fnv {
  uint64_t h = 14695981039346656037ull;

  void byte(uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) byte(static_cast<uint8_t>(v >> (i * 8)));
  }
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<uint8_t>(v >> (i * 8)));
  }
  void str(const std::string& s) {
    u64(s.size());
    for (const char c : s) byte(static_cast<uint8_t>(c));
  }
};

void mix_expr(Fnv& fnv, const ExprPtr& e) {
  if (e == nullptr) {
    fnv.byte(0xEE);  // null marker distinct from any ExprKind
    return;
  }
  fnv.byte(static_cast<uint8_t>(e->kind));
  fnv.byte(static_cast<uint8_t>(e->type));
  fnv.u32(static_cast<uint32_t>(e->ival));
  fnv.u32(f2u(e->fval));  // bit pattern, so -0.0f and NaN payloads count
  fnv.str(e->var);
  fnv.u32(static_cast<uint32_t>(e->index));
  fnv.byte(e->is_local ? 1 : 0);
  fnv.byte(e->pipelined ? 1 : 0);
  fnv.byte(static_cast<uint8_t>(e->bin));
  fnv.byte(static_cast<uint8_t>(e->un));
  fnv.byte(static_cast<uint8_t>(e->call));
  fnv.byte(static_cast<uint8_t>(e->special));
  fnv.u64(e->args.size());
  for (const auto& arg : e->args) mix_expr(fnv, arg);
}

void mix_stmt(Fnv& fnv, const StmtPtr& s) {
  if (s == nullptr) {
    fnv.byte(0x55);  // null marker distinct from any StmtKind
    return;
  }
  fnv.byte(static_cast<uint8_t>(s->kind));
  fnv.str(s->var);
  mix_expr(fnv, s->a);
  mix_expr(fnv, s->b);
  mix_expr(fnv, s->c);
  fnv.u32(static_cast<uint32_t>(s->buffer));
  fnv.byte(s->is_local ? 1 : 0);
  fnv.byte(static_cast<uint8_t>(s->atomic));
  fnv.str(s->result_var);
  fnv.u64(s->body.size());
  for (const auto& child : s->body) mix_stmt(fnv, child);
  fnv.u64(s->else_body.size());
  for (const auto& child : s->else_body) mix_stmt(fnv, child);
  fnv.str(s->text);
  fnv.u64(s->print_args.size());
  for (const auto& arg : s->print_args) mix_expr(fnv, arg);
  // Stmt::divergent is intentionally not mixed: derived analysis state,
  // recomputed by every consumer on a clone.
}

void mix_kernel(Fnv& fnv, const Kernel& kernel) {
  fnv.str(kernel.name);
  fnv.u64(kernel.params.size());
  for (const auto& param : kernel.params) {
    fnv.str(param.name);
    fnv.byte(param.is_buffer ? 1 : 0);
    fnv.byte(static_cast<uint8_t>(param.elem));
  }
  fnv.u64(kernel.locals.size());
  for (const auto& local : kernel.locals) {
    fnv.str(local.name);
    fnv.byte(static_cast<uint8_t>(local.elem));
    fnv.u32(local.size);
  }
  fnv.u64(kernel.body.size());
  for (const auto& stmt : kernel.body) mix_stmt(fnv, stmt);
}

}  // namespace

uint64_t kernel_digest(const Kernel& kernel) {
  Fnv fnv;
  mix_kernel(fnv, kernel);
  return fnv.h;
}

uint64_t module_digest(const Module& module) {
  Fnv fnv;
  fnv.str(module.name);
  fnv.u64(module.kernels.size());
  for (const auto& kernel : module.kernels) mix_kernel(fnv, kernel);
  return fnv.h;
}

}  // namespace fgpu::kir
