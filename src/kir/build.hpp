// Kernel-construction EDSL. Benchmarks express their OpenCL kernels through
// this builder; operator overloading on `Val` keeps the kernel bodies close
// to the original OpenCL C source (compare suite/ kernels with the Rodinia
// listings in the paper's Fig. 6).
#pragma once

#include <cassert>
#include <functional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "kir/kir.hpp"

namespace fgpu::kir {

// ---------------------------------------------------------------------------
// Expression factories
// ---------------------------------------------------------------------------

inline ExprPtr make_ci32(int32_t v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConstInt;
  e->type = Scalar::kI32;
  e->ival = v;
  return e;
}

inline ExprPtr make_cf32(float v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConstFloat;
  e->type = Scalar::kF32;
  e->fval = v;
  return e;
}

inline ExprPtr make_var(std::string name, Scalar type) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kVar;
  e->type = type;
  e->var = std::move(name);
  return e;
}

ExprPtr make_bin(BinOp op, ExprPtr a, ExprPtr b);
ExprPtr make_un(UnOp op, ExprPtr a);
ExprPtr make_select(ExprPtr cond, ExprPtr a, ExprPtr b);
ExprPtr make_cast(Scalar to, ExprPtr a);
ExprPtr make_call(Builtin fn, std::vector<ExprPtr> args);
ExprPtr make_special(SpecialReg reg, int dim);
ExprPtr make_load(int buffer, Scalar elem, bool is_local, ExprPtr index, bool pipelined = false);

// ---------------------------------------------------------------------------
// Val: expression wrapper with operators
// ---------------------------------------------------------------------------

class Val {
 public:
  Val() = default;
  explicit Val(ExprPtr expr) : expr_(std::move(expr)) {}
  Val(int v) : expr_(make_ci32(v)) {}            // NOLINT
  Val(int64_t v) : expr_(make_ci32(static_cast<int32_t>(v))) {}  // NOLINT
  Val(uint32_t v) : expr_(make_ci32(static_cast<int32_t>(v))) {}  // NOLINT
  Val(float v) : expr_(make_cf32(v)) {}          // NOLINT
  Val(double v) : expr_(make_cf32(static_cast<float>(v))) {}  // NOLINT

  const ExprPtr& expr() const {
    assert(expr_ && "use of empty Val");
    return expr_;
  }
  bool valid() const { return expr_ != nullptr; }
  Scalar type() const { return expr()->type; }

 private:
  ExprPtr expr_;
};

inline Val operator+(const Val& a, const Val& b) { return Val(make_bin(BinOp::kAdd, a.expr(), b.expr())); }
inline Val operator-(const Val& a, const Val& b) { return Val(make_bin(BinOp::kSub, a.expr(), b.expr())); }
inline Val operator*(const Val& a, const Val& b) { return Val(make_bin(BinOp::kMul, a.expr(), b.expr())); }
inline Val operator/(const Val& a, const Val& b) { return Val(make_bin(BinOp::kDiv, a.expr(), b.expr())); }
inline Val operator%(const Val& a, const Val& b) { return Val(make_bin(BinOp::kRem, a.expr(), b.expr())); }
inline Val operator&(const Val& a, const Val& b) { return Val(make_bin(BinOp::kAnd, a.expr(), b.expr())); }
inline Val operator|(const Val& a, const Val& b) { return Val(make_bin(BinOp::kOr, a.expr(), b.expr())); }
inline Val operator^(const Val& a, const Val& b) { return Val(make_bin(BinOp::kXor, a.expr(), b.expr())); }
inline Val operator<<(const Val& a, const Val& b) { return Val(make_bin(BinOp::kShl, a.expr(), b.expr())); }
inline Val operator>>(const Val& a, const Val& b) { return Val(make_bin(BinOp::kShr, a.expr(), b.expr())); }
inline Val operator<(const Val& a, const Val& b) { return Val(make_bin(BinOp::kLt, a.expr(), b.expr())); }
inline Val operator<=(const Val& a, const Val& b) { return Val(make_bin(BinOp::kLe, a.expr(), b.expr())); }
inline Val operator>(const Val& a, const Val& b) { return Val(make_bin(BinOp::kGt, a.expr(), b.expr())); }
inline Val operator>=(const Val& a, const Val& b) { return Val(make_bin(BinOp::kGe, a.expr(), b.expr())); }
inline Val operator==(const Val& a, const Val& b) { return Val(make_bin(BinOp::kEq, a.expr(), b.expr())); }
inline Val operator!=(const Val& a, const Val& b) { return Val(make_bin(BinOp::kNe, a.expr(), b.expr())); }
inline Val operator&&(const Val& a, const Val& b) { return Val(make_bin(BinOp::kLAnd, a.expr(), b.expr())); }
inline Val operator||(const Val& a, const Val& b) { return Val(make_bin(BinOp::kLOr, a.expr(), b.expr())); }
inline Val operator-(const Val& a) { return Val(make_un(UnOp::kNeg, a.expr())); }
inline Val operator!(const Val& a) { return Val(make_un(UnOp::kNot, a.expr())); }

inline Val vmin(const Val& a, const Val& b) { return Val(make_bin(BinOp::kMin, a.expr(), b.expr())); }
inline Val vmax(const Val& a, const Val& b) { return Val(make_bin(BinOp::kMax, a.expr(), b.expr())); }
inline Val vabs(const Val& a) { return Val(make_un(UnOp::kAbs, a.expr())); }
inline Val vsqrt(const Val& a) { return Val(make_call(Builtin::kSqrt, {a.expr()})); }
inline Val vrsqrt(const Val& a) { return Val(make_call(Builtin::kRsqrt, {a.expr()})); }
inline Val vexp(const Val& a) { return Val(make_call(Builtin::kExp, {a.expr()})); }
inline Val vlog(const Val& a) { return Val(make_call(Builtin::kLog, {a.expr()})); }
inline Val vfloor(const Val& a) { return Val(make_call(Builtin::kFloor, {a.expr()})); }
inline Val vselect(const Val& cond, const Val& a, const Val& b) {
  return Val(make_select(cond.expr(), a.expr(), b.expr()));
}
inline Val to_f32(const Val& a) { return Val(make_cast(Scalar::kF32, a.expr())); }
inline Val to_i32(const Val& a) { return Val(make_cast(Scalar::kI32, a.expr())); }
inline Val bitcast_f32(const Val& a) { return Val(make_un(UnOp::kBitcastI2F, a.expr())); }
inline Val bitcast_i32(const Val& a) { return Val(make_un(UnOp::kBitcastF2I, a.expr())); }

// ---------------------------------------------------------------------------
// Buffer handle
// ---------------------------------------------------------------------------

struct Buf {
  int index = -1;        // param index, or local-array slot if is_local
  Scalar elem = Scalar::kF32;
  bool is_local = false;
};

// ---------------------------------------------------------------------------
// KernelBuilder
// ---------------------------------------------------------------------------

class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name) {
    kernel_.name = std::move(name);
    stack_.push_back(&kernel_.body);
  }

  // Parameters (declaration order defines the runtime set_arg order).
  Buf buffer(const std::string& name, Scalar elem) {
    kernel_.params.push_back(Param{name, true, elem});
    return Buf{static_cast<int>(kernel_.params.size() - 1), elem, false};
  }
  Buf buf_f32(const std::string& name) { return buffer(name, Scalar::kF32); }
  Buf buf_i32(const std::string& name) { return buffer(name, Scalar::kI32); }

  Val param(const std::string& name, Scalar type) {
    kernel_.params.push_back(Param{name, false, type});
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kParam;
    e->type = type;
    e->index = static_cast<int>(kernel_.params.size() - 1);
    return Val(e);
  }
  Val param_i32(const std::string& name) { return param(name, Scalar::kI32); }
  Val param_f32(const std::string& name) { return param(name, Scalar::kF32); }

  Buf local_array(const std::string& name, Scalar elem, uint32_t size) {
    kernel_.locals.push_back(LocalArray{name, elem, size});
    return Buf{static_cast<int>(kernel_.locals.size() - 1), elem, true};
  }
  Buf local_f32(const std::string& name, uint32_t size) {
    return local_array(name, Scalar::kF32, size);
  }
  Buf local_i32(const std::string& name, uint32_t size) {
    return local_array(name, Scalar::kI32, size);
  }

  // Work-item built-ins.
  Val global_id(int dim = 0) { return Val(make_special(SpecialReg::kGlobalId, dim)); }
  Val local_id(int dim = 0) { return Val(make_special(SpecialReg::kLocalId, dim)); }
  Val group_id(int dim = 0) { return Val(make_special(SpecialReg::kGroupId, dim)); }
  Val global_size(int dim = 0) { return Val(make_special(SpecialReg::kGlobalSize, dim)); }
  Val local_size(int dim = 0) { return Val(make_special(SpecialReg::kLocalSize, dim)); }
  Val num_groups(int dim = 0) { return Val(make_special(SpecialReg::kNumGroups, dim)); }

  // Memory.
  Val load(const Buf& buf, const Val& index) {
    return Val(make_load(buf.index, buf.elem, buf.is_local, index.expr()));
  }
  void store(const Buf& buf, const Val& index, const Val& value) {
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kStore;
    s->buffer = buf.index;
    s->is_local = buf.is_local;
    s->a = index.expr();
    s->b = coerce(value, buf.elem).expr();
    append(std::move(s));
  }

  // Variables.
  Val let_(const std::string& name, const Val& value) {
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kLet;
    s->var = fresh(name);
    s->a = value.expr();
    const std::string bound = s->var;
    append(std::move(s));
    return Val(make_var(bound, value.type()));
  }
  void assign(const Val& var, const Val& value) {
    assert(var.expr()->kind == ExprKind::kVar && "assign target must be a variable");
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kAssign;
    s->var = var.expr()->var;
    s->a = coerce(value, var.type()).expr();
    append(std::move(s));
  }

  // Control flow.
  void if_(const Val& cond, const std::function<void()>& then_fn,
           const std::function<void()>& else_fn = nullptr) {
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kIf;
    s->a = cond.expr();
    Stmt* raw = s.get();
    append(std::move(s));
    stack_.push_back(&raw->body);
    then_fn();
    stack_.pop_back();
    if (else_fn) {
      stack_.push_back(&raw->else_body);
      else_fn();
      stack_.pop_back();
    }
  }

  // for (var = begin; var < end; var += step)
  void for_(const std::string& name, const Val& begin, const Val& end,
            const std::function<void(Val)>& body_fn, const Val& step = Val(1)) {
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kFor;
    s->var = fresh(name);
    s->a = begin.expr();
    s->b = end.expr();
    s->c = step.expr();
    Stmt* raw = s.get();
    const std::string bound = raw->var;
    append(std::move(s));
    stack_.push_back(&raw->body);
    body_fn(Val(make_var(bound, Scalar::kI32)));
    stack_.pop_back();
  }

  void while_(const Val& cond, const std::function<void()>& body_fn) {
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kWhile;
    s->a = cond.expr();
    Stmt* raw = s.get();
    append(std::move(s));
    stack_.push_back(&raw->body);
    body_fn();
    stack_.pop_back();
  }

  void barrier() {
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kBarrier;
    append(std::move(s));
  }

  // Atomics (32-bit integer, as in OpenCL 1.2 / the paper's hybridsort case).
  void atomic(AtomicOp op, const Buf& buf, const Val& index, const Val& value) {
    append(make_atomic(op, buf, index, value, ""));
  }
  Val atomic_ret(AtomicOp op, const Buf& buf, const Val& index, const Val& value) {
    const std::string result = fresh("atomic_old");
    append(make_atomic(op, buf, index, value, result));
    return Val(make_var(result, Scalar::kI32));
  }
  void atomic_add(const Buf& buf, const Val& index, const Val& value) {
    atomic(AtomicOp::kAdd, buf, index, value);
  }
  void atomic_min(const Buf& buf, const Val& index, const Val& value) {
    atomic(AtomicOp::kMin, buf, index, value);
  }
  void atomic_max(const Buf& buf, const Val& index, const Val& value) {
    atomic(AtomicOp::kMax, buf, index, value);
  }

  void print(const std::string& format, std::vector<Val> args = {}) {
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kPrint;
    s->text = format;
    for (const auto& v : args) s->print_args.push_back(v.expr());
    append(std::move(s));
  }

  Kernel build() { return kernel_; }

 private:
  Val coerce(const Val& v, Scalar want) {
    if (v.type() == want) return v;
    // Integer constants adapt implicitly; everything else needs a cast,
    // which we insert for convenience (matches OpenCL implicit conversion).
    return Val(make_cast(want, v.expr()));
  }

  std::string fresh(const std::string& base) {
    if (!used_names_.contains(base)) {
      used_names_.insert(base);
      return base;
    }
    for (int i = 2;; ++i) {
      std::string candidate = base + "_" + std::to_string(i);
      if (!used_names_.contains(candidate)) {
        used_names_.insert(candidate);
        return candidate;
      }
    }
  }

  StmtPtr make_atomic(AtomicOp op, const Buf& buf, const Val& index, const Val& value,
                      const std::string& result) {
    assert(buf.elem == Scalar::kI32 && "atomics are 32-bit integer only");
    auto s = std::make_shared<Stmt>();
    s->kind = StmtKind::kAtomic;
    s->atomic = op;
    s->buffer = buf.index;
    s->is_local = buf.is_local;
    s->a = index.expr();
    s->b = value.expr();
    s->result_var = result;
    return s;
  }

  void append(StmtPtr s) { stack_.back()->push_back(std::move(s)); }

  Kernel kernel_;
  std::vector<std::vector<StmtPtr>*> stack_;
  std::unordered_set<std::string> used_names_;
};

}  // namespace fgpu::kir
