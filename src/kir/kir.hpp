// KIR — the kernel intermediate representation.
//
// KIR plays the role OpenCL C + LLVM IR play in the paper's two flows
// (Fig. 2): benchmarks are written once against KIR, and the *same* kernel
// is consumed by
//   * the soft-GPU kernel compiler (codegen/ -> Vortex ISA binary), the
//     stand-in for the PoCL+LLVM pipeline of Fig. 5, and
//   * the HLS compiler model (hls/ -> pipelined datapath + area report),
//     the stand-in for the Intel AOC pipeline of Fig. 3.
//
// KIR is structured (expressions + statement trees, not a CFG), which
// mirrors the source level at which the paper's optimizations operate:
// "variable reuse" (O1) is an expression-level CSE pass and "pipelined
// load" (O2) is a per-load annotation, exactly as in Fig. 6's listings.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fgpu::kir {

enum class Scalar : uint8_t { kI32, kF32 };

inline const char* to_string(Scalar s) { return s == Scalar::kI32 ? "int" : "float"; }

// ---------------------------------------------------------------------------
// Expressions (immutable trees)
// ---------------------------------------------------------------------------

enum class ExprKind : uint8_t {
  kConstInt,
  kConstFloat,
  kVar,      // reference to a let-bound or loop variable
  kParam,    // scalar kernel parameter
  kBinary,
  kUnary,
  kSelect,   // cond ? a : b (lane-wise)
  kCast,     // i32 <-> f32 value conversion
  kLoad,     // buffer[index]; buffer is a kernel param or a __local array
  kSpecial,  // work-item built-ins (get_global_id etc.)
  kCall,     // math built-ins
};

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,
  kMin, kMax,
  kLt, kLe, kGt, kGe, kEq, kNe,  // produce i32 0/1
  kLAnd, kLOr,                   // logical (operands are i32 0/1)
};

enum class UnOp : uint8_t { kNeg, kNot, kAbs, kBitcastI2F, kBitcastF2I };

enum class Builtin : uint8_t { kSqrt, kRsqrt, kExp, kLog, kFloor, kPowi };

// OpenCL work-item functions; `index` holds the dimension (0..2).
enum class SpecialReg : uint8_t {
  kGlobalId, kLocalId, kGroupId,
  kGlobalSize, kLocalSize, kNumGroups,
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  ExprKind kind;
  Scalar type = Scalar::kI32;

  int32_t ival = 0;   // kConstInt
  float fval = 0.0f;  // kConstFloat
  std::string var;    // kVar name
  int index = 0;      // kParam: param index | kLoad: buffer param index or
                      // local slot | kSpecial: dimension
  bool is_local = false;   // kLoad from __local memory
  bool pipelined = false;  // kLoad marked __pipelined_load (paper O2)

  BinOp bin = BinOp::kAdd;
  UnOp un = UnOp::kNeg;
  Builtin call = Builtin::kSqrt;
  SpecialReg special = SpecialReg::kGlobalId;

  std::vector<ExprPtr> args;

  const ExprPtr& a() const { return args[0]; }
  const ExprPtr& b() const { return args[1]; }
  const ExprPtr& c() const { return args[2]; }
};

// Structural helpers (used by CSE, the verifier and the HLS DFG builder).
bool expr_equal(const ExprPtr& a, const ExprPtr& b);
size_t expr_hash(const ExprPtr& e);
size_t expr_size(const ExprPtr& e);  // node count
std::string expr_to_string(const ExprPtr& e);
bool expr_is_pure(const ExprPtr& e);  // no loads
// True if the expression contains a load from the given buffer/local slot.
bool expr_reads_buffer(const ExprPtr& e, int buffer, bool is_local);
bool expr_contains_load(const ExprPtr& e);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : uint8_t {
  kLet,      // let var = expr       (single assignment introduction)
  kAssign,   // var = expr           (mutation of an existing variable)
  kStore,    // buffer[index] = value
  kIf,
  kFor,      // for (var = a; var < b; var += c)
  kWhile,    // while (cond)
  kBarrier,  // OpenCL barrier(CLK_LOCAL_MEM_FENCE)
  kAtomic,   // result_var = atomic_op(&buffer[index], value)
  kPrint,    // OpenCL printf
};

enum class AtomicOp : uint8_t { kAdd, kMin, kMax, kAnd, kOr, kXor, kExchange, kCmpxchg };

struct Stmt;
using StmtPtr = std::shared_ptr<Stmt>;

struct Stmt {
  StmtKind kind;

  std::string var;  // kLet/kAssign target, kFor induction variable
  ExprPtr a, b, c;  // kLet/kAssign: a = value
                    // kStore: a = index, b = value
                    // kIf/kWhile: a = condition
                    // kFor: a = begin, b = end, c = step
                    // kAtomic: a = index, b = operand, c = compare (cmpxchg)
  int buffer = -1;         // kStore/kAtomic target (param index or local slot)
  bool is_local = false;   // target is a __local array
  AtomicOp atomic = AtomicOp::kAdd;
  std::string result_var;  // kAtomic: optional old-value destination

  std::vector<StmtPtr> body;       // kIf then / loop body
  std::vector<StmtPtr> else_body;  // kIf else

  std::string text;                // kPrint format string
  std::vector<ExprPtr> print_args;

  // Filled by analysis passes (divergence analysis for codegen).
  bool divergent = true;
};

// ---------------------------------------------------------------------------
// Kernels and modules
// ---------------------------------------------------------------------------

struct Param {
  std::string name;
  bool is_buffer = false;
  Scalar elem = Scalar::kI32;  // buffer element type, or scalar type
};

struct LocalArray {
  std::string name;
  Scalar elem = Scalar::kF32;
  uint32_t size = 0;  // elements
};

struct Kernel {
  std::string name;
  std::vector<Param> params;
  std::vector<LocalArray> locals;
  std::vector<StmtPtr> body;

  bool has_barrier() const;
  bool has_atomic() const;
  bool has_print() const;
  uint32_t local_bytes() const;
  std::string to_string() const;  // OpenCL-like pretty print (Fig. 6 listings)
};

struct Module {
  std::string name;
  std::vector<Kernel> kernels;

  const Kernel* find(const std::string& kernel_name) const {
    for (const auto& k : kernels) {
      if (k.name == kernel_name) return &k;
    }
    return nullptr;
  }
};

// NDRange of a kernel launch (OpenCL clEnqueueNDRangeKernel geometry).
struct NDRange {
  uint32_t dims = 1;
  uint32_t global[3] = {1, 1, 1};
  uint32_t local[3] = {1, 1, 1};

  uint64_t global_items() const {
    return static_cast<uint64_t>(global[0]) * global[1] * global[2];
  }
  uint32_t local_items() const { return local[0] * local[1] * local[2]; }
  uint32_t num_groups(uint32_t d) const { return global[d] / local[d]; }
  uint64_t total_groups() const {
    return static_cast<uint64_t>(num_groups(0)) * num_groups(1) * num_groups(2);
  }

  static NDRange linear(uint32_t n, uint32_t wg = 64) {
    NDRange r;
    r.dims = 1;
    r.global[0] = n;
    r.local[0] = wg;
    return r;
  }
  static NDRange grid2d(uint32_t nx, uint32_t ny, uint32_t lx = 8, uint32_t ly = 8) {
    NDRange r;
    r.dims = 2;
    r.global[0] = nx;
    r.global[1] = ny;
    r.local[0] = lx;
    r.local[1] = ly;
    return r;
  }
};

}  // namespace fgpu::kir
