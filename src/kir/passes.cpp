#include "kir/passes.hpp"

#include <cmath>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/bits.hpp"
#include "kir/build.hpp"

namespace fgpu::kir {

namespace {

StmtPtr clone_stmt(const StmtPtr& s) {
  auto copy = std::make_shared<Stmt>(*s);
  for (auto& child : copy->body) child = clone_stmt(child);
  for (auto& child : copy->else_body) child = clone_stmt(child);
  return copy;
}

}  // namespace

Kernel clone_kernel(const Kernel& kernel) {
  Kernel copy = kernel;
  for (auto& s : copy.body) s = clone_stmt(s);
  return copy;
}

// ---------------------------------------------------------------------------
// verify
// ---------------------------------------------------------------------------

namespace {

class Verifier {
 public:
  explicit Verifier(const Kernel& kernel) : kernel_(kernel) {}

  Status run() {
    std::unordered_set<std::string> scope;
    return check_block(kernel_.body, scope);
  }

 private:
  Status err(const std::string& message) {
    return Status(ErrorKind::kCompileError, kernel_.name + ": " + message);
  }

  Status check_expr(const ExprPtr& e, const std::unordered_set<std::string>& scope) {
    if (!e) return err("null expression");
    switch (e->kind) {
      case ExprKind::kVar:
        if (!scope.contains(e->var)) return err("use of undefined variable '" + e->var + "'");
        break;
      case ExprKind::kParam:
        if (e->index < 0 || static_cast<size_t>(e->index) >= kernel_.params.size()) {
          return err("param index out of range");
        }
        if (kernel_.params[static_cast<size_t>(e->index)].is_buffer) {
          return err("scalar use of buffer param '" +
                     kernel_.params[static_cast<size_t>(e->index)].name + "'");
        }
        break;
      case ExprKind::kLoad: {
        if (e->is_local) {
          if (e->index < 0 || static_cast<size_t>(e->index) >= kernel_.locals.size()) {
            return err("local array slot out of range");
          }
        } else {
          if (e->index < 0 || static_cast<size_t>(e->index) >= kernel_.params.size() ||
              !kernel_.params[static_cast<size_t>(e->index)].is_buffer) {
            return err("load from non-buffer param");
          }
        }
        if (e->a()->type != Scalar::kI32) return err("non-integer buffer index");
        break;
      }
      case ExprKind::kSpecial:
        if (e->index < 0 || e->index > 2) return err("work-item dimension out of range");
        break;
      default:
        break;
    }
    for (const auto& arg : e->args) {
      if (auto st = check_expr(arg, scope); !st.is_ok()) return st;
    }
    return Status::ok();
  }

  Status check_block(const std::vector<StmtPtr>& block, std::unordered_set<std::string>& scope) {
    // Variables introduced here go out of scope at block end (we copy the
    // scope to keep sibling blocks independent).
    std::unordered_set<std::string> local = scope;
    for (const auto& s : block) {
      switch (s->kind) {
        case StmtKind::kLet:
          if (auto st = check_expr(s->a, local); !st.is_ok()) return st;
          if (local.contains(s->var)) return err("redefinition of '" + s->var + "'");
          local.insert(s->var);
          break;
        case StmtKind::kAssign:
          if (!local.contains(s->var)) return err("assignment to undefined '" + s->var + "'");
          if (loop_vars_.contains(s->var)) {
            return err("assignment to loop variable '" + s->var + "'");
          }
          if (auto st = check_expr(s->a, local); !st.is_ok()) return st;
          break;
        case StmtKind::kStore:
          if (auto st = check_expr(s->a, local); !st.is_ok()) return st;
          if (auto st = check_expr(s->b, local); !st.is_ok()) return st;
          if (auto st = check_target(*s); !st.is_ok()) return st;
          break;
        case StmtKind::kIf: {
          if (auto st = check_expr(s->a, local); !st.is_ok()) return st;
          if (auto st = check_block(s->body, local); !st.is_ok()) return st;
          if (auto st = check_block(s->else_body, local); !st.is_ok()) return st;
          break;
        }
        case StmtKind::kFor: {
          if (auto st = check_expr(s->a, local); !st.is_ok()) return st;
          if (auto st = check_expr(s->b, local); !st.is_ok()) return st;
          if (auto st = check_expr(s->c, local); !st.is_ok()) return st;
          if (local.contains(s->var)) return err("loop variable shadows '" + s->var + "'");
          local.insert(s->var);
          loop_vars_.insert(s->var);
          if (auto st = check_block(s->body, local); !st.is_ok()) return st;
          loop_vars_.erase(s->var);
          local.erase(s->var);
          break;
        }
        case StmtKind::kWhile:
          if (auto st = check_expr(s->a, local); !st.is_ok()) return st;
          if (auto st = check_block(s->body, local); !st.is_ok()) return st;
          break;
        case StmtKind::kBarrier:
          break;
        case StmtKind::kAtomic:
          if (auto st = check_expr(s->a, local); !st.is_ok()) return st;
          if (auto st = check_expr(s->b, local); !st.is_ok()) return st;
          if (s->atomic == AtomicOp::kCmpxchg) {
            if (!s->c) return err("cmpxchg needs a compare operand");
            if (auto st = check_expr(s->c, local); !st.is_ok()) return st;
          }
          if (auto st = check_target(*s); !st.is_ok()) return st;
          if (!s->result_var.empty()) {
            if (local.contains(s->result_var)) {
              return err("redefinition of '" + s->result_var + "'");
            }
            local.insert(s->result_var);
          }
          break;
        case StmtKind::kPrint:
          for (const auto& arg : s->print_args) {
            if (auto st = check_expr(arg, local); !st.is_ok()) return st;
          }
          break;
      }
    }
    scope = std::move(local);
    // Names defined in this block intentionally leak to subsequent siblings
    // only when the caller passed `scope` by reference at the same level;
    // nested blocks received a copy above.
    return Status::ok();
  }

  Status check_target(const Stmt& s) {
    if (s.is_local) {
      if (s.buffer < 0 || static_cast<size_t>(s.buffer) >= kernel_.locals.size()) {
        return err("store to invalid local array");
      }
    } else {
      if (s.buffer < 0 || static_cast<size_t>(s.buffer) >= kernel_.params.size() ||
          !kernel_.params[static_cast<size_t>(s.buffer)].is_buffer) {
        return err("store to non-buffer param");
      }
    }
    return Status::ok();
  }

  const Kernel& kernel_;
  std::unordered_set<std::string> loop_vars_;
};

}  // namespace

Status verify(const Kernel& kernel) { return Verifier(kernel).run(); }

Status verify(const Module& module) {
  std::unordered_set<std::string> names;
  for (const auto& kernel : module.kernels) {
    if (!names.insert(kernel.name).second) {
      return Status(ErrorKind::kCompileError, "duplicate kernel name '" + kernel.name + "'");
    }
    if (auto st = verify(kernel); !st.is_ok()) return st;
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// const_fold
// ---------------------------------------------------------------------------

namespace {

bool is_const(const ExprPtr& e) {
  return e->kind == ExprKind::kConstInt || e->kind == ExprKind::kConstFloat;
}

ExprPtr fold_expr(const ExprPtr& e, int& count) {
  auto node = std::make_shared<Expr>(*e);
  for (auto& arg : node->args) arg = fold_expr(arg, count);

  if (node->kind == ExprKind::kBinary && is_const(node->a()) && is_const(node->b())) {
    const ExprPtr &a = node->a(), &b = node->b();
    ++count;
    if (a->type == Scalar::kF32) {
      const float x = a->fval, y = b->fval;
      switch (node->bin) {
        case BinOp::kAdd: return make_cf32(x + y);
        case BinOp::kSub: return make_cf32(x - y);
        case BinOp::kMul: return make_cf32(x * y);
        case BinOp::kDiv: return make_cf32(x / y);
        case BinOp::kMin: return make_cf32(std::fmin(x, y));
        case BinOp::kMax: return make_cf32(std::fmax(x, y));
        case BinOp::kLt: return make_ci32(x < y);
        case BinOp::kLe: return make_ci32(x <= y);
        case BinOp::kGt: return make_ci32(x > y);
        case BinOp::kGe: return make_ci32(x >= y);
        case BinOp::kEq: return make_ci32(x == y);
        case BinOp::kNe: return make_ci32(x != y);
        default: --count; break;
      }
    } else {
      const int32_t x = a->ival, y = b->ival;
      switch (node->bin) {
        case BinOp::kAdd: return make_ci32(x + y);
        case BinOp::kSub: return make_ci32(x - y);
        case BinOp::kMul: return make_ci32(x * y);
        case BinOp::kAnd: return make_ci32(x & y);
        case BinOp::kOr: return make_ci32(x | y);
        case BinOp::kXor: return make_ci32(x ^ y);
        case BinOp::kShl: return make_ci32(x << (y & 31));
        case BinOp::kShr: return make_ci32(x >> (y & 31));
        case BinOp::kMin: return make_ci32(std::min(x, y));
        case BinOp::kMax: return make_ci32(std::max(x, y));
        case BinOp::kLt: return make_ci32(x < y);
        case BinOp::kLe: return make_ci32(x <= y);
        case BinOp::kGt: return make_ci32(x > y);
        case BinOp::kGe: return make_ci32(x >= y);
        case BinOp::kEq: return make_ci32(x == y);
        case BinOp::kNe: return make_ci32(x != y);
        case BinOp::kLAnd: return make_ci32(x != 0 && y != 0);
        case BinOp::kLOr: return make_ci32(x != 0 || y != 0);
        case BinOp::kDiv:
          if (y != 0) return make_ci32(x / y);
          --count;
          break;
        case BinOp::kRem:
          if (y != 0) return make_ci32(x % y);
          --count;
          break;
      }
    }
  }
  // Algebraic identities on integer adds/muls (x+0, x*1, x*0).
  if (node->kind == ExprKind::kBinary && node->type == Scalar::kI32) {
    const ExprPtr &a = node->a(), &b = node->b();
    auto const_val = [](const ExprPtr& x) -> std::optional<int32_t> {
      if (x->kind == ExprKind::kConstInt) return x->ival;
      return std::nullopt;
    };
    const auto ca = const_val(a), cb = const_val(b);
    if (node->bin == BinOp::kAdd) {
      if (ca == 0) { ++count; return b; }
      if (cb == 0) { ++count; return a; }
    } else if (node->bin == BinOp::kMul) {
      if (ca == 1) { ++count; return b; }
      if (cb == 1) { ++count; return a; }
      if (ca == 0 || cb == 0) { ++count; return make_ci32(0); }
    } else if (node->bin == BinOp::kSub && cb == 0) {
      ++count;
      return a;
    }
  }
  if (node->kind == ExprKind::kCast && is_const(node->a())) {
    ++count;
    if (node->type == Scalar::kF32) return make_cf32(static_cast<float>(node->a()->ival));
    return make_ci32(static_cast<int32_t>(node->a()->fval));
  }
  if (node->kind == ExprKind::kUnary && is_const(node->a())) {
    const ExprPtr& a = node->a();
    switch (node->un) {
      case UnOp::kNeg:
        ++count;
        return a->type == Scalar::kF32 ? make_cf32(-a->fval) : make_ci32(-a->ival);
      case UnOp::kNot: ++count; return make_ci32(a->ival == 0);
      case UnOp::kAbs:
        ++count;
        return a->type == Scalar::kF32 ? make_cf32(std::fabs(a->fval))
                                       : make_ci32(std::abs(a->ival));
      default:
        break;
    }
  }
  return node;
}

void fold_block(std::vector<StmtPtr>& block, int& count) {
  for (auto& s : block) {
    if (s->a) s->a = fold_expr(s->a, count);
    if (s->b) s->b = fold_expr(s->b, count);
    if (s->c) s->c = fold_expr(s->c, count);
    for (auto& arg : s->print_args) arg = fold_expr(arg, count);
    fold_block(s->body, count);
    fold_block(s->else_body, count);
  }
}

}  // namespace

int const_fold(Kernel& kernel) {
  int count = 0;
  fold_block(kernel.body, count);
  return count;
}

// ---------------------------------------------------------------------------
// cse_variable_reuse (paper O1)
// ---------------------------------------------------------------------------

namespace {

// Rewrites occurrences of `pattern` inside `e` with a variable reference.
ExprPtr replace_expr(const ExprPtr& e, const ExprPtr& pattern, const ExprPtr& replacement,
                     int& replaced) {
  if (expr_equal(e, pattern)) {
    ++replaced;
    return replacement;
  }
  if (e->args.empty()) return e;
  auto node = std::make_shared<Expr>(*e);
  for (auto& arg : node->args) arg = replace_expr(arg, pattern, replacement, replaced);
  return node;
}

// Collects every non-trivial subexpression of `e` into `out`.
void collect_subexprs(const ExprPtr& e, std::vector<ExprPtr>& out) {
  if (e->kind == ExprKind::kBinary || e->kind == ExprKind::kUnary ||
      e->kind == ExprKind::kSelect || e->kind == ExprKind::kCast || e->kind == ExprKind::kCall ||
      e->kind == ExprKind::kLoad) {
    out.push_back(e);
  }
  for (const auto& arg : e->args) collect_subexprs(arg, out);
}

// Which buffers does this expression load from (recursive)?
void loaded_buffers(const ExprPtr& e, std::vector<std::pair<int, bool>>& out) {
  if (e->kind == ExprKind::kLoad) out.push_back({e->index, e->is_local});
  for (const auto& arg : e->args) loaded_buffers(arg, out);
}

struct Occurrence {
  size_t stmt_index;
};

int cse_block(std::vector<StmtPtr>& block, Kernel& kernel, int& name_counter) {
  int introduced = 0;
  // Recurse into nested blocks first.
  for (auto& s : block) {
    introduced += cse_block(s->body, kernel, name_counter);
    introduced += cse_block(s->else_body, kernel, name_counter);
  }

  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 8) {
    changed = false;
    // Gather candidate subexpressions with occurrence statement indices.
    std::vector<std::pair<ExprPtr, std::vector<size_t>>> candidates;
    for (size_t i = 0; i < block.size(); ++i) {
      const Stmt& s = *block[i];
      std::vector<ExprPtr> subs;
      // Only straight-line statements participate; control-flow conditions
      // are cheap and hoisting across their bodies complicates scoping.
      if (s.kind == StmtKind::kLet || s.kind == StmtKind::kAssign ||
          s.kind == StmtKind::kStore) {
        if (s.a) collect_subexprs(s.a, subs);
        if (s.b) collect_subexprs(s.b, subs);
      }
      for (const auto& sub : subs) {
        if (expr_size(sub) < 2) continue;  // too small to be worth a variable
        bool found = false;
        for (auto& [expr, occs] : candidates) {
          if (expr_equal(expr, sub)) {
            occs.push_back(i);
            found = true;
            break;
          }
        }
        if (!found) candidates.push_back({sub, {i}});
      }
    }

    // Pick the largest repeated candidate that is safe to hoist.
    std::sort(candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
      return expr_size(a.first) > expr_size(b.first);
    });
    for (const auto& [expr, occs] : candidates) {
      if (occs.size() < 2) continue;
      const size_t first = occs.front();
      const size_t last = occs.back();
      // Loads may only be reused if no store/atomic to a loaded buffer
      // happens between the first and last occurrence (inclusive window,
      // conservative for same-statement store+use).
      std::vector<std::pair<int, bool>> bufs;
      loaded_buffers(expr, bufs);
      bool safe = true;
      if (!bufs.empty()) {
        for (size_t i = first; i <= last && safe; ++i) {
          const Stmt& s = *block[i];
          const bool writes = s.kind == StmtKind::kStore || s.kind == StmtKind::kAtomic;
          const bool control = !s.body.empty() || !s.else_body.empty();
          if (control) safe = false;  // writes inside nested blocks: be safe
          if (!writes) continue;
          for (const auto& [buf, local] : bufs) {
            if (s.buffer == buf && s.is_local == local && i < last) {
              // A write to a loaded buffer strictly before the last read
              // would make the reused value stale. A write *at* the last
              // occurrence is fine: a store evaluates its operands before
              // writing (this is exactly the paper's oldw_value hoist).
              safe = false;
            }
          }
        }
      }
      if (!safe) continue;

      // Hoist: insert a let before the first occurrence and rewrite.
      const std::string name = "reuse" + std::to_string(name_counter++);
      auto let = std::make_shared<Stmt>();
      let->kind = StmtKind::kLet;
      let->var = name;
      let->a = expr;
      const ExprPtr var = make_var(name, expr->type);
      int replaced = 0;
      for (size_t i = first; i < block.size(); ++i) {
        Stmt& s = *block[i];
        if (s.kind != StmtKind::kLet && s.kind != StmtKind::kAssign &&
            s.kind != StmtKind::kStore) {
          continue;
        }
        if (s.a) s.a = replace_expr(s.a, expr, var, replaced);
        if (s.b) s.b = replace_expr(s.b, expr, var, replaced);
      }
      block.insert(block.begin() + static_cast<std::ptrdiff_t>(first), let);
      ++introduced;
      changed = true;
      break;  // candidate indices are stale; rescan
    }
  }
  return introduced;
}

}  // namespace

int cse_variable_reuse(Kernel& kernel) {
  int name_counter = 0;
  return cse_block(kernel.body, kernel, name_counter);
}

// ---------------------------------------------------------------------------
// mark_pipelined_loads (paper O2)
// ---------------------------------------------------------------------------

namespace {

ExprPtr mark_loads(const ExprPtr& e, int& count) {
  auto node = std::make_shared<Expr>(*e);
  for (auto& arg : node->args) arg = mark_loads(arg, count);
  if (node->kind == ExprKind::kLoad && !node->is_local && !node->pipelined) {
    node->pipelined = true;
    ++count;
  }
  return node;
}

void mark_block(std::vector<StmtPtr>& block, int& count) {
  for (auto& s : block) {
    if (s->a) s->a = mark_loads(s->a, count);
    if (s->b) s->b = mark_loads(s->b, count);
    if (s->c) s->c = mark_loads(s->c, count);
    mark_block(s->body, count);
    mark_block(s->else_body, count);
  }
}

}  // namespace

int mark_pipelined_loads(Kernel& kernel) {
  int count = 0;
  mark_block(kernel.body, count);
  return count;
}

namespace {

void mark_let_block(std::vector<StmtPtr>& block, int& count) {
  for (auto& s : block) {
    if (s->kind == StmtKind::kLet && s->a) s->a = mark_loads(s->a, count);
    mark_let_block(s->body, count);
    mark_let_block(s->else_body, count);
  }
}

}  // namespace

int mark_pipelined_loads_in_lets(Kernel& kernel) {
  int count = 0;
  mark_let_block(kernel.body, count);
  return count;
}

// ---------------------------------------------------------------------------
// expand_builtins
// ---------------------------------------------------------------------------

namespace {

// exp(x) via 2^k * poly(r): range reduction against ln 2, 5th-order
// polynomial, exponent reassembled with integer bit manipulation. Matches
// how soft-GPU math libraries implement expf without hardware support.
ExprPtr expand_exp(const ExprPtr& x_expr) {
  const Val x{x_expr};
  const Val t = x * 1.4426950408889634f;  // x * log2(e)
  const Val k = to_i32(t + vselect(t >= 0.0f, Val(0.5f), Val(-0.5f)));  // round
  const Val r = x - to_f32(k) * 0.69314718055994531f;
  const Val p = 1.0f +
                r * (1.0f + r * (0.5f + r * (0.166666667f + r * (0.041666667f + r * 0.008333333f))));
  const Val scale = bitcast_f32((k + 127) << 23);
  const Val inf = bitcast_f32(Val(0x7F800000));
  const Val body = p * scale;
  return vselect(x > 88.0f, inf, vselect(x < -87.0f, Val(0.0f), body)).expr();
}

// log(x) via exponent extraction + atanh-form polynomial.
ExprPtr expand_log(const ExprPtr& x_expr) {
  const Val x{x_expr};
  const Val bits = bitcast_i32(x);
  const Val e = ((bits >> 23) & 255) - 127;
  const Val m = bitcast_f32((bits & 0x007FFFFF) | 0x3F800000);
  const Val adjust = m > 1.41421356f;
  const Val m2 = vselect(adjust, m * 0.5f, m);
  const Val e2 = to_f32(e + vselect(adjust, Val(1), Val(0)));
  const Val f = m2 - 1.0f;
  const Val s = f / (2.0f + f);
  const Val z = s * s;
  const Val poly = s * (2.0f + z * (0.666666667f + z * (0.4f + z * 0.285714286f)));
  return (poly + e2 * 0.69314718055994531f).expr();
}

ExprPtr expand_floor(const ExprPtr& x_expr) {
  const Val x{x_expr};
  const Val t = to_f32(to_i32(x));  // truncate toward zero
  return (t - vselect(t > x, Val(1.0f), Val(0.0f))).expr();
}

ExprPtr expand_rsqrt(const ExprPtr& x_expr) {
  return (Val(1.0f) / vsqrt(Val{x_expr})).expr();
}

ExprPtr expand_powi(const ExprPtr& base, const ExprPtr& exponent) {
  // Constant exponents unroll to multiplies; anything else is a misuse.
  assert(exponent->kind == ExprKind::kConstInt && "powi requires a constant exponent");
  int n = exponent->ival;
  assert(n >= 0 && n <= 16);
  if (n == 0) return make_cf32(1.0f);
  ExprPtr result = base;
  for (int i = 1; i < n; ++i) result = make_bin(BinOp::kMul, result, base);
  return result;
}

ExprPtr expand_expr(const ExprPtr& e, int& count) {
  auto node = std::make_shared<Expr>(*e);
  for (auto& arg : node->args) arg = expand_expr(arg, count);
  if (node->kind != ExprKind::kCall) return node;
  switch (node->call) {
    case Builtin::kExp: ++count; return expand_exp(node->args[0]);
    case Builtin::kLog: ++count; return expand_log(node->args[0]);
    case Builtin::kFloor: ++count; return expand_floor(node->args[0]);
    case Builtin::kRsqrt: ++count; return expand_rsqrt(node->args[0]);
    case Builtin::kPowi: ++count; return expand_powi(node->args[0], node->args[1]);
    case Builtin::kSqrt: break;  // native on both targets
  }
  return node;
}

void expand_block(std::vector<StmtPtr>& block, int& count) {
  for (auto& s : block) {
    if (s->a) s->a = expand_expr(s->a, count);
    if (s->b) s->b = expand_expr(s->b, count);
    if (s->c) s->c = expand_expr(s->c, count);
    for (auto& arg : s->print_args) arg = expand_expr(arg, count);
    expand_block(s->body, count);
    expand_block(s->else_body, count);
  }
}

}  // namespace

int expand_builtins(Kernel& kernel) {
  int count = 0;
  expand_block(kernel.body, count);
  return count;
}

int expand_builtins(Module& module) {
  int count = 0;
  for (auto& kernel : module.kernels) count += expand_builtins(kernel);
  return count;
}

// ---------------------------------------------------------------------------
// analyze_divergence
// ---------------------------------------------------------------------------

namespace {

class DivergenceAnalysis {
 public:
  explicit DivergenceAnalysis(bool group_id_uniform) : group_id_uniform_(group_id_uniform) {}

  void run(Kernel& kernel) {
    // Fixpoint over variable divergence (loops feed assignments back).
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < 16) {
      changed = false;
      mark_block(kernel.body, /*ctrl_divergent=*/false, changed);
    }
  }

 private:
  bool expr_divergent(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kConstInt:
      case ExprKind::kConstFloat:
      case ExprKind::kParam:
        return false;
      case ExprKind::kVar: {
        auto it = divergent_vars_.find(e->var);
        return it != divergent_vars_.end() && it->second;
      }
      case ExprKind::kSpecial:
        switch (e->special) {
          case SpecialReg::kGlobalId:
          case SpecialReg::kLocalId:
            return true;
          case SpecialReg::kGroupId:
            return !group_id_uniform_;
          default:
            return false;
        }
      case ExprKind::kLoad:
        // A load with a uniform index yields a uniform value.
        return expr_divergent(e->a());
      default:
        for (const auto& arg : e->args) {
          if (expr_divergent(arg)) return true;
        }
        return false;
    }
  }

  void set_var(const std::string& name, bool divergent, bool& changed) {
    bool& slot = divergent_vars_[name];
    if (divergent && !slot) {
      slot = true;
      changed = true;
    }
  }

  void mark_block(std::vector<StmtPtr>& block, bool ctrl_divergent, bool& changed) {
    for (auto& s : block) {
      switch (s->kind) {
        case StmtKind::kLet:
        case StmtKind::kAssign:
          set_var(s->var, ctrl_divergent || expr_divergent(s->a), changed);
          s->divergent = ctrl_divergent || expr_divergent(s->a);
          break;
        case StmtKind::kStore:
          s->divergent = ctrl_divergent || expr_divergent(s->a) || expr_divergent(s->b);
          break;
        case StmtKind::kIf: {
          const bool cond_div = expr_divergent(s->a);
          s->divergent = cond_div;
          mark_block(s->body, ctrl_divergent || cond_div, changed);
          mark_block(s->else_body, ctrl_divergent || cond_div, changed);
          break;
        }
        case StmtKind::kFor: {
          const bool bounds_div =
              expr_divergent(s->a) || expr_divergent(s->b) || expr_divergent(s->c);
          s->divergent = bounds_div;
          set_var(s->var, bounds_div || ctrl_divergent, changed);
          mark_block(s->body, ctrl_divergent || bounds_div, changed);
          break;
        }
        case StmtKind::kWhile: {
          const bool cond_div = expr_divergent(s->a);
          s->divergent = cond_div;
          mark_block(s->body, ctrl_divergent || cond_div, changed);
          break;
        }
        case StmtKind::kAtomic:
          s->divergent = true;
          if (!s->result_var.empty()) set_var(s->result_var, true, changed);
          break;
        case StmtKind::kBarrier:
        case StmtKind::kPrint:
          s->divergent = ctrl_divergent;
          break;
      }
    }
  }

  bool group_id_uniform_;
  std::unordered_map<std::string, bool> divergent_vars_;
};

}  // namespace

void analyze_divergence(Kernel& kernel, bool group_id_uniform) {
  DivergenceAnalysis(group_id_uniform).run(kernel);
}

}  // namespace fgpu::kir
