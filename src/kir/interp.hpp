// Functional reference interpreter for KIR kernels.
//
// Executes a work-group in SIMT lockstep (all items advance statement by
// statement under an active mask), which gives OpenCL barrier semantics for
// free and matches how both backends execute. Serves as the golden model:
// codegen+simulator results and HLS executor results are verified against
// it, and it doubles as the host-side reference implementation for the
// benchmark suite.
//
// It also performs dynamic checking that hardware would not: out-of-bounds
// buffer accesses and barriers reached under divergent control flow are
// reported as errors.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "kir/kir.hpp"

namespace fgpu::kir {

struct KernelArg {
  bool is_buffer = false;
  uint32_t scalar_bits = 0;
  std::vector<uint32_t>* data = nullptr;  // not owned; element bits

  static KernelArg scalar_i32(int32_t v) {
    return KernelArg{false, static_cast<uint32_t>(v), nullptr};
  }
  static KernelArg scalar_f32(float v);
  static KernelArg buffer(std::vector<uint32_t>* data) { return KernelArg{true, 0, data}; }
};

struct InterpOptions {
  std::function<void(const std::string&)> print_sink;  // printf output
  uint64_t max_statements = 4'000'000'000ull;          // runaway guard

  // Instrumentation: invoked once per executed (per-item) memory operation.
  // The HLS executor uses these to attribute dynamic request counts to
  // static access sites when modelling pipeline occupancy.
  std::function<void(const Expr* site)> on_load;
  std::function<void(const Stmt* site)> on_store;   // stores and atomics

  // Address-carrying load hook for the memory-hierarchy profiler: fires
  // once per executed per-item load with the static site, the target
  // buffer (kernel param index, or local slot when is_local), and the
  // accessed element index. Separate from on_load so existing
  // request-counting consumers keep their cheap signature.
  std::function<void(const Expr* site, int buffer, bool is_local, uint32_t elem)> on_load_addr;

  // When set, incremented once per evaluated expression node (a first-order
  // dynamic operation count, used by the analytical performance model).
  uint64_t* op_count = nullptr;
};

class Interpreter {
 public:
  explicit Interpreter(InterpOptions options = {}) : options_(std::move(options)) {}

  // Runs the kernel over the whole NDRange (group by group). Buffer args are
  // mutated in place.
  Status run(const Kernel& kernel, const std::vector<KernelArg>& args, const NDRange& ndrange);

 private:
  InterpOptions options_;
};

}  // namespace fgpu::kir
