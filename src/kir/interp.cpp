#include "kir/interp.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_map>

#include "common/bits.hpp"

namespace fgpu::kir {
namespace {

// RISC-V-compatible integer division semantics so the reference model and
// the soft-GPU binary agree bit for bit.
int32_t div_i32(int32_t a, int32_t b) {
  if (b == 0) return -1;
  if (a == std::numeric_limits<int32_t>::min() && b == -1) return a;
  return a / b;
}
int32_t rem_i32(int32_t a, int32_t b) {
  if (b == 0) return a;
  if (a == std::numeric_limits<int32_t>::min() && b == -1) return 0;
  return a % b;
}

struct GroupContext {
  const Kernel* kernel = nullptr;
  const std::vector<KernelArg>* args = nullptr;
  const NDRange* ndrange = nullptr;
  uint32_t group[3] = {0, 0, 0};
  uint32_t items = 0;  // local linear size

  // Per-item local ids.
  std::vector<uint32_t> lid[3];
  // Variable environment: name -> per-item bits.
  std::unordered_map<std::string, std::vector<uint32_t>> env;
  // Local (__local) arrays: slot -> element bits.
  std::vector<std::vector<uint32_t>> locals;

  uint64_t statements_executed = 0;
};

class GroupExec {
 public:
  GroupExec(GroupContext& ctx, const InterpOptions& options) : ctx_(ctx), options_(options) {}

  Status run_block(const std::vector<StmtPtr>& block, const std::vector<uint8_t>& active);

 private:
  Status eval(const ExprPtr& e, uint32_t item, uint32_t& out);
  Status exec(const Stmt& s, const std::vector<uint8_t>& active);

  Status fail(const std::string& message) {
    return Status(ErrorKind::kRuntimeError, ctx_.kernel->name + ": " + message);
  }

  Status buffer_access(int index, bool is_local, uint32_t elem_index, std::vector<uint32_t>** out) {
    if (is_local) {
      if (index < 0 || static_cast<size_t>(index) >= ctx_.locals.size()) {
        return fail("bad local array slot " + std::to_string(index));
      }
      auto& array = ctx_.locals[static_cast<size_t>(index)];
      if (elem_index >= array.size()) {
        return fail("out-of-bounds __local access: " + ctx_.kernel->locals[index].name + "[" +
                    std::to_string(elem_index) + "] size " + std::to_string(array.size()));
      }
      *out = &array;
      return Status::ok();
    }
    if (index < 0 || static_cast<size_t>(index) >= ctx_.args->size()) {
      return fail("bad buffer param " + std::to_string(index));
    }
    const KernelArg& arg = (*ctx_.args)[static_cast<size_t>(index)];
    if (!arg.is_buffer || arg.data == nullptr) {
      return fail("param " + std::to_string(index) + " is not a buffer");
    }
    if (elem_index >= arg.data->size()) {
      return fail("out-of-bounds access: " + ctx_.kernel->params[index].name + "[" +
                  std::to_string(elem_index) + "] size " + std::to_string(arg.data->size()));
    }
    *out = arg.data;
    return Status::ok();
  }

  std::vector<uint32_t>& var_slot(const std::string& name) {
    auto& slot = ctx_.env[name];
    if (slot.size() != ctx_.items) slot.assign(ctx_.items, 0);
    return slot;
  }

  GroupContext& ctx_;
  const InterpOptions& options_;
};

Status GroupExec::eval(const ExprPtr& e, uint32_t item, uint32_t& out) {
  if (options_.op_count != nullptr) ++*options_.op_count;
  switch (e->kind) {
    case ExprKind::kConstInt:
      out = static_cast<uint32_t>(e->ival);
      return Status::ok();
    case ExprKind::kConstFloat:
      out = f2u(e->fval);
      return Status::ok();
    case ExprKind::kVar: {
      auto it = ctx_.env.find(e->var);
      if (it == ctx_.env.end()) return fail("use of undefined variable '" + e->var + "'");
      out = it->second[item];
      return Status::ok();
    }
    case ExprKind::kParam: {
      const KernelArg& arg = (*ctx_.args)[static_cast<size_t>(e->index)];
      if (arg.is_buffer) return fail("scalar read of buffer param");
      out = arg.scalar_bits;
      return Status::ok();
    }
    case ExprKind::kSpecial: {
      const int d = e->index;
      switch (e->special) {
        case SpecialReg::kGlobalId:
          out = ctx_.group[d] * ctx_.ndrange->local[d] + ctx_.lid[d][item];
          break;
        case SpecialReg::kLocalId: out = ctx_.lid[d][item]; break;
        case SpecialReg::kGroupId: out = ctx_.group[d]; break;
        case SpecialReg::kGlobalSize: out = ctx_.ndrange->global[d]; break;
        case SpecialReg::kLocalSize: out = ctx_.ndrange->local[d]; break;
        case SpecialReg::kNumGroups: out = ctx_.ndrange->num_groups(d); break;
      }
      return Status::ok();
    }
    case ExprKind::kBinary: {
      uint32_t a = 0, b = 0;
      if (auto st = eval(e->a(), item, a); !st.is_ok()) return st;
      // Logical && / || short-circuit like C.
      if (e->bin == BinOp::kLAnd && a == 0) {
        out = 0;
        return Status::ok();
      }
      if (e->bin == BinOp::kLOr && a != 0) {
        out = 1;
        return Status::ok();
      }
      if (auto st = eval(e->b(), item, b); !st.is_ok()) return st;
      const bool flt = e->a()->type == Scalar::kF32;
      if (flt) {
        const float x = u2f(a), y = u2f(b);
        switch (e->bin) {
          case BinOp::kAdd: out = f2u(x + y); break;
          case BinOp::kSub: out = f2u(x - y); break;
          case BinOp::kMul: out = f2u(x * y); break;
          case BinOp::kDiv: out = f2u(x / y); break;
          case BinOp::kMin: out = f2u(std::fmin(x, y)); break;
          case BinOp::kMax: out = f2u(std::fmax(x, y)); break;
          case BinOp::kLt: out = x < y; break;
          case BinOp::kLe: out = x <= y; break;
          case BinOp::kGt: out = x > y; break;
          case BinOp::kGe: out = x >= y; break;
          case BinOp::kEq: out = x == y; break;
          case BinOp::kNe: out = x != y; break;
          default: return fail("invalid float binary op");
        }
      } else {
        const int32_t x = static_cast<int32_t>(a), y = static_cast<int32_t>(b);
        switch (e->bin) {
          case BinOp::kAdd: out = a + b; break;
          case BinOp::kSub: out = a - b; break;
          case BinOp::kMul: out = a * b; break;
          case BinOp::kDiv: out = static_cast<uint32_t>(div_i32(x, y)); break;
          case BinOp::kRem: out = static_cast<uint32_t>(rem_i32(x, y)); break;
          case BinOp::kAnd: out = a & b; break;
          case BinOp::kOr: out = a | b; break;
          case BinOp::kXor: out = a ^ b; break;
          case BinOp::kShl: out = a << (b & 31); break;
          case BinOp::kShr: out = static_cast<uint32_t>(x >> (b & 31)); break;
          case BinOp::kMin: out = static_cast<uint32_t>(std::min(x, y)); break;
          case BinOp::kMax: out = static_cast<uint32_t>(std::max(x, y)); break;
          case BinOp::kLt: out = x < y; break;
          case BinOp::kLe: out = x <= y; break;
          case BinOp::kGt: out = x > y; break;
          case BinOp::kGe: out = x >= y; break;
          case BinOp::kEq: out = a == b; break;
          case BinOp::kNe: out = a != b; break;
          case BinOp::kLAnd: out = (a != 0 && b != 0) ? 1 : 0; break;
          case BinOp::kLOr: out = (a != 0 || b != 0) ? 1 : 0; break;
        }
      }
      return Status::ok();
    }
    case ExprKind::kUnary: {
      uint32_t a = 0;
      if (auto st = eval(e->a(), item, a); !st.is_ok()) return st;
      switch (e->un) {
        case UnOp::kNeg:
          out = e->type == Scalar::kF32 ? f2u(-u2f(a)) : static_cast<uint32_t>(-static_cast<int32_t>(a));
          break;
        case UnOp::kNot: out = a == 0 ? 1 : 0; break;
        case UnOp::kAbs:
          out = e->type == Scalar::kF32 ? (a & 0x7FFFFFFFu)
                                        : static_cast<uint32_t>(std::abs(static_cast<int32_t>(a)));
          break;
        case UnOp::kBitcastI2F:
        case UnOp::kBitcastF2I:
          out = a;
          break;
      }
      return Status::ok();
    }
    case ExprKind::kSelect: {
      uint32_t c = 0;
      if (auto st = eval(e->a(), item, c); !st.is_ok()) return st;
      return eval(c != 0 ? e->b() : e->c(), item, out);
    }
    case ExprKind::kCast: {
      uint32_t a = 0;
      if (auto st = eval(e->a(), item, a); !st.is_ok()) return st;
      if (e->type == Scalar::kF32) {
        out = f2u(static_cast<float>(static_cast<int32_t>(a)));
      } else {
        const float f = u2f(a);
        // Match fcvt.w.s truncation with clamping.
        if (std::isnan(f)) {
          out = 0x7FFFFFFFu;
        } else if (f <= -2147483648.0f) {
          out = 0x80000000u;
        } else if (f >= 2147483648.0f) {
          out = 0x7FFFFFFFu;
        } else {
          out = static_cast<uint32_t>(static_cast<int32_t>(f));
        }
      }
      return Status::ok();
    }
    case ExprKind::kLoad: {
      uint32_t index = 0;
      if (auto st = eval(e->a(), item, index); !st.is_ok()) return st;
      std::vector<uint32_t>* data = nullptr;
      if (auto st = buffer_access(e->index, e->is_local, index, &data); !st.is_ok()) return st;
      if (options_.on_load) options_.on_load(e.get());
      out = (*data)[index];
      return Status::ok();
    }
    case ExprKind::kCall: {
      uint32_t a = 0;
      if (auto st = eval(e->args[0], item, a); !st.is_ok()) return st;
      const float x = u2f(a);
      switch (e->call) {
        case Builtin::kSqrt: out = f2u(std::sqrt(x)); break;
        case Builtin::kRsqrt: out = f2u(1.0f / std::sqrt(x)); break;
        case Builtin::kExp: out = f2u(std::exp(x)); break;
        case Builtin::kLog: out = f2u(std::log(x)); break;
        case Builtin::kFloor: out = f2u(std::floor(x)); break;
        case Builtin::kPowi: {
          uint32_t n_bits = 0;
          if (auto st = eval(e->args[1], item, n_bits); !st.is_ok()) return st;
          int32_t n = static_cast<int32_t>(n_bits);
          float base = x, result = 1.0f;
          const bool invert = n < 0;
          if (invert) n = -n;
          while (n > 0) {
            if (n & 1) result *= base;
            base *= base;
            n >>= 1;
          }
          out = f2u(invert ? 1.0f / result : result);
          break;
        }
      }
      return Status::ok();
    }
  }
  return fail("unreachable expression kind");
}

Status GroupExec::exec(const Stmt& s, const std::vector<uint8_t>& active) {
  if (++ctx_.statements_executed > options_.max_statements) {
    return fail("statement budget exceeded (runaway kernel?)");
  }
  switch (s.kind) {
    case StmtKind::kLet:
    case StmtKind::kAssign: {
      auto& slot = var_slot(s.var);
      for (uint32_t i = 0; i < ctx_.items; ++i) {
        if (!active[i]) continue;
        uint32_t value = 0;
        if (auto st = eval(s.a, i, value); !st.is_ok()) return st;
        slot[i] = value;
      }
      return Status::ok();
    }
    case StmtKind::kStore: {
      for (uint32_t i = 0; i < ctx_.items; ++i) {
        if (!active[i]) continue;
        uint32_t index = 0, value = 0;
        if (auto st = eval(s.a, i, index); !st.is_ok()) return st;
        if (auto st = eval(s.b, i, value); !st.is_ok()) return st;
        std::vector<uint32_t>* data = nullptr;
        if (auto st = buffer_access(s.buffer, s.is_local, index, &data); !st.is_ok()) return st;
        if (options_.on_store) options_.on_store(&s);
        (*data)[index] = value;
      }
      return Status::ok();
    }
    case StmtKind::kIf: {
      std::vector<uint8_t> then_mask(ctx_.items, 0), else_mask(ctx_.items, 0);
      bool any_then = false, any_else = false;
      for (uint32_t i = 0; i < ctx_.items; ++i) {
        if (!active[i]) continue;
        uint32_t cond = 0;
        if (auto st = eval(s.a, i, cond); !st.is_ok()) return st;
        if (cond != 0) {
          then_mask[i] = 1;
          any_then = true;
        } else {
          else_mask[i] = 1;
          any_else = true;
        }
      }
      if (any_then) {
        if (auto st = run_block(s.body, then_mask); !st.is_ok()) return st;
      }
      if (any_else && !s.else_body.empty()) {
        if (auto st = run_block(s.else_body, else_mask); !st.is_ok()) return st;
      }
      return Status::ok();
    }
    case StmtKind::kFor: {
      auto& var = var_slot(s.var);
      for (uint32_t i = 0; i < ctx_.items; ++i) {
        if (!active[i]) continue;
        uint32_t begin = 0;
        if (auto st = eval(s.a, i, begin); !st.is_ok()) return st;
        var[i] = begin;
      }
      std::vector<uint8_t> loop_mask(ctx_.items, 0);
      while (true) {
        // Loop iterations count against the statement budget even when the
        // body is empty, so runaway loops always trip the guard.
        if (++ctx_.statements_executed > options_.max_statements) {
          return fail("statement budget exceeded (runaway kernel?)");
        }
        bool any = false;
        for (uint32_t i = 0; i < ctx_.items; ++i) {
          loop_mask[i] = 0;
          if (!active[i]) continue;
          uint32_t end = 0;
          if (auto st = eval(s.b, i, end); !st.is_ok()) return st;
          if (static_cast<int32_t>(var[i]) < static_cast<int32_t>(end)) {
            loop_mask[i] = 1;
            any = true;
          }
        }
        if (!any) break;
        if (auto st = run_block(s.body, loop_mask); !st.is_ok()) return st;
        for (uint32_t i = 0; i < ctx_.items; ++i) {
          if (!loop_mask[i]) continue;
          uint32_t step = 0;
          if (auto st = eval(s.c, i, step); !st.is_ok()) return st;
          var[i] += step;
        }
      }
      return Status::ok();
    }
    case StmtKind::kWhile: {
      std::vector<uint8_t> loop_mask(ctx_.items, 0);
      while (true) {
        if (++ctx_.statements_executed > options_.max_statements) {
          return fail("statement budget exceeded (runaway kernel?)");
        }
        bool any = false;
        for (uint32_t i = 0; i < ctx_.items; ++i) {
          loop_mask[i] = 0;
          if (!active[i]) continue;
          uint32_t cond = 0;
          if (auto st = eval(s.a, i, cond); !st.is_ok()) return st;
          if (cond != 0) {
            loop_mask[i] = 1;
            any = true;
          }
        }
        if (!any) break;
        if (auto st = run_block(s.body, loop_mask); !st.is_ok()) return st;
      }
      return Status::ok();
    }
    case StmtKind::kBarrier: {
      // OpenCL requires barriers to be reached by every item of the group.
      for (uint32_t i = 0; i < ctx_.items; ++i) {
        if (!active[i]) {
          return fail("barrier reached under divergent control flow (OpenCL UB)");
        }
      }
      return Status::ok();  // lockstep execution: nothing to synchronize
    }
    case StmtKind::kAtomic: {
      std::vector<uint32_t>* result = s.result_var.empty() ? nullptr : &var_slot(s.result_var);
      for (uint32_t i = 0; i < ctx_.items; ++i) {
        if (!active[i]) continue;
        uint32_t index = 0, operand = 0;
        if (auto st = eval(s.a, i, index); !st.is_ok()) return st;
        if (auto st = eval(s.b, i, operand); !st.is_ok()) return st;
        std::vector<uint32_t>* data = nullptr;
        if (auto st = buffer_access(s.buffer, s.is_local, index, &data); !st.is_ok()) return st;
        if (options_.on_store) options_.on_store(&s);
        const uint32_t old = (*data)[index];
        uint32_t next = old;
        switch (s.atomic) {
          case AtomicOp::kAdd: next = old + operand; break;
          case AtomicOp::kMin:
            next = static_cast<uint32_t>(
                std::min(static_cast<int32_t>(old), static_cast<int32_t>(operand)));
            break;
          case AtomicOp::kMax:
            next = static_cast<uint32_t>(
                std::max(static_cast<int32_t>(old), static_cast<int32_t>(operand)));
            break;
          case AtomicOp::kAnd: next = old & operand; break;
          case AtomicOp::kOr: next = old | operand; break;
          case AtomicOp::kXor: next = old ^ operand; break;
          case AtomicOp::kExchange: next = operand; break;
          case AtomicOp::kCmpxchg: {
            uint32_t cmp = 0;
            if (auto st = eval(s.c, i, cmp); !st.is_ok()) return st;
            next = old == cmp ? operand : old;
            break;
          }
        }
        (*data)[index] = next;
        if (result != nullptr) (*result)[i] = old;
      }
      return Status::ok();
    }
    case StmtKind::kPrint: {
      for (uint32_t i = 0; i < ctx_.items; ++i) {
        if (!active[i]) continue;
        std::string rendered;
        size_t arg_index = 0;
        const std::string& fmt = s.text;
        for (size_t p = 0; p < fmt.size(); ++p) {
          if (fmt[p] != '%' || p + 1 == fmt.size()) {
            rendered += fmt[p];
            continue;
          }
          const char spec = fmt[++p];
          if (spec == '%') {
            rendered += '%';
            continue;
          }
          uint32_t value = 0;
          if (arg_index < s.print_args.size()) {
            if (auto st = eval(s.print_args[arg_index++], i, value); !st.is_ok()) return st;
          }
          char buf[48];
          switch (spec) {
            case 'd': std::snprintf(buf, sizeof(buf), "%d", static_cast<int32_t>(value)); break;
            case 'u': std::snprintf(buf, sizeof(buf), "%u", value); break;
            case 'x': std::snprintf(buf, sizeof(buf), "%x", value); break;
            case 'f': std::snprintf(buf, sizeof(buf), "%f", u2f(value)); break;
            default: std::snprintf(buf, sizeof(buf), "%%%c", spec); break;
          }
          rendered += buf;
        }
        if (!rendered.empty() && rendered.back() == '\n') rendered.pop_back();
        if (options_.print_sink) options_.print_sink(rendered);
      }
      return Status::ok();
    }
  }
  return fail("unreachable statement kind");
}

Status GroupExec::run_block(const std::vector<StmtPtr>& block, const std::vector<uint8_t>& active) {
  for (const auto& s : block) {
    if (auto st = exec(*s, active); !st.is_ok()) return st;
  }
  return Status::ok();
}

}  // namespace

KernelArg KernelArg::scalar_f32(float v) { return KernelArg{false, f2u(v), nullptr}; }

Status Interpreter::run(const Kernel& kernel, const std::vector<KernelArg>& args,
                        const NDRange& ndrange) {
  if (args.size() != kernel.params.size()) {
    return Status(ErrorKind::kInvalidArgument,
                  kernel.name + ": expected " + std::to_string(kernel.params.size()) +
                      " args, got " + std::to_string(args.size()));
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].is_buffer != kernel.params[i].is_buffer) {
      return Status(ErrorKind::kInvalidArgument,
                    kernel.name + ": arg " + std::to_string(i) + " buffer/scalar mismatch");
    }
  }
  for (int d = 0; d < 3; ++d) {
    if (ndrange.local[d] == 0 || ndrange.global[d] % ndrange.local[d] != 0) {
      return Status(ErrorKind::kInvalidArgument,
                    kernel.name + ": global size not divisible by local size in dim " +
                        std::to_string(d));
    }
  }

  GroupContext ctx;
  ctx.kernel = &kernel;
  ctx.args = &args;
  ctx.ndrange = &ndrange;
  ctx.items = ndrange.local_items();
  for (int d = 0; d < 3; ++d) ctx.lid[d].resize(ctx.items);
  for (uint32_t i = 0; i < ctx.items; ++i) {
    ctx.lid[0][i] = i % ndrange.local[0];
    ctx.lid[1][i] = (i / ndrange.local[0]) % ndrange.local[1];
    ctx.lid[2][i] = i / (ndrange.local[0] * ndrange.local[1]);
  }

  const std::vector<uint8_t> full(ctx.items, 1);
  for (uint32_t gz = 0; gz < ndrange.num_groups(2); ++gz) {
    for (uint32_t gy = 0; gy < ndrange.num_groups(1); ++gy) {
      for (uint32_t gx = 0; gx < ndrange.num_groups(0); ++gx) {
        ctx.group[0] = gx;
        ctx.group[1] = gy;
        ctx.group[2] = gz;
        ctx.env.clear();
        ctx.locals.clear();
        for (const auto& array : kernel.locals) {
          ctx.locals.emplace_back(array.size, 0u);
        }
        GroupExec exec(ctx, options_);
        if (auto st = exec.run_block(kernel.body, full); !st.is_ok()) return st;
      }
    }
  }
  return Status::ok();
}

}  // namespace fgpu::kir
