#include "kir/interp.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_map>

#include "common/bits.hpp"

namespace fgpu::kir {
namespace {

// RISC-V-compatible integer division semantics so the reference model and
// the soft-GPU binary agree bit for bit.
int32_t div_i32(int32_t a, int32_t b) {
  if (b == 0) return -1;
  if (a == std::numeric_limits<int32_t>::min() && b == -1) return a;
  return a / b;
}
int32_t rem_i32(int32_t a, int32_t b) {
  if (b == 0) return a;
  if (a == std::numeric_limits<int32_t>::min() && b == -1) return 0;
  return a % b;
}

using Vec = std::vector<uint32_t>;
using Mask = std::vector<uint8_t>;

// Static load sites of a store statement's operand expressions (cached per
// Stmt so the alias check below walks each tree once per run, not once per
// execution).
struct LoadSite {
  int index = 0;
  bool is_local = false;
};

struct GroupContext {
  const Kernel* kernel = nullptr;
  const std::vector<KernelArg>* args = nullptr;
  const NDRange* ndrange = nullptr;
  uint32_t group[3] = {0, 0, 0};
  uint32_t items = 0;  // local linear size

  // Per-item local ids.
  std::vector<uint32_t> lid[3];
  // Variable environment: name -> per-item bits. unordered_map keeps
  // references to values stable across inserts (node-based), which kFor
  // relies on while executing loop bodies that introduce new variables.
  std::unordered_map<std::string, std::vector<uint32_t>> env;
  // Local (__local) arrays: slot -> element bits.
  std::vector<std::vector<uint32_t>> locals;

  // Scratch pools reused across statements and groups so the vectorized
  // evaluator performs no steady-state allocation.
  std::vector<Vec> vec_pool;
  std::vector<Mask> mask_pool;
  std::unordered_map<const Stmt*, std::vector<LoadSite>> store_loads;

  uint64_t statements_executed = 0;
};

// Evaluates each expression node once per ACTIVE LANE SET instead of once
// per work item: the tree is walked a single time per statement execution
// with per-item value vectors flowing between nodes, which removes the
// per-item dispatch overhead (and the per-item env hash lookups) that
// dominated the item-major evaluator. Observable behaviour is identical:
//   * op_count advances by the active-lane count at every node visit —
//     exactly the per-(node, item) visits of the item-major walk, including
//     lanes skipped by && / || short-circuit and by select;
//   * on_load / on_store fire once per executed per-item access;
//   * atomics, printf, and stores whose operands may read the stored buffer
//     run item-sequentially (singleton masks) to preserve item-order
//     read-modify-write semantics.
class GroupExec {
 public:
  GroupExec(GroupContext& ctx, const InterpOptions& options) : ctx_(ctx), options_(options) {}

  Status run_block(const std::vector<StmtPtr>& block, const Mask& active, uint32_t n_active);

 private:
  Status eval(const ExprPtr& e, const Mask& m, uint32_t n, Vec& out);
  Status exec(const Stmt& s, const Mask& active, uint32_t n_active);
  Status exec_store_sequential(const Stmt& s, const Mask& active);
  bool store_may_alias(const Stmt& s);

  Vec take_vec() {
    if (ctx_.vec_pool.empty()) return Vec(ctx_.items, 0);
    Vec v = std::move(ctx_.vec_pool.back());
    ctx_.vec_pool.pop_back();
    v.resize(ctx_.items);
    return v;
  }
  void give_vec(Vec&& v) { ctx_.vec_pool.push_back(std::move(v)); }
  Mask take_mask() {
    if (ctx_.mask_pool.empty()) return Mask(ctx_.items, 0);
    Mask m = std::move(ctx_.mask_pool.back());
    ctx_.mask_pool.pop_back();
    m.assign(ctx_.items, 0);
    return m;
  }
  void give_mask(Mask&& m) { ctx_.mask_pool.push_back(std::move(m)); }

  Status fail(const std::string& message) {
    return Status(ErrorKind::kRuntimeError, ctx_.kernel->name + ": " + message);
  }

  Status buffer_access(int index, bool is_local, uint32_t elem_index, std::vector<uint32_t>** out) {
    if (is_local) {
      if (index < 0 || static_cast<size_t>(index) >= ctx_.locals.size()) {
        return fail("bad local array slot " + std::to_string(index));
      }
      auto& array = ctx_.locals[static_cast<size_t>(index)];
      if (elem_index >= array.size()) {
        return fail("out-of-bounds __local access: " + ctx_.kernel->locals[index].name + "[" +
                    std::to_string(elem_index) + "] size " + std::to_string(array.size()));
      }
      *out = &array;
      return Status::ok();
    }
    if (index < 0 || static_cast<size_t>(index) >= ctx_.args->size()) {
      return fail("bad buffer param " + std::to_string(index));
    }
    const KernelArg& arg = (*ctx_.args)[static_cast<size_t>(index)];
    if (!arg.is_buffer || arg.data == nullptr) {
      return fail("param " + std::to_string(index) + " is not a buffer");
    }
    if (elem_index >= arg.data->size()) {
      return fail("out-of-bounds access: " + ctx_.kernel->params[index].name + "[" +
                  std::to_string(elem_index) + "] size " + std::to_string(arg.data->size()));
    }
    *out = arg.data;
    return Status::ok();
  }

  std::vector<uint32_t>& var_slot(const std::string& name) {
    auto& slot = ctx_.env[name];
    if (slot.size() != ctx_.items) slot.assign(ctx_.items, 0);
    return slot;
  }

  GroupContext& ctx_;
  const InterpOptions& options_;
};

Status GroupExec::eval(const ExprPtr& e, const Mask& m, uint32_t n, Vec& out) {
  if (options_.op_count != nullptr) *options_.op_count += n;
  const uint32_t items = ctx_.items;
  out.resize(items);
  switch (e->kind) {
    case ExprKind::kConstInt:
      out.assign(items, static_cast<uint32_t>(e->ival));
      return Status::ok();
    case ExprKind::kConstFloat:
      out.assign(items, f2u(e->fval));
      return Status::ok();
    case ExprKind::kVar: {
      auto it = ctx_.env.find(e->var);
      if (it == ctx_.env.end()) return fail("use of undefined variable '" + e->var + "'");
      out.assign(it->second.begin(), it->second.end());
      return Status::ok();
    }
    case ExprKind::kParam: {
      const KernelArg& arg = (*ctx_.args)[static_cast<size_t>(e->index)];
      if (arg.is_buffer) return fail("scalar read of buffer param");
      out.assign(items, arg.scalar_bits);
      return Status::ok();
    }
    case ExprKind::kSpecial: {
      const int d = e->index;
      switch (e->special) {
        case SpecialReg::kGlobalId: {
          const uint32_t base = ctx_.group[d] * ctx_.ndrange->local[d];
          for (uint32_t i = 0; i < items; ++i) out[i] = base + ctx_.lid[d][i];
          break;
        }
        case SpecialReg::kLocalId:
          for (uint32_t i = 0; i < items; ++i) out[i] = ctx_.lid[d][i];
          break;
        case SpecialReg::kGroupId: out.assign(items, ctx_.group[d]); break;
        case SpecialReg::kGlobalSize: out.assign(items, ctx_.ndrange->global[d]); break;
        case SpecialReg::kLocalSize: out.assign(items, ctx_.ndrange->local[d]); break;
        case SpecialReg::kNumGroups: out.assign(items, ctx_.ndrange->num_groups(d)); break;
      }
      return Status::ok();
    }
    case ExprKind::kBinary: {
      // Logical && / || short-circuit like C: the second operand evaluates
      // only for lanes the first did not decide (shrinks the active mask,
      // so op_count and load instrumentation match per-item execution).
      if (e->bin == BinOp::kLAnd || e->bin == BinOp::kLOr) {
        Vec ta = take_vec();
        if (auto st = eval(e->a(), m, n, ta); !st.is_ok()) {
          give_vec(std::move(ta));
          return st;
        }
        Mask sub = take_mask();
        uint32_t n2 = 0;
        const bool is_and = e->bin == BinOp::kLAnd;
        for (uint32_t i = 0; i < items; ++i) {
          if (!m[i]) continue;
          if (is_and ? ta[i] == 0 : ta[i] != 0) {
            out[i] = is_and ? 0u : 1u;
          } else {
            sub[i] = 1;
            ++n2;
          }
        }
        Status st = Status::ok();
        if (n2 > 0) {
          Vec tb = take_vec();
          st = eval(e->b(), sub, n2, tb);
          if (st.is_ok()) {
            for (uint32_t i = 0; i < items; ++i) {
              if (sub[i]) out[i] = tb[i] != 0 ? 1u : 0u;
            }
          }
          give_vec(std::move(tb));
        }
        give_mask(std::move(sub));
        give_vec(std::move(ta));
        return st;
      }
      Vec ta = take_vec();
      Vec tb = take_vec();
      Status st = eval(e->a(), m, n, ta);
      if (st.is_ok()) st = eval(e->b(), m, n, tb);
      if (!st.is_ok()) {
        give_vec(std::move(tb));
        give_vec(std::move(ta));
        return st;
      }
      const bool flt = e->a()->type == Scalar::kF32;
      if (flt) {
        for (uint32_t i = 0; i < items; ++i) {
          if (!m[i]) continue;
          const float x = u2f(ta[i]), y = u2f(tb[i]);
          switch (e->bin) {
            case BinOp::kAdd: out[i] = f2u(x + y); break;
            case BinOp::kSub: out[i] = f2u(x - y); break;
            case BinOp::kMul: out[i] = f2u(x * y); break;
            case BinOp::kDiv: out[i] = f2u(x / y); break;
            case BinOp::kMin: out[i] = f2u(std::fmin(x, y)); break;
            case BinOp::kMax: out[i] = f2u(std::fmax(x, y)); break;
            case BinOp::kLt: out[i] = x < y; break;
            case BinOp::kLe: out[i] = x <= y; break;
            case BinOp::kGt: out[i] = x > y; break;
            case BinOp::kGe: out[i] = x >= y; break;
            case BinOp::kEq: out[i] = x == y; break;
            case BinOp::kNe: out[i] = x != y; break;
            default:
              give_vec(std::move(tb));
              give_vec(std::move(ta));
              return fail("invalid float binary op");
          }
        }
      } else {
        for (uint32_t i = 0; i < items; ++i) {
          if (!m[i]) continue;
          const uint32_t a = ta[i], b = tb[i];
          const int32_t x = static_cast<int32_t>(a), y = static_cast<int32_t>(b);
          switch (e->bin) {
            case BinOp::kAdd: out[i] = a + b; break;
            case BinOp::kSub: out[i] = a - b; break;
            case BinOp::kMul: out[i] = a * b; break;
            case BinOp::kDiv: out[i] = static_cast<uint32_t>(div_i32(x, y)); break;
            case BinOp::kRem: out[i] = static_cast<uint32_t>(rem_i32(x, y)); break;
            case BinOp::kAnd: out[i] = a & b; break;
            case BinOp::kOr: out[i] = a | b; break;
            case BinOp::kXor: out[i] = a ^ b; break;
            case BinOp::kShl: out[i] = a << (b & 31); break;
            case BinOp::kShr: out[i] = static_cast<uint32_t>(x >> (b & 31)); break;
            case BinOp::kMin: out[i] = static_cast<uint32_t>(std::min(x, y)); break;
            case BinOp::kMax: out[i] = static_cast<uint32_t>(std::max(x, y)); break;
            case BinOp::kLt: out[i] = x < y; break;
            case BinOp::kLe: out[i] = x <= y; break;
            case BinOp::kGt: out[i] = x > y; break;
            case BinOp::kGe: out[i] = x >= y; break;
            case BinOp::kEq: out[i] = a == b; break;
            case BinOp::kNe: out[i] = a != b; break;
            case BinOp::kLAnd: out[i] = (a != 0 && b != 0) ? 1 : 0; break;
            case BinOp::kLOr: out[i] = (a != 0 || b != 0) ? 1 : 0; break;
          }
        }
      }
      give_vec(std::move(tb));
      give_vec(std::move(ta));
      return Status::ok();
    }
    case ExprKind::kUnary: {
      Vec ta = take_vec();
      if (auto st = eval(e->a(), m, n, ta); !st.is_ok()) {
        give_vec(std::move(ta));
        return st;
      }
      for (uint32_t i = 0; i < items; ++i) {
        if (!m[i]) continue;
        const uint32_t a = ta[i];
        switch (e->un) {
          case UnOp::kNeg:
            out[i] = e->type == Scalar::kF32 ? f2u(-u2f(a))
                                             : static_cast<uint32_t>(-static_cast<int32_t>(a));
            break;
          case UnOp::kNot: out[i] = a == 0 ? 1 : 0; break;
          case UnOp::kAbs:
            out[i] = e->type == Scalar::kF32
                         ? (a & 0x7FFFFFFFu)
                         : static_cast<uint32_t>(std::abs(static_cast<int32_t>(a)));
            break;
          case UnOp::kBitcastI2F:
          case UnOp::kBitcastF2I:
            out[i] = a;
            break;
        }
      }
      give_vec(std::move(ta));
      return Status::ok();
    }
    case ExprKind::kSelect: {
      Vec tc = take_vec();
      if (auto st = eval(e->a(), m, n, tc); !st.is_ok()) {
        give_vec(std::move(tc));
        return st;
      }
      // Each lane evaluates only its taken arm (per-item laziness).
      Mask mb = take_mask();
      Mask mc = take_mask();
      uint32_t nb = 0, nc = 0;
      for (uint32_t i = 0; i < items; ++i) {
        if (!m[i]) continue;
        if (tc[i] != 0) {
          mb[i] = 1;
          ++nb;
        } else {
          mc[i] = 1;
          ++nc;
        }
      }
      Status st = Status::ok();
      Vec tv = take_vec();
      if (nb > 0) {
        st = eval(e->b(), mb, nb, tv);
        if (st.is_ok()) {
          for (uint32_t i = 0; i < items; ++i) {
            if (mb[i]) out[i] = tv[i];
          }
        }
      }
      if (st.is_ok() && nc > 0) {
        st = eval(e->c(), mc, nc, tv);
        if (st.is_ok()) {
          for (uint32_t i = 0; i < items; ++i) {
            if (mc[i]) out[i] = tv[i];
          }
        }
      }
      give_vec(std::move(tv));
      give_mask(std::move(mc));
      give_mask(std::move(mb));
      give_vec(std::move(tc));
      return st;
    }
    case ExprKind::kCast: {
      Vec ta = take_vec();
      if (auto st = eval(e->a(), m, n, ta); !st.is_ok()) {
        give_vec(std::move(ta));
        return st;
      }
      for (uint32_t i = 0; i < items; ++i) {
        if (!m[i]) continue;
        const uint32_t a = ta[i];
        if (e->type == Scalar::kF32) {
          out[i] = f2u(static_cast<float>(static_cast<int32_t>(a)));
        } else {
          const float f = u2f(a);
          // Match fcvt.w.s truncation with clamping.
          if (std::isnan(f)) {
            out[i] = 0x7FFFFFFFu;
          } else if (f <= -2147483648.0f) {
            out[i] = 0x80000000u;
          } else if (f >= 2147483648.0f) {
            out[i] = 0x7FFFFFFFu;
          } else {
            out[i] = static_cast<uint32_t>(static_cast<int32_t>(f));
          }
        }
      }
      give_vec(std::move(ta));
      return Status::ok();
    }
    case ExprKind::kLoad: {
      Vec ti = take_vec();
      if (auto st = eval(e->a(), m, n, ti); !st.is_ok()) {
        give_vec(std::move(ti));
        return st;
      }
      for (uint32_t i = 0; i < items; ++i) {
        if (!m[i]) continue;
        std::vector<uint32_t>* data = nullptr;
        if (auto st = buffer_access(e->index, e->is_local, ti[i], &data); !st.is_ok()) {
          give_vec(std::move(ti));
          return st;
        }
        if (options_.on_load) options_.on_load(e.get());
        if (options_.on_load_addr) options_.on_load_addr(e.get(), e->index, e->is_local, ti[i]);
        out[i] = (*data)[ti[i]];
      }
      give_vec(std::move(ti));
      return Status::ok();
    }
    case ExprKind::kCall: {
      Vec ta = take_vec();
      Status st = eval(e->args[0], m, n, ta);
      Vec tb = take_vec();
      if (st.is_ok() && e->call == Builtin::kPowi) st = eval(e->args[1], m, n, tb);
      if (!st.is_ok()) {
        give_vec(std::move(tb));
        give_vec(std::move(ta));
        return st;
      }
      for (uint32_t i = 0; i < items; ++i) {
        if (!m[i]) continue;
        const float x = u2f(ta[i]);
        switch (e->call) {
          case Builtin::kSqrt: out[i] = f2u(std::sqrt(x)); break;
          case Builtin::kRsqrt: out[i] = f2u(1.0f / std::sqrt(x)); break;
          case Builtin::kExp: out[i] = f2u(std::exp(x)); break;
          case Builtin::kLog: out[i] = f2u(std::log(x)); break;
          case Builtin::kFloor: out[i] = f2u(std::floor(x)); break;
          case Builtin::kPowi: {
            int32_t pow_n = static_cast<int32_t>(tb[i]);
            float base = x, result = 1.0f;
            const bool invert = pow_n < 0;
            if (invert) pow_n = -pow_n;
            while (pow_n > 0) {
              if (pow_n & 1) result *= base;
              base *= base;
              pow_n >>= 1;
            }
            out[i] = f2u(invert ? 1.0f / result : result);
            break;
          }
        }
      }
      give_vec(std::move(tb));
      give_vec(std::move(ta));
      return Status::ok();
    }
  }
  return fail("unreachable expression kind");
}

void collect_loads(const ExprPtr& e, std::vector<LoadSite>& out) {
  if (e->kind == ExprKind::kLoad) out.push_back(LoadSite{e->index, e->is_local});
  for (const auto& arg : e->args) collect_loads(arg, out);
}

// True when a load in the store's index/value expressions may read the
// stored buffer (including two buffer params bound to the same host
// vector): those stores must execute item-sequentially so later items
// observe earlier items' writes, exactly like the item-major evaluator.
bool GroupExec::store_may_alias(const Stmt& s) {
  auto [it, inserted] = ctx_.store_loads.try_emplace(&s);
  if (inserted) {
    collect_loads(s.a, it->second);
    collect_loads(s.b, it->second);
  }
  if (it->second.empty()) return false;
  const std::vector<uint32_t>* target = nullptr;
  if (s.is_local) {
    if (s.buffer < 0 || static_cast<size_t>(s.buffer) >= ctx_.locals.size()) return true;
    target = &ctx_.locals[static_cast<size_t>(s.buffer)];
  } else {
    if (s.buffer < 0 || static_cast<size_t>(s.buffer) >= ctx_.args->size()) return true;
    const KernelArg& arg = (*ctx_.args)[static_cast<size_t>(s.buffer)];
    if (!arg.is_buffer || arg.data == nullptr) return true;
    target = arg.data;
  }
  for (const LoadSite& site : it->second) {
    const std::vector<uint32_t>* src = nullptr;
    if (site.is_local) {
      if (site.index < 0 || static_cast<size_t>(site.index) >= ctx_.locals.size()) return true;
      src = &ctx_.locals[static_cast<size_t>(site.index)];
    } else {
      if (site.index < 0 || static_cast<size_t>(site.index) >= ctx_.args->size()) return true;
      const KernelArg& arg = (*ctx_.args)[static_cast<size_t>(site.index)];
      if (!arg.is_buffer || arg.data == nullptr) return true;
      src = arg.data;
    }
    if (src == target) return true;
  }
  return false;
}

Status GroupExec::exec_store_sequential(const Stmt& s, const Mask& active) {
  Mask single = take_mask();
  Vec ti = take_vec();
  Vec tv = take_vec();
  Status st = Status::ok();
  for (uint32_t i = 0; i < ctx_.items && st.is_ok(); ++i) {
    if (!active[i]) continue;
    single[i] = 1;
    st = eval(s.a, single, 1, ti);
    if (st.is_ok()) st = eval(s.b, single, 1, tv);
    if (st.is_ok()) {
      std::vector<uint32_t>* data = nullptr;
      st = buffer_access(s.buffer, s.is_local, ti[i], &data);
      if (st.is_ok()) {
        if (options_.on_store) options_.on_store(&s);
        (*data)[ti[i]] = tv[i];
      }
    }
    single[i] = 0;
  }
  give_vec(std::move(tv));
  give_vec(std::move(ti));
  give_mask(std::move(single));
  return st;
}

Status GroupExec::exec(const Stmt& s, const Mask& active, uint32_t n_active) {
  if (++ctx_.statements_executed > options_.max_statements) {
    return fail("statement budget exceeded (runaway kernel?)");
  }
  switch (s.kind) {
    case StmtKind::kLet:
    case StmtKind::kAssign: {
      // Create the slot before evaluating so a self-referencing initializer
      // reads the zero-filled slot instead of failing as undefined.
      auto& slot = var_slot(s.var);
      Vec tmp = take_vec();
      Status st = eval(s.a, active, n_active, tmp);
      if (st.is_ok()) {
        for (uint32_t i = 0; i < ctx_.items; ++i) {
          if (active[i]) slot[i] = tmp[i];
        }
      }
      give_vec(std::move(tmp));
      return st;
    }
    case StmtKind::kStore: {
      if (store_may_alias(s)) return exec_store_sequential(s, active);
      Vec ti = take_vec();
      Vec tv = take_vec();
      Status st = eval(s.a, active, n_active, ti);
      if (st.is_ok()) st = eval(s.b, active, n_active, tv);
      for (uint32_t i = 0; i < ctx_.items && st.is_ok(); ++i) {
        if (!active[i]) continue;
        std::vector<uint32_t>* data = nullptr;
        st = buffer_access(s.buffer, s.is_local, ti[i], &data);
        if (st.is_ok()) {
          if (options_.on_store) options_.on_store(&s);
          (*data)[ti[i]] = tv[i];
        }
      }
      give_vec(std::move(tv));
      give_vec(std::move(ti));
      return st;
    }
    case StmtKind::kIf: {
      Vec tc = take_vec();
      if (auto st = eval(s.a, active, n_active, tc); !st.is_ok()) {
        give_vec(std::move(tc));
        return st;
      }
      Mask then_mask = take_mask();
      Mask else_mask = take_mask();
      uint32_t n_then = 0, n_else = 0;
      for (uint32_t i = 0; i < ctx_.items; ++i) {
        if (!active[i]) continue;
        if (tc[i] != 0) {
          then_mask[i] = 1;
          ++n_then;
        } else {
          else_mask[i] = 1;
          ++n_else;
        }
      }
      give_vec(std::move(tc));
      Status st = Status::ok();
      if (n_then > 0) st = run_block(s.body, then_mask, n_then);
      if (st.is_ok() && n_else > 0 && !s.else_body.empty()) {
        st = run_block(s.else_body, else_mask, n_else);
      }
      give_mask(std::move(else_mask));
      give_mask(std::move(then_mask));
      return st;
    }
    case StmtKind::kFor: {
      auto& var = var_slot(s.var);
      Vec tmp = take_vec();
      Status st = eval(s.a, active, n_active, tmp);
      if (!st.is_ok()) {
        give_vec(std::move(tmp));
        return st;
      }
      for (uint32_t i = 0; i < ctx_.items; ++i) {
        if (active[i]) var[i] = tmp[i];
      }
      Mask loop_mask = take_mask();
      while (st.is_ok()) {
        // Loop iterations count against the statement budget even when the
        // body is empty, so runaway loops always trip the guard.
        if (++ctx_.statements_executed > options_.max_statements) {
          st = fail("statement budget exceeded (runaway kernel?)");
          break;
        }
        // The bound re-evaluates for every still-active item each
        // iteration, matching per-item execution.
        st = eval(s.b, active, n_active, tmp);
        if (!st.is_ok()) break;
        uint32_t n_loop = 0;
        for (uint32_t i = 0; i < ctx_.items; ++i) {
          loop_mask[i] = 0;
          if (!active[i]) continue;
          if (static_cast<int32_t>(var[i]) < static_cast<int32_t>(tmp[i])) {
            loop_mask[i] = 1;
            ++n_loop;
          }
        }
        if (n_loop == 0) break;
        st = run_block(s.body, loop_mask, n_loop);
        if (!st.is_ok()) break;
        st = eval(s.c, loop_mask, n_loop, tmp);
        if (!st.is_ok()) break;
        for (uint32_t i = 0; i < ctx_.items; ++i) {
          if (loop_mask[i]) var[i] += tmp[i];
        }
      }
      give_mask(std::move(loop_mask));
      give_vec(std::move(tmp));
      return st;
    }
    case StmtKind::kWhile: {
      Vec tc = take_vec();
      Mask loop_mask = take_mask();
      Status st = Status::ok();
      while (st.is_ok()) {
        if (++ctx_.statements_executed > options_.max_statements) {
          st = fail("statement budget exceeded (runaway kernel?)");
          break;
        }
        st = eval(s.a, active, n_active, tc);
        if (!st.is_ok()) break;
        uint32_t n_loop = 0;
        for (uint32_t i = 0; i < ctx_.items; ++i) {
          loop_mask[i] = 0;
          if (!active[i]) continue;
          if (tc[i] != 0) {
            loop_mask[i] = 1;
            ++n_loop;
          }
        }
        if (n_loop == 0) break;
        st = run_block(s.body, loop_mask, n_loop);
      }
      give_mask(std::move(loop_mask));
      give_vec(std::move(tc));
      return st;
    }
    case StmtKind::kBarrier: {
      // OpenCL requires barriers to be reached by every item of the group.
      if (n_active != ctx_.items) {
        return fail("barrier reached under divergent control flow (OpenCL UB)");
      }
      return Status::ok();  // lockstep execution: nothing to synchronize
    }
    case StmtKind::kAtomic: {
      // Item-sequential so each item's read-modify-write observes every
      // earlier item's update (tests assert ticket ordering).
      std::vector<uint32_t>* result = s.result_var.empty() ? nullptr : &var_slot(s.result_var);
      Mask single = take_mask();
      Vec ti = take_vec();
      Vec tv = take_vec();
      Status st = Status::ok();
      for (uint32_t i = 0; i < ctx_.items && st.is_ok(); ++i) {
        if (!active[i]) continue;
        single[i] = 1;
        st = eval(s.a, single, 1, ti);
        if (st.is_ok()) st = eval(s.b, single, 1, tv);
        std::vector<uint32_t>* data = nullptr;
        if (st.is_ok()) st = buffer_access(s.buffer, s.is_local, ti[i], &data);
        if (st.is_ok()) {
          if (options_.on_store) options_.on_store(&s);
          const uint32_t old = (*data)[ti[i]];
          const uint32_t operand = tv[i];
          uint32_t next = old;
          switch (s.atomic) {
            case AtomicOp::kAdd: next = old + operand; break;
            case AtomicOp::kMin:
              next = static_cast<uint32_t>(
                  std::min(static_cast<int32_t>(old), static_cast<int32_t>(operand)));
              break;
            case AtomicOp::kMax:
              next = static_cast<uint32_t>(
                  std::max(static_cast<int32_t>(old), static_cast<int32_t>(operand)));
              break;
            case AtomicOp::kAnd: next = old & operand; break;
            case AtomicOp::kOr: next = old | operand; break;
            case AtomicOp::kXor: next = old ^ operand; break;
            case AtomicOp::kExchange: next = operand; break;
            case AtomicOp::kCmpxchg: {
              st = eval(s.c, single, 1, tv);
              if (st.is_ok()) next = old == tv[i] ? operand : old;
              break;
            }
          }
          if (st.is_ok()) {
            (*data)[ti[i]] = next;
            if (result != nullptr) (*result)[i] = old;
          }
        }
        single[i] = 0;
      }
      give_vec(std::move(tv));
      give_vec(std::move(ti));
      give_mask(std::move(single));
      return st;
    }
    case StmtKind::kPrint: {
      Mask single = take_mask();
      Vec tv = take_vec();
      Status st = Status::ok();
      for (uint32_t i = 0; i < ctx_.items && st.is_ok(); ++i) {
        if (!active[i]) continue;
        single[i] = 1;
        std::string rendered;
        size_t arg_index = 0;
        const std::string& fmt = s.text;
        for (size_t p = 0; p < fmt.size() && st.is_ok(); ++p) {
          if (fmt[p] != '%' || p + 1 == fmt.size()) {
            rendered += fmt[p];
            continue;
          }
          const char spec = fmt[++p];
          if (spec == '%') {
            rendered += '%';
            continue;
          }
          uint32_t value = 0;
          if (arg_index < s.print_args.size()) {
            st = eval(s.print_args[arg_index++], single, 1, tv);
            if (!st.is_ok()) break;
            value = tv[i];
          }
          char buf[48];
          switch (spec) {
            case 'd': std::snprintf(buf, sizeof(buf), "%d", static_cast<int32_t>(value)); break;
            case 'u': std::snprintf(buf, sizeof(buf), "%u", value); break;
            case 'x': std::snprintf(buf, sizeof(buf), "%x", value); break;
            case 'f': std::snprintf(buf, sizeof(buf), "%f", u2f(value)); break;
            default: std::snprintf(buf, sizeof(buf), "%%%c", spec); break;
          }
          rendered += buf;
        }
        single[i] = 0;
        if (!st.is_ok()) break;
        if (!rendered.empty() && rendered.back() == '\n') rendered.pop_back();
        if (options_.print_sink) options_.print_sink(rendered);
      }
      give_vec(std::move(tv));
      give_mask(std::move(single));
      return st;
    }
  }
  return fail("unreachable statement kind");
}

Status GroupExec::run_block(const std::vector<StmtPtr>& block, const Mask& active,
                            uint32_t n_active) {
  for (const auto& s : block) {
    if (auto st = exec(*s, active, n_active); !st.is_ok()) return st;
  }
  return Status::ok();
}

}  // namespace

KernelArg KernelArg::scalar_f32(float v) { return KernelArg{false, f2u(v), nullptr}; }

Status Interpreter::run(const Kernel& kernel, const std::vector<KernelArg>& args,
                        const NDRange& ndrange) {
  if (args.size() != kernel.params.size()) {
    return Status(ErrorKind::kInvalidArgument,
                  kernel.name + ": expected " + std::to_string(kernel.params.size()) +
                      " args, got " + std::to_string(args.size()));
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].is_buffer != kernel.params[i].is_buffer) {
      return Status(ErrorKind::kInvalidArgument,
                    kernel.name + ": arg " + std::to_string(i) + " buffer/scalar mismatch");
    }
  }
  for (int d = 0; d < 3; ++d) {
    if (ndrange.local[d] == 0 || ndrange.global[d] % ndrange.local[d] != 0) {
      return Status(ErrorKind::kInvalidArgument,
                    kernel.name + ": global size not divisible by local size in dim " +
                        std::to_string(d));
    }
  }

  GroupContext ctx;
  ctx.kernel = &kernel;
  ctx.args = &args;
  ctx.ndrange = &ndrange;
  ctx.items = ndrange.local_items();
  for (int d = 0; d < 3; ++d) ctx.lid[d].resize(ctx.items);
  for (uint32_t i = 0; i < ctx.items; ++i) {
    ctx.lid[0][i] = i % ndrange.local[0];
    ctx.lid[1][i] = (i / ndrange.local[0]) % ndrange.local[1];
    ctx.lid[2][i] = i / (ndrange.local[0] * ndrange.local[1]);
  }

  const std::vector<uint8_t> full(ctx.items, 1);
  for (uint32_t gz = 0; gz < ndrange.num_groups(2); ++gz) {
    for (uint32_t gy = 0; gy < ndrange.num_groups(1); ++gy) {
      for (uint32_t gx = 0; gx < ndrange.num_groups(0); ++gx) {
        ctx.group[0] = gx;
        ctx.group[1] = gy;
        ctx.group[2] = gz;
        ctx.env.clear();
        ctx.locals.clear();
        for (const auto& array : kernel.locals) {
          ctx.locals.emplace_back(array.size, 0u);
        }
        GroupExec exec(ctx, options_);
        if (auto st = exec.run_block(kernel.body, full, ctx.items); !st.is_ok()) return st;
      }
    }
  }
  return Status::ok();
}

}  // namespace fgpu::kir
