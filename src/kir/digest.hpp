// Content digest of a KIR kernel: a 64-bit FNV-1a hash over every
// semantically meaningful field of the statement/expression trees, the
// parameter list and the __local arrays. Two kernels with equal digests
// compile to identical binaries (codegen::compile_kernel is a pure function
// of the kernel and its options), which is what makes the process-wide
// compiled-kernel cache (runtime/kernel_cache.hpp) content-addressed rather
// than name-addressed.
//
// The digest deliberately EXCLUDES Stmt::divergent: it is derived state
// filled in by analysis passes, and compile_kernel recomputes it on a clone.
#pragma once

#include <cstdint>

#include "kir/kir.hpp"

namespace fgpu::kir {

// Digest of a whole kernel (name, params, locals, body).
uint64_t kernel_digest(const Kernel& kernel);

// Digest of a whole module (name + every kernel, in order).
uint64_t module_digest(const Module& module);

}  // namespace fgpu::kir
