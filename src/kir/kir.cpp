#include "kir/kir.hpp"

#include <functional>
#include <sstream>

namespace fgpu::kir {
namespace {

const char* bin_symbol(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kRem: return "%";
    case BinOp::kAnd: return "&";
    case BinOp::kOr: return "|";
    case BinOp::kXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kMin: return "min";
    case BinOp::kMax: return "max";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLAnd: return "&&";
    case BinOp::kLOr: return "||";
  }
  return "?";
}

const char* special_name(SpecialReg r) {
  switch (r) {
    case SpecialReg::kGlobalId: return "get_global_id";
    case SpecialReg::kLocalId: return "get_local_id";
    case SpecialReg::kGroupId: return "get_group_id";
    case SpecialReg::kGlobalSize: return "get_global_size";
    case SpecialReg::kLocalSize: return "get_local_size";
    case SpecialReg::kNumGroups: return "get_num_groups";
  }
  return "?";
}

const char* builtin_name(Builtin b) {
  switch (b) {
    case Builtin::kSqrt: return "sqrt";
    case Builtin::kRsqrt: return "rsqrt";
    case Builtin::kExp: return "exp";
    case Builtin::kLog: return "log";
    case Builtin::kFloor: return "floor";
    case Builtin::kPowi: return "powi";
  }
  return "?";
}

void hash_combine(size_t& seed, size_t v) {
  seed ^= v + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2);
}

}  // namespace

bool expr_equal(const ExprPtr& a, const ExprPtr& b) {
  if (a.get() == b.get()) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind || a->type != b->type) return false;
  switch (a->kind) {
    case ExprKind::kConstInt:
      if (a->ival != b->ival) return false;
      break;
    case ExprKind::kConstFloat:
      if (a->fval != b->fval) return false;
      break;
    case ExprKind::kVar:
      if (a->var != b->var) return false;
      break;
    case ExprKind::kParam:
      if (a->index != b->index) return false;
      break;
    case ExprKind::kBinary:
      if (a->bin != b->bin) return false;
      break;
    case ExprKind::kUnary:
      if (a->un != b->un) return false;
      break;
    case ExprKind::kLoad:
      if (a->index != b->index || a->is_local != b->is_local || a->pipelined != b->pipelined) {
        return false;
      }
      break;
    case ExprKind::kSpecial:
      if (a->special != b->special || a->index != b->index) return false;
      break;
    case ExprKind::kCall:
      if (a->call != b->call) return false;
      break;
    case ExprKind::kSelect:
    case ExprKind::kCast:
      break;
  }
  if (a->args.size() != b->args.size()) return false;
  for (size_t i = 0; i < a->args.size(); ++i) {
    if (!expr_equal(a->args[i], b->args[i])) return false;
  }
  return true;
}

size_t expr_hash(const ExprPtr& e) {
  if (!e) return 0;
  size_t h = static_cast<size_t>(e->kind) * 131 + static_cast<size_t>(e->type);
  switch (e->kind) {
    case ExprKind::kConstInt: hash_combine(h, std::hash<int32_t>()(e->ival)); break;
    case ExprKind::kConstFloat: hash_combine(h, std::hash<float>()(e->fval)); break;
    case ExprKind::kVar: hash_combine(h, std::hash<std::string>()(e->var)); break;
    case ExprKind::kParam: hash_combine(h, static_cast<size_t>(e->index)); break;
    case ExprKind::kBinary: hash_combine(h, static_cast<size_t>(e->bin)); break;
    case ExprKind::kUnary: hash_combine(h, static_cast<size_t>(e->un)); break;
    case ExprKind::kLoad:
      hash_combine(h, static_cast<size_t>(e->index) * 2 + (e->is_local ? 1 : 0));
      break;
    case ExprKind::kSpecial:
      hash_combine(h, static_cast<size_t>(e->special) * 4 + static_cast<size_t>(e->index));
      break;
    case ExprKind::kCall: hash_combine(h, static_cast<size_t>(e->call)); break;
    default: break;
  }
  for (const auto& arg : e->args) hash_combine(h, expr_hash(arg));
  return h;
}

size_t expr_size(const ExprPtr& e) {
  if (!e) return 0;
  size_t n = 1;
  for (const auto& arg : e->args) n += expr_size(arg);
  return n;
}

bool expr_is_pure(const ExprPtr& e) {
  if (!e) return true;
  if (e->kind == ExprKind::kLoad) return false;
  for (const auto& arg : e->args) {
    if (!expr_is_pure(arg)) return false;
  }
  return true;
}

bool expr_contains_load(const ExprPtr& e) { return !expr_is_pure(e); }

bool expr_reads_buffer(const ExprPtr& e, int buffer, bool is_local) {
  if (!e) return false;
  if (e->kind == ExprKind::kLoad && e->index == buffer && e->is_local == is_local) return true;
  for (const auto& arg : e->args) {
    if (expr_reads_buffer(arg, buffer, is_local)) return true;
  }
  return false;
}

std::string expr_to_string(const ExprPtr& e) {
  if (!e) return "<null>";
  std::ostringstream os;
  switch (e->kind) {
    case ExprKind::kConstInt: os << e->ival; break;
    case ExprKind::kConstFloat: os << e->fval << "f"; break;
    case ExprKind::kVar: os << e->var; break;
    case ExprKind::kParam: os << "param" << e->index; break;
    case ExprKind::kBinary:
      if (e->bin == BinOp::kMin || e->bin == BinOp::kMax) {
        os << bin_symbol(e->bin) << "(" << expr_to_string(e->a()) << ", "
           << expr_to_string(e->b()) << ")";
      } else {
        os << "(" << expr_to_string(e->a()) << " " << bin_symbol(e->bin) << " "
           << expr_to_string(e->b()) << ")";
      }
      break;
    case ExprKind::kUnary:
      switch (e->un) {
        case UnOp::kNeg: os << "(-" << expr_to_string(e->a()) << ")"; break;
        case UnOp::kNot: os << "(!" << expr_to_string(e->a()) << ")"; break;
        case UnOp::kAbs: os << "fabs(" << expr_to_string(e->a()) << ")"; break;
        case UnOp::kBitcastI2F: os << "as_float(" << expr_to_string(e->a()) << ")"; break;
        case UnOp::kBitcastF2I: os << "as_int(" << expr_to_string(e->a()) << ")"; break;
      }
      break;
    case ExprKind::kSelect:
      os << "(" << expr_to_string(e->a()) << " ? " << expr_to_string(e->b()) << " : "
         << expr_to_string(e->c()) << ")";
      break;
    case ExprKind::kCast:
      os << "(" << to_string(e->type) << ")(" << expr_to_string(e->a()) << ")";
      break;
    case ExprKind::kLoad:
      if (e->pipelined) {
        os << "__pipelined_load(buf" << e->index << " + " << expr_to_string(e->a()) << ")";
      } else {
        os << (e->is_local ? "local" : "buf") << e->index << "[" << expr_to_string(e->a()) << "]";
      }
      break;
    case ExprKind::kSpecial:
      os << special_name(e->special) << "(" << e->index << ")";
      break;
    case ExprKind::kCall:
      os << builtin_name(e->call) << "(";
      for (size_t i = 0; i < e->args.size(); ++i) {
        if (i) os << ", ";
        os << expr_to_string(e->args[i]);
      }
      os << ")";
      break;
  }
  return os.str();
}

namespace {

bool stmts_contain(const std::vector<StmtPtr>& stmts, StmtKind kind) {
  for (const auto& s : stmts) {
    if (s->kind == kind) return true;
    if (stmts_contain(s->body, kind) || stmts_contain(s->else_body, kind)) return true;
  }
  return false;
}

void print_stmt(std::ostringstream& os, const Stmt& s, const Kernel& kernel, int indent);

void print_block(std::ostringstream& os, const std::vector<StmtPtr>& body, const Kernel& kernel,
                 int indent) {
  for (const auto& s : body) print_stmt(os, *s, kernel, indent);
}

std::string pretty_expr(const ExprPtr& e, const Kernel& kernel);

std::string buffer_name(const Kernel& kernel, int index, bool is_local) {
  if (is_local) return kernel.locals[static_cast<size_t>(index)].name;
  return kernel.params[static_cast<size_t>(index)].name;
}

// Pretty form substituting parameter/buffer names (for Fig. 6-style output).
std::string pretty_expr(const ExprPtr& e, const Kernel& kernel) {
  std::string raw = expr_to_string(e);
  // Replace paramN / bufN / localN with declared names, longest index first
  // to avoid prefix clashes (param12 vs param1).
  for (int i = static_cast<int>(kernel.params.size()) - 1; i >= 0; --i) {
    const std::string from_p = "param" + std::to_string(i);
    const std::string from_b = "buf" + std::to_string(i);
    for (const std::string& from : {from_p, from_b}) {
      size_t pos = 0;
      while ((pos = raw.find(from, pos)) != std::string::npos) {
        raw.replace(pos, from.size(), kernel.params[static_cast<size_t>(i)].name);
        pos += kernel.params[static_cast<size_t>(i)].name.size();
      }
    }
  }
  for (int i = static_cast<int>(kernel.locals.size()) - 1; i >= 0; --i) {
    const std::string from = "local" + std::to_string(i);
    size_t pos = 0;
    while ((pos = raw.find(from, pos)) != std::string::npos) {
      raw.replace(pos, from.size(), kernel.locals[static_cast<size_t>(i)].name);
      pos += kernel.locals[static_cast<size_t>(i)].name.size();
    }
  }
  return raw;
}

void print_stmt(std::ostringstream& os, const Stmt& s, const Kernel& kernel, int indent) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (s.kind) {
    case StmtKind::kLet:
      os << pad << to_string(s.a->type) << " " << s.var << " = " << pretty_expr(s.a, kernel)
         << ";\n";
      break;
    case StmtKind::kAssign:
      os << pad << s.var << " = " << pretty_expr(s.a, kernel) << ";\n";
      break;
    case StmtKind::kStore:
      os << pad << buffer_name(kernel, s.buffer, s.is_local) << "[" << pretty_expr(s.a, kernel)
         << "] = " << pretty_expr(s.b, kernel) << ";\n";
      break;
    case StmtKind::kIf:
      os << pad << "if (" << pretty_expr(s.a, kernel) << ") {\n";
      print_block(os, s.body, kernel, indent + 1);
      if (!s.else_body.empty()) {
        os << pad << "} else {\n";
        print_block(os, s.else_body, kernel, indent + 1);
      }
      os << pad << "}\n";
      break;
    case StmtKind::kFor:
      os << pad << "for (int " << s.var << " = " << pretty_expr(s.a, kernel) << "; " << s.var
         << " < " << pretty_expr(s.b, kernel) << "; " << s.var
         << " += " << pretty_expr(s.c, kernel) << ") {\n";
      print_block(os, s.body, kernel, indent + 1);
      os << pad << "}\n";
      break;
    case StmtKind::kWhile:
      os << pad << "while (" << pretty_expr(s.a, kernel) << ") {\n";
      print_block(os, s.body, kernel, indent + 1);
      os << pad << "}\n";
      break;
    case StmtKind::kBarrier:
      os << pad << "barrier(CLK_LOCAL_MEM_FENCE);\n";
      break;
    case StmtKind::kAtomic: {
      const char* name = "atomic_add";
      switch (s.atomic) {
        case AtomicOp::kAdd: name = "atomic_add"; break;
        case AtomicOp::kMin: name = "atomic_min"; break;
        case AtomicOp::kMax: name = "atomic_max"; break;
        case AtomicOp::kAnd: name = "atomic_and"; break;
        case AtomicOp::kOr: name = "atomic_or"; break;
        case AtomicOp::kXor: name = "atomic_xor"; break;
        case AtomicOp::kExchange: name = "atomic_xchg"; break;
        case AtomicOp::kCmpxchg: name = "atomic_cmpxchg"; break;
      }
      os << pad;
      if (!s.result_var.empty()) os << "int " << s.result_var << " = ";
      os << name << "(&" << buffer_name(kernel, s.buffer, s.is_local) << "["
         << pretty_expr(s.a, kernel) << "], " << pretty_expr(s.b, kernel) << ");\n";
      break;
    }
    case StmtKind::kPrint:
      os << pad << "printf(\"" << s.text << "\"";
      for (const auto& arg : s.print_args) os << ", " << pretty_expr(arg, kernel);
      os << ");\n";
      break;
  }
}

}  // namespace

bool Kernel::has_barrier() const { return stmts_contain(body, StmtKind::kBarrier); }
bool Kernel::has_atomic() const { return stmts_contain(body, StmtKind::kAtomic); }
bool Kernel::has_print() const { return stmts_contain(body, StmtKind::kPrint); }

uint32_t Kernel::local_bytes() const {
  uint32_t total = 0;
  for (const auto& array : locals) total += array.size * 4;
  return total;
}

std::string Kernel::to_string() const {
  std::ostringstream os;
  os << "__kernel void " << name << "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i) os << ", ";
    if (params[i].is_buffer) {
      os << "__global " << kir::to_string(params[i].elem) << "* " << params[i].name;
    } else {
      os << kir::to_string(params[i].elem) << " " << params[i].name;
    }
  }
  os << ") {\n";
  for (const auto& array : locals) {
    os << "  __local " << kir::to_string(array.elem) << " " << array.name << "[" << array.size
       << "];\n";
  }
  print_block(os, body, *this, 1);
  os << "}\n";
  return os.str();
}

}  // namespace fgpu::kir
