// The -O2 KIR passes of the soft-GPU optimization pipeline: dead-code
// elimination, loop-invariant code motion, and strength reduction. These
// mirror what the paper's PoCL+LLVM flow gets from LLVM's middle end and
// attack the same cycle sinks: redundant per-iteration arithmetic inside
// kernel loops and avoidable multiplies/divides in id/address math.
//
// Every rewrite here must be bit-exact against the reference interpreter:
// shifts are mod-32, multiplies wrap mod 2^32, and div/rem keep RISC-V
// no-trap semantics (x/0 == -1, x%0 == x), so pure expressions can be
// hoisted or dropped freely while divide strength reduction needs the
// non-negativity proof below.
#include <algorithm>
#include <optional>
#include <unordered_set>
#include <vector>

#include "codegen/remarks.hpp"
#include "kir/build.hpp"
#include "kir/passes.hpp"

namespace fgpu::kir {

// ---------------------------------------------------------------------------
// provenance + size helpers
// ---------------------------------------------------------------------------

namespace {

int stmt_size(const StmtPtr& s) {
  int n = 1;
  for (const ExprPtr* e : {&s->a, &s->b, &s->c}) {
    if (*e) n += expr_size(*e);
  }
  for (const auto& arg : s->print_args) n += expr_size(arg);
  for (const auto& child : s->body) n += stmt_size(child);
  for (const auto& child : s->else_body) n += stmt_size(child);
  return n;
}

}  // namespace

std::string stmt_summary(const Kernel& kernel, const Stmt& s) {
  const auto buf_name = [&](int buffer, bool is_local) -> std::string {
    if (is_local) {
      return buffer >= 0 && buffer < static_cast<int>(kernel.locals.size())
                 ? kernel.locals[static_cast<size_t>(buffer)].name
                 : "<local>";
    }
    return buffer >= 0 && buffer < static_cast<int>(kernel.params.size())
               ? kernel.params[static_cast<size_t>(buffer)].name
               : "<buffer>";
  };
  std::string text;
  switch (s.kind) {
    case StmtKind::kLet:
      text = "let " + s.var + " = " + expr_to_string(s.a);
      break;
    case StmtKind::kAssign:
      text = s.var + " = " + expr_to_string(s.a);
      break;
    case StmtKind::kStore:
      text = buf_name(s.buffer, s.is_local) + "[" + expr_to_string(s.a) +
             "] = " + expr_to_string(s.b);
      break;
    case StmtKind::kIf:
      text = "if (" + expr_to_string(s.a) + ")";
      break;
    case StmtKind::kFor:
      text = "for (" + s.var + " = " + expr_to_string(s.a) + "; " + s.var + " < " +
             expr_to_string(s.b) + "; " + s.var + " += " + expr_to_string(s.c) + ")";
      break;
    case StmtKind::kWhile:
      text = "while (" + expr_to_string(s.a) + ")";
      break;
    case StmtKind::kBarrier:
      text = "barrier()";
      break;
    case StmtKind::kAtomic:
      text = (s.result_var.empty() ? std::string() : s.result_var + " = ") + "atomic(&" +
             buf_name(s.buffer, s.is_local) + "[" + expr_to_string(s.a) + "], " +
             expr_to_string(s.b) + ")";
      break;
    case StmtKind::kPrint:
      text = "printf(\"" + s.text + "\", ...)";
      break;
  }
  constexpr size_t kMaxLabel = 80;
  if (text.size() > kMaxLabel) text = text.substr(0, kMaxLabel - 3) + "...";
  return text;
}

int kernel_size(const Kernel& kernel) {
  int n = 0;
  for (const auto& s : kernel.body) n += stmt_size(s);
  return n;
}

// ---------------------------------------------------------------------------
// dead_code_elim
// ---------------------------------------------------------------------------

namespace {

void collect_var_reads(const ExprPtr& e, std::unordered_set<std::string>& reads) {
  if (e->kind == ExprKind::kVar) reads.insert(e->var);
  for (const auto& arg : e->args) collect_var_reads(arg, reads);
}

void collect_block_reads(const std::vector<StmtPtr>& block,
                         std::unordered_set<std::string>& reads) {
  for (const auto& s : block) {
    for (const ExprPtr* e : {&s->a, &s->b, &s->c}) {
      if (*e) collect_var_reads(*e, reads);
    }
    for (const auto& arg : s->print_args) collect_var_reads(arg, reads);
    collect_block_reads(s->body, reads);
    collect_block_reads(s->else_body, reads);
  }
}

// One sweep with a fixed read set. Reads inside statements removed this
// sweep still count as live; the fixpoint driver below catches the chain.
int dce_block(const Kernel& kernel, std::vector<StmtPtr>& block,
              const std::unordered_set<std::string>& reads, codegen::RemarkSink* sink) {
  int removed = 0;
  for (auto& s : block) {
    removed += dce_block(kernel, s->body, reads, sink);
    removed += dce_block(kernel, s->else_body, reads, sink);
  }
  const auto dead = [&](const StmtPtr& s) -> bool {
    switch (s->kind) {
      case StmtKind::kLet:
      case StmtKind::kAssign:
        // Loads are side-effect free but kept anyway: dropping them would
        // still be sound, this just keeps the pass trivially conservative.
        return !reads.contains(s->var) && expr_is_pure(s->a);
      case StmtKind::kIf:
        return s->body.empty() && s->else_body.empty() && expr_is_pure(s->a);
      case StmtKind::kFor:
        // Only a positive constant step proves termination of the empty
        // loop (a negative or runtime step could spin forever, and an
        // infinite loop is an observable behavior).
        return s->body.empty() && expr_is_pure(s->a) && expr_is_pure(s->b) &&
               expr_is_pure(s->c) && s->c->kind == ExprKind::kConstInt && s->c->ival > 0;
      default:
        return false;
    }
  };
  if (sink != nullptr) {
    for (const auto& s : block) {
      if (!dead(s)) continue;
      sink->add("dce", "applied", "dce.remove", stmt_summary(kernel, *s),
                "statement has no observable effect", stmt_size(s));
    }
  }
  const auto before = block.size();
  std::erase_if(block, dead);
  removed += static_cast<int>(before - block.size());
  return removed;
}

}  // namespace

int dead_code_elim(Kernel& kernel, codegen::RemarkSink* sink) {
  int total = 0;
  for (int round = 0; round < 8; ++round) {
    std::unordered_set<std::string> reads;
    collect_block_reads(kernel.body, reads);
    const int removed = dce_block(kernel, kernel.body, reads, sink);
    total += removed;
    if (removed == 0) break;
  }
  return total;
}

// ---------------------------------------------------------------------------
// strength_reduce
// ---------------------------------------------------------------------------

namespace {

bool is_pow2(int32_t v) { return v > 0 && (v & (v - 1)) == 0; }

int32_t log2_exact(int32_t v) {
  int32_t k = 0;
  while ((int64_t{1} << k) < v) ++k;
  return k;
}

// Conservative proof that an i32 expression is non-negative. Additions and
// multiplications of non-negative terms are deliberately excluded: they can
// wrap past INT32_MAX. kAbs is excluded too (abs(INT_MIN) == INT_MIN).
bool nonneg(const ExprPtr& e) {
  if (e->type != Scalar::kI32) return false;
  switch (e->kind) {
    case ExprKind::kConstInt:
      return e->ival >= 0;
    case ExprKind::kSpecial:
      return true;  // work-item ids/sizes are non-negative by construction
    case ExprKind::kUnary:
      return e->un == UnOp::kNot;  // produces 0/1
    case ExprKind::kSelect:
      return nonneg(e->b()) && nonneg(e->c());
    case ExprKind::kBinary:
      switch (e->bin) {
        case BinOp::kLt:
        case BinOp::kLe:
        case BinOp::kGt:
        case BinOp::kGe:
        case BinOp::kEq:
        case BinOp::kNe:
        case BinOp::kLAnd:
        case BinOp::kLOr:
          return true;  // comparisons/logicals produce 0/1
        case BinOp::kAnd:
          // Masking with a non-negative operand clears the sign bit.
          return nonneg(e->a()) || nonneg(e->b());
        case BinOp::kShr:
          return nonneg(e->a());  // arithmetic shift keeps the (zero) sign
        case BinOp::kRem:
          // RISC-V rem takes the dividend's sign; rem-by-zero yields the
          // dividend, so a non-negative dividend suffices.
          return nonneg(e->a());
        case BinOp::kDiv:
          // Divide-by-zero yields -1, so the divisor must be a provably
          // positive constant.
          return nonneg(e->a()) && e->b()->kind == ExprKind::kConstInt && e->b()->ival > 0;
        case BinOp::kMin:
        case BinOp::kMax:
          return nonneg(e->a()) && nonneg(e->b());
        default:
          return false;  // add/sub/mul/shl/or/xor can produce negatives
      }
    default:
      return false;
  }
}

// Remark plumbing for the rewriter: sink may be null (no remarks); `site`
// is the enclosing statement's summary, computed once per statement.
struct SrCtx {
  int count = 0;
  codegen::RemarkSink* sink = nullptr;
  const std::string* site = nullptr;

  void note(const char* action, const char* name, const char* detail, int64_t value) {
    if (sink != nullptr) sink->add("strength-reduce", action, name, *site, detail, value);
  }
};

ExprPtr reduce_expr(const ExprPtr& e, SrCtx& ctx) {
  auto node = std::make_shared<Expr>(*e);
  for (auto& arg : node->args) arg = reduce_expr(arg, ctx);
  if (node->kind != ExprKind::kBinary || node->type != Scalar::kI32) return node;
  const auto cint = [](const ExprPtr& x) -> std::optional<int32_t> {
    if (x->kind == ExprKind::kConstInt) return x->ival;
    return std::nullopt;
  };
  switch (node->bin) {
    case BinOp::kMul:
      // Two's-complement multiply by 2^k is exactly a left shift (mod 2^32).
      if (const auto c = cint(node->b()); c && is_pow2(*c) && *c > 1) {
        ++ctx.count;
        ctx.note("applied", "sr.mul-to-shl", "multiply by power of two rewritten to shift", *c);
        return make_bin(BinOp::kShl, node->a(), make_ci32(log2_exact(*c)));
      }
      if (const auto c = cint(node->a()); c && is_pow2(*c) && *c > 1) {
        ++ctx.count;
        ctx.note("applied", "sr.mul-to-shl", "multiply by power of two rewritten to shift", *c);
        return make_bin(BinOp::kShl, node->b(), make_ci32(log2_exact(*c)));
      }
      break;
    case BinOp::kDiv:
      if (const auto c = cint(node->b())) {
        if (*c == 1) {
          ++ctx.count;
          ctx.note("applied", "sr.div-by-one", "division by one removed", 1);
          return node->a();
        }
        // Truncating signed division only equals the arithmetic shift for
        // non-negative dividends.
        if (is_pow2(*c) && nonneg(node->a())) {
          ++ctx.count;
          ctx.note("applied", "sr.div-to-shr", "division by power of two rewritten to shift",
                   *c);
          return make_bin(BinOp::kShr, node->a(), make_ci32(log2_exact(*c)));
        }
        if (is_pow2(*c)) {
          ctx.note("missed", "sr.div-not-nonneg",
                   "dividend not provably non-negative; signed division kept", *c);
        }
      }
      break;
    case BinOp::kRem:
      if (const auto c = cint(node->b())) {
        if (is_pow2(*c) && nonneg(node->a())) {
          ++ctx.count;
          ctx.note("applied", "sr.rem-to-and", "remainder by power of two rewritten to mask",
                   *c);
          if (*c == 1) return make_ci32(0);
          return make_bin(BinOp::kAnd, node->a(), make_ci32(*c - 1));
        }
        if (is_pow2(*c)) {
          ctx.note("missed", "sr.rem-not-nonneg",
                   "dividend not provably non-negative; signed remainder kept", *c);
        }
      }
      break;
    default:
      break;
  }
  return node;
}

void reduce_block(const Kernel& kernel, std::vector<StmtPtr>& block, SrCtx& ctx) {
  std::string site;
  for (auto& s : block) {
    if (ctx.sink != nullptr) site = stmt_summary(kernel, *s);
    ctx.site = &site;
    if (s->a) s->a = reduce_expr(s->a, ctx);
    if (s->b) s->b = reduce_expr(s->b, ctx);
    if (s->c) s->c = reduce_expr(s->c, ctx);
    for (auto& arg : s->print_args) arg = reduce_expr(arg, ctx);
    reduce_block(kernel, s->body, ctx);
    reduce_block(kernel, s->else_body, ctx);
  }
}

}  // namespace

int strength_reduce(Kernel& kernel, codegen::RemarkSink* sink) {
  SrCtx ctx;
  ctx.sink = sink;
  reduce_block(kernel, kernel.body, ctx);
  return ctx.count;
}

// ---------------------------------------------------------------------------
// licm
// ---------------------------------------------------------------------------

namespace {

void collect_defined_vars(const std::vector<StmtPtr>& block,
                          std::unordered_set<std::string>& defs) {
  for (const auto& s : block) {
    if (s->kind == StmtKind::kLet || s->kind == StmtKind::kAssign || s->kind == StmtKind::kFor) {
      defs.insert(s->var);
    }
    if (!s->result_var.empty()) defs.insert(s->result_var);
    collect_defined_vars(s->body, defs);
    collect_defined_vars(s->else_body, defs);
  }
}

void collect_all_names(const std::vector<StmtPtr>& block, std::unordered_set<std::string>& names) {
  collect_defined_vars(block, names);
}

bool expr_uses_vars(const ExprPtr& e, const std::unordered_set<std::string>& vars) {
  if (e->kind == ExprKind::kVar && vars.contains(e->var)) return true;
  for (const auto& arg : e->args) {
    if (expr_uses_vars(arg, vars)) return true;
  }
  return false;
}

bool hoistable_kind(const ExprPtr& e) {
  switch (e->kind) {
    case ExprKind::kBinary:
    case ExprKind::kUnary:
    case ExprKind::kSelect:
    case ExprKind::kCast:
    case ExprKind::kCall:  // only sqrt survives expand_builtins; it is pure
      return true;
    default:
      return false;
  }
}

// Top-down collection of maximal pure loop-invariant subexpressions:
// qualifying nodes are recorded without descending, so candidates never
// overlap within one tree.
void collect_invariant_subexprs(const ExprPtr& e, const std::unordered_set<std::string>& loop_defs,
                                std::vector<ExprPtr>& out) {
  if (hoistable_kind(e) && expr_is_pure(e) && !expr_uses_vars(e, loop_defs)) {
    for (const auto& seen : out) {
      if (expr_equal(seen, e)) return;
    }
    out.push_back(e);
    return;
  }
  for (const auto& arg : e->args) collect_invariant_subexprs(arg, loop_defs, out);
}

void collect_from_block(const std::vector<StmtPtr>& block,
                        const std::unordered_set<std::string>& loop_defs,
                        std::vector<ExprPtr>& out) {
  for (const auto& s : block) {
    for (const ExprPtr* e : {&s->a, &s->b, &s->c}) {
      if (*e) collect_invariant_subexprs(*e, loop_defs, out);
    }
    for (const auto& arg : s->print_args) collect_invariant_subexprs(arg, loop_defs, out);
    collect_from_block(s->body, loop_defs, out);
    collect_from_block(s->else_body, loop_defs, out);
  }
}

ExprPtr rewrite_expr(const ExprPtr& e, const ExprPtr& pattern, const ExprPtr& replacement) {
  if (expr_equal(e, pattern)) return replacement;
  if (e->args.empty()) return e;
  auto node = std::make_shared<Expr>(*e);
  for (auto& arg : node->args) arg = rewrite_expr(arg, pattern, replacement);
  return node;
}

void rewrite_block(std::vector<StmtPtr>& block, const ExprPtr& pattern,
                   const ExprPtr& replacement) {
  for (auto& s : block) {
    if (s->a) s->a = rewrite_expr(s->a, pattern, replacement);
    if (s->b) s->b = rewrite_expr(s->b, pattern, replacement);
    if (s->c) s->c = rewrite_expr(s->c, pattern, replacement);
    for (auto& arg : s->print_args) arg = rewrite_expr(arg, pattern, replacement);
    rewrite_block(s->body, pattern, replacement);
    rewrite_block(s->else_body, pattern, replacement);
  }
}

struct LicmContext {
  std::unordered_set<std::string> names;  // every name defined in the kernel
  int counter = 0;
  int hoisted = 0;
  const Kernel* kernel = nullptr;
  codegen::RemarkSink* sink = nullptr;

  std::string fresh_name() {
    std::string name;
    do {
      name = "licm" + std::to_string(counter++);
    } while (names.contains(name));
    names.insert(name);
    return name;
  }
};

// Cap per loop: hoisted values live across the whole loop, so each one costs
// a long live range. Four covers the benchmarks' address products without
// meaningfully raising register pressure.
constexpr size_t kMaxHoistsPerLoop = 4;

// Remarks only: pure hoistable-shaped expressions that stay in the loop
// because they read loop-carried variables — the "why was this not hoisted"
// answer, named with the blocking dependence. Top-down like the candidate
// collector; a flagged node's subtrees are not re-flagged. Size >= 3 keeps
// trivia like `i + 1` out of the stream.
void note_loop_dependent(const ExprPtr& e, const std::unordered_set<std::string>& loop_defs,
                         LicmContext& ctx, const std::string& site) {
  if (hoistable_kind(e) && expr_is_pure(e) && expr_uses_vars(e, loop_defs) &&
      expr_size(e) >= 3) {
    std::string deps;
    std::unordered_set<std::string> reads;
    collect_var_reads(e, reads);
    std::vector<std::string> blocking;
    for (const auto& var : reads) {
      if (loop_defs.contains(var)) blocking.push_back(var);
    }
    std::sort(blocking.begin(), blocking.end());
    for (const auto& var : blocking) {
      if (!deps.empty()) deps += ", ";
      deps += var;
    }
    ctx.sink->add("licm", "missed", "licm.loop-dependent", site,
                  "depends on loop-carried " + deps, expr_size(e));
    return;
  }
  for (const auto& arg : e->args) note_loop_dependent(arg, loop_defs, ctx, site);
}

void note_loop_dependent_block(const std::vector<StmtPtr>& block,
                               const std::unordered_set<std::string>& loop_defs,
                               LicmContext& ctx) {
  for (const auto& s : block) {
    const std::string site = stmt_summary(*ctx.kernel, *s);
    for (const ExprPtr* e : {&s->a, &s->b, &s->c}) {
      if (*e) note_loop_dependent(*e, loop_defs, ctx, site);
    }
    for (const auto& arg : s->print_args) note_loop_dependent(arg, loop_defs, ctx, site);
    note_loop_dependent_block(s->body, loop_defs, ctx);
    note_loop_dependent_block(s->else_body, loop_defs, ctx);
  }
}

void licm_block(std::vector<StmtPtr>& block, LicmContext& ctx) {
  for (size_t i = 0; i < block.size(); ++i) {
    StmtPtr s = block[i];
    // Innermost loops first: an inner hoist creates a `licm%d` definition in
    // the outer loop's body, which the outer invariance check then sees.
    licm_block(s->body, ctx);
    licm_block(s->else_body, ctx);
    if (s->kind != StmtKind::kFor && s->kind != StmtKind::kWhile) continue;

    std::unordered_set<std::string> loop_defs;
    if (s->kind == StmtKind::kFor) loop_defs.insert(s->var);
    collect_defined_vars(s->body, loop_defs);

    // Per-iteration expressions: the while condition and the for-loop's
    // end/step are re-evaluated every trip; the begin expression runs once,
    // so hoisting it would not save anything.
    std::vector<ExprPtr> candidates;
    if (s->kind == StmtKind::kWhile) collect_invariant_subexprs(s->a, loop_defs, candidates);
    if (s->kind == StmtKind::kFor) {
      collect_invariant_subexprs(s->b, loop_defs, candidates);
      collect_invariant_subexprs(s->c, loop_defs, candidates);
    }
    collect_from_block(s->body, loop_defs, candidates);

    // Biggest savings first; std::stable_sort keeps the first-occurrence
    // order on ties so the output is deterministic.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const ExprPtr& a, const ExprPtr& b) {
                       return expr_size(a) > expr_size(b);
                     });
    std::string loop_site;
    if (ctx.sink != nullptr) {
      loop_site = stmt_summary(*ctx.kernel, *s);
      for (size_t c = kMaxHoistsPerLoop; c < candidates.size(); ++c) {
        ctx.sink->add("licm", "blocked", "licm.hoist-budget", loop_site,
                      "per-loop hoist budget (" + std::to_string(kMaxHoistsPerLoop) +
                          ") exhausted: " + expr_to_string(candidates[c]),
                      expr_size(candidates[c]));
      }
      note_loop_dependent_block(s->body, loop_defs, ctx);
    }
    if (candidates.size() > kMaxHoistsPerLoop) candidates.resize(kMaxHoistsPerLoop);

    for (const auto& expr : candidates) {
      const std::string name = ctx.fresh_name();
      auto let = std::make_shared<Stmt>();
      let->kind = StmtKind::kLet;
      let->var = name;
      let->a = expr;
      const ExprPtr var = make_var(name, expr->type);
      if (s->kind == StmtKind::kWhile) s->a = rewrite_expr(s->a, expr, var);
      if (s->kind == StmtKind::kFor) {
        s->b = rewrite_expr(s->b, expr, var);
        s->c = rewrite_expr(s->c, expr, var);
      }
      rewrite_block(s->body, expr, var);
      block.insert(block.begin() + static_cast<std::ptrdiff_t>(i), let);
      ++i;  // keep pointing at the loop statement
      ++ctx.hoisted;
      if (ctx.sink != nullptr) {
        ctx.sink->add("licm", "applied", "licm.hoist", loop_site,
                      "hoisted " + expr_to_string(expr) + " to " + name, expr_size(expr));
      }
    }
  }
}

}  // namespace

int licm(Kernel& kernel, codegen::RemarkSink* sink) {
  LicmContext ctx;
  ctx.kernel = &kernel;
  ctx.sink = sink;
  collect_all_names(kernel.body, ctx.names);
  licm_block(kernel.body, ctx);
  return ctx.hoisted;
}

}  // namespace fgpu::kir
