#include "codegen/codegen.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <unordered_map>

#include "codegen/abi.hpp"
#include "codegen/minstr.hpp"
#include "codegen/peephole.hpp"
#include "codegen/regalloc.hpp"
#include "common/bits.hpp"
#include "kir/passes.hpp"
#include "vasm/builder.hpp"

namespace fgpu::codegen {
namespace {

using arch::Op;
using kir::BinOp;
using kir::Expr;
using kir::ExprKind;
using kir::ExprPtr;
using kir::Scalar;
using kir::SpecialReg;
using kir::Stmt;
using kir::StmtKind;
using kir::UnOp;

// Physical registers with fixed roles (see regalloc.hpp for the reserved set).
constexpr int kSp = 2;        // per-lane stack pointer
constexpr int kArgBaseReg = 3;  // kernel-argument block base
constexpr int kA0 = 10, kA7 = 17;  // ECALL argument/function registers
constexpr int kScratch0 = 29, kScratch1 = 30, kScratch2 = 31;

// An evaluated expression: virtual register + whether codegen owns it (may
// bind it to a variable without copying).
struct Value {
  int vreg = -1;
  bool owned = false;
};

class Lowering {
 public:
  Lowering(const kir::Kernel& kernel, const Options& options, bool barrier_mode)
      : kernel_(kernel), options_(options), barrier_mode_(barrier_mode) {}

  Result<MFunction> run() {
    scan_used_specials(kernel_.body);
    emit_entry();
    emit_warp_prologue();
    if (barrier_mode_) {
      emit_group_dispatch();
    } else {
      emit_grid_stride_dispatch();
    }
    if (!error_.is_ok()) return error_;
    return std::move(fn_);
  }

 private:
  // ---- tiny emit helpers on the machine IR ----------------------------
  // Every emitted MInstr carries the current provenance cursor; the line
  // table this produces is the profiler's PC -> KIR source attribution.
  void push(MInstr m) {
    m.src = cur_src_;
    fn_.code.push_back(m);
  }
  void set_source(const std::string& text) {
    const auto [it, inserted] = source_ids_.try_emplace(text, static_cast<int>(fn_.sources.size()));
    if (inserted) fn_.sources.push_back(text);
    cur_src_ = it->second;
  }
  void op_r(Op op, int rd, int rs1, int rs2, int rs3 = -1) {
    MInstr m;
    m.op = op;
    m.rd = rd;
    m.rs1 = rs1;
    m.rs2 = rs2;
    m.rs3 = rs3;
    push(m);
  }
  void op_i(Op op, int rd, int rs1, int32_t imm) {
    MInstr m;
    m.op = op;
    m.rd = rd;
    m.rs1 = rs1;
    m.imm = imm;
    push(m);
  }
  void op_s(Op op, int rs1, int rs2, int32_t imm) {
    MInstr m;
    m.op = op;
    m.rs1 = rs1;
    m.rs2 = rs2;
    m.imm = imm;
    push(m);
  }
  void jump(int label) {
    MInstr m;
    m.op = Op::kJal;
    m.rd = 0;
    m.target = label;
    push(m);
  }
  // Conditional branch to `label`. B-type reach is only +-4 KiB and kernel
  // bodies routinely exceed it, so we emit the inverted branch over an
  // unconditional JAL (+-1 MiB reach), the standard far-branch expansion.
  void branch(Op op, int rs1, int rs2, int label) {
    Op inverted = op;
    switch (op) {
      case Op::kBeq: inverted = Op::kBne; break;
      case Op::kBne: inverted = Op::kBeq; break;
      case Op::kBlt: inverted = Op::kBge; break;
      case Op::kBge: inverted = Op::kBlt; break;
      case Op::kBltu: inverted = Op::kBgeu; break;
      case Op::kBgeu: inverted = Op::kBltu; break;
      default: break;
    }
    const int skip = fn_.make_label();
    MInstr m;
    m.op = inverted;
    m.rs1 = rs1;
    m.rs2 = rs2;
    m.target = skip;
    push(m);
    jump(label);
    fn_.label(skip);
  }
  void split(int rs1, int else_label) {
    MInstr m;
    m.op = Op::kSplit;
    m.rs1 = rs1;
    m.target = else_label;
    push(m);
  }
  void pred(int rs1, int exit_label) {
    MInstr m;
    m.op = Op::kPred;
    m.rs1 = rs1;
    m.target = exit_label;
    push(m);
  }
  void join(int merge_label) {
    MInstr m;
    m.op = Op::kJoin;
    m.target = merge_label;
    push(m);
  }
  void li(int rd, int32_t value) {
    MInstr m;
    m.is_li = true;
    m.rd = rd;
    m.imm = value;
    push(m);
  }
  void la(int rd, int label) {
    MInstr m;
    m.is_la = true;
    m.rd = rd;
    m.target = label;
    push(m);
  }
  void csr_read(int rd, uint32_t csr) { op_i(Op::kCsrrs, rd, 0, static_cast<int32_t>(csr)); }
  void mv_int(int rd, int rs) { op_i(Op::kAddi, rd, rs, 0); }
  void mv_float(int rd, int rs) { op_r(Op::kFsgnjS, rd, rs, rs); }
  int fresh() { return fn_.new_vreg(); }

  void fail(const std::string& message) {
    if (error_.is_ok()) {
      error_ = Status(ErrorKind::kCompileError, kernel_.name + ": " + message);
    }
  }

  // ---- prologue / dispatch --------------------------------------------

  // Entry code runs on warp 0 / lane 0 of every core. Uses only physical
  // scratch registers: the stack pointer is not set up yet, so nothing here
  // may be spillable.
  void emit_entry() {
    set_source("<entry: wspawn + lane activation>");
    warp_main_ = fn_.make_label();
    li(kArgBaseReg, static_cast<int32_t>(arch::kArgBase));
    if (barrier_mode_) {
      op_i(Op::kLw, kScratch0, kArgBaseReg, static_cast<int32_t>(abi::kNbw));
    } else {
      csr_read(kScratch0, arch::kCsrNumWarps);
    }
    la(kScratch1, warp_main_);
    op_r(Op::kWspawn, 0, kScratch0, kScratch1);
    fn_.label(warp_main_);
    // Spawned warps enter here with only lane 0 active and empty registers:
    // give lane 0 the argument-block base before the activation code uses it.
    li(kArgBaseReg, static_cast<int32_t>(arch::kArgBase));

    // Activate this warp's lanes. For barrier dispatch, warps beyond the
    // participating count retire immediately and partial warps mask off the
    // lanes past the work-group size.
    const int exit_label = fn_.make_label();
    if (barrier_mode_) {
      csr_read(kScratch0, arch::kCsrWarpId);
      op_i(Op::kLw, kScratch1, kArgBaseReg, static_cast<int32_t>(abi::kNbw));
      const int cont = fn_.make_label();
      branch(Op::kBlt, kScratch0, kScratch1, cont);
      op_r(Op::kTmc, 0, 0, 0);  // tmc zero: warp exit
      fn_.label(cont);
      // count = min(local_total - warp_id * NT, NT); tmask = ~0 >> (32 - count)
      op_i(Op::kLw, kScratch1, kArgBaseReg, static_cast<int32_t>(abi::kLocalTotal));
      csr_read(kScratch2, arch::kCsrNumThreads);
      op_r(Op::kMul, kScratch0, kScratch0, kScratch2);
      op_r(Op::kSub, kScratch1, kScratch1, kScratch0);  // remaining items
      const int clamped = fn_.make_label();
      branch(Op::kBge, kScratch2, kScratch1, clamped);
      mv_int(kScratch1, kScratch2);
      fn_.label(clamped);
      li(kScratch0, 32);
      op_r(Op::kSub, kScratch0, kScratch0, kScratch1);
      li(kScratch2, -1);
      op_r(Op::kSrl, kScratch2, kScratch2, kScratch0);
      op_r(Op::kTmc, 0, kScratch2, 0);
    } else {
      csr_read(kScratch0, arch::kCsrNumThreads);
      li(kScratch1, 32);
      op_r(Op::kSub, kScratch1, kScratch1, kScratch0);
      li(kScratch2, -1);
      op_r(Op::kSrl, kScratch2, kScratch2, kScratch1);
      op_r(Op::kTmc, 0, kScratch2, 0);
    }
    (void)exit_label;

    // Registers are per lane: everything computed before the TMC above only
    // exists in lane 0 of warp 0. Re-materialize the argument-block base so
    // every active lane of every warp has it.
    li(kArgBaseReg, static_cast<int32_t>(arch::kArgBase));

    // Per-lane stack pointer: sp = kStackTop - (hwtid + 1) * kStackSize.
    csr_read(kScratch0, arch::kCsrCoreId);
    csr_read(kScratch1, arch::kCsrNumWarps);
    op_r(Op::kMul, kScratch0, kScratch0, kScratch1);
    csr_read(kScratch1, arch::kCsrWarpId);
    op_r(Op::kAdd, kScratch0, kScratch0, kScratch1);
    csr_read(kScratch1, arch::kCsrNumThreads);
    op_r(Op::kMul, kScratch0, kScratch0, kScratch1);
    csr_read(kScratch1, arch::kCsrThreadId);
    op_r(Op::kAdd, kScratch0, kScratch0, kScratch1);  // hwtid
    op_i(Op::kAddi, kScratch0, kScratch0, 1);
    li(kScratch1, static_cast<int32_t>(arch::kStackSizePerThread));
    op_r(Op::kMul, kScratch0, kScratch0, kScratch1);
    li(kSp, static_cast<int32_t>(arch::kStackTop));
    op_r(Op::kSub, kSp, kSp, kScratch0);
  }

  // Loads kernel parameters and launch geometry into long-lived vregs.
  void emit_warp_prologue() {
    set_source("<prologue: params + geometry>");
    // Materialize __local array base addresses here, under the full lane
    // mask: values cached in registers must never be first computed inside
    // divergent control flow, or inactive lanes would read garbage later.
    for (size_t slot = 0; slot < kernel_.locals.size(); ++slot) {
      local_base_vreg(static_cast<int>(slot));
    }
    for (size_t i = 0; i < kernel_.params.size(); ++i) {
      const int bits = fresh();
      op_i(Op::kLw, bits, kArgBaseReg, static_cast<int32_t>(abi::arg_offset(static_cast<uint32_t>(i))));
      if (!kernel_.params[i].is_buffer && kernel_.params[i].elem == Scalar::kF32) {
        const int f = fresh();
        op_r(Op::kFmvWX, f, bits, -1);
        param_vreg_[static_cast<int>(i)] = f;
      } else {
        param_vreg_[static_cast<int>(i)] = bits;
      }
    }
    // Geometry specials used anywhere in the kernel (uniform, loop-invariant).
    for (int d = 0; d < 3; ++d) {
      if (uses_special(SpecialReg::kGlobalSize, d) || needs_decomposition()) {
        global_size_[d] = load_geometry(abi::kGlobal0 + 4 * static_cast<uint32_t>(d));
      }
      if (uses_special(SpecialReg::kLocalSize, d) || uses_special(SpecialReg::kLocalId, d) ||
          uses_special(SpecialReg::kGroupId, d) || barrier_mode_) {
        local_size_[d] = load_geometry(abi::kLocal0 + 4 * static_cast<uint32_t>(d));
      }
      if (uses_special(SpecialReg::kNumGroups, d) || barrier_mode_) {
        num_groups_[d] = load_geometry(abi::kNumGroups0 + 4 * static_cast<uint32_t>(d));
      }
    }
    if (options_.opt_level >= 2) emit_uniform_hoists();
  }

  // ---- uniform-value scalarization (-O2) -------------------------------
  // Pure expressions built only from constants, kernel parameters, and the
  // launch-geometry specials are identical for every work item and every
  // dispatch iteration (analyze_divergence classifies exactly these leaves
  // as uniform). Evaluating them once here — under the full lane mask,
  // before the dispatch loop — removes them from the per-item hot path;
  // eval() serves later occurrences from the cache.

  // True when every leaf of `e` is warp-uniform and dispatch-invariant.
  bool uniform_invariant(const ExprPtr& e) const {
    switch (e->kind) {
      case ExprKind::kConstInt:
      case ExprKind::kConstFloat:
      case ExprKind::kParam:
        return true;
      case ExprKind::kSpecial:
        return e->special == SpecialReg::kGlobalSize || e->special == SpecialReg::kLocalSize ||
               e->special == SpecialReg::kNumGroups;
      case ExprKind::kBinary:
      case ExprKind::kUnary:
      case ExprKind::kSelect:
      case ExprKind::kCast:
      case ExprKind::kCall:
        for (const auto& arg : e->args) {
          if (!uniform_invariant(arg)) return false;
        }
        return true;
      default:
        return false;  // vars, loads, per-item specials
    }
  }

  // Maximal uniform-invariant subexpressions with at least one operation
  // node: record the whole subtree (with an occurrence count), do not
  // descend into it.
  void collect_uniform_candidates(const ExprPtr& e,
                                  std::vector<std::pair<ExprPtr, int>>& out) const {
    const bool op_node = e->kind == ExprKind::kBinary || e->kind == ExprKind::kUnary ||
                         e->kind == ExprKind::kSelect || e->kind == ExprKind::kCast ||
                         e->kind == ExprKind::kCall;
    if (op_node && uniform_invariant(e)) {
      for (auto& seen : out) {
        if (kir::expr_equal(seen.first, e)) {
          ++seen.second;
          return;
        }
      }
      out.emplace_back(e, 1);
      return;
    }
    for (const auto& arg : e->args) collect_uniform_candidates(arg, out);
  }

  void collect_uniform_candidates_block(const std::vector<kir::StmtPtr>& block,
                                        std::vector<std::pair<ExprPtr, int>>& out) const {
    for (const auto& s : block) {
      for (const ExprPtr* e : {&s->a, &s->b, &s->c}) {
        if (*e) collect_uniform_candidates(*e, out);
      }
      for (const auto& arg : s->print_args) collect_uniform_candidates(arg, out);
      collect_uniform_candidates_block(s->body, out);
      collect_uniform_candidates_block(s->else_body, out);
    }
  }

  // A hoist pins a register for the whole dispatch loop; that only pays for
  // itself when the expression is genuinely expensive (mul/div/rem or a
  // builtin call) or is recomputed at several sites.
  static bool worth_hoisting(const ExprPtr& e) {
    if (e->kind == ExprKind::kBinary &&
        (e->bin == kir::BinOp::kMul || e->bin == kir::BinOp::kDiv ||
         e->bin == kir::BinOp::kRem)) {
      return true;
    }
    if (e->kind == ExprKind::kCall) return true;
    for (const auto& arg : e->args) {
      if (worth_hoisting(arg)) return true;
    }
    return false;
  }

  void emit_uniform_hoists() {
    std::vector<std::pair<ExprPtr, int>> counted;
    collect_uniform_candidates_block(kernel_.body, counted);
    std::vector<ExprPtr> candidates;
    for (const auto& [e, count] : counted) {
      if (count >= 2 || worth_hoisting(e)) candidates.push_back(e);
    }
    constexpr size_t kMaxHoists = 12;
    if (candidates.size() > kMaxHoists) candidates.resize(kMaxHoists);
    if (candidates.empty()) return;
    set_source("<prologue: uniform hoist>");
    // The candidates' geometry specials were loaded above (uses_special saw
    // them in the body); expose them so eval() can reach them already.
    for (int d = 0; d < 3; ++d) {
      if (global_size_[d] >= 0) special_vreg_[key(SpecialReg::kGlobalSize, d)] = global_size_[d];
      if (local_size_[d] >= 0) special_vreg_[key(SpecialReg::kLocalSize, d)] = local_size_[d];
      if (num_groups_[d] >= 0) special_vreg_[key(SpecialReg::kNumGroups, d)] = num_groups_[d];
    }
    for (const auto& e : candidates) {
      const Value v = eval(e);
      uniform_cache_.emplace_back(e, v.vreg);
    }
  }

  int load_geometry(uint32_t offset) {
    const int v = fresh();
    op_i(Op::kLw, v, kArgBaseReg, static_cast<int32_t>(offset));
    return v;
  }

  int compute_hwtid() {
    const int v = fresh();
    const int t = fresh();
    csr_read(v, arch::kCsrCoreId);
    csr_read(t, arch::kCsrNumWarps);
    op_r(Op::kMul, v, v, t);
    csr_read(t, arch::kCsrWarpId);
    op_r(Op::kAdd, v, v, t);
    csr_read(t, arch::kCsrNumThreads);
    op_r(Op::kMul, v, v, t);
    csr_read(t, arch::kCsrThreadId);
    op_r(Op::kAdd, v, v, t);
    return v;
  }

  // Grid-stride dispatch: every hardware thread walks the flattened NDRange
  // with stride C*W*T (PoCL-style work-item loop, "flat collapsing").
  // The blocked variant gives each hardware thread one contiguous chunk
  // instead — same results, very different memory coalescing (paper §IV-A
  // challenge 4; see bench/ablation_distribution).
  void emit_grid_stride_dispatch() {
    set_source("<dispatch: grid-stride loop>");
    const int total = fresh();
    op_i(Op::kLw, total, kArgBaseReg, static_cast<int32_t>(abi::kTotalItems));
    const int nthreads = fresh();
    const int t = fresh();
    csr_read(nthreads, arch::kCsrNumCores);
    csr_read(t, arch::kCsrNumWarps);
    op_r(Op::kMul, nthreads, nthreads, t);
    csr_read(t, arch::kCsrNumThreads);
    op_r(Op::kMul, nthreads, nthreads, t);

    const int item = compute_hwtid();
    int stride = nthreads;  // grid-stride default
    int limit = total;
    if (options_.distribution == WorkDistribution::kBlocked) {
      // chunk = ceil(total / nthreads); item = hwtid * chunk;
      // limit = min(item + chunk, total); stride = 1.
      const int chunk = fresh();
      op_r(Op::kAdd, chunk, total, nthreads);
      op_i(Op::kAddi, chunk, chunk, -1);
      op_r(Op::kDivu, chunk, chunk, nthreads);
      op_r(Op::kMul, item, item, chunk);
      const int end = fresh();
      op_r(Op::kAdd, end, item, chunk);
      const int over = fresh();
      op_r(Op::kSlt, over, total, end);
      // end = min(end, total) via branchless blend.
      const int blended = blend_int(normalize_bool(over), total, end);
      limit = blended;
      const int one = fresh();
      li(one, 1);
      stride = one;
    }

    const int loop_top = fn_.make_label();
    const int loop_exit = fn_.make_label();
    fn_.label(loop_top);
    const int alive = fresh();
    op_r(Op::kSlt, alive, item, limit);
    pred(alive, loop_exit);

    bind_grid_stride_specials(item);
    lower_block(kernel_.body);

    op_r(Op::kAdd, item, item, stride);
    jump(loop_top);
    fn_.label(loop_exit);
    op_r(Op::kTmc, 0, 0, 0);
  }

  // Work-group dispatch: groups round-robin over cores; local items map to
  // the core's lanes; BAR synchronizes the group's warps.
  void emit_group_dispatch() {
    set_source("<dispatch: work-group loop>");
    nbw_vreg_ = fresh();
    op_i(Op::kLw, nbw_vreg_, kArgBaseReg, static_cast<int32_t>(abi::kNbw));
    const int total_groups = fresh();
    op_i(Op::kLw, total_groups, kArgBaseReg, static_cast<int32_t>(abi::kTotalGroups));
    const int ncores = fresh();
    csr_read(ncores, arch::kCsrNumCores);

    // lid_linear = warp_id * NT + lane (per lane, fixed for the kernel).
    const int lidlin = fresh();
    const int t = fresh();
    csr_read(lidlin, arch::kCsrWarpId);
    csr_read(t, arch::kCsrNumThreads);
    op_r(Op::kMul, lidlin, lidlin, t);
    csr_read(t, arch::kCsrThreadId);
    op_r(Op::kAdd, lidlin, lidlin, t);

    const int group = fresh();
    csr_read(group, arch::kCsrCoreId);

    const int loop_top = fn_.make_label();
    const int loop_exit = fn_.make_label();
    fn_.label(loop_top);
    branch(Op::kBge, group, total_groups, loop_exit);

    bind_group_specials(group, lidlin);
    lower_block(kernel_.body);

    // End-of-group barrier: the next group reuses __local memory.
    emit_barrier();
    op_r(Op::kAdd, group, group, ncores);
    jump(loop_top);
    fn_.label(loop_exit);
    op_r(Op::kTmc, 0, 0, 0);
  }

  void emit_barrier() {
    const int id = fresh();
    li(id, 0);
    op_r(Op::kBar, 0, id, nbw_vreg_);
  }

  // ---- special-value binding -------------------------------------------

  void scan_used_specials(const std::vector<kir::StmtPtr>& block) {
    for (const auto& s : block) {
      for (const ExprPtr* e : {&s->a, &s->b, &s->c}) {
        if (*e) scan_expr(*e);
      }
      for (const auto& arg : s->print_args) scan_expr(arg);
      scan_used_specials(s->body);
      scan_used_specials(s->else_body);
    }
  }
  void scan_expr(const ExprPtr& e) {
    if (e->kind == ExprKind::kSpecial) {
      used_specials_[key(e->special, e->index)] = true;
    }
    for (const auto& arg : e->args) scan_expr(arg);
  }
  static int key(SpecialReg reg, int dim) { return static_cast<int>(reg) * 4 + dim; }
  bool uses_special(SpecialReg reg, int dim) const {
    auto it = used_specials_.find(key(reg, dim));
    return it != used_specials_.end() && it->second;
  }
  bool needs_decomposition() const {
    // Any use beyond get_global_id(0)/get_global_size requires deriving the
    // multi-dimensional indices from the flattened item number.
    for (int d = 0; d < 3; ++d) {
      if (uses_special(SpecialReg::kLocalId, d) || uses_special(SpecialReg::kGroupId, d) ||
          uses_special(SpecialReg::kNumGroups, d)) {
        return true;
      }
    }
    return uses_special(SpecialReg::kGlobalId, 1) || uses_special(SpecialReg::kGlobalId, 2);
  }

  void bind_grid_stride_specials(int item) {
    special_vreg_.clear();
    int gid[3] = {-1, -1, -1};
    if (needs_decomposition()) {
      gid[0] = fresh();
      op_r(Op::kRemu, gid[0], item, global_size_[0]);
      const int r1 = fresh();
      op_r(Op::kDivu, r1, item, global_size_[0]);
      gid[1] = fresh();
      op_r(Op::kRemu, gid[1], r1, global_size_[1]);
      gid[2] = fresh();
      op_r(Op::kDivu, gid[2], r1, global_size_[1]);
    } else {
      gid[0] = item;
      gid[1] = gid[2] = -1;
    }
    for (int d = 0; d < 3; ++d) {
      if (uses_special(SpecialReg::kGlobalId, d) && gid[d] >= 0) {
        special_vreg_[key(SpecialReg::kGlobalId, d)] = gid[d];
      }
      if (uses_special(SpecialReg::kGlobalSize, d)) {
        special_vreg_[key(SpecialReg::kGlobalSize, d)] = global_size_[d];
      }
      if (uses_special(SpecialReg::kLocalSize, d)) {
        special_vreg_[key(SpecialReg::kLocalSize, d)] = local_size_[d];
      }
      if (uses_special(SpecialReg::kNumGroups, d)) {
        special_vreg_[key(SpecialReg::kNumGroups, d)] = num_groups_[d];
      }
      if (uses_special(SpecialReg::kLocalId, d)) {
        const int v = fresh();
        op_r(Op::kRemu, v, gid[d], local_size_[d]);
        special_vreg_[key(SpecialReg::kLocalId, d)] = v;
      }
      if (uses_special(SpecialReg::kGroupId, d)) {
        const int v = fresh();
        op_r(Op::kDivu, v, gid[d], local_size_[d]);
        special_vreg_[key(SpecialReg::kGroupId, d)] = v;
      }
    }
  }

  void bind_group_specials(int group, int lidlin) {
    special_vreg_.clear();
    // Group indices.
    int grp[3];
    grp[0] = fresh();
    op_r(Op::kRemu, grp[0], group, num_groups_[0]);
    const int r1 = fresh();
    op_r(Op::kDivu, r1, group, num_groups_[0]);
    grp[1] = fresh();
    op_r(Op::kRemu, grp[1], r1, num_groups_[1]);
    grp[2] = fresh();
    op_r(Op::kDivu, grp[2], r1, num_groups_[1]);
    // Local indices from the linear lane id.
    int lid[3];
    lid[0] = fresh();
    op_r(Op::kRemu, lid[0], lidlin, local_size_[0]);
    const int r2 = fresh();
    op_r(Op::kDivu, r2, lidlin, local_size_[0]);
    lid[1] = fresh();
    op_r(Op::kRemu, lid[1], r2, local_size_[1]);
    lid[2] = fresh();
    op_r(Op::kDivu, lid[2], r2, local_size_[1]);

    for (int d = 0; d < 3; ++d) {
      special_vreg_[key(SpecialReg::kLocalId, d)] = lid[d];
      special_vreg_[key(SpecialReg::kGroupId, d)] = grp[d];
      if (local_size_[d] >= 0) special_vreg_[key(SpecialReg::kLocalSize, d)] = local_size_[d];
      if (num_groups_[d] >= 0) special_vreg_[key(SpecialReg::kNumGroups, d)] = num_groups_[d];
      if (global_size_[d] >= 0) special_vreg_[key(SpecialReg::kGlobalSize, d)] = global_size_[d];
      if (uses_special(SpecialReg::kGlobalId, d)) {
        const int v = fresh();
        op_r(Op::kMul, v, grp[d], local_size_[d]);
        op_r(Op::kAdd, v, v, lid[d]);
        special_vreg_[key(SpecialReg::kGlobalId, d)] = v;
      }
    }
  }

  // ---- expression lowering ----------------------------------------------

  // Normalizes an i32 value to 0/1.
  int normalize_bool(int reg) {
    const int v = fresh();
    op_r(Op::kSltu, v, 0, reg);
    return v;
  }

  // Branchless lane-wise select on integer registers:
  //   result = b ^ ((a ^ b) & -(cond != 0))
  int blend_int(int cond01, int a, int b) {
    const int mask = fresh();
    op_r(Op::kSub, mask, 0, cond01);
    const int diff = fresh();
    op_r(Op::kXor, diff, a, b);
    op_r(Op::kAnd, diff, diff, mask);
    const int out = fresh();
    op_r(Op::kXor, out, b, diff);
    return out;
  }

  Value eval(const ExprPtr& e) {
    // Uniform-hoist cache (-O2): non-leaf expressions evaluated in the
    // prologue are not re-evaluated per item. Not owned — assignment targets
    // must still copy.
    if (!uniform_cache_.empty() && e->kind != ExprKind::kConstInt &&
        e->kind != ExprKind::kConstFloat && e->kind != ExprKind::kVar) {
      for (const auto& [expr, vreg] : uniform_cache_) {
        if (kir::expr_equal(expr, e)) return {vreg, false};
      }
    }
    switch (e->kind) {
      case ExprKind::kConstInt: {
        const int v = fresh();
        li(v, e->ival);
        return {v, true};
      }
      case ExprKind::kConstFloat: {
        const int bits = fresh();
        li(bits, static_cast<int32_t>(f2u(e->fval)));
        const int f = fresh();
        op_r(Op::kFmvWX, f, bits, -1);
        return {f, true};
      }
      case ExprKind::kVar: {
        auto it = var_vreg_.find(e->var);
        if (it == var_vreg_.end()) {
          fail("use of unbound variable '" + e->var + "'");
          return {fresh(), true};
        }
        return {it->second, false};
      }
      case ExprKind::kParam:
        return {param_vreg_.at(e->index), false};
      case ExprKind::kSpecial: {
        auto it = special_vreg_.find(key(e->special, e->index));
        if (it == special_vreg_.end()) {
          fail("work-item special not bound (dimension beyond launch?)");
          return {fresh(), true};
        }
        return {it->second, false};
      }
      case ExprKind::kBinary:
        return eval_binary(e);
      case ExprKind::kUnary:
        return eval_unary(e);
      case ExprKind::kSelect: {
        const Value c = eval(e->a());
        const Value a = eval(e->b());
        const Value b = eval(e->c());
        const int c01 = normalize_bool(c.vreg);
        if (e->type == Scalar::kF32) {
          const int ai = fresh(), bi = fresh();
          op_r(Op::kFmvXW, ai, a.vreg, -1);
          op_r(Op::kFmvXW, bi, b.vreg, -1);
          const int blended = blend_int(c01, ai, bi);
          const int out = fresh();
          op_r(Op::kFmvWX, out, blended, -1);
          return {out, true};
        }
        return {blend_int(c01, a.vreg, b.vreg), true};
      }
      case ExprKind::kCast: {
        const Value a = eval(e->a());
        const int out = fresh();
        if (e->type == Scalar::kF32) {
          op_r(Op::kFcvtSW, out, a.vreg, -1);
        } else {
          op_r(Op::kFcvtWS, out, a.vreg, -1);
        }
        return {out, true};
      }
      case ExprKind::kCall: {
        if (e->call != kir::Builtin::kSqrt) {
          fail("unexpanded builtin reached codegen");
          return {fresh(), true};
        }
        const Value a = eval(e->args[0]);
        const int out = fresh();
        op_r(Op::kFsqrtS, out, a.vreg, -1);
        return {out, true};
      }
      case ExprKind::kLoad: {
        const int addr = eval_address(e->index, e->is_local, e->a());
        const int out = fresh();
        op_i(e->type == Scalar::kF32 ? Op::kFlw : Op::kLw, out, addr, 0);
        return {out, true};
      }
    }
    fail("unreachable expression kind");
    return {fresh(), true};
  }

  // Computes &buffer[index] into a vreg.
  int eval_address(int buffer, bool is_local, const ExprPtr& index) {
    const Value idx = eval(index);
    const int scaled = fresh();
    op_i(Op::kSlli, scaled, idx.vreg, 2);
    const int base = is_local ? local_base_vreg(buffer) : param_vreg_.at(buffer);
    const int addr = fresh();
    op_r(Op::kAdd, addr, base, scaled);
    return addr;
  }

  int local_base_vreg(int slot) {
    auto it = local_base_.find(slot);
    if (it != local_base_.end()) return it->second;
    uint32_t offset = 0;
    for (int i = 0; i < slot; ++i) {
      offset += kernel_.locals[static_cast<size_t>(i)].size * 4;
    }
    const int v = fresh();
    li(v, static_cast<int32_t>(arch::kLocalBase + offset));
    local_base_[slot] = v;
    return v;
  }

  Value eval_binary(const ExprPtr& e) {
    const bool flt = e->a()->type == Scalar::kF32;
    // Logical short-circuit is not observable without side effects; both
    // operands are pure here (loads in conditions evaluate eagerly in SIMT).
    const Value a = eval(e->a());
    const Value b = eval(e->b());
    const int out = fresh();
    if (flt) {
      switch (e->bin) {
        case BinOp::kAdd: op_r(Op::kFaddS, out, a.vreg, b.vreg); return {out, true};
        case BinOp::kSub: op_r(Op::kFsubS, out, a.vreg, b.vreg); return {out, true};
        case BinOp::kMul: op_r(Op::kFmulS, out, a.vreg, b.vreg); return {out, true};
        case BinOp::kDiv: op_r(Op::kFdivS, out, a.vreg, b.vreg); return {out, true};
        case BinOp::kMin: op_r(Op::kFminS, out, a.vreg, b.vreg); return {out, true};
        case BinOp::kMax: op_r(Op::kFmaxS, out, a.vreg, b.vreg); return {out, true};
        case BinOp::kLt: op_r(Op::kFltS, out, a.vreg, b.vreg); return {out, true};
        case BinOp::kLe: op_r(Op::kFleS, out, a.vreg, b.vreg); return {out, true};
        case BinOp::kGt: op_r(Op::kFltS, out, b.vreg, a.vreg); return {out, true};
        case BinOp::kGe: op_r(Op::kFleS, out, b.vreg, a.vreg); return {out, true};
        case BinOp::kEq: op_r(Op::kFeqS, out, a.vreg, b.vreg); return {out, true};
        case BinOp::kNe: {
          op_r(Op::kFeqS, out, a.vreg, b.vreg);
          const int inv = fresh();
          op_i(Op::kXori, inv, out, 1);
          return {inv, true};
        }
        default:
          fail("invalid float binary op");
          return {out, true};
      }
    }
    switch (e->bin) {
      case BinOp::kAdd: op_r(Op::kAdd, out, a.vreg, b.vreg); return {out, true};
      case BinOp::kSub: op_r(Op::kSub, out, a.vreg, b.vreg); return {out, true};
      case BinOp::kMul: op_r(Op::kMul, out, a.vreg, b.vreg); return {out, true};
      case BinOp::kDiv: op_r(Op::kDiv, out, a.vreg, b.vreg); return {out, true};
      case BinOp::kRem: op_r(Op::kRem, out, a.vreg, b.vreg); return {out, true};
      case BinOp::kAnd: op_r(Op::kAnd, out, a.vreg, b.vreg); return {out, true};
      case BinOp::kOr: op_r(Op::kOr, out, a.vreg, b.vreg); return {out, true};
      case BinOp::kXor: op_r(Op::kXor, out, a.vreg, b.vreg); return {out, true};
      case BinOp::kShl: op_r(Op::kSll, out, a.vreg, b.vreg); return {out, true};
      case BinOp::kShr: op_r(Op::kSra, out, a.vreg, b.vreg); return {out, true};
      case BinOp::kLt: op_r(Op::kSlt, out, a.vreg, b.vreg); return {out, true};
      case BinOp::kGt: op_r(Op::kSlt, out, b.vreg, a.vreg); return {out, true};
      case BinOp::kLe: {
        op_r(Op::kSlt, out, b.vreg, a.vreg);
        const int inv = fresh();
        op_i(Op::kXori, inv, out, 1);
        return {inv, true};
      }
      case BinOp::kGe: {
        op_r(Op::kSlt, out, a.vreg, b.vreg);
        const int inv = fresh();
        op_i(Op::kXori, inv, out, 1);
        return {inv, true};
      }
      case BinOp::kEq: {
        op_r(Op::kSub, out, a.vreg, b.vreg);
        const int z = fresh();
        op_i(Op::kSltiu, z, out, 1);
        return {z, true};
      }
      case BinOp::kNe: {
        op_r(Op::kSub, out, a.vreg, b.vreg);
        const int z = fresh();
        op_r(Op::kSltu, z, 0, out);
        return {z, true};
      }
      case BinOp::kLAnd: {
        const int na = normalize_bool(a.vreg);
        const int nb = normalize_bool(b.vreg);
        op_r(Op::kAnd, out, na, nb);
        return {out, true};
      }
      case BinOp::kLOr: {
        op_r(Op::kOr, out, a.vreg, b.vreg);
        return {normalize_bool(out), true};
      }
      case BinOp::kMin: {
        const int c = fresh();
        op_r(Op::kSlt, c, a.vreg, b.vreg);
        return {blend_int(c, a.vreg, b.vreg), true};
      }
      case BinOp::kMax: {
        const int c = fresh();
        op_r(Op::kSlt, c, b.vreg, a.vreg);
        return {blend_int(c, a.vreg, b.vreg), true};
      }
    }
    fail("unreachable binary op");
    return {out, true};
  }

  Value eval_unary(const ExprPtr& e) {
    const Value a = eval(e->a());
    const int out = fresh();
    switch (e->un) {
      case UnOp::kNeg:
        if (e->type == Scalar::kF32) {
          op_r(Op::kFsgnjnS, out, a.vreg, a.vreg);
        } else {
          op_r(Op::kSub, out, 0, a.vreg);
        }
        return {out, true};
      case UnOp::kNot:
        op_i(Op::kSltiu, out, a.vreg, 1);
        return {out, true};
      case UnOp::kAbs:
        if (e->type == Scalar::kF32) {
          op_r(Op::kFsgnjxS, out, a.vreg, a.vreg);
          return {out, true};
        } else {
          const int m = fresh();
          op_i(Op::kSrai, m, a.vreg, 31);
          const int x = fresh();
          op_r(Op::kXor, x, a.vreg, m);
          op_r(Op::kSub, out, x, m);
          return {out, true};
        }
      case UnOp::kBitcastI2F:
        op_r(Op::kFmvWX, out, a.vreg, -1);
        return {out, true};
      case UnOp::kBitcastF2I:
        op_r(Op::kFmvXW, out, a.vreg, -1);
        return {out, true};
    }
    fail("unreachable unary op");
    return {out, true};
  }

  // ---- statement lowering -------------------------------------------------

  void lower_block(const std::vector<kir::StmtPtr>& block) {
    // Each statement becomes the provenance of the code it lowers to; the
    // cursor is restored on exit so a loop's trailing step/branch code is
    // attributed to the loop statement, not to its last body statement.
    const int saved = cur_src_;
    for (const auto& s : block) {
      set_source(stmt_label(*s));
      lower_stmt(*s);
      cur_src_ = saved;
    }
  }

  // Short one-line rendering of a statement for the source map. Shared with
  // the optimization-remark layer (kir::stmt_summary) so a remark's `site`
  // string-matches the SourceMap entry of the code the statement lowered to.
  std::string stmt_label(const Stmt& s) const { return kir::stmt_summary(kernel_, s); }

  void bind_var(const std::string& name, const Value& value, Scalar type) {
    if (value.owned) {
      var_vreg_[name] = value.vreg;
      var_type_[name] = type;
      return;
    }
    // Copy shared vregs (params/specials/other vars) so later mutation of
    // the variable cannot clobber them.
    const int copy = fresh();
    if (type == Scalar::kF32) {
      mv_float(copy, value.vreg);
    } else {
      mv_int(copy, value.vreg);
    }
    var_vreg_[name] = copy;
    var_type_[name] = type;
  }

  void lower_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kLet: {
        const Value v = eval(s.a);
        bind_var(s.var, v, s.a->type);
        return;
      }
      case StmtKind::kAssign: {
        const Value v = eval(s.a);
        auto it = var_vreg_.find(s.var);
        if (it == var_vreg_.end()) {
          fail("assignment to unbound variable '" + s.var + "'");
          return;
        }
        if (s.a->type == Scalar::kF32) {
          mv_float(it->second, v.vreg);
        } else {
          mv_int(it->second, v.vreg);
        }
        return;
      }
      case StmtKind::kStore: {
        const Value value = eval(s.b);
        const int addr = eval_address(s.buffer, s.is_local, s.a);
        op_s(s.b->type == Scalar::kF32 ? Op::kFsw : Op::kSw, addr, value.vreg, 0);
        return;
      }
      case StmtKind::kIf:
        lower_if(s);
        return;
      case StmtKind::kFor:
        lower_for(s);
        return;
      case StmtKind::kWhile:
        lower_while(s);
        return;
      case StmtKind::kBarrier:
        if (!barrier_mode_) {
          fail("barrier outside work-group dispatch");
          return;
        }
        emit_barrier();
        return;
      case StmtKind::kAtomic:
        lower_atomic(s);
        return;
      case StmtKind::kPrint:
        lower_print(s);
        return;
    }
  }

  void lower_if(const Stmt& s) {
    const Value cond = eval(s.a);
    const bool uniform = options_.uniform_branch_opt && !s.divergent;
    if (uniform) {
      const int else_label = fn_.make_label();
      const int merge = fn_.make_label();
      branch(Op::kBeq, cond.vreg, 0, else_label);
      lower_block(s.body);
      jump(merge);
      fn_.label(else_label);
      lower_block(s.else_body);
      fn_.label(merge);
      return;
    }
    // Divergent: SPLIT/JOIN protocol (see arch/isa.hpp).
    const int else_label = fn_.make_label();
    const int merge = fn_.make_label();
    split(cond.vreg, else_label);
    lower_block(s.body);
    join(merge);
    fn_.label(else_label);
    lower_block(s.else_body);
    join(merge);
    fn_.label(merge);
  }

  void lower_for(const Stmt& s) {
    const Value begin = eval(s.a);
    // The induction variable is mutable: bind a fresh copy.
    bind_var(s.var, Value{begin.vreg, begin.owned}, Scalar::kI32);
    const int iv = var_vreg_.at(s.var);

    const bool uniform = options_.uniform_branch_opt && !s.divergent;
    const int loop_top = fn_.make_label();
    const int loop_exit = fn_.make_label();
    if (uniform) {
      fn_.label(loop_top);
      const Value end = eval(s.b);
      branch(Op::kBge, iv, end.vreg, loop_exit);
      lower_block(s.body);
      const Value step = eval(s.c);
      op_r(Op::kAdd, iv, iv, step.vreg);
      jump(loop_top);
      fn_.label(loop_exit);
      return;
    }
    // Divergent trip counts: PRED loop with thread-mask save/restore.
    const int saved = fresh();
    csr_read(saved, arch::kCsrTmask);
    fn_.label(loop_top);
    const Value end = eval(s.b);
    const int alive = fresh();
    op_r(Op::kSlt, alive, iv, end.vreg);
    pred(alive, loop_exit);
    lower_block(s.body);
    const Value step = eval(s.c);
    op_r(Op::kAdd, iv, iv, step.vreg);
    jump(loop_top);
    fn_.label(loop_exit);
    op_r(Op::kTmc, 0, saved, 0);
  }

  void lower_while(const Stmt& s) {
    const bool uniform = options_.uniform_branch_opt && !s.divergent;
    const int loop_top = fn_.make_label();
    const int loop_exit = fn_.make_label();
    if (uniform) {
      fn_.label(loop_top);
      const Value cond = eval(s.a);
      branch(Op::kBeq, cond.vreg, 0, loop_exit);
      lower_block(s.body);
      jump(loop_top);
      fn_.label(loop_exit);
      return;
    }
    const int saved = fresh();
    csr_read(saved, arch::kCsrTmask);
    fn_.label(loop_top);
    const Value cond = eval(s.a);
    const int alive = normalize_bool(cond.vreg);
    pred(alive, loop_exit);
    lower_block(s.body);
    jump(loop_top);
    fn_.label(loop_exit);
    op_r(Op::kTmc, 0, saved, 0);
  }

  void lower_atomic(const Stmt& s) {
    Op op = Op::kAmoaddW;
    switch (s.atomic) {
      case kir::AtomicOp::kAdd: op = Op::kAmoaddW; break;
      case kir::AtomicOp::kMin: op = Op::kAmominW; break;
      case kir::AtomicOp::kMax: op = Op::kAmomaxW; break;
      case kir::AtomicOp::kAnd: op = Op::kAmoandW; break;
      case kir::AtomicOp::kOr: op = Op::kAmoorW; break;
      case kir::AtomicOp::kXor: op = Op::kAmoxorW; break;
      case kir::AtomicOp::kExchange: op = Op::kAmoswapW; break;
      case kir::AtomicOp::kCmpxchg:
        fail("atomic_cmpxchg is not supported by the soft-GPU backend");
        return;
    }
    const Value value = eval(s.b);
    const int addr = eval_address(s.buffer, s.is_local, s.a);
    const int rd = s.result_var.empty() ? 0 : fresh();
    op_r(op, rd, addr, value.vreg);
    if (!s.result_var.empty()) {
      var_vreg_[s.result_var] = rd;
      var_type_[s.result_var] = Scalar::kI32;
    }
  }

  void lower_print(const Stmt& s) {
    size_t arg_index = 0;
    const std::string& fmt = s.text;
    auto ecall = [&](uint32_t function) {
      li(kA7, static_cast<int32_t>(function));
      push(MInstr{.op = Op::kEcall});
    };
    for (size_t p = 0; p < fmt.size(); ++p) {
      if (fmt[p] == '%' && p + 1 < fmt.size() && fmt[p + 1] != '%') {
        const char spec = fmt[++p];
        if (arg_index >= s.print_args.size()) continue;
        const Value v = eval(s.print_args[arg_index++]);
        if (spec == 'f') {
          op_r(Op::kFmvXW, kA0, v.vreg, -1);
          ecall(arch::kEcallPrintFlt);
        } else {
          mv_int(kA0, v.vreg);
          ecall(arch::kEcallPrintInt);
        }
        continue;
      }
      char ch = fmt[p];
      if (ch == '%' && p + 1 < fmt.size()) ch = fmt[++p];  // literal %%
      li(kA0, ch);
      ecall(arch::kEcallPutChar);
    }
  }

 public:
  const Status& error() const { return error_; }

 private:
  const kir::Kernel& kernel_;
  Options options_;
  bool barrier_mode_;
  MFunction fn_;
  Status error_;

  int warp_main_ = -1;
  int nbw_vreg_ = -1;
  int cur_src_ = -1;  // provenance cursor for push()
  std::unordered_map<std::string, int> source_ids_;

  std::unordered_map<int, int> param_vreg_;
  std::unordered_map<int, int> local_base_;
  std::unordered_map<std::string, int> var_vreg_;
  std::unordered_map<std::string, Scalar> var_type_;
  std::unordered_map<int, int> special_vreg_;
  std::unordered_map<int, bool> used_specials_;
  // (expr, vreg) pairs hoisted to the prologue at -O2; consulted by eval().
  std::vector<std::pair<ExprPtr, int>> uniform_cache_;
  int global_size_[3] = {-1, -1, -1};
  int local_size_[3] = {-1, -1, -1};
  int num_groups_[3] = {-1, -1, -1};
};

// ---------------------------------------------------------------------------
// Emission: machine IR + allocation -> encoded program
// ---------------------------------------------------------------------------

Result<vasm::Program> emit_program(const MFunction& fn, const Allocation& alloc,
                                   CompiledKernel& meta) {
  vasm::AsmBuilder builder;
  std::vector<vasm::AsmBuilder::Label> labels;
  labels.reserve(static_cast<size_t>(fn.num_labels));
  for (int i = 0; i < fn.num_labels; ++i) labels.push_back(builder.make_label());

  if (alloc.num_spill_slots * 4 >= 2048) {
    return Result<vasm::Program>(ErrorKind::kCompileError,
                                 "spill frame exceeds 2 KiB (too much register pressure)");
  }

  // Word-level line table: every word emitted for MInstr m (including li/la
  // expansions, far-branch pairs, and spill fills/spills around it) inherits
  // m's provenance. AsmBuilder slots are exactly one word each, so
  // instruction_count() doubles as the word index.
  std::vector<int32_t> word_src;
  const auto map_words_to = [&](int32_t src) {
    word_src.resize(builder.instruction_count(), src);
  };

  for (size_t idx = 0; idx < fn.code.size(); ++idx) {
    const MInstr& m = fn.code[idx];
    if (m.is_label()) {
      builder.bind(labels[static_cast<size_t>(m.bind_label)]);
      continue;
    }
    // Resolve registers; spilled sources load into scratch registers first.
    const int pos = static_cast<int>(idx);
    int next_int_scratch = kScratch0;
    int next_float_scratch = kScratch0;  // f29..f31
    struct Spill {
      int phys;
      int slot;
      bool flt;
    };
    std::optional<Spill> rd_spill;
    auto spill_access = [&](int slot, bool flt, bool is_def) -> int {
      const int scratch = flt ? next_float_scratch++ : next_int_scratch++;
      assert(scratch <= kScratch2 && "ran out of spill scratch registers");
      if (is_def) {
        rd_spill = Spill{scratch, slot, flt};
      } else {
        builder.emit_i(flt ? Op::kFlw : Op::kLw, static_cast<unsigned>(scratch), kSp, slot * 4);
      }
      return scratch;
    };
    auto resolve = [&](int reg, bool flt, bool is_def) -> int {
      if (reg < 0) return 0;
      if (!is_virtual(reg)) return phys_index(reg);
      auto assigned = alloc.assignment.find(reg);
      if (assigned != alloc.assignment.end()) return phys_index(assigned->second);
      if (auto split = alloc.split.find(reg); split != alloc.split.end()) {
        const SplitAssign& s = split->second;
        if (pos < s.split_pos) {
          // Register phase. The (single) def also stores to the slot so the
          // post-split accesses see the value.
          const int phys = phys_index(s.phys);
          if (is_def) rd_spill = Spill{phys, s.slot, flt};
          return phys;
        }
        return spill_access(s.slot, flt, is_def);  // slot phase
      }
      return spill_access(alloc.spill_slot.at(reg), flt, is_def);
    };

    if (m.is_li) {
      const int rd = resolve(m.rd, false, true);
      builder.li(static_cast<unsigned>(rd), m.imm);
      if (rd_spill) builder.emit_s(Op::kSw, kSp, static_cast<unsigned>(rd_spill->phys), rd_spill->slot * 4);
      map_words_to(m.src);
      continue;
    }
    if (m.is_la) {
      const int rd = resolve(m.rd, false, true);
      builder.la(static_cast<unsigned>(rd), labels[static_cast<size_t>(m.target)]);
      if (rd_spill) builder.emit_s(Op::kSw, kSp, static_cast<unsigned>(rd_spill->phys), rd_spill->slot * 4);
      map_words_to(m.src);
      continue;
    }

    const Op op = m.op;
    const int rs1 = resolve(m.rs1, slot_rs1_float(op), false);
    const int rs2 = resolve(m.rs2, slot_rs2_float(op), false);
    const int rs3 = resolve(m.rs3, slot_rs3_float(op), false);
    const int rd = resolve(m.rd, slot_rd_float(op), true);

    const auto& info = arch::op_info(op);
    if (info.fu == arch::FuClass::kSimt) ++meta.simt_instructions;
    if (info.fu == arch::FuClass::kLsu) ++meta.mem_instructions;

    if (m.target >= 0) {
      const auto label = labels[static_cast<size_t>(m.target)];
      switch (op) {
        case Op::kJal:
          builder.emit_jal(static_cast<unsigned>(rd), label);
          break;
        case Op::kSplit:
          builder.emit_split(static_cast<unsigned>(rs1), label);
          break;
        case Op::kPred:
          builder.emit_pred(static_cast<unsigned>(rs1), label);
          break;
        case Op::kJoin:
          builder.emit_join(label);
          break;
        default:  // conditional branches
          builder.emit_branch(op, static_cast<unsigned>(rs1), static_cast<unsigned>(rs2), label);
          break;
      }
    } else {
      arch::Instr instr;
      instr.op = op;
      instr.rd = static_cast<uint8_t>(rd);
      instr.rs1 = static_cast<uint8_t>(rs1);
      instr.rs2 = static_cast<uint8_t>(rs2);
      instr.rs3 = static_cast<uint8_t>(rs3);
      instr.imm = m.imm;
      builder.emit(instr);
    }
    if (rd_spill) {
      builder.emit_s(rd_spill->flt ? Op::kFsw : Op::kSw, kSp,
                     static_cast<unsigned>(rd_spill->phys), rd_spill->slot * 4);
    }
    map_words_to(m.src);
  }
  builder.mark_symbol(".end");
  // Fetch runs ahead of issue; pad so the prefetcher beyond the final
  // instruction still sees valid (warp-retiring) encodings.
  for (int i = 0; i < 4; ++i) builder.tmc(0);
  meta.source_map.sources = fn.sources;
  meta.source_map.sources.push_back("<epilogue: fetch padding>");
  map_words_to(static_cast<int32_t>(meta.source_map.sources.size()) - 1);
  meta.source_map.word_source = std::move(word_src);
  return builder.finalize(arch::kCodeBase);
}

}  // namespace

Result<CompiledKernel> compile_kernel(const kir::Kernel& kernel, const Options& options) {
  if (auto st = kir::verify(kernel); !st.is_ok()) return st;

  const int opt = std::clamp(options.opt_level, 0, 2);
  const bool collect = options.collect_remarks;

  struct Variant {
    MFunction fn;
    Allocation alloc;
    bool barrier_mode = false;
    // Static count of stack operations the allocation will emit (stores at
    // spilled/split defs, reloads at slot-served uses). Per-lane stacks
    // never coalesce, so this dominates the runtime cost of a variant.
    int stack_refs = 0;
    CodegenReport report;  // populated only when options.collect_remarks
  };

  // Machine-IR side of the telemetry snapshots (the KIR side is
  // kir::kernel_size). Label markers are bookkeeping, not instructions.
  const auto snap_m = [](const MFunction& fn) {
    IrSnapshot s;
    int n = 0;
    for (const auto& m : fn.code) n += m.is_label() ? 0 : 1;
    s.minstrs = n;
    s.vregs = fn.next_vreg - kFirstVirtual;
    return s;
  };

  // One full pipeline configuration. `kir_level` picks the KIR passes,
  // `lower_level` gates uniform hoisting in the lowerer, `peep_level` the
  // machine-IR cleanups. Clones so pass rewrites never leak into the input;
  // level 0 is the straight-lowering oracle (builtin expansion only).
  auto build = [&](int kir_level, int lower_level, int peep_level) -> Result<Variant> {
    Variant v;
    RemarkSink local_sink;
    RemarkSink* sink = collect ? &local_sink : nullptr;
    v.report.collected = collect;

    kir::Kernel lowered = kir::clone_kernel(kernel);

    // Stage wrappers: snapshot IR size, count the remarks the body emits,
    // and time it. With collection off only the body runs — the disabled
    // pipeline is instruction-for-instruction the pre-observability one.
    const auto kir_stage = [&](const char* name, auto&& body) {
      if (!collect) {
        body();
        return;
      }
      PassTelemetry t;
      t.pass = name;
      t.before.kir_nodes = kir::kernel_size(lowered);
      const size_t r0 = local_sink.remarks.size();
      const auto t0 = std::chrono::steady_clock::now();
      body();
      t.wall_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();
      t.after.kir_nodes = kir::kernel_size(lowered);
      t.remarks = static_cast<int>(local_sink.remarks.size() - r0);
      v.report.passes.push_back(std::move(t));
    };
    const auto m_stage = [&](const char* name, auto&& body) {
      if (!collect) {
        body();
        return;
      }
      PassTelemetry t;
      t.pass = name;
      t.before = snap_m(v.fn);
      const size_t r0 = local_sink.remarks.size();
      const auto t0 = std::chrono::steady_clock::now();
      body();
      t.wall_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();
      t.after = snap_m(v.fn);
      t.remarks = static_cast<int>(local_sink.remarks.size() - r0);
      v.report.passes.push_back(std::move(t));
    };

    kir_stage("expand-builtins", [&] { kir::expand_builtins(lowered); });
    if (kir_level >= 1) kir_stage("const-fold", [&] { kir::const_fold(lowered); });
    if (kir_level >= 2) {
      if (!options.ablate.kir_licm) kir_stage("licm", [&] { kir::licm(lowered, sink); });
      if (!options.ablate.kir_strength_reduce) {
        kir_stage("strength-reduce", [&] { kir::strength_reduce(lowered, sink); });
      }
      // fold what LICM/strength reduction exposed
      kir_stage("const-fold-2", [&] { kir::const_fold(lowered); });
      if (!options.ablate.kir_dce) {
        kir_stage("dce", [&] { kir::dead_code_elim(lowered, sink); });
      }
    }
    v.barrier_mode = options.force_group_dispatch || lowered.has_barrier();
    kir::analyze_divergence(lowered, /*group_id_uniform=*/v.barrier_mode);

    Options effective = options;
    effective.opt_level = lower_level;
    Lowering lowering(lowered, effective, v.barrier_mode);
    // Lowering bridges the two IR domains: `before` is KIR nodes, `after`
    // machine instructions — handled by hand because the body can fail.
    PassTelemetry lower_t;
    std::chrono::steady_clock::time_point lower_t0;
    if (collect) {
      lower_t.pass = "lower";
      lower_t.before.kir_nodes = kir::kernel_size(lowered);
      lower_t0 = std::chrono::steady_clock::now();
    }
    auto fn = lowering.run();
    if (!fn.is_ok()) return fn.status();
    v.fn = fn.take();
    if (collect) {
      lower_t.wall_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - lower_t0)
              .count();
      lower_t.after = snap_m(v.fn);
      v.report.passes.push_back(std::move(lower_t));
    }

    if (peep_level >= 1 && !options.ablate.peephole) {
      m_stage("peephole", [&] {
        const PeepholeStats ps = peephole(v.fn, peep_level, sink);
        if (sink != nullptr) {
          // Site-level notes cover the high-signal rewrites (LVN, branch
          // fusion/collapse); the per-instruction cleanups are reported as
          // whole-function aggregates to keep the stream readable.
          if (ps.folded > 0) {
            sink->add("peephole", "applied", "peep.fold", "<function>",
                      "constants folded into immediates and I-type forms", ps.folded);
          }
          if (ps.propagated > 0) {
            sink->add("peephole", "applied", "peep.copy-prop", "<function>",
                      "register copies propagated", ps.propagated);
          }
          if (ps.removed > 0) {
            sink->add("peephole", "applied", "peep.dce", "<function>",
                      "dead machine instructions deleted", ps.removed);
          }
        }
      });
    }
    m_stage("regalloc", [&] { v.alloc = allocate_registers(v.fn, {}, sink); });

    for (size_t i = 0; i < v.fn.code.size(); ++i) {
      const MInstr& m = v.fn.code[i];
      if (m.is_label()) continue;
      const int pos = static_cast<int>(i);
      auto count = [&](int r, bool is_def) {
        if (r < kFirstVirtual) return;
        if (v.alloc.spill_slot.count(r)) {
          ++v.stack_refs;
          return;
        }
        auto it = v.alloc.split.find(r);
        if (it == v.alloc.split.end()) return;
        if (is_def || pos >= it->second.split_pos) ++v.stack_refs;
      };
      count(m.rd, /*is_def=*/true);
      count(m.rs1, false);
      count(m.rs2, false);
      count(m.rs3, false);
    }
    if (collect) {
      // The regalloc stage owns the pressure figures; the stack-traffic
      // census above is part of its output (the ladder keys on it).
      PassTelemetry& ra = v.report.passes.back();
      ra.after.max_pressure = v.alloc.max_pressure;
      ra.after.stack_refs = v.stack_refs;
      v.report.remarks = std::move(local_sink.remarks);
    }
    return v;
  };

  std::vector<Remark> ladder_steps;
  auto chosen = build(opt, opt, opt);
  if (!chosen.is_ok()) return chosen.status();
  if (opt >= 2 && chosen->stack_refs > 0 && !options.ablate.pressure_ladder) {
    // Pressure feedback: LICM, value numbering, and uniform hoisting all
    // lengthen live ranges, and on pressure-bound kernels the resulting
    // spill traffic costs far more than the saved arithmetic (per-lane
    // stack accesses never coalesce). When the aggressive pipeline touches
    // the stack, walk a ladder of progressively less hoist-happy
    // configurations and keep the first one that spills strictly less:
    // (1,1,2) drops LICM + uniform hoisting, (1,1,1) additionally drops
    // the cross-block machine cleanups whose compaction feeds the value
    // numberer longer windows.
    const int ladder[][3] = {{1, 1, 2}, {1, 1, 1}};
    for (const auto& cfg : ladder) {
      if (chosen->stack_refs == 0) break;
      const int before_refs = chosen->stack_refs;
      auto lower = build(cfg[0], cfg[1], cfg[2]);
      if (!lower.is_ok()) return lower.status();
      const bool adopted = lower->stack_refs < chosen->stack_refs;
      const int after_refs = lower->stack_refs;
      if (adopted) chosen = std::move(lower);
      if (collect) {
        char detail[96];
        std::snprintf(detail, sizeof(detail),
                      "re-lowered at kir=%d lower=%d peephole=%d: stack_refs %d -> %d%s",
                      cfg[0], cfg[1], cfg[2], before_refs, after_refs,
                      adopted ? "" : "; kept previous variant");
        Remark r;
        r.pass = "pressure-ladder";
        r.action = adopted ? "applied" : "missed";
        r.name = "ladder.relower";
        r.site = "<pipeline>";
        r.detail = detail;
        r.value = before_refs - after_refs;
        ladder_steps.push_back(std::move(r));
      }
    }
  }

  Variant v = chosen.take();
  CompiledKernel result;
  result.barrier_dispatch = v.barrier_mode;
  result.spill_slots = v.alloc.num_spill_slots;
  result.opt_level = opt;
  result.report = std::move(v.report);
  for (auto& r : ladder_steps) result.report.remarks.push_back(std::move(r));
  // Final stage bridges back out of the MInstr domain: `after.minstrs` is
  // the encoded word count (li/la expansions, spill traffic, far branches,
  // fetch padding), which must equal CompiledKernel::instruction_count.
  PassTelemetry emit_t;
  std::chrono::steady_clock::time_point emit_t0;
  if (collect) {
    emit_t.pass = "emit";
    emit_t.before = snap_m(v.fn);
    emit_t.before.max_pressure = v.alloc.max_pressure;
    emit_t.before.stack_refs = v.stack_refs;
    emit_t0 = std::chrono::steady_clock::now();
  }
  auto program = emit_program(v.fn, v.alloc, result);
  if (!program.is_ok()) return program.status();
  result.program = program.take();
  result.instruction_count = result.program.words.size();
  if (collect) {
    emit_t.wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - emit_t0)
            .count();
    emit_t.after.minstrs = static_cast<int>(result.program.words.size());
    result.report.passes.push_back(std::move(emit_t));
  }
  return result;
}

}  // namespace fgpu::codegen
