// Structured compiler observability: optimization remarks and per-pass
// telemetry (the fgpu.codegen.v1 data model — see OBSERVABILITY.md).
//
// A RemarkSink is threaded through the whole compile pipeline when
// Options::collect_remarks is set. Every pass that transforms the IR
// reports what it did (action "applied"), what it recognized but could not
// do ("missed"), and what it dropped on purpose ("blocked"), each with a
// machine-readable rule name and the KIR provenance of the site — the same
// strings the PC source map carries, so remarks join against measured
// per-PC cycles.
//
// Off by default and zero-cost when off: every instrumentation site is
// guarded by a null check on the sink pointer, so the disabled pipeline
// builds the same strings (none) and takes the same branches it did before
// this layer existed. Byte-gated documents and cycle counts are identical
// with the layer compiled in but disabled.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fgpu::codegen {

// One structured remark. Ordering is the pipeline's deterministic emission
// order (passes run single-threaded per kernel), so a remark stream is
// byte-stable across --jobs and replays byte-identically from the
// KernelCache.
struct Remark {
  std::string pass;    // producing pass ("licm", "peephole", "regalloc", ...)
  std::string action;  // "applied" | "missed" | "blocked"
  // Machine-readable rule id, dot-scoped by pass ("licm.hoist",
  // "sr.div-not-nonneg", "ra.spill", "ladder.relower").
  std::string name;
  // KIR provenance: the source-map rendering of the statement the remark
  // attaches to (exactly the strings vasm::SourceMap carries, which is what
  // makes the cycle join work), or a "<...>" scaffolding label for
  // pipeline-level remarks.
  std::string site;
  std::string detail;  // human-readable specifics ("hoisted size-5 expr")
  int64_t value = 0;   // rule-specific magnitude (expr size, spill cost, ...)
};

// IR-size/pressure snapshot at a pipeline stage boundary. -1 = the metric
// does not exist at that stage (KIR stages have no MInstrs and vice versa);
// the exporter skips negative fields.
struct IrSnapshot {
  int kir_nodes = -1;     // statements + expression nodes
  int minstrs = -1;       // machine instructions (post-lowering stages)
  int vregs = -1;         // virtual registers in the MFunction
  int max_pressure = -1;  // peak simultaneously-live intervals (regalloc)
  int stack_refs = -1;    // spill-slot touches in the emitted code
};

// One pipeline stage: IR size before/after and how many remarks the stage
// emitted. Deltas telescope: stage i's `before` equals stage i-1's `after`
// within the same metric domain (tests/test_remarks.cpp asserts this).
struct PassTelemetry {
  std::string pass;
  IrSnapshot before;
  IrSnapshot after;
  int remarks = 0;
  // Host wall time inside the pass. In-memory only — NEVER serialized into
  // fgpu.codegen.v1 (the document is byte-gated across machines, and a
  // KernelCache replay would carry the original compile's times).
  double wall_ms = 0.0;
};

// The full observability record of one compile_kernel call. Stored inside
// CompiledKernel, so it rides the process-wide KernelCache and warm pooled
// runs replay the identical stream.
struct CodegenReport {
  bool collected = false;  // Options::collect_remarks was set
  std::vector<PassTelemetry> passes;
  std::vector<Remark> remarks;
};

// Collector handed (as a nullable pointer) to every pass. Null = remarks
// off; instrumentation sites must check before building any strings.
class RemarkSink {
 public:
  void add(std::string pass, std::string action, std::string name, std::string site,
           std::string detail, int64_t value = 0) {
    remarks.push_back(Remark{std::move(pass), std::move(action), std::move(name),
                             std::move(site), std::move(detail), value});
  }

  std::vector<Remark> remarks;
};

}  // namespace fgpu::codegen
