// The soft-GPU kernel compiler: KIR -> Vortex ISA binary.
//
// This is the stand-in for the extended PoCL + LLVM pipeline of the paper's
// Fig. 5. It performs the same jobs that pipeline performs for Vortex:
//   * work scheduling that reflects the hardware (a grid-stride dispatch
//     loop for ordinary kernels; work-group-per-core dispatch with BAR
//     synchronization for kernels containing barriers),
//   * divergence lowering onto the SPLIT/JOIN/PRED/TMC extension,
//     using plain scalar branches where divergence analysis proves a
//     condition warp-uniform (the compiler optimization opportunity the
//     paper highlights in §IV-A),
//   * register allocation with spilling to the per-thread stack, and
//   * lowering of atomics and OpenCL printf onto AMO instructions and the
//     host ECALL interface respectively (§IV-A challenge 2).
#pragma once

#include "codegen/remarks.hpp"
#include "common/status.hpp"
#include "kir/kir.hpp"
#include "vasm/program.hpp"

namespace fgpu::codegen {

// How work items map to hardware threads for kernels without barriers —
// the paper's §IV-A challenge 4 ("identifying the optimal work item
// distribution on Vortex hardware ... mapping influences memory access
// patterns and pipeline unit stalls").
enum class WorkDistribution : uint8_t {
  // Lane l handles items l, l+N, l+2N... — adjacent lanes touch adjacent
  // addresses (coalesced), the PoCL-style default.
  kGridStride,
  // Each hardware thread handles one contiguous chunk — adjacent lanes sit
  // a chunk apart (uncoalesced), the CPU-friendly mapping.
  kBlocked,
};

struct Options {
  // Use scalar branches for warp-uniform conditions instead of SPLIT/JOIN.
  // Off = every branch pays the divergence-control cost (ablation knob).
  bool uniform_branch_opt = true;
  // Force the work-group (barrier-style) dispatch even without barriers.
  bool force_group_dispatch = false;
  WorkDistribution distribution = WorkDistribution::kGridStride;
  // Optimization level (the -O knob, clamped to 0..2):
  //   0 — straight lowering: builtin expansion only (the correctness oracle).
  //   1 — KIR constant folding + basic MInstr peephole (immediate folding,
  //       copy propagation, dead-code elimination).
  //   2 — adds KIR DCE/LICM/strength reduction, dispatch-loop uniform-value
  //       hoisting, and the full peephole (local value numbering,
  //       compare-branch fusion, far-branch collapse).
  // Register allocation quality (spill costs, slot reuse, live-range
  // splitting) is not an -O semantic and applies at every level.
  int opt_level = 2;
  // Per-pass ablation switches: force one pipeline stage off regardless of
  // opt_level. Measurement aids for bench/ablation_optpasses and
  // EXPERIMENTS.md — not part of the -O contract.
  struct PassAblation {
    bool kir_licm = false;
    bool kir_strength_reduce = false;
    bool kir_dce = false;
    bool peephole = false;         // the whole machine-IR peephole
    bool pressure_ladder = false;  // the spill-feedback re-lowering
  };
  PassAblation ablate;
  // Collect structured optimization remarks + per-pass telemetry into
  // CompiledKernel::report (the fgpu.codegen.v1 layer, remarks.hpp). Off by
  // default; the pipeline is bit-identical either way — the flag only adds
  // observation. Part of the KernelCache key, so cached entries replay the
  // stream they were compiled with.
  bool collect_remarks = false;
};

struct CompiledKernel {
  vasm::Program program;
  // PC -> KIR provenance line table (profiler source attribution); entry i
  // describes program.words[i].
  vasm::SourceMap source_map;
  bool barrier_dispatch = false;  // work-group-per-core mapping used
  int spill_slots = 0;
  int opt_level = 0;  // effective (clamped) optimization level used
  size_t instruction_count = 0;
  // Static instruction mix (for the Fig. 4/5 flow traces and area hints).
  size_t simt_instructions = 0;  // split/join/pred/tmc/wspawn/bar
  size_t mem_instructions = 0;
  // Optimization remarks + per-pass telemetry of the winning pipeline
  // variant (report.collected only when Options::collect_remarks was set).
  CodegenReport report;
};

// Compiles one kernel. The input is transformed (builtin expansion,
// constant folding, divergence analysis) on a copy; the caller's kernel is
// not modified.
Result<CompiledKernel> compile_kernel(const kir::Kernel& kernel, const Options& options = {});

}  // namespace fgpu::codegen
