// Peephole optimizer over the virtual-register machine IR, run between KIR
// lowering and register allocation. Rules at -O1: constant folding into
// load-immediates, R-type -> I-type immediate rewrites, copy propagation,
// and dead-code elimination. -O2 adds local value numbering over
// straight-line runs, compare-branch fusion (folding the sub/slt/sltiu
// boolean idioms the expression lowerer emits into direct conditional
// branches), far-branch collapse (undoing the inverted-branch-over-JAL
// expansion when the target is provably within B-type reach), and
// jump/branch-to-next elimination.
//
// Every surviving MInstr keeps its `src` provenance, and the line table is
// built from the final instruction list, so deletions can never leave
// dangling PC entries in the vasm::SourceMap.
#pragma once

#include "codegen/minstr.hpp"
#include "codegen/remarks.hpp"

namespace fgpu::codegen {

struct PeepholeStats {
  int folded = 0;      // constants folded + immediate-form rewrites
  int propagated = 0;  // register copies propagated
  int numbered = 0;    // duplicate computations removed by value numbering
  int fused = 0;       // compare-branch fusions + branch collapses/removals
  int removed = 0;     // dead instructions deleted

  int total() const { return folded + propagated + numbered + fused + removed; }
};

// Optimizes `fn` in place. `opt_level` <= 0 is a no-op; 1 enables the basic
// rules; >= 2 the full set. Deterministic: the same input yields the same
// output, independent of host state. A non-null `sink` receives site-level
// remarks for the high-signal rewrites (LVN hits, branch fusions,
// far-branch collapses); null is the exact pre-observability pipeline.
PeepholeStats peephole(MFunction& fn, int opt_level, RemarkSink* sink = nullptr);

}  // namespace fgpu::codegen
