// Virtual-register machine IR: the output of KIR lowering and the input to
// register allocation. Mirrors the MC layer of the Vortex LLVM backend.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/isa.hpp"

namespace fgpu::codegen {

// Register operand encoding:
//   0..31    physical integer registers x0..x31
//   32..63   physical float registers f0..f31
//   >= 64    virtual registers (even = created as int, parity irrelevant;
//            float-ness of each operand slot is derived from the opcode)
constexpr int kPhysFloatBase = 32;
constexpr int kFirstVirtual = 64;

inline bool is_virtual(int reg) { return reg >= kFirstVirtual; }
inline bool is_phys_float(int reg) { return reg >= kPhysFloatBase && reg < kFirstVirtual; }
inline int phys_index(int reg) { return reg < kPhysFloatBase ? reg : reg - kPhysFloatBase; }

struct MInstr {
  arch::Op op = arch::Op::kInvalid;
  int rd = -1;
  int rs1 = -1;
  int rs2 = -1;
  int rs3 = -1;
  int32_t imm = 0;

  int target = -1;      // label id for control flow (branch/jal/split/pred/join)
  int bind_label = -1;  // >= 0: label marker pseudo-instruction (no code)
  int src = -1;         // index into MFunction::sources (provenance), or -1

  bool is_li = false;  // load-immediate pseudo (expands to lui+addi)
  bool is_la = false;  // load-label-address pseudo (expands to auipc+addi)

  bool is_label() const { return bind_label >= 0; }
};

struct MFunction {
  std::vector<MInstr> code;
  int num_labels = 0;
  int next_vreg = kFirstVirtual;
  // Provenance strings referenced by MInstr::src: KIR statement renderings
  // and codegen-phase tags, emitted into the binary's vasm::SourceMap.
  std::vector<std::string> sources;

  int make_label() { return num_labels++; }
  int new_vreg() { return next_vreg++; }

  void label(int l) {
    MInstr m;
    m.bind_label = l;
    code.push_back(m);
  }
};

// Which operand slots of `op` are float registers.
inline bool slot_rd_float(arch::Op op) { return arch::writes_freg(op); }
inline bool slot_rs1_float(arch::Op op) { return arch::reads_freg_rs1(op); }
inline bool slot_rs2_float(arch::Op op) { return arch::reads_freg_rs2(op); }
inline bool slot_rs3_float(arch::Op op) { return arch::reads_freg_rs3(op); }

}  // namespace fgpu::codegen
