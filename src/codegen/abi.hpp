// Kernel-launch ABI between the runtime and generated soft-GPU binaries.
//
// The runtime writes this block at arch::kArgBase before starting the
// cluster (the equivalent of Vortex's KERNEL_ARG upload); the dispatch
// prologue emitted by codegen reads it. All fields are 32-bit words.
#pragma once

#include <cstdint>

namespace fgpu::codegen::abi {

constexpr uint32_t kDims = 0;          // NDRange dimensionality
constexpr uint32_t kGlobal0 = 4;       // global sizes [0..2]
constexpr uint32_t kLocal0 = 16;       // local sizes [0..2]
constexpr uint32_t kNumGroups0 = 28;   // groups per dim [0..2]
constexpr uint32_t kTotalItems = 40;   // product of global sizes
constexpr uint32_t kLocalTotal = 44;   // product of local sizes
constexpr uint32_t kNbw = 48;          // participating warps per core (barrier kernels)
constexpr uint32_t kTotalGroups = 52;  // product of group counts
constexpr uint32_t kArgs = 56;         // kernel arguments, 4 bytes each
                                       // (scalar bits or buffer device address)

constexpr uint32_t arg_offset(uint32_t param_index) { return kArgs + 4 * param_index; }

}  // namespace fgpu::codegen::abi
