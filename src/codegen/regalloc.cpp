#include "codegen/regalloc.hpp"

#include <algorithm>
#include <cassert>
#include <climits>
#include <queue>
#include <tuple>

namespace fgpu::codegen {
namespace {

struct UseInfo {
  int first = -1;
  int last = -1;
  bool is_float = false;

  void touch(int pos, bool flt) {
    if (first < 0) first = pos;
    last = std::max(last, pos);
    is_float = is_float || flt;
  }
};

struct BackEdge {
  int from;
  int to;
};

std::vector<BackEdge> collect_back_edges(const MFunction& fn) {
  std::vector<int> label_pos(static_cast<size_t>(fn.num_labels), -1);
  for (size_t i = 0; i < fn.code.size(); ++i) {
    if (fn.code[i].is_label()) {
      label_pos[static_cast<size_t>(fn.code[i].bind_label)] = static_cast<int>(i);
    }
  }
  std::vector<BackEdge> back_edges;
  for (size_t i = 0; i < fn.code.size(); ++i) {
    const MInstr& m = fn.code[i];
    if (m.is_label() || m.is_li || m.target < 0) continue;
    const int t = label_pos[static_cast<size_t>(m.target)];
    assert(t >= 0 && "branch to unbound label");
    if (t <= static_cast<int>(i)) back_edges.push_back({static_cast<int>(i), t});
  }
  return back_edges;
}

// Per-vreg access positions (sorted) and def count, for the spill-cost
// heuristic and the split-safety check.
struct AccessInfo {
  std::vector<int> positions;
  int def_count = 0;

  int def_pos() const { return positions.empty() ? -1 : positions.front(); }

  // First access at position >= pos, or INT_MAX.
  int next_access(int pos) const {
    auto it = std::lower_bound(positions.begin(), positions.end(), pos);
    return it == positions.end() ? INT_MAX : *it;
  }

  // Any access in [lo, hi)?
  bool accessed_in(int lo, int hi) const {
    auto it = std::lower_bound(positions.begin(), positions.end(), lo);
    return it != positions.end() && *it < hi;
  }
};

std::unordered_map<int, AccessInfo> collect_accesses(const MFunction& fn) {
  std::unordered_map<int, AccessInfo> info;
  for (size_t i = 0; i < fn.code.size(); ++i) {
    const MInstr& m = fn.code[i];
    if (m.is_label()) continue;
    const int pos = static_cast<int>(i);
    auto touch = [&](int reg) {
      if (!is_virtual(reg)) return;
      auto& a = info[reg];
      if (a.positions.empty() || a.positions.back() != pos) a.positions.push_back(pos);
    };
    touch(m.rs1);
    touch(m.rs2);
    touch(m.rs3);
    if (is_virtual(m.rd)) {
      touch(m.rd);
      ++info[m.rd].def_count;
    }
  }
  return info;
}

}  // namespace

std::vector<Interval> compute_intervals(const MFunction& fn) {
  std::unordered_map<int, UseInfo> uses;

  for (size_t i = 0; i < fn.code.size(); ++i) {
    const MInstr& m = fn.code[i];
    if (m.is_label()) continue;
    const int pos = static_cast<int>(i);
    auto touch = [&](int reg, bool flt) {
      if (is_virtual(reg)) uses[reg].touch(pos, flt);
    };
    touch(m.rd, slot_rd_float(m.op));
    touch(m.rs1, slot_rs1_float(m.op));
    touch(m.rs2, slot_rs2_float(m.op));
    touch(m.rs3, slot_rs3_float(m.op));
  }

  // Extend intervals across backward branches until fixpoint, so values
  // defined before a loop and used inside remain live through all
  // iterations (and values defined in iteration N survive into N+1).
  // Only values defined before the loop header and still used at or after it
  // can be live across iterations (codegen re-defines in-body temporaries at
  // the top of every iteration, so they never cross the back edge).
  const auto back_edges = collect_back_edges(fn);
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [vreg, info] : uses) {
      (void)vreg;
      for (const auto& edge : back_edges) {
        if (info.first < edge.to && info.last >= edge.to && info.last < edge.from) {
          info.last = edge.from;
          changed = true;
        }
      }
    }
  }

  std::vector<Interval> intervals;
  intervals.reserve(uses.size());
  for (const auto& [vreg, info] : uses) {
    intervals.push_back(Interval{vreg, info.first, info.last, info.is_float});
  }
  std::sort(intervals.begin(), intervals.end(), [](const Interval& a, const Interval& b) {
    return std::tie(a.start, a.vreg) < std::tie(b.start, b.vreg);
  });
  return intervals;
}

Allocation allocate_registers(const MFunction& fn, const RegAllocConfig& config,
                              RemarkSink* sink) {
  Allocation alloc;
  const auto intervals = compute_intervals(fn);
  const auto accesses = collect_accesses(fn);
  const auto back_edges = collect_back_edges(fn);

  // Peak simultaneous liveness over both register classes (intervals are
  // sorted by start): the `max_pressure` figure of the pass telemetry.
  {
    std::priority_queue<int, std::vector<int>, std::greater<int>> live_ends;
    for (const auto& interval : intervals) {
      while (!live_ends.empty() && live_ends.top() < interval.start) live_ends.pop();
      live_ends.push(interval.end);
      alloc.max_pressure =
          std::max(alloc.max_pressure, static_cast<int>(live_ends.size()));
    }
  }

  // Spill/split remark with the defining statement's provenance and the
  // number of accesses the stack will serve (the decision's cost proxy).
  const auto note = [&](const char* name, const char* detail, int vreg, int from_pos) {
    if (sink == nullptr) return;
    const auto& a = accesses.at(vreg);
    const int64_t served = a.positions.end() - std::lower_bound(a.positions.begin(),
                                                                a.positions.end(), from_pos);
    std::string site = "<unknown>";
    const int def = a.def_pos();
    if (def >= 0 && static_cast<size_t>(def) < fn.code.size()) {
      const int src = fn.code[static_cast<size_t>(def)].src;
      if (src >= 0 && static_cast<size_t>(src) < fn.sources.size()) {
        site = fn.sources[static_cast<size_t>(src)];
      }
    }
    sink->add("regalloc", "applied", name, site, detail, served);
  };

  // Splitting victim W at position P is safe only when W's register cannot
  // be observed stale: W is single-def (the def also refreshes the slot),
  // and no backward branch can re-enter W's pre-split range after the
  // register has been handed over. A back edge (from >= P, to) is dangerous
  // exactly when it skips W's def (to > def) and W still has register
  // accesses in [to, P).
  auto split_safe = [&](int vreg, int split_pos) {
    const auto& a = accesses.at(vreg);
    if (a.def_count != 1) return false;
    const int def = a.def_pos();
    if (def < 0 || def >= split_pos) return false;
    if (a.next_access(split_pos) == INT_MAX) return false;  // nothing to serve
    for (const auto& edge : back_edges) {
      if (edge.from >= split_pos && edge.to > def && a.accessed_in(edge.to, split_pos)) {
        return false;
      }
    }
    return true;
  };

  // Slot numbers are assigned after the scan so non-overlapping lifetimes
  // can share slots; the scan records requests in the meantime.
  struct SlotRequest {
    int vreg;
    int start;  // first position the slot holds a live value (the store)
    int end;
    bool is_split;
  };
  std::vector<SlotRequest> requests;

  // Allocate int and float classes independently.
  for (const bool want_float : {false, true}) {
    const auto& pool = want_float ? config.float_regs : config.int_regs;
    struct Active {
      Interval interval;
      int phys;
    };
    std::vector<Active> active;
    std::vector<int> free_regs(pool.rbegin(), pool.rend());  // pop_back yields pool order
    const auto encode = [&](int phys) { return want_float ? phys + kPhysFloatBase : phys; };

    for (const auto& interval : intervals) {
      if (interval.is_float != want_float) continue;
      const int start = interval.start;
      // Expire finished intervals.
      for (size_t i = 0; i < active.size();) {
        if (active[i].interval.end < start) {
          free_regs.push_back(active[i].phys);
          active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      if (!free_regs.empty()) {
        const int phys = free_regs.back();
        free_regs.pop_back();
        alloc.assignment[interval.vreg] = encode(phys);
        active.push_back({interval, phys});
        continue;
      }
      // Under pressure: evict the interval whose next access is furthest
      // away (ties: fewer remaining accesses — cheaper to serve from the
      // stack — then later end, then lower vreg). The current interval
      // competes with its first access *after* its def.
      auto cost_key = [&](const Interval& iv, int next) {
        const auto& a = accesses.at(iv.vreg);
        const int remaining =
            static_cast<int>(a.positions.end() -
                             std::lower_bound(a.positions.begin(), a.positions.end(), start));
        return std::make_tuple(next, -remaining, iv.end, -iv.vreg);
      };
      const int current_next = accesses.at(interval.vreg).next_access(start + 1);
      Active* victim = nullptr;
      for (auto& cand : active) {
        const int cand_next = accesses.at(cand.interval.vreg).next_access(start);
        if (!victim || cost_key(cand.interval, cand_next) >
                           cost_key(victim->interval,
                                    accesses.at(victim->interval.vreg).next_access(start))) {
          victim = &cand;
        }
      }
      const int victim_next =
          victim ? accesses.at(victim->interval.vreg).next_access(start) : INT_MIN;
      if (victim && cost_key(victim->interval, victim_next) >
                        cost_key(interval, current_next)) {
        // Evict the victim; split it if safe, spill it whole otherwise.
        const int w = victim->interval.vreg;
        alloc.assignment.erase(w);
        if (split_safe(w, start)) {
          note("ra.split", "evicted live range split: register until eviction, stack after",
               w, start);
          alloc.split[w] = SplitAssign{encode(victim->phys), start, -1};
          requests.push_back({w, accesses.at(w).def_pos(), victim->interval.end, true});
        } else {
          note("ra.spill", "evicted live range spilled whole", w, victim->interval.start);
          requests.push_back({w, victim->interval.start, victim->interval.end, false});
        }
        alloc.assignment[interval.vreg] = encode(victim->phys);
        victim->interval = interval;
      } else {
        note("ra.spill", "no profitable eviction: interval spilled at definition",
             interval.vreg, start);
        requests.push_back({interval.vreg, start, interval.end, false});
      }
    }
  }

  // Lifetime-based slot assignment: a slot is reusable once the interval it
  // held has ended.
  std::sort(requests.begin(), requests.end(), [](const SlotRequest& a, const SlotRequest& b) {
    return std::tie(a.start, a.end, a.vreg) < std::tie(b.start, b.end, b.vreg);
  });
  using EndSlot = std::pair<int, int>;  // (end, slot)
  std::priority_queue<EndSlot, std::vector<EndSlot>, std::greater<EndSlot>> in_use;
  int next_slot = 0;
  for (const auto& req : requests) {
    int slot;
    if (!in_use.empty() && in_use.top().first < req.start) {
      slot = in_use.top().second;
      in_use.pop();
    } else {
      slot = next_slot++;
    }
    in_use.push({req.end, slot});
    if (req.is_split) {
      alloc.split[req.vreg].slot = slot;
    } else {
      alloc.spill_slot[req.vreg] = slot;
    }
  }
  alloc.num_spill_slots = next_slot;
  return alloc;
}

}  // namespace fgpu::codegen
