#include "codegen/regalloc.hpp"

#include <algorithm>
#include <cassert>

namespace fgpu::codegen {
namespace {

struct UseInfo {
  int first = -1;
  int last = -1;
  bool is_float = false;

  void touch(int pos, bool flt) {
    if (first < 0) first = pos;
    last = std::max(last, pos);
    is_float = is_float || flt;
  }
};

}  // namespace

std::vector<Interval> compute_intervals(const MFunction& fn) {
  std::unordered_map<int, UseInfo> uses;
  std::vector<int> label_pos(static_cast<size_t>(fn.num_labels), -1);

  for (size_t i = 0; i < fn.code.size(); ++i) {
    const MInstr& m = fn.code[i];
    if (m.is_label()) {
      label_pos[static_cast<size_t>(m.bind_label)] = static_cast<int>(i);
      continue;
    }
    const int pos = static_cast<int>(i);
    auto touch = [&](int reg, bool flt) {
      if (is_virtual(reg)) uses[reg].touch(pos, flt);
    };
    touch(m.rd, slot_rd_float(m.op));
    touch(m.rs1, slot_rs1_float(m.op));
    touch(m.rs2, slot_rs2_float(m.op));
    touch(m.rs3, slot_rs3_float(m.op));
  }

  // Extend intervals across backward branches until fixpoint, so values
  // defined before a loop and used inside remain live through all
  // iterations (and values defined in iteration N survive into N+1).
  struct BackEdge {
    int from;
    int to;
  };
  std::vector<BackEdge> back_edges;
  for (size_t i = 0; i < fn.code.size(); ++i) {
    const MInstr& m = fn.code[i];
    if (m.is_label() || m.target < 0) continue;
    const int t = label_pos[static_cast<size_t>(m.target)];
    assert(t >= 0 && "branch to unbound label");
    if (t <= static_cast<int>(i)) back_edges.push_back({static_cast<int>(i), t});
  }
  // Only values defined before the loop header and still used at or after it
  // can be live across iterations (codegen re-defines in-body temporaries at
  // the top of every iteration, so they never cross the back edge).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [vreg, info] : uses) {
      (void)vreg;
      for (const auto& edge : back_edges) {
        if (info.first < edge.to && info.last >= edge.to && info.last < edge.from) {
          info.last = edge.from;
          changed = true;
        }
      }
    }
  }

  std::vector<Interval> intervals;
  intervals.reserve(uses.size());
  for (const auto& [vreg, info] : uses) {
    intervals.push_back(Interval{vreg, info.first, info.last, info.is_float});
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  return intervals;
}

Allocation allocate_registers(const MFunction& fn, const RegAllocConfig& config) {
  Allocation alloc;
  auto intervals = compute_intervals(fn);

  // Allocate int and float classes independently.
  for (const bool want_float : {false, true}) {
    const auto& pool = want_float ? config.float_regs : config.int_regs;
    struct Active {
      Interval interval;
      int phys;
    };
    std::vector<Active> active;
    std::vector<int> free_regs(pool.rbegin(), pool.rend());  // pop_back yields pool order

    for (const auto& interval : intervals) {
      if (interval.is_float != want_float) continue;
      // Expire finished intervals.
      for (size_t i = 0; i < active.size();) {
        if (active[i].interval.end < interval.start) {
          free_regs.push_back(active[i].phys);
          active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      if (!free_regs.empty()) {
        const int phys = free_regs.back();
        free_regs.pop_back();
        alloc.assignment[interval.vreg] =
            want_float ? phys + kPhysFloatBase : phys;
        active.push_back({interval, phys});
        continue;
      }
      // Spill the interval that ends last (it blocks the register longest).
      auto furthest = std::max_element(
          active.begin(), active.end(),
          [](const Active& a, const Active& b) { return a.interval.end < b.interval.end; });
      if (furthest != active.end() && furthest->interval.end > interval.end) {
        // Steal its register; spill the old owner.
        alloc.assignment[interval.vreg] =
            want_float ? furthest->phys + kPhysFloatBase : furthest->phys;
        alloc.assignment.erase(furthest->interval.vreg);
        alloc.spill_slot[furthest->interval.vreg] = alloc.num_spill_slots++;
        furthest->interval = interval;
      } else {
        alloc.spill_slot[interval.vreg] = alloc.num_spill_slots++;
      }
    }
  }
  return alloc;
}

}  // namespace fgpu::codegen
