#include "codegen/peephole.hpp"

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "arch/isa.hpp"

namespace fgpu::codegen {
namespace {

using arch::FuClass;
using arch::Op;

bool is_virtual(int reg) { return reg >= kFirstVirtual; }

bool is_simt(const MInstr& m) {
  if (m.is_label() || m.is_li || m.is_la) return false;
  return arch::op_info(m.op).fu == FuClass::kSimt;
}

// Pure value-producing computation: safe to value-number and to delete when
// its destination is dead. Loads are excluded (another lane's store may land
// between two textually identical loads), as are CSR reads (the thread-mask
// CSR mutates with SPLIT/PRED/TMC).
bool pure_compute(const MInstr& m) {
  if (m.is_li || m.is_la) return true;
  if (m.is_label() || m.target >= 0) return false;
  switch (arch::op_info(m.op).fu) {
    case FuClass::kAlu:
    case FuClass::kMulDiv:
    case FuClass::kFpu:
      return true;
    default:
      return false;
  }
}

bool is_cond_branch(Op op) {
  switch (op) {
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return true;
    default:
      return false;
  }
}

Op invert_branch(Op op) {
  switch (op) {
    case Op::kBeq: return Op::kBne;
    case Op::kBne: return Op::kBeq;
    case Op::kBlt: return Op::kBge;
    case Op::kBge: return Op::kBlt;
    case Op::kBltu: return Op::kBgeu;
    case Op::kBgeu: return Op::kBltu;
    default: return op;
  }
}

bool fits_imm12(int64_t v) { return v >= -2048 && v <= 2047; }

bool is_pow2_u32(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

int log2_u32(uint32_t v) {
  int n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

// RV32 integer semantics for constant folding, including the no-trap
// division results (x/0 == -1, x%0 == x, INT_MIN / -1 == INT_MIN).
std::optional<int32_t> fold_int(Op op, int32_t a, int32_t b) {
  const uint32_t ua = static_cast<uint32_t>(a);
  const uint32_t ub = static_cast<uint32_t>(b);
  switch (op) {
    case Op::kAdd:
    case Op::kAddi: return static_cast<int32_t>(ua + ub);
    case Op::kSub: return static_cast<int32_t>(ua - ub);
    case Op::kAnd:
    case Op::kAndi: return a & b;
    case Op::kOr:
    case Op::kOri: return a | b;
    case Op::kXor:
    case Op::kXori: return a ^ b;
    case Op::kSll:
    case Op::kSlli: return static_cast<int32_t>(ua << (ub & 31u));
    case Op::kSrl:
    case Op::kSrli: return static_cast<int32_t>(ua >> (ub & 31u));
    case Op::kSra:
    case Op::kSrai: return a >> (ub & 31u);
    case Op::kSlt:
    case Op::kSlti: return a < b ? 1 : 0;
    case Op::kSltu:
    case Op::kSltiu: return ua < ub ? 1 : 0;
    case Op::kMul:
      return static_cast<int32_t>(
          static_cast<uint32_t>(static_cast<int64_t>(a) * static_cast<int64_t>(b)));
    case Op::kDiv:
      if (b == 0) return -1;
      if (a == INT32_MIN && b == -1) return INT32_MIN;
      return a / b;
    case Op::kDivu:
      if (b == 0) return -1;  // all ones
      return static_cast<int32_t>(ua / ub);
    case Op::kRem:
      if (b == 0) return a;
      if (a == INT32_MIN && b == -1) return 0;
      return a % b;
    case Op::kRemu:
      if (b == 0) return a;
      return static_cast<int32_t>(ua % ub);
    default:
      return std::nullopt;
  }
}

// Integer I-form for an R-form op (constant in rs2), if one exists.
std::optional<Op> imm_form(Op op) {
  switch (op) {
    case Op::kAdd: return Op::kAddi;
    case Op::kAnd: return Op::kAndi;
    case Op::kOr: return Op::kOri;
    case Op::kXor: return Op::kXori;
    case Op::kSlt: return Op::kSlti;
    case Op::kSltu: return Op::kSltiu;
    case Op::kSll: return Op::kSlli;
    case Op::kSrl: return Op::kSrli;
    case Op::kSra: return Op::kSrai;
    default: return std::nullopt;
  }
}

bool is_commutative(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kMul:
      return true;
    default:
      return false;
  }
}

// Whether `op` is an integer I-form whose imm participates in folding.
bool is_int_imm_op(Op op) {
  switch (op) {
    case Op::kAddi:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai:
      return true;
    default:
      return false;
  }
}

bool is_int_r_op(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kMul:
    case Op::kDiv:
    case Op::kDivu:
    case Op::kRem:
    case Op::kRemu:
      return true;
    default:
      return false;
  }
}

// Ops producing a 0/1 boolean — used to validate xori-by-1 inversion chains.
bool produces_bool(const MInstr& d) {
  if (d.is_li) return d.imm == 0 || d.imm == 1;
  if (d.is_label()) return false;
  switch (d.op) {
    case Op::kSlt:
    case Op::kSltu:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kFeqS:
    case Op::kFltS:
    case Op::kFleS:
      return true;
    default:
      return false;
  }
}

// Per-round def/use summary of the virtual registers.
struct Analysis {
  int base = kFirstVirtual;
  std::vector<int> def_count;
  std::vector<int> use_count;
  std::vector<int> def_pos;  // position of the unique def (single-def only)
  std::vector<std::optional<int32_t>> const_val;

  explicit Analysis(const MFunction& fn) {
    const int n = fn.next_vreg > base ? fn.next_vreg - base : 0;
    def_count.assign(n, 0);
    use_count.assign(n, 0);
    def_pos.assign(n, -1);
    const_val.assign(n, std::nullopt);
    for (size_t i = 0; i < fn.code.size(); ++i) {
      const MInstr& m = fn.code[i];
      if (m.is_label()) continue;
      for (int r : {m.rs1, m.rs2, m.rs3}) {
        if (is_virtual(r)) ++use_count[r - base];
      }
      if (is_virtual(m.rd)) {
        ++def_count[m.rd - base];
        def_pos[m.rd - base] = static_cast<int>(i);
      }
    }
    for (const MInstr& m : fn.code) {
      if (m.is_li && is_virtual(m.rd) && def_count[m.rd - base] == 1) {
        const_val[m.rd - base] = m.imm;
      }
    }
  }

  bool single_def(int reg) const {
    return is_virtual(reg) && def_count[reg - base] == 1;
  }
};

// LVN key: op identity plus the (already canonicalized) operands.
using LvnKey = std::array<int64_t, 6>;

LvnKey lvn_key(const MInstr& m) {
  int64_t opcode = static_cast<int64_t>(m.op);
  if (m.is_li) opcode = 1 << 20;
  if (m.is_la) opcode = 2 << 20;
  return {opcode, m.rs1, m.rs2, m.rs3, m.imm, m.target};
}

class Peep {
 public:
  Peep(MFunction& fn, int opt_level, PeepholeStats& stats, RemarkSink* sink)
      : fn_(fn), opt_(opt_level), stats_(stats), sink_(sink) {}

  // One full round. Returns true if anything changed.
  bool round() {
    const int before = stats_.total();
    Analysis analysis(fn_);
    deleted_.assign(fn_.code.size(), false);
    replace_.assign(analysis.def_count.size(), -1);
    forward_scan(analysis);
    if (opt_ >= 2) control_flow();
    dce();
    compact();
    return stats_.total() != before;
  }

 private:
  // Site-level remark for the high-signal rewrites (LVN hits, branch
  // fusions, far-branch collapses). Null sink = remarks off; the cheap
  // per-instruction rewrites (folds, copy propagation, dead deletes) are
  // reported as pass-level counts by compile_kernel instead.
  void note(const MInstr& m, const char* name, const char* detail) {
    if (sink_ == nullptr) return;
    const std::string& site =
        m.src >= 0 && m.src < static_cast<int>(fn_.sources.size())
            ? fn_.sources[static_cast<size_t>(m.src)]
            : kUnknownSite;
    sink_->add("peephole", "applied", name, site, detail);
  }

  static const std::string kUnknownSite;

  int resolve(int r) const {
    for (int guard = 0; guard < 64; ++guard) {
      if (!is_virtual(r)) return r;
      const int next = replace_[r - kFirstVirtual];
      if (next < 0) return r;
      r = next;
    }
    return r;
  }

  // Constant value of an *integer* operand register, if known.
  std::optional<int32_t> cval(const Analysis& a, int r) const {
    if (r == 0) return 0;
    if (is_virtual(r) && a.single_def(r)) return a.const_val[r - a.base];
    return std::nullopt;
  }

  void rewrite_to_li(MInstr& m, int32_t value) {
    m.op = Op::kInvalid;
    m.is_li = true;
    m.is_la = false;
    m.rs1 = m.rs2 = m.rs3 = -1;
    m.imm = value;
    ++stats_.folded;
  }

  void rewrite_to_copy(MInstr& m, int src) {
    m.op = Op::kAddi;
    m.is_li = m.is_la = false;
    m.rs1 = src;
    m.rs2 = m.rs3 = -1;
    m.imm = 0;
    ++stats_.folded;
  }

  // Constant folding + R->I immediate rewrites for one integer instruction.
  void fold_instr(const Analysis& a, MInstr& m) {
    if (m.is_li || m.is_la || m.is_label() || m.target >= 0) return;
    if (is_int_imm_op(m.op)) {
      if (auto c = cval(a, m.rs1)) {
        if (auto v = fold_int(m.op, *c, m.imm)) rewrite_to_li(m, *v);
      }
      return;
    }
    if (!is_int_r_op(m.op)) return;
    auto c1 = cval(a, m.rs1);
    auto c2 = cval(a, m.rs2);
    if (c1 && c2) {
      if (auto v = fold_int(m.op, *c1, *c2)) rewrite_to_li(m, *v);
      return;
    }
    if (c1 && !c2 && is_commutative(m.op)) {
      std::swap(m.rs1, m.rs2);
      std::swap(c1, c2);
    }
    if (!c2) return;
    const int32_t c = *c2;
    if (m.op == Op::kMul) {
      if (c == 0) {
        rewrite_to_li(m, 0);
      } else if (c == 1) {
        rewrite_to_copy(m, m.rs1);
      } else if (c > 1 && is_pow2_u32(static_cast<uint32_t>(c))) {
        m.op = Op::kSlli;
        m.imm = log2_u32(static_cast<uint32_t>(c));
        m.rs2 = -1;
        ++stats_.folded;
      }
      return;
    }
    if (m.op == Op::kSub) {
      if (fits_imm12(-static_cast<int64_t>(c))) {
        m.op = Op::kAddi;
        m.imm = -c;
        m.rs2 = -1;
        ++stats_.folded;
      }
      return;
    }
    if (auto iop = imm_form(m.op)) {
      const bool is_shift = m.op == Op::kSll || m.op == Op::kSrl || m.op == Op::kSra;
      const int32_t imm = is_shift ? (c & 31) : c;
      if (is_shift || fits_imm12(imm)) {
        m.op = *iop;
        m.imm = imm;
        m.rs2 = -1;
        ++stats_.folded;
      }
    }
  }

  // addi / load-offset chain folding: addi d, s, c where s is a single-def
  // `addi s, base, c0` (base stable) becomes addi d, base, c0+c.
  void fold_addi_chain(const Analysis& a, MInstr& m) {
    if (m.is_li || m.is_la || m.op != Op::kAddi) return;
    const int s = m.rs1;
    if (!a.single_def(s)) return;
    const int dp = a.def_pos[s - a.base];
    if (dp < 0 || deleted_[dp]) return;
    const MInstr& d = fn_.code[dp];
    if (d.is_li || d.is_la || d.op != Op::kAddi) return;
    const int base = d.rs1;
    if (!(base == 0 || a.single_def(base))) return;
    const int64_t sum = static_cast<int64_t>(d.imm) + m.imm;
    if (!fits_imm12(sum)) return;
    m.rs1 = base;
    m.imm = static_cast<int32_t>(sum);
    ++stats_.folded;
  }

  // True when no label sits strictly between positions `from` and `to` and no
  // instruction in that window writes any register in `guards`.
  bool window_safe(int from, int to, std::initializer_list<int> guards) const {
    for (int k = from + 1; k < to; ++k) {
      if (deleted_[k]) continue;
      const MInstr& w = fn_.code[k];
      if (w.is_label()) return false;
      for (int g : guards) {
        if (g > 0 && w.rd == g) return false;
      }
    }
    return true;
  }

  // Folds the boolean idioms the expression lowerer emits (sltiu t,s,1 for
  // ==0, sltu t,x0,s for !=0, sub for ==/!=, slt/sltu for orderings, xori
  // for negation) into the conditional branch that consumes them.
  void fuse_branch(const Analysis& a, MInstr& m, int pos) {
    for (int depth = 0; depth < 4; ++depth) {
      if (!(m.op == Op::kBeq || m.op == Op::kBne) || m.rs2 != 0) return;
      const int t = m.rs1;
      if (auto c = cval(a, t)) {
        // Branch on a constant: always or never taken.
        const bool taken = (m.op == Op::kBeq) == (*c == 0);
        note(m, "peep.const-branch",
             taken ? "branch on constant made unconditional" : "never-taken branch removed");
        if (taken) {
          m.op = Op::kJal;
          m.rd = 0;
          m.rs1 = m.rs2 = -1;
        } else {
          deleted_[pos] = true;
        }
        ++stats_.fused;
        return;
      }
      if (!a.single_def(t)) return;
      const int dp = a.def_pos[t - a.base];
      if (dp < 0 || dp >= pos || deleted_[dp]) return;
      const MInstr& d = fn_.code[dp];
      if (d.is_li || d.is_la || d.is_label()) return;
      // The operands we are about to read at the branch must still hold
      // their def-time values: virtual (or x0) and unwritten in between.
      auto stable = [&](int r) {
        return r == 0 || (is_virtual(r) && a.single_def(r));
      };
      const bool is_ne = m.op == Op::kBne;
      if (d.op == Op::kSltiu && d.imm == 1 && stable(d.rs1)) {
        // t = (s == 0); bne t -> beq s; beq t -> bne s.
        if (!window_safe(dp, pos, {d.rs1})) return;
        note(m, "peep.fuse-branch", "== 0 test fused into branch");
        m.op = is_ne ? Op::kBeq : Op::kBne;
        m.rs1 = d.rs1;
        ++stats_.fused;
        continue;
      }
      if (d.op == Op::kSltu && d.rs1 == 0 && stable(d.rs2)) {
        // t = (s != 0): same branch sense on s directly.
        if (!window_safe(dp, pos, {d.rs2})) return;
        note(m, "peep.fuse-branch", "!= 0 test fused into branch");
        m.rs1 = d.rs2;
        ++stats_.fused;
        continue;
      }
      if (d.op == Op::kXori && d.imm == 1 && a.single_def(d.rs1)) {
        const int sp = a.def_pos[d.rs1 - a.base];
        if (sp >= 0 && !deleted_[sp] && produces_bool(fn_.code[sp])) {
          // t = !s for a 0/1 s: invert the branch sense.
          if (!window_safe(dp, pos, {d.rs1})) return;
          note(m, "peep.fuse-branch", "boolean negation fused into branch");
          m.op = is_ne ? Op::kBeq : Op::kBne;
          m.rs1 = d.rs1;
          ++stats_.fused;
          continue;
        }
        return;
      }
      if (d.op == Op::kSub && stable(d.rs1) && stable(d.rs2)) {
        // t = a - b; bne t -> bne a, b; beq t -> beq a, b.
        if (!window_safe(dp, pos, {d.rs1, d.rs2})) return;
        note(m, "peep.fuse-branch", "subtract-compare fused into branch");
        m.rs1 = d.rs1;
        m.rs2 = d.rs2;
        ++stats_.fused;
        return;
      }
      if ((d.op == Op::kSlt || d.op == Op::kSltu) && stable(d.rs1) && stable(d.rs2)) {
        // t = (a < b); bne t -> blt(u) a, b; beq t -> bge(u) a, b.
        if (!window_safe(dp, pos, {d.rs1, d.rs2})) return;
        note(m, "peep.fuse-branch", "ordered compare fused into branch");
        const bool uns = d.op == Op::kSltu;
        m.op = is_ne ? (uns ? Op::kBltu : Op::kBlt) : (uns ? Op::kBgeu : Op::kBge);
        m.rs1 = d.rs1;
        m.rs2 = d.rs2;
        ++stats_.fused;
        return;
      }
      return;
    }
  }

  void forward_scan(const Analysis& a) {
    // Value table entries expire after kLvnWindow instructions: reusing a
    // computation from far above stretches the canonical vreg's live range
    // across the whole run, and on this machine the resulting spill traffic
    // (per-lane stacks never coalesce) costs far more than a recompute.
    constexpr int kLvnWindow = 48;
    std::map<LvnKey, std::pair<int, int>> lvn;  // key -> (vreg, position)
    for (size_t i = 0; i < fn_.code.size(); ++i) {
      MInstr& m = fn_.code[i];
      if (deleted_[i]) continue;
      if (m.is_label()) {
        lvn.clear();
        continue;
      }
      m.rs1 = resolve(m.rs1);
      m.rs2 = resolve(m.rs2);
      m.rs3 = resolve(m.rs3);
      if (is_simt(m)) {
        // SPLIT/JOIN/PRED/TMC/BAR change the active lane mask; a value
        // computed under one mask must not canonicalize one computed under
        // another, so the value table resets here (and at labels).
        lvn.clear();
        continue;
      }
      fold_instr(a, m);
      fold_addi_chain(a, m);
      // Copy propagation: addi d, s, 0 (int) or fsgnj d, s, s (float) with
      // single-def d and stable s — every later use of d reads s instead.
      const bool int_copy = !m.is_li && !m.is_la && m.op == Op::kAddi && m.imm == 0;
      const bool float_copy = !m.is_li && !m.is_la && m.op == Op::kFsgnjS && m.rs1 == m.rs2;
      if ((int_copy || float_copy) && a.single_def(m.rd)) {
        const int src = m.rs1;
        const bool ok = float_copy ? a.single_def(src)
                                   : (src == 0 || a.single_def(src));
        if (ok) {
          replace_[m.rd - kFirstVirtual] = src;
          ++stats_.propagated;
          continue;  // the now-dead copy falls to DCE
        }
      }
      if (opt_ >= 2 && is_cond_branch(m.op)) {
        fuse_branch(a, m, static_cast<int>(i));
        continue;
      }
      if (opt_ >= 2 && pure_compute(m) && a.single_def(m.rd)) {
        // rs==0 means x0 for integer slots but physical f0 for float slots;
        // f0 is allocatable, so it is only a stable operand for integer ops.
        bool float_operands = false;
        if (!m.is_li && !m.is_la) {
          float_operands = arch::reads_freg_rs1(m.op) || arch::reads_freg_rs2(m.op) ||
                           arch::reads_freg_rs3(m.op);
        }
        bool ok = true;
        for (int r : {m.rs1, m.rs2, m.rs3}) {
          if (r < 0) continue;
          if (r == 0) {
            ok = ok && !float_operands;
          } else {
            ok = ok && is_virtual(r) && a.single_def(r);
          }
        }
        if (ok) {
          const LvnKey key = lvn_key(m);
          auto it = lvn.find(key);
          if (it != lvn.end() &&
              static_cast<int>(i) - it->second.second <= kLvnWindow) {
            note(m, "peep.lvn", "recomputation replaced by earlier value");
            replace_[m.rd - kFirstVirtual] = it->second.first;
            deleted_[i] = true;
            ++stats_.numbered;
          } else {
            lvn[key] = {m.rd, static_cast<int>(i)};
          }
        }
      }
    }
  }

  // Branch-shape cleanups that need label positions: far-branch collapse,
  // jump-to-next and branch-to-next elimination.
  void control_flow() {
    // Collapse `bcc -> skip; jal -> L; label skip` back into `b!cc -> L`
    // when L is close enough that the final B-type immediate cannot
    // overflow. Worst case an MInstr expands to ~6 words (li/la are 2;
    // spill resolution adds up to 4 around a use), so 100 MInstrs stay well
    // inside the ±1024-word B-type reach.
    constexpr int kNearLimit = 100;
    std::vector<int> label_pos(fn_.num_labels, -1);
    for (size_t i = 0; i < fn_.code.size(); ++i) {
      if (!deleted_[i] && fn_.code[i].is_label()) {
        label_pos[fn_.code[i].bind_label] = static_cast<int>(i);
      }
    }
    auto next_live = [&](int k) {
      for (int j = k + 1; j < static_cast<int>(fn_.code.size()); ++j) {
        if (!deleted_[j]) return j;
      }
      return -1;
    };
    // True when every live instruction between pos and the binding of
    // `label` is itself a label (i.e. the branch falls through to its own
    // target).
    auto falls_through_to = [&](int pos, int label) {
      for (int j = pos + 1; j < static_cast<int>(fn_.code.size()); ++j) {
        if (deleted_[j]) continue;
        const MInstr& w = fn_.code[j];
        if (!w.is_label()) return false;
        if (w.bind_label == label) return true;
      }
      return false;
    };
    for (size_t i = 0; i < fn_.code.size(); ++i) {
      if (deleted_[i]) continue;
      MInstr& m = fn_.code[i];
      if (m.is_li || m.is_la || m.is_label() || m.target < 0) continue;
      if (is_cond_branch(m.op)) {
        if (falls_through_to(static_cast<int>(i), m.target)) {
          note(m, "peep.branch-fallthrough", "branch to next instruction removed");
          deleted_[i] = true;
          ++stats_.fused;
          continue;
        }
        const int j = next_live(static_cast<int>(i));
        if (j < 0) continue;
        const MInstr& jmp = fn_.code[j];
        if (jmp.is_li || jmp.is_la || jmp.is_label() || jmp.op != Op::kJal ||
            jmp.rd != 0 || jmp.target < 0) {
          continue;
        }
        const int k = next_live(j);
        if (k < 0) continue;
        const MInstr& skip = fn_.code[k];
        if (!skip.is_label() || skip.bind_label != m.target) continue;
        const int target_pos = label_pos[jmp.target];
        if (target_pos < 0) continue;
        const int dist = target_pos > static_cast<int>(i)
                             ? target_pos - static_cast<int>(i)
                             : static_cast<int>(i) - target_pos;
        if (dist > kNearLimit) continue;
        note(m, "peep.far-branch", "inverted-branch-over-jump collapsed to near branch");
        m.op = invert_branch(m.op);
        m.target = jmp.target;
        deleted_[j] = true;
        ++stats_.fused;
      } else if (m.op == Op::kJal && m.rd == 0) {
        if (falls_through_to(static_cast<int>(i), m.target)) {
          note(m, "peep.jump-fallthrough", "jump to next instruction removed");
          deleted_[i] = true;
          ++stats_.fused;
        }
      }
    }
  }

  void dce() {
    std::vector<int> uses(replace_.size(), 0);
    for (size_t i = 0; i < fn_.code.size(); ++i) {
      if (deleted_[i]) continue;
      const MInstr& m = fn_.code[i];
      if (m.is_label()) continue;
      for (int r : {m.rs1, m.rs2, m.rs3}) {
        if (is_virtual(r)) ++uses[r - kFirstVirtual];
      }
    }
    auto deletable = [](const MInstr& m) {
      if (pure_compute(m)) return true;
      // csrrs rd, csr, x0 reads without writing the CSR.
      return !m.is_li && !m.is_la && !m.is_label() && m.target < 0 &&
             m.op == Op::kCsrrs && m.rs1 == 0;
    };
    bool changed = true;
    while (changed) {
      changed = false;
      for (int i = static_cast<int>(fn_.code.size()) - 1; i >= 0; --i) {
        if (deleted_[i]) continue;
        const MInstr& m = fn_.code[i];
        if (m.is_label() || !is_virtual(m.rd)) continue;
        if (uses[m.rd - kFirstVirtual] != 0 || !deletable(m)) continue;
        deleted_[i] = true;
        ++stats_.removed;
        changed = true;
        for (int r : {m.rs1, m.rs2, m.rs3}) {
          if (is_virtual(r)) --uses[r - kFirstVirtual];
        }
      }
    }
  }

  void compact() {
    std::vector<MInstr> kept;
    kept.reserve(fn_.code.size());
    for (size_t i = 0; i < fn_.code.size(); ++i) {
      if (!deleted_[i]) kept.push_back(fn_.code[i]);
    }
    fn_.code = std::move(kept);
  }

  MFunction& fn_;
  int opt_;
  PeepholeStats& stats_;
  RemarkSink* sink_;
  std::vector<bool> deleted_;
  std::vector<int> replace_;
};

const std::string Peep::kUnknownSite = "<unknown>";

}  // namespace

PeepholeStats peephole(MFunction& fn, int opt_level, RemarkSink* sink) {
  PeepholeStats stats;
  if (opt_level <= 0) return stats;
  for (int round = 0; round < 4; ++round) {
    Peep peep(fn, opt_level, stats, sink);
    if (!peep.round()) break;
  }
  return stats;
}

}  // namespace fgpu::codegen
