// Linear-scan register allocation over the virtual-register machine IR.
//
// Intervals are computed on the linearized instruction list and extended
// across backward branches (the conservative classic fix for loops), then
// allocated greedily. Under pressure the allocator evicts the interval
// whose next access is furthest away (spill-cost driven: distant, sparse
// intervals go first). An evicted single-def interval is *split* when that
// is provably safe: it keeps its register up to the eviction point and is
// served from a stack slot afterwards, so values computed before the
// dispatch loop and reused late do not pay a reload on every access.
// Stack slots are assigned after the scan with lifetime-based reuse, so
// non-overlapping spilled ranges share slots. Intervals that cannot be
// split spill whole and are rewritten through reserved scratch registers at
// emission time.
#pragma once

#include <unordered_map>
#include <vector>

#include "codegen/minstr.hpp"
#include "codegen/remarks.hpp"

namespace fgpu::codegen {

// A split live range: `phys` serves accesses at positions < `split_pos`;
// the def additionally stores to `slot`, which serves every access at
// positions >= `split_pos` through the spill-scratch path.
struct SplitAssign {
  int phys = -1;      // physical register (encoded like Allocation::assignment)
  int split_pos = 0;  // first instruction index served from the slot
  int slot = -1;      // stack slot (4-byte units from sp)
};

struct Allocation {
  // vreg -> physical register (x index, or f index + kPhysFloatBase).
  std::unordered_map<int, int> assignment;
  // vreg -> stack slot (4-byte units from sp). Disjoint from `assignment`.
  std::unordered_map<int, int> spill_slot;
  // vreg -> split live range. Disjoint from both maps above.
  std::unordered_map<int, SplitAssign> split;
  int num_spill_slots = 0;
  // Peak number of simultaneously live intervals (both register classes) —
  // the pressure figure of the per-pass telemetry (remarks.hpp IrSnapshot).
  int max_pressure = 0;

  bool is_spilled(int vreg) const { return spill_slot.contains(vreg); }
  bool is_split(int vreg) const { return split.contains(vreg); }
};

struct RegAllocConfig {
  // Allocatable physical registers. Defaults reserve: x0 zero, x1 (unused),
  // x2 sp, x3 arg-block base, x4 hw-thread id, x10/x17 (ecall a0/a7),
  // x29-x31 spill scratch; f29-f31 spill scratch.
  std::vector<int> int_regs = {5,  6,  7,  8,  9,  11, 12, 13, 14, 15, 16,
                               18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28};
  std::vector<int> float_regs = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14,
                                 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28};
};

// Computes an allocation for `fn`. Float-ness of each vreg is inferred from
// the operand slots it appears in (a vreg must be used consistently).
// Deterministic: identical input produces an identical allocation. A
// non-null `sink` receives a remark per spill/split decision with the
// defining statement's KIR provenance; null changes nothing.
Allocation allocate_registers(const MFunction& fn, const RegAllocConfig& config = {},
                              RemarkSink* sink = nullptr);

// Live interval of each vreg (exposed for tests).
struct Interval {
  int vreg = -1;
  int start = 0;
  int end = 0;
  bool is_float = false;
};
std::vector<Interval> compute_intervals(const MFunction& fn);

}  // namespace fgpu::codegen
