// Linear-scan register allocation over the virtual-register machine IR.
//
// Intervals are computed on the linearized instruction list and extended
// across backward branches (the conservative classic fix for loops), then
// allocated greedily; intervals that do not fit are spilled to the
// per-thread stack and rewritten through reserved scratch registers at
// emission time.
#pragma once

#include <unordered_map>
#include <vector>

#include "codegen/minstr.hpp"

namespace fgpu::codegen {

struct Allocation {
  // vreg -> physical register (x index, or f index + kPhysFloatBase).
  std::unordered_map<int, int> assignment;
  // vreg -> stack slot (4-byte units from sp). Disjoint from `assignment`.
  std::unordered_map<int, int> spill_slot;
  int num_spill_slots = 0;

  bool is_spilled(int vreg) const { return spill_slot.contains(vreg); }
};

struct RegAllocConfig {
  // Allocatable physical registers. Defaults reserve: x0 zero, x1 (unused),
  // x2 sp, x3 arg-block base, x4 hw-thread id, x10/x17 (ecall a0/a7),
  // x29-x31 spill scratch; f29-f31 spill scratch.
  std::vector<int> int_regs = {5,  6,  7,  8,  9,  11, 12, 13, 14, 15, 16,
                               18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28};
  std::vector<int> float_regs = {0,  1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14,
                                 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28};
};

// Computes an allocation for `fn`. Float-ness of each vreg is inferred from
// the operand slots it appears in (a vreg must be used consistently).
Allocation allocate_registers(const MFunction& fn, const RegAllocConfig& config = {});

// Live interval of each vreg (exposed for tests).
struct Interval {
  int vreg = -1;
  int start = 0;
  int end = 0;
  bool is_float = false;
};
std::vector<Interval> compute_intervals(const MFunction& fn);

}  // namespace fgpu::codegen
