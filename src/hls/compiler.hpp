// HLS compiler model — the stand-in for the Intel FPGA SDK for OpenCL (AOC)
// pipeline of the paper's Fig. 3.
//
// Given a KIR kernel, it reproduces the decisions the paper attributes to
// AOC in NDRange mode:
//   * every global-memory access site becomes a load/store unit (LSU);
//     the default burst-coalesced LSU instantiates 32 load units per site
//     ("each array access in the kernel code was synthesized into 32 load
//     units", §III-A) which dominates BRAM usage;
//   * `__pipelined_load` sites use a single pipelined unit instead — far
//     smaller, but slower for non-consecutive access patterns (§III-B O2);
//   * __local arrays are replicated across banks to give every access site
//     a private port;
//   * the datapath is fully pipelined; work items are issued iteratively
//     into it (NDRange mode), so runtime ≈ depth + items x II, where the
//     initiation interval II is bound by memory-site occupancy;
//   * a fitter checks the synthesized area against the board and fails
//     with "Not enough BRAM"-style diagnostics; global atomics fail to
//     synthesize against HBM2's heterogeneous memory system (§III-A);
//   * synthesis wall-clock time is modelled from design size, reproducing
//     the hours-long turnaround the paper reports in §IV-B.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "fpga/board.hpp"
#include "hls/synth_report.hpp"
#include "kir/kir.hpp"

namespace fgpu::hls {

// How an access site's index varies across adjacent work items.
enum class AccessPattern : uint8_t { kConsecutive, kStrided, kIrregular };

const char* to_string(AccessPattern p);

struct AccessSite {
  const void* site = nullptr;  // Expr* (loads) or Stmt* (stores/atomics)
  int buffer = -1;
  bool is_store = false;
  bool is_local = false;
  bool pipelined = false;  // __pipelined_load annotation (paper O2)
  bool in_loop = false;    // site executes under a kernel-side loop
  AccessPattern pattern = AccessPattern::kConsecutive;
  // Size of the (let-substituted) address expression: complex multi-term
  // addresses get deeper address pipelines and wider coalescing windows in
  // each of the 32 load units, which is what makes e.g. backprop's array
  // accesses cost ">1,000 BRAM blocks per line" (paper §III-B) while
  // vecadd's gid-indexed accesses stay near 400.
  uint32_t index_ops = 0;
  std::string buffer_name;
  // KIR source provenance: "<buffer>[<index-expression>]", the HLS-side
  // analogue of the soft-GPU PC -> KIR line table — every stall cycle the
  // timing model attributes to this site is traceable to kernel source.
  std::string source;
};

// Static census of the kernel's datapath.
struct DfgSummary {
  // Operation counts by functional class.
  uint64_t int_alu = 0;    // add/sub/logic/compare/select
  uint64_t int_mul = 0;
  uint64_t int_div = 0;
  uint64_t fp_add = 0;     // add/sub/min/max/compare
  uint64_t fp_mul = 0;
  uint64_t fp_div = 0;
  uint64_t fp_sqrt = 0;
  uint64_t fp_misc = 0;    // conversions, bitcasts, sign ops

  std::vector<AccessSite> sites;        // global-memory access sites
  uint64_t local_array_bytes = 0;
  uint64_t local_ports = 0;             // access sites on __local arrays
  uint64_t loops = 0;
  bool has_barrier = false;             // triggers work-group LSU replication
  uint64_t critical_path_latency = 0;   // cycles through the deepest expression

  uint64_t global_load_sites() const;
  uint64_t global_store_sites() const;
  uint64_t burst_load_sites() const;
  uint64_t pipelined_load_sites() const;
};

struct HlsDesign {
  std::string kernel;
  DfgSummary dfg;
  fpga::AreaReport area;
  uint64_t pipeline_depth = 0;   // cycles through the datapath
  double synthesis_hours = 0.0;
  SynthReport report;            // structured synthesis report (render() for prose)
};

struct HlsOptions {
  // NDRange iterative work-item issue (the mode the paper uses). Single
  // work-item mode is not modelled.
  bool ndrange = true;
};

// Builds the DFG census + access-site classification (exposed for tests).
DfgSummary analyze(const kir::Kernel& kernel);

// Per-module area rows of the design (one row per hardware module: shell,
// LSUs in access-site order, datapath, local memory, loop control). Row
// areas sum exactly to estimate_area(dfg).
std::vector<SynthRow> area_rows(const DfgSummary& dfg);

// Area estimation only (no fitting). Equals the sum of area_rows(dfg).
fpga::AreaReport estimate_area(const DfgSummary& dfg);

// Full structured report for one kernel against a board, produced whether
// or not the design fits (failed fits are exactly the Table II rows of
// interest). Never errors: the fitter/atomics verdict is recorded in
// `verdict`/`fits`, and `synthesis_hours` holds the failed-attempt time
// when the design does not synthesize.
SynthReport synth_report(const kir::Kernel& kernel, const fpga::Board& board);

// Full synthesis: analyze, estimate, fit against the board. On fitter
// failure returns kResourceExceeded ("Not enough BRAM") or kUnsupported
// (atomics on heterogeneous-memory boards), with the modelled synthesis
// time of the failed attempt recoverable via `failed_attempt_hours`.
Result<HlsDesign> synthesize(const kir::Kernel& kernel, const fpga::Board& board,
                             const HlsOptions& options = {});

// Synthesis wall-clock model (§IV-B: backprop took up to 10.4 h; failed
// attempts 1.2-1.5 h).
double synthesis_hours(const fpga::AreaReport& area);
double failed_attempt_hours(const fpga::AreaReport& area, const fpga::Board& board);

// Per-request pipeline occupancy (cycles) of one dynamic access through a
// site, used by the executor's timing model.
double request_cost(const AccessSite& site);

}  // namespace fgpu::hls
