// Structured HLS synthesis report: the machine-readable form of the AOC
// compile log the paper quotes in §III-B and Tables II-IV.
//
// One SynthReport describes one kernel's synthesized design as a list of
// hardware-module area rows (kernel shell, one LSU per access site, the
// shared datapath, local-memory banks, loop control) whose areas sum
// exactly to `total`, plus the fitter's verdict and the modelled synthesis
// wall-clock. It replaces the free-text `HlsDesign::report` string: the
// classic prose line is rendered *from* this structure (`render()`), so
// the Table II-IV benches and the fgpu.hlsprof.v1 exporter consume the
// same rows instead of each re-deriving module areas.
//
// Kept in its own header (fpga/ + std only) so runtime.hpp can embed a
// report per built kernel without pulling in the whole HLS compiler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/board.hpp"

namespace fgpu::hls {

// One hardware module of the synthesized design. Per-site LSU rows are
// named "<kind>-lsu <buffer>[<index-expr>]" in access-site order, so a row
// is traceable back to the kernel source construct that instantiated it.
struct SynthRow {
  std::string module;  // "shell", "burst-lsu wt[j*17+i]", "datapath", ...
  std::string detail;  // classification ("consecutive", "strided, in loop")
  fpga::AreaReport area;
};

struct SynthReport {
  std::string kernel;
  std::string board;
  std::vector<SynthRow> rows;  // areas sum exactly to `total`
  fpga::AreaReport total;
  uint64_t pipeline_depth = 0;

  // Access-site census (the "N global access sites (...)" line).
  uint64_t burst_load_sites = 0;
  uint64_t pipelined_load_sites = 0;
  uint64_t store_sites = 0;

  // Fitter verdict against `board`: "fits", "Not enough <resource>", or
  // "Atomics" (heterogeneous-memory synthesis failure, §III-A).
  bool fits = false;
  std::string verdict;
  double utilization = 0.0;    // worst resource, 1.0 == full
  std::string bottleneck;      // resource name driving `utilization`
  // Modelled synthesis wall-clock (§IV-B): a full compile when the design
  // fits, the shorter failed-attempt time otherwise.
  double synthesis_hours = 0.0;

  uint64_t access_sites() const {
    return burst_load_sites + pipelined_load_sites + store_sites;
  }

  // Classic one-line prose report (what HlsDesign::report used to hold).
  std::string render() const;
};

}  // namespace fgpu::hls
