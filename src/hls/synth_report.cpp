#include "hls/synth_report.hpp"

#include <sstream>

namespace fgpu::hls {

std::string SynthReport::render() const {
  std::ostringstream os;
  os << "kernel " << kernel << ": " << access_sites() << " global access sites ("
     << burst_load_sites << " burst-coalesced, " << pipelined_load_sites << " pipelined, "
     << store_sites << " store), depth " << pipeline_depth << ", area " << total.to_string();
  if (fits) {
    os << ", synthesis " << synthesis_hours << " h";
  } else {
    os << ", fitter: " << verdict << " (utilization "
       << static_cast<int>(utilization * 100.0) << "%)";
  }
  return os.str();
}

}  // namespace fgpu::hls
