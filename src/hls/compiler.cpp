#include "hls/compiler.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

namespace fgpu::hls {
namespace {

using kir::BinOp;
using kir::Expr;
using kir::ExprKind;
using kir::ExprPtr;
using kir::Scalar;
using kir::SpecialReg;
using kir::Stmt;
using kir::StmtKind;

// ---------------------------------------------------------------------------
// Access-pattern analysis: affine derivative of an index expression with
// respect to get_global_id(0) across adjacent work items. Let-bound
// variables are substituted through `defs` (single-assignment only).
// ---------------------------------------------------------------------------

using VarDefs = std::unordered_map<std::string, ExprPtr>;

std::optional<int64_t> gid_coefficient(const ExprPtr& e, const VarDefs& defs, int depth = 0) {
  if (depth > 32) return std::nullopt;
  switch (e->kind) {
    case ExprKind::kConstInt:
    case ExprKind::kConstFloat:
    case ExprKind::kParam:
      return 0;
    case ExprKind::kSpecial:
      switch (e->special) {
        case SpecialReg::kGlobalId:
          return e->index == 0 ? 1 : 0;  // adjacent items differ in dim 0
        case SpecialReg::kLocalId:
          return e->index == 0 ? 1 : 0;
        default:
          return 0;  // group ids and sizes are uniform across a group
      }
    case ExprKind::kVar: {
      auto it = defs.find(e->var);
      if (it == defs.end()) return std::nullopt;  // mutated or loop variable
      return gid_coefficient(it->second, defs, depth + 1);
    }
    case ExprKind::kBinary: {
      const auto a = gid_coefficient(e->a(), defs, depth + 1);
      const auto b = gid_coefficient(e->b(), defs, depth + 1);
      if (!a || !b) return std::nullopt;
      switch (e->bin) {
        case BinOp::kAdd: return *a + *b;
        case BinOp::kSub: return *a - *b;
        case BinOp::kMul:
          // Affine only if one side is invariant; the scale is then
          // coefficient * invariant-value, which we cannot evaluate without
          // runtime values — any nonzero scaled coefficient means strided.
          if (*a == 0 && *b == 0) return 0;
          if (*a == 0 || *b == 0) {
            // k * gid-affine: report "some stride > 1" as 2 (magnitude is
            // irrelevant to the classification).
            if (e->a()->kind == ExprKind::kConstInt && *a == 0) return e->a()->ival * *b;
            if (e->b()->kind == ExprKind::kConstInt && *b == 0) return e->b()->ival * *a;
            return 2;
          }
          return std::nullopt;
        case BinOp::kShl:
          if (*b == 0 && e->b()->kind == ExprKind::kConstInt) return *a << e->b()->ival;
          return std::nullopt;
        default:
          // Division/modulo/compare of a gid-dependent value: irregular
          // unless independent of gid entirely.
          if (*a == 0 && *b == 0) return 0;
          return std::nullopt;
      }
    }
    case ExprKind::kUnary:
      if (e->un == kir::UnOp::kNeg) {
        const auto a = gid_coefficient(e->a(), defs, depth + 1);
        if (a) return -*a;
        return std::nullopt;
      }
      {
        const auto a = gid_coefficient(e->a(), defs, depth + 1);
        if (a && *a == 0) return 0;
        return std::nullopt;
      }
    case ExprKind::kCast:
    case ExprKind::kSelect:
    case ExprKind::kCall:
    case ExprKind::kLoad: {
      // Data-dependent indices are irregular unless gid-independent.
      for (const auto& arg : e->args) {
        const auto c = gid_coefficient(arg, defs, depth + 1);
        if (!c || *c != 0) return std::nullopt;
      }
      return e->kind == ExprKind::kLoad ? std::optional<int64_t>(std::nullopt)
                                        : std::optional<int64_t>(0);
    }
  }
  return std::nullopt;
}


// Node count of an index expression with let-substitution (bounded).
uint64_t substituted_size(const ExprPtr& e, const VarDefs& defs, int depth = 0) {
  if (depth > 16) return 1;
  if (e->kind == ExprKind::kVar) {
    auto it = defs.find(e->var);
    if (it != defs.end()) return substituted_size(it->second, defs, depth + 1);
    return 1;
  }
  uint64_t n = 1;
  for (const auto& arg : e->args) n += substituted_size(arg, defs, depth + 1);
  return n;
}

AccessPattern classify(const ExprPtr& index, const VarDefs& defs) {
  const auto coeff = gid_coefficient(index, defs);
  if (!coeff) return AccessPattern::kIrregular;
  if (*coeff == 0 || *coeff == 1) return AccessPattern::kConsecutive;
  return AccessPattern::kStrided;
}

// ---------------------------------------------------------------------------
// DFG census
// ---------------------------------------------------------------------------

struct Census {
  DfgSummary summary;
  VarDefs defs;
  const kir::Kernel* kernel = nullptr;

  uint64_t expr_latency(const ExprPtr& e) {
    uint64_t child = 0;
    for (const auto& arg : e->args) child = std::max(child, expr_latency(arg));
    uint64_t own = 1;
    switch (e->kind) {
      case ExprKind::kBinary:
        if (e->type == Scalar::kF32 || e->a()->type == Scalar::kF32) {
          own = (e->bin == BinOp::kDiv) ? 28 : 6;
        } else {
          own = (e->bin == BinOp::kMul) ? 3 : (e->bin == BinOp::kDiv || e->bin == BinOp::kRem) ? 24 : 1;
        }
        break;
      case ExprKind::kCall:
        own = e->call == kir::Builtin::kSqrt ? 20 : 8;
        break;
      case ExprKind::kLoad:
        own = e->is_local ? 3 : (e->pipelined ? 12 : 6);
        break;
      default:
        own = 1;
        break;
    }
    return child + own;
  }

  void count_expr(const ExprPtr& e, bool in_loop) {
    switch (e->kind) {
      case ExprKind::kBinary:
        if (e->a()->type == Scalar::kF32) {
          switch (e->bin) {
            case BinOp::kMul: ++summary.fp_mul; break;
            case BinOp::kDiv: ++summary.fp_div; break;
            default: ++summary.fp_add; break;
          }
        } else {
          switch (e->bin) {
            case BinOp::kMul: ++summary.int_mul; break;
            case BinOp::kDiv:
            case BinOp::kRem: ++summary.int_div; break;
            default: ++summary.int_alu; break;
          }
        }
        break;
      case ExprKind::kUnary:
      case ExprKind::kSelect:
        if (e->type == Scalar::kF32) {
          ++summary.fp_misc;
        } else {
          ++summary.int_alu;
        }
        break;
      case ExprKind::kCast:
        ++summary.fp_misc;
        break;
      case ExprKind::kCall:
        if (e->call == kir::Builtin::kSqrt) {
          ++summary.fp_sqrt;
        } else {
          ++summary.fp_misc;
        }
        break;
      case ExprKind::kLoad: {
        if (e->is_local) {
          ++summary.local_ports;
        } else {
          AccessSite site;
          site.site = e.get();
          site.buffer = e->index;
          site.is_store = false;
          site.pipelined = e->pipelined;
          site.in_loop = in_loop;
          site.pattern = classify(e->a(), defs);
          site.index_ops = static_cast<uint32_t>(std::min<uint64_t>(substituted_size(e->a(), defs), 24));
          site.buffer_name = kernel->params[static_cast<size_t>(e->index)].name;
          site.source = site.buffer_name + "[" + kir::expr_to_string(e->a()) + "]";
          summary.sites.push_back(site);
        }
        break;
      }
      default:
        break;
    }
    for (const auto& arg : e->args) count_expr(arg, in_loop);
  }

  void count_store(const Stmt& s, bool in_loop) {
    if (s.is_local) {
      ++summary.local_ports;
      return;
    }
    AccessSite site;
    site.site = &s;
    site.buffer = s.buffer;
    site.is_store = true;
    site.in_loop = in_loop;
    site.pattern = classify(s.a, defs);
    site.index_ops = static_cast<uint32_t>(std::min<uint64_t>(substituted_size(s.a, defs), 24));
    site.buffer_name = kernel->params[static_cast<size_t>(s.buffer)].name;
    site.source = site.buffer_name + "[" + kir::expr_to_string(s.a) + "]";
    summary.sites.push_back(site);
  }

  void walk(const std::vector<kir::StmtPtr>& block, bool in_loop) {
    for (const auto& s : block) {
      switch (s->kind) {
        case StmtKind::kLet:
          defs[s->var] = s->a;
          count_expr(s->a, in_loop);
          summary.critical_path_latency =
              std::max(summary.critical_path_latency, expr_latency(s->a));
          break;
        case StmtKind::kAssign:
          defs.erase(s->var);  // mutated: no longer substitutable
          count_expr(s->a, in_loop);
          summary.critical_path_latency =
              std::max(summary.critical_path_latency, expr_latency(s->a));
          break;
        case StmtKind::kStore:
          count_expr(s->a, in_loop);
          count_expr(s->b, in_loop);
          summary.critical_path_latency = std::max(
              summary.critical_path_latency, expr_latency(s->b) + 2);
          count_store(*s, in_loop);
          break;
        case StmtKind::kIf:
          count_expr(s->a, in_loop);
          walk(s->body, in_loop);
          walk(s->else_body, in_loop);
          break;
        case StmtKind::kFor:
          ++summary.loops;
          count_expr(s->a, in_loop);
          count_expr(s->b, in_loop);
          count_expr(s->c, in_loop);
          defs.erase(s->var);
          walk(s->body, true);
          break;
        case StmtKind::kWhile:
          ++summary.loops;
          count_expr(s->a, in_loop);
          walk(s->body, true);
          break;
        case StmtKind::kBarrier:
          summary.has_barrier = true;
          break;
        case StmtKind::kAtomic:
          count_expr(s->a, in_loop);
          count_expr(s->b, in_loop);
          count_store(*s, in_loop);
          if (!s->result_var.empty()) defs.erase(s->result_var);
          break;
        case StmtKind::kPrint:
          for (const auto& arg : s->print_args) count_expr(arg, in_loop);
          break;
      }
    }
  }
};

}  // namespace

const char* to_string(AccessPattern p) {
  switch (p) {
    case AccessPattern::kConsecutive: return "consecutive";
    case AccessPattern::kStrided: return "strided";
    case AccessPattern::kIrregular: return "irregular";
  }
  return "?";
}

uint64_t DfgSummary::global_load_sites() const {
  return static_cast<uint64_t>(
      std::count_if(sites.begin(), sites.end(), [](const AccessSite& s) { return !s.is_store; }));
}
uint64_t DfgSummary::global_store_sites() const {
  return static_cast<uint64_t>(
      std::count_if(sites.begin(), sites.end(), [](const AccessSite& s) { return s.is_store; }));
}
uint64_t DfgSummary::burst_load_sites() const {
  return static_cast<uint64_t>(std::count_if(sites.begin(), sites.end(), [](const AccessSite& s) {
    return !s.is_store && !s.pipelined;
  }));
}
uint64_t DfgSummary::pipelined_load_sites() const {
  return static_cast<uint64_t>(std::count_if(sites.begin(), sites.end(), [](const AccessSite& s) {
    return !s.is_store && s.pipelined;
  }));
}

DfgSummary analyze(const kir::Kernel& kernel) {
  Census census;
  census.kernel = &kernel;
  for (const auto& local : kernel.locals) {
    census.summary.local_array_bytes += local.size * 4ull;
  }
  census.walk(kernel.body, /*in_loop=*/false);
  return census.summary;
}

// ---------------------------------------------------------------------------
// Area model
//
// Calibrated against the paper's Table III (vecadd / matmul / gauss / BFS)
// and Table II (backprop O0/O1/O2). Per-component costs are motivated by
// the AOC microarchitecture: a burst-coalesced LSU instantiates 32 load
// units (prefetch + reorder buffers in BRAM); a pipelined LSU is one unit;
// __local arrays replicate per access port.
// ---------------------------------------------------------------------------

namespace {

struct Cost {
  uint64_t alut, ff, bram, dsp;
};

// Kernel shell: DDR/host interface, dispatch logic.
constexpr Cost kBase{20'000, 52'000, 60, 0};
// Burst-coalesced load LSU per site (32 load units x ~{740 ALUT, 2.2k FF, 13 BRAM}).
constexpr Cost kBurstLoad{23'700, 70'500, 416, 0};
// Deeper prefetch FIFOs when the site sits in a kernel loop.
constexpr Cost kBurstLoadLoopExtra{7'200, 21'000, 210, 0};
// Pipelined load LSU (single unit).
constexpr Cost kPipelinedLoad{2'100, 6'400, 4, 0};
// Store unit.
constexpr Cost kStore{11'800, 39'000, 155, 0};
// Per-op datapath costs.
constexpr Cost kIntAlu{70, 120, 0, 0};
constexpr Cost kIntMul{260, 420, 0, 2};
constexpr Cost kIntDiv{2'900, 4'800, 2, 0};
constexpr Cost kFpAdd{820, 1'350, 1, 1};
constexpr Cost kFpMul{640, 1'100, 1, 1};
constexpr Cost kFpDiv{5'800, 9'500, 6, 0};
constexpr Cost kFpSqrt{4'300, 7'200, 5, 0};
constexpr Cost kFpMisc{240, 400, 0, 0};
// Loop control (counters, exit conditions, II controller).
constexpr Cost kLoop{650, 1'400, 2, 0};

void add(fpga::AreaReport& area, const Cost& cost, uint64_t count = 1) {
  area.aluts += cost.alut * count;
  area.ffs += cost.ff * count;
  area.brams += cost.bram * count;
  area.dsps += cost.dsp * count;
}

}  // namespace

std::vector<SynthRow> area_rows(const DfgSummary& dfg) {
  std::vector<SynthRow> rows;
  {
    SynthRow shell;
    shell.module = "shell";
    shell.detail = "DDR/host interface, dispatch";
    add(shell.area, kBase);
    rows.push_back(std::move(shell));
  }
  // Kernels with barriers keep several work-groups in flight across the
  // synchronization point, double-buffering every burst LSU (this is why
  // the barrier-heavy Rodinia kernels are the ones that exhaust BRAM).
  const double group_replication = dfg.has_barrier ? 2.2 : 1.0;
  for (const auto& site : dfg.sites) {
    SynthRow row;
    row.detail = to_string(site.pattern);
    if (site.in_loop) row.detail += ", in loop";
    // Address-generation depth: each index term adds pipeline registers and
    // coalescing-window storage across the 32 load units of a burst LSU.
    const uint64_t addr_terms = site.index_ops > 1 ? site.index_ops - 1 : 0;
    if (site.is_store) {
      row.module = "store-lsu " + site.source;
      add(row.area, kStore);
      row.area.brams += 12 * addr_terms;
      row.area.aluts += 400 * addr_terms;
      row.area.ffs += 1'300 * addr_terms;
    } else if (site.pipelined) {
      row.module = "pipelined-lsu " + site.source;
      add(row.area, kPipelinedLoad);
      row.area.aluts += 120 * addr_terms;
      row.area.ffs += 320 * addr_terms;
    } else {
      row.module = "burst-lsu " + site.source;
      fpga::AreaReport& lsu = row.area;
      add(lsu, kBurstLoad);
      lsu.brams += 40 * addr_terms;
      lsu.aluts += 2'300 * addr_terms;
      lsu.ffs += 6'400 * addr_terms;
      if (site.in_loop) add(lsu, kBurstLoadLoopExtra);
      lsu.brams = static_cast<uint64_t>(static_cast<double>(lsu.brams) * group_replication);
      lsu.aluts = static_cast<uint64_t>(static_cast<double>(lsu.aluts) * group_replication);
      lsu.ffs = static_cast<uint64_t>(static_cast<double>(lsu.ffs) * group_replication);
      if (dfg.has_barrier) row.detail += ", work-group replicated";
    }
    rows.push_back(std::move(row));
  }
  {
    SynthRow datapath;
    datapath.module = "datapath";
    datapath.detail = std::to_string(dfg.int_alu + dfg.int_mul + dfg.int_div) + " int, " +
                      std::to_string(dfg.fp_add + dfg.fp_mul + dfg.fp_div + dfg.fp_sqrt +
                                     dfg.fp_misc) +
                      " fp ops";
    add(datapath.area, kIntAlu, dfg.int_alu);
    add(datapath.area, kIntMul, dfg.int_mul);
    add(datapath.area, kIntDiv, dfg.int_div);
    add(datapath.area, kFpAdd, dfg.fp_add);
    add(datapath.area, kFpMul, dfg.fp_mul);
    add(datapath.area, kFpDiv, dfg.fp_div);
    add(datapath.area, kFpSqrt, dfg.fp_sqrt);
    add(datapath.area, kFpMisc, dfg.fp_misc);
    rows.push_back(std::move(datapath));
  }
  if (dfg.loops > 0) {
    SynthRow loops;
    loops.module = "loop-control";
    loops.detail = std::to_string(dfg.loops) + " loops";
    add(loops.area, kLoop, dfg.loops);
    rows.push_back(std::move(loops));
  }
  // __local arrays: M20K blocks replicated so every port gets private
  // access (AOC double-pumps, so two ports share one replica).
  if (dfg.local_array_bytes > 0) {
    const uint64_t blocks =
        std::max<uint64_t>(1, (dfg.local_array_bytes * 8 + 20'479) / 20'480);
    const uint64_t replication = std::max<uint64_t>(1, (dfg.local_ports + 1) / 2);
    SynthRow local;
    local.module = "local-mem";
    local.detail = std::to_string(dfg.local_array_bytes) + " B x " +
                   std::to_string(replication) + " banks, " + std::to_string(dfg.local_ports) +
                   " ports";
    local.area.brams += blocks * replication;
    local.area.aluts += 900 * dfg.local_ports;
    local.area.ffs += 1'500 * dfg.local_ports;
    rows.push_back(std::move(local));
  }
  return rows;
}

fpga::AreaReport estimate_area(const DfgSummary& dfg) {
  fpga::AreaReport area;
  for (const auto& row : area_rows(dfg)) area += row.area;
  return area;
}

double synthesis_hours(const fpga::AreaReport& area) {
  // Quartus compile time grows superlinearly with logic utilization; the
  // constants land backprop-O2-sized designs near the paper's 10.4 h and
  // vecadd-sized designs near an hour.
  const double logic = static_cast<double>(area.aluts);
  const double bram = static_cast<double>(area.brams);
  return 0.55 + logic / 120'000.0 + bram / 1'400.0 + (logic / 450'000.0) * (logic / 450'000.0);
}

double failed_attempt_hours(const fpga::AreaReport& area, const fpga::Board& board) {
  // Fitter failures abort during placement: a fraction of a full compile.
  const double over = board.utilization(area);
  return std::min(1.5, 0.9 + 0.2 * over);
}

double request_cost(const AccessSite& site) {
  // Cycles of memory-interface occupancy per dynamic request. Wide bursts
  // amortize consecutive accesses; the pipelined LSU trades area for
  // throughput on anything non-consecutive (paper §III-B).
  if (site.is_store) {
    switch (site.pattern) {
      case AccessPattern::kConsecutive: return 1.0 / 16.0;
      case AccessPattern::kStrided: return 1.0;
      case AccessPattern::kIrregular: return 2.0;
    }
  }
  if (!site.pipelined) {
    switch (site.pattern) {
      case AccessPattern::kConsecutive: return 1.0 / 16.0;
      case AccessPattern::kStrided: return 1.0;
      case AccessPattern::kIrregular: return 2.0;
    }
  }
  switch (site.pattern) {
    case AccessPattern::kConsecutive: return 1.0 / 4.0;
    case AccessPattern::kStrided: return 4.0;
    case AccessPattern::kIrregular: return 8.0;
  }
  return 1.0;
}

namespace {

// Shared report assembly over an already-built DFG census.
SynthReport build_report(const std::string& kernel, const DfgSummary& dfg,
                         const fpga::Board& board) {
  SynthReport report;
  report.kernel = kernel;
  report.board = board.name;
  report.rows = area_rows(dfg);
  for (const auto& row : report.rows) report.total += row.area;
  report.pipeline_depth = dfg.critical_path_latency + 18;  // iface + dispatch stages
  report.burst_load_sites = dfg.burst_load_sites();
  report.pipelined_load_sites = dfg.pipelined_load_sites();
  report.store_sites = dfg.global_store_sites();
  report.utilization = board.utilization(report.total);
  report.bottleneck = board.bottleneck_resource(report.total);
  report.fits = board.fits(report.total);
  if (report.fits) {
    report.verdict = "fits";
    report.synthesis_hours = synthesis_hours(report.total);
  } else {
    report.verdict = "Not enough " + report.bottleneck;
    report.synthesis_hours = failed_attempt_hours(report.total, board);
  }
  return report;
}

}  // namespace

SynthReport synth_report(const kir::Kernel& kernel, const fpga::Board& board) {
  SynthReport report = build_report(kernel.name, analyze(kernel), board);
  // Feature check overrides the fitter verdict (AOC rejects the kernel
  // before fitting): the area rows are still the modelled attempt.
  if (kernel.has_atomic() && board.heterogeneous_memory) {
    report.fits = false;
    report.verdict = "Atomics";
    report.synthesis_hours = failed_attempt_hours(report.total, board);
  }
  return report;
}

Result<HlsDesign> synthesize(const kir::Kernel& kernel, const fpga::Board& board,
                             const HlsOptions& options) {
  (void)options;
  // Feature check first (mirrors AOC rejecting the kernel before fitting).
  if (kernel.has_atomic() && board.heterogeneous_memory) {
    return Result<HlsDesign>(
        ErrorKind::kUnsupported,
        kernel.name + ": cannot synthesize 32-bit atomic functions against the " + board.name +
            " heterogeneous (HBM2) memory system (Atomics)");
  }

  HlsDesign design;
  design.kernel = kernel.name;
  design.dfg = analyze(kernel);
  design.report = build_report(kernel.name, design.dfg, board);
  design.area = design.report.total;
  design.pipeline_depth = design.report.pipeline_depth;

  if (!design.report.fits) {
    const double hours = design.report.synthesis_hours;
    std::ostringstream msg;
    msg << kernel.name << ": fitter failed after " << hours << " h: " << design.report.verdict
        << " (kernel needs " << design.area.brams << " BRAM blocks, " << board.name << " has "
        << board.capacity.brams << "; utilization "
        << static_cast<int>(design.report.utilization * 100.0) << "%)";
    return Result<HlsDesign>(ErrorKind::kResourceExceeded, msg.str());
  }

  design.synthesis_hours = design.report.synthesis_hours;
  return design;
}

}  // namespace fgpu::hls
