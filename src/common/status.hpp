// Lightweight Status / Result types used across the library.
//
// We avoid exceptions on hot paths (simulator ticks, schedulers) and use
// Status/Result for fallible API boundaries (compilation, synthesis,
// runtime object creation), in the spirit of the C++ Core Guidelines'
// advice to make error handling explicit and cheap.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace fgpu {

// Error category for a failed operation. The categories mirror the failure
// modes the paper reports: HLS synthesis failures (resource overflow,
// unsupported features) vs. runtime/compile errors.
enum class ErrorKind {
  kInvalidArgument,
  kNotFound,
  kUnsupported,       // feature not supported by a backend (e.g. atomics on HLS)
  kResourceExceeded,  // FPGA fitter failure ("Not enough BRAM")
  kCompileError,      // kernel compiler rejected the input
  kRuntimeError,      // execution-time failure
  kInternal,
};

inline const char* to_string(ErrorKind k) {
  switch (k) {
    case ErrorKind::kInvalidArgument: return "invalid-argument";
    case ErrorKind::kNotFound: return "not-found";
    case ErrorKind::kUnsupported: return "unsupported";
    case ErrorKind::kResourceExceeded: return "resource-exceeded";
    case ErrorKind::kCompileError: return "compile-error";
    case ErrorKind::kRuntimeError: return "runtime-error";
    case ErrorKind::kInternal: return "internal";
  }
  return "unknown";
}

class Status {
 public:
  Status() = default;  // OK
  Status(ErrorKind kind, std::string message)
      : error_(Error{kind, std::move(message)}) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return !error_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  ErrorKind kind() const {
    assert(error_.has_value());
    return error_->kind;
  }
  const std::string& message() const {
    static const std::string kEmpty;
    return error_ ? error_->message : kEmpty;
  }

  std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(fgpu::to_string(error_->kind)) + ": " + error_->message;
  }

 private:
  struct Error {
    ErrorKind kind;
    std::string message;
  };
  std::optional<Error> error_;
};

// Result<T>: either a value or a Status error. Minimal expected<T> stand-in.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    assert(!status_.is_ok() && "Result constructed from OK status");
  }
  Result(ErrorKind kind, std::string message)
      : status_(kind, std::move(message)) {}

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const Status& status() const { return status_; }
  T& value() {
    assert(is_ok());
    return *value_;
  }
  const T& value() const {
    assert(is_ok());
    return *value_;
  }
  T&& take() {
    assert(is_ok());
    return std::move(*value_);
  }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  const T& operator*() const { return value(); }
  T& operator*() { return value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace fgpu
