// Bit-manipulation helpers shared by the ISA encoder/decoder, caches and
// the simulator datapath.
#pragma once

#include <bit>
#include <cstdint>

namespace fgpu {

// Extracts bits [lo, lo+len) of `value`.
constexpr uint32_t bits(uint32_t value, unsigned lo, unsigned len) {
  return (value >> lo) & ((len >= 32) ? 0xFFFFFFFFu : ((1u << len) - 1u));
}

// Returns `value` with `field`'s low `len` bits placed at bit `lo`.
constexpr uint32_t place(uint32_t field, unsigned lo, unsigned len) {
  return (field & ((len >= 32) ? 0xFFFFFFFFu : ((1u << len) - 1u))) << lo;
}

// Sign-extends the low `width` bits of `value`.
constexpr int32_t sign_extend(uint32_t value, unsigned width) {
  const uint32_t m = 1u << (width - 1);
  return static_cast<int32_t>((value ^ m) - m);
}

constexpr bool is_pow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr unsigned log2_floor(uint64_t v) {
  return v == 0 ? 0 : 63 - static_cast<unsigned>(std::countl_zero(v));
}

constexpr unsigned log2_ceil(uint64_t v) {
  return v <= 1 ? 0 : log2_floor(v - 1) + 1;
}

constexpr uint64_t align_up(uint64_t v, uint64_t a) {
  return (v + a - 1) & ~(a - 1);
}

// Bit-casts between float and its IEEE-754 binary32 representation; the
// simulator register file stores all lanes as uint32_t.
inline uint32_t f2u(float f) { return std::bit_cast<uint32_t>(f); }
inline float u2f(uint32_t u) { return std::bit_cast<float>(u); }

}  // namespace fgpu
