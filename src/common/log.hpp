// Minimal leveled logger. Simulation components log through this so tests
// can silence output and benches can enable trace-level compilation-flow
// dumps (used to reproduce the paper's Fig. 1/2/3/5 pipeline diagrams as
// textual traces).
#pragma once

#include <cstdio>
#include <string>

namespace fgpu {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Log {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kWarn;
    return lvl;
  }

  static bool enabled(LogLevel l) { return static_cast<int>(l) >= static_cast<int>(level()); }

  template <typename... Args>
  static void write(LogLevel l, const char* fmt, Args&&... args) {
    if (!enabled(l)) return;
    std::fprintf(stderr, "[%s] ", prefix(l));
    if constexpr (sizeof...(Args) == 0) {
      std::fputs(fmt, stderr);
    } else {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-security"
      std::fprintf(stderr, fmt, std::forward<Args>(args)...);
#pragma GCC diagnostic pop
    }
    std::fputc('\n', stderr);
  }

 private:
  static const char* prefix(LogLevel l) {
    switch (l) {
      case LogLevel::kTrace: return "trace";
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      default: return "?";
    }
  }
};

#define FGPU_LOG(LVL, ...) ::fgpu::Log::write(::fgpu::LogLevel::LVL, __VA_ARGS__)

}  // namespace fgpu
