// Deterministic PRNG (xoshiro128**) for workload generation. Benchmarks and
// property tests must be reproducible across runs and platforms, so we do
// not use std::mt19937's distribution functions (distribution output is
// implementation-defined); we implement our own uniform helpers.
#pragma once

#include <cstdint>

namespace fgpu {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding to fill the state.
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = static_cast<uint32_t>((z ^ (z >> 31)) & 0xFFFFFFFFu);
    }
  }

  uint32_t next_u32() {
    const uint32_t result = rotl(state_[1] * 5, 7) * 9;
    const uint32_t t = state_[1] << 9;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 11);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint32_t next_below(uint32_t bound) { return next_u32() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int32_t next_range(int32_t lo, int32_t hi) {
    return lo + static_cast<int32_t>(next_below(static_cast<uint32_t>(hi - lo + 1)));
  }

  // Uniform float in [0, 1).
  float next_float() { return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f); }

  // Uniform float in [lo, hi).
  float next_float(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  bool next_bool() { return (next_u32() & 1u) != 0; }

 private:
  static uint32_t rotl(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
  uint32_t state_[4];
};

}  // namespace fgpu
