#include "fpga/board.hpp"

#include <algorithm>
#include <cstdio>

namespace fgpu::fpga {

std::string AreaReport::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "ALUTs=%llu FFs=%llu BRAMs=%llu DSPs=%llu",
                static_cast<unsigned long long>(aluts), static_cast<unsigned long long>(ffs),
                static_cast<unsigned long long>(brams), static_cast<unsigned long long>(dsps));
  return buf;
}

double Board::utilization(const AreaReport& area) const {
  const double u_alut = static_cast<double>(area.aluts) / static_cast<double>(capacity.aluts);
  const double u_ff = static_cast<double>(area.ffs) / static_cast<double>(capacity.ffs);
  const double u_bram = static_cast<double>(area.brams) / static_cast<double>(capacity.brams);
  const double u_dsp = static_cast<double>(area.dsps) / static_cast<double>(capacity.dsps);
  return std::max({u_alut, u_ff, u_bram, u_dsp});
}

std::string Board::bottleneck_resource(const AreaReport& area) const {
  const double u_alut = static_cast<double>(area.aluts) / static_cast<double>(capacity.aluts);
  const double u_ff = static_cast<double>(area.ffs) / static_cast<double>(capacity.ffs);
  const double u_bram = static_cast<double>(area.brams) / static_cast<double>(capacity.brams);
  const double u_dsp = static_cast<double>(area.dsps) / static_cast<double>(capacity.dsps);
  const double worst = std::max({u_alut, u_ff, u_bram, u_dsp});
  if (worst == u_bram) return "BRAM";
  if (worst == u_alut) return "ALUT";
  if (worst == u_ff) return "FF";
  return "DSP";
}

const Board& stratix10_sx2800() {
  static const Board board = [] {
    Board b;
    b.name = "Stratix10-SX2800";
    // 933,120 ALMs; each ALM provides two ALUTs and four FFs.
    b.capacity = AreaReport{933'120ull * 2, 933'120ull * 4, 11'721, 5'760};
    b.dram = mem::DramConfig::ddr4();
    b.heterogeneous_memory = false;
    return b;
  }();
  return board;
}

const Board& stratix10_mx2100() {
  static const Board board = [] {
    Board b;
    b.name = "Stratix10-MX2100";
    b.capacity = AreaReport{702'720ull * 2, 702'720ull * 4, 6'847, 3'960};
    b.dram = mem::DramConfig::hbm2();
    b.heterogeneous_memory = true;
    return b;
  }();
  return board;
}

}  // namespace fgpu::fpga
