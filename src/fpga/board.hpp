// FPGA board database and area-report types.
//
// The two boards are the paper's evaluation targets (§III): the Intel
// Stratix 10 SX2800 (DDR4 off-chip memory, used for Vortex) and the
// Stratix 10 MX2100 (HBM2, used for the Intel FPGA SDK flow). Capacities
// are the public device numbers; the MX2100's 6,847 M20K blocks reproduce
// the paper's utilization percentages exactly (12,898 BRAM = 188%,
// 9,882 = 144%, 5,694 = 83%).
#pragma once

#include <cstdint>
#include <string>

#include "mem/dram.hpp"

namespace fgpu::fpga {

struct AreaReport {
  uint64_t aluts = 0;
  uint64_t ffs = 0;
  uint64_t brams = 0;  // M20K blocks
  uint64_t dsps = 0;

  AreaReport& operator+=(const AreaReport& other) {
    aluts += other.aluts;
    ffs += other.ffs;
    brams += other.brams;
    dsps += other.dsps;
    return *this;
  }
  friend AreaReport operator+(AreaReport a, const AreaReport& b) { return a += b; }
  friend AreaReport operator*(AreaReport a, uint64_t k) {
    a.aluts *= k;
    a.ffs *= k;
    a.brams *= k;
    a.dsps *= k;
    return a;
  }

  std::string to_string() const;
};

struct Board {
  std::string name;
  AreaReport capacity;
  mem::DramConfig dram;
  // HBM2 boards have a heterogeneous memory system; the paper reports that
  // the Intel SDK fails to synthesize global atomics against it (§III-A,
  // hybridsort).
  bool heterogeneous_memory = false;
  double hls_kernel_clock_mhz = 300.0;  // typical AOC kernel Fmax
  double soft_gpu_clock_mhz = 200.0;    // "peak clock of over 200 MHz" (§II-C)

  double utilization(const AreaReport& area) const;          // worst resource, 1.0 == full
  std::string bottleneck_resource(const AreaReport& area) const;
  bool fits(const AreaReport& area) const { return utilization(area) <= 1.0; }
};

// Intel Stratix 10 SX 2800: 933,120 ALMs, 11,721 M20Ks, 5,760 DSPs, DDR4.
const Board& stratix10_sx2800();
// Intel Stratix 10 MX 2100: 702,720 ALMs, 6,847 M20Ks, 3,960 DSPs, HBM2.
const Board& stratix10_mx2100();

}  // namespace fgpu::fpga
