#include "vortex/cluster.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace fgpu::vortex {
namespace {

void add_histogram(std::vector<uint64_t>& into, const std::vector<uint64_t>& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

void add_stats(mem::MemStats& into, const mem::MemStats& from) {
  into.reads += from.reads;
  into.writes += from.writes;
  into.hits += from.hits;
  into.misses += from.misses;
  into.evictions += from.evictions;
  into.writebacks += from.writebacks;
  into.mshr_merges += from.mshr_merges;
  into.stall_rejects += from.stall_rejects;
}

}  // namespace

Cluster::Cluster(const Config& config, mem::MainMemory& gmem, EcallHandler ecall_handler)
    : config_(config), gmem_(gmem), dram_(config.dram), l2_(config.l2, &dram_), noc_(&l2_) {
  l2_.set_trace_id(0);
  dram_.set_trace_id(0);
  if (config_.memprof) {
    l2_.enable_memprof();
    dram_.enable_memprof();
  }
  cores_.reserve(config_.cores);
  stall_track_names_.reserve(config_.cores);
  for (uint32_t c = 0; c < config_.cores; ++c) {
    cores_.push_back(std::make_unique<Core>(config_, c, gmem_, *noc_.new_port(), *noc_.new_port(),
                                            ecall_handler));
    cores_.back()->l1d().set_trace_id(c);
    cores_.back()->l1i().set_trace_id(c);
    stall_track_names_.push_back("stalls.c" + std::to_string(c));
  }
}

void Cluster::hard_reset() {
  cycle_ = 0;
  l2_.reset();
  dram_.reset();
  noc_.reset();
  for (auto& core : cores_) core->hard_reset();
}

void Cluster::reset(uint32_t entry_pc) {
  cycle_ = 0;
  l2_.flush();
  l2_.reset_stats();
  dram_.reset_stats();
  for (auto& core : cores_) core->reset(entry_pc);
}

bool Cluster::busy() const {
  for (const auto& core : cores_) {
    if (core->busy()) return true;
  }
  return false;
}

void Cluster::tick() {
  if constexpr (trace::kEnabled) {
    if ((cycle_ & (trace::kCounterBucketCycles - 1)) == 0) trace_counters();
  }
  // Clear the per-cycle progress flags before anything can deliver a
  // response (memory responses count as progress for idle skipping).
  for (auto& core : cores_) core->begin_tick();
  // Bottom-up so responses ripple one level per cycle.
  dram_.tick(cycle_);
  l2_.tick(cycle_);
  for (auto& core : cores_) core->tick_caches(cycle_);
  for (auto& core : cores_) core->tick_logic(cycle_);
  ++cycle_;
}

// Event-driven idle skipping (Config::idle_skip). Called after a tick: if
// no core made progress on that cycle, the machine's state is frozen until
// the earliest self-scheduled event anywhere in the hierarchy — every
// intervening cycle would replay the same issue outcome. Jump there,
// letting each core bulk-attribute the skipped cycles to the stall bucket
// it charged on the base cycle (preserving PerfCounters and the per-PC
// profile's exact-sum contract to the cycle; see tests/test_fastpath.cpp).
void Cluster::try_idle_skip() {
  for (const auto& core : cores_) {
    if (core->progressed()) return;
  }
  // `cycle_` was already advanced past the stalled cycle; components were
  // last ticked at cycle_ - 1 and their queries are relative to that.
  const uint64_t base = cycle_ - 1;
  uint64_t wake = dram_.next_event_cycle();
  wake = std::min(wake, l2_.next_event_cycle());
  for (const auto& core : cores_) {
    wake = std::min(wake, core->l1d().next_event_cycle());
    wake = std::min(wake, core->l1i().next_event_cycle());
    wake = std::min(wake, core->next_wake_cycle(base));
  }
  // No known event (e.g. a barrier deadlock): keep per-cycle ticking so the
  // max_cycles guard fires exactly as before.
  if (wake == mem::kNoEvent) return;
  wake = std::min(wake, config_.max_cycles);
  if (wake <= cycle_) return;
  for (auto& core : cores_) core->fast_forward(cycle_, wake - cycle_);
  cycle_ = wake;
}

// Per-bucket stall-attribution samples: one cumulative counter track per
// core, broken down by the issue-stage bubble reasons behind the paper's
// Fig. 7 analysis. Counter values are running totals; the slope in the
// trace viewer is the per-bucket stall rate.
void Cluster::trace_counters() const {
  trace::Sink* sink = trace::current();
  if (sink == nullptr) return;
  for (uint32_t c = 0; c < num_cores(); ++c) {
    const PerfCounters& perf = cores_[c]->perf();
    const uint64_t total = perf.stall_scoreboard + perf.stall_lsu + perf.stall_fu +
                           perf.stall_ibuffer + perf.stall_barrier + perf.idle_cycles;
    if (total == 0 && cycle_ != 0) continue;
    // Interned: the sink may outlive this cluster (the suite runner exports
    // after the devices are destroyed).
    sink->counter(sink->intern(stall_track_names_[c]), c, cycle_,
                  {{"scoreboard", perf.stall_scoreboard},
                   {"lsu", perf.stall_lsu},
                   {"fu", perf.stall_fu},
                   {"ibuffer", perf.stall_ibuffer},
                   {"barrier", perf.stall_barrier},
                   {"idle", perf.idle_cycles}});
  }
}

ClusterStats Cluster::collect_stats() const {
  ClusterStats stats;
  for (const auto& core : cores_) {
    PerfCounters perf = core->perf();
    perf.cycles = cycle_;
    stats.perf.accumulate(perf);
    add_stats(stats.l1d, core->l1d().stats());
    add_stats(stats.l1i, core->l1i().stats());
  }
  add_stats(stats.l2, l2_.stats());
  add_stats(stats.dram, dram_.stats());
  stats.dram_bytes = dram_.bytes_read() + dram_.bytes_written();
  return stats;
}

mem::MemHierarchyProfile Cluster::collect_mem_profile() const {
  mem::MemHierarchyProfile profile;
  if (!config_.memprof) return profile;
  profile.enabled = true;
  // Open time-weighted intervals (MSHR occupancy, DRAM queue depth) close
  // at the final simulated cycle.
  for (const auto& core : cores_) {
    profile.l1d.merge(core->l1d().memprof_snapshot(cycle_));
    profile.l1i.merge(core->l1i().memprof_snapshot(cycle_));
  }
  profile.l2 = l2_.memprof_snapshot(cycle_);
  profile.dram = dram_.memprof_snapshot(cycle_);
  return profile;
}

PcProfile Cluster::collect_profile() const {
  PcProfile profile;
  if (!config_.profile) return profile;
  for (const auto& core : cores_) {
    profile.merge(core->profile());
    add_histogram(profile.l1d_set_conflicts, core->l1d().set_conflicts());
  }
  profile.l2_set_conflicts = l2_.set_conflicts();
  return profile;
}

Result<ClusterStats> Cluster::run(uint32_t entry_pc) {
  reset(entry_pc);
  // Idle skipping is bypassed while a trace sink is active: the per-cycle
  // counter tracks sample on a cycle grid the skip would jump over.
  const bool idle_skip = config_.idle_skip && trace::current() == nullptr;
  while (busy()) {
    tick();
    if (idle_skip) try_idle_skip();
    if (cycle_ >= config_.max_cycles) {
      return Result<ClusterStats>(ErrorKind::kRuntimeError,
                                  "kernel exceeded max_cycles=" + std::to_string(config_.max_cycles) +
                                      " (possible deadlock or runaway loop)");
    }
  }
  return collect_stats();
}

}  // namespace fgpu::vortex
