#include "vortex/cluster.hpp"

namespace fgpu::vortex {
namespace {

void add_stats(mem::MemStats& into, const mem::MemStats& from) {
  into.reads += from.reads;
  into.writes += from.writes;
  into.hits += from.hits;
  into.misses += from.misses;
  into.evictions += from.evictions;
  into.writebacks += from.writebacks;
  into.mshr_merges += from.mshr_merges;
  into.stall_rejects += from.stall_rejects;
}

}  // namespace

Cluster::Cluster(const Config& config, mem::MainMemory& gmem, EcallHandler ecall_handler)
    : config_(config), gmem_(gmem), dram_(config.dram), l2_(config.l2, &dram_), noc_(&l2_) {
  cores_.reserve(config_.cores);
  for (uint32_t c = 0; c < config_.cores; ++c) {
    cores_.push_back(std::make_unique<Core>(config_, c, gmem_, *noc_.new_port(), *noc_.new_port(),
                                            ecall_handler));
  }
}

void Cluster::reset(uint32_t entry_pc) {
  cycle_ = 0;
  l2_.flush();
  l2_.reset_stats();
  dram_.reset_stats();
  for (auto& core : cores_) core->reset(entry_pc);
}

bool Cluster::busy() const {
  for (const auto& core : cores_) {
    if (core->busy()) return true;
  }
  return false;
}

void Cluster::tick() {
  // Bottom-up so responses ripple one level per cycle.
  dram_.tick(cycle_);
  l2_.tick(cycle_);
  for (auto& core : cores_) core->tick_caches(cycle_);
  for (auto& core : cores_) core->tick_logic(cycle_);
  ++cycle_;
}

ClusterStats Cluster::collect_stats() const {
  ClusterStats stats;
  for (const auto& core : cores_) {
    PerfCounters perf = core->perf();
    perf.cycles = cycle_;
    stats.perf.accumulate(perf);
    add_stats(stats.l1d, core->l1d().stats());
    add_stats(stats.l1i, core->l1i().stats());
  }
  add_stats(stats.l2, l2_.stats());
  add_stats(stats.dram, dram_.stats());
  stats.dram_bytes = dram_.bytes_read() + dram_.bytes_written();
  return stats;
}

Result<ClusterStats> Cluster::run(uint32_t entry_pc) {
  reset(entry_pc);
  while (busy()) {
    tick();
    if (cycle_ >= config_.max_cycles) {
      return Result<ClusterStats>(ErrorKind::kRuntimeError,
                                  "kernel exceeded max_cycles=" + std::to_string(config_.max_cycles) +
                                      " (possible deadlock or runaway loop)");
    }
  }
  return collect_stats();
}

}  // namespace fgpu::vortex
