// Per-PC cycle profiler for the soft GPU (the "where", where PerfCounters
// is the "how much"): every issue-stage cycle — issued, or stalled with the
// Fig. 7 reason taxonomy — is attributed to the PC of the issuing/blocking
// warp. Combined with the compiler's PC -> KIR source map this explains
// *which* load, loop, or barrier produced each stall bucket, the missing
// half of the paper's LSU-stall narrative.
//
// Collection is off by default (Config::profile) and the tables use only
// ordered containers, so exported profiles inherit the stats layer's
// byte-identical-across---jobs determinism contract (OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vasm/program.hpp"
#include "vortex/perf.hpp"

namespace fgpu::vortex {

// Issue-stage cycles charged to one PC. The stall buckets mirror
// PerfCounters exactly: for each bucket, the sum over all PCs equals the
// aggregate counter (idle cycles have no PC and stay core-level only).
struct PcStat {
  uint64_t issued = 0;
  uint64_t stall_scoreboard = 0;
  uint64_t stall_lsu = 0;
  uint64_t stall_fu = 0;
  uint64_t stall_ibuffer = 0;
  uint64_t stall_barrier = 0;

  uint64_t total_stalls() const {
    return stall_scoreboard + stall_lsu + stall_fu + stall_ibuffer + stall_barrier;
  }
  // Fraction of this PC's issue-stage cycles that issued (a per-PC IPC).
  double issue_rate() const {
    const uint64_t total = issued + total_stalls();
    return total == 0 ? 0.0 : static_cast<double>(issued) / static_cast<double>(total);
  }

  PcStat& operator+=(const PcStat& other) {
    issued += other.issued;
    stall_scoreboard += other.stall_scoreboard;
    stall_lsu += other.stall_lsu;
    stall_fu += other.stall_fu;
    stall_ibuffer += other.stall_ibuffer;
    stall_barrier += other.stall_barrier;
    return *this;
  }
  bool operator==(const PcStat&) const = default;
};

// One sample of the warp-occupancy timeline: how the core's warp slots were
// spent at the sampled cycle. Summed across cores (they tick in lockstep,
// so sample grids align) and across launches of the same kernel.
struct OccupancySample {
  uint64_t cycle = 0;    // sample-grid cycle (i * interval)
  uint32_t ready = 0;    // active, decoded instruction buffered, not barred
  uint32_t blocked = 0;  // active but at a barrier or fetch-bound
  uint32_t idle = 0;     // warp slot inactive
};

// Profile of one launch (per core while collecting, merged across cores by
// the cluster, then across launches by the suite).
struct PcProfile {
  bool enabled = false;
  uint32_t occupancy_interval = 0;  // cycles between occupancy samples
  std::map<uint32_t, PcStat> by_pc;  // ordered: deterministic export
  std::vector<OccupancySample> occupancy;
  // Eviction counts per cache set (l1d summed across cores).
  std::vector<uint64_t> l1d_set_conflicts;
  std::vector<uint64_t> l2_set_conflicts;

  // Element-wise accumulation (PCs summed; occupancy and conflict
  // histograms added index-by-index).
  void merge(const PcProfile& other);

  // Sums of the per-PC buckets — equals the aggregate PerfCounters stall
  // totals by construction (asserted by tests/test_profile.cpp).
  PcStat totals() const;
};

// Renders `program` with per-PC cycle/stall/IPC columns and source-map
// provenance interleaved (vasm::Program::disassemble annotated mode).
std::string annotated_disassembly(const vasm::Program& program, const vasm::SourceMap& source_map,
                                  const PcProfile& profile);

// Flat-text hot-spot report: top `top_k` PCs by stall cycles, with the
// dominant stall reason, the decoded instruction, and KIR provenance.
std::string hotspot_report(const vasm::Program& program, const vasm::SourceMap& source_map,
                           const PcProfile& profile, size_t top_k);

}  // namespace fgpu::vortex
