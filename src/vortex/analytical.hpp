// First-order analytical performance model for the soft GPU — the research
// direction the paper explicitly proposes in §IV-A ("a valuable opportunity
// exists for research aimed at minimizing or circumventing the exploration
// space by ... proposing an analytical model for Vortex's performance").
//
// The model predicts kernel cycles for a (C, W, T) configuration from a
// one-time workload profile (gathered by running the reference interpreter
// with counting hooks — no cycle-level simulation), as the maximum of three
// bottlenecks:
//
//   issue  — one warp-instruction per cycle per core; T lanes amortize the
//            per-item instruction count,
//   memory — LSU line-request drain (one per cycle per core), with
//            consecutive accesses amortized across a 16-byte line and a
//            MSHR-saturation penalty at high W*T (the Fig. 7 effect),
//   dram   — cluster-wide channel bandwidth: the lines that miss both cache
//            levels drain at channels * requests_per_channel lines/cycle,
//   latency— with few warps in flight, per-warp serial latency dominates.
//
// Cache geometry enters through the workload footprint (KernelProfile::
// footprint_bytes): a first-order compulsory + capacity split decides what
// fraction of line requests miss L1 (per-core working set vs l1d.size_bytes)
// and, of those, what fraction miss the shared L2 (total footprint vs
// l2.size_bytes) and pay DRAM latency/bandwidth. This makes the L1/L2-size
// and DRAM-channel axes of a design-space sweep prunable analytically (the
// fgpu.dse.v1 funnel, see suite/dse.hpp) — not just (C, W, T).
//
// It is intentionally cheap (microseconds per configuration) so a design-
// space sweep over thousands of configurations costs less than one
// cycle-level simulation.
#pragma once

#include "common/status.hpp"
#include "kir/interp.hpp"
#include "kir/kir.hpp"
#include "vortex/config.hpp"

namespace fgpu::vortex {

// Configuration-independent workload characteristics of one kernel launch.
struct KernelProfile {
  uint64_t items = 0;              // total work items
  double ops_per_item = 0.0;       // dynamic KIR operations per item
  double loads_per_item = 0.0;     // global loads per item
  double stores_per_item = 0.0;    // global stores per item
  double local_accesses_per_item = 0.0;
  double consecutive_fraction = 1.0;  // of global accesses (coalescable)
  bool uses_barriers = false;
  // Total bytes of the launch's buffer arguments — the first-order global
  // working set behind the cache-geometry terms of predict_cycles. 0 (the
  // default, e.g. for hand-built profiles) selects the legacy streaming
  // assumption: every line request is a compulsory DRAM fill, so cache
  // sizes drop out of the prediction.
  uint64_t footprint_bytes = 0;
};

// Profiles a kernel launch by running the reference interpreter once with
// counting hooks. `args` are interpreter arguments over scratch copies of
// the launch buffers (mutated during profiling).
Result<KernelProfile> profile_kernel(const kir::Kernel& kernel,
                                     const std::vector<kir::KernelArg>& args,
                                     const kir::NDRange& ndrange);

struct Prediction {
  double cycles = 0.0;
  double issue_bound = 0.0;
  double memory_bound = 0.0;
  double latency_bound = 0.0;
  // Cluster-wide DRAM channel bandwidth bound (lines that miss both cache
  // levels over channels * requests_per_channel lines per cycle).
  double dram_bound = 0.0;
  double overhead = 0.0;
  // "issue" | "memory" | "dram" | "latency" — the binding bound above.
  const char* bottleneck = "";
};

// Predicts kernel cycles on `config` from a profile.
Prediction predict_cycles(const KernelProfile& profile, const Config& config);

}  // namespace fgpu::vortex
