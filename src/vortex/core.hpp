// One SIMT core of the soft GPU: the six-stage in-order pipeline of the
// paper's Fig. 4 (schedule, fetch, decode, issue, execute, commit) modelled
// at cycle level, SimX-style: instructions execute functionally at issue,
// while timing (scoreboard occupancy, FU latency, LSU/cache round trips,
// barriers, IPDOM divergence) is simulated per cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "arch/isa.hpp"
#include "mem/cache.hpp"
#include "mem/memory.hpp"
#include "vortex/config.hpp"
#include "vortex/perf.hpp"
#include "vortex/profile.hpp"

namespace fgpu::vortex {

// Host upcall for ECALL (used by the runtime to implement OpenCL printf,
// mirroring the "communication function" challenge in paper §IV-A).
struct EcallRequest {
  uint32_t core_id = 0;
  uint32_t warp_id = 0;
  uint32_t lane = 0;
  uint32_t function = 0;  // a7
  uint32_t arg0 = 0;      // a0
};
using EcallHandler = std::function<void(const EcallRequest&, mem::MainMemory&)>;

class Core {
 public:
  // `l2_data` / `l2_inst` are distinct interconnect endpoints so that data
  // and instruction responses route back to the right L1.
  Core(const Config& config, uint32_t core_id, mem::MainMemory& gmem, mem::MemPort& l2_data,
       mem::MemPort& l2_inst, EcallHandler ecall_handler);

  // Resets all warps; warp 0 starts at `entry_pc` with one active thread
  // (the Vortex boot convention: the startup stub then TMCs/WSPAWNs).
  void reset(uint32_t entry_pc);

  // Ticks the core-internal caches (called by the cluster before logic()).
  void tick_caches(uint64_t cycle);
  // One cycle of pipeline logic: writeback, issue, LSU drain, fetch.
  void tick_logic(uint64_t cycle);

  bool busy() const;

  const PerfCounters& perf() const { return perf_; }
  PerfCounters& perf() { return perf_; }
  // Per-PC issue/stall attribution + occupancy timeline; empty unless
  // Config::profile is set.
  const PcProfile& profile() const { return profile_; }
  mem::Cache& l1d() { return l1d_; }
  mem::Cache& l1i() { return l1i_; }
  mem::MainMemory& local_mem() { return local_mem_; }
  uint32_t id() const { return core_id_; }

  // Debug access for tests.
  uint32_t xreg(uint32_t warp, uint32_t lane, uint32_t index) const;
  uint32_t freg_bits(uint32_t warp, uint32_t lane, uint32_t index) const;
  bool warp_active(uint32_t warp) const { return warps_[warp].active; }
  uint64_t warp_tmask(uint32_t warp) const { return warps_[warp].tmask; }

 private:
  struct IpdomEntry {
    enum Kind : uint8_t { kUniform, kElse, kRestore };
    Kind kind;
    uint64_t mask;
    uint32_t pc;
  };

  struct FetchSlot {
    arch::Instr instr;
    uint32_t pc;
  };

  struct Warp {
    bool active = false;
    uint32_t pc = 0;
    uint64_t tmask = 0;
    std::vector<IpdomEntry> ipdom;
    std::deque<FetchSlot> ibuffer;
    bool fetch_pending = false;
    uint32_t fetch_pc = 0;
    uint32_t next_fetch_pc = 0;
    uint64_t generation = 0;  // bumped on redirects to drop stale fetches
    bool at_barrier = false;
    uint32_t barrier_id = 0;
    uint32_t busy_x = 0;  // scoreboard bitmasks
    uint32_t busy_f = 0;
  };

  // A memory instruction in flight in the load-store unit.
  struct LsuEntry {
    bool valid = false;
    uint32_t warp = 0;
    bool is_write = false;
    bool has_rd = false;
    bool writes_float = false;
    uint8_t rd = 0;
    std::vector<uint32_t> lines_pending;  // line addresses not yet sent
    uint32_t outstanding = 0;             // responses still expected
  };

  // Deferred scoreboard release (register values are committed at issue).
  struct Completion {
    uint64_t ready_cycle;
    uint32_t warp;
    uint8_t rd;
    bool is_float;
  };

  uint32_t& xr(uint32_t warp, uint32_t lane, uint32_t index) {
    return xregs_[(warp * config_.threads + lane) * 32 + index];
  }
  uint32_t& fr(uint32_t warp, uint32_t lane, uint32_t index) {
    return fregs_[(warp * config_.threads + lane) * 32 + index];
  }

  void do_writeback(uint64_t cycle);
  void do_issue(uint64_t cycle);
  void do_lsu(uint64_t cycle);
  void do_fetch(uint64_t cycle);

  // Returns false if the instruction cannot issue this cycle (structural or
  // data hazard); sets *stall_reason for attribution.
  bool can_issue(const Warp& warp, const arch::Instr& instr, uint64_t cycle, int* stall_reason);
  void execute(uint32_t warp_id, const FetchSlot& slot, uint64_t cycle);
  void execute_memory(uint32_t warp_id, const arch::Instr& instr, uint64_t cycle);
  void redirect(Warp& warp, uint32_t new_pc);
  uint32_t first_active_lane(uint64_t mask) const;
  uint32_t read_csr(uint32_t csr, uint32_t warp_id, uint32_t lane, uint64_t cycle) const;
  void barrier_arrive(uint32_t warp_id, uint32_t id, uint32_t count, uint64_t cycle);

  bool is_local_addr(uint32_t addr) const {
    return addr >= arch::kLocalBase && addr < arch::kLocalBase + arch::kLocalSize;
  }

  const Config& config_;
  uint32_t core_id_;
  mem::MainMemory& gmem_;
  mem::MainMemory local_mem_;  // per-core OpenCL __local scratchpad
  mem::Cache l1d_;
  mem::Cache l1i_;
  EcallHandler ecall_handler_;

  std::vector<Warp> warps_;
  std::vector<uint32_t> xregs_;  // [warp][thread][32]
  std::vector<uint32_t> fregs_;

  std::deque<Completion> completions_;
  std::vector<LsuEntry> lsu_queue_;
  uint64_t next_mem_id_ = 1;
  // L1D response routing: id -> (lsu index generation). We key by a unique
  // id per line request and keep a side table.
  std::vector<std::pair<uint64_t, size_t>> lsu_inflight_;  // (req id, entry slot)

  // Fetch response routing.
  struct FetchReq {
    uint32_t warp;
    uint32_t pc;
    uint64_t generation;
  };
  std::vector<std::pair<uint64_t, FetchReq>> fetch_inflight_;

  // Per-FU readiness (structural hazards for non-pipelined units).
  uint64_t fu_ready_[8] = {0};

  // Barrier bookkeeping: id -> warps arrived.
  std::vector<uint32_t> barrier_arrived_;
  std::vector<uint32_t> barrier_expected_;

  uint32_t issue_rr_ = 0;  // round-robin cursors
  uint32_t fetch_rr_ = 0;
  uint64_t instret_ = 0;

  PerfCounters perf_;
  PcProfile profile_;

  void sample_occupancy(uint64_t cycle);
};

}  // namespace fgpu::vortex
