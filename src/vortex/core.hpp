// One SIMT core of the soft GPU: the six-stage in-order pipeline of the
// paper's Fig. 4 (schedule, fetch, decode, issue, execute, commit) modelled
// at cycle level, SimX-style: instructions execute functionally at issue,
// while timing (scoreboard occupancy, FU latency, LSU/cache round trips,
// barriers, IPDOM divergence) is simulated per cycle.
//
// Host-throughput fast path (cycle counts are unaffected, see
// EXPERIMENTS.md "Fast-forward methodology"):
//  * a per-core decode cache (PC -> DecodedInstr) so straight-line refetches
//    skip arch::decode and the issue stage reuses precomputed scoreboard
//    masks instead of re-deriving them from the instruction format;
//  * fixed-capacity ring ibuffers (no per-warp deque allocation churn);
//  * in-flight fetch/LSU responses keyed by request id (warp / queue slot
//    encoded in the low bits) instead of linear side-table scans;
//  * event bookkeeping (next_wake_cycle, progressed) that lets the cluster
//    fast-forward through cycles where no core can make progress.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "arch/isa.hpp"
#include "mem/cache.hpp"
#include "mem/memory.hpp"
#include "vortex/config.hpp"
#include "vortex/perf.hpp"
#include "vortex/profile.hpp"

namespace fgpu::vortex {

// Host upcall for ECALL (used by the runtime to implement OpenCL printf,
// mirroring the "communication function" challenge in paper §IV-A).
struct EcallRequest {
  uint32_t core_id = 0;
  uint32_t warp_id = 0;
  uint32_t lane = 0;
  uint32_t function = 0;  // a7
  uint32_t arg0 = 0;      // a0
};
using EcallHandler = std::function<void(const EcallRequest&, mem::MainMemory&)>;

// "No pending event" sentinel for next-wake-up queries (matches
// mem::kNoEvent; duplicated to keep the header dependency-light).
inline constexpr uint64_t kNoWake = ~0ull;

class Core {
 public:
  // `l2_data` / `l2_inst` are distinct interconnect endpoints so that data
  // and instruction responses route back to the right L1.
  Core(const Config& config, uint32_t core_id, mem::MainMemory& gmem, mem::MemPort& l2_data,
       mem::MemPort& l2_inst, EcallHandler ecall_handler);

  // Resets all warps; warp 0 starts at `entry_pc` with one active thread
  // (the Vortex boot convention: the startup stub then TMCs/WSPAWNs).
  // Also invalidates the decode cache (the kernel-launch boundary: the
  // runtime rewrites the code region before each run).
  void reset(uint32_t entry_pc);

  // Full return to construction-time state (device-reuse contract; DESIGN.md
  // "Device lifecycle"): everything reset() does, plus the deep L1 state the
  // per-launch path leaves behind (pending responses, MSHRs, id counters)
  // and the memory-request id sequence. Safe only when no traffic is in
  // flight — i.e. between benchmarks, never between the launches of one.
  // Leaves every warp inactive (busy() == false), like a new core.
  void hard_reset();

  // Ticks the core-internal caches (called by the cluster before logic()).
  void tick_caches(uint64_t cycle);
  // One cycle of pipeline logic: writeback, issue, LSU drain, fetch.
  void tick_logic(uint64_t cycle);

  bool busy() const;

  // --- Event-driven idle skipping (see Cluster::tick) -----------------
  // Clears the per-cycle progress flag; the cluster calls this before any
  // component (whose response chains can reach this core) is ticked.
  void begin_tick() { progressed_ = false; }
  // True if this core did anything this cycle that could change the next
  // cycle's behaviour: issued an instruction, initiated a fetch, sent an
  // LSU line request, or received a memory response.
  bool progressed() const { return progressed_; }
  // Earliest future cycle (> now) at which this core has a self-scheduled
  // event: a completion retiring or a non-pipelined FU becoming ready.
  // kNoWake when it is waiting purely on external (memory) events.
  uint64_t next_wake_cycle(uint64_t now) const;
  // Bulk-attributes `count` skipped cycles [from, from+count) to the stall
  // bucket charged on the last simulated cycle (state is provably frozen
  // over the window, so each skipped cycle repeats that attribution), and
  // synthesizes the occupancy samples the profiler would have taken.
  void fast_forward(uint64_t from, uint64_t count);

  const PerfCounters& perf() const { return perf_; }
  PerfCounters& perf() { return perf_; }
  // Per-PC issue/stall attribution + occupancy timeline; empty unless
  // Config::profile is set.
  const PcProfile& profile() const { return profile_; }
  mem::Cache& l1d() { return l1d_; }
  mem::Cache& l1i() { return l1i_; }
  mem::MainMemory& local_mem() { return local_mem_; }
  uint32_t id() const { return core_id_; }

  // Debug access for tests.
  uint32_t xreg(uint32_t warp, uint32_t lane, uint32_t index) const;
  uint32_t freg_bits(uint32_t warp, uint32_t lane, uint32_t index) const;
  bool warp_active(uint32_t warp) const { return warps_[warp].active; }
  uint64_t warp_tmask(uint32_t warp) const { return warps_[warp].tmask; }
  // Decode-cache statistics (tests assert cold/warm behaviour).
  uint64_t decode_cache_hits() const { return decode_hits_; }
  uint64_t decode_cache_fills() const { return decode_fills_; }

 private:
  struct IpdomEntry {
    enum Kind : uint8_t { kUniform, kElse, kRestore };
    Kind kind;
    uint64_t mask;
    uint32_t pc;
  };

  // A decoded instruction plus everything the issue stage needs, computed
  // once at decode time instead of per issue attempt: scoreboard masks
  // (sources + destination, x0 excluded) and the FU routing/latency.
  struct DecodedInstr {
    arch::Instr instr;
    uint32_t need_x = 0;
    uint32_t need_f = 0;
    uint8_t fu = 0;  // arch::FuClass
    bool is_lsu = false;
    bool is_store = false;
  };

  struct FetchSlot {
    DecodedInstr decoded;
    uint32_t pc;
  };

  // Fixed-capacity ring of decoded instructions awaiting issue. Storage is
  // reserved once per Config::ibuffer_depth (the old per-warp std::deque
  // allocated chunks on every push/pop in the fetch hot loop).
  struct IBuffer {
    std::vector<FetchSlot> slots;
    uint32_t head = 0;
    uint32_t count = 0;

    void init(uint32_t capacity) {
      slots.resize(capacity);
      head = count = 0;
    }
    bool empty() const { return count == 0; }
    bool full() const { return count == static_cast<uint32_t>(slots.size()); }
    uint32_t size() const { return count; }
    const FetchSlot& front() const { return slots[head]; }
    void push(const FetchSlot& slot) {
      slots[(head + count) % slots.size()] = slot;
      ++count;
    }
    void pop() {
      head = (head + 1) % static_cast<uint32_t>(slots.size());
      --count;
    }
    void clear() { head = count = 0; }
  };

  struct Warp {
    bool active = false;
    uint32_t pc = 0;
    uint64_t tmask = 0;
    std::vector<IpdomEntry> ipdom;
    IBuffer ibuffer;
    bool fetch_pending = false;
    uint64_t fetch_id = 0;         // full request id of the in-flight fetch
    uint32_t fetch_pc = 0;
    uint64_t fetch_generation = 0;  // warp generation when the fetch left
    uint64_t generation = 0;        // bumped on redirects to drop stale fetches
    bool at_barrier = false;
    uint32_t barrier_id = 0;
    uint32_t busy_x = 0;  // scoreboard bitmasks
    uint32_t busy_f = 0;

    // Clears execution state but keeps the ibuffer/ipdom storage.
    void reset() {
      active = false;
      pc = 0;
      tmask = 0;
      ipdom.clear();
      ibuffer.clear();
      fetch_pending = false;
      fetch_id = 0;
      fetch_pc = 0;
      fetch_generation = 0;
      generation = 0;
      at_barrier = false;
      barrier_id = 0;
      busy_x = busy_f = 0;
    }
  };

  // A memory instruction in flight in the load-store unit.
  struct LsuEntry {
    bool valid = false;
    uint32_t warp = 0;
    bool is_write = false;
    bool has_rd = false;
    bool writes_float = false;
    uint8_t rd = 0;
    uint32_t pc = 0;  // issuing instruction (memory-profiler attribution)
    uint64_t token = 0;                   // allocation token (stale-response guard)
    std::vector<uint32_t> lines_pending;  // line addresses not yet sent
    uint32_t outstanding = 0;             // responses still expected
  };

  // Deferred scoreboard release (register values are committed at issue).
  struct Completion {
    uint64_t ready_cycle;
    uint32_t warp;
    uint8_t rd;
    bool is_float;
  };

  uint32_t& xr(uint32_t warp, uint32_t lane, uint32_t index) {
    return xregs_[(warp * config_.threads + lane) * 32 + index];
  }
  uint32_t& fr(uint32_t warp, uint32_t lane, uint32_t index) {
    return fregs_[(warp * config_.threads + lane) * 32 + index];
  }

  void do_writeback(uint64_t cycle);
  void do_issue(uint64_t cycle);
  void do_lsu(uint64_t cycle);
  void do_fetch(uint64_t cycle);

  // Decode via the per-core PC -> DecodedInstr cache; nullptr on an invalid
  // encoding. The pointer stays valid until the next decode_at call (cache
  // growth may reallocate).
  const DecodedInstr* decode_at(uint32_t pc);
  static void fill_issue_metadata(DecodedInstr* d);

  // Returns false if the instruction cannot issue this cycle (structural or
  // data hazard); sets *stall_reason for attribution.
  bool can_issue(const Warp& warp, const DecodedInstr& instr, uint64_t cycle, int* stall_reason);
  void execute(uint32_t warp_id, const FetchSlot& slot, uint64_t cycle);
  void execute_memory(uint32_t warp_id, const arch::Instr& instr, uint32_t pc, uint64_t cycle);
  void redirect(Warp& warp, uint32_t new_pc);
  uint32_t first_active_lane(uint64_t mask) const;
  uint32_t read_csr(uint32_t csr, uint32_t warp_id, uint32_t lane, uint64_t cycle) const;
  void barrier_arrive(uint32_t warp_id, uint32_t id, uint32_t count, uint64_t cycle);

  bool is_local_addr(uint32_t addr) const {
    return addr >= arch::kLocalBase && addr < arch::kLocalBase + arch::kLocalSize;
  }

  const Config& config_;
  uint32_t core_id_;
  mem::MainMemory& gmem_;
  mem::MainMemory local_mem_;  // per-core OpenCL __local scratchpad
  mem::Cache l1d_;
  mem::Cache l1i_;
  EcallHandler ecall_handler_;

  std::vector<Warp> warps_;
  std::vector<uint32_t> xregs_;  // [warp][thread][32]
  std::vector<uint32_t> fregs_;

  std::vector<Completion> completions_;  // unordered; retired by swap-remove
  uint64_t completions_min_ready_ = kNoWake;  // min ready_cycle in completions_
  std::vector<LsuEntry> lsu_queue_;
  uint32_t lsu_free_ = 0;       // entries with valid == false
  uint64_t next_mem_id_ = 1;    // never reset: ids stay unique across runs

  // Decode cache: word index (pc - kCodeBase)/4 -> decoded entry. Grows to
  // the highest PC decoded; invalidated wholesale on reset().
  std::vector<DecodedInstr> decode_cache_;
  std::vector<uint8_t> decode_valid_;
  uint64_t decode_hits_ = 0;
  uint64_t decode_fills_ = 0;

  // Per-FU readiness (structural hazards for non-pipelined units).
  uint64_t fu_ready_[8] = {0};

  // Barrier bookkeeping: id -> warps arrived.
  std::vector<uint32_t> barrier_arrived_;
  std::vector<uint32_t> barrier_expected_;

  uint32_t issue_rr_ = 0;  // round-robin cursors
  uint32_t fetch_rr_ = 0;
  uint64_t instret_ = 0;

  // Last-cycle issue outcome, for bulk attribution during fast-forward.
  enum class IssueOutcome : uint8_t {
    kIssued, kIdle, kLsu, kScoreboard, kFu, kIbuffer, kBarrier, kNone,
  };
  IssueOutcome last_outcome_ = IssueOutcome::kNone;
  uint32_t last_stall_pc_ = 0;
  bool progressed_ = false;

  PerfCounters perf_;
  PcProfile profile_;

  void sample_occupancy(uint64_t cycle);
};

}  // namespace fgpu::vortex
