#include "vortex/analytical.hpp"

#include <algorithm>
#include <cmath>

#include "hls/compiler.hpp"
#include "kir/passes.hpp"

namespace fgpu::vortex {

Result<KernelProfile> profile_kernel(const kir::Kernel& kernel,
                                     const std::vector<kir::KernelArg>& args,
                                     const kir::NDRange& ndrange) {
  // Expand builtins so the operation count matches what the device executes.
  kir::Kernel lowered = kir::clone_kernel(kernel);
  kir::expand_builtins(lowered);

  // Static access-pattern census (reuses the HLS analyzer's classifier).
  const auto dfg = hls::analyze(lowered);

  uint64_t ops = 0, loads = 0, stores = 0, local_accesses = 0;
  uint64_t consecutive = 0, total_classified = 0;

  // Per-site pattern lookup for the dynamic counters.
  std::unordered_map<const void*, hls::AccessPattern> site_pattern;
  for (const auto& site : dfg.sites) site_pattern[site.site] = site.pattern;

  kir::InterpOptions options;
  options.op_count = &ops;
  options.on_load = [&](const kir::Expr* site) {
    auto it = site_pattern.find(site);
    if (it == site_pattern.end()) {
      ++local_accesses;  // __local load (not a global site)
      return;
    }
    ++loads;
    ++total_classified;
    if (it->second == hls::AccessPattern::kConsecutive) ++consecutive;
  };
  options.on_store = [&](const kir::Stmt* site) {
    auto it = site_pattern.find(site);
    if (it == site_pattern.end()) {
      ++local_accesses;
      return;
    }
    ++stores;
    ++total_classified;
    if (it->second == hls::AccessPattern::kConsecutive) ++consecutive;
  };

  kir::Interpreter interp(options);
  if (auto st = interp.run(lowered, args, ndrange); !st.is_ok()) {
    return Result<KernelProfile>(st.kind(), st.message());
  }

  KernelProfile profile;
  profile.items = ndrange.global_items();
  const double items = std::max<double>(1.0, static_cast<double>(profile.items));
  profile.ops_per_item = static_cast<double>(ops) / items;
  profile.loads_per_item = static_cast<double>(loads) / items;
  profile.stores_per_item = static_cast<double>(stores) / items;
  profile.local_accesses_per_item = static_cast<double>(local_accesses) / items;
  profile.consecutive_fraction =
      total_classified == 0 ? 1.0
                            : static_cast<double>(consecutive) / static_cast<double>(total_classified);
  profile.uses_barriers = lowered.has_barrier();
  for (const auto& arg : args) {
    if (arg.is_buffer && arg.data != nullptr) {
      profile.footprint_bytes += static_cast<uint64_t>(arg.data->size()) * 4;
    }
  }
  return profile;
}

Prediction predict_cycles(const KernelProfile& profile, const Config& config) {
  const double cores = config.cores;
  const double warps = config.warps;
  const double threads = config.threads;
  const double items_per_core = static_cast<double>(profile.items) / cores;

  // Instructions per item: KIR operations expand ~1.35x in codegen
  // (addressing arithmetic, moves, divergence control), plus the per-item
  // share of the work-item loop (compare + pred + increment + jump).
  const double instrs_per_item = profile.ops_per_item * 1.35 + 4.0 +
                                 profile.local_accesses_per_item;

  // --- issue bound: one warp instruction per cycle per core; a warp
  // instruction covers `threads` items.
  const double issue = items_per_core * instrs_per_item / threads;

  // --- memory bound: the LSU drains one line request per port per cycle.
  // With 16-byte lines a fully coalesced warp access needs threads/4 line
  // requests (one per 4 lanes); non-consecutive accesses need one line per
  // lane. MSHR saturation at high in-flight counts adds a contention factor
  // (the head-of-line LSU stalls behind Fig. 7).
  const double accesses_per_item = profile.loads_per_item + profile.stores_per_item;
  // A consecutive warp access covers threads lanes x 4 bytes, but never less
  // than one 16-byte line — narrow warps (threads < 4) still fetch whole
  // lines, so their per-item line count is 1/threads, not 1/4.
  const double consecutive_lines = std::max(0.25, 1.0 / threads);
  const double lines_per_access =
      profile.consecutive_fraction * consecutive_lines +
      (1.0 - profile.consecutive_fraction) * 1.0;
  const double lines_per_core = items_per_core * accesses_per_item * lines_per_access;

  // Cache-geometry filtering: what fraction of line requests miss L1 (and,
  // of those, the shared L2). Compulsory misses are the distinct lines of
  // the working set — each must be fetched at least once — and the capacity
  // term grows as the footprint overflows the cache, vanishing once it
  // fits. footprint_bytes == 0 (hand-built profiles) keeps the legacy
  // streaming assumption: every request is a DRAM fill.
  double l1_miss = 1.0, l2_miss = 1.0;
  if (profile.footprint_bytes > 0 && lines_per_core > 0.0) {
    const double footprint_lines =
        static_cast<double>(profile.footprint_bytes) / mem::kLineBytes;
    const double per_core_bytes = static_cast<double>(profile.footprint_bytes) / cores;
    const double compulsory = std::min(1.0, (footprint_lines / cores) / lines_per_core);
    const double l1_capacity =
        (1.0 - compulsory) *
        std::max(0.0, 1.0 - static_cast<double>(config.l1d.size_bytes) / per_core_bytes);
    l1_miss = std::min(1.0, compulsory + l1_capacity);
    const double l1_miss_lines = std::max(1.0, lines_per_core * l1_miss * cores);
    const double l2_compulsory = std::min(1.0, footprint_lines / l1_miss_lines);
    const double l2_capacity =
        (1.0 - l2_compulsory) *
        std::max(0.0, 1.0 - static_cast<double>(config.l2.size_bytes) /
                                static_cast<double>(profile.footprint_bytes));
    l2_miss = std::min(1.0, l2_compulsory + l2_capacity);
  }

  // Two per-core memory limits: the LSU drain rate (lsu_ports lines/cycle),
  // and Little's law — with only `mshrs` fills in flight, sustained line
  // throughput cannot exceed mshrs / fill latency, where the fill latency
  // is the L2 round trip plus the DRAM share of the lines that miss it.
  const double drain = lines_per_core / std::max(1u, config.lsu_ports);
  const double avg_fill =
      static_cast<double>(config.l1d.hit_latency + config.l2.hit_latency) +
      l2_miss * static_cast<double>(config.dram.latency / 2);
  const double mshrs = config.l1d.mshrs;
  double memory = std::max(drain, lines_per_core * l1_miss * avg_fill / mshrs);
  const double inflight = warps * std::max(1.0, threads / 4.0) * l1_miss;
  if (inflight > mshrs) {
    // Saturated MSHRs additionally waste issue slots through head-of-line
    // LSU stalls; grows slowly with the oversubscription ratio.
    memory *= 1.0 + 0.18 * std::log2(inflight / mshrs + 1.0);
  }

  // --- DRAM service bound: cluster-wide, not per-core. Three ceilings
  // govern sustained line service for the lines that miss both cache
  // levels (Little's law applied at each stage of the fill chain):
  //   1. peak channel bandwidth — channels * requests_per_channel lines
  //      per cycle (the multi-channel HBM axis);
  //   2. the shared L2 fill window — only l2.mshrs fills in flight, each
  //      held for a DRAM round trip (latency + L2 lookup + fill pipeline
  //      hops + the queueing share of a full window draining through the
  //      channels). Default geometry: 16 MSHRs over ~126 cycles = 0.127
  //      lines/cycle, far below peak — this is why measured cycles plateau
  //      from ~2 cores on for streaming kernels (EXPERIMENTS.md core
  //      scaling) and why extra HBM channels barely help;
  //   3. core supply — cores * per-core in-flight lines (bounded by L1D
  //      MSHRs and by what the warps can keep outstanding) over the same
  //      round trip. A single core cannot fill the L2 window: this term
  //      reproduces the measured C1 -> C2 halving before the plateau.
  const double dram_lines = lines_per_core * cores * l1_miss * l2_miss;
  const double peak_lines =
      std::max(1.0, static_cast<double>(config.dram.channels) *
                        static_cast<double>(config.dram.requests_per_channel));
  const double queue_share = static_cast<double>(config.l2.mshrs) / (2.0 * peak_lines);
  const double round_trip_fill = static_cast<double>(config.dram.latency) +
                                 static_cast<double>(config.l2.hit_latency) + 12.0 +
                                 queue_share;
  const double fill_window = static_cast<double>(config.l2.mshrs) / round_trip_fill;
  // Measured MLP law (EXPERIMENTS.md probe sweeps): the lines a core keeps
  // in flight track the warp's lane width, not the warp count — narrow
  // warps expose ~1.15 * threads outstanding lines before dependence
  // chains stall them, regardless of how many warps time-share the LSU.
  const double inflight_lines = std::min<double>(config.l1d.mshrs, 1.15 * threads);
  const double core_supply = cores * inflight_lines / round_trip_fill;
  // Narrow warps (threads < 4) split each line across 4/threads accesses;
  // the trailing accesses merge into the in-flight MSHR and wake serially,
  // stretching its turnaround. Plentiful warps hide the stretch.
  const double merge_eff =
      1.0 / (1.0 + 0.4 * std::max(0.0, 4.0 / threads - 1.0) / warps);
  const double service_rate =
      std::max(1e-6, std::min({peak_lines, fill_window, core_supply}) * merge_eff);
  const double dram = dram_lines / service_rate;

  // --- latency bound: with few warps, per-warp serial latency shows. Each
  // warp executes items_per_core / (warps * threads) iterations; each
  // iteration costs its instructions plus exposed memory latency (misses
  // are covered once warps * issue gaps exceed the round trip; accesses
  // that hit in-cache expose only the short L2 trip).
  const double iterations_per_warp = items_per_core / (warps * threads);
  const double round_trip = static_cast<double>(config.l2.hit_latency) +
                            l1_miss * l2_miss * static_cast<double>(config.dram.latency / 4);
  const double exposed_latency =
      std::max(0.0, round_trip - instrs_per_item * (warps - 1.0));
  const double latency =
      iterations_per_warp * (instrs_per_item + accesses_per_item * exposed_latency);

  // --- fixed overhead: per-warp dispatch prologue + drain.
  const double overhead = 40.0 + 12.0 * warps + (profile.uses_barriers ? 20.0 * warps : 0.0);

  Prediction p;
  p.issue_bound = issue;
  p.memory_bound = memory;
  p.latency_bound = latency;
  p.dram_bound = dram;
  p.overhead = overhead;
  double binding = issue;
  p.bottleneck = "issue";
  if (memory > binding) {
    binding = memory;
    p.bottleneck = "memory";
  }
  if (dram > binding) {
    binding = dram;
    p.bottleneck = "dram";
  }
  if (latency > binding) {
    binding = latency;
    p.bottleneck = "latency";
  }
  p.cycles = binding + overhead;
  return p;
}

}  // namespace fgpu::vortex
