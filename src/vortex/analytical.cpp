#include "vortex/analytical.hpp"

#include <algorithm>
#include <cmath>

#include "hls/compiler.hpp"
#include "kir/passes.hpp"

namespace fgpu::vortex {

Result<KernelProfile> profile_kernel(const kir::Kernel& kernel,
                                     const std::vector<kir::KernelArg>& args,
                                     const kir::NDRange& ndrange) {
  // Expand builtins so the operation count matches what the device executes.
  kir::Kernel lowered = kir::clone_kernel(kernel);
  kir::expand_builtins(lowered);

  // Static access-pattern census (reuses the HLS analyzer's classifier).
  const auto dfg = hls::analyze(lowered);

  uint64_t ops = 0, loads = 0, stores = 0, local_accesses = 0;
  uint64_t consecutive = 0, total_classified = 0;

  // Per-site pattern lookup for the dynamic counters.
  std::unordered_map<const void*, hls::AccessPattern> site_pattern;
  for (const auto& site : dfg.sites) site_pattern[site.site] = site.pattern;

  kir::InterpOptions options;
  options.op_count = &ops;
  options.on_load = [&](const kir::Expr* site) {
    auto it = site_pattern.find(site);
    if (it == site_pattern.end()) {
      ++local_accesses;  // __local load (not a global site)
      return;
    }
    ++loads;
    ++total_classified;
    if (it->second == hls::AccessPattern::kConsecutive) ++consecutive;
  };
  options.on_store = [&](const kir::Stmt* site) {
    auto it = site_pattern.find(site);
    if (it == site_pattern.end()) {
      ++local_accesses;
      return;
    }
    ++stores;
    ++total_classified;
    if (it->second == hls::AccessPattern::kConsecutive) ++consecutive;
  };

  kir::Interpreter interp(options);
  if (auto st = interp.run(lowered, args, ndrange); !st.is_ok()) {
    return Result<KernelProfile>(st.kind(), st.message());
  }

  KernelProfile profile;
  profile.items = ndrange.global_items();
  const double items = std::max<double>(1.0, static_cast<double>(profile.items));
  profile.ops_per_item = static_cast<double>(ops) / items;
  profile.loads_per_item = static_cast<double>(loads) / items;
  profile.stores_per_item = static_cast<double>(stores) / items;
  profile.local_accesses_per_item = static_cast<double>(local_accesses) / items;
  profile.consecutive_fraction =
      total_classified == 0 ? 1.0
                            : static_cast<double>(consecutive) / static_cast<double>(total_classified);
  profile.uses_barriers = lowered.has_barrier();
  return profile;
}

Prediction predict_cycles(const KernelProfile& profile, const Config& config) {
  const double cores = config.cores;
  const double warps = config.warps;
  const double threads = config.threads;
  const double items_per_core = static_cast<double>(profile.items) / cores;

  // Instructions per item: KIR operations expand ~1.35x in codegen
  // (addressing arithmetic, moves, divergence control), plus the per-item
  // share of the work-item loop (compare + pred + increment + jump).
  const double instrs_per_item = profile.ops_per_item * 1.35 + 4.0 +
                                 profile.local_accesses_per_item;

  // --- issue bound: one warp instruction per cycle per core; a warp
  // instruction covers `threads` items.
  const double issue = items_per_core * instrs_per_item / threads;

  // --- memory bound: the LSU drains one line request per cycle. With
  // 16-byte lines a fully coalesced warp access needs threads/4 line
  // requests (one per 4 lanes); non-consecutive accesses need one line per
  // lane. MSHR saturation at high in-flight counts adds a contention factor
  // (the head-of-line LSU stalls behind Fig. 7).
  const double accesses_per_item = profile.loads_per_item + profile.stores_per_item;
  const double lines_per_access =
      profile.consecutive_fraction * 0.25 + (1.0 - profile.consecutive_fraction) * 1.0;
  const double lines_per_core = items_per_core * accesses_per_item * lines_per_access;
  // Two memory limits: the LSU drain rate (1 line/cycle), and Little's law
  // — with only `mshrs` fills in flight, sustained line throughput cannot
  // exceed mshrs / round_trip.
  const double miss_round_trip = static_cast<double>(
      config.l1d.hit_latency + config.l2.hit_latency + config.dram.latency / 2);
  const double mshrs = config.l1d.mshrs;
  double memory = std::max(lines_per_core, lines_per_core * miss_round_trip / mshrs);
  const double inflight = warps * std::max(1.0, threads / 4.0);
  if (inflight > mshrs) {
    // Saturated MSHRs additionally waste issue slots through head-of-line
    // LSU stalls; grows slowly with the oversubscription ratio.
    memory *= 1.0 + 0.18 * std::log2(inflight / mshrs + 1.0);
  }

  // --- latency bound: with few warps, per-warp serial latency shows. Each
  // warp executes items_per_core / (warps * threads) iterations; each
  // iteration costs its instructions plus exposed memory latency (misses
  // are covered once warps * issue gaps exceed the round trip).
  const double iterations_per_warp = items_per_core / (warps * threads);
  const double round_trip = static_cast<double>(config.l2.hit_latency + config.dram.latency / 4);
  const double exposed_latency =
      std::max(0.0, round_trip - instrs_per_item * (warps - 1.0));
  const double latency =
      iterations_per_warp * (instrs_per_item + accesses_per_item * exposed_latency);

  // --- fixed overhead: per-warp dispatch prologue + drain.
  const double overhead = 40.0 + 12.0 * warps + (profile.uses_barriers ? 20.0 * warps : 0.0);

  Prediction p;
  p.issue_bound = issue;
  p.memory_bound = memory;
  p.latency_bound = latency;
  p.overhead = overhead;
  p.cycles = std::max({issue, memory, latency}) + overhead;
  p.bottleneck = p.cycles - overhead == issue     ? "issue"
                 : p.cycles - overhead == memory  ? "memory"
                                                  : "latency";
  return p;
}

}  // namespace fgpu::vortex
