// The full soft GPU: C cores behind a shared L2 and an off-chip DRAM model.
// This is the SimX-equivalent top level the paper uses for its Fig. 7
// design-space exploration ("Simx is a C++ cycle-level simulator ...").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/interconnect.hpp"
#include "mem/memory.hpp"
#include "vortex/core.hpp"

namespace fgpu::vortex {

struct ClusterStats {
  PerfCounters perf;          // aggregated over cores (cycles = max)
  mem::MemStats l1d;          // summed over cores
  mem::MemStats l1i;
  mem::MemStats l2;
  mem::MemStats dram;
  uint64_t dram_bytes = 0;
};

class Cluster {
 public:
  Cluster(const Config& config, mem::MainMemory& gmem, EcallHandler ecall_handler = {});

  // Resets every core and runs the kernel at `entry_pc` to completion
  // (all warps retired and no memory traffic in flight).
  Result<ClusterStats> run(uint32_t entry_pc);

  const Config& config() const { return config_; }
  Core& core(uint32_t i) { return *cores_[i]; }
  uint32_t num_cores() const { return static_cast<uint32_t>(cores_.size()); }

  // Single-step interface for tests.
  void reset(uint32_t entry_pc);
  // Full return to construction-time state without reallocating anything:
  // deep-resets every cache/DRAM queue, the interconnect's routing state and
  // every core (device-reuse contract; DESIGN.md "Device lifecycle"). Only
  // valid between kernels — reset(entry_pc) remains the per-launch boundary.
  void hard_reset();
  void tick();
  bool busy() const;
  uint64_t cycle() const { return cycle_; }
  ClusterStats collect_stats() const;
  // Per-PC profile merged across cores, plus the cluster-level cache
  // conflict histograms (empty PcProfile unless Config::profile).
  PcProfile collect_profile() const;
  // Memory-hierarchy profile merged across cores + the shared L2/DRAM;
  // empty (enabled=false) unless Config::memprof is set.
  mem::MemHierarchyProfile collect_mem_profile() const;

 private:
  void trace_counters() const;
  void try_idle_skip();

  Config config_;
  mem::MainMemory& gmem_;
  mem::DramModel dram_;
  mem::Cache l2_;
  mem::Interconnect noc_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::string> stall_track_names_;  // "stalls.cN" trace tracks
  uint64_t cycle_ = 0;
};

}  // namespace fgpu::vortex
