#include "vortex/core.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "trace/trace.hpp"

namespace fgpu::vortex {
namespace {

using arch::Instr;
using arch::Op;

constexpr int kStallNone = 0, kStallScoreboard = 1, kStallLsu = 2, kStallFu = 3;

// In-flight request ids encode their routing slot in the low byte (warp
// index for fetches, LSU queue slot for data requests) and a monotonically
// increasing sequence above it, so responses resolve in O(1) and a stale
// response (from before a reset) can never match a recycled slot.
constexpr uint64_t kIdSlotBits = 8;
constexpr uint64_t kIdSlotMask = (1ull << kIdSlotBits) - 1;

// Decode-cache ceiling: PCs past this word index fall back to uncached
// decode (kernels are tiny; this only guards runaway PCs from growing the
// cache unboundedly).
constexpr uint32_t kDecodeCacheMaxWords = 1u << 20;

int32_t as_i32(uint32_t v) { return static_cast<int32_t>(v); }

uint32_t fcvt_w_s(float f, bool is_unsigned) {
  if (std::isnan(f)) {
    return is_unsigned ? 0xFFFFFFFFu : 0x7FFFFFFFu;
  }
  if (is_unsigned) {
    if (f <= -1.0f) return 0;
    if (f >= 4294967296.0f) return 0xFFFFFFFFu;
    return static_cast<uint32_t>(f);
  }
  if (f <= -2147483648.0f) return 0x80000000u;
  if (f >= 2147483648.0f) return 0x7FFFFFFFu;
  return static_cast<uint32_t>(static_cast<int32_t>(f));
}

}  // namespace

Core::Core(const Config& config, uint32_t core_id, mem::MainMemory& gmem, mem::MemPort& l2_data,
           mem::MemPort& l2_inst, EcallHandler ecall_handler)
    : config_(config),
      core_id_(core_id),
      gmem_(gmem),
      l1d_(config.l1d, &l2_data),
      l1i_(config.l1i, &l2_inst),
      ecall_handler_(std::move(ecall_handler)),
      warps_(config.warps),
      xregs_(config.warps * config.threads * 32, 0),
      fregs_(config.warps * config.threads * 32, 0),
      lsu_queue_(config.lsu_queue_depth),
      lsu_free_(config.lsu_queue_depth),
      barrier_arrived_(32, 0),
      barrier_expected_(32, 0) {
  assert(config_.warps <= (1u << kIdSlotBits) && "warp index must fit the id slot byte");
  assert(config_.lsu_queue_depth <= (1u << kIdSlotBits) && "LSU slot must fit the id slot byte");
  for (auto& warp : warps_) warp.ibuffer.init(std::max(1u, config_.ibuffer_depth));
  if (config_.memprof) {
    l1d_.enable_memprof();
    l1i_.enable_memprof();
  }
  l1d_.set_response_handler([this](uint64_t id, bool /*w*/) {
    // O(1): the queue slot is in the id's low byte; the token above it
    // rejects responses addressed to a previous occupant of the slot.
    LsuEntry& entry = lsu_queue_[id & kIdSlotMask];
    if (!entry.valid || entry.token != (id >> kIdSlotBits)) return;  // stale
    assert(entry.outstanding > 0);
    --entry.outstanding;
    progressed_ = true;
    if (entry.outstanding == 0 && entry.lines_pending.empty()) {
      if (entry.has_rd) {
        Warp& warp = warps_[entry.warp];
        if (entry.writes_float) {
          warp.busy_f &= ~(1u << entry.rd);
        } else {
          warp.busy_x &= ~(1u << entry.rd);
        }
      }
      entry.valid = false;
      ++lsu_free_;
    }
  });
  l1i_.set_response_handler([this](uint64_t id, bool /*w*/) {
    // O(1): the fetching warp is in the id's low byte; the full id must
    // match the warp's in-flight fetch (stale responses never do).
    Warp& warp = warps_[id & kIdSlotMask];
    if (!warp.fetch_pending || warp.fetch_id != id) return;  // stale
    warp.fetch_pending = false;
    progressed_ = true;
    if (warp.generation != warp.fetch_generation || !warp.active) return;  // stale
    const DecodedInstr* decoded = decode_at(warp.fetch_pc);
    if (decoded == nullptr) {
      FGPU_LOG(kError, "core %u warp %u: invalid instruction at %08x", core_id_,
               static_cast<uint32_t>(id & kIdSlotMask), warp.fetch_pc);
      warp.active = false;
      return;
    }
    warp.ibuffer.push(FetchSlot{*decoded, warp.fetch_pc});
  });
}

void Core::reset(uint32_t entry_pc) {
  for (auto& warp : warps_) warp.reset();
  std::fill(xregs_.begin(), xregs_.end(), 0u);
  std::fill(fregs_.begin(), fregs_.end(), 0u);
  completions_.clear();
  completions_min_ready_ = kNoWake;
  for (auto& entry : lsu_queue_) entry = LsuEntry{};
  lsu_free_ = config_.lsu_queue_depth;
  // The runtime rewrites the code region between launches; drop every
  // cached decode (next_mem_id_ is NOT reset, so in-flight responses from a
  // previous run can never match a new request id).
  std::fill(decode_valid_.begin(), decode_valid_.end(), uint8_t{0});
  last_outcome_ = IssueOutcome::kNone;
  last_stall_pc_ = 0;
  progressed_ = false;
  std::fill(std::begin(fu_ready_), std::end(fu_ready_), 0ull);
  std::fill(barrier_arrived_.begin(), barrier_arrived_.end(), 0u);
  std::fill(barrier_expected_.begin(), barrier_expected_.end(), 0u);
  issue_rr_ = fetch_rr_ = 0;
  instret_ = 0;
  perf_ = PerfCounters{};
  profile_ = PcProfile{};
  profile_.enabled = config_.profile;
  profile_.occupancy_interval = config_.profile_interval;
  local_mem_.clear();
  l1d_.flush();
  l1i_.flush();
  l1d_.reset_stats();
  l1i_.reset_stats();

  warps_[0].active = true;
  warps_[0].pc = entry_pc;
  warps_[0].tmask = 1;
}

void Core::hard_reset() {
  reset(0);
  // reset() is the launch boundary: it leaves warp 0 armed. A hard reset
  // models a not-yet-launched core, so deactivate it again.
  warps_[0].reset();
  // With every queue empty across the hierarchy there are no stale in-flight
  // responses to collide with, so the id sequence can restart — giving a
  // reused device the exact request-id stream of a fresh one.
  next_mem_id_ = 1;
  l1d_.reset();
  l1i_.reset();
}

bool Core::busy() const {
  for (const auto& warp : warps_) {
    if (warp.active) return true;
  }
  for (const auto& entry : lsu_queue_) {
    if (entry.valid) return true;
  }
  return !completions_.empty();
}

uint32_t Core::xreg(uint32_t warp, uint32_t lane, uint32_t index) const {
  return xregs_[(warp * config_.threads + lane) * 32 + index];
}
uint32_t Core::freg_bits(uint32_t warp, uint32_t lane, uint32_t index) const {
  return fregs_[(warp * config_.threads + lane) * 32 + index];
}

uint32_t Core::first_active_lane(uint64_t mask) const {
  for (uint32_t lane = 0; lane < config_.threads; ++lane) {
    if (mask & (1ull << lane)) return lane;
  }
  return 0;
}

uint32_t Core::read_csr(uint32_t csr, uint32_t warp_id, uint32_t lane, uint64_t cycle) const {
  switch (csr) {
    case arch::kCsrThreadId: return lane;
    case arch::kCsrWarpId: return warp_id;
    case arch::kCsrCoreId: return core_id_;
    case arch::kCsrTmask: return static_cast<uint32_t>(warps_[warp_id].tmask);
    case arch::kCsrNumThreads: return config_.threads;
    case arch::kCsrNumWarps: return config_.warps;
    case arch::kCsrNumCores: return config_.cores;
    case arch::kCsrCycle: return static_cast<uint32_t>(cycle);
    case arch::kCsrInstret: return static_cast<uint32_t>(instret_);
    default: return 0;
  }
}

void Core::redirect(Warp& warp, uint32_t new_pc) {
  warp.pc = new_pc;
  ++warp.generation;
  warp.ibuffer.clear();
}

void Core::barrier_arrive(uint32_t warp_id, uint32_t id, uint32_t count, uint64_t cycle) {
  assert(id < barrier_arrived_.size());
  Warp& warp = warps_[warp_id];
  warp.at_barrier = true;
  warp.barrier_id = id;
  barrier_expected_[id] = count;
  ++barrier_arrived_[id];
  ++perf_.barriers;
  FGPU_TRACE_INSTANT("barrier_arrive", "warp", core_id_, cycle,
                     {{"warp", warp_id}, {"barrier", id}, {"arrived", barrier_arrived_[id]}});
  if (barrier_arrived_[id] >= barrier_expected_[id]) {
    for (auto& other : warps_) {
      if (other.at_barrier && other.barrier_id == id) other.at_barrier = false;
    }
    barrier_arrived_[id] = 0;
    FGPU_TRACE_INSTANT("barrier_release", "warp", core_id_, cycle,
                       {{"barrier", id}, {"warps", count}});
  }
}

void Core::tick_caches(uint64_t cycle) {
  l1d_.tick(cycle);
  l1i_.tick(cycle);
}

void Core::tick_logic(uint64_t cycle) {
  if (profile_.enabled && cycle % config_.profile_interval == 0) sample_occupancy(cycle);
  do_writeback(cycle);
  do_issue(cycle);
  do_lsu(cycle);
  do_fetch(cycle);
}

// One occupancy-timeline sample: how this core's warp slots are spent.
// "Ready" warps have a decoded instruction buffered and are not barred —
// they may still stall at issue (scoreboard/LSU/FU), which the per-PC
// table attributes; the timeline shows how much parallelism the scheduler
// had available at all (the latency-hiding story behind Fig. 7).
void Core::sample_occupancy(uint64_t cycle) {
  OccupancySample sample;
  sample.cycle = cycle;
  for (const Warp& warp : warps_) {
    if (!warp.active) {
      ++sample.idle;
    } else if (warp.at_barrier || warp.ibuffer.empty()) {
      ++sample.blocked;
    } else {
      ++sample.ready;
    }
  }
  profile_.occupancy.push_back(sample);
}

void Core::do_writeback(uint64_t cycle) {
  // Nothing retires before the cached minimum ready cycle — skip the scan
  // entirely on most cycles (the common case in latency-bound phases).
  if (completions_min_ready_ > cycle) return;
  // Completions are unordered (latencies differ); retire by swap-remove —
  // O(1) per retirement, order-independent since retiring only clears
  // scoreboard bits — recomputing the minimum over the survivors.
  uint64_t min_ready = kNoWake;
  for (size_t i = 0; i < completions_.size();) {
    const Completion& c = completions_[i];
    if (c.ready_cycle <= cycle) {
      Warp& warp = warps_[c.warp];
      if (c.is_float) {
        warp.busy_f &= ~(1u << c.rd);
      } else {
        warp.busy_x &= ~(1u << c.rd);
      }
      progressed_ = true;
      completions_[i] = completions_.back();
      completions_.pop_back();
    } else {
      min_ready = std::min(min_ready, c.ready_cycle);
      ++i;
    }
  }
  completions_min_ready_ = min_ready;
}

// Scoreboard masks and FU routing were precomputed at decode time
// (fill_issue_metadata); the issue hot loop is just mask tests.
bool Core::can_issue(const Warp& warp, const DecodedInstr& d, uint64_t cycle,
                     int* stall_reason) {
  if ((warp.busy_x & d.need_x) != 0 || (warp.busy_f & d.need_f) != 0) {
    *stall_reason = kStallScoreboard;
    return false;
  }
  // Structural hazards.
  if (d.is_lsu) {
    if (lsu_free_ == 0) {
      *stall_reason = kStallLsu;
      return false;
    }
  } else if (fu_ready_[d.fu] > cycle) {
    *stall_reason = kStallFu;
    return false;
  }
  *stall_reason = kStallNone;
  return true;
}

// Derives everything can_issue needs from the instruction format, once per
// decode-cache fill instead of once per issue attempt.
void Core::fill_issue_metadata(DecodedInstr* d) {
  const Instr& instr = d->instr;
  const auto& info = arch::op_info(instr.op);
  uint32_t need_x = 0, need_f = 0;
  auto add = [&](uint8_t reg, bool fp) {
    if (fp) {
      need_f |= (1u << reg);
    } else if (reg != 0) {
      need_x |= (1u << reg);
    }
  };
  switch (info.fmt) {
    case arch::Format::kR:
      add(instr.rs1, arch::reads_freg_rs1(instr.op));
      add(instr.rs2, arch::reads_freg_rs2(instr.op));
      add(instr.rd, arch::writes_freg(instr.op));
      break;
    case arch::Format::kR4:
      add(instr.rs1, true);
      add(instr.rs2, true);
      add(instr.rs3, true);
      add(instr.rd, true);
      break;
    case arch::Format::kI:
    case arch::Format::kIShift:
    case arch::Format::kCsr:
      add(instr.rs1, false);
      add(instr.rd, arch::writes_freg(instr.op));
      break;
    case arch::Format::kS:
      add(instr.rs1, false);
      add(instr.rs2, arch::reads_freg_rs2(instr.op));
      break;
    case arch::Format::kB:
      add(instr.rs1, false);
      add(instr.rs2, false);
      break;
    case arch::Format::kJr:
      add(instr.rs1, false);
      break;
    case arch::Format::kU:
    case arch::Format::kJ:
      add(instr.rd, false);
      break;
    case arch::Format::kAmo:
      add(instr.rs1, false);
      add(instr.rs2, false);
      add(instr.rd, false);
      break;
    case arch::Format::kSys:
      // ECALL reads a0/a7 by convention.
      if (instr.op == Op::kEcall) {
        need_x |= (1u << 10) | (1u << 17);
      }
      break;
  }
  d->need_x = need_x;
  d->need_f = need_f;
  d->fu = static_cast<uint8_t>(info.fu);
  d->is_lsu = info.fu == arch::FuClass::kLsu;
  d->is_store = instr.op == Op::kSb || instr.op == Op::kSh || instr.op == Op::kSw ||
                instr.op == Op::kFsw;
}

// Decode through the per-core PC -> DecodedInstr cache. The cache is indexed
// by code-region word offset, grown on demand, and invalidated wholesale at
// reset() (the kernel-launch boundary — the same point the L1I is flushed).
const Core::DecodedInstr* Core::decode_at(uint32_t pc) {
  const uint32_t word_index = (pc - arch::kCodeBase) / 4;
  const bool cacheable = pc >= arch::kCodeBase && pc % 4 == 0 &&
                         word_index < kDecodeCacheMaxWords;
  if (cacheable && word_index < decode_cache_.size() && decode_valid_[word_index]) {
    ++decode_hits_;
    return &decode_cache_[word_index];
  }
  const uint32_t word = gmem_.load32(pc);
  auto decoded = arch::decode(word);
  if (!decoded) return nullptr;
  if (!cacheable) {
    // Off-region PC (runaway jump): decode into a scratch slot, uncached.
    static thread_local DecodedInstr scratch;
    scratch = DecodedInstr{};
    scratch.instr = *decoded;
    fill_issue_metadata(&scratch);
    return &scratch;
  }
  if (word_index >= decode_cache_.size()) {
    decode_cache_.resize(word_index + 1);
    decode_valid_.resize(word_index + 1, 0);
  }
  DecodedInstr& entry = decode_cache_[word_index];
  entry = DecodedInstr{};
  entry.instr = *decoded;
  fill_issue_metadata(&entry);
  decode_valid_[word_index] = 1;
  ++decode_fills_;
  return &entry;
}

void Core::do_issue(uint64_t cycle) {
  bool any_active = false, saw_barrier = false, saw_empty = false;
  bool saw_scoreboard = false, saw_lsu = false, saw_fu = false;
  // First warp (in round-robin order) blocked for each reason; a bubble
  // cycle is charged to exactly one of these PCs — the same single bucket
  // the aggregate counters use — so per-PC sums match PerfCounters exactly.
  uint32_t barrier_pc = 0, empty_pc = 0, scoreboard_pc = 0, lsu_pc = 0, fu_pc = 0;
  for (uint32_t i = 0; i < config_.warps; ++i) {
    const uint32_t w = (issue_rr_ + i) % config_.warps;
    Warp& warp = warps_[w];
    if (!warp.active) continue;
    any_active = true;
    if (warp.at_barrier) {
      if (!saw_barrier) {
        // Resume point: the buffered instruction after the BAR, or the
        // warp's next fetch PC when the buffer drained.
        barrier_pc = warp.ibuffer.empty() ? warp.pc : warp.ibuffer.front().pc;
      }
      saw_barrier = true;
      continue;
    }
    if (warp.ibuffer.empty()) {
      if (!saw_empty) empty_pc = warp.pc;  // next fetch PC (fetch-bound)
      saw_empty = true;
      continue;
    }
    int reason = kStallNone;
    const FetchSlot& head = warp.ibuffer.front();
    if (!can_issue(warp, head.decoded, cycle, &reason)) {
      if (reason == kStallScoreboard && !saw_scoreboard) scoreboard_pc = head.pc;
      if (reason == kStallFu && !saw_fu) fu_pc = head.pc;
      saw_scoreboard |= reason == kStallScoreboard;
      saw_fu |= reason == kStallFu;
      if (reason == kStallLsu) {
        if (!saw_lsu) lsu_pc = head.pc;
        saw_lsu = true;
        // The LSU input port is a shared structural resource: a ready LOAD
        // that cannot enter the queue blocks the issue stage (head-of-line),
        // wasting the slot — the "LSU stall" behaviour behind the paper's
        // Fig. 7 observation that load-heavy kernels (vecadd) degrade at
        // high warp/thread counts. Stores drain through the write buffer
        // and merely wait, letting other warps proceed.
        if (!head.decoded.is_store) break;
      }
      continue;
    }
    const FetchSlot slot = warp.ibuffer.front();
    warp.ibuffer.pop();
    issue_rr_ = (w + 1) % config_.warps;
    ++perf_.instrs;
    ++instret_;
    progressed_ = true;
    last_outcome_ = IssueOutcome::kIssued;
    if (profile_.enabled) ++profile_.by_pc[slot.pc].issued;
    execute(w, slot, cycle);
    return;
  }
  // Attribute the bubble (and, when profiling, the PC behind it — the same
  // priority order, so each bucket's per-PC sum equals the aggregate). The
  // outcome is remembered so fast_forward() can bulk-charge skipped cycles
  // to the same bucket and PC.
  if (!any_active) {
    ++perf_.idle_cycles;
    last_outcome_ = IssueOutcome::kIdle;
    last_stall_pc_ = 0;
  } else if (saw_lsu) {
    ++perf_.stall_lsu;
    if (profile_.enabled) ++profile_.by_pc[lsu_pc].stall_lsu;
    last_outcome_ = IssueOutcome::kLsu;
    last_stall_pc_ = lsu_pc;
  } else if (saw_scoreboard) {
    ++perf_.stall_scoreboard;
    if (profile_.enabled) ++profile_.by_pc[scoreboard_pc].stall_scoreboard;
    last_outcome_ = IssueOutcome::kScoreboard;
    last_stall_pc_ = scoreboard_pc;
  } else if (saw_fu) {
    ++perf_.stall_fu;
    if (profile_.enabled) ++profile_.by_pc[fu_pc].stall_fu;
    last_outcome_ = IssueOutcome::kFu;
    last_stall_pc_ = fu_pc;
  } else if (saw_empty) {
    ++perf_.stall_ibuffer;
    if (profile_.enabled) ++profile_.by_pc[empty_pc].stall_ibuffer;
    last_outcome_ = IssueOutcome::kIbuffer;
    last_stall_pc_ = empty_pc;
  } else if (saw_barrier) {
    ++perf_.stall_barrier;
    if (profile_.enabled) ++profile_.by_pc[barrier_pc].stall_barrier;
    last_outcome_ = IssueOutcome::kBarrier;
    last_stall_pc_ = barrier_pc;
  } else {
    last_outcome_ = IssueOutcome::kNone;
  }
}

void Core::execute(uint32_t w, const FetchSlot& slot, uint64_t cycle) {
  const Instr& in = slot.decoded.instr;
  const auto& info = arch::op_info(in.op);
  Warp& warp = warps_[w];
  const uint64_t mask = warp.tmask;
  const uint32_t pc = slot.pc;

  if (config_.trace) {
    config_.trace(TraceEvent{core_id_, w, pc, mask, in, cycle});
  }

  // Non-pipelined units block further issue to the same unit.
  if (info.fu == arch::FuClass::kSfu ||
      (info.fu == arch::FuClass::kMulDiv && info.latency > 4)) {
    fu_ready_[static_cast<size_t>(info.fu)] = cycle + info.latency;
  }

  auto schedule_rd = [&](bool is_float) {
    if (!is_float && in.rd == 0) return;
    if (is_float) {
      warp.busy_f |= (1u << in.rd);
    } else {
      warp.busy_x |= (1u << in.rd);
    }
    completions_.push_back(Completion{cycle + info.latency, w, in.rd, is_float});
    completions_min_ready_ = std::min(completions_min_ready_, cycle + info.latency);
  };

  auto for_lanes = [&](auto&& fn) {
    for (uint32_t lane = 0; lane < config_.threads; ++lane) {
      if (mask & (1ull << lane)) fn(lane);
    }
  };

  switch (in.op) {
    // ---------------- ALU ----------------
    case Op::kLui:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = static_cast<uint32_t>(in.imm) << 12; });
      schedule_rd(false);
      break;
    case Op::kAuipc:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = pc + (static_cast<uint32_t>(in.imm) << 12); });
      schedule_rd(false);
      break;
    case Op::kAddi:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) + static_cast<uint32_t>(in.imm); });
      schedule_rd(false);
      break;
    case Op::kSlti:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = as_i32(xr(w, l, in.rs1)) < in.imm ? 1 : 0; });
      schedule_rd(false);
      break;
    case Op::kSltiu:
      for_lanes([&](uint32_t l) {
        xr(w, l, in.rd) = xr(w, l, in.rs1) < static_cast<uint32_t>(in.imm) ? 1 : 0;
      });
      schedule_rd(false);
      break;
    case Op::kXori:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) ^ static_cast<uint32_t>(in.imm); });
      schedule_rd(false);
      break;
    case Op::kOri:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) | static_cast<uint32_t>(in.imm); });
      schedule_rd(false);
      break;
    case Op::kAndi:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) & static_cast<uint32_t>(in.imm); });
      schedule_rd(false);
      break;
    case Op::kSlli:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) << in.imm; });
      schedule_rd(false);
      break;
    case Op::kSrli:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) >> in.imm; });
      schedule_rd(false);
      break;
    case Op::kSrai:
      for_lanes([&](uint32_t l) {
        xr(w, l, in.rd) = static_cast<uint32_t>(as_i32(xr(w, l, in.rs1)) >> in.imm);
      });
      schedule_rd(false);
      break;
    case Op::kAdd:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) + xr(w, l, in.rs2); });
      schedule_rd(false);
      break;
    case Op::kSub:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) - xr(w, l, in.rs2); });
      schedule_rd(false);
      break;
    case Op::kSll:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) << (xr(w, l, in.rs2) & 31); });
      schedule_rd(false);
      break;
    case Op::kSlt:
      for_lanes([&](uint32_t l) {
        xr(w, l, in.rd) = as_i32(xr(w, l, in.rs1)) < as_i32(xr(w, l, in.rs2)) ? 1 : 0;
      });
      schedule_rd(false);
      break;
    case Op::kSltu:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) < xr(w, l, in.rs2) ? 1 : 0; });
      schedule_rd(false);
      break;
    case Op::kXor:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) ^ xr(w, l, in.rs2); });
      schedule_rd(false);
      break;
    case Op::kSrl:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) >> (xr(w, l, in.rs2) & 31); });
      schedule_rd(false);
      break;
    case Op::kSra:
      for_lanes([&](uint32_t l) {
        xr(w, l, in.rd) = static_cast<uint32_t>(as_i32(xr(w, l, in.rs1)) >> (xr(w, l, in.rs2) & 31));
      });
      schedule_rd(false);
      break;
    case Op::kOr:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) | xr(w, l, in.rs2); });
      schedule_rd(false);
      break;
    case Op::kAnd:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) & xr(w, l, in.rs2); });
      schedule_rd(false);
      break;
    // ---------------- MUL/DIV ----------------
    case Op::kMul:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = xr(w, l, in.rs1) * xr(w, l, in.rs2); });
      schedule_rd(false);
      break;
    case Op::kMulh:
      for_lanes([&](uint32_t l) {
        const int64_t p = static_cast<int64_t>(as_i32(xr(w, l, in.rs1))) *
                          static_cast<int64_t>(as_i32(xr(w, l, in.rs2)));
        xr(w, l, in.rd) = static_cast<uint32_t>(static_cast<uint64_t>(p) >> 32);
      });
      schedule_rd(false);
      break;
    case Op::kMulhsu:
      for_lanes([&](uint32_t l) {
        const int64_t p = static_cast<int64_t>(as_i32(xr(w, l, in.rs1))) *
                          static_cast<int64_t>(static_cast<uint64_t>(xr(w, l, in.rs2)));
        xr(w, l, in.rd) = static_cast<uint32_t>(static_cast<uint64_t>(p) >> 32);
      });
      schedule_rd(false);
      break;
    case Op::kMulhu:
      for_lanes([&](uint32_t l) {
        const uint64_t p =
            static_cast<uint64_t>(xr(w, l, in.rs1)) * static_cast<uint64_t>(xr(w, l, in.rs2));
        xr(w, l, in.rd) = static_cast<uint32_t>(p >> 32);
      });
      schedule_rd(false);
      break;
    case Op::kDiv:
      for_lanes([&](uint32_t l) {
        const int32_t a = as_i32(xr(w, l, in.rs1)), b = as_i32(xr(w, l, in.rs2));
        int32_t r;
        if (b == 0) {
          r = -1;
        } else if (a == std::numeric_limits<int32_t>::min() && b == -1) {
          r = a;
        } else {
          r = a / b;
        }
        xr(w, l, in.rd) = static_cast<uint32_t>(r);
      });
      schedule_rd(false);
      break;
    case Op::kDivu:
      for_lanes([&](uint32_t l) {
        const uint32_t a = xr(w, l, in.rs1), b = xr(w, l, in.rs2);
        xr(w, l, in.rd) = b == 0 ? 0xFFFFFFFFu : a / b;
      });
      schedule_rd(false);
      break;
    case Op::kRem:
      for_lanes([&](uint32_t l) {
        const int32_t a = as_i32(xr(w, l, in.rs1)), b = as_i32(xr(w, l, in.rs2));
        int32_t r;
        if (b == 0) {
          r = a;
        } else if (a == std::numeric_limits<int32_t>::min() && b == -1) {
          r = 0;
        } else {
          r = a % b;
        }
        xr(w, l, in.rd) = static_cast<uint32_t>(r);
      });
      schedule_rd(false);
      break;
    case Op::kRemu:
      for_lanes([&](uint32_t l) {
        const uint32_t a = xr(w, l, in.rs1), b = xr(w, l, in.rs2);
        xr(w, l, in.rd) = b == 0 ? a : a % b;
      });
      schedule_rd(false);
      break;
    // ---------------- control flow ----------------
    case Op::kJal:
      if (in.rd != 0) {
        for_lanes([&](uint32_t l) { xr(w, l, in.rd) = pc + 4; });
        schedule_rd(false);
      }
      ++perf_.branches;
      redirect(warp, pc + static_cast<uint32_t>(in.imm));
      break;
    case Op::kJalr: {
      const uint32_t target =
          (xr(w, first_active_lane(mask), in.rs1) + static_cast<uint32_t>(in.imm)) & ~1u;
      if (in.rd != 0) {
        for_lanes([&](uint32_t l) { xr(w, l, in.rd) = pc + 4; });
        schedule_rd(false);
      }
      ++perf_.branches;
      redirect(warp, target);
      break;
    }
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu: {
      const uint32_t lane = first_active_lane(mask);
      const uint32_t a = xr(w, lane, in.rs1), b = xr(w, lane, in.rs2);
      bool taken = false;
      switch (in.op) {
        case Op::kBeq: taken = a == b; break;
        case Op::kBne: taken = a != b; break;
        case Op::kBlt: taken = as_i32(a) < as_i32(b); break;
        case Op::kBge: taken = as_i32(a) >= as_i32(b); break;
        case Op::kBltu: taken = a < b; break;
        case Op::kBgeu: taken = a >= b; break;
        default: break;
      }
      ++perf_.branches;
      if (taken) redirect(warp, pc + static_cast<uint32_t>(in.imm));
      break;
    }
    // ---------------- CSR / system ----------------
    case Op::kCsrrw:
    case Op::kCsrrs:
    case Op::kCsrrc:
      // Machine-information CSRs are read-only; writes are ignored.
      for_lanes([&](uint32_t l) {
        if (in.rd != 0) xr(w, l, in.rd) = read_csr(static_cast<uint32_t>(in.imm), w, l, cycle);
      });
      schedule_rd(false);
      break;
    case Op::kEcall:
      for_lanes([&](uint32_t l) {
        if (ecall_handler_) {
          ecall_handler_(EcallRequest{core_id_, w, l, xr(w, l, 17), xr(w, l, 10)}, gmem_);
        }
      });
      break;
    case Op::kFence:
      break;  // memory ordering is already program order in this model
    // ---------------- SIMT control ----------------
    case Op::kTmc: {
      const uint64_t full = (config_.threads >= 64) ? ~0ull : ((1ull << config_.threads) - 1);
      const uint64_t value = xr(w, first_active_lane(mask), in.rs1) & full;
      warp.tmask = value;
      if (value == 0) {
        warp.active = false;
        FGPU_TRACE_INSTANT("warp_exit", "warp", core_id_, cycle, {{"warp", w}});
      }
      break;
    }
    case Op::kWspawn: {
      const uint32_t lane = first_active_lane(mask);
      const uint32_t count = std::min(xr(w, lane, in.rs1), config_.warps);
      const uint32_t target = xr(w, lane, in.rs2);
      uint32_t spawned_now = 0;
      for (uint32_t i = 1; i < count; ++i) {
        Warp& spawned = warps_[i];
        if (spawned.active) continue;
        spawned.reset();  // keeps the ibuffer/ipdom storage allocations
        spawned.active = true;
        spawned.pc = target;
        spawned.tmask = 1;
        ++perf_.warps_spawned;
        ++spawned_now;
      }
      FGPU_TRACE_INSTANT("wspawn", "warp", core_id_, cycle,
                         {{"by_warp", w}, {"spawned", spawned_now}, {"entry_pc", target}});
      break;
    }
    case Op::kSplit: {
      uint64_t taken = 0;
      for_lanes([&](uint32_t l) {
        if (xr(w, l, in.rs1) != 0) taken |= (1ull << l);
      });
      const uint64_t nottaken = mask & ~taken;
      ++perf_.branches;
      if (nottaken == 0) {
        warp.ipdom.push_back({IpdomEntry::kUniform, 0, 0});
      } else if (taken == 0) {
        warp.ipdom.push_back({IpdomEntry::kUniform, 0, 0});
        redirect(warp, pc + static_cast<uint32_t>(in.imm));
      } else {
        ++perf_.divergent_branches;
        warp.ipdom.push_back({IpdomEntry::kRestore, mask, 0});
        warp.ipdom.push_back({IpdomEntry::kElse, nottaken, pc + static_cast<uint32_t>(in.imm)});
        warp.tmask = taken;
      }
      break;
    }
    case Op::kJoin: {
      ++perf_.joins;
      if (warp.ipdom.empty()) {
        FGPU_LOG(kError, "core %u warp %u: JOIN with empty IPDOM stack at %08x", core_id_, w, pc);
        warp.active = false;
        break;
      }
      const IpdomEntry entry = warp.ipdom.back();
      warp.ipdom.pop_back();
      switch (entry.kind) {
        case IpdomEntry::kUniform:
          redirect(warp, pc + static_cast<uint32_t>(in.imm));
          break;
        case IpdomEntry::kElse:
          warp.tmask = entry.mask;
          redirect(warp, entry.pc);
          break;
        case IpdomEntry::kRestore:
          warp.tmask = entry.mask;
          redirect(warp, pc + static_cast<uint32_t>(in.imm));
          break;
      }
      break;
    }
    case Op::kPred: {
      uint64_t alive = 0;
      for_lanes([&](uint32_t l) {
        if (xr(w, l, in.rs1) != 0) alive |= (1ull << l);
      });
      ++perf_.branches;
      if (alive == 0) {
        redirect(warp, pc + static_cast<uint32_t>(in.imm));
      } else {
        if (alive != mask) ++perf_.divergent_branches;
        warp.tmask = alive;
      }
      break;
    }
    case Op::kBar: {
      const uint32_t lane = first_active_lane(mask);
      barrier_arrive(w, xr(w, lane, in.rs1) & 31, xr(w, lane, in.rs2), cycle);
      break;
    }
    // ---------------- FPU ----------------
    case Op::kFaddS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) = f2u(u2f(fr(w, l, in.rs1)) + u2f(fr(w, l, in.rs2)));
      });
      schedule_rd(true);
      break;
    case Op::kFsubS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) = f2u(u2f(fr(w, l, in.rs1)) - u2f(fr(w, l, in.rs2)));
      });
      schedule_rd(true);
      break;
    case Op::kFmulS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) = f2u(u2f(fr(w, l, in.rs1)) * u2f(fr(w, l, in.rs2)));
      });
      schedule_rd(true);
      break;
    case Op::kFdivS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) = f2u(u2f(fr(w, l, in.rs1)) / u2f(fr(w, l, in.rs2)));
      });
      schedule_rd(true);
      break;
    case Op::kFsqrtS:
      for_lanes([&](uint32_t l) { fr(w, l, in.rd) = f2u(std::sqrt(u2f(fr(w, l, in.rs1)))); });
      schedule_rd(true);
      break;
    case Op::kFsgnjS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) = (fr(w, l, in.rs1) & 0x7FFFFFFFu) | (fr(w, l, in.rs2) & 0x80000000u);
      });
      schedule_rd(true);
      break;
    case Op::kFsgnjnS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) = (fr(w, l, in.rs1) & 0x7FFFFFFFu) | (~fr(w, l, in.rs2) & 0x80000000u);
      });
      schedule_rd(true);
      break;
    case Op::kFsgnjxS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) = fr(w, l, in.rs1) ^ (fr(w, l, in.rs2) & 0x80000000u);
      });
      schedule_rd(true);
      break;
    case Op::kFminS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) = f2u(std::fmin(u2f(fr(w, l, in.rs1)), u2f(fr(w, l, in.rs2))));
      });
      schedule_rd(true);
      break;
    case Op::kFmaxS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) = f2u(std::fmax(u2f(fr(w, l, in.rs1)), u2f(fr(w, l, in.rs2))));
      });
      schedule_rd(true);
      break;
    case Op::kFcvtWS:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = fcvt_w_s(u2f(fr(w, l, in.rs1)), false); });
      schedule_rd(false);
      break;
    case Op::kFcvtWuS:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = fcvt_w_s(u2f(fr(w, l, in.rs1)), true); });
      schedule_rd(false);
      break;
    case Op::kFcvtSW:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) = f2u(static_cast<float>(as_i32(xr(w, l, in.rs1))));
      });
      schedule_rd(true);
      break;
    case Op::kFcvtSWu:
      for_lanes([&](uint32_t l) { fr(w, l, in.rd) = f2u(static_cast<float>(xr(w, l, in.rs1))); });
      schedule_rd(true);
      break;
    case Op::kFmvXW:
      for_lanes([&](uint32_t l) { xr(w, l, in.rd) = fr(w, l, in.rs1); });
      schedule_rd(false);
      break;
    case Op::kFmvWX:
      for_lanes([&](uint32_t l) { fr(w, l, in.rd) = xr(w, l, in.rs1); });
      schedule_rd(true);
      break;
    case Op::kFclassS:
      for_lanes([&](uint32_t l) {
        const float f = u2f(fr(w, l, in.rs1));
        uint32_t cls = 0;
        if (std::isnan(f)) {
          cls = 1u << 9;  // quiet NaN (we do not distinguish signalling)
        } else if (std::isinf(f)) {
          cls = f < 0 ? 1u << 0 : 1u << 7;
        } else if (f == 0.0f) {
          cls = std::signbit(f) ? 1u << 3 : 1u << 4;
        } else if (std::fpclassify(f) == FP_SUBNORMAL) {
          cls = f < 0 ? 1u << 2 : 1u << 5;
        } else {
          cls = f < 0 ? 1u << 1 : 1u << 6;
        }
        xr(w, l, in.rd) = cls;
      });
      schedule_rd(false);
      break;
    case Op::kFeqS:
      for_lanes([&](uint32_t l) {
        xr(w, l, in.rd) = u2f(fr(w, l, in.rs1)) == u2f(fr(w, l, in.rs2)) ? 1 : 0;
      });
      schedule_rd(false);
      break;
    case Op::kFltS:
      for_lanes([&](uint32_t l) {
        xr(w, l, in.rd) = u2f(fr(w, l, in.rs1)) < u2f(fr(w, l, in.rs2)) ? 1 : 0;
      });
      schedule_rd(false);
      break;
    case Op::kFleS:
      for_lanes([&](uint32_t l) {
        xr(w, l, in.rd) = u2f(fr(w, l, in.rs1)) <= u2f(fr(w, l, in.rs2)) ? 1 : 0;
      });
      schedule_rd(false);
      break;
    case Op::kFmaddS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) = f2u(u2f(fr(w, l, in.rs1)) * u2f(fr(w, l, in.rs2)) + u2f(fr(w, l, in.rs3)));
      });
      schedule_rd(true);
      break;
    case Op::kFmsubS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) = f2u(u2f(fr(w, l, in.rs1)) * u2f(fr(w, l, in.rs2)) - u2f(fr(w, l, in.rs3)));
      });
      schedule_rd(true);
      break;
    case Op::kFnmsubS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) =
            f2u(-(u2f(fr(w, l, in.rs1)) * u2f(fr(w, l, in.rs2))) + u2f(fr(w, l, in.rs3)));
      });
      schedule_rd(true);
      break;
    case Op::kFnmaddS:
      for_lanes([&](uint32_t l) {
        fr(w, l, in.rd) =
            f2u(-(u2f(fr(w, l, in.rs1)) * u2f(fr(w, l, in.rs2))) - u2f(fr(w, l, in.rs3)));
      });
      schedule_rd(true);
      break;
    // ---------------- memory ----------------
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu:
    case Op::kFlw:
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
    case Op::kFsw:
    case Op::kLrW:
    case Op::kScW:
    case Op::kAmoswapW:
    case Op::kAmoaddW:
    case Op::kAmoandW:
    case Op::kAmoorW:
    case Op::kAmoxorW:
    case Op::kAmominW:
    case Op::kAmomaxW:
      execute_memory(w, in, pc, cycle);
      break;
    default:
      FGPU_LOG(kError, "core %u: unimplemented op '%s' at %08x", core_id_,
               arch::op_info(in.op).name, pc);
      warp.active = false;
      break;
  }
}

void Core::execute_memory(uint32_t w, const Instr& in, uint32_t pc, uint64_t cycle) {
  Warp& warp = warps_[w];
  const uint64_t mask = warp.tmask;
  const bool is_amo = arch::op_info(in.op).fmt == arch::Format::kAmo;
  const bool is_store = in.op == Op::kSb || in.op == Op::kSh || in.op == Op::kSw ||
                        in.op == Op::kFsw;
  const bool is_float = in.op == Op::kFlw;
  const bool has_rd = !is_store && (is_float || in.rd != 0 || is_amo);

  if (is_store) {
    ++perf_.stores;
  } else if (is_amo) {
    ++perf_.atomics;
  } else {
    ++perf_.loads;
  }

  std::vector<uint32_t> lines;
  bool all_local = true;
  bool any_local = false;

  for (uint32_t lane = 0; lane < config_.threads; ++lane) {
    if (!(mask & (1ull << lane))) continue;
    const uint32_t base = xr(w, lane, in.rs1);
    const uint32_t addr = base + static_cast<uint32_t>(is_amo ? 0 : in.imm);
    const bool local = is_local_addr(addr);
    all_local &= local;
    any_local |= local;
    mem::MainMemory& memory = local ? local_mem_ : gmem_;

    // Functional access now; timing modelled below.
    switch (in.op) {
      case Op::kLb: xr(w, lane, in.rd) = static_cast<uint32_t>(static_cast<int8_t>(memory.load8(addr))); break;
      case Op::kLbu: xr(w, lane, in.rd) = memory.load8(addr); break;
      case Op::kLh: xr(w, lane, in.rd) = static_cast<uint32_t>(static_cast<int16_t>(memory.load16(addr))); break;
      case Op::kLhu: xr(w, lane, in.rd) = memory.load16(addr); break;
      case Op::kLw: xr(w, lane, in.rd) = memory.load32(addr); break;
      case Op::kFlw: fr(w, lane, in.rd) = memory.load32(addr); break;
      case Op::kSb: memory.store8(addr, static_cast<uint8_t>(xr(w, lane, in.rs2))); break;
      case Op::kSh: memory.store16(addr, static_cast<uint16_t>(xr(w, lane, in.rs2))); break;
      case Op::kSw: memory.store32(addr, xr(w, lane, in.rs2)); break;
      case Op::kFsw: memory.store32(addr, fr(w, lane, in.rs2)); break;
      case Op::kLrW: xr(w, lane, in.rd) = memory.load32(addr); break;
      case Op::kScW:
        // Single-context simulation: SC always succeeds.
        memory.store32(addr, xr(w, lane, in.rs2));
        xr(w, lane, in.rd) = 0;
        break;
      default: {  // AMOs
        const uint32_t old = memory.load32(addr);
        const uint32_t src = xr(w, lane, in.rs2);
        uint32_t next = old;
        switch (in.op) {
          case Op::kAmoswapW: next = src; break;
          case Op::kAmoaddW: next = old + src; break;
          case Op::kAmoandW: next = old & src; break;
          case Op::kAmoorW: next = old | src; break;
          case Op::kAmoxorW: next = old ^ src; break;
          case Op::kAmominW:
            next = static_cast<uint32_t>(std::min(as_i32(old), as_i32(src)));
            break;
          case Op::kAmomaxW:
            next = static_cast<uint32_t>(std::max(as_i32(old), as_i32(src)));
            break;
          default: break;
        }
        memory.store32(addr, next);
        if (in.rd != 0) xr(w, lane, in.rd) = old;
        break;
      }
    }

    if (!local) {
      if (is_amo) {
        // Atomics serialize: one request per lane, no coalescing.
        lines.push_back(mem::line_of(addr));
      } else {
        const uint32_t line = mem::line_of(addr);
        if (std::find(lines.begin(), lines.end(), line) == lines.end()) lines.push_back(line);
      }
    }
  }
  (void)any_local;

  if (all_local || lines.empty()) {
    // Shared-memory path: fixed low latency, no cache traffic.
    if (has_rd) {
      if (is_float) {
        warp.busy_f |= (1u << in.rd);
      } else if (in.rd != 0) {
        warp.busy_x |= (1u << in.rd);
      }
      if (is_float || in.rd != 0) {
        completions_.push_back(Completion{cycle + config_.smem_latency, w, in.rd, is_float});
        completions_min_ready_ =
            std::min(completions_min_ready_, cycle + config_.smem_latency);
      }
    }
    return;
  }

  // Allocate the LSU slot (availability checked in can_issue()). The token
  // tags this occupancy so a stale response to a recycled slot is rejected.
  for (auto& entry : lsu_queue_) {
    if (entry.valid) continue;
    entry.valid = true;
    entry.warp = w;
    entry.is_write = is_store;
    entry.has_rd = has_rd && (is_float || in.rd != 0);
    entry.writes_float = is_float;
    entry.rd = in.rd;
    entry.pc = pc;
    entry.token = next_mem_id_++;
    entry.lines_pending = std::move(lines);
    entry.outstanding = 0;
    --lsu_free_;
    if (entry.has_rd) {
      if (is_float) {
        warp.busy_f |= (1u << in.rd);
      } else {
        warp.busy_x |= (1u << in.rd);
      }
    }
    return;
  }
  assert(false && "LSU slot must be available at issue");
}

void Core::do_lsu(uint64_t cycle) {
  (void)cycle;
  uint32_t sent = 0;
  for (auto& entry : lsu_queue_) {
    if (!entry.valid || entry.lines_pending.empty()) continue;
    // The request id carries the queue slot in its low byte and the entry's
    // allocation token above it, so the L1D response handler resolves the
    // owner in O(1) with a built-in staleness check.
    const uint64_t slot = static_cast<uint64_t>(&entry - lsu_queue_.data());
    const uint64_t id = (entry.token << kIdSlotBits) | slot;
    while (!entry.lines_pending.empty() && sent < config_.lsu_ports && l1d_.can_accept()) {
      const uint32_t line = entry.lines_pending.back();
      entry.lines_pending.pop_back();
      l1d_.send(mem::MemRequest{.id = id, .addr = line << mem::kLineShift,
                                .is_write = entry.is_write, .pc = entry.pc});
      ++entry.outstanding;
      ++sent;
      progressed_ = true;
    }
    if (sent >= config_.lsu_ports) break;
  }
}

void Core::do_fetch(uint64_t cycle) {
  for (uint32_t i = 0; i < config_.warps; ++i) {
    const uint32_t w = (fetch_rr_ + i) % config_.warps;
    Warp& warp = warps_[w];
    if (!warp.active || warp.fetch_pending) continue;
    if (warp.ibuffer.size() >= config_.ibuffer_depth) continue;
    if (config_.perfect_icache) {
      const DecodedInstr* decoded = decode_at(warp.pc);
      if (decoded == nullptr) {
        FGPU_LOG(kError, "core %u warp %u: invalid instruction at %08x", core_id_, w, warp.pc);
        warp.active = false;
        return;
      }
      warp.ibuffer.push(FetchSlot{*decoded, warp.pc});
      warp.pc += 4;
      fetch_rr_ = (w + 1) % config_.warps;
      progressed_ = true;
      return;
    }
    if (!l1i_.can_accept()) return;
    // The fetching warp index rides in the id's low byte; the monotonic
    // sequence above it makes the full id unique across redirects/resets.
    const uint64_t id = (next_mem_id_++ << kIdSlotBits) | w;
    warp.fetch_pending = true;
    warp.fetch_id = id;
    warp.fetch_pc = warp.pc;
    warp.fetch_generation = warp.generation;
    l1i_.send(mem::MemRequest{.id = id, .addr = warp.pc, .is_write = false, .pc = warp.pc});
    warp.pc += 4;
    fetch_rr_ = (w + 1) % config_.warps;
    progressed_ = true;
    return;
  }
  (void)cycle;
}

// Earliest future cycle at which this core has a self-scheduled event. The
// cluster combines this with the memory components' next-event queries to
// bound an idle-skip window; kNoWake means "waiting on memory only".
uint64_t Core::next_wake_cycle(uint64_t now) const {
  uint64_t wake = kNoWake;
  if (completions_min_ready_ != kNoWake) {
    // A completion whose ready cycle already passed still needs a tick to
    // retire (do_writeback runs at most once per cycle).
    wake = std::max(completions_min_ready_, now + 1);
  }
  for (const uint64_t ready : fu_ready_) {
    if (ready > now) wake = std::min(wake, ready);
  }
  return wake;
}

// Bulk-attributes the `count` skipped cycles [from, from+count). The cluster
// only skips when no core made progress at cycle `from - 1` and no component
// has an event before `from + count`, so each skipped cycle would have
// repeated the previous cycle's issue outcome exactly — charge the same
// bucket (and profiled PC) `count` times and synthesize the occupancy
// samples the per-cycle path would have taken at its interval grid points.
void Core::fast_forward(uint64_t from, uint64_t count) {
  if (count == 0) return;
  switch (last_outcome_) {
    case IssueOutcome::kIdle:
      perf_.idle_cycles += count;
      break;
    case IssueOutcome::kLsu:
      perf_.stall_lsu += count;
      if (profile_.enabled) profile_.by_pc[last_stall_pc_].stall_lsu += count;
      break;
    case IssueOutcome::kScoreboard:
      perf_.stall_scoreboard += count;
      if (profile_.enabled) profile_.by_pc[last_stall_pc_].stall_scoreboard += count;
      break;
    case IssueOutcome::kFu:
      perf_.stall_fu += count;
      if (profile_.enabled) profile_.by_pc[last_stall_pc_].stall_fu += count;
      break;
    case IssueOutcome::kIbuffer:
      perf_.stall_ibuffer += count;
      if (profile_.enabled) profile_.by_pc[last_stall_pc_].stall_ibuffer += count;
      break;
    case IssueOutcome::kBarrier:
      perf_.stall_barrier += count;
      if (profile_.enabled) profile_.by_pc[last_stall_pc_].stall_barrier += count;
      break;
    case IssueOutcome::kIssued:
    case IssueOutcome::kNone:
      assert(false && "fast_forward after a progressing cycle");
      break;
  }
  if (profile_.enabled) {
    // Same grid as tick_logic: one sample at every cycle divisible by the
    // interval. Warp states are frozen across the window, so the samples
    // are identical except for their cycle stamps.
    const uint64_t interval = config_.profile_interval;
    uint64_t next = ((from + interval - 1) / interval) * interval;
    for (; next < from + count; next += interval) sample_occupancy(next);
  }
}

}  // namespace fgpu::vortex
