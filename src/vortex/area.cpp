#include "vortex/area.hpp"

#include <algorithm>

namespace fgpu::vortex {
namespace {

// Fitted component costs (see header). BRAM per warp saturates at 8 warps:
// the warp table occupies whole M20K blocks, so growing W within a block's
// depth adds no blocks (visible in Table IV: W=8 and W=16 rows share the
// same BRAM count).
constexpr fpga::AreaReport kUncore{55'388, 124'731, 363, 0};
constexpr fpga::AreaReport kCoreBase{41'000, 30'863, 444, 0};
constexpr fpga::AreaReport kPerWarp{420, 1'056, 3, 0};
constexpr fpga::AreaReport kPerLane{6'000, 8'000, 0, 28};

// One M20K block stores 20 kbit = 2,560 bytes. The Table IV constants above
// were fitted with the default cache geometry (16 KiB L1D + 8 KiB L1I per
// core, 128 KiB L2), so cache resizing contributes only its M20K *delta*
// relative to those defaults — the Table IV rows are reproduced exactly,
// and the DSE cache-geometry axes (suite/dse.hpp) become area-visible.
constexpr int64_t kM20kBytes = 2'560;

int64_t cache_delta_blocks(uint32_t size_bytes, uint32_t default_bytes) {
  return (static_cast<int64_t>(size_bytes) - static_cast<int64_t>(default_bytes)) / kM20kBytes;
}

}  // namespace

fpga::AreaReport estimate_area(const Config& config) {
  fpga::AreaReport area = kUncore;
  fpga::AreaReport core = kCoreBase;
  core += kPerWarp * config.warps;
  core.brams = kCoreBase.brams + kPerWarp.brams * std::min(config.warps, 8u);
  core += kPerLane * config.threads;
  const Config defaults;
  int64_t delta =
      static_cast<int64_t>(config.cores) *
          (cache_delta_blocks(config.l1d.size_bytes, defaults.l1d.size_bytes) +
           cache_delta_blocks(config.l1i.size_bytes, defaults.l1i.size_bytes)) +
      cache_delta_blocks(config.l2.size_bytes, defaults.l2.size_bytes);
  area += core * config.cores;
  area.brams = static_cast<uint64_t>(
      std::max<int64_t>(0, static_cast<int64_t>(area.brams) + delta));
  return area;
}

bool fits(const Config& config, const fpga::Board& board) {
  return board.fits(estimate_area(config));
}

}  // namespace fgpu::vortex
