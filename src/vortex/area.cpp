#include "vortex/area.hpp"

#include <algorithm>

namespace fgpu::vortex {
namespace {

// Fitted component costs (see header). BRAM per warp saturates at 8 warps:
// the warp table occupies whole M20K blocks, so growing W within a block's
// depth adds no blocks (visible in Table IV: W=8 and W=16 rows share the
// same BRAM count).
constexpr fpga::AreaReport kUncore{55'388, 124'731, 363, 0};
constexpr fpga::AreaReport kCoreBase{41'000, 30'863, 444, 0};
constexpr fpga::AreaReport kPerWarp{420, 1'056, 3, 0};
constexpr fpga::AreaReport kPerLane{6'000, 8'000, 0, 28};

}  // namespace

fpga::AreaReport estimate_area(const Config& config) {
  fpga::AreaReport area = kUncore;
  fpga::AreaReport core = kCoreBase;
  core += kPerWarp * config.warps;
  core.brams = kCoreBase.brams + kPerWarp.brams * std::min(config.warps, 8u);
  core += kPerLane * config.threads;
  area += core * config.cores;
  return area;
}

bool fits(const Config& config, const fpga::Board& board) {
  return board.fits(estimate_area(config));
}

}  // namespace fgpu::vortex
