// Hardware configuration of the soft GPU. The three headline parameters
// (C, W, T) match the paper's Table IV columns: number of cores, warps per
// core, and threads per warp. The memory-system defaults approximate the
// SX2800 board configuration Vortex was synthesized on (DDR4 off-chip).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "arch/isa.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"

namespace fgpu::vortex {

// Per-issued-instruction trace record (debug/analysis hook).
struct TraceEvent {
  uint32_t core = 0;
  uint32_t warp = 0;
  uint32_t pc = 0;
  uint64_t tmask = 0;
  arch::Instr instr;
  uint64_t cycle = 0;
};

struct Config {
  uint32_t cores = 4;
  uint32_t warps = 8;    // per core
  uint32_t threads = 8;  // per warp (SIMT lanes)

  uint32_t ibuffer_depth = 2;     // decoded instructions buffered per warp
  uint32_t lsu_queue_depth = 4;   // in-flight memory instructions per core
  uint32_t lsu_ports = 1;         // line requests sent to L1D per cycle
  uint32_t smem_latency = 2;      // shared (OpenCL __local) memory latency
  bool perfect_icache = false;

  // L1D MSHR count and LSU queue depth are the calibration behind the
  // Fig. 7 reproduction: with 16-byte lines, wide (high-T) accesses split
  // into several line fills and exhaust the MSHRs, producing the LSU-stall
  // degradation the paper reports for load-heavy kernels at large configs.
  mem::CacheConfig l1d{.name = "l1d", .size_bytes = 16 * 1024, .ways = 2, .hit_latency = 2,
                       .mshrs = 6, .ports = 1, .mshr_slots = 8};
  mem::CacheConfig l1i{.name = "l1i", .size_bytes = 8 * 1024, .ways = 2, .hit_latency = 1,
                       .mshrs = 2, .ports = 1, .mshr_slots = 8};
  mem::CacheConfig l2{.name = "l2", .size_bytes = 128 * 1024, .ways = 4, .hit_latency = 6,
                      .mshrs = 16, .ports = 2, .mshr_slots = 8};
  mem::DramConfig dram = mem::DramConfig::ddr4();

  uint64_t max_cycles = 400'000'000;  // runaway-kernel guard

  // Event-driven idle skipping: when no core makes progress in a cycle and
  // every in-flight event has a known wake-up cycle, the cluster jumps to
  // the earliest one, bulk-attributing the skipped cycles to the same stall
  // buckets the per-cycle path would have charged. Host-speed only — every
  // reported cycle/stat/profile is identical either way (the A/B test in
  // tests/test_fastpath.cpp asserts this). Disable when debugging cycle by
  // cycle; automatically bypassed while a trace sink is active.
  bool idle_skip = true;

  // Per-PC cycle profiler (vortex/profile.hpp): attribute every issue-stage
  // cycle to a PC and sample the warp-occupancy timeline. Off by default —
  // collection costs a map update per cycle.
  bool profile = false;
  uint32_t profile_interval = 256;  // cycles between occupancy samples

  // Memory-hierarchy profiler (mem/memprof.hpp): per-level miss
  // classification, reuse-distance histograms, MSHR/DRAM occupancy
  // timelines. Off by default — collection costs a shadow-stack update per
  // cache access; cycle counts are unchanged either way.
  bool memprof = false;

  // Optional instruction trace: invoked once per issued instruction.
  // Costly — leave unset except when debugging kernels.
  std::function<void(const TraceEvent&)> trace;

  uint32_t hw_threads() const { return cores * warps * threads; }

  std::string to_string() const {
    return "C" + std::to_string(cores) + "W" + std::to_string(warps) + "T" +
           std::to_string(threads);
  }

  static Config with(uint32_t c, uint32_t w, uint32_t t) {
    Config cfg;
    cfg.cores = c;
    cfg.warps = w;
    cfg.threads = t;
    return cfg;
  }
};

}  // namespace fgpu::vortex
