// Performance counters exposed by the simulator. The stall breakdown is the
// instrument behind the paper's Fig. 7 analysis ("vector addition ... incurs
// more LSU stalls with a higher number of threads and warps per core").
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

namespace fgpu::vortex {

struct PerfCounters {
  uint64_t cycles = 0;
  uint64_t instrs = 0;

  // Issue-stage stall attribution (cycles where no instruction issued).
  uint64_t stall_scoreboard = 0;  // RAW hazard on a pending result
  uint64_t stall_lsu = 0;         // LSU queue full / L1D back-pressure
  uint64_t stall_fu = 0;          // non-pipelined FU (div/sqrt) busy
  uint64_t stall_ibuffer = 0;     // no decoded instruction available (fetch-bound)
  uint64_t stall_barrier = 0;     // all candidate warps blocked on a barrier
  uint64_t idle_cycles = 0;       // no active warp at all

  // Event counts.
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t atomics = 0;
  uint64_t branches = 0;
  uint64_t divergent_branches = 0;  // SPLITs that actually diverged
  uint64_t joins = 0;
  uint64_t barriers = 0;
  uint64_t warps_spawned = 0;

  void accumulate(const PerfCounters& other) {
    cycles = std::max(cycles, other.cycles);
    instrs += other.instrs;
    stall_scoreboard += other.stall_scoreboard;
    stall_lsu += other.stall_lsu;
    stall_fu += other.stall_fu;
    stall_ibuffer += other.stall_ibuffer;
    stall_barrier += other.stall_barrier;
    idle_cycles += other.idle_cycles;
    loads += other.loads;
    stores += other.stores;
    atomics += other.atomics;
    branches += other.branches;
    divergent_branches += other.divergent_branches;
    joins += other.joins;
    barriers += other.barriers;
    warps_spawned += other.warps_spawned;
  }

  double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(instrs) / static_cast<double>(cycles);
  }

  // Structural comparison (tests assert on counters, not summary strings).
  bool operator==(const PerfCounters&) const = default;

  // Full human-readable summary. Built with std::string (no fixed buffer:
  // the old char[256] snprintf silently truncated once the event section
  // was added) and includes the event counts the one-liner used to drop.
  std::string summary() const {
    std::string out;
    // Worst case: 16 uint64 fields at up to 20 digits each plus the key
    // text comes to ~460 bytes; 256 forced a mid-build reallocation.
    out.reserve(512);
    const auto add = [&out](const char* key, uint64_t v) {
      out += key;
      out += std::to_string(v);
    };
    add("cycles=", cycles);
    add(" instrs=", instrs);
    char ipc_buf[32];
    std::snprintf(ipc_buf, sizeof(ipc_buf), " ipc=%.3f", ipc());
    out += ipc_buf;
    add(" stalls[sb=", stall_scoreboard);
    add(" lsu=", stall_lsu);
    add(" fu=", stall_fu);
    add(" ib=", stall_ibuffer);
    add(" bar=", stall_barrier);
    add(" idle=", idle_cycles);
    add("] events[loads=", loads);
    add(" stores=", stores);
    add(" atomics=", atomics);
    add(" branches=", branches);
    add(" divergent=", divergent_branches);
    add(" joins=", joins);
    add(" barriers=", barriers);
    add(" wspawn=", warps_spawned);
    out += ']';
    return out;
  }
};

}  // namespace fgpu::vortex
