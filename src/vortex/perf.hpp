// Performance counters exposed by the simulator. The stall breakdown is the
// instrument behind the paper's Fig. 7 analysis ("vector addition ... incurs
// more LSU stalls with a higher number of threads and warps per core").
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

namespace fgpu::vortex {

struct PerfCounters {
  uint64_t cycles = 0;
  uint64_t instrs = 0;

  // Issue-stage stall attribution (cycles where no instruction issued).
  uint64_t stall_scoreboard = 0;  // RAW hazard on a pending result
  uint64_t stall_lsu = 0;         // LSU queue full / L1D back-pressure
  uint64_t stall_fu = 0;          // non-pipelined FU (div/sqrt) busy
  uint64_t stall_ibuffer = 0;     // no decoded instruction available (fetch-bound)
  uint64_t stall_barrier = 0;     // all candidate warps blocked on a barrier
  uint64_t idle_cycles = 0;       // no active warp at all

  // Event counts.
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t atomics = 0;
  uint64_t branches = 0;
  uint64_t divergent_branches = 0;  // SPLITs that actually diverged
  uint64_t joins = 0;
  uint64_t barriers = 0;
  uint64_t warps_spawned = 0;

  void accumulate(const PerfCounters& other) {
    cycles = std::max(cycles, other.cycles);
    instrs += other.instrs;
    stall_scoreboard += other.stall_scoreboard;
    stall_lsu += other.stall_lsu;
    stall_fu += other.stall_fu;
    stall_ibuffer += other.stall_ibuffer;
    stall_barrier += other.stall_barrier;
    idle_cycles += other.idle_cycles;
    loads += other.loads;
    stores += other.stores;
    atomics += other.atomics;
    branches += other.branches;
    divergent_branches += other.divergent_branches;
    joins += other.joins;
    barriers += other.barriers;
    warps_spawned += other.warps_spawned;
  }

  double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(instrs) / static_cast<double>(cycles);
  }

  std::string summary() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "cycles=%llu instrs=%llu ipc=%.3f stalls[sb=%llu lsu=%llu fu=%llu ib=%llu "
                  "bar=%llu idle=%llu]",
                  static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(instrs), ipc(),
                  static_cast<unsigned long long>(stall_scoreboard),
                  static_cast<unsigned long long>(stall_lsu),
                  static_cast<unsigned long long>(stall_fu),
                  static_cast<unsigned long long>(stall_ibuffer),
                  static_cast<unsigned long long>(stall_barrier),
                  static_cast<unsigned long long>(idle_cycles));
    return buf;
  }
};

}  // namespace fgpu::vortex
