// FPGA synthesis-area model of the soft GPU as a function of its (C, W, T)
// configuration — the model behind the paper's Table IV.
//
// Components follow the Vortex microarchitecture: a per-cluster uncore (AFU
// shell, L2, interconnect), a per-core base (6-stage pipeline, scheduler,
// LSU, caches), a per-warp slice (warp table, ibuffer, scoreboard — the
// "warp information table size" the paper mentions), and a per-lane slice
// (ALU/FPU lanes and register-file banks — "increasing the number of
// threads necessitates an expansion in the register file size, ALU lanes
// and FPU lanes"). Constants are fitted to the paper's five Table IV rows
// (all within ~2%).
#pragma once

#include "fpga/board.hpp"
#include "vortex/config.hpp"

namespace fgpu::vortex {

fpga::AreaReport estimate_area(const Config& config);

// True if this configuration synthesizes within `board`'s resources.
bool fits(const Config& config, const fpga::Board& board);

}  // namespace fgpu::vortex
