// Turbo execution tier: a threaded-code binary translator for the Vortex
// ISA. Decoded guest basic blocks are compiled once into host-dispatchable
// block handlers (one precomputed handler function pointer per
// instruction), cached by start PC, and chained so hot block-to-block
// transitions skip the cache lookup entirely.
//
// Contract (DESIGN.md "Execution tiers"): turbo is FUNCTIONAL-ONLY. It
// retires the same architectural state as the cycle-exact simulator —
// registers, memory, IPDOM divergence, barriers, ECALL console traffic —
// but models no pipeline, caches, or stalls. It therefore reports
// instruction counts and JIT statistics, never cycles, PerfCounters stall
// buckets, or per-PC profiles; the cycle-exact tier (vortex/core.cpp)
// remains the sole timing oracle. Every arithmetic expression here copies
// core.cpp's exact form so results are bit-identical (asserted over all 28
// Table-I benchmarks by tests/test_turbo.cpp and the CI digest gate).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/isa.hpp"
#include "common/status.hpp"
#include "mem/memory.hpp"
#include "vortex/config.hpp"
#include "vortex/core.hpp"

namespace fgpu::vortex::jit {

// Counters of the translation/dispatch machinery (exported into
// fgpu.host.v1's "turbo" sections — see OBSERVABILITY.md). Purely
// host-side bookkeeping; none of these is a timing claim.
struct TurboStats {
  uint64_t instrs = 0;              // guest instructions retired
  uint64_t blocks_translated = 0;   // block-cache fills
  uint64_t block_lookups = 0;       // block-cache queries (miss => translate)
  uint64_t block_hits = 0;          // queries served from the cache
  uint64_t chained_dispatches = 0;  // successor taken via a cached pointer
  uint64_t invalidations = 0;       // cache flushes (kernel reload, i.e. build())
  uint64_t barriers = 0;
  uint64_t ecalls = 0;

  double hit_rate() const {
    return block_lookups == 0
               ? 0.0
               : static_cast<double>(block_hits) / static_cast<double>(block_lookups);
  }
  void accumulate(const TurboStats& other) {
    instrs += other.instrs;
    blocks_translated += other.blocks_translated;
    block_lookups += other.block_lookups;
    block_hits += other.block_hits;
    chained_dispatches += other.chained_dispatches;
    invalidations += other.invalidations;
    barriers += other.barriers;
    ecalls += other.ecalls;
  }
};

class TurboCore;

// One functional core: C of these make the turbo cluster (TurboEngine).
// Defined in turbo.cpp; the public surface is TurboEngine below.
class TurboEngine {
 public:
  // `gmem` is shared across cores (like vortex::Cluster); each core owns a
  // private __local scratchpad and barrier state.
  TurboEngine(const Config& config, mem::MainMemory& gmem, EcallHandler ecall_handler = {});
  ~TurboEngine();

  // Drops every translated block on every core. Call at the kernel-reload
  // boundary (device build(): the binaries themselves changed); NOT needed
  // between launches or when switching among the kernels of one build —
  // retained per-kernel blocks are the hit-rate win.
  void invalidate();

  // Device-reuse boundary (TurboDevice::reset): drops every translated
  // block and deselects the kernel on every core WITHOUT counting an
  // invalidation — the drop is pool lifecycle bookkeeping, not a kernel
  // reload, so per-benchmark jit-stat deltas on a reused device stay
  // byte-identical to a fresh device's. Cumulative counters survive (they
  // are exported as before/after deltas by the suite runner).
  void reset_blocks();

  // Selects `kernel`'s block cache on every core. Each kernel of a build
  // keeps a private cache (binaries share a load base, so PCs are only
  // meaningful per kernel); switching kernels swaps caches instead of
  // flushing, so alternating launch sequences stay warm.
  void select_kernel(const std::string& kernel);

  // Resets warp/register/local-memory state on every core and runs the
  // kernel at `entry_pc` to completion (cores execute sequentially; warps
  // within a core run to their next blocking point, round-robin). Errors on
  // barrier deadlock or when the per-launch instruction budget
  // (Config::max_cycles, reused as a guest-instruction ceiling) is hit.
  Status run(uint32_t entry_pc);

  // Guest instructions retired by the most recent run().
  uint64_t last_run_instrs() const { return last_run_instrs_; }
  // Cumulative across launches (block cache persists until invalidate()).
  const TurboStats& stats() const { return stats_; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  mem::MainMemory& gmem_;
  EcallHandler ecall_handler_;
  std::vector<std::unique_ptr<TurboCore>> cores_;
  TurboStats stats_;
  uint64_t last_run_instrs_ = 0;
};

}  // namespace fgpu::vortex::jit
